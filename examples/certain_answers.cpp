// Certain answers under sound views (open-world assumption): what can be
// concluded with certainty from view extents alone, three ways —
//
//   1. the maximally-contained MiniCon union evaluated over the extents,
//   2. inverse rules: skolemized reconstruction + query + filter,
//   3. brute-force possible-world intersection (tiny instance only),
//
// all of which must agree. Run with no arguments for the worked example.

#include <cstdio>

#include "cq/parser.h"
#include "eval/certain.h"
#include "eval/datalog.h"
#include "rewriting/inverse_rules.h"
#include "rewriting/minicon.h"

using namespace aqv;

int main() {
  Catalog catalog;

  // Sources: a route catalogue that hides the hub, and a hub directory.
  ViewSet views = ViewSet::Parse(R"(
    % Source A: city pairs connected via SOME hub (hub hidden).
    via_hub(X, Z) :- leg(X, Y), leg(Y, Z).
    % Source B: direct legs out of known hubs.
    from_hub(Y, Z) :- leg(Y, Z), hub(Y).
  )",
                                 &catalog)
                      .value();
  Query query = ParseQuery("q(X, Z) :- leg(X, Y), leg(Y, Z).", &catalog)
                    .value();
  std::printf("query: %s\n", query.ToString().c_str());
  for (const View& v : views.views()) {
    std::printf("view:  %s\n", v.definition.ToString().c_str());
  }

  // The extents the mediator sees (no base data anywhere).
  Database extents(&catalog);
  PredId via_hub = catalog.FindPredicate("via_hub").value();
  PredId from_hub = catalog.FindPredicate("from_hub").value();
  extents.Add(via_hub, {1, 3});   // 1 reaches 3 via some hub
  extents.Add(from_hub, {2, 3});  // hub 2 has a direct leg to 3

  // Route 1: MiniCon maximally-contained union.
  MiniConResult mc = MiniConRewrite(query, views).value();
  std::printf("\nmaximally-contained union:\n");
  for (const Query& rw : mc.rewritings.disjuncts) {
    std::printf("  %s\n", rw.ToString().c_str());
  }
  Relation mc_ans = EvaluateRewritingUnion(query, mc.rewritings, extents).value();
  std::printf("certain answers (MiniCon route):\n%s",
              mc_ans.ToString(catalog).c_str());

  // Route 2: inverse rules.
  InverseRuleSet ir = BuildInverseRules(views).value();
  std::printf("\ninverse rules:\n%s", ir.ToString(catalog).c_str());
  SkolemTable skolems;
  Database reconstructed = ApplyInverseRules(ir, extents, &skolems).value();
  std::printf("reconstructed base facts (Skolems = unknown values):\n");
  for (PredId p : reconstructed.Predicates()) {
    const Relation* rel = reconstructed.Find(p);
    std::printf("  %s:\n", catalog.pred(p).name.c_str());
    std::printf("%s", rel->ToString(catalog, &skolems).c_str());
  }
  Relation ir_ans = CertainAnswersViaInverseRules(query, ir, extents).value();
  std::printf("certain answers (inverse-rules route):\n%s",
              ir_ans.ToString(catalog).c_str());

  // Route 3: brute force over possible worlds (reference semantics).
  WorldEnumOptions wopts;
  wopts.extra_constants = 2;
  wopts.max_world_tuples = 22;
  auto bf = BruteForceCertainAnswers(query, views, extents, wopts);
  if (bf.ok()) {
    std::printf("certain answers (possible-world intersection):\n%s",
                bf.value().ToString(catalog).c_str());
    std::printf("\nall three routes agree: %s\n",
                Relation::SameSet(mc_ans, ir_ans) &&
                        Relation::SameSet(ir_ans, bf.value())
                    ? "yes"
                    : "NO (bug!)");
  } else {
    std::printf("brute force skipped: %s\n", bf.status().ToString().c_str());
    std::printf("\nMiniCon and inverse-rules routes agree: %s\n",
                Relation::SameSet(mc_ans, ir_ans) ? "yes" : "NO (bug!)");
  }
  return 0;
}
