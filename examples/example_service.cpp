// The concurrent batch-rewriting service end to end: synthesize a mixed
// scenario × engine batch, run it on a worker pool sharing one sharded
// containment oracle, and read the aggregate ServiceStats — then the same
// thing through the streaming Submit/TryWait/Wait ticket API.
//
//   $ ./example_service
//
// See docs/OPERATIONS.md for tuning worker/shard counts and interpreting
// the stats this prints.

#include <cstdio>

#include "service/batch.h"
#include "service/service.h"
#include "workload/registry.h"

using namespace aqv;

int main() {
  // 1. A mixed batch: every packaged scenario × every rewriting engine ×
  //    two fresh instances — 24 independent rewriting problems.
  auto batch_result = MakeBatchFromScenarios(ScenarioNames(), EngineNames(),
                                             /*repeats=*/2, /*seed=*/7,
                                             /*db_size=*/50);
  if (!batch_result.ok()) {
    std::printf("batch synthesis failed: %s\n",
                batch_result.status().ToString().c_str());
    return 1;
  }
  ScenarioRequestBatch batch = std::move(batch_result).value();
  std::printf("batch: %zu requests (%zu scenarios x %zu engines x 2)\n\n",
              batch.size(), ScenarioNames().size(), EngineNames().size());

  // 2. A service: 4 workers sharing one 8-shard containment oracle.
  ServiceOptions options;
  options.num_workers = 4;
  options.oracle_shards = 8;
  RewriteService service(options);

  auto result = service.RewriteBatch(ToServiceRequests(batch));
  if (!result.ok()) {
    std::printf("batch failed: %s\n", result.status().ToString().c_str());
    return 1;
  }

  // 3. Per-request outcomes: engine, rewriting count, latency.
  std::printf("%-28s %-8s %12s %10s\n", "request", "status", "rewritings",
              "ms");
  for (size_t i = 0; i < result.value().responses.size(); ++i) {
    const ServiceResponse& r = result.value().responses[i];
    std::printf("%-28s %-8s %12zu %10.3f\n", batch.labels[i].c_str(),
                r.status.ok() ? "ok" : "error",
                r.status.ok() ? r.response.rewritings.size() : size_t{0},
                r.latency_ms);
  }

  // 4. The aggregate: throughput, tail latency, and how much containment
  //    work the shared oracle absorbed.
  const ServiceStats& s = result.value().stats;
  std::printf("\nServiceStats\n");
  std::printf("  requests     %llu (%llu ok, %llu failed)\n",
              static_cast<unsigned long long>(s.requests),
              static_cast<unsigned long long>(s.ok),
              static_cast<unsigned long long>(s.failed));
  std::printf("  wall         %.2f ms  (%.0f requests/s, %d workers)\n",
              s.wall_ms, s.throughput_rps, s.num_workers);
  std::printf("  latency      p50 %.3f ms   p95 %.3f ms   max %.3f ms\n",
              s.p50_ms, s.p95_ms, s.max_ms);
  std::printf("  oracle       %llu lookups, %.1f%% hits (%zu shards)\n",
              static_cast<unsigned long long>(s.oracle.lookups()),
              100.0 * s.oracle.hit_rate(), s.oracle_shards);

  // 5. Streaming: submit one request, poll, then block for the result.
  ServiceRequest one;
  one.engine = "minicon";
  one.request = batch.requests[0];
  auto ticket = service.Submit(one);
  if (!ticket.ok()) {
    std::printf("submit failed: %s\n", ticket.status().ToString().c_str());
    return 1;
  }
  auto polled = service.TryWait(ticket.value());
  std::printf("\nstreaming: ticket %llu %s\n",
              static_cast<unsigned long long>(ticket.value()),
              polled.ok() && polled.value().has_value() ? "already done"
                                                        : "in flight");
  auto final = service.Wait(ticket.value());
  if (final.ok() && !final.value().status.ok()) {
    std::printf("streaming request failed: %s\n",
                final.value().status.ToString().c_str());
    return 1;
  }
  if (final.ok()) {
    std::printf("streaming result: %zu rewritings in %.3f ms\n",
                final.value().response.rewritings.size(),
                final.value().latency_ms);
  } else if (polled.ok() && polled.value().has_value()) {
    // TryWait already collected it; a second Wait correctly finds nothing.
    if (!polled.value()->status.ok()) {
      std::printf("streaming request failed: %s\n",
                  polled.value()->status.ToString().c_str());
      return 1;
    }
    std::printf("streaming result: %zu rewritings in %.3f ms\n",
                polled.value()->response.rewritings.size(),
                polled.value()->latency_ms);
  }
  return 0;
}
