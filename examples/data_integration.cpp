// LAV data integration: a mediator answers a global-schema query from
// autonomous sources described as views, without ever touching the (hidden)
// base data. Demonstrates the equivalent-vs-contained regimes on the travel
// scenario:
//
//   - with the pre-joined `goodflights` source, LMSS finds an equivalent
//     rewriting and the mediator returns exactly the query's answers;
//   - without it, only strictly-contained rewritings exist; the mediator
//     returns the certain answers, a sound subset.
//
//   $ ./data_integration [seed [db_size]]

#include <cstdio>
#include <cstdlib>

#include "eval/certain.h"
#include "eval/evaluator.h"
#include "eval/materialize.h"
#include "rewriting/lmss.h"
#include "rewriting/minicon.h"
#include "workload/scenarios.h"

using namespace aqv;

int main(int argc, char** argv) {
  uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 7;
  int db_size = argc > 2 ? std::atoi(argv[2]) : 400;

  Scenario s = MakeTravelScenario(seed, db_size).value();
  std::printf("scenario: %s\n", s.description.c_str());
  std::printf("query:    %s\n", s.query.ToString().c_str());
  for (const View& v : s.views.views()) {
    std::printf("source:   %s\n", v.definition.ToString().c_str());
  }

  // The mediator only ever sees these extents.
  Database extents = MaterializeViews(s.views, s.base).value();
  Relation direct = EvaluateQuery(s.query, s.base).value();
  std::printf("\n(base data: %llu tuples; true answer count: %zu)\n",
              static_cast<unsigned long long>(s.base.TotalTuples()),
              direct.size());

  // Regime 1: all sources.
  LmssResult lmss = FindEquivalentRewritings(s.query, s.views).value();
  std::printf("\n-- with all sources --\n");
  if (lmss.exists) {
    std::printf("equivalent rewriting: %s\n",
                lmss.rewritings[0].ToString().c_str());
    Relation ans = EvaluateQuery(lmss.rewritings[0], extents).value();
    std::printf("mediator answers: %zu (complete: %s)\n", ans.size(),
                Relation::SameSet(ans, direct) ? "yes" : "no");
  } else {
    std::printf("no equivalent rewriting\n");
  }

  // Regime 2: drop the pre-joined source.
  ViewSet reduced;
  for (const View& v : s.views.views()) {
    if (v.name() != "goodflights") {
      if (!reduced.Add(v.definition).ok()) return 1;
    }
  }
  Database reduced_extents = MaterializeViews(reduced, s.base).value();
  std::printf("\n-- without the goodflights source --\n");
  bool exists = ExistsEquivalentRewriting(s.query, reduced).value();
  std::printf("equivalent rewriting exists: %s\n", exists ? "yes" : "no");

  MiniConResult mc = MiniConRewrite(s.query, reduced).value();
  std::printf("maximally-contained union (%d disjuncts):\n",
              mc.rewritings.size());
  for (const Query& rw : mc.rewritings.disjuncts) {
    std::printf("  %s\n", rw.ToString().c_str());
  }
  if (!mc.rewritings.empty()) {
    Relation certain =
        EvaluateRewritingUnion(s.query, mc.rewritings, reduced_extents).value();
    size_t sound = 0;
    for (auto& row : certain.Rows()) {
      sound += direct.Contains(row) ? 1 : 0;
    }
    std::printf(
        "certain answers: %zu of %zu true answers (all sound: %s)\n",
        certain.size(), direct.size(),
        sound == certain.size() ? "yes" : "NO (bug!)");
  } else {
    std::printf("no contained rewriting: the mediator must answer empty\n");
  }
  return 0;
}
