// aqvsh — the interactive shell and script runner over the frontend
// Session (frontend/session.h): define views, set a query, load facts,
// then ask for rewritings, answers, and cost plans. The shell is a thin
// transport — every command is dispatched by the library-level Session,
// so the same surface works over the TCP server (frontend/server.h) and
// is what the docs transcripts replay verbatim.
//
//   $ ./aqvsh                      # interactive REPL
//   aqv> view v(X, Y) :- edge(X, Y), checked(Y).
//   aqv> query q(X, Z) :- edge(X, Y), checked(Y), edge(Y, Z).
//   aqv> fact edge(1, 2).
//   aqv> rewrite with lmss
//   aqv> answer route direct
//
//   $ ./aqvsh demo.aqv             # script mode: run files, then exit
//   $ ./aqvsh < demo.aqv           # ditto, from stdin
//
// In non-interactive mode diagnostics go to stderr and the exit code is
// nonzero when any command failed — scripts can gate CI. Commands and
// syntax: `help`, docs/FRONTEND.md, docs/QUERY_LANGUAGE.md.

#include <unistd.h>

#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>

#include "frontend/session.h"

using namespace aqv;

namespace {

/// Runs one line stream through `session`. Payload goes to stdout, error
/// diagnostics (prefixed with `name:line:` in script mode) to stderr.
/// Returns the number of failed commands; sets *quit on quit/exit.
int RunStream(Session& session, std::istream& in, const std::string& name,
              bool interactive, bool* quit) {
  int errors = 0;
  int line_no = 0;
  std::string line;
  if (interactive) {
    std::printf("aqv> ");
    std::fflush(stdout);
  }
  while (std::getline(in, line)) {
    ++line_no;
    CommandResult result = session.Execute(line);
    if (!result.output.empty()) {
      std::printf("%s\n", result.output.c_str());
    }
    if (!result.status.ok()) {
      ++errors;
      if (interactive) {
        std::fprintf(stderr, "error: %s\n",
                     result.status.ToString().c_str());
      } else {
        std::fprintf(stderr, "%s:%d: error: %s\n", name.c_str(), line_no,
                     result.status.ToString().c_str());
      }
    }
    if (result.quit) {
      *quit = true;
      return errors;
    }
    if (interactive) {
      std::printf("aqv> ");
      std::fflush(stdout);
    }
  }
  return errors;
}

}  // namespace

int main(int argc, char** argv) {
  Session session;
  bool quit = false;
  int errors = 0;
  if (argc > 1) {
    for (int i = 1; i < argc && !quit; ++i) {
      std::string path = argv[i];
      std::ifstream file(path);
      if (!file) {
        std::fprintf(stderr, "aqvsh: cannot open '%s'\n", path.c_str());
        return 1;
      }
      errors += RunStream(session, file, path, /*interactive=*/false, &quit);
    }
    return errors > 0 ? 1 : 0;
  }
  bool interactive = isatty(0);
  errors = RunStream(session, std::cin, "<stdin>", interactive, &quit);
  if (interactive) {
    std::printf("\n");
    return 0;  // exploratory errors don't fail an interactive session
  }
  return errors > 0 ? 1 : 0;
}
