// aqvsh — a tiny interactive shell over the aqv library: define views, set
// a query, load facts, then ask for rewritings and answers. Every command
// maps to one public API call, so the transcript doubles as a tutorial.
//
//   $ ./aqvsh
//   aqv> view v(X, Y) :- edge(X, Y), checked(Y).
//   aqv> query q(X, Z) :- edge(X, Y), checked(Y), edge(Y, Z).
//   aqv> fact edge(1, 2).
//   aqv> fact checked(2).
//   aqv> fact edge(2, 3).
//   aqv> rewrite
//   aqv> answers
//
// Commands: view, query, fact, show, rewrite, certain, answers, help, quit.
// Also accepts a script on stdin (one command per line).

#include <unistd.h>

#include <cstdio>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>

#include "cq/parser.h"
#include "eval/certain.h"
#include "eval/evaluator.h"
#include "eval/materialize.h"
#include "rewriting/bucket.h"
#include "rewriting/inverse_rules.h"
#include "rewriting/lmss.h"
#include "rewriting/minicon.h"
#include "views/expansion.h"

using namespace aqv;

namespace {

class Shell {
 public:
  int Run() {
    std::string line;
    Prompt();
    while (std::getline(std::cin, line)) {
      if (!Dispatch(line)) break;
      Prompt();
    }
    return 0;
  }

 private:
  void Prompt() {
    if (interactive_) {
      std::printf("aqv> ");
      std::fflush(stdout);
    }
  }

  static std::string Trim(const std::string& s) {
    size_t b = s.find_first_not_of(" \t\r\n");
    if (b == std::string::npos) return "";
    size_t e = s.find_last_not_of(" \t\r\n");
    return s.substr(b, e - b + 1);
  }

  bool Dispatch(const std::string& raw) {
    std::string line = Trim(raw);
    if (line.empty() || line[0] == '%' || line[0] == '#') return true;
    std::istringstream in(line);
    std::string cmd;
    in >> cmd;
    std::string rest = Trim(line.substr(cmd.size()));
    if (cmd == "quit" || cmd == "exit") return false;
    if (cmd == "help") {
      Help();
    } else if (cmd == "view") {
      CmdView(rest);
    } else if (cmd == "query") {
      CmdQuery(rest);
    } else if (cmd == "fact") {
      CmdFact(rest);
    } else if (cmd == "show") {
      CmdShow();
    } else if (cmd == "rewrite") {
      CmdRewrite();
    } else if (cmd == "certain") {
      CmdCertain();
    } else if (cmd == "answers") {
      CmdAnswers();
    } else {
      std::printf("unknown command '%s' (try 'help')\n", cmd.c_str());
    }
    return true;
  }

  void Help() {
    std::printf(
        "  view <rule>.     add a view, e.g. view v(X) :- r(X, Y).\n"
        "  query <rule>.    set the query\n"
        "  fact p(1, a).    add a ground fact to the base database\n"
        "  show             print the current problem\n"
        "  rewrite          run LMSS / Bucket / MiniCon / inverse rules\n"
        "  certain          certain answers from view extents only\n"
        "  answers          compare direct vs rewriting answers\n"
        "  quit             leave\n");
  }

  void CmdView(const std::string& text) {
    auto q = ParseQuery(text, &catalog_);
    if (!q.ok()) {
      std::printf("error: %s\n", q.status().ToString().c_str());
      return;
    }
    Status st = views_.Add(std::move(q).value());
    if (!st.ok()) {
      std::printf("error: %s\n", st.ToString().c_str());
      return;
    }
    std::printf("added view %s\n",
                views_.view(views_.size() - 1).name().c_str());
  }

  void CmdQuery(const std::string& text) {
    auto q = ParseQuery(text, &catalog_);
    if (!q.ok()) {
      std::printf("error: %s\n", q.status().ToString().c_str());
      return;
    }
    query_ = std::move(q).value();
    std::printf("query set: %s\n", query_->ToString().c_str());
  }

  void CmdFact(const std::string& text) {
    // Reuse the rule parser: a fact is a rule with an empty body, but its
    // head predicate must stay extensional, so parse via a scratch rule.
    auto parsed = ParseQuery(text, &catalog_);
    if (!parsed.ok()) {
      std::printf("error: %s\n", parsed.status().ToString().c_str());
      return;
    }
    const Query& fact = parsed.value();
    if (!fact.body().empty() || fact.num_vars() != 0) {
      std::printf("error: facts must be ground atoms like p(1, 2).\n");
      return;
    }
    catalog_.SetPredKind(fact.head().pred, PredKind::kExtensional);
    std::vector<Value> row;
    for (Term t : fact.head().args) {
      row.push_back(ValueOfConstant(catalog_, t.constant()));
    }
    base_.Add(fact.head().pred, row);
    std::printf("ok (%llu tuples total)\n",
                static_cast<unsigned long long>(base_.TotalTuples()));
  }

  void CmdShow() {
    if (query_.has_value()) {
      std::printf("query: %s\n", query_->ToString().c_str());
    } else {
      std::printf("query: (none)\n");
    }
    for (const View& v : views_.views()) {
      std::printf("view:  %s\n", v.definition.ToString().c_str());
    }
    for (PredId p : base_.Predicates()) {
      std::printf("base:  %s has %zu tuples\n",
                  catalog_.pred(p).name.c_str(), base_.Find(p)->size());
    }
  }

  bool Ready() {
    if (!query_.has_value()) {
      std::printf("set a query first\n");
      return false;
    }
    if (views_.empty()) {
      std::printf("add at least one view first\n");
      return false;
    }
    return true;
  }

  void CmdRewrite() {
    if (!Ready()) return;
    LmssOptions opts;
    opts.max_rewritings = 10;
    auto lmss = FindEquivalentRewritings(*query_, views_, opts);
    if (!lmss.ok()) {
      std::printf("LMSS error: %s\n", lmss.status().ToString().c_str());
      return;
    }
    if (lmss->exists) {
      std::printf("equivalent rewritings:\n");
      for (const Query& rw : lmss->rewritings) {
        std::printf("  %s\n", rw.ToString().c_str());
      }
    } else {
      std::printf("no equivalent rewriting\n");
    }
    auto mc = MiniConRewrite(*query_, views_);
    if (mc.ok()) {
      std::printf("maximally-contained union (%d disjuncts):\n",
                  mc->rewritings.size());
      for (const Query& rw : mc->rewritings.disjuncts) {
        std::printf("  %s\n", rw.ToString().c_str());
      }
    }
    auto ir = BuildInverseRules(views_);
    if (ir.ok()) {
      std::printf("inverse rules:\n%s", ir->ToString(catalog_).c_str());
    }
  }

  void CmdCertain() {
    if (!Ready()) return;
    auto extents = MaterializeViews(views_, base_);
    if (!extents.ok()) {
      std::printf("error: %s\n", extents.status().ToString().c_str());
      return;
    }
    auto ir = BuildInverseRules(views_);
    if (!ir.ok()) {
      std::printf("error: %s\n", ir.status().ToString().c_str());
      return;
    }
    auto ans = CertainAnswersViaInverseRules(*query_, ir.value(),
                                             extents.value());
    if (!ans.ok()) {
      std::printf("error: %s\n", ans.status().ToString().c_str());
      return;
    }
    std::printf("certain answers from extents alone:\n%s",
                ans.value().ToString(catalog_).c_str());
  }

  void CmdAnswers() {
    if (!Ready()) return;
    auto direct = EvaluateQuery(*query_, base_);
    if (!direct.ok()) {
      std::printf("error: %s\n", direct.status().ToString().c_str());
      return;
    }
    std::printf("direct answers:\n%s",
                direct.value().ToString(catalog_).c_str());
    LmssOptions opts;
    auto lmss = FindEquivalentRewritings(*query_, views_, opts);
    if (lmss.ok() && lmss->exists) {
      auto extents = MaterializeViews(views_, base_);
      if (extents.ok()) {
        auto via = EvaluateQuery(lmss->rewritings[0], extents.value());
        if (via.ok()) {
          std::printf("via rewriting %s:\n%s",
                      lmss->rewritings[0].ToString().c_str(),
                      via.value().ToString(catalog_).c_str());
        }
      }
    }
  }

  bool interactive_ = isatty(0);
  Catalog catalog_;
  ViewSet views_;
  std::optional<Query> query_;
  Database base_{&catalog_};
};

}  // namespace

int main() {
  Shell shell;
  return shell.Run();
}
