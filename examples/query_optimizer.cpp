// Materialized-view query optimization, the use LMSS'95 opens with: when a
// warehouse keeps pre-joined views, rewriting the query over them avoids
// recomputing joins. This example enumerates ALL equivalent rewritings,
// costs each against a simple cardinality model, picks the cheapest, and
// verifies the answers match direct evaluation.
//
//   $ ./query_optimizer [db_size]

#include <cstdio>
#include <cstdlib>

#include "eval/evaluator.h"
#include "eval/materialize.h"
#include "rewriting/lmss.h"
#include "workload/scenarios.h"

using namespace aqv;

namespace {

// Toy cost model: sum of the sizes of the relations each body atom scans,
// weighted by the number of joins (atoms - 1). Enough to rank plans.
double PlanCost(const Query& q, const Database& db) {
  double cost = 0;
  for (const Atom& a : q.body()) {
    const Relation* rel = db.Find(a.pred);
    cost += rel == nullptr ? 0 : static_cast<double>(rel->size());
  }
  return cost * static_cast<double>(q.body().size());
}

}  // namespace

int main(int argc, char** argv) {
  int db_size = argc > 1 ? std::atoi(argv[1]) : 20'000;
  Scenario s = MakeWarehouseScenario(99, db_size).value();
  std::printf("scenario: %s\n", s.description.c_str());
  std::printf("query:    %s\n\n", s.query.ToString().c_str());

  Database extents = MaterializeViews(s.views, s.base).value();

  LmssOptions opts;
  opts.max_rewritings = 50;
  LmssResult res = FindEquivalentRewritings(s.query, s.views, opts).value();
  if (!res.exists) {
    std::printf("no equivalent rewriting; falling back to base tables\n");
    return 0;
  }

  std::printf("equivalent rewritings and their estimated costs:\n");
  const Query* best = nullptr;
  double best_cost = 0;
  for (const Query& rw : res.rewritings) {
    double cost = PlanCost(rw, extents);
    std::printf("  cost %10.0f  %s\n", cost, rw.ToString().c_str());
    if (best == nullptr || cost < best_cost) {
      best = &rw;
      best_cost = cost;
    }
  }
  double base_cost = PlanCost(s.query, s.base);
  std::printf("direct plan cost over base tables: %10.0f\n\n", base_cost);

  EvalStats direct_stats, view_stats;
  Relation direct = EvaluateQuery(s.query, s.base, {}, &direct_stats).value();
  Relation via = EvaluateQuery(*best, extents, {}, &view_stats).value();

  std::printf("chosen plan: %s\n", best->ToString().c_str());
  std::printf("answers: %zu (match direct: %s)\n", via.size(),
              Relation::SameSet(via, direct) ? "yes" : "NO (bug!)");
  std::printf("intermediate rows: direct=%llu, via views=%llu (%.1fx)\n",
              static_cast<unsigned long long>(direct_stats.intermediate_rows),
              static_cast<unsigned long long>(view_stats.intermediate_rows),
              view_stats.intermediate_rows > 0
                  ? static_cast<double>(direct_stats.intermediate_rows) /
                        static_cast<double>(view_stats.intermediate_rows)
                  : 0.0);
  return 0;
}
