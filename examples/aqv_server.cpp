// aqv_server — the TCP line-protocol front door (frontend/server.h): N
// concurrent clients, each with its own Session, all sharing one
// RewriteService worker pool and sharded containment oracle.
//
//   $ ./aqv_server [port] [workers]
//   listening on 127.0.0.1:7461
//
// port 0 (the default) asks the OS for an ephemeral port; the resolved
// one is printed on stdout, so scripts can poll the line and connect
// (tools/frontend_smoke.sh does exactly that, with bash's /dev/tcp).
// workers 0 (the default) resolves to hardware_concurrency. Runs until
// SIGINT/SIGTERM. Protocol spec: docs/OPERATIONS.md.

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <thread>

#include "frontend/server.h"

namespace {

volatile std::sig_atomic_t g_stop = 0;

void HandleSignal(int) { g_stop = 1; }

}  // namespace

int main(int argc, char** argv) {
  aqv::ServerOptions options;
  if (argc > 1) options.port = std::atoi(argv[1]);
  if (argc > 2) options.service.num_workers = std::atoi(argv[2]);

  aqv::FrontendServer server(options);
  aqv::Status status = server.Start();
  if (!status.ok()) {
    std::fprintf(stderr, "aqv_server: %s\n", status.ToString().c_str());
    return 1;
  }
  std::printf("listening on %s:%d\n", server.options().host.c_str(),
              server.port());
  std::fflush(stdout);

  std::signal(SIGINT, HandleSignal);
  std::signal(SIGTERM, HandleSignal);
  while (!g_stop) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  server.Stop();
  std::printf("shut down after %llu connection(s)\n",
              static_cast<unsigned long long>(server.connections_accepted()));
  return 0;
}
