// Quickstart: parse a query and views, run all four rewriting engines, and
// execute a found rewriting against a tiny database.
//
//   $ ./quickstart
//
// Walks the happy path of the public API end to end; see
// data_integration.cpp and certain_answers.cpp for the open-world side.

#include <cstdio>

#include "cq/parser.h"
#include "eval/evaluator.h"
#include "eval/materialize.h"
#include "rewriting/bucket.h"
#include "rewriting/inverse_rules.h"
#include "rewriting/lmss.h"
#include "rewriting/minicon.h"
#include "views/expansion.h"

using namespace aqv;

int main() {
  Catalog catalog;

  // 1. Define views in datalog-ish text. Views are CQs whose head is the
  //    view's name.
  auto views_result = ViewSet::Parse(R"(
    % Pairs connected by one edge into a checked node.
    safe_edge(X, Y) :- edge(X, Y), checked(Y).
    % All checked nodes.
    is_checked(X) :- checked(X).
    % Two-hop reachability.
    two_hop(X, Z) :- edge(X, Y), edge(Y, Z).
  )",
                                     &catalog);
  if (!views_result.ok()) {
    std::printf("view parse error: %s\n",
                views_result.status().ToString().c_str());
    return 1;
  }
  ViewSet views = std::move(views_result).value();

  // 2. The query: two-hop paths through a checked midpoint.
  Query query =
      ParseQuery("q(X, Z) :- edge(X, Y), checked(Y), edge(Y, Z).", &catalog)
          .value();
  std::printf("query:    %s\n", query.ToString().c_str());
  for (const View& v : views.views()) {
    std::printf("view:     %s\n", v.definition.ToString().c_str());
  }

  // 3. LMSS: is there an equivalent rewriting using only the views?
  LmssOptions lmss_opts;
  lmss_opts.max_rewritings = 10;
  LmssResult lmss = FindEquivalentRewritings(query, views, lmss_opts).value();
  std::printf("\nLMSS equivalent rewritings (%zu candidates in pool):\n",
              static_cast<size_t>(lmss.num_candidates));
  for (const Query& rw : lmss.rewritings) {
    Query expansion = ExpandRewriting(rw, views).value().query;
    std::printf("  %s\n    expands to %s\n", rw.ToString().c_str(),
                expansion.ToString().c_str());
  }

  // 4. Bucket and MiniCon: maximally-contained unions.
  BucketResult bucket = BucketRewrite(query, views).value();
  std::printf("\nBucket rewritings (%llu combinations tried):\n",
              static_cast<unsigned long long>(bucket.combinations_enumerated));
  for (const Query& rw : bucket.rewritings.disjuncts) {
    std::printf("  %s\n", rw.ToString().c_str());
  }
  MiniConResult minicon = MiniConRewrite(query, views).value();
  std::printf("MiniCon rewritings (%zu MCDs):\n", minicon.mcds.size());
  for (const Query& rw : minicon.rewritings.disjuncts) {
    std::printf("  %s\n", rw.ToString().c_str());
  }

  // 5. Inverse rules: the datalog route.
  InverseRuleSet inverse = BuildInverseRules(views).value();
  std::printf("\nInverse rules:\n%s", inverse.ToString(catalog).c_str());

  // 6. Execute: materialize the views over a base instance, run the first
  //    LMSS rewriting over the extents, compare with direct evaluation.
  Database base(&catalog);
  PredId edge = catalog.FindPredicate("edge").value();
  PredId checked = catalog.FindPredicate("checked").value();
  for (auto [s, t] : {std::pair<int, int>{1, 2}, {2, 3}, {2, 4}, {3, 4}}) {
    base.Add(edge, {s, t});
  }
  base.Add(checked, {2});
  base.Add(checked, {4});

  Database extents = MaterializeViews(views, base).value();
  Relation direct = EvaluateQuery(query, base).value();
  std::printf("\ndirect answers over base:\n%s",
              direct.ToString(catalog).c_str());
  if (!lmss.rewritings.empty()) {
    Relation via = EvaluateQuery(lmss.rewritings[0], extents).value();
    std::printf("answers via rewriting over view extents:\n%s",
                via.ToString(catalog).c_str());
    std::printf("agree: %s\n",
                Relation::SameSet(direct, via) ? "yes" : "NO (bug!)");
  }
  return 0;
}
