#include <gtest/gtest.h>

#include "containment/containment.h"
#include "containment/minimize.h"
#include "cq/canonical_db.h"
#include "cq/parser.h"
#include "eval/certain.h"
#include "eval/evaluator.h"
#include "eval/materialize.h"
#include "eval/value.h"
#include "rewriting/bucket.h"
#include "rewriting/inverse_rules.h"
#include "rewriting/lmss.h"
#include "rewriting/minicon.h"
#include "util/rng.h"
#include "views/expansion.h"
#include "workload/datagen.h"
#include "workload/generators.h"

namespace aqv {
namespace {

// ---------------------------------------------------------------------------
// Property sweeps over random CQs, parameterized by seed.
// ---------------------------------------------------------------------------

class RandomCqProperties : public ::testing::TestWithParam<uint64_t> {
 protected:
  Catalog cat_;
  Rng rng_{GetParam()};

  Query RandomQ(const std::string& name, int subgoals = 4, int vars = 4) {
    RandomQuerySpec spec;
    spec.num_subgoals = subgoals;
    spec.num_vars = vars;
    spec.num_predicates = 3;
    spec.head_arity = 2;
    spec.constant_prob = 0.1;
    spec.head_name = name;
    return MakeRandomQuery(&cat_, &rng_, spec).value();
  }
};

TEST_P(RandomCqProperties, ContainmentIsReflexive) {
  for (int i = 0; i < 8; ++i) {
    Query q = RandomQ("refl" + std::to_string(i));
    auto r = IsContainedIn(q, q);
    ASSERT_TRUE(r.ok());
    EXPECT_TRUE(r.value()) << q.ToString();
  }
}

TEST_P(RandomCqProperties, ContainmentIsTransitive) {
  // Build chains where containment holds by construction: q, then q with
  // extra atoms (narrower), then narrower still.
  for (int i = 0; i < 6; ++i) {
    Query wide = RandomQ("tw" + std::to_string(i), 3, 4);
    Query mid = wide;
    mid.AddBodyAtom(wide.body()[0]);  // duplicate: equivalent
    Query narrow = mid;
    // Narrow by replacing a fresh variable use with a repeated variable.
    Atom extra = narrow.body()[0];
    narrow.AddBodyAtom(extra);
    ASSERT_TRUE(IsContainedIn(narrow, mid).value());
    ASSERT_TRUE(IsContainedIn(mid, wide).value());
    EXPECT_TRUE(IsContainedIn(narrow, wide).value());
  }
}

TEST_P(RandomCqProperties, MinimizationPreservesEquivalence) {
  for (int i = 0; i < 8; ++i) {
    Query q = RandomQ("min" + std::to_string(i), 5, 4);
    Query m = Minimize(q).value();
    EXPECT_LE(m.body().size(), q.body().size());
    auto eq = AreEquivalent(q, m);
    ASSERT_TRUE(eq.ok());
    EXPECT_TRUE(eq.value()) << "q: " << q.ToString() << "\nm: " << m.ToString();
    // Idempotence.
    Query m2 = Minimize(m).value();
    EXPECT_EQ(m.body().size(), m2.body().size());
  }
}

TEST_P(RandomCqProperties, ContainmentAgreesWithCanonicalDbEvaluation) {
  // Chandra-Merlin: A ⊑ B iff frozen-head(A) ∈ B(canonical_db(A)).
  // Cross-validates the containment core against the evaluation engine.
  for (int i = 0; i < 10; ++i) {
    Query a = RandomQ("ca" + std::to_string(i), 3, 3);
    Query b = RandomQ("cb" + std::to_string(i), 3, 3);
    if (a.head().arity() != b.head().arity()) continue;
    auto contained = IsContainedIn(a, b);
    ASSERT_TRUE(contained.ok());

    FrozenQuery fz = FreezeQuery(a, &cat_);
    Database db(&cat_);
    for (const Atom& atom : fz.frozen.body()) {
      std::vector<Value> row;
      for (Term t : atom.args) {
        row.push_back(ValueOfConstant(cat_, t.constant()));
      }
      db.Add(atom.pred, row);
    }
    Relation result = EvaluateQuery(b, db).value();
    std::vector<Value> head_row;
    for (Term t : fz.frozen.head().args) {
      head_row.push_back(ValueOfConstant(cat_, t.constant()));
    }
    bool in_result = b.head().arity() == 0 ? result.size() == 1
                                           : result.Contains(head_row);
    EXPECT_EQ(contained.value(), in_result)
        << "a: " << a.ToString() << "\nb: " << b.ToString();
  }
}

TEST_P(RandomCqProperties, ContainmentImpliesAnswerSubset) {
  // Monotone semantics: A ⊑ B implies A(D) ⊆ B(D) on random instances.
  Rng data_rng(GetParam() ^ 0xabcdef);
  for (int i = 0; i < 6; ++i) {
    Query a = RandomQ("sa" + std::to_string(i), 3, 3);
    Query b = RandomQ("sb" + std::to_string(i), 3, 3);
    if (a.head().arity() != b.head().arity()) continue;
    bool contained = IsContainedIn(a, b).value();
    if (!contained) continue;
    DataGenSpec spec;
    spec.tuples_per_relation = 40;
    spec.domain_size = 5;
    Database db =
        MakeRandomDatabase(&cat_, ExtensionalPredicates(cat_), &data_rng,
                           spec);
    Relation ra = EvaluateQuery(a, db).value();
    Relation rb = EvaluateQuery(b, db).value();
    for (auto& row : ra.Rows()) {
      EXPECT_TRUE(rb.Contains(row))
          << "containment violated on data\na: " << a.ToString()
          << "\nb: " << b.ToString();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomCqProperties,
                         ::testing::Values(11, 22, 33, 44, 55, 66));

// ---------------------------------------------------------------------------
// Rewriting properties over random chain workloads.
// ---------------------------------------------------------------------------

class ChainRewritingProperties : public ::testing::TestWithParam<uint64_t> {
 protected:
  Catalog cat_;
  Rng rng_{GetParam()};
};

TEST_P(ChainRewritingProperties, LmssWitnessesAlwaysEquivalent) {
  ChainViewSpec vspec;
  vspec.chain.length = 4;
  vspec.num_views = 8;
  vspec.min_length = 1;
  vspec.max_length = 2;
  vspec.policy = DistinguishedPolicy::kEnds;
  Query q = MakeChainQuery(&cat_, vspec.chain).value();
  ViewSet vs = MakeChainViews(&cat_, &rng_, vspec).value();
  LmssOptions opts;
  opts.max_rewritings = 20;
  LmssResult res = FindEquivalentRewritings(q, vs, opts).value();
  for (const Query& rw : res.rewritings) {
    ExpansionResult e = ExpandRewriting(rw, vs).value();
    ASSERT_TRUE(e.satisfiable);
    EXPECT_TRUE(AreEquivalent(e.query, res.minimized_query).value())
        << rw.ToString();
    EXPECT_LE(rw.body().size(), res.minimized_query.body().size());
  }
}

TEST_P(ChainRewritingProperties, MiniConEqualsBucketAsUnions) {
  ChainViewSpec vspec;
  vspec.chain.length = 3;
  vspec.num_views = 6;
  vspec.min_length = 1;
  vspec.max_length = 2;
  vspec.policy = rng_.NextBool(0.5) ? DistinguishedPolicy::kEnds
                                    : DistinguishedPolicy::kAll;
  Query q = MakeChainQuery(&cat_, vspec.chain).value();
  ViewSet vs = MakeChainViews(&cat_, &rng_, vspec).value();

  UnionQuery mc = MiniConRewrite(q, vs).value().rewritings;
  UnionQuery bk = BucketRewrite(q, vs).value().rewritings;
  UnionQuery mc_exp = ExpandUnion(mc, vs).value();
  UnionQuery bk_exp = ExpandUnion(bk, vs).value();
  if (mc_exp.empty() || bk_exp.empty()) {
    EXPECT_EQ(mc_exp.empty(), bk_exp.empty());
    return;
  }
  EXPECT_TRUE(UnionIsContainedInUnion(mc_exp, bk_exp).value());
  EXPECT_TRUE(UnionIsContainedInUnion(bk_exp, mc_exp).value());
}

TEST_P(ChainRewritingProperties, RewritingAnswersMatchDirectAnswers) {
  // For every LMSS rewriting: evaluating it over materialized extents
  // equals evaluating q over the base, on random data.
  ChainViewSpec vspec;
  vspec.chain.length = 3;
  vspec.num_views = 6;
  vspec.min_length = 1;
  vspec.max_length = 2;
  vspec.policy = DistinguishedPolicy::kEnds;
  Query q = MakeChainQuery(&cat_, vspec.chain).value();
  ViewSet vs = MakeChainViews(&cat_, &rng_, vspec).value();
  LmssOptions opts;
  opts.max_rewritings = 5;
  LmssResult res = FindEquivalentRewritings(q, vs, opts).value();
  if (!res.exists) return;

  DataGenSpec dspec;
  dspec.tuples_per_relation = 60;
  dspec.domain_size = 8;
  Database base = MakeRandomDatabase(&cat_, ExtensionalPredicates(cat_),
                                     &rng_, dspec);
  Database extents = MaterializeViews(vs, base).value();
  Relation direct = EvaluateQuery(q, base).value();
  for (const Query& rw : res.rewritings) {
    Relation via = EvaluateQuery(rw, extents).value();
    EXPECT_TRUE(Relation::SameSet(direct, via)) << rw.ToString();
  }
}

TEST_P(ChainRewritingProperties, ContainedRewritingsAreSoundOnData) {
  ChainViewSpec vspec;
  vspec.chain.length = 3;
  vspec.num_views = 5;
  vspec.min_length = 1;
  vspec.max_length = 3;
  vspec.policy = DistinguishedPolicy::kRandom;
  Query q = MakeChainQuery(&cat_, vspec.chain).value();
  ViewSet vs = MakeChainViews(&cat_, &rng_, vspec).value();
  UnionQuery mc = MiniConRewrite(q, vs).value().rewritings;
  if (mc.empty()) return;

  DataGenSpec dspec;
  dspec.tuples_per_relation = 50;
  dspec.domain_size = 6;
  Database base = MakeRandomDatabase(&cat_, ExtensionalPredicates(cat_),
                                     &rng_, dspec);
  Database extents = MaterializeViews(vs, base).value();
  Relation certain = EvaluateRewritingUnion(q, mc, extents).value();
  Relation direct = EvaluateQuery(q, base).value();
  for (auto& row : certain.Rows()) {
    EXPECT_TRUE(direct.Contains(row));
  }
}

TEST_P(ChainRewritingProperties, InverseRulesMatchMiniConAnswers) {
  ChainViewSpec vspec;
  vspec.chain.length = 3;
  vspec.num_views = 5;
  vspec.min_length = 1;
  vspec.max_length = 2;
  vspec.policy = DistinguishedPolicy::kEnds;
  Query q = MakeChainQuery(&cat_, vspec.chain).value();
  ViewSet vs = MakeChainViews(&cat_, &rng_, vspec).value();

  DataGenSpec dspec;
  dspec.tuples_per_relation = 40;
  dspec.domain_size = 6;
  Database base = MakeRandomDatabase(&cat_, ExtensionalPredicates(cat_),
                                     &rng_, dspec);
  Database extents = MaterializeViews(vs, base).value();

  InverseRuleSet ir = BuildInverseRules(vs).value();
  Relation ir_ans = CertainAnswersViaInverseRules(q, ir, extents).value();

  UnionQuery mc = MiniConRewrite(q, vs).value().rewritings;
  if (mc.empty()) {
    EXPECT_EQ(ir_ans.size(), 0u);
    return;
  }
  Relation mc_ans = EvaluateRewritingUnion(q, mc, extents).value();
  EXPECT_TRUE(Relation::SameSet(mc_ans, ir_ans));
}

INSTANTIATE_TEST_SUITE_P(Seeds, ChainRewritingProperties,
                         ::testing::Values(101, 202, 303, 404, 505, 606, 707,
                                           808));

// ---------------------------------------------------------------------------
// Star workload properties.
// ---------------------------------------------------------------------------

class StarRewritingProperties : public ::testing::TestWithParam<uint64_t> {
 protected:
  Catalog cat_;
  Rng rng_{GetParam()};
};

TEST_P(StarRewritingProperties, MiniConEqualsBucketOnStars) {
  StarViewSpec vspec;
  vspec.star.rays = 3;
  vspec.num_views = 5;
  vspec.min_rays = 1;
  vspec.max_rays = 2;
  vspec.policy = DistinguishedPolicy::kAll;
  Query q = MakeStarQuery(&cat_, vspec.star).value();
  ViewSet vs = MakeStarViews(&cat_, &rng_, vspec).value();

  UnionQuery mc = MiniConRewrite(q, vs).value().rewritings;
  UnionQuery bk = BucketRewrite(q, vs).value().rewritings;
  UnionQuery mc_exp = ExpandUnion(mc, vs).value();
  UnionQuery bk_exp = ExpandUnion(bk, vs).value();
  if (mc_exp.empty() || bk_exp.empty()) {
    EXPECT_EQ(mc_exp.empty(), bk_exp.empty());
    return;
  }
  EXPECT_TRUE(UnionIsContainedInUnion(mc_exp, bk_exp).value());
  EXPECT_TRUE(UnionIsContainedInUnion(bk_exp, mc_exp).value());
}

TEST_P(StarRewritingProperties, EquivalentRewritingRoundTripOnStars) {
  StarViewSpec vspec;
  vspec.star.rays = 3;
  vspec.num_views = 6;
  vspec.min_rays = 1;
  vspec.max_rays = 3;
  vspec.policy = DistinguishedPolicy::kAll;
  Query q = MakeStarQuery(&cat_, vspec.star).value();
  ViewSet vs = MakeStarViews(&cat_, &rng_, vspec).value();
  LmssResult res = FindEquivalentRewritings(q, vs).value();
  if (!res.exists) return;
  DataGenSpec dspec;
  dspec.tuples_per_relation = 40;
  dspec.domain_size = 5;
  Database base = MakeRandomDatabase(&cat_, ExtensionalPredicates(cat_),
                                     &rng_, dspec);
  Database extents = MaterializeViews(vs, base).value();
  Relation direct = EvaluateQuery(q, base).value();
  Relation via = EvaluateQuery(res.rewritings[0], extents).value();
  EXPECT_TRUE(Relation::SameSet(direct, via));
}

INSTANTIATE_TEST_SUITE_P(Seeds, StarRewritingProperties,
                         ::testing::Values(21, 42, 63, 84));

}  // namespace
}  // namespace aqv
