#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "containment/containment.h"
#include "containment/oracle.h"
#include "cq/parser.h"
#include "rewriting/engine.h"
#include "util/rng.h"
#include "views/expansion.h"
#include "workload/generators.h"
#include "workload/registry.h"

namespace aqv {
namespace {

/// The unified engine layer: every strategy behind one request/response
/// API, any scenario driving any engine by name, and the shared
/// ContainmentOracle changing performance but never results.
class EngineTest : public ::testing::Test {
 protected:
  Catalog cat_;
  Query Parse(const std::string& s) { return ParseQuery(s, &cat_).value(); }

  ViewSet Views(const std::string& text) {
    auto r = ViewSet::Parse(text, &cat_);
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    return std::move(r).value();
  }

  static RewriteRequest Request(const Query& q, const ViewSet& views,
                                ContainmentOracle* oracle = nullptr) {
    RewriteRequest request;
    request.query.disjuncts.push_back(q);
    request.views = &views;
    request.options.oracle = oracle;
    return request;
  }

  static RewriteResponse Run(const std::string& engine,
                             const RewriteRequest& request) {
    auto r = RunEngine(engine, request);
    EXPECT_TRUE(r.ok()) << engine << ": " << r.status().ToString();
    return std::move(r).value();
  }

  /// Both unions maximally contained => mutually contained (on expansions).
  void ExpectEquivalentUnions(const UnionQuery& a, const UnionQuery& b,
                              const ViewSet& views, const std::string& what) {
    auto ea = ExpandUnion(a, views);
    auto eb = ExpandUnion(b, views);
    ASSERT_TRUE(ea.ok() && eb.ok()) << what;
    if (ea.value().empty() && eb.value().empty()) return;
    auto fwd = UnionIsContainedInUnion(ea.value(), eb.value());
    auto bwd = UnionIsContainedInUnion(eb.value(), ea.value());
    ASSERT_TRUE(fwd.ok() && bwd.ok()) << what;
    EXPECT_TRUE(fwd.value()) << what << ": first union not within second";
    EXPECT_TRUE(bwd.value()) << what << ": second union not within first";
  }
};

TEST_F(EngineTest, RegistryListsAllFourEngines) {
  const std::vector<std::string>& names = EngineNames();
  ASSERT_EQ(names.size(), 4u);
  for (const std::string& name : names) {
    auto engine = MakeEngine(name);
    ASSERT_TRUE(engine.ok()) << name;
    EXPECT_EQ(engine.value()->name(), name);
  }
}

TEST_F(EngineTest, UnknownEngineIsNotFound) {
  auto r = MakeEngine("gqr");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST_F(EngineTest, CqEnginesRejectUnionRequests) {
  Query a = Parse("q(X) :- r(X, Y).");
  Query b = Parse("q(X) :- s(X, Y).");
  ViewSet vs = Views("v(A, B) :- r(A, B).");
  RewriteRequest request = Request(a, vs);
  request.query.disjuncts.push_back(b);
  for (const std::string& name : {"lmss", "bucket", "minicon"}) {
    auto r = RunEngine(name, request);
    ASSERT_FALSE(r.ok()) << name;
    EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument) << name;
  }
  EXPECT_TRUE(RunEngine("ucq", request).ok());
}

TEST_F(EngineTest, LmssEngineFindsWitnessThatVerifies) {
  Query q = Parse("q(X, Z) :- e(X, Y), e(Y, Z).");
  ViewSet vs = Views("v(A, B) :- e(A, B).");
  RewriteResponse resp = Run("lmss", Request(q, vs));
  ASSERT_TRUE(resp.equivalent_exists);
  ASSERT_TRUE(resp.witness.has_value());
  auto exp = ExpandRewriting(*resp.witness, vs);
  ASSERT_TRUE(exp.ok());
  ASSERT_TRUE(exp.value().satisfiable);
  auto equiv = AreEquivalent(exp.value().query, q);
  ASSERT_TRUE(equiv.ok());
  EXPECT_TRUE(equiv.value());
}

TEST_F(EngineTest, BucketAndMiniConAgreeOnHandWrittenWorkload) {
  Query q = Parse("q(X, Z) :- e(X, Y), f(Y, Z).");
  ViewSet vs = Views(
      "v1(A, B) :- e(A, B)."
      "v2(A, B) :- f(A, B)."
      "v3(A, C) :- e(A, B), f(B, C).");
  RewriteResponse bucket = Run("bucket", Request(q, vs));
  RewriteResponse minicon = Run("minicon", Request(q, vs));
  EXPECT_FALSE(bucket.rewritings.empty());
  EXPECT_FALSE(minicon.rewritings.empty());
  ExpectEquivalentUnions(bucket.rewritings, minicon.rewritings, vs,
                         "hand-written");
}

TEST_F(EngineTest, AllEnginesRunEveryScenarioByName) {
  for (const std::string& scenario_name : ScenarioNames()) {
    auto scenario = MakeScenarioByName(scenario_name, /*seed=*/7,
                                       /*db_size=*/50);
    ASSERT_TRUE(scenario.ok()) << scenario_name;
    ContainmentOracle oracle;
    EngineOptions options;
    options.oracle = &oracle;
    for (const std::string& engine_name : EngineNames()) {
      auto resp =
          RewriteScenarioWithEngine(scenario.value(), engine_name, options);
      ASSERT_TRUE(resp.ok()) << scenario_name << "/" << engine_name << ": "
                             << resp.status().ToString();
      EXPECT_EQ(resp.value().engine, engine_name);
    }
    // Four engines over one scenario share containment work.
    EXPECT_GT(oracle.stats().hits, 0u) << scenario_name;
  }
}

TEST_F(EngineTest, BucketAndMiniConAgreeOnScenarios) {
  for (const std::string& scenario_name : ScenarioNames()) {
    auto scenario = MakeScenarioByName(scenario_name, /*seed=*/11,
                                       /*db_size=*/40);
    ASSERT_TRUE(scenario.ok()) << scenario_name;
    EngineOptions options;
    auto bucket =
        RewriteScenarioWithEngine(scenario.value(), "bucket", options);
    auto minicon =
        RewriteScenarioWithEngine(scenario.value(), "minicon", options);
    ASSERT_TRUE(bucket.ok() && minicon.ok()) << scenario_name;
    ExpectEquivalentUnions(bucket.value().rewritings,
                           minicon.value().rewritings,
                           scenario.value().views, scenario_name);
  }
}

TEST_F(EngineTest, CrossEngineAgreementOnRandomChainWorkloads) {
  // Property sweep: Bucket and MiniCon produce equivalent
  // maximally-contained unions, and when LMSS finds an equivalent
  // rewriting its witness expansion really is equivalent to q.
  for (uint64_t seed = 1; seed <= 8; ++seed) {
    Catalog cat;
    Rng rng(seed);
    ChainQuerySpec qspec;
    qspec.length = 3 + static_cast<int>(seed % 3);
    Query q = MakeChainQuery(&cat, qspec).value();
    ChainViewSpec vspec;
    vspec.chain = qspec;
    vspec.num_views = 6;
    vspec.max_length = 3;
    ViewSet vs = MakeChainViews(&cat, &rng, vspec).value();

    ContainmentOracle oracle;
    RewriteRequest request = Request(q, vs, &oracle);
    RewriteResponse bucket = Run("bucket", request);
    RewriteResponse minicon = Run("minicon", request);
    ExpectEquivalentUnions(bucket.rewritings, minicon.rewritings, vs,
                           "chain seed " + std::to_string(seed));

    RewriteResponse lmss = Run("lmss", request);
    if (lmss.equivalent_exists) {
      ASSERT_TRUE(lmss.witness.has_value());
      auto exp = ExpandRewriting(*lmss.witness, vs);
      ASSERT_TRUE(exp.ok());
      auto equiv = AreEquivalent(exp.value().query, q);
      ASSERT_TRUE(equiv.ok());
      EXPECT_TRUE(equiv.value()) << "seed " << seed;
    }
  }
}

TEST_F(EngineTest, OracleOnAndOffProduceIdenticalOutputs) {
  // The memoized oracle is a pure cache: every engine must emit exactly
  // the same rewritings with and without it.
  for (uint64_t seed = 1; seed <= 6; ++seed) {
    Catalog cat;
    Rng rng(seed * 13);
    ChainQuerySpec qspec;
    qspec.length = 4;
    Query q = MakeChainQuery(&cat, qspec).value();
    ChainViewSpec vspec;
    vspec.chain = qspec;
    vspec.num_views = 5;
    ViewSet vs = MakeChainViews(&cat, &rng, vspec).value();

    for (const std::string& engine : EngineNames()) {
      ContainmentOracle oracle;
      RewriteResponse off = Run(engine, Request(q, vs));
      RewriteResponse on = Run(engine, Request(q, vs, &oracle));
      EXPECT_EQ(off.equivalent_exists, on.equivalent_exists)
          << engine << " seed " << seed;
      EXPECT_EQ(off.rewritings.ToString(), on.rewritings.ToString())
          << engine << " seed " << seed;
      EXPECT_EQ(off.stats.combinations, on.stats.combinations)
          << engine << " seed " << seed;
      EXPECT_EQ(on.stats.oracle.lookups(),
                on.stats.oracle.hits + on.stats.oracle.misses);
    }
  }
}

TEST_F(EngineTest, SharedOracleHitsAcrossRepeatedRequests) {
  Query q = Parse("q(X, Z) :- e(X, Y), e(Y, Z).");
  ViewSet vs = Views("v(A, B) :- e(A, B).");
  ContainmentOracle oracle;
  RewriteRequest request = Request(q, vs, &oracle);
  RewriteResponse first = Run("lmss", request);
  OracleStats after_first = oracle.stats();
  EXPECT_GT(after_first.misses, 0u);
  RewriteResponse second = Run("lmss", request);
  // An identical request replays entirely from the cache.
  EXPECT_EQ(oracle.stats().misses, after_first.misses);
  EXPECT_GT(second.stats.oracle.hits, 0u);
  EXPECT_EQ(first.rewritings.ToString(), second.rewritings.ToString());
}

TEST_F(EngineTest, OracleCapacityBudgetSurfacesInStats) {
  Query q = Parse("q(X, Z) :- e(X, Y), f(Y, Z).");
  ViewSet vs = Views(
      "v1(A, B) :- e(A, B)."
      "v2(A, B) :- f(A, B)."
      "v3(A, C) :- e(A, B), f(B, C).");
  ContainmentOracle tiny(/*max_entries=*/1);
  RewriteResponse resp = Run("bucket", Request(q, vs, &tiny));
  EXPECT_EQ(tiny.size(), 1u);
  EXPECT_GT(resp.stats.oracle.capacity_rejects, 0u);
}

TEST_F(EngineTest, Over64SubgoalQueriesReturnUnimplemented) {
  // Regression for the covered_mask width limit, end to end through the
  // engine interface: a 70-subgoal (non-minimizable) query must surface
  // kUnimplemented from every CQ engine, never a silent wrong answer.
  std::string body;
  for (int i = 0; i < 70; ++i) {
    if (i) body += ", ";
    body += "g" + std::to_string(i) + "(X" + std::to_string(i) + ", X" +
            std::to_string(i + 1) + ")";
  }
  Query q = Parse("huge(X0) :- " + body + ".");
  ViewSet vs = Views("vh(A, B) :- g0(A, B).");
  for (const std::string& name : {"lmss", "bucket", "minicon", "ucq"}) {
    auto r = RunEngine(name, Request(q, vs));
    ASSERT_FALSE(r.ok()) << name;
    EXPECT_EQ(r.status().code(), StatusCode::kUnimplemented) << name;
  }
}

}  // namespace
}  // namespace aqv
