#include <gtest/gtest.h>

#include "containment/containment.h"
#include "cq/parser.h"

namespace aqv {
namespace {

class ContainmentTest : public ::testing::Test {
 protected:
  Catalog cat_;
  Query Parse(const std::string& s) { return ParseQuery(s, &cat_).value(); }

  bool Contained(const Query& sub, const Query& super) {
    auto r = IsContainedIn(sub, super);
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    return r.ok() && r.value();
  }
  bool Equivalent(const Query& a, const Query& b) {
    auto r = AreEquivalent(a, b);
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    return r.ok() && r.value();
  }
};

TEST_F(ContainmentTest, MoreConstrainedIsContained) {
  Query narrow = Parse("q(X) :- r(X, Y), s(Y).");
  Query wide = Parse("q(X) :- r(X, Y).");
  EXPECT_TRUE(Contained(narrow, wide));
  EXPECT_FALSE(Contained(wide, narrow));
}

TEST_F(ContainmentTest, SelfLoopIsContainedInPath) {
  Query loop = Parse("q(X) :- e(X, X).");
  Query path = Parse("q(X) :- e(X, Y).");
  EXPECT_TRUE(Contained(loop, path));
  EXPECT_FALSE(Contained(path, loop));
}

TEST_F(ContainmentTest, ChandraMerlinRedundancy) {
  // r(X,Y),r(X,Z) is equivalent to r(X,Y): the duplicate atom is redundant.
  Query redundant = Parse("q(X) :- r(X, Y), r(X, Z).");
  Query minimal = Parse("q(X) :- r(X, Y).");
  EXPECT_TRUE(Equivalent(redundant, minimal));
}

TEST_F(ContainmentTest, ProjectionDirectionMatters) {
  Query a = Parse("q(X) :- r(X, Y), s(Y, Z).");
  Query b = Parse("q(X) :- r(X, Y), s(Y, c).");
  EXPECT_TRUE(Contained(b, a));
  EXPECT_FALSE(Contained(a, b));
}

TEST_F(ContainmentTest, IncomparableQueries) {
  Query a = Parse("q(X) :- r(X, Y), t(Y).");
  Query b = Parse("q(X) :- r(X, Y), u(Y).");
  EXPECT_FALSE(Contained(a, b));
  EXPECT_FALSE(Contained(b, a));
}

TEST_F(ContainmentTest, EquivalenceModuloRenaming) {
  Query a = Parse("q(X, Y) :- r(X, Z), s(Z, Y).");
  Query b = Parse("q(U, W) :- s(T, W), r(U, T).");
  EXPECT_TRUE(Equivalent(a, b));
}

TEST_F(ContainmentTest, PathLengthsAreIncomparable) {
  Query p2 = Parse("q(X, Y) :- e(X, Z), e(Z, Y).");
  Query p3 = Parse("q(X, Y) :- e(X, A), e(A, B), e(B, Y).");
  EXPECT_FALSE(Contained(p2, p3));
  EXPECT_FALSE(Contained(p3, p2));
}

TEST_F(ContainmentTest, BooleanPathIntoClique) {
  // Boolean queries: 3-path maps into a 2-cycle (alternating).
  Query path = Parse("q() :- e(X, Y), e(Y, Z), e(Z, W).");
  Query cyc = Parse("q() :- e(A, B), e(B, A).");
  EXPECT_TRUE(Contained(cyc, path));
  EXPECT_FALSE(Contained(path, cyc));
}

TEST_F(ContainmentTest, ContainmentInUnionWitnessedBySingleDisjunct) {
  Query sub = Parse("q(X) :- r(X, Y), s(Y).");
  UnionQuery super;
  super.disjuncts.push_back(Parse("q(X) :- t(X)."));
  super.disjuncts.push_back(Parse("q(X) :- r(X, Y)."));
  auto r = IsContainedInUnion(sub, super);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r.value());
}

TEST_F(ContainmentTest, NotContainedInUnionOfIncomparables) {
  Query sub = Parse("q(X) :- r(X, Y).");
  UnionQuery super;
  super.disjuncts.push_back(Parse("q(X) :- t(X)."));
  super.disjuncts.push_back(Parse("q(X) :- u(X)."));
  auto r = IsContainedInUnion(sub, super);
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(r.value());
}

TEST_F(ContainmentTest, EmptyUnionContainsNothingSatisfiable) {
  Query sub = Parse("q(X) :- r(X).");
  UnionQuery empty;
  auto r = IsContainedInUnion(sub, empty);
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(r.value());
}

TEST_F(ContainmentTest, UnionContainedInQuery) {
  UnionQuery sub;
  sub.disjuncts.push_back(Parse("q(X) :- r(X, Y), t(Y)."));
  sub.disjuncts.push_back(Parse("q(X) :- r(X, 3)."));
  Query super = Parse("q(X) :- r(X, Y).");
  auto r = UnionIsContainedIn(sub, super);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r.value());
  sub.disjuncts.push_back(Parse("q(X) :- u(X)."));
  r = UnionIsContainedIn(sub, super);
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(r.value());
}

TEST_F(ContainmentTest, UnionInUnion) {
  UnionQuery sub, super;
  sub.disjuncts.push_back(Parse("q(X) :- a(X), b(X)."));
  sub.disjuncts.push_back(Parse("q(X) :- c(X), d(X)."));
  super.disjuncts.push_back(Parse("q(X) :- a(X)."));
  super.disjuncts.push_back(Parse("q(X) :- c(X)."));
  auto r = UnionIsContainedInUnion(sub, super);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r.value());
  auto back = UnionIsContainedInUnion(super, sub);
  ASSERT_TRUE(back.ok());
  EXPECT_FALSE(back.value());
}

TEST_F(ContainmentTest, HeadConstantsRespected) {
  Query a = Parse("q(3) :- r(3).");
  Query b = Parse("q(X) :- r(X).");
  EXPECT_TRUE(Contained(a, b));
  EXPECT_FALSE(Contained(b, a));
}

}  // namespace
}  // namespace aqv
