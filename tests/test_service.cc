#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "containment/oracle.h"
#include "service/batch.h"
#include "service/mpmc_queue.h"
#include "service/service.h"
#include "workload/registry.h"

namespace aqv {
namespace {

/// The concurrent service layer: determinism across worker counts, shard
/// invariance of the sharded oracle, exact stats under a single thread,
/// and a mixed-scenario stress run (the TSan target in CI).

/// Everything about a response that must be scheduling-independent — the
/// payload, minus timing and minus per-request oracle deltas (which under
/// a shared concurrent oracle include other workers' traffic by design).
std::string Payload(const ServiceResponse& r) {
  std::string s = r.engine + "|" + (r.status.ok() ? "ok" : "err") + "|";
  if (!r.status.ok()) return s + r.status.ToString();
  const RewriteResponse& resp = r.response;
  s += resp.engine + "|";
  s += resp.equivalent_exists ? "eq|" : "noeq|";
  s += resp.rewritings.ToString() + "|";
  s += resp.witness.has_value() ? resp.witness->ToString() : "<none>";
  s += "|" + resp.minimized.ToString();
  s += "|cand:" + std::to_string(resp.stats.num_candidates);
  s += "|comb:" + std::to_string(resp.stats.combinations);
  s += "|checks:" + std::to_string(resp.stats.checks);
  return s;
}

ScenarioRequestBatch MixedBatch(int repeats = 1, uint64_t seed = 7,
                                int db_size = 30) {
  auto batch = MakeBatchFromScenarios(ScenarioNames(), EngineNames(), repeats,
                                      seed, db_size);
  EXPECT_TRUE(batch.ok()) << batch.status().ToString();
  return std::move(batch).value();
}

BatchResult RunBatch(const ScenarioRequestBatch& batch,
                     ServiceOptions options) {
  RewriteService service(options);
  auto result = service.RewriteBatch(ToServiceRequests(batch));
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  return std::move(result).value();
}

TEST(MpmcQueueTest, FifoAndDrainAfterClose) {
  MpmcQueue<int> q;
  EXPECT_TRUE(q.Push(1));
  EXPECT_TRUE(q.Push(2));
  q.Close();
  EXPECT_FALSE(q.Push(3));  // closed: rejected
  int v = 0;
  ASSERT_TRUE(q.Pop(&v));  // queued items still drain
  EXPECT_EQ(v, 1);
  ASSERT_TRUE(q.Pop(&v));
  EXPECT_EQ(v, 2);
  EXPECT_FALSE(q.Pop(&v));  // closed and drained
}

TEST(MpmcQueueTest, ConcurrentProducersConsumersLoseNothing) {
  MpmcQueue<int> q;
  constexpr int kPerProducer = 200;
  constexpr int kProducers = 4;
  std::atomic<int> sum{0};
  std::atomic<int> popped{0};
  std::vector<std::thread> threads;
  for (int c = 0; c < 3; ++c) {
    threads.emplace_back([&] {
      int v;
      while (q.Pop(&v)) {
        sum.fetch_add(v);
        popped.fetch_add(1);
      }
    });
  }
  for (int p = 0; p < kProducers; ++p) {
    threads.emplace_back([&q] {
      for (int i = 1; i <= kPerProducer; ++i) q.Push(i);
    });
  }
  for (int t = 3; t < 3 + kProducers; ++t) threads[t].join();
  q.Close();
  for (int t = 0; t < 3; ++t) threads[t].join();
  EXPECT_EQ(popped.load(), kProducers * kPerProducer);
  EXPECT_EQ(sum.load(), kProducers * kPerProducer * (kPerProducer + 1) / 2);
}

TEST(MakeBatchFromScenariosTest, ShapesAndValidation) {
  ScenarioRequestBatch batch = MixedBatch(/*repeats=*/2);
  size_t expected =
      ScenarioNames().size() * EngineNames().size() * 2;
  EXPECT_EQ(batch.size(), expected);
  EXPECT_EQ(batch.engines.size(), expected);
  EXPECT_EQ(batch.labels.size(), expected);
  EXPECT_EQ(batch.scenarios.size(), ScenarioNames().size() * 2);
  for (const RewriteRequest& r : batch.requests) {
    EXPECT_NE(r.views, nullptr);
    EXPECT_EQ(r.query.size(), 1u);
  }

  EXPECT_FALSE(MakeBatchFromScenarios({}, EngineNames(), 1, 1, 10).ok());
  EXPECT_FALSE(MakeBatchFromScenarios(ScenarioNames(), {}, 1, 1, 10).ok());
  EXPECT_FALSE(
      MakeBatchFromScenarios(ScenarioNames(), EngineNames(), 0, 1, 10).ok());
  auto bad_engine =
      MakeBatchFromScenarios(ScenarioNames(), {"gqr"}, 1, 1, 10);
  ASSERT_FALSE(bad_engine.ok());
  EXPECT_EQ(bad_engine.status().code(), StatusCode::kNotFound);
  auto bad_scenario =
      MakeBatchFromScenarios({"atlantis"}, EngineNames(), 1, 1, 10);
  ASSERT_FALSE(bad_scenario.ok());
  EXPECT_EQ(bad_scenario.status().code(), StatusCode::kNotFound);
}

TEST(RewriteServiceTest, OneWorkerMatchesDirectEngineCalls) {
  // The acceptance bar: a 1-worker service with the shared oracle emits
  // responses bit-identical (payload-wise) to direct RewritingEngine calls
  // without any oracle — the service and its cache change performance,
  // never results.
  ScenarioRequestBatch batch = MixedBatch();
  ServiceOptions options;
  options.num_workers = 1;
  BatchResult result = RunBatch(batch, options);
  ASSERT_EQ(result.responses.size(), batch.size());
  for (size_t i = 0; i < batch.size(); ++i) {
    auto direct = RunEngine(batch.engines[i], batch.requests[i]);
    ASSERT_TRUE(direct.ok()) << batch.labels[i];
    ServiceResponse expected;
    expected.engine = batch.engines[i];
    expected.response = std::move(direct).value();
    EXPECT_EQ(Payload(result.responses[i]), Payload(expected))
        << batch.labels[i];
  }
}

TEST(RewriteServiceTest, DeterministicAcrossWorkerCounts) {
  ScenarioRequestBatch batch = MixedBatch(/*repeats=*/2);
  ServiceOptions one;
  one.num_workers = 1;
  ServiceOptions many;
  many.num_workers = 4;
  BatchResult r1 = RunBatch(batch, one);
  BatchResult rn = RunBatch(batch, many);
  ASSERT_EQ(r1.responses.size(), rn.responses.size());
  for (size_t i = 0; i < r1.responses.size(); ++i) {
    EXPECT_EQ(Payload(r1.responses[i]), Payload(rn.responses[i]))
        << batch.labels[i];
  }
  EXPECT_EQ(rn.stats.num_workers, 4);
}

TEST(RewriteServiceTest, ShardCountInvariance) {
  // 1 vs 16 shards: identical outputs (the cache is pure; sharding only
  // moves entries between lock domains), and — single-threaded — identical
  // aggregate oracle totals, since shard selection partitions exactly the
  // buckets the unsharded oracle would have probed.
  ScenarioRequestBatch batch = MixedBatch(/*repeats=*/2);
  ServiceOptions narrow;
  narrow.num_workers = 1;
  narrow.oracle_shards = 1;
  ServiceOptions wide;
  wide.num_workers = 1;
  wide.oracle_shards = 16;
  BatchResult r1 = RunBatch(batch, narrow);
  BatchResult r16 = RunBatch(batch, wide);
  ASSERT_EQ(r1.responses.size(), r16.responses.size());
  for (size_t i = 0; i < r1.responses.size(); ++i) {
    EXPECT_EQ(Payload(r1.responses[i]), Payload(r16.responses[i]))
        << batch.labels[i];
  }
  EXPECT_EQ(r1.stats.oracle.hits, r16.stats.oracle.hits);
  EXPECT_EQ(r1.stats.oracle.misses, r16.stats.oracle.misses);
  EXPECT_EQ(r1.stats.oracle.inserts, r16.stats.oracle.inserts);
  EXPECT_EQ(r1.stats.oracle.confirm_failures,
            r16.stats.oracle.confirm_failures);
  EXPECT_EQ(r16.stats.oracle_shards, 16u);
}

TEST(RewriteServiceTest, ShardedOracleStatsExactUnderSingleThread) {
  // Regression for the counters' conversion to relaxed atomics: driven
  // from one thread, a sharded oracle's aggregated totals must be exact —
  // equal to the 1-shard oracle's on the same call sequence, internally
  // consistent, and reflected one-for-one in size().
  ScenarioRequestBatch batch = MixedBatch();
  ContainmentOracle sharded(/*max_entries=*/size_t{1} << 20,
                            /*num_shards=*/4);
  ContainmentOracle flat(/*max_entries=*/size_t{1} << 20, /*num_shards=*/1);
  EXPECT_EQ(sharded.num_shards(), 4u);
  EXPECT_EQ(flat.num_shards(), 1u);
  for (size_t i = 0; i < batch.size(); ++i) {
    RewriteRequest with_sharded = batch.requests[i];
    with_sharded.options.oracle = &sharded;
    RewriteRequest with_flat = batch.requests[i];
    with_flat.options.oracle = &flat;
    ASSERT_TRUE(RunEngine(batch.engines[i], with_sharded).ok());
    ASSERT_TRUE(RunEngine(batch.engines[i], with_flat).ok());
  }
  OracleStats s = sharded.stats();
  OracleStats f = flat.stats();
  EXPECT_GT(s.lookups(), 0u);
  EXPECT_EQ(s.hits, f.hits);
  EXPECT_EQ(s.misses, f.misses);
  EXPECT_EQ(s.inserts, f.inserts);
  EXPECT_EQ(s.capacity_rejects, f.capacity_rejects);
  EXPECT_EQ(s.confirm_failures, f.confirm_failures);
  EXPECT_EQ(s.lookups(), s.hits + s.misses);
  EXPECT_EQ(sharded.size(), s.inserts);  // no capacity rejects at 2^20
  EXPECT_EQ(s.capacity_rejects, 0u);
  sharded.ResetStats();
  EXPECT_EQ(sharded.stats().lookups(), 0u);
  EXPECT_EQ(sharded.size(), s.inserts);  // entries survive a stats reset
  sharded.Clear();
  EXPECT_EQ(sharded.size(), 0u);
}

TEST(RewriteServiceTest, SubmitWaitStreaming) {
  ScenarioRequestBatch batch = MixedBatch();
  ServiceOptions options;
  options.num_workers = 2;
  RewriteService service(options);
  std::vector<ServiceRequest> requests = ToServiceRequests(batch);

  auto unknown = service.Wait(999999);
  ASSERT_FALSE(unknown.ok());
  EXPECT_EQ(unknown.status().code(), StatusCode::kNotFound);

  std::vector<uint64_t> tickets;
  for (const ServiceRequest& r : requests) {
    auto ticket = service.Submit(r);
    ASSERT_TRUE(ticket.ok());
    tickets.push_back(ticket.value());
  }
  // Poll the first ticket until done, collect the rest blocking.
  std::optional<ServiceResponse> first;
  while (!first.has_value()) {
    auto polled = service.TryWait(tickets[0]);
    ASSERT_TRUE(polled.ok());
    first = std::move(polled).value();
    if (!first.has_value()) std::this_thread::yield();
  }
  EXPECT_TRUE(first->status.ok()) << first->status.ToString();
  for (size_t i = 1; i < tickets.size(); ++i) {
    auto resp = service.Wait(tickets[i]);
    ASSERT_TRUE(resp.ok());
    EXPECT_TRUE(resp.value().status.ok()) << batch.labels[i];
    EXPECT_EQ(resp.value().engine, batch.engines[i]);
  }
  // Each ticket is collectable exactly once.
  auto again = service.Wait(tickets[0]);
  ASSERT_FALSE(again.ok());
  EXPECT_EQ(again.status().code(), StatusCode::kNotFound);

  ServiceStats lifetime = service.lifetime_stats();
  EXPECT_EQ(lifetime.requests, tickets.size());
  EXPECT_EQ(lifetime.ok, tickets.size());
  EXPECT_EQ(lifetime.failed, 0u);
}

TEST(RewriteServiceTest, PerResponseFailuresDoNotFailTheBatch) {
  // A CQ engine handed a 2-disjunct union fails that request only.
  ScenarioRequestBatch batch = MixedBatch();
  std::vector<ServiceRequest> requests = ToServiceRequests(batch);
  ServiceRequest broken = requests[0];
  broken.engine = "lmss";
  broken.request.query.disjuncts.push_back(
      broken.request.query.disjuncts[0]);
  requests.push_back(std::move(broken));

  ServiceOptions options;
  options.num_workers = 2;
  RewriteService service(options);
  auto result = service.RewriteBatch(requests);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().stats.requests, requests.size());
  EXPECT_EQ(result.value().stats.failed, 1u);
  EXPECT_EQ(result.value().stats.ok, requests.size() - 1);
  const ServiceResponse& last = result.value().responses.back();
  ASSERT_FALSE(last.status.ok());
  EXPECT_EQ(last.status.code(), StatusCode::kInvalidArgument);
}

TEST(ServiceStatsTest, NearestRankPercentileSmallSamples) {
  // True nearest-rank: the ceil(q*n)-th order statistic. Regression: the
  // old rounding (q*(n-1)+0.5) reported the *larger* of 2 samples as p50.
  EXPECT_DOUBLE_EQ(NearestRankPercentile({}, 0.50), 0.0);

  EXPECT_DOUBLE_EQ(NearestRankPercentile({5.0}, 0.50), 5.0);
  EXPECT_DOUBLE_EQ(NearestRankPercentile({5.0}, 0.95), 5.0);

  EXPECT_DOUBLE_EQ(NearestRankPercentile({1.0, 9.0}, 0.50), 1.0);
  EXPECT_DOUBLE_EQ(NearestRankPercentile({1.0, 9.0}, 0.95), 9.0);

  EXPECT_DOUBLE_EQ(NearestRankPercentile({1.0, 5.0, 9.0}, 0.50), 5.0);
  EXPECT_DOUBLE_EQ(NearestRankPercentile({1.0, 5.0, 9.0}, 0.95), 9.0);
  EXPECT_DOUBLE_EQ(NearestRankPercentile({1.0, 5.0, 9.0}, 0.01), 1.0);
  EXPECT_DOUBLE_EQ(NearestRankPercentile({1.0, 5.0, 9.0}, 1.00), 9.0);
}

TEST(RewriteServiceTest, BatchStatsAreConsistent) {
  ScenarioRequestBatch batch = MixedBatch(/*repeats=*/2);
  ServiceOptions options;
  options.num_workers = 2;
  options.oracle_shards = 4;
  BatchResult result = RunBatch(batch, options);
  const ServiceStats& s = result.stats;
  EXPECT_EQ(s.requests, batch.size());
  EXPECT_EQ(s.ok + s.failed, s.requests);
  EXPECT_EQ(s.failed, 0u);
  EXPECT_GT(s.wall_ms, 0.0);
  EXPECT_GT(s.throughput_rps, 0.0);
  EXPECT_LE(s.p50_ms, s.p95_ms);
  EXPECT_LE(s.p95_ms, s.max_ms);
  // Repeated scenario×engine items share containment work: the batch's
  // oracle delta must show real cross-request reuse.
  EXPECT_GT(s.oracle.hits, 0u);
  EXPECT_EQ(s.oracle.lookups(), s.oracle.hits + s.oracle.misses);
  EXPECT_EQ(s.oracle_shards, 4u);
}

TEST(RewriteServiceTest, StressMixedScenariosManyWorkers) {
  // The TSan target: 8 workers hammering one 4-shard oracle over three
  // rounds of the full mixed grid, plus a second service sharing nothing.
  ScenarioRequestBatch batch = MixedBatch(/*repeats=*/3, /*seed=*/21);
  std::vector<ServiceRequest> requests = ToServiceRequests(batch);
  ServiceOptions options;
  options.num_workers = 8;
  options.oracle_shards = 4;
  RewriteService service(options);
  for (int round = 0; round < 3; ++round) {
    auto result = service.RewriteBatch(requests);
    ASSERT_TRUE(result.ok()) << "round " << round;
    EXPECT_EQ(result.value().stats.failed, 0u) << "round " << round;
  }
  ServiceStats lifetime = service.lifetime_stats();
  EXPECT_EQ(lifetime.requests, 3 * requests.size());
  // Rounds 2 and 3 replay round 1's containment work from the cache.
  EXPECT_GT(lifetime.oracle.hits, lifetime.oracle.misses);
}

TEST(RewriteServiceTest, DefaultWorkerCountIsAtLeastOne) {
  RewriteService service;  // num_workers = 0 → hardware_concurrency
  EXPECT_GE(service.num_workers(), 1);
  EXPECT_TRUE(service.options().share_oracle);
}

}  // namespace
}  // namespace aqv
