#include <gtest/gtest.h>

#include "rewriting/hardness.h"
#include "rewriting/lmss.h"

namespace aqv {
namespace {

Formula3Sat TrivialSat() {
  // (x1 ∨ x2 ∨ x3)
  Formula3Sat f;
  f.num_vars = 3;
  f.clauses.push_back({{1, 2, 3}});
  return f;
}

Formula3Sat TinyUnsat() {
  // All eight sign patterns over three variables: unsatisfiable.
  Formula3Sat f;
  f.num_vars = 3;
  for (int a : {1, -1}) {
    for (int b : {2, -2}) {
      for (int c : {3, -3}) {
        f.clauses.push_back({{a, b, c}});
      }
    }
  }
  return f;
}

TEST(Hardness, BruteForceSatBasics) {
  EXPECT_TRUE(BruteForceSat(TrivialSat()).value());
  EXPECT_FALSE(BruteForceSat(TinyUnsat()).value());
}

TEST(Hardness, BruteForceSatRejectsHugeInput) {
  Formula3Sat f;
  f.num_vars = 30;
  auto r = BruteForceSat(f);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST(Hardness, ThreeColoringBruteForce) {
  Graph triangle;
  triangle.num_nodes = 3;
  triangle.edges = {{0, 1}, {1, 2}, {2, 0}};
  EXPECT_TRUE(BruteForceThreeColorable(triangle).value());
  Graph k4;
  k4.num_nodes = 4;
  for (int i = 0; i < 4; ++i) {
    for (int j = i + 1; j < 4; ++j) k4.edges.push_back({i, j});
  }
  EXPECT_FALSE(BruteForceThreeColorable(k4).value());
}

TEST(Hardness, ReductionGraphShape) {
  Formula3Sat f = TrivialSat();
  Graph g = ThreeSatToThreeColoring(f);
  EXPECT_EQ(g.num_nodes, 3 + 2 * 3 + 6 * 1);
  // 3 palette + 3 per variable + 12 per clause edges.
  EXPECT_EQ(g.edges.size(), 3u + 9u + 12u);
}

TEST(Hardness, ReductionPreservesSatisfiability) {
  Formula3Sat sat = TrivialSat();
  Graph g_sat = ThreeSatToThreeColoring(sat);
  ASSERT_LE(g_sat.num_nodes, 20);
  EXPECT_TRUE(BruteForceThreeColorable(g_sat).value());
}

TEST(Hardness, ReductionPreservesUnsatisfiability) {
  // Small unsat formula: (x1)(¬x1) forced via duplicated literals.
  Formula3Sat f;
  f.num_vars = 2;
  f.clauses.push_back({{1, 1, 2}});
  f.clauses.push_back({{1, 1, -2}});
  f.clauses.push_back({{-1, -1, 2}});
  f.clauses.push_back({{-1, -1, -2}});
  ASSERT_FALSE(BruteForceSat(f).value());
  // 3 + 4 + 24 nodes > brute-force cap; check satisfiable companion too
  // via the rewriting decision instead.
  auto inst = FormulaToRewritingInstance(f);
  ASSERT_TRUE(inst.ok()) << inst.status().ToString();
  LmssOptions opts;
  opts.candidates.node_budget = 50'000'000;
  opts.candidates.max_homs_per_view = 8;
  auto exists = ExistsEquivalentRewriting(inst.value().query,
                                          inst.value().views, opts);
  ASSERT_TRUE(exists.ok()) << exists.status().ToString();
  EXPECT_FALSE(exists.value());
}

TEST(Hardness, GraphInstanceDecisionMatchesColorability) {
  Graph triangle;
  triangle.num_nodes = 3;
  triangle.edges = {{0, 1}, {1, 2}, {2, 0}};
  auto inst = GraphToRewritingInstance(triangle);
  ASSERT_TRUE(inst.ok());
  EXPECT_TRUE(
      ExistsEquivalentRewriting(inst->query, inst->views).value());

  Graph k4;
  k4.num_nodes = 4;
  for (int i = 0; i < 4; ++i) {
    for (int j = i + 1; j < 4; ++j) k4.edges.push_back({i, j});
  }
  auto inst2 = GraphToRewritingInstance(k4);
  ASSERT_TRUE(inst2.ok());
  EXPECT_FALSE(
      ExistsEquivalentRewriting(inst2->query, inst2->views).value());
}

TEST(Hardness, FullChainOnPlantedSatFormulas) {
  // 3-SAT satisfiability must coincide with rewriting existence through the
  // whole reduction chain (T2's correspondence, in miniature). Random
  // formulas are planted-satisfiable: refuting an unsatisfiable instance is
  // genuinely exponential for the search (that IS the theorem), so the
  // unsat direction is covered by small crafted formulas below.
  Rng rng(2024);
  const std::pair<int, int> sizes[] = {{3, 4}, {3, 5}, {4, 6},
                                       {4, 8}, {5, 10}, {5, 12}};
  int conclusive = 0;
  for (auto [num_vars, num_clauses] : sizes) {
    uint64_t assignment = rng.Next();
    Formula3Sat f = RandomFormula(&rng, num_vars, num_clauses);
    // Plant: flip one literal per clause to agree with `assignment`.
    for (Clause3& c : f.clauses) {
      bool satisfied = false;
      for (int lit : c.lits) {
        int var = lit > 0 ? lit : -lit;
        bool value = (assignment >> (var - 1)) & 1;
        if ((lit > 0) == value) satisfied = true;
      }
      if (!satisfied) {
        int var = std::abs(c.lits[0]);
        c.lits[0] = ((assignment >> (var - 1)) & 1) ? var : -var;
      }
    }
    ASSERT_TRUE(BruteForceSat(f).value());
    auto inst = FormulaToRewritingInstance(f);
    ASSERT_TRUE(inst.ok());
    LmssOptions opts;
    opts.candidates.node_budget = 30'000'000;
    opts.candidates.max_homs_per_view = 4;
    auto exists = ExistsEquivalentRewriting(inst->query, inst->views, opts);
    if (!exists.ok()) {
      // Budget exhausted: an unlucky search order on an NP-hard instance.
      // Inconclusive trials are skipped; the conclusive quorum below keeps
      // the correspondence claim honest.
      ASSERT_EQ(exists.status().code(), StatusCode::kResourceExhausted);
      continue;
    }
    ++conclusive;
    EXPECT_TRUE(exists.value())
        << "planted formula n=" << num_vars << " m=" << num_clauses;
  }
  EXPECT_GE(conclusive, 4);
}

TEST(Hardness, FullChainOnCraftedUnsatFormula) {
  // (x1 ∨ x2)(x1 ∨ ¬x2)(¬x1 ∨ x2)(¬x1 ∨ ¬x2) padded to width 3.
  Formula3Sat f;
  f.num_vars = 2;
  f.clauses.push_back({{1, 1, 2}});
  f.clauses.push_back({{1, 1, -2}});
  f.clauses.push_back({{-1, -1, 2}});
  f.clauses.push_back({{-1, -1, -2}});
  ASSERT_FALSE(BruteForceSat(f).value());
  auto inst = FormulaToRewritingInstance(f);
  ASSERT_TRUE(inst.ok());
  LmssOptions opts;
  opts.candidates.node_budget = 200'000'000;
  opts.candidates.max_homs_per_view = 8;
  auto exists = ExistsEquivalentRewriting(inst->query, inst->views, opts);
  ASSERT_TRUE(exists.ok()) << exists.status().ToString();
  EXPECT_FALSE(exists.value());
}

TEST(Hardness, RandomFormulaShape) {
  Rng rng(7);
  Formula3Sat f = RandomFormula(&rng, 10, 42);
  EXPECT_EQ(f.num_vars, 10);
  EXPECT_EQ(f.clauses.size(), 42u);
  for (const Clause3& c : f.clauses) {
    // Distinct variables within each clause.
    int v0 = std::abs(c.lits[0]), v1 = std::abs(c.lits[1]),
        v2 = std::abs(c.lits[2]);
    EXPECT_NE(v0, v1);
    EXPECT_NE(v0, v2);
    EXPECT_NE(v1, v2);
    EXPECT_GE(v0, 1);
    EXPECT_LE(v0, 10);
  }
}

}  // namespace
}  // namespace aqv
