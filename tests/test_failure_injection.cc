#include <gtest/gtest.h>

#include <string>

#include "containment/containment.h"
#include "containment/minimize.h"
#include "cq/parser.h"
#include "eval/evaluator.h"
#include "rewriting/bucket.h"
#include "rewriting/lmss.h"
#include "rewriting/minicon.h"
#include "views/expansion.h"

namespace aqv {
namespace {

/// Every resource cap and invalid input must surface as a typed Status —
/// never a hang, crash, or silent wrong answer. This suite sweeps the
/// failure paths not already covered by the per-module tests.
class FailureInjectionTest : public ::testing::Test {
 protected:
  Catalog cat_;
  Query Parse(const std::string& s) { return ParseQuery(s, &cat_).value(); }

  ViewSet Views(const std::string& text) {
    auto r = ViewSet::Parse(text, &cat_);
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    return std::move(r).value();
  }

  /// A query with more than 64 subgoals (bitmask limit). Distinct
  /// predicates keep the pre-check minimization trivial.
  Query HugeQuery() {
    std::string body;
    for (int i = 0; i < 70; ++i) {
      if (i) body += ", ";
      body += "r" + std::to_string(i) + "(X" + std::to_string(i) + ", X" +
              std::to_string(i + 1) + ")";
    }
    return Parse("huge(X0) :- " + body + ".");
  }
};

TEST_F(FailureInjectionTest, LmssRejectsOver64Subgoals) {
  Query q = HugeQuery();
  ViewSet vs = Views("v(A, B) :- r0(A, B).");
  auto r = FindEquivalentRewritings(q, vs);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kUnimplemented);
}

TEST_F(FailureInjectionTest, BucketRejectsOver64Subgoals) {
  Query q = HugeQuery();
  ViewSet vs = Views("vb(A, B) :- r0(A, B).");
  auto r = BucketRewrite(q, vs);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kUnimplemented);
}

TEST_F(FailureInjectionTest, MiniConRejectsOver64Subgoals) {
  Query q = HugeQuery();
  ViewSet vs = Views("vm(A, B) :- r0(A, B).");
  auto r = MiniConRewrite(q, vs);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kUnimplemented);
}

TEST_F(FailureInjectionTest, LmssCandidateCapSurfaces) {
  Query q = Parse("q(X, Z) :- e(X, Y), e(Y, Z).");
  ViewSet vs = Views("ve(A, B) :- e(A, B).");
  LmssOptions opts;
  opts.candidates.max_candidates = 1;  // pool needs 2
  auto r = FindEquivalentRewritings(q, vs, opts);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kResourceExhausted);
}

TEST_F(FailureInjectionTest, ContainmentNodeBudgetSurfaces) {
  // Self-join chains force real search; a one-node budget must trip.
  std::string body, body2;
  for (int i = 0; i < 8; ++i) {
    if (i) {
      body += ", ";
      body2 += ", ";
    }
    body += "s(Y" + std::to_string(i) + ", Y" + std::to_string(i + 1) + ")";
    body2 += "s(Z" + std::to_string(i) + ", Z" + std::to_string(i + 1) + ")";
  }
  Query a = Parse("qa(Y0) :- " + body + ".");
  Query b = Parse("qb(Z0) :- " + body2 + ".");
  ContainmentOptions opts;
  opts.node_budget = 1;
  auto r = IsContainedIn(a, b, opts);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kResourceExhausted);
}

TEST_F(FailureInjectionTest, UnionEvalArityMismatch) {
  UnionQuery u;
  u.disjuncts.push_back(Parse("u1(X) :- r(X, Y)."));
  u.disjuncts.push_back(Parse("u2(X, Y) :- r(X, Y)."));
  Database db(&cat_);
  auto r = EvaluateUnion(u, db);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(FailureInjectionTest, EvaluateInvalidQueryFails) {
  // Hand-build a query with an out-of-range variable.
  Query q(&cat_);
  PredId p = cat_.GetOrAddPredicate("p", 1).value();
  PredId h = cat_.GetOrAddPredicate("h", 1, PredKind::kIntensional).value();
  VarId x = q.AddVariable("X");
  q.set_head(Atom(h, {Term::Var(x)}));
  q.AddBodyAtom(Atom(p, {Term::Var(x + 5)}));  // bogus
  Database db(&cat_);
  auto r = EvaluateQuery(q, db);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(FailureInjectionTest, ExpansionOfUnknownViewIsPassThrough) {
  // An atom that is NOT a view must pass through untouched, even when its
  // name looks view-ish: no crash, partial-rewriting semantics.
  ViewSet vs = Views("vx(A) :- r(A, B).");
  Query rw = Parse("p(X) :- vy(X).");
  auto e = ExpandRewriting(rw, vs);
  ASSERT_TRUE(e.ok());
  EXPECT_EQ(e.value().query.body().size(), 1u);
}

TEST_F(FailureInjectionTest, MinimizeBudgetExhaustionPropagates) {
  std::string body;
  for (int i = 0; i < 10; ++i) {
    if (i) body += ", ";
    body += "t(W" + std::to_string(i) + ", W" + std::to_string(i + 1) + ")";
  }
  Query q = Parse("qm(W0) :- " + body + ".");
  ContainmentOptions opts;
  opts.node_budget = 1;
  auto r = Minimize(q, opts);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kResourceExhausted);
}

TEST_F(FailureInjectionTest, ValidateCatchesNullCatalog) {
  Query q;
  EXPECT_FALSE(q.Validate().ok());
}

}  // namespace
}  // namespace aqv
