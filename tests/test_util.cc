#include <gtest/gtest.h>

#include <set>

#include "util/interner.h"
#include "util/rng.h"
#include "util/status.h"

namespace aqv {
namespace {

TEST(Status, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(Status, ErrorCarriesCodeAndMessage) {
  Status s = Status::ParseError("bad token");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kParseError);
  EXPECT_EQ(s.message(), "bad token");
  EXPECT_EQ(s.ToString(), "ParseError: bad token");
}

TEST(Status, AllCodesRender) {
  EXPECT_EQ(Status::InvalidArgument("x").ToString(), "InvalidArgument: x");
  EXPECT_EQ(Status::ResourceExhausted("x").ToString(),
            "ResourceExhausted: x");
  EXPECT_EQ(Status::Internal("x").ToString(), "Internal: x");
  EXPECT_EQ(Status::NotFound("x").ToString(), "NotFound: x");
}

TEST(Result, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(*r, 42);
}

TEST(Result, HoldsError) {
  Result<int> r = Status::NotFound("nope");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(Result, MoveOutValue) {
  Result<std::string> r = std::string("payload");
  std::string v = std::move(r).value();
  EXPECT_EQ(v, "payload");
}

// value() on an error Result must abort with the carried error in every
// build type. Before the hardening this was an assert, compiled out under
// NDEBUG, so Release builds dereferenced an empty optional — UB that the
// ubsan CI job could never see precisely because the optimizer had already
// folded it. These death tests pin the always-on behavior.
TEST(ResultDeathTest, ValueOnErrorAborts) {
  Result<int> r = Status::NotFound("no such row");
  EXPECT_DEATH(static_cast<void>(r.value()), "no such row");
}

TEST(ResultDeathTest, DereferenceOnErrorAborts) {
  Result<std::string> r = Status::Internal("segment torn");
  EXPECT_DEATH(static_cast<void>(r->size()), "segment torn");
}

TEST(ResultDeathTest, MovedValueOnErrorAborts) {
  EXPECT_DEATH(
      {
        Result<std::string> r = Status::InvalidArgument("bad arity");
        std::string v = std::move(r).value();
        static_cast<void>(v);
      },
      "bad arity");
}

TEST(ResultDeathTest, ConstructFromOkStatusAborts) {
  EXPECT_DEATH(static_cast<void>(Result<int>(Status::OK())),
               "without a value");
}

Result<int> Halve(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

Result<int> QuarterViaMacro(int x) {
  AQV_ASSIGN_OR_RETURN(int h, Halve(x));
  AQV_ASSIGN_OR_RETURN(int q, Halve(h));
  return q;
}

TEST(Result, AssignOrReturnPropagates) {
  Result<int> ok = QuarterViaMacro(8);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok.value(), 2);
  Result<int> err = QuarterViaMacro(6);  // 6/2=3 is odd
  ASSERT_FALSE(err.ok());
  EXPECT_EQ(err.status().code(), StatusCode::kInvalidArgument);
}

TEST(Interner, AssignsDenseIdsInOrder) {
  Interner in;
  EXPECT_EQ(in.Intern("a"), 0);
  EXPECT_EQ(in.Intern("b"), 1);
  EXPECT_EQ(in.Intern("a"), 0);
  EXPECT_EQ(in.size(), 2);
  EXPECT_EQ(in.NameOf(1), "b");
}

TEST(Interner, LookupMissReturnsMinusOne) {
  Interner in;
  EXPECT_EQ(in.Lookup("ghost"), -1);
  in.Intern("ghost");
  EXPECT_EQ(in.Lookup("ghost"), 0);
}

TEST(Rng, DeterministicForSeed) {
  Rng a(123), b(123), c(124);
  EXPECT_EQ(a.Next(), b.Next());
  EXPECT_NE(a.Next(), c.Next());
}

TEST(Rng, BoundedStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.NextBounded(17), 17u);
  }
}

TEST(Rng, RangeInclusive) {
  Rng rng(9);
  std::set<int64_t> seen;
  for (int i = 0; i < 500; ++i) {
    int64_t v = rng.NextInRange(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);  // all five values hit
}

TEST(Rng, DoubleInUnitInterval) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, BoolProbabilityExtremes) {
  Rng rng(13);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.NextBool(0.0));
    EXPECT_TRUE(rng.NextBool(1.0));
  }
}

TEST(Rng, ShufflePreservesMultiset) {
  Rng rng(17);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7};
  std::vector<int> orig = v;
  rng.Shuffle(&v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

TEST(Rng, ZipfStaysInRangeAndSkews) {
  Rng rng(19);
  int low = 0, total = 20000;
  for (int i = 0; i < total; ++i) {
    uint64_t v = rng.NextZipf(100, 1.0);
    EXPECT_LT(v, 100u);
    if (v < 10) ++low;
  }
  // With skew 1.0 the low decile should absorb well over its 10% share.
  EXPECT_GT(low, total / 4);
}

}  // namespace
}  // namespace aqv
