// Unit tests of the frontend Session layer (frontend/session.h): every
// command including its error paths, script execution, service-backed
// dispatch, and the workload->script replay round-trip. The Session is
// pure request/response — no I/O — so these tests pin the exact payload
// strings the transports (aqvsh, the TCP server) and the docs doctest
// harness rely on.

#include <fstream>
#include <string>
#include <vector>

#include "eval/evaluator.h"
#include "frontend/replay.h"
#include "frontend/session.h"
#include "gtest/gtest.h"
#include "service/service.h"
#include "workload/registry.h"

namespace aqv {
namespace {

/// The running example: one view, a chain query, three facts.
void LoadToyProblem(Session& session) {
  ASSERT_TRUE(
      session.Execute("view v(X, Y) :- edge(X, Y), checked(Y).").ok());
  ASSERT_TRUE(
      session
          .Execute("query q(X, Z) :- edge(X, Y), checked(Y), edge(Y, Z).")
          .ok());
  ASSERT_TRUE(session.Execute("fact edge(1, 2).").ok());
  ASSERT_TRUE(session.Execute("fact checked(2).").ok());
  ASSERT_TRUE(session.Execute("fact edge(2, 3).").ok());
}

TEST(SessionTest, BlankAndCommentLinesAreNoops) {
  Session session;
  for (const char* line : {"", "   ", "\t", "% comment", "# comment"}) {
    CommandResult r = session.Execute(line);
    EXPECT_TRUE(r.ok()) << line;
    EXPECT_TRUE(r.output.empty());
    EXPECT_FALSE(r.quit);
  }
  EXPECT_EQ(session.commands_executed(), 0u);
}

TEST(SessionTest, UnknownCommandFails) {
  Session session;
  CommandResult r = session.Execute("frobnicate");
  EXPECT_EQ(r.status.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(r.status.message(), "unknown command 'frobnicate' (try 'help')");
}

TEST(SessionTest, HelpListsEveryCommand) {
  Session session;
  CommandResult r = session.Execute("help");
  ASSERT_TRUE(r.ok());
  for (const char* cmd : {"view", "query", "fact", "load", "show",
                          "rewrite", "answer", "explain", "reset", "quit"}) {
    EXPECT_NE(r.output.find(cmd), std::string::npos) << cmd;
  }
}

TEST(SessionTest, QuitAndExitEndTheSession) {
  Session session;
  EXPECT_TRUE(session.Execute("quit").quit);
  EXPECT_TRUE(session.Execute("exit").quit);
  EXPECT_FALSE(session.Execute("help").quit);
}

TEST(SessionTest, ViewAddsAndShows) {
  Session session;
  EXPECT_EQ(session.Execute("show views").output, "(none)");
  CommandResult r = session.Execute("view v(X) :- e(X, Y).");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.output, "added view v");
  EXPECT_EQ(session.views().size(), 1);
  EXPECT_EQ(session.Execute("show views").output, "v(X) :- e(X, Y).");
}

TEST(SessionTest, ViewAcceptsMultipleRulesOnOneLine) {
  Session session;
  CommandResult r =
      session.Execute("view v1(X) :- e(X, Y). v2(Y) :- e(X, Y).");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.output, "added view v1\nadded view v2");
  EXPECT_EQ(session.views().size(), 2);
}

TEST(SessionTest, ViewSecondRuleIsAUnionSource) {
  Session session;
  ASSERT_TRUE(session.Execute("view v(X) :- a(X).").ok());
  CommandResult r = session.Execute("view v(X) :- b(X).");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.output, "added rule 2 for view v (union source)");
  EXPECT_TRUE(session.views().HasUnionSources());
}

TEST(SessionTest, ViewParseErrorReportsOffset) {
  Session session;
  CommandResult r = session.Execute("view v(X :- e(X).");
  EXPECT_EQ(r.status.code(), StatusCode::kParseError);
  EXPECT_EQ(session.views().size(), 0);
}

TEST(SessionTest, ViewOverFactPredicateFails) {
  Session session;
  ASSERT_TRUE(session.Execute("fact e(1).").ok());
  CommandResult r = session.Execute("view e(X) :- f(X).");
  EXPECT_EQ(r.status.code(), StatusCode::kInvalidArgument);
  // The predicate must survive as a fact target (kind restored).
  EXPECT_TRUE(session.Execute("fact e(2).").ok());
}

TEST(SessionTest, ViewMultiRuleFailureIsAllOrNothing) {
  Session session;
  ASSERT_TRUE(session.Execute("fact p(1).").ok());
  ASSERT_TRUE(session.Execute("fact r(1).").ok());
  CommandResult bad =
      session.Execute("view a(X) :- e(X). p(X) :- e(X). r(X) :- e(X).");
  EXPECT_EQ(bad.status.code(), StatusCode::kInvalidArgument);
  // Nothing was committed: no view (not even the valid first rule), and
  // every head predicate of the failed command still accepts facts.
  EXPECT_EQ(session.views().size(), 0);
  EXPECT_TRUE(session.Execute("fact p(2).").ok());
  EXPECT_TRUE(session.Execute("fact r(2).").ok());
  EXPECT_TRUE(session.Execute("fact a(1).").ok());
}

TEST(SessionTest, ViewSelfReferenceRollsBackKinds) {
  Session session;
  CommandResult bad = session.Execute("view v(X) :- v(X).");
  EXPECT_EQ(bad.status.code(), StatusCode::kInvalidArgument);
  EXPECT_TRUE(session.Execute("fact v(1).").ok());
}

TEST(SessionTest, QueryOverFactPredicateFails) {
  Session session;
  ASSERT_TRUE(session.Execute("fact q(1).").ok());
  CommandResult bad = session.Execute("query q(X) :- e(X).");
  EXPECT_EQ(bad.status.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(bad.status.message().find("already has facts"),
            std::string::npos);
  // The predicate survives as a fact target.
  EXPECT_TRUE(session.Execute("fact q(2).").ok());
  EXPECT_FALSE(session.query().has_value());
}

TEST(SessionTest, QueryMismatchedHeadsRollsBackKinds) {
  Session session;
  CommandResult bad = session.Execute("query q(X) :- a(X). p(X) :- b(X).");
  EXPECT_EQ(bad.status.code(), StatusCode::kInvalidArgument);
  EXPECT_TRUE(session.Execute("fact q(1).").ok());
  EXPECT_TRUE(session.Execute("fact p(1).").ok());
}

TEST(SessionTest, ResetKeepsOracleSafeAndUsable) {
  ContainmentOracle oracle;
  SessionOptions options;
  options.engine.oracle = &oracle;
  Session session(options);
  LoadToyProblem(session);
  ASSERT_TRUE(session.Execute("rewrite with lmss").ok());
  uint64_t lookups_before = oracle.stats().lookups();
  EXPECT_GT(lookups_before, 0u);
  ASSERT_TRUE(session.Execute("reset").ok());
  // The retired catalog stays alive (see Session::retired_catalogs_), so
  // the oracle's old entries can never match a reused address; a fresh
  // problem keeps working against the same oracle.
  LoadToyProblem(session);
  ASSERT_TRUE(session.Execute("rewrite with lmss").ok());
  EXPECT_GT(oracle.stats().lookups(), lookups_before);
}

TEST(SessionTest, QuerySetAndReplace) {
  Session session;
  CommandResult r = session.Execute("query q(X) :- e(X, Y).");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.output, "query set: q(X) :- e(X, Y).");
  ASSERT_TRUE(session.query().has_value());
  EXPECT_EQ(session.query()->size(), 1);
  ASSERT_TRUE(session.Execute("query q(X) :- f(X).").ok());
  EXPECT_EQ(session.query()->disjuncts[0].body()[0].pred,
            session.catalog().FindPredicate("f").value());
}

TEST(SessionTest, QueryUnionDisjuncts) {
  Session session;
  CommandResult r = session.Execute("query q(X) :- a(X). q(X) :- b(X).");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.output,
            "query set (2 disjuncts):\n  q(X) :- a(X).\n  q(X) :- b(X).");
  EXPECT_EQ(session.query()->size(), 2);
}

TEST(SessionTest, QueryMismatchedHeadsFail) {
  Session session;
  CommandResult r = session.Execute("query q(X) :- a(X). p(X) :- b(X).");
  EXPECT_EQ(r.status.code(), StatusCode::kInvalidArgument);
  EXPECT_FALSE(session.query().has_value());
}

TEST(SessionTest, QueryParseErrorKeepsOldQuery) {
  Session session;
  ASSERT_TRUE(session.Execute("query q(X) :- e(X, Y).").ok());
  CommandResult r = session.Execute("query q(X :- broken");
  EXPECT_FALSE(r.ok());
  ASSERT_TRUE(session.query().has_value());
  EXPECT_EQ(session.query()->disjuncts[0].ToString(), "q(X) :- e(X, Y).");
}

TEST(SessionTest, FactAddsTuplesAndCounts) {
  Session session;
  EXPECT_EQ(session.Execute("fact e(1, 2).").output, "ok (1 fact total)");
  EXPECT_EQ(session.Execute("fact e(2, 3).").output, "ok (2 facts total)");
  EXPECT_EQ(session.base().TotalTuples(), 2u);
  EXPECT_EQ(session.Execute("show facts").output, "e: 2 tuples");
}

TEST(SessionTest, FactRejectsVariables) {
  Session session;
  CommandResult r = session.Execute("fact e(X, 2).");
  EXPECT_EQ(r.status.code(), StatusCode::kParseError);
  EXPECT_NE(r.status.message().find("ground"), std::string::npos);
}

TEST(SessionTest, FactRejectsViewPredicate) {
  Session session;
  ASSERT_TRUE(session.Execute("view v(X) :- e(X).").ok());
  CommandResult r = session.Execute("fact v(1).");
  EXPECT_EQ(r.status.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(r.status.message().find("intensional"), std::string::npos);
}

TEST(SessionTest, FactArityMismatchFails) {
  Session session;
  ASSERT_TRUE(session.Execute("fact e(1, 2).").ok());
  CommandResult r = session.Execute("fact e(1).");
  EXPECT_EQ(r.status.code(), StatusCode::kInvalidArgument);
}

TEST(SessionTest, ShowEnginesListsRegistryWithDefault) {
  Session session;
  CommandResult r = session.Execute("show engines");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.output, "lmss\nbucket\nminicon (default)\nucq");
}

TEST(SessionTest, ShowUnknownTargetFails) {
  Session session;
  CommandResult r = session.Execute("show bogus");
  EXPECT_EQ(r.status.code(), StatusCode::kInvalidArgument);
}

TEST(SessionTest, RewriteRequiresQueryAndViews) {
  Session session;
  EXPECT_EQ(session.Execute("rewrite").status.message(),
            "set a query first");
  ASSERT_TRUE(session.Execute("query q(X) :- e(X).").ok());
  EXPECT_EQ(session.Execute("rewrite").status.message(),
            "add at least one view first");
}

TEST(SessionTest, RewriteDefaultEngineMiniCon) {
  Session session;
  LoadToyProblem(session);
  CommandResult r = session.Execute("rewrite");
  ASSERT_TRUE(r.ok());
  EXPECT_NE(r.output.find("engine minicon:"), std::string::npos);
  EXPECT_NE(r.output.find("rewritings=1"), std::string::npos);
}

TEST(SessionTest, RewriteWithLmssReportsNoEquivalent) {
  Session session;
  LoadToyProblem(session);
  CommandResult r = session.Execute("rewrite with lmss");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.output, "engine lmss: equivalent=no, rewritings=0");
}

TEST(SessionTest, RewriteWithLmssFindsWitness) {
  Session session;
  ASSERT_TRUE(session.Execute("view v(X, Y) :- e(X, Y).").ok());
  ASSERT_TRUE(session.Execute("query q(X, Y) :- e(X, Y).").ok());
  CommandResult r = session.Execute("rewrite with lmss");
  ASSERT_TRUE(r.ok());
  EXPECT_NE(r.output.find("equivalent=yes"), std::string::npos);
  EXPECT_NE(r.output.find("v("), std::string::npos);
}

TEST(SessionTest, RewriteUnknownEngineFails) {
  Session session;
  LoadToyProblem(session);
  CommandResult r = session.Execute("rewrite with bogus");
  EXPECT_EQ(r.status.code(), StatusCode::kNotFound);
}

TEST(SessionTest, RewriteUsageErrors) {
  Session session;
  LoadToyProblem(session);
  EXPECT_EQ(session.Execute("rewrite quickly").status.code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(session.Execute("answer sideways").status.code(),
            StatusCode::kInvalidArgument);
}

TEST(SessionTest, AnswerDirectMatchesGroundTruth) {
  Session session;
  LoadToyProblem(session);
  CommandResult r = session.Execute("answer route direct");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.output, "route direct: 1 answer (exact)\n(1, 3)");
}

TEST(SessionTest, AnswerDefaultRouteIsCertain) {
  Session session;
  LoadToyProblem(session);
  CommandResult r = session.Execute("answer");
  ASSERT_TRUE(r.ok());
  // No equivalent rewriting exists here, so the certain answers under
  // sound views are empty — strictly weaker than the direct (1, 3).
  EXPECT_EQ(r.output, "route complete (engine minicon): 0 answers (certain)");
}

TEST(SessionTest, AnswerInverseRulesAgreesWithComplete) {
  Session session;
  LoadToyProblem(session);
  CommandResult r = session.Execute("answer route inverse-rules");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.output, "route inverse-rules: 0 answers (certain)");
}

TEST(SessionTest, AnswerCostRouteExecutesCheapestPlan) {
  Session session;
  LoadToyProblem(session);
  CommandResult r = session.Execute("answer route cost");
  ASSERT_TRUE(r.ok());
  EXPECT_NE(r.output.find("route cost"), std::string::npos);
  EXPECT_NE(r.output.find("(1, 3)"), std::string::npos);
}

TEST(SessionTest, AnswerUnknownRouteOrEngineFails) {
  Session session;
  LoadToyProblem(session);
  EXPECT_EQ(session.Execute("answer route bogus").status.code(),
            StatusCode::kNotFound);
  EXPECT_EQ(session.Execute("answer with bogus").status.code(),
            StatusCode::kNotFound);
}

TEST(SessionTest, AnswerDirectWithoutViewsWorks) {
  Session session;
  ASSERT_TRUE(session.Execute("query q(X) :- e(X, Y).").ok());
  ASSERT_TRUE(session.Execute("fact e(7, 8).").ok());
  CommandResult r = session.Execute("answer route direct");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.output, "route direct: 1 answer (exact)\n(7)");
}

TEST(SessionTest, ExplainRanksPlans) {
  Session session;
  ASSERT_TRUE(session.Execute("view v(X, Y) :- e(X, Y).").ok());
  ASSERT_TRUE(session.Execute("query q(X, Y) :- e(X, Y).").ok());
  ASSERT_TRUE(session.Execute("fact e(1, 2).").ok());
  CommandResult r = session.Execute("explain");
  ASSERT_TRUE(r.ok());
  EXPECT_NE(r.output.find("plans ("), std::string::npos);
  EXPECT_NE(r.output.find("chosen: ["), std::string::npos);
  EXPECT_NE(r.output.find("engine=direct"), std::string::npos);
}

TEST(SessionTest, ExplainRejectsUnionQueries) {
  Session session;
  ASSERT_TRUE(session.Execute("view v(X) :- a(X).").ok());
  ASSERT_TRUE(session.Execute("query q(X) :- a(X). q(X) :- b(X).").ok());
  EXPECT_EQ(session.Execute("explain").status.code(),
            StatusCode::kInvalidArgument);
}

TEST(SessionTest, ResetDropsEverything) {
  Session session;
  LoadToyProblem(session);
  CommandResult r = session.Execute("reset");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.output, "session reset");
  EXPECT_TRUE(session.views().empty());
  EXPECT_FALSE(session.query().has_value());
  EXPECT_EQ(session.base().TotalTuples(), 0u);
  EXPECT_EQ(session.Execute("show views").output, "(none)");
  EXPECT_EQ(session.Execute("show facts").output, "(none)");
  // The fresh catalog accepts the old names at new arities.
  EXPECT_TRUE(session.Execute("fact edge(1).").ok());
}

TEST(SessionTest, ShowStatsCountsState) {
  Session session;
  LoadToyProblem(session);
  CommandResult r = session.Execute("show stats");
  ASSERT_TRUE(r.ok());
  EXPECT_NE(r.output.find("commands=6"), std::string::npos);
  EXPECT_NE(r.output.find("views=1"), std::string::npos);
  EXPECT_NE(r.output.find("facts=3"), std::string::npos);
  EXPECT_NE(r.output.find("query=1 disjunct(s)"), std::string::npos);
  EXPECT_NE(r.output.find("last rewrite: candidates=0"), std::string::npos);
  // No oracle, no service: neither optional line appears.
  EXPECT_EQ(r.output.find("oracle:"), std::string::npos);
  EXPECT_EQ(r.output.find("service:"), std::string::npos);
}

TEST(SessionTest, ShowStatsSurfacesOracle) {
  ContainmentOracle oracle;
  SessionOptions options;
  options.engine.oracle = &oracle;
  Session session(options);
  LoadToyProblem(session);
  ASSERT_TRUE(session.Execute("rewrite with lmss").ok());
  CommandResult r = session.Execute("show stats");
  ASSERT_TRUE(r.ok());
  EXPECT_NE(r.output.find("oracle: hits="), std::string::npos);
  EXPECT_GT(oracle.stats().lookups(), 0u);
}

TEST(SessionTest, TranscriptLinesRendering) {
  CommandResult ok;
  ok.output = "added view v";
  EXPECT_EQ(TranscriptLines(ok), "added view v");
  CommandResult err;
  err.status = Status::InvalidArgument("boom");
  EXPECT_EQ(TranscriptLines(err), "error: InvalidArgument: boom");
  err.output = "partial";
  EXPECT_EQ(TranscriptLines(err), "partial\nerror: InvalidArgument: boom");
}

TEST(SessionTest, ExecuteScriptStopsAtQuit) {
  Session session;
  std::vector<CommandResult> results = session.ExecuteScript(
      "view v(X) :- e(X).\nquit\nfact e(1).\n");
  ASSERT_EQ(results.size(), 2u);
  EXPECT_TRUE(results[1].quit);
  EXPECT_EQ(session.base().TotalTuples(), 0u);
}

TEST(SessionTest, ExecuteScriptCollectsErrorsAndContinues) {
  Session session;
  std::vector<CommandResult> results =
      session.ExecuteScript("bogus\nfact e(1).\nbroken(\nfact e(2).");
  ASSERT_EQ(results.size(), 4u);
  EXPECT_FALSE(results[0].ok());
  EXPECT_TRUE(results[1].ok());
  EXPECT_FALSE(results[2].ok());
  EXPECT_TRUE(results[3].ok());
  EXPECT_EQ(session.base().TotalTuples(), 2u);
}

TEST(SessionTest, LoadRunsAScriptFile) {
  std::string path = testing::TempDir() + "/aqv_load_test.aqv";
  {
    std::ofstream out(path);
    out << "% comment\nview v(X) :- e(X, Y).\nfact e(1, 2).\n";
  }
  Session session;
  CommandResult r = session.Execute("load " + path);
  ASSERT_TRUE(r.ok()) << r.status.ToString();
  EXPECT_NE(r.output.find("added view v"), std::string::npos);
  EXPECT_NE(r.output.find("loaded " + path + " (2 commands, 0 errors)"),
            std::string::npos);
  EXPECT_EQ(session.views().size(), 1);
}

TEST(SessionTest, LoadReportsPerLineErrors) {
  std::string path = testing::TempDir() + "/aqv_load_errors.aqv";
  {
    std::ofstream out(path);
    out << "fact e(1).\nbogus\n";
  }
  Session session;
  CommandResult r = session.Execute("load " + path);
  EXPECT_EQ(r.status.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(r.output.find(path + ":2: error:"), std::string::npos);
  EXPECT_NE(r.output.find("(2 commands, 1 error)"), std::string::npos);
  EXPECT_EQ(session.base().TotalTuples(), 1u);  // the good line ran
}

TEST(SessionTest, LoadMissingFileAndDisabled) {
  Session session;
  EXPECT_EQ(session.Execute("load /nonexistent/x.aqv").status.code(),
            StatusCode::kNotFound);
  EXPECT_EQ(session.Execute("load").status.code(),
            StatusCode::kInvalidArgument);
  SessionOptions options;
  options.enable_load = false;
  Session server_side(options);
  EXPECT_EQ(server_side.Execute("load x").status.code(),
            StatusCode::kUnimplemented);
}

TEST(SessionTest, LoadDepthCapStopsRecursion) {
  std::string path = testing::TempDir() + "/aqv_load_self.aqv";
  {
    std::ofstream out(path);
    out << "load " << path << "\n";
  }
  Session session;
  CommandResult r = session.Execute("load " + path);
  EXPECT_EQ(r.status.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(r.output.find("ResourceExhausted"), std::string::npos);
}

TEST(SessionTest, ServiceBackedSessionProducesIdenticalPayloads) {
  RewriteService service;
  SessionOptions backed;
  backed.service = &service;
  Session with_service(backed);
  Session without_service;
  const char* script[] = {
      "view v(X, Y) :- edge(X, Y), checked(Y).",
      "query q(X, Z) :- edge(X, Y), checked(Y), edge(Y, Z).",
      "fact edge(1, 2).",  "fact checked(2).", "fact edge(2, 3).",
      "rewrite with lmss", "rewrite",          "answer route direct",
      "answer",            "answer route cost"};
  for (const char* line : script) {
    CommandResult a = with_service.Execute(line);
    CommandResult b = without_service.Execute(line);
    EXPECT_EQ(a.status.code(), b.status.code()) << line;
    EXPECT_EQ(a.output, b.output) << line;
  }
  EXPECT_GT(service.lifetime_stats().requests, 0u);
}

TEST(ReplayTest, ScriptFromScenarioRoundTrips) {
  for (const std::string& name : ScenarioNames()) {
    Scenario scenario =
        std::move(MakeScenarioByName(name, /*seed=*/11, /*db_size=*/40))
            .value();
    Result<std::string> script = ScriptFromScenario(scenario);
    ASSERT_TRUE(script.ok()) << name << ": " << script.status().ToString();
    Session session;
    int errors = 0;
    for (const CommandResult& r : session.ExecuteScript(*script)) {
      if (!r.ok()) {
        ++errors;
        ADD_FAILURE() << name << ": " << r.status.ToString();
      }
    }
    ASSERT_EQ(errors, 0);
    // The replayed problem answers identically to the original scenario.
    Relation expected =
        std::move(EvaluateQuery(scenario.query, scenario.base)).value();
    CommandResult direct = session.Execute("answer route direct");
    ASSERT_TRUE(direct.ok()) << name;
    std::string count = expected.size() == 1
                            ? "1 answer"
                            : std::to_string(expected.size()) + " answers";
    EXPECT_NE(direct.output.find(count + " (exact)"), std::string::npos)
        << name << "\n"
        << direct.output;
  }
}

TEST(ReplayTest, ReplayedScenarioAnswersMatchAllRoutes) {
  Scenario scenario =
      std::move(MakeScenarioByName("travel", /*seed=*/5, /*db_size=*/30))
          .value();
  Session session;
  for (const CommandResult& r :
       session.ExecuteScript(ScriptFromScenario(scenario).value())) {
    ASSERT_TRUE(r.ok()) << r.status.ToString();
  }
  CommandResult direct = session.Execute("answer route direct");
  CommandResult cost = session.Execute("answer route cost");
  ASSERT_TRUE(direct.ok());
  ASSERT_TRUE(cost.ok());
  // Same tuples whichever way the pipeline gets them (the goodflights
  // source admits an equivalent rewriting, so cost is exact).
  std::string direct_rows = direct.output.substr(direct.output.find('\n'));
  std::string cost_rows = cost.output.substr(cost.output.find('\n'));
  EXPECT_EQ(direct_rows, cost_rows);
}

}  // namespace
}  // namespace aqv
