#include <gtest/gtest.h>

#include "cq/parser.h"
#include "rewriting/inverse_rules.h"

namespace aqv {
namespace {

class InverseRulesTest : public ::testing::Test {
 protected:
  Catalog cat_;

  ViewSet Views(const std::string& text) {
    auto r = ViewSet::Parse(text, &cat_);
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    return std::move(r).value();
  }

  InverseRuleSet Build(const ViewSet& vs) {
    auto r = BuildInverseRules(vs);
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    return std::move(r).value();
  }
};

TEST_F(InverseRulesTest, OneRulePerBodyAtom) {
  ViewSet vs = Views("v(X) :- r(X, Y), s(Y, Z).");
  InverseRuleSet ir = Build(vs);
  EXPECT_EQ(ir.rules.size(), 2u);
}

TEST_F(InverseRulesTest, SkolemPerExistentialVariable) {
  ViewSet vs = Views("v(X) :- r(X, Y), s(Y, Z).");
  InverseRuleSet ir = Build(vs);
  EXPECT_EQ(ir.functions.size(), 2u);
  EXPECT_EQ(ir.functions[0].arity, 1);  // one distinguished var X
}

TEST_F(InverseRulesTest, DistinguishedVarsPassThrough) {
  ViewSet vs = Views("v(X, Y) :- r(X, Y).");
  InverseRuleSet ir = Build(vs);
  ASSERT_EQ(ir.rules.size(), 1u);
  const InverseRule& rule = ir.rules[0];
  EXPECT_FALSE(rule.head_args[0].is_skolem());
  EXPECT_FALSE(rule.head_args[1].is_skolem());
  EXPECT_TRUE(ir.functions.empty());
}

TEST_F(InverseRulesTest, SharedExistentialSharesSkolem) {
  // Y occurs in both atoms: both rules must reference the SAME function.
  ViewSet vs = Views("v(X, Z) :- r(X, Y), s(Y, Z).");
  InverseRuleSet ir = Build(vs);
  ASSERT_EQ(ir.rules.size(), 2u);
  ASSERT_EQ(ir.functions.size(), 1u);
  int fn_r = ir.rules[0].head_args[1].skolem_fn;
  int fn_s = ir.rules[1].head_args[0].skolem_fn;
  EXPECT_EQ(fn_r, 0);
  EXPECT_EQ(fn_s, 0);
}

TEST_F(InverseRulesTest, ConstantsInViewBody) {
  ViewSet vs = Views("v(X) :- r(X, 3).");
  InverseRuleSet ir = Build(vs);
  ASSERT_EQ(ir.rules.size(), 1u);
  EXPECT_FALSE(ir.rules[0].head_args[1].is_skolem());
  EXPECT_TRUE(ir.rules[0].head_args[1].term.is_const());
}

TEST_F(InverseRulesTest, RepeatedHeadVarKeptInViewAtom) {
  ViewSet vs = Views("v(X, X) :- r(X, X).");
  InverseRuleSet ir = Build(vs);
  ASSERT_EQ(ir.rules.size(), 1u);
  const Atom& pattern = ir.rules[0].view_atom;
  EXPECT_EQ(pattern.args[0], pattern.args[1]);  // match filter preserved
}

TEST_F(InverseRulesTest, SkolemParamsAreHeadVars) {
  ViewSet vs = Views("v(A, B) :- r(A, C), s(B, C).");
  InverseRuleSet ir = Build(vs);
  ASSERT_EQ(ir.functions.size(), 1u);
  EXPECT_EQ(ir.functions[0].arity, 2);
  for (const InverseRule& rule : ir.rules) {
    EXPECT_EQ(rule.skolem_params.size(), 2u);
  }
}

TEST_F(InverseRulesTest, ToStringRendersSkolems) {
  ViewSet vs = Views("v(X) :- r(X, Y).");
  InverseRuleSet ir = Build(vs);
  std::string s = ir.ToString(cat_);
  EXPECT_NE(s.find("f0("), std::string::npos);
  EXPECT_NE(s.find(":- v("), std::string::npos);
}

TEST_F(InverseRulesTest, MultipleViewsAccumulate) {
  ViewSet vs = Views(
      "v1(X) :- r(X, Y).\n"
      "v2(A, B) :- s(A, B), t(B).");
  InverseRuleSet ir = Build(vs);
  EXPECT_EQ(ir.rules.size(), 3u);
  EXPECT_EQ(ir.functions.size(), 1u);  // only v1's Y
}

TEST_F(InverseRulesTest, FunctionsRecordProvenance) {
  ViewSet vs = Views("v9(X) :- r(X, Y).");
  InverseRuleSet ir = Build(vs);
  ASSERT_EQ(ir.functions.size(), 1u);
  EXPECT_EQ(ir.functions[0].var_name, "Y");
  EXPECT_EQ(cat_.pred(ir.functions[0].view_pred).name, "v9");
}

}  // namespace
}  // namespace aqv
