#include <gtest/gtest.h>

#include "containment/containment.h"
#include "cq/parser.h"
#include "rewriting/ucq_rewriting.h"
#include "views/expansion.h"

namespace aqv {
namespace {

class UcqRewritingTest : public ::testing::Test {
 protected:
  Catalog cat_;
  Query Parse(const std::string& s) { return ParseQuery(s, &cat_).value(); }

  ViewSet Views(const std::string& text) {
    auto r = ViewSet::Parse(text, &cat_);
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    return std::move(r).value();
  }
};

TEST_F(UcqRewritingTest, AllDisjunctsRewritable) {
  UnionQuery q;
  q.disjuncts.push_back(Parse("q(X) :- a(X, Y)."));
  q.disjuncts.push_back(Parse("q(X) :- b(X, Y)."));
  ViewSet vs = Views("va(A, B) :- a(A, B).\nvb(A, B) :- b(A, B).");
  UcqRewritingResult res = FindEquivalentUnionRewriting(q, vs).value();
  ASSERT_TRUE(res.exists);
  ASSERT_EQ(res.rewritings.size(), 2);
  // The expanded rewriting union is equivalent to the input union.
  UnionQuery exp = ExpandUnion(res.rewritings, vs).value();
  EXPECT_TRUE(UnionIsContainedInUnion(exp, q).value());
  EXPECT_TRUE(UnionIsContainedInUnion(q, exp).value());
}

TEST_F(UcqRewritingTest, OneUnrewritableDisjunctKillsIt) {
  UnionQuery q;
  q.disjuncts.push_back(Parse("q(X) :- a(X, Y)."));
  q.disjuncts.push_back(Parse("q(X) :- c(X, Y)."));
  ViewSet vs = Views("wa(A, B) :- a(A, B).");
  UcqRewritingResult res = FindEquivalentUnionRewriting(q, vs).value();
  EXPECT_FALSE(res.exists);
  EXPECT_TRUE(res.rewritings.empty());
}

TEST_F(UcqRewritingTest, SubsumedDisjunctDoesNotBlock) {
  // The second disjunct is contained in the first; minimization drops it,
  // so its lack of a rewriting must not matter.
  UnionQuery q;
  q.disjuncts.push_back(Parse("q(X) :- a(X, Y)."));
  q.disjuncts.push_back(Parse("q(X) :- a(X, Y), zz(Y)."));
  ViewSet vs = Views("xa(A, B) :- a(A, B).");
  UcqRewritingResult res = FindEquivalentUnionRewriting(q, vs).value();
  ASSERT_TRUE(res.exists);
  EXPECT_EQ(res.minimized.size(), 1);
  EXPECT_EQ(res.rewritings.size(), 1);
}

TEST_F(UcqRewritingTest, EmptyUnionRejected) {
  UnionQuery q;
  ViewSet vs;
  auto res = FindEquivalentUnionRewriting(q, vs);
  ASSERT_FALSE(res.ok());
  EXPECT_EQ(res.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(UcqRewritingTest, MaximallyContainedUnionMergesAndDedups) {
  UnionQuery q;
  q.disjuncts.push_back(Parse("q(X) :- a(X, Y)."));
  q.disjuncts.push_back(Parse("q(X) :- a(X, Y)."));  // duplicate disjunct
  ViewSet vs = Views("ya(A, B) :- a(A, B).\nyn(A) :- a(A, B), t(B).");
  UnionQuery mc = MaximallyContainedUnionRewriting(q, vs).value();
  // Duplicates collapse; both the exact and the narrower rewriting appear.
  EXPECT_EQ(mc.size(), 2);
  UnionQuery exp = ExpandUnion(mc, vs).value();
  for (const Query& e : exp.disjuncts) {
    EXPECT_TRUE(IsContainedInUnion(e, q).value()) << e.ToString();
  }
}

TEST_F(UcqRewritingTest, MaximallyContainedEmptyWhenNoViewApplies) {
  UnionQuery q;
  q.disjuncts.push_back(Parse("q(X) :- zq(X, Y)."));
  ViewSet vs = Views("za(A, B) :- a(A, B).");
  UnionQuery mc = MaximallyContainedUnionRewriting(q, vs).value();
  EXPECT_TRUE(mc.empty());
}

}  // namespace
}  // namespace aqv
