#include <gtest/gtest.h>

#include "containment/comparison_containment.h"
#include "containment/containment.h"
#include "cq/parser.h"

namespace aqv {
namespace {

class ComparisonTest : public ::testing::Test {
 protected:
  Catalog cat_;
  Query Parse(const std::string& s) { return ParseQuery(s, &cat_).value(); }

  bool Contained(const Query& sub, const Query& super) {
    auto r = IsContainedIn(sub, super);
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    return r.ok() && r.value();
  }
};

// --- satisfiability --------------------------------------------------------

TEST_F(ComparisonTest, SatisfiableSimpleOrder) {
  EXPECT_TRUE(ComparisonsSatisfiable(Parse("q(X) :- r(X, Y), X < Y.")));
}

TEST_F(ComparisonTest, UnsatCycleOfStrictOrder) {
  EXPECT_FALSE(
      ComparisonsSatisfiable(Parse("q(X) :- r(X, Y), X < Y, Y < X.")));
}

TEST_F(ComparisonTest, LeCycleForcesEqualityAndIsSatisfiable) {
  EXPECT_TRUE(
      ComparisonsSatisfiable(Parse("q(X) :- r(X, Y), X <= Y, Y <= X.")));
}

TEST_F(ComparisonTest, LeCycleWithNeIsUnsat) {
  EXPECT_FALSE(ComparisonsSatisfiable(
      Parse("q(X) :- r(X, Y), X <= Y, Y <= X, X != Y.")));
}

TEST_F(ComparisonTest, EqChainToDistinctConstantsUnsat) {
  EXPECT_FALSE(ComparisonsSatisfiable(
      Parse("q(X) :- r(X, Y), X = 3, Y = 4, X = Y.")));
}

TEST_F(ComparisonTest, ConstantSandwich) {
  // 5 < X < 5 is unsatisfiable; 3 < X < 7 is satisfiable.
  EXPECT_FALSE(
      ComparisonsSatisfiable(Parse("q(X) :- r(X), 5 < X, X < 5.")));
  EXPECT_TRUE(ComparisonsSatisfiable(Parse("q(X) :- r(X), 3 < X, X < 7.")));
}

TEST_F(ComparisonTest, DenseDomainBetweenAdjacentIntegers) {
  // Over the rationals 3 < X < 4 is satisfiable (documented semantics).
  EXPECT_TRUE(ComparisonsSatisfiable(Parse("q(X) :- r(X), 3 < X, X < 4.")));
}

TEST_F(ComparisonTest, NeSelfUnsat) {
  EXPECT_FALSE(ComparisonsSatisfiable(Parse("q(X) :- r(X), X != X.")));
}

TEST_F(ComparisonTest, TransitiveThroughConstants) {
  EXPECT_FALSE(ComparisonsSatisfiable(
      Parse("q(X) :- r(X, Y), X <= 3, 5 <= X.")));
}

// --- NormalizeEqualities ---------------------------------------------------

TEST_F(ComparisonTest, NormalizeCollapsesVarEqVar) {
  Query q = Parse("q(X) :- r(X, Y), s(Y, Z), X = Z.");
  bool unsat = false;
  Query n = NormalizeEqualities(q, &unsat);
  ASSERT_FALSE(unsat);
  EXPECT_EQ(n.num_vars(), 2);
  EXPECT_TRUE(n.comparisons().empty());
  // r's first argument and s's second argument now coincide.
  EXPECT_EQ(n.body()[0].args[0], n.body()[1].args[1]);
}

TEST_F(ComparisonTest, NormalizeSubstitutesConstants) {
  Query q = Parse("q(X) :- r(X, Y), Y = 5.");
  bool unsat = false;
  Query n = NormalizeEqualities(q, &unsat);
  ASSERT_FALSE(unsat);
  EXPECT_TRUE(n.body()[0].args[1].is_const());
  EXPECT_EQ(*cat_.constant(n.body()[0].args[1].constant()).numeric, 5);
}

TEST_F(ComparisonTest, NormalizeDetectsConstantClash) {
  Query q = Parse("q(X) :- r(X, Y), X = 3, X = 4.");
  bool unsat = false;
  NormalizeEqualities(q, &unsat);
  EXPECT_TRUE(unsat);
}

TEST_F(ComparisonTest, NormalizeEvaluatesGroundComparisons) {
  bool unsat = false;
  NormalizeEqualities(Parse("q(X) :- r(X, Y), X = 3, Y = 4, Y < X."), &unsat);
  EXPECT_TRUE(unsat);
  unsat = false;
  Query ok = NormalizeEqualities(
      Parse("q(X) :- r(X, Y), X = 3, Y = 4, X < Y."), &unsat);
  EXPECT_FALSE(unsat);
  EXPECT_TRUE(ok.comparisons().empty());  // trivially true, dropped
}

TEST_F(ComparisonTest, NormalizeKeepsResidualOrder) {
  Query q = Parse("q(X) :- r(X, Y), s(Y, Z), X = Y, Z < X.");
  bool unsat = false;
  Query n = NormalizeEqualities(q, &unsat);
  ASSERT_FALSE(unsat);
  ASSERT_EQ(n.comparisons().size(), 1u);
  EXPECT_EQ(n.comparisons()[0].op, CmpOp::kLt);
}

// --- linearization enumeration --------------------------------------------

TEST_F(ComparisonTest, EnumerateUnconstrainedPair) {
  Query q = Parse("q(X, Y) :- r(X, Y).");
  auto r = EnumerateLinearizations(q, {0, 1}, {}, 1000);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r.value().size(), 3u);  // X<Y, X=Y, X>Y
}

TEST_F(ComparisonTest, EnumerateRespectsConstraints) {
  Query q = Parse("q(X, Y) :- r(X, Y), X < Y.");
  auto r = EnumerateLinearizations(q, {0, 1}, {}, 1000);
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r.value().size(), 1u);
  const Linearization& lin = r.value()[0];
  EXPECT_LT(lin.var_rank[0], lin.var_rank[1]);
}

TEST_F(ComparisonTest, EnumerateWithConstantSpine) {
  Query q = Parse("q(X) :- r(X, X).");
  auto r = EnumerateLinearizations(q, {0}, {5}, 1000);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().size(), 3u);  // before, equal to, after 5
}

TEST_F(ComparisonTest, EnumerateCapExceeded) {
  Query q = Parse("q(A, B) :- r(A, B), r(B, C), r(C, D), r(D, E).");
  auto r = EnumerateLinearizations(q, {0, 1, 2, 3, 4}, {}, 10);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kResourceExhausted);
}

TEST_F(ComparisonTest, OrderedBellCount) {
  // 3 unconstrained variables: 13 weak orders (ordered Bell number).
  Query q = Parse("q(A, B, C) :- r(A, B), r(B, C).");
  auto r = EnumerateLinearizations(q, {0, 1, 2}, {}, 1000);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().size(), 13u);
}

// --- containment with comparisons ------------------------------------------

TEST_F(ComparisonTest, ComparisonRelaxation) {
  Query narrow = Parse("q(X) :- r(X), X < 3.");
  Query wide = Parse("q(X) :- r(X), X < 10.");
  Query plain = Parse("q(X) :- r(X).");
  EXPECT_TRUE(Contained(narrow, wide));
  EXPECT_FALSE(Contained(wide, narrow));
  EXPECT_TRUE(Contained(narrow, plain));
  EXPECT_FALSE(Contained(plain, narrow));
}

TEST_F(ComparisonTest, UnsatisfiableContainedInEverything) {
  Query unsat = Parse("q(X) :- r(X), X < 2, 5 < X.");
  Query other = Parse("q(X) :- t(X).");
  EXPECT_TRUE(Contained(unsat, other));
}

TEST_F(ComparisonTest, ImpliedEqualityEnablesMapping) {
  // X<=Y,Y<=X forces X=Y, matching the self-loop query both ways.
  Query sub = Parse("q(X) :- r(X, Y), X <= Y, Y <= X.");
  Query super = Parse("q(Z) :- r(Z, Z).");
  EXPECT_TRUE(Contained(sub, super));
  EXPECT_TRUE(Contained(super, sub));
}

TEST_F(ComparisonTest, EqualityNormalizationInsideSub) {
  Query sub = Parse("q(X) :- r(X, Y), X = Y.");
  Query super = Parse("q(Z) :- r(Z, Z).");
  EXPECT_TRUE(Contained(sub, super));
  EXPECT_TRUE(Contained(super, sub));
}

TEST_F(ComparisonTest, CaseSplitNeedsTheUnion) {
  // r(X,Y) is contained in (X<=Y) ∪ (Y<=X) but in neither disjunct alone:
  // the classic density/totality case split.
  Query q1 = Parse("q() :- r(X, Y).");
  UnionQuery u;
  u.disjuncts.push_back(Parse("q() :- r(X, Y), X <= Y."));
  u.disjuncts.push_back(Parse("q() :- r(X, Y), Y <= X."));
  auto r = IsContainedInUnion(q1, u);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_TRUE(r.value());
  EXPECT_FALSE(Contained(q1, u.disjuncts[0]));
  EXPECT_FALSE(Contained(q1, u.disjuncts[1]));
}

TEST_F(ComparisonTest, ConstantsInterleaveWithVariables) {
  Query sub = Parse("q(X) :- r(X), 3 < X, X < 5.");
  Query super = Parse("q(X) :- r(X), 2 < X.");
  EXPECT_TRUE(Contained(sub, super));
  Query super2 = Parse("q(X) :- r(X), 4 < X.");
  EXPECT_FALSE(Contained(sub, super2));  // X could be 3.5
}

TEST_F(ComparisonTest, NeComparisonContainment) {
  Query sub = Parse("q(X) :- r(X, Y), X < Y.");
  Query super = Parse("q(X) :- r(X, Y), X != Y.");
  EXPECT_TRUE(Contained(sub, super));
  EXPECT_FALSE(Contained(super, sub));
}

TEST_F(ComparisonTest, ComparisonOnJoinVariable) {
  Query sub = Parse("q(X) :- r(X, Y), s(Y, Z), Y = 4.");
  Query super = Parse("q(X) :- r(X, Y), s(Y, Z), 3 < Y.");
  EXPECT_TRUE(Contained(sub, super));
  EXPECT_FALSE(Contained(super, sub));
}

TEST_F(ComparisonTest, CapSurfacesAsResourceExhausted) {
  Query sub =
      Parse("q(A, B, C, D, E) :- r(A, B), r(B, C), r(C, D), r(D, E), A < 9.");
  Query super = Parse(
      "q(A, B, C, D, E) :- r(A, B), r(B, C), r(C, D), r(D, E), A < 9, "
      "A <= E.");
  ContainmentOptions opts;
  opts.linearization_cap = 5;
  auto r = IsContainedIn(sub, super, opts);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kResourceExhausted);
}

}  // namespace
}  // namespace aqv
