// Tests of the scenario-family generator (workload/generator.h) and its
// frontend bridges: determinism (same spec => byte-identical scripts),
// seed sensitivity, spec validation, Session round-trips of both the
// plain and the churning soak scripts, structural properties (noise
// views avoid the query, mirrors guarantee an equivalent rewriting), the
// registry hook, and the route-equivalence property the differential
// soak harness leans on — direct ≡ complete ≡ inverse-rules ≡ cost on
// generated scenarios, for every registered engine, seeds pinned.

#include <set>
#include <string>
#include <vector>

#include "answering/answering.h"
#include "eval/relation.h"
#include "frontend/replay.h"
#include "frontend/session.h"
#include "gtest/gtest.h"
#include "rewriting/engine.h"
#include "workload/generator.h"
#include "workload/registry.h"

namespace aqv {
namespace {

/// A small, fast spec the structural tests share.
GeneratedScenarioSpec SmallSpec(uint64_t seed) {
  GeneratedScenarioSpec spec;
  spec.seed = seed;
  spec.num_predicates = 8;
  spec.num_views = 20;
  spec.query_atoms = 3;
  spec.facts_per_predicate = 8;
  spec.domain_size = 16;
  return spec;
}

TEST(GeneratorTest, SameSpecYieldsByteIdenticalScripts) {
  GeneratedScenarioSpec spec = SmallSpec(42);
  auto a = GenerateScenario(spec);
  auto b = GenerateScenario(spec);
  ASSERT_TRUE(a.ok()) << a.status().ToString();
  ASSERT_TRUE(b.ok()) << b.status().ToString();
  auto script_a = ScriptFromScenario(*a);
  auto script_b = ScriptFromScenario(*b);
  ASSERT_TRUE(script_a.ok() && script_b.ok());
  EXPECT_EQ(*script_a, *script_b);

  SoakScriptOptions sopts;
  sopts.seed = 9;
  sopts.churn_cycles = 2;
  auto soak_a = SoakScriptFromScenario(*a, sopts);
  auto soak_b = SoakScriptFromScenario(*b, sopts);
  ASSERT_TRUE(soak_a.ok() && soak_b.ok());
  EXPECT_EQ(soak_a->text, soak_b->text);
  EXPECT_EQ(soak_a->phases, soak_b->phases);
  EXPECT_EQ(soak_a->final_views, soak_b->final_views);
}

TEST(GeneratorTest, DistinctSeedsYieldDistinctTopologies) {
  std::set<std::string> scripts;
  for (uint64_t seed : {1u, 2u, 3u, 4u, 5u}) {
    auto scenario = GenerateScenario(SmallSpec(seed));
    ASSERT_TRUE(scenario.ok()) << scenario.status().ToString();
    auto script = ScriptFromScenario(*scenario);
    ASSERT_TRUE(script.ok());
    scripts.insert(*script);
  }
  EXPECT_EQ(scripts.size(), 5u);
}

TEST(GeneratorTest, SpecValidationRejectsOutOfBandValues) {
  GeneratedScenarioSpec spec;
  spec.num_predicates = 1;
  EXPECT_FALSE(GenerateScenario(spec).ok());
  spec = GeneratedScenarioSpec{};
  spec.num_views = 0;
  EXPECT_FALSE(GenerateScenario(spec).ok());
  spec = GeneratedScenarioSpec{};
  spec.coverage = 0.0;
  EXPECT_FALSE(GenerateScenario(spec).ok());
  spec = GeneratedScenarioSpec{};
  spec.chain_weight = 0.0;
  spec.star_weight = 0.0;
  spec.snowflake_weight = 0.0;
  EXPECT_FALSE(GenerateScenario(spec).ok());
  spec = GeneratedScenarioSpec{};
  spec.min_view_atoms = 5;
  spec.max_view_atoms = 3;
  EXPECT_FALSE(GenerateScenario(spec).ok());
  EXPECT_TRUE(GeneratedScenarioSpec{}.Validate().ok());
}

TEST(GeneratorTest, ScriptRoundTripsThroughASession) {
  auto scenario = GenerateScenario(SmallSpec(7));
  ASSERT_TRUE(scenario.ok()) << scenario.status().ToString();
  auto script = ScriptFromScenario(*scenario);
  ASSERT_TRUE(script.ok()) << script.status().ToString();

  Session session;
  std::vector<CommandResult> results = session.ExecuteScript(*script);
  for (const CommandResult& r : results) {
    EXPECT_TRUE(r.ok()) << r.status.ToString();
  }
  EXPECT_EQ(static_cast<int>(session.views().size()),
            scenario->views.size());
  ASSERT_TRUE(session.query().has_value());
  EXPECT_EQ(session.query()->disjuncts[0].ToString(),
            scenario->query.ToString());
}

TEST(GeneratorTest, ChurningSoakScriptReplaysCleanly) {
  auto scenario = GenerateScenario(SmallSpec(11));
  ASSERT_TRUE(scenario.ok());
  SoakScriptOptions sopts;
  sopts.seed = 3;
  sopts.churn_cycles = 2;
  auto script = SoakScriptFromScenario(*scenario, sopts);
  ASSERT_TRUE(script.ok()) << script.status().ToString();
  // 1 initial phase + per-cycle add and retire phases.
  EXPECT_GE(script->phases, 3);
  EXPECT_GT(script->answer_probes, 0);
  EXPECT_GT(script->rewrite_probes, 0);
  EXPECT_GT(script->final_views, 0);

  Session session;
  std::vector<CommandResult> results = session.ExecuteScript(script->text);
  int answers = 0;
  int rewrites = 0;
  for (const CommandResult& r : results) {
    EXPECT_TRUE(r.ok()) << r.status.ToString();
    if (r.output.rfind("route ", 0) == 0) ++answers;
    if (r.output.rfind("engine ", 0) == 0) ++rewrites;
  }
  EXPECT_EQ(answers, script->answer_probes);
  EXPECT_EQ(rewrites, script->rewrite_probes);
  // The session ends holding exactly the surviving view set.
  EXPECT_EQ(static_cast<int>(session.views().size()), script->final_views);
}

TEST(GeneratorTest, NoiseViewsAvoidTheQueryPredicates) {
  GeneratedScenarioSpec spec = SmallSpec(13);
  spec.guarantee_equivalent = false;
  spec.redundancy = 0.0;
  spec.noise_view_fraction = 1.0;
  auto scenario = GenerateScenario(spec);
  ASSERT_TRUE(scenario.ok());
  std::set<PredId> query_preds;
  for (const Atom& atom : scenario->query.body()) {
    query_preds.insert(atom.pred);
  }
  for (const View& view : scenario->views.views()) {
    for (const Atom& atom : view.definition.body()) {
      EXPECT_EQ(query_preds.count(atom.pred), 0u)
          << view.definition.ToString();
    }
  }
}

TEST(GeneratorTest, MirrorViewsGuaranteeAnEquivalentRewriting) {
  for (uint64_t seed : {21u, 22u, 23u}) {
    auto scenario = GenerateScenario(SmallSpec(seed));
    ASSERT_TRUE(scenario.ok());
    auto response = RewriteScenarioWithEngine(*scenario, "lmss", {});
    ASSERT_TRUE(response.ok()) << response.status().ToString();
    EXPECT_TRUE(response->equivalent_exists) << "seed " << seed;
  }
}

TEST(GeneratorTest, MultiTenantViewsStayWithinTheirTenant) {
  GeneratedScenarioSpec spec = SmallSpec(17);
  spec.num_tenants = 3;
  auto scenario = GenerateScenario(spec);
  ASSERT_TRUE(scenario.ok());
  const Catalog& catalog = *scenario->catalog;
  for (const View& view : scenario->views.views()) {
    // Every atom of one view names predicates of one tenant: prefixes
    // never mix within a body.
    std::set<std::string> prefixes;
    for (const Atom& atom : view.definition.body()) {
      std::string name = catalog.pred(atom.pred).name;
      size_t underscore = name.find('_');
      prefixes.insert(underscore == std::string::npos
                          ? std::string("t0")
                          : name.substr(0, underscore));
    }
    EXPECT_EQ(prefixes.size(), 1u) << view.definition.ToString();
  }
}

TEST(GeneratorTest, RegistryExposesGeneratedButNotInScenarioNames) {
  EXPECT_EQ(ScenarioNames().size(), 3u);
  auto scenario = MakeScenarioByName("generated", 5, 60);
  ASSERT_TRUE(scenario.ok()) << scenario.status().ToString();
  EXPECT_GT(scenario->views.size(), 0);
  auto again = MakeScenarioByName("generated", 5, 60);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(scenario->description, again->description);
}

/// Satellite property: on generated scenarios with mirrors, all four
/// answering routes agree exactly, for every registered engine — 20
/// pinned seeds x engines.
TEST(GeneratorTest, RouteEquivalenceHoldsOnGeneratedScenarios) {
  for (uint64_t seed = 100; seed < 120; ++seed) {
    GeneratedScenarioSpec spec = SmallSpec(seed);
    spec.num_views = 15;
    spec.facts_per_predicate = 6;
    spec.domain_size = 12;
    auto scenario = GenerateScenario(spec);
    ASSERT_TRUE(scenario.ok()) << "seed " << seed;

    auto run = [&](AnswerRoute route, const std::string& engine) {
      AnswerRequest request;
      request.query.disjuncts.push_back(scenario->query);
      request.views = &scenario->views;
      request.base = &scenario->base;
      request.route = route;
      request.engine = engine;
      auto response = AnswerQuery(request);
      EXPECT_TRUE(response.ok())
          << "seed " << seed << " route "
          << AnswerRouteName(route) << " engine " << engine << ": "
          << response.status().ToString();
      Relation rel = response->result;
      rel.SortDedup();
      return rel.ToString(*scenario->catalog);
    };

    std::string direct = run(AnswerRoute::kDirect, "minicon");
    for (const std::string& engine : EngineNames()) {
      EXPECT_EQ(run(AnswerRoute::kCompleteRewriting, engine), direct)
          << "seed " << seed << " engine " << engine;
    }
    EXPECT_EQ(run(AnswerRoute::kInverseRules, "minicon"), direct)
        << "seed " << seed;
    EXPECT_EQ(run(AnswerRoute::kCostBased, "minicon"), direct)
        << "seed " << seed;
  }
}

}  // namespace
}  // namespace aqv
