#include <gtest/gtest.h>

#include "cq/parser.h"
#include "eval/certain.h"
#include "eval/materialize.h"
#include "rewriting/bucket.h"
#include "rewriting/minicon.h"

namespace aqv {
namespace {

class CertainTest : public ::testing::Test {
 protected:
  Catalog cat_;
  Query Parse(const std::string& s) { return ParseQuery(s, &cat_).value(); }

  ViewSet Views(const std::string& text) {
    auto r = ViewSet::Parse(text, &cat_);
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    return std::move(r).value();
  }
};

TEST_F(CertainTest, InverseRulesRecoverJoinableAnswers) {
  // v exposes both endpoints of r; certain answers = extent itself.
  Query q = Parse("q(X, Y) :- r(X, Y).");
  ViewSet vs = Views("v(X, Y) :- r(X, Y).");
  InverseRuleSet ir = BuildInverseRules(vs).value();
  Database extents(&cat_);
  extents.Add(cat_.FindPredicate("v").value(), {1, 2});
  extents.Add(cat_.FindPredicate("v").value(), {3, 4});
  auto ans = CertainAnswersViaInverseRules(q, ir, extents);
  ASSERT_TRUE(ans.ok()) << ans.status().ToString();
  EXPECT_EQ(ans.value().size(), 2u);
}

TEST_F(CertainTest, SkolemAnswersAreDropped) {
  // v hides Y; asking for (X, Y) pairs can never be certain about Y.
  Query q = Parse("q(X, Y) :- r(X, Y).");
  ViewSet vs = Views("vh(X) :- r(X, Y).");
  InverseRuleSet ir = BuildInverseRules(vs).value();
  Database extents(&cat_);
  extents.Add(cat_.FindPredicate("vh").value(), {1});
  auto ans = CertainAnswersViaInverseRules(q, ir, extents);
  ASSERT_TRUE(ans.ok());
  EXPECT_TRUE(ans.value().empty());
}

TEST_F(CertainTest, ProjectedQueryStillCertain) {
  // Same hidden column, but the query only asks for X.
  Query q = Parse("q(X) :- r(X, Y).");
  ViewSet vs = Views("vh2(X) :- r(X, Y).");
  InverseRuleSet ir = BuildInverseRules(vs).value();
  Database extents(&cat_);
  extents.Add(cat_.FindPredicate("vh2").value(), {1});
  auto ans = CertainAnswersViaInverseRules(q, ir, extents);
  ASSERT_TRUE(ans.ok());
  ASSERT_EQ(ans.value().size(), 1u);
  EXPECT_TRUE(ans.value().Contains({1}));
}

TEST_F(CertainTest, SkolemJoinRecoversAcrossAtoms) {
  // The hidden join variable still joins inside one view.
  Query q = Parse("q(X, Z) :- r(X, Y), s(Y, Z).");
  ViewSet vs = Views("vj(X, Z) :- r(X, Y), s(Y, Z).");
  InverseRuleSet ir = BuildInverseRules(vs).value();
  Database extents(&cat_);
  extents.Add(cat_.FindPredicate("vj").value(), {1, 9});
  auto ans = CertainAnswersViaInverseRules(q, ir, extents);
  ASSERT_TRUE(ans.ok());
  ASSERT_EQ(ans.value().size(), 1u);
  EXPECT_TRUE(ans.value().Contains({1, 9}));
}

TEST_F(CertainTest, NoCrossViewSkolemJoins) {
  // Different views get different Skolems: no spurious certain answers.
  Query q = Parse("q(X, Z) :- r(X, Y), s(Y, Z).");
  ViewSet vs = Views("vr(X) :- r(X, Y).\nvs(Z) :- s(Y, Z).");
  InverseRuleSet ir = BuildInverseRules(vs).value();
  Database extents(&cat_);
  extents.Add(cat_.FindPredicate("vr").value(), {1});
  extents.Add(cat_.FindPredicate("vs").value(), {9});
  auto ans = CertainAnswersViaInverseRules(q, ir, extents);
  ASSERT_TRUE(ans.ok());
  EXPECT_TRUE(ans.value().empty());
}

TEST_F(CertainTest, RewritingUnionEvaluation) {
  Query q = Parse("q(X) :- e(X, Y), t(Y).");
  ViewSet vs = Views("v1(A) :- e(A, B), t(B).");
  auto mc = MiniConRewrite(q, vs);
  ASSERT_TRUE(mc.ok());
  ASSERT_EQ(mc.value().rewritings.size(), 1);
  Database extents(&cat_);
  extents.Add(cat_.FindPredicate("v1").value(), {7});
  auto ans = EvaluateRewritingUnion(q, mc.value().rewritings, extents);
  ASSERT_TRUE(ans.ok());
  ASSERT_EQ(ans.value().size(), 1u);
  EXPECT_TRUE(ans.value().Contains({7}));
}

TEST_F(CertainTest, EmptyUnionIsTypedEmptyResult) {
  // No contained rewriting ⇒ no derivable certain answers: an empty
  // relation of the query's own head type, not an error (regression: this
  // used to return kInvalidArgument and force every caller to
  // special-case empty unions).
  Query q = Parse("q(X, Y) :- r(X, Y).");
  UnionQuery empty;
  Database extents(&cat_);
  auto ans = EvaluateRewritingUnion(q, empty, extents);
  ASSERT_TRUE(ans.ok()) << ans.status().ToString();
  EXPECT_TRUE(ans.value().empty());
  EXPECT_EQ(ans.value().arity(), 2);
  EXPECT_EQ(ans.value().pred(), q.head().pred);
}

TEST_F(CertainTest, UnionDisjunctArityMismatchIsAnError) {
  Query q = Parse("q(X, Y) :- r(X, Y).");
  UnionQuery wrong;
  wrong.disjuncts.push_back(Parse("w(X) :- r(X, Y)."));
  Database extents(&cat_);
  auto ans = EvaluateRewritingUnion(q, wrong, extents);
  ASSERT_FALSE(ans.ok());
  EXPECT_EQ(ans.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(CertainTest, NullaryQueryCertainAnswerAddedOnce) {
  // Boolean query: the certain answer is the single empty row, present
  // exactly once (regression: the arity-0 path used to add it twice
  // before SortDedup).
  Query q = Parse("q() :- r(X, Y).");
  ViewSet vs = Views("vb(X, Y) :- r(X, Y).");
  InverseRuleSet ir = BuildInverseRules(vs).value();
  Database extents(&cat_);
  extents.Add(cat_.FindPredicate("vb").value(), {1, 2});
  auto ans = CertainAnswersViaInverseRules(q, ir, extents);
  ASSERT_TRUE(ans.ok()) << ans.status().ToString();
  EXPECT_EQ(ans.value().arity(), 0);
  EXPECT_EQ(ans.value().size(), 1u);
  EXPECT_TRUE(ans.value().Contains({}));

  // And with an empty extent the boolean query is not certain.
  Database no_extent(&cat_);
  auto none = CertainAnswersViaInverseRules(q, ir, no_extent);
  ASSERT_TRUE(none.ok());
  EXPECT_TRUE(none.value().empty());
}

TEST_F(CertainTest, UnionQueryInverseRulesRoute) {
  // Certain answers of a UCQ: both disjuncts contribute.
  UnionQuery u;
  u.disjuncts.push_back(Parse("q(X) :- r(X, Y)."));
  u.disjuncts.push_back(Parse("q(X) :- s(X)."));
  ViewSet vs = Views(
      "vr2(X, Y) :- r(X, Y).\n"
      "vs2(X) :- s(X).");
  InverseRuleSet ir = BuildInverseRules(vs).value();
  Database extents(&cat_);
  extents.Add(cat_.FindPredicate("vr2").value(), {1, 2});
  extents.Add(cat_.FindPredicate("vs2").value(), {7});
  auto ans = CertainAnswersViaInverseRules(u, ir, extents);
  ASSERT_TRUE(ans.ok()) << ans.status().ToString();
  EXPECT_EQ(ans.value().size(), 2u);
  EXPECT_TRUE(ans.value().Contains({1}));
  EXPECT_TRUE(ans.value().Contains({7}));
}

TEST_F(CertainTest, PipelineMatchesInverseRulesOnMaterializedExtents) {
  // End-to-end: base DB -> extents -> MiniCon answers == IR answers, and
  // both under-approximate q over the base (soundness of certain answers).
  Query q = Parse("q(X, Z) :- e(X, Y), f(Y, Z).");
  ViewSet vs = Views(
      "va(A, B) :- e(A, B).\n"
      "vb(B, C) :- f(B, C).\n"
      "vc(A, C) :- e(A, B), f(B, C).");
  Database base(&cat_);
  PredId e = cat_.FindPredicate("e").value();
  PredId f = cat_.FindPredicate("f").value();
  base.Add(e, {1, 2});
  base.Add(e, {4, 5});
  base.Add(f, {2, 3});
  base.Add(f, {5, 6});
  base.Add(f, {7, 8});
  Database extents = MaterializeViews(vs, base).value();

  auto mc = MiniConRewrite(q, vs);
  ASSERT_TRUE(mc.ok());
  auto mc_ans = EvaluateRewritingUnion(q, mc.value().rewritings, extents);
  ASSERT_TRUE(mc_ans.ok());

  InverseRuleSet ir = BuildInverseRules(vs).value();
  auto ir_ans = CertainAnswersViaInverseRules(q, ir, extents);
  ASSERT_TRUE(ir_ans.ok());

  EXPECT_TRUE(Relation::SameSet(mc_ans.value(), ir_ans.value()))
      << "MiniCon:\n" << mc_ans.value().ToString(cat_)
      << "IR:\n" << ir_ans.value().ToString(cat_);

  auto direct = EvaluateQuery(q, base);
  ASSERT_TRUE(direct.ok());
  for (auto& row : mc_ans.value().Rows()) {
    EXPECT_TRUE(direct.value().Contains(row));
  }
  // Here views preserve all the information, so equality holds.
  EXPECT_TRUE(Relation::SameSet(mc_ans.value(), direct.value()));
}

TEST_F(CertainTest, BruteForceAgreesOnTinyInstance) {
  Query q = Parse("q(X) :- r(X, Y).");
  ViewSet vs = Views("v(A, B) :- r(A, B).");
  Database extents(&cat_);
  extents.Add(cat_.FindPredicate("v").value(), {1, 2});

  InverseRuleSet ir = BuildInverseRules(vs).value();
  auto ir_ans = CertainAnswersViaInverseRules(q, ir, extents);
  ASSERT_TRUE(ir_ans.ok());

  WorldEnumOptions opts;
  opts.extra_constants = 1;
  opts.max_world_tuples = 18;
  auto bf = BruteForceCertainAnswers(q, vs, extents, opts);
  ASSERT_TRUE(bf.ok()) << bf.status().ToString();
  EXPECT_TRUE(Relation::SameSet(ir_ans.value(), bf.value()))
      << "IR:\n" << ir_ans.value().ToString(cat_)
      << "BF:\n" << bf.value().ToString(cat_);
}

TEST_F(CertainTest, BruteForceDropsUncertainHiddenColumn) {
  Query q = Parse("q(X, Y) :- r(X, Y).");
  ViewSet vs = Views("vh3(A) :- r(A, B).");
  Database extents(&cat_);
  extents.Add(cat_.FindPredicate("vh3").value(), {1});
  WorldEnumOptions opts;
  opts.extra_constants = 2;  // B could be either fresh value
  opts.max_world_tuples = 18;
  auto bf = BruteForceCertainAnswers(q, vs, extents, opts);
  ASSERT_TRUE(bf.ok()) << bf.status().ToString();
  EXPECT_TRUE(bf.value().empty());
}

TEST_F(CertainTest, BruteForceCapSurfaces) {
  Query q = Parse("q(X) :- r(X, Y).");
  ViewSet vs = Views("vbig(A, B) :- r(A, B).");
  Database extents(&cat_);
  for (int i = 0; i < 5; ++i) {
    extents.Add(cat_.FindPredicate("vbig").value(), {i, i + 1});
  }
  WorldEnumOptions opts;
  opts.max_world_tuples = 4;
  auto bf = BruteForceCertainAnswers(q, vs, extents, opts);
  ASSERT_FALSE(bf.ok());
  EXPECT_EQ(bf.status().code(), StatusCode::kResourceExhausted);
}

}  // namespace
}  // namespace aqv
