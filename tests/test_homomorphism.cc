#include <gtest/gtest.h>

#include "containment/homomorphism.h"
#include "cq/parser.h"

namespace aqv {
namespace {

class HomTest : public ::testing::Test {
 protected:
  Catalog cat_;
  Query Parse(const std::string& s) { return ParseQuery(s, &cat_).value(); }

  bool Hom(const Query& from, const Query& to) {
    auto r = FindHomomorphism(from, to);
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    return r.ok() && r.value();
  }
};

TEST_F(HomTest, IdentityAlwaysExists) {
  Query q = Parse("q(X, Y) :- r(X, Z), s(Z, Y).");
  EXPECT_TRUE(Hom(q, q));
}

TEST_F(HomTest, CollapsingMapping) {
  // path-2 maps into a self-loop.
  Query path = Parse("p(X) :- e(X, Y), e(Y, Z).");
  Query loop = Parse("p(A) :- e(A, A).");
  EXPECT_TRUE(Hom(path, loop));
  EXPECT_FALSE(Hom(loop, path));
}

TEST_F(HomTest, HeadConstraintBlocksOtherwiseValidMapping) {
  Query from = Parse("q(X) :- e(X, Y).");
  Query to = Parse("q(B) :- e(A, B).");
  // Body-wise X->A works, but the head forces X->B which has no outgoing e.
  EXPECT_FALSE(Hom(from, to));
  HomSearchOptions opts;
  opts.map_head = false;
  auto r = FindHomomorphism(from, to, opts);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r.value());
}

TEST_F(HomTest, ConstantsMustMatchExactly) {
  Query from = Parse("q(X) :- r(X, 3).");
  Query to1 = Parse("q(A) :- r(A, 3).");
  Query to2 = Parse("q(A) :- r(A, 4).");
  Query to3 = Parse("q(A) :- r(A, B).");
  EXPECT_TRUE(Hom(from, to1));
  EXPECT_FALSE(Hom(from, to2));
  EXPECT_FALSE(Hom(from, to3));  // constant cannot map to a variable
}

TEST_F(HomTest, VariableCanMapToConstant) {
  Query from = Parse("q(X) :- r(X, Y).");
  Query to = Parse("q(A) :- r(A, 3).");
  EXPECT_TRUE(Hom(from, to));
}

TEST_F(HomTest, ArityZeroHeads) {
  Query from = Parse("q() :- r(X, Y).");
  Query to = Parse("q() :- r(A, B), s(B).");
  EXPECT_TRUE(Hom(from, to));
}

TEST_F(HomTest, HeadArityMismatchMeansNoMapping) {
  Query from = Parse("qa(X) :- r(X, Y).");
  Query to = Parse("qb(A, B) :- r(A, B).");
  EXPECT_FALSE(Hom(from, to));
}

TEST_F(HomTest, RepeatedVariablesConstrain) {
  Query from = Parse("q() :- r(X, X).");
  Query to1 = Parse("q() :- r(A, A).");
  Query to2 = Parse("q() :- r(A, B).");
  EXPECT_TRUE(Hom(from, to1));
  EXPECT_FALSE(Hom(from, to2));
}

TEST_F(HomTest, SubstitutionOutputIsCorrect) {
  Query from = Parse("q(X) :- r(X, Y).");
  Query to = Parse("q(A) :- r(A, 5), r(A, 6).");
  Substitution sub(0);
  auto r = FindHomomorphism(from, to, {}, &sub);
  ASSERT_TRUE(r.ok());
  ASSERT_TRUE(r.value());
  ASSERT_EQ(sub.num_source_vars(), from.num_vars());
  EXPECT_EQ(sub.Get(0), Term::Var(0));  // X -> A
  EXPECT_TRUE(sub.Get(1).is_const());   // Y -> 5 or 6
}

TEST_F(HomTest, ForEachEnumeratesAllMappings) {
  Query from = Parse("q() :- r(X).");
  Query to = Parse("q() :- r(A), r(B), r(C).");
  int count = 0;
  auto r = ForEachHomomorphism(from, to, {},
                               [&](const Substitution&) {
                                 ++count;
                                 return true;
                               });
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(count, 3);
  EXPECT_EQ(r.value(), 3);
}

TEST_F(HomTest, ForEachEarlyStop) {
  Query from = Parse("q() :- r(X).");
  Query to = Parse("q() :- r(A), r(B), r(C).");
  int count = 0;
  auto r = ForEachHomomorphism(from, to, {},
                               [&](const Substitution&) {
                                 ++count;
                                 return count < 2;
                               });
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(count, 2);
}

TEST_F(HomTest, DistinctMappingsOfTwoFreeAtoms) {
  Query from = Parse("q() :- r(X), s(Y).");
  Query to = Parse("q() :- r(A), r(B), s(C).");
  auto r = ForEachHomomorphism(from, to, {},
                               [&](const Substitution&) { return true; });
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 2);  // X in {A,B}, Y = C
}

TEST_F(HomTest, BudgetExhaustionSurfaces) {
  // A hard instance with a tiny budget must fail loudly, not hang.
  std::string from_body, to_body;
  for (int i = 0; i < 8; ++i) {
    from_body += (i ? ", " : "") + std::string("e(X") + std::to_string(i) +
                 ", X" + std::to_string(i + 1) + ")";
  }
  for (int i = 0; i < 6; ++i) {
    for (int j = 0; j < 6; ++j) {
      if (i != j) {
        to_body += (to_body.empty() ? "" : ", ") + std::string("e(A") +
                   std::to_string(i) + ", A" + std::to_string(j) + ")";
      }
    }
  }
  Query from = Parse("q() :- " + from_body + ".");
  Query to = Parse("q() :- " + to_body + ".");
  HomSearchOptions opts;
  opts.node_budget = 3;
  auto r = ForEachHomomorphism(from, to, opts,
                               [](const Substitution&) { return true; });
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kResourceExhausted);
}

TEST_F(HomTest, NoTargetAtomsOfPredicate) {
  Query from = Parse("q() :- r(X), t(X).");
  Query to = Parse("q() :- r(A).");
  EXPECT_FALSE(Hom(from, to));
}

TEST_F(HomTest, StaticOrderingFindsSameAnswers) {
  // The ablation knob changes cost, never the verdict.
  Query from = Parse("q(X) :- e(X, Y), e(Y, Z), e(Z, X).");
  Query to = Parse("q(A) :- e(A, B), e(B, C), e(C, A), e(A, C).");
  HomSearchOptions dynamic;
  HomSearchOptions fixed;
  fixed.dynamic_ordering = false;
  auto rd = FindHomomorphism(from, to, dynamic);
  auto rs = FindHomomorphism(from, to, fixed);
  ASSERT_TRUE(rd.ok());
  ASSERT_TRUE(rs.ok());
  EXPECT_EQ(rd.value(), rs.value());
}

TEST_F(HomTest, StaticOrderingEnumeratesSameCount) {
  Query from = Parse("q() :- r(X), s(Y).");
  Query to = Parse("q() :- r(A), r(B), s(C).");
  HomSearchOptions fixed;
  fixed.dynamic_ordering = false;
  auto n = ForEachHomomorphism(from, to, fixed,
                               [](const Substitution&) { return true; });
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(n.value(), 2);
}

}  // namespace
}  // namespace aqv
