#include <gtest/gtest.h>

#include "cq/parser.h"
#include "eval/database.h"
#include "eval/evaluator.h"
#include "eval/materialize.h"
#include "eval/value.h"

namespace aqv {
namespace {

class EvalTest : public ::testing::Test {
 protected:
  Catalog cat_;
  Query Parse(const std::string& s) { return ParseQuery(s, &cat_).value(); }

  Relation Eval(const Query& q, const Database& db) {
    auto r = EvaluateQuery(q, db);
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    return std::move(r).value();
  }
};

TEST_F(EvalTest, ValueTaggingDisjoint) {
  EXPECT_TRUE(IsPlainNumeric(0));
  EXPECT_TRUE(IsPlainNumeric(-5));
  EXPECT_TRUE(IsSymbolic(SymbolicValue(3)));
  EXPECT_FALSE(IsPlainNumeric(SymbolicValue(3)));
  SkolemTable t;
  Value sk = t.Intern(0, {1, 2});
  EXPECT_TRUE(IsSkolem(sk));
  EXPECT_FALSE(IsPlainNumeric(sk));
}

TEST_F(EvalTest, SkolemInterningIsStable) {
  SkolemTable t;
  Value a = t.Intern(0, {1, 2});
  Value b = t.Intern(0, {1, 2});
  Value c = t.Intern(0, {1, 3});
  Value d = t.Intern(1, {1, 2});
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_NE(a, d);
  EXPECT_EQ(t.entry(a).fn, 0);
  EXPECT_EQ(t.entry(a).args, (std::vector<Value>{1, 2}));
}

TEST_F(EvalTest, ValueOfConstantNumericVsSymbolic) {
  ConstId n = cat_.InternConstant("42");
  ConstId s = cat_.InternConstant("bob");
  EXPECT_EQ(ValueOfConstant(cat_, n), 42);
  EXPECT_EQ(ValueOfConstant(cat_, s), SymbolicValue(s));
}

TEST_F(EvalTest, ValueToStringRendering) {
  ConstId s = cat_.InternConstant("bob");
  SkolemTable t;
  Value sk = t.Intern(0, {7});
  EXPECT_EQ(ValueToString(cat_, 5), "5");
  EXPECT_EQ(ValueToString(cat_, SymbolicValue(s)), "bob");
  EXPECT_EQ(ValueToString(cat_, sk, &t), "f0(7)");
}

TEST_F(EvalTest, RelationSortDedup) {
  Relation r(0, 2);
  r.Add({2, 1});
  r.Add({1, 1});
  r.Add({2, 1});
  r.SortDedup();
  ASSERT_EQ(r.size(), 2u);
  EXPECT_EQ(r.at(0, 0), 1);
  EXPECT_EQ(r.at(1, 0), 2);
}

TEST_F(EvalTest, RelationSameSet) {
  Relation a(0, 1), b(0, 1);
  a.Add({1});
  a.Add({2});
  b.Add({2});
  b.Add({1});
  b.Add({1});
  EXPECT_TRUE(Relation::SameSet(a, b));
  b.Add({3});
  EXPECT_FALSE(Relation::SameSet(a, b));
}

TEST_F(EvalTest, NullaryRelationSemantics) {
  Relation r(0, 0);
  EXPECT_TRUE(r.empty());
  r.Add({});
  EXPECT_EQ(r.size(), 1u);
  r.Add({});
  EXPECT_EQ(r.size(), 1u);  // set semantics
}

TEST_F(EvalTest, SimpleJoin) {
  Query q = Parse("q(X, Z) :- e(X, Y), f(Y, Z).");
  Database db(&cat_);
  PredId e = cat_.FindPredicate("e").value();
  PredId f = cat_.FindPredicate("f").value();
  db.Add(e, {1, 2});
  db.Add(e, {1, 3});
  db.Add(f, {2, 9});
  db.Add(f, {3, 8});
  db.Add(f, {4, 7});
  Relation out = Eval(q, db);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_TRUE(out.Contains({1, 9}));
  EXPECT_TRUE(out.Contains({1, 8}));
}

TEST_F(EvalTest, ConstantsFilter) {
  Query q = Parse("q(X) :- e(X, 2).");
  Database db(&cat_);
  PredId e = cat_.FindPredicate("e").value();
  db.Add(e, {1, 2});
  db.Add(e, {5, 3});
  Relation out = Eval(q, db);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_TRUE(out.Contains({1}));
}

TEST_F(EvalTest, RepeatedVariableWithinAtom) {
  Query q = Parse("q(X) :- e(X, X).");
  Database db(&cat_);
  PredId e = cat_.FindPredicate("e").value();
  db.Add(e, {1, 1});
  db.Add(e, {1, 2});
  db.Add(e, {3, 3});
  Relation out = Eval(q, db);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_TRUE(out.Contains({1}));
  EXPECT_TRUE(out.Contains({3}));
}

TEST_F(EvalTest, ProjectionDeduplicates) {
  Query q = Parse("q(X) :- e(X, Y).");
  Database db(&cat_);
  PredId e = cat_.FindPredicate("e").value();
  db.Add(e, {1, 2});
  db.Add(e, {1, 3});
  Relation out = Eval(q, db);
  EXPECT_EQ(out.size(), 1u);
}

TEST_F(EvalTest, ComparisonsFilterRows) {
  Query q = Parse("q(X, Y) :- e(X, Y), X < Y.");
  Database db(&cat_);
  PredId e = cat_.FindPredicate("e").value();
  db.Add(e, {1, 2});
  db.Add(e, {2, 1});
  db.Add(e, {3, 3});
  Relation out = Eval(q, db);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_TRUE(out.Contains({1, 2}));
}

TEST_F(EvalTest, ComparisonAgainstConstant) {
  Query q = Parse("q(X) :- e(X, Y), Y >= 5, X != 2.");
  Database db(&cat_);
  PredId e = cat_.FindPredicate("e").value();
  db.Add(e, {1, 5});
  db.Add(e, {2, 9});
  db.Add(e, {3, 4});
  Relation out = Eval(q, db);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_TRUE(out.Contains({1}));
}

TEST_F(EvalTest, OrderComparisonsFalseOnTaggedValues) {
  Query q = Parse("q(X) :- e(X, Y), X < Y.");
  Database db(&cat_);
  PredId e = cat_.FindPredicate("e").value();
  db.Add(e, {1, SymbolicValue(0)});  // symbolic right operand
  Relation out = Eval(q, db);
  EXPECT_TRUE(out.empty());
}

TEST_F(EvalTest, EqualityJoinsOnTaggedValues) {
  SkolemTable t;
  Value sk = t.Intern(0, {4});
  Query q = Parse("q(X) :- e(X, Y), f(Y).");
  Database db(&cat_);
  PredId e = cat_.FindPredicate("e").value();
  PredId f = cat_.FindPredicate("f").value();
  db.Add(e, {1, sk});
  db.Add(f, {sk});
  Relation out = Eval(q, db);
  ASSERT_EQ(out.size(), 1u);  // skolems join by identity
}

TEST_F(EvalTest, EmptyRelationShortCircuits) {
  Query q = Parse("q(X) :- e(X, Y), zed(Y).");
  Database db(&cat_);
  db.Add(cat_.FindPredicate("e").value(), {1, 2});
  Relation out = Eval(q, db);
  EXPECT_TRUE(out.empty());
}

TEST_F(EvalTest, HeadConstantsEmitted) {
  Query q = Parse("q(X, 7) :- e(X, Y).");
  Database db(&cat_);
  db.Add(cat_.FindPredicate("e").value(), {1, 2});
  Relation out = Eval(q, db);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_TRUE(out.Contains({1, 7}));
}

TEST_F(EvalTest, BooleanQuerySemantics) {
  Query q = Parse("q() :- e(X, Y), f(Y, X).");
  Database db(&cat_);
  PredId e = cat_.FindPredicate("e").value();
  PredId f = cat_.FindPredicate("f").value();
  db.Add(e, {1, 2});
  Relation empty = Eval(q, db);
  EXPECT_EQ(empty.size(), 0u);
  db.Add(f, {2, 1});
  Relation yes = Eval(q, db);
  EXPECT_EQ(yes.size(), 1u);
}

TEST_F(EvalTest, UnionDeduplicatesAcrossDisjuncts) {
  UnionQuery u;
  u.disjuncts.push_back(Parse("q(X) :- e(X, Y)."));
  u.disjuncts.push_back(Parse("q(X) :- f(X, Y)."));
  Database db(&cat_);
  db.Add(cat_.FindPredicate("e").value(), {1, 2});
  db.Add(cat_.FindPredicate("f").value(), {1, 9});
  db.Add(cat_.FindPredicate("f").value(), {5, 9});
  auto out = EvaluateUnion(u, db);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out.value().size(), 2u);
}

TEST_F(EvalTest, RowCapSurfaces) {
  Query q = Parse("q(X, Y, Z) :- e(X, Y), e(Y, Z).");
  Database db(&cat_);
  PredId e = cat_.FindPredicate("e").value();
  for (int i = 0; i < 40; ++i) {
    for (int j = 0; j < 40; ++j) db.Add(e, {i % 4, j});
  }
  EvalOptions opts;
  opts.intermediate_row_cap = 10;
  auto out = EvaluateQuery(q, db, opts);
  ASSERT_FALSE(out.ok());
  EXPECT_EQ(out.status().code(), StatusCode::kResourceExhausted);
}

TEST_F(EvalTest, MaterializeViewsProducesExtents) {
  ViewSet vs = ViewSet::Parse("v(X) :- e(X, Y), f(Y).", &cat_).value();
  Database db(&cat_);
  PredId e = cat_.FindPredicate("e").value();
  PredId f = cat_.FindPredicate("f").value();
  db.Add(e, {1, 2});
  db.Add(e, {3, 4});
  db.Add(f, {2});
  auto mat = MaterializeViews(vs, db);
  ASSERT_TRUE(mat.ok());
  const Relation* extent = mat.value().Find(vs.view(0).pred);
  ASSERT_NE(extent, nullptr);
  ASSERT_EQ(extent->size(), 1u);
  EXPECT_TRUE(extent->Contains({1}));
  // The base relations are NOT exposed in the materialized database.
  EXPECT_EQ(mat.value().Find(e), nullptr);
}

TEST_F(EvalTest, MaterializeViewsUnionsSharedPredicate) {
  // Two rules sharing one head predicate (a union source): the extent is
  // the deduplicated union of both rules' outputs (regression: the second
  // rule's extent used to clobber the first's rows).
  ViewSet vs;
  ASSERT_TRUE(vs.Add(Parse("u(X) :- a(X).")).ok());
  ASSERT_TRUE(vs.AddRule(Parse("u(X) :- b(X).")).ok());
  ASSERT_TRUE(vs.HasUnionSources());
  Database db(&cat_);
  PredId a = cat_.FindPredicate("a").value();
  PredId b = cat_.FindPredicate("b").value();
  db.Add(a, {1});
  db.Add(a, {2});
  db.Add(b, {2});
  db.Add(b, {3});
  auto mat = MaterializeViews(vs, db);
  ASSERT_TRUE(mat.ok()) << mat.status().ToString();
  const Relation* extent = mat.value().Find(vs.view(0).pred);
  ASSERT_NE(extent, nullptr);
  EXPECT_EQ(extent->size(), 3u);  // {1, 2, 3}, deduplicated
  EXPECT_TRUE(extent->Contains({1}));
  EXPECT_TRUE(extent->Contains({2}));
  EXPECT_TRUE(extent->Contains({3}));
}

TEST_F(EvalTest, MaterializeViewsUnionsNullarySource) {
  ViewSet vs;
  ASSERT_TRUE(vs.Add(Parse("flag() :- a(X).")).ok());
  ASSERT_TRUE(vs.AddRule(Parse("flag() :- b(X).")).ok());
  Database db(&cat_);
  db.Add(cat_.FindPredicate("a").value(), {4});
  db.Add(cat_.FindPredicate("b").value(), {5});  // both rules fire
  auto mat = MaterializeViews(vs, db);
  ASSERT_TRUE(mat.ok()) << mat.status().ToString();
  const Relation* extent = mat.value().Find(vs.view(0).pred);
  ASSERT_NE(extent, nullptr);
  EXPECT_EQ(extent->size(), 1u);
}

TEST_F(EvalTest, DatabaseBookkeeping) {
  Database db(&cat_);
  PredId e = cat_.GetOrAddPredicate("zz", 2).value();
  EXPECT_EQ(db.Find(e), nullptr);
  db.Add(e, {1, 2});
  EXPECT_NE(db.Find(e), nullptr);
  EXPECT_EQ(db.TotalTuples(), 1u);
  EXPECT_EQ(db.Predicates().size(), 1u);
}

TEST_F(EvalTest, RelationColumnarAdapters) {
  Relation r(0, 3);
  r.Add({1, 2, 3});
  r.Add({4, 5, 6});
  EXPECT_STREQ(r.StorageBackend(), "columnar");
  // Row-major reads are adapters over per-column storage.
  EXPECT_EQ(r.at(1, 0), 4);
  EXPECT_EQ(r.at(0, 2), 3);
  EXPECT_EQ(r.RowCopy(0), (std::vector<Value>{1, 2, 3}));
  // Column pointers are contiguous per column.
  const Value* col1 = r.ColumnData(1);
  EXPECT_EQ(col1[0], 2);
  EXPECT_EQ(col1[1], 5);
}

TEST_F(EvalTest, ContainsBinarySearchesWhenSorted) {
  Relation r(0, 2);
  // Empty and single-row relations are vacuously sorted.
  EXPECT_TRUE(r.sorted());
  r.Add({5, 5});
  EXPECT_TRUE(r.sorted());
  r.Add({1, 2});
  r.Add({3, 4});
  EXPECT_FALSE(r.sorted());  // appends out of order
  // Linear fallback still answers correctly while unsorted.
  EXPECT_TRUE(r.Contains({1, 2}));
  EXPECT_FALSE(r.Contains({2, 1}));
  r.SortDedup();
  EXPECT_TRUE(r.sorted());
  EXPECT_TRUE(r.Contains({1, 2}));
  EXPECT_TRUE(r.Contains({3, 4}));
  EXPECT_TRUE(r.Contains({5, 5}));
  EXPECT_FALSE(r.Contains({0, 0}));
  EXPECT_FALSE(r.Contains({6, 6}));
  EXPECT_FALSE(r.Contains({3, 5}));
}

TEST_F(EvalTest, IndexCacheLifecycle) {
  Relation r(0, 2);
  r.Add({1, 10});
  r.Add({2, 20});
  r.Add({1, 30});
  bool built = false;
  auto idx = r.IndexOn({0}, &built);
  ASSERT_NE(idx, nullptr);
  EXPECT_TRUE(built);
  EXPECT_EQ(r.CachedIndexCount(), 1u);
  const std::vector<uint32_t>* rows = idx->Find({1});
  ASSERT_NE(rows, nullptr);
  EXPECT_EQ(*rows, (std::vector<uint32_t>{0, 2}));  // ascending row ids
  EXPECT_EQ(idx->Find({99}), nullptr);

  // Second request on the same columns is a cache hit.
  auto again = r.IndexOn({0}, &built);
  EXPECT_FALSE(built);
  EXPECT_EQ(again.get(), idx.get());
  // A different column set is a separate cached index.
  r.IndexOn({1}, &built);
  EXPECT_TRUE(built);
  EXPECT_EQ(r.CachedIndexCount(), 2u);

  // Mutation invalidates every cached index; the old snapshot stays
  // valid for holders.
  r.Add({3, 40});
  EXPECT_EQ(r.CachedIndexCount(), 0u);
  EXPECT_EQ(idx->rows_indexed, 3u);
  auto rebuilt = r.IndexOn({0}, &built);
  EXPECT_TRUE(built);
  EXPECT_EQ(rebuilt->rows_indexed, 4u);
}

TEST_F(EvalTest, RelationCopySharesCachedIndexes) {
  Relation r(0, 2);
  r.Add({1, 10});
  r.Add({2, 20});
  bool built = false;
  auto idx = r.IndexOn({0}, &built);
  Relation copy = r;  // datalog's `Database db = edb` path
  auto from_copy = copy.IndexOn({0}, &built);
  EXPECT_FALSE(built) << "copy should share the source's index snapshot";
  EXPECT_EQ(from_copy.get(), idx.get());
  // Mutating the copy invalidates only the copy's cache.
  copy.Add({3, 30});
  EXPECT_EQ(copy.CachedIndexCount(), 0u);
  EXPECT_EQ(r.CachedIndexCount(), 1u);
}

TEST_F(EvalTest, MeasuredStatisticsPerColumn) {
  Relation r(0, 2);
  r.Add({1, 7});
  r.Add({2, 7});
  r.Add({3, 7});
  r.Add({1, 7});  // duplicate row
  r.SortDedup();
  auto stats = r.Measured();
  ASSERT_NE(stats, nullptr);
  EXPECT_EQ(stats->cardinality, 3u);
  ASSERT_EQ(stats->columns.size(), 2u);
  EXPECT_EQ(stats->columns[0].distinct, 3u);
  EXPECT_EQ(stats->columns[1].distinct, 1u);
  EXPECT_TRUE(stats->columns[0].has_numeric_range);
  EXPECT_EQ(stats->columns[0].min, 1);
  EXPECT_EQ(stats->columns[0].max, 3);
  // Cached until mutation: same snapshot object.
  EXPECT_EQ(r.Measured().get(), stats.get());
  r.Add({9, 9});
  auto fresh = r.Measured();
  EXPECT_EQ(fresh->cardinality, 4u);
  EXPECT_EQ(fresh->columns[1].distinct, 2u);
}

TEST_F(EvalTest, MeasuredStatisticsSymbolicColumnsHaveNoRange) {
  Relation r(0, 1);
  r.Add({SymbolicValue(1)});
  r.Add({SymbolicValue(2)});
  r.SortDedup();
  auto stats = r.Measured();
  EXPECT_EQ(stats->columns[0].distinct, 2u);
  EXPECT_FALSE(stats->columns[0].has_numeric_range);
}

TEST_F(EvalTest, DatabaseStatsSurface) {
  Database db(&cat_);
  PredId e = cat_.GetOrAddPredicate("measured", 2).value();
  EXPECT_EQ(db.Stats(e), nullptr);  // never touched
  db.Add(e, {1, 2});
  db.Add(e, {1, 3});
  auto stats = db.Stats(e);
  ASSERT_NE(stats, nullptr);
  EXPECT_EQ(stats->cardinality, 2u);
  EXPECT_EQ(stats->columns[0].distinct, 1u);
  EXPECT_EQ(stats->columns[1].distinct, 2u);
}

TEST_F(EvalTest, EvalStatsCountersTrackIndexUse) {
  Query q = Parse("q(X, Z) :- e(X, Y), f(Y, Z).");
  Database db(&cat_);
  db.Add(cat_.FindPredicate("e").value(), {1, 2});
  db.Add(cat_.FindPredicate("f").value(), {2, 3});
  EvalOptions hot;
  EvalStats cold_run;
  auto first = EvaluateQuery(q, db, hot, &cold_run);
  ASSERT_TRUE(first.ok());
  EXPECT_GT(cold_run.index_builds, 0u);
  EXPECT_EQ(cold_run.index_hits, 0u);
  EXPECT_GT(cold_run.probes, 0u);
  EvalStats warm_run;
  ASSERT_TRUE(EvaluateQuery(q, db, hot, &warm_run).ok());
  EXPECT_EQ(warm_run.index_builds, 0u);
  EXPECT_GT(warm_run.index_hits, 0u);
  EXPECT_EQ(warm_run.probes, cold_run.probes);
}

TEST_F(EvalTest, ConstantProbesUseCachedIndexes) {
  // A constant-only atom position is part of the cached index key, so
  // point lookups like f(Y, 7) probe instead of scanning.
  Query q = Parse("q(X) :- e(X, Y), f(Y, 7).");
  Database db(&cat_);
  PredId e = cat_.FindPredicate("e").value();
  PredId f = cat_.FindPredicate("f").value();
  for (int i = 0; i < 10; ++i) {
    db.Add(e, {i, i});
    db.Add(f, {i, i == 3 ? 7 : 0});
  }
  EvalStats stats;
  auto r = EvaluateQuery(q, db, EvalOptions(), &stats);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().Rows(), (std::vector<std::vector<Value>>{{3}}));
  EXPECT_GT(stats.index_builds, 0u);
  EvalStats warm;
  ASSERT_TRUE(EvaluateQuery(q, db, EvalOptions(), &warm).ok());
  EXPECT_EQ(warm.index_builds, 0u);
  EXPECT_GT(warm.index_hits, 0u);
}

}  // namespace
}  // namespace aqv
