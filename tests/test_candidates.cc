#include <gtest/gtest.h>

#include "containment/containment.h"
#include "cq/parser.h"
#include "rewriting/candidates.h"
#include "rewriting/two_space_unifier.h"

namespace aqv {
namespace {

class CandidatesTest : public ::testing::Test {
 protected:
  Catalog cat_;
  Query Parse(const std::string& s) { return ParseQuery(s, &cat_).value(); }

  ViewSet Views(const std::string& text) {
    auto r = ViewSet::Parse(text, &cat_);
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    return std::move(r).value();
  }
};

TEST_F(CandidatesTest, UnifierBasicPairs) {
  TwoSpaceUnifier u(2, 2);
  EXPECT_TRUE(u.UnifyPair(Term::Var(0), Term::Var(1)));  // X0 ~ Y1
  EXPECT_EQ(u.Find(u.NodeOfQVar(0)), u.Find(u.NodeOfVVar(1)));
  EXPECT_NE(u.Find(u.NodeOfQVar(1)), u.Find(u.NodeOfVVar(1)));
}

TEST_F(CandidatesTest, UnifierConstantPinning) {
  TwoSpaceUnifier u(1, 1);
  Term c3 = Term::Const(cat_.InternConstant("3"));
  Term c4 = Term::Const(cat_.InternConstant("4"));
  EXPECT_TRUE(u.UnifyPair(Term::Var(0), Term::Var(0)));
  EXPECT_TRUE(u.UnifyPair(c3, Term::Var(0)));  // pins the class to 3
  EXPECT_EQ(u.PinnedConst(u.NodeOfQVar(0)), c3);
  EXPECT_FALSE(u.UnifyPair(c4, Term::Var(0)));  // clash
}

TEST_F(CandidatesTest, UnifierConstConstMismatch) {
  TwoSpaceUnifier u(1, 1);
  Term c3 = Term::Const(cat_.InternConstant("3"));
  Term c4 = Term::Const(cat_.InternConstant("4"));
  EXPECT_TRUE(u.UnifyPair(c3, c3));
  EXPECT_FALSE(u.UnifyPair(c3, c4));
}

TEST_F(CandidatesTest, UnifierClassQueries) {
  TwoSpaceUnifier u(3, 2);
  EXPECT_TRUE(u.UnifyPair(Term::Var(0), Term::Var(0)));
  EXPECT_TRUE(u.UnifyPair(Term::Var(2), Term::Var(0)));
  std::vector<VarId> qv = u.QVarsInClass(u.NodeOfVVar(0));
  EXPECT_EQ(qv, (std::vector<VarId>{0, 2}));
  EXPECT_TRUE(u.ClassContainsVVar(u.NodeOfQVar(0), 0));
  EXPECT_FALSE(u.ClassContainsVVar(u.NodeOfQVar(1), 0));
}

TEST_F(CandidatesTest, CanonicalTuplesForIdentityView) {
  Query q = Parse("q(X) :- r(X, Y), s(Y).");
  ViewSet vs = Views("v(A, B) :- r(A, B).");
  auto pool = CanonicalViewTuples(q, vs);
  ASSERT_TRUE(pool.ok()) << pool.status().ToString();
  ASSERT_EQ(pool.value().size(), 1u);
  const ViewAtomCandidate& c = pool.value()[0];
  EXPECT_EQ(c.covered, (std::vector<int>{0}));
  EXPECT_EQ(c.atom.args[0], Term::Var(0));  // X
  EXPECT_EQ(c.atom.args[1], Term::Var(1));  // Y
  EXPECT_EQ(c.num_fresh, 0);
  EXPECT_TRUE(c.induced_equalities.empty());
}

TEST_F(CandidatesTest, MultipleHomomorphismsMultipleTuples) {
  Query q = Parse("q(X) :- e(X, Y), e(Y, Z).");
  ViewSet vs = Views("ve(A, B) :- e(A, B).");
  auto pool = CanonicalViewTuples(q, vs);
  ASSERT_TRUE(pool.ok());
  EXPECT_EQ(pool.value().size(), 2u);  // (X,Y) and (Y,Z)
}

TEST_F(CandidatesTest, ViewSpanningTwoAtoms) {
  Query q = Parse("q(X, Z) :- e(X, Y), e(Y, Z).");
  ViewSet vs = Views("vp(A, C) :- e(A, B), e(B, C).");
  auto pool = CanonicalViewTuples(q, vs);
  ASSERT_TRUE(pool.ok());
  ASSERT_EQ(pool.value().size(), 1u);
  EXPECT_EQ(pool.value()[0].covered, (std::vector<int>{0, 1}));
  EXPECT_EQ(pool.value()[0].covered_mask, 0b11u);
}

TEST_F(CandidatesTest, SelfJoinViewFoldsOntoLoop) {
  Query q = Parse("q(X) :- e(X, X).");
  ViewSet vs = Views("v2(A, C) :- e(A, B), e(B, C).");
  auto pool = CanonicalViewTuples(q, vs);
  ASSERT_TRUE(pool.ok());
  // Single hom: A,B,C all -> X.
  ASSERT_EQ(pool.value().size(), 1u);
  EXPECT_EQ(pool.value()[0].atom.args[0], Term::Var(0));
  EXPECT_EQ(pool.value()[0].atom.args[1], Term::Var(0));
}

TEST_F(CandidatesTest, NoHomNoTuples) {
  Query q = Parse("q(X) :- e(X, Y).");
  ViewSet vs = Views("vt(A) :- t(A).");
  auto pool = CanonicalViewTuples(q, vs);
  ASSERT_TRUE(pool.ok());
  EXPECT_TRUE(pool.value().empty());
}

TEST_F(CandidatesTest, PoolCapSurfaces) {
  Query q = Parse("q() :- e(X1, X2), e(X2, X3), e(X3, X1), e(X2, X1).");
  ViewSet vs = Views("vbig() :- e(A, B).");
  CandidateOptions opts;
  opts.max_candidates = 0;
  auto pool = CanonicalViewTuples(q, vs, opts);
  // Zero-cap always exhausts as soon as one candidate appears.
  ASSERT_FALSE(pool.ok());
  EXPECT_EQ(pool.status().code(), StatusCode::kResourceExhausted);
}

TEST_F(CandidatesTest, BuildRewritingBasics) {
  Query q = Parse("q(X, Z) :- e(X, Y), e(Y, Z).");
  ViewSet vs = Views("vv(A, B) :- e(A, B).");
  auto pool = CanonicalViewTuples(q, vs);
  ASSERT_TRUE(pool.ok());
  ASSERT_EQ(pool.value().size(), 2u);
  std::vector<const ViewAtomCandidate*> picks{&pool.value()[0],
                                              &pool.value()[1]};
  auto rw = BuildRewriting(q, picks, false);
  ASSERT_TRUE(rw.has_value());
  EXPECT_EQ(rw->body().size(), 2u);
  EXPECT_TRUE(rw->Validate().ok());
  EXPECT_TRUE(UsesOnlyViews(*rw, vs));
}

TEST_F(CandidatesTest, BuildRewritingRejectsUnboundHeadVar) {
  Query q = Parse("q(X, Z) :- e(X, Y), e(Y, Z).");
  ViewSet vs = Views("vw(A, B) :- e(A, B).");
  auto pool = CanonicalViewTuples(q, vs);
  ASSERT_TRUE(pool.ok());
  // Only the first tuple: Z never appears in the body.
  std::vector<const ViewAtomCandidate*> picks{&pool.value()[0]};
  auto rw = BuildRewriting(q, picks, false);
  EXPECT_FALSE(rw.has_value());
}

TEST_F(CandidatesTest, InducedEqualityAppliesGlobally) {
  Query q = Parse("q(X, Y) :- r(X, Y), t(Y).");
  ViewSet vs = Views("vr(A) :- r(A, A).\nvt(B) :- t(B).");
  // Bucket-style candidate for subgoal r(X,Y) against r(A,A): forces X=Y.
  const View* vr = vs.FindByName("vr");
  TwoSpaceUnifier u(q.num_vars(), vr->definition.num_vars());
  ASSERT_TRUE(u.UnifyAtoms(q.body()[0], vr->definition.body()[0]));
  auto cand = MakeCandidateFromUnifier(q, *vr, u, {0}, true);
  ASSERT_TRUE(cand.has_value());
  ASSERT_EQ(cand->induced_equalities.size(), 1u);

  // Combine with vt coverage of t(Y).
  const View* vt = vs.FindByName("vt");
  TwoSpaceUnifier u2(q.num_vars(), vt->definition.num_vars());
  ASSERT_TRUE(u2.UnifyAtoms(q.body()[1], vt->definition.body()[0]));
  auto cand2 = MakeCandidateFromUnifier(q, *vt, u2, {1}, true);
  ASSERT_TRUE(cand2.has_value());

  std::vector<const ViewAtomCandidate*> picks{&*cand, &*cand2};
  auto rw = BuildRewriting(q, picks, false);
  ASSERT_TRUE(rw.has_value());
  // X and Y collapse: head is q(W, W) for a single variable W.
  EXPECT_EQ(rw->head().args[0], rw->head().args[1]);
}

TEST_F(CandidatesTest, CandidateRequiresDistinguishedExposure) {
  Query q = Parse("q(X, Y) :- r(X, Y).");
  ViewSet vs = Views("vh(A) :- r(A, B).");  // hides the second column
  const View* vh = vs.FindByName("vh");
  TwoSpaceUnifier u(q.num_vars(), vh->definition.num_vars());
  ASSERT_TRUE(u.UnifyAtoms(q.body()[0], vh->definition.body()[0]));
  EXPECT_FALSE(MakeCandidateFromUnifier(q, *vh, u, {0}, true).has_value());
  // Without the exposure requirement a candidate forms, with a fresh var.
  auto loose = MakeCandidateFromUnifier(q, *vh, u, {0}, false);
  ASSERT_TRUE(loose.has_value());
  EXPECT_EQ(loose->num_fresh, 0);  // head arg X exposed; Y simply not output
}

TEST_F(CandidatesTest, FreshVariableForUnconstrainedOutput) {
  Query q = Parse("q(X) :- r(X).");
  ViewSet vs = Views("vf(A, B) :- r(A), s(B).");
  const View* vf = vs.FindByName("vf");
  TwoSpaceUnifier u(q.num_vars(), vf->definition.num_vars());
  ASSERT_TRUE(u.UnifyAtoms(q.body()[0], vf->definition.body()[0]));
  auto cand = MakeCandidateFromUnifier(q, *vf, u, {0}, true);
  ASSERT_TRUE(cand.has_value());
  EXPECT_EQ(cand->num_fresh, 1);  // B is a don't-care output
  EXPECT_EQ(cand->atom.args[0], Term::Var(0));
  EXPECT_EQ(cand->atom.args[1], Term::Var(q.num_vars() + 0));
}

TEST_F(CandidatesTest, RemoveSubsumedDisjunctsKeepsMaximal) {
  Query q = Parse("q(X) :- e(X, Y).");
  ViewSet vs = Views("v1(A) :- e(A, B).\nv0(A) :- e(A, B), t(B).");
  UnionQuery u;
  u.disjuncts.push_back(Parse("q(X) :- v0(X)."));  // narrower expansion
  u.disjuncts.push_back(Parse("q(X) :- v1(X)."));  // wider expansion
  auto pruned = RemoveSubsumedDisjuncts(u, vs, {});
  ASSERT_TRUE(pruned.ok()) << pruned.status().ToString();
  ASSERT_EQ(pruned.value().size(), 1);
  EXPECT_NE(pruned.value().disjuncts[0].ToString().find("v1"),
            std::string::npos);
}

}  // namespace
}  // namespace aqv
