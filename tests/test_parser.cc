#include <gtest/gtest.h>

#include "cq/parser.h"

namespace aqv {
namespace {

TEST(Parser, SimpleRule) {
  Catalog cat;
  auto r = ParseQuery("q(X, Y) :- edge(X, Z), edge(Z, Y).", &cat);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  const Query& q = r.value();
  EXPECT_EQ(q.body().size(), 2u);
  EXPECT_EQ(q.num_vars(), 3);
  EXPECT_EQ(q.head().arity(), 2);
  EXPECT_EQ(cat.pred(q.head().pred).kind, PredKind::kIntensional);
  EXPECT_EQ(cat.pred(q.body()[0].pred).kind, PredKind::kExtensional);
}

TEST(Parser, VariableIdentityWithinRule) {
  Catalog cat;
  Query q = ParseQuery("q(X) :- r(X, X).", &cat).value();
  EXPECT_EQ(q.num_vars(), 1);
  EXPECT_EQ(q.body()[0].args[0], q.body()[0].args[1]);
}

TEST(Parser, ConstantsSymbolicAndNumeric) {
  Catalog cat;
  Query q = ParseQuery("q(X) :- r(X, alice), s(X, 42).", &cat).value();
  Term sym = q.body()[0].args[1];
  Term num = q.body()[1].args[1];
  ASSERT_TRUE(sym.is_const());
  ASSERT_TRUE(num.is_const());
  EXPECT_FALSE(cat.constant(sym.constant()).numeric.has_value());
  EXPECT_EQ(*cat.constant(num.constant()).numeric, 42);
}

TEST(Parser, NegativeNumbers) {
  Catalog cat;
  Query q = ParseQuery("q(X) :- r(X), X > -5.", &cat).value();
  ASSERT_EQ(q.comparisons().size(), 1u);
  // X > -5 normalizes to -5 < X.
  EXPECT_EQ(q.comparisons()[0].op, CmpOp::kLt);
  EXPECT_TRUE(q.comparisons()[0].lhs.is_const());
}

TEST(Parser, AllComparisonOperators) {
  Catalog cat;
  Query q = ParseQuery(
                "q(X, Y) :- r(X, Y), X < 3, X <= Y, Y = 2, X != Y, Y > 0, "
                "X >= 1.",
                &cat)
                .value();
  ASSERT_EQ(q.comparisons().size(), 6u);
  EXPECT_EQ(q.comparisons()[0].op, CmpOp::kLt);
  EXPECT_EQ(q.comparisons()[1].op, CmpOp::kLe);
  EXPECT_EQ(q.comparisons()[2].op, CmpOp::kEq);
  EXPECT_EQ(q.comparisons()[3].op, CmpOp::kNe);
  EXPECT_EQ(q.comparisons()[4].op, CmpOp::kLt);  // 0 < Y
  EXPECT_EQ(q.comparisons()[5].op, CmpOp::kLe);  // 1 <= X
}

TEST(Parser, CommentsAndWhitespace) {
  Catalog cat;
  auto r = ParseQuery(
      "% header comment\n  q(X) :- % inline\n    r(X).  % trailing\n", &cat);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
}

TEST(Parser, FactWithEmptyBodyHead) {
  Catalog cat;
  auto r = ParseQuery("q(3).", &cat);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_TRUE(r.value().body().empty());
}

TEST(Parser, NullaryAtoms) {
  Catalog cat;
  auto r = ParseQuery("q() :- marker().", &cat);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r.value().head().arity(), 0);
}

TEST(Parser, ErrorMissingPeriod) {
  Catalog cat;
  auto r = ParseQuery("q(X) :- r(X)", &cat);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kParseError);
}

TEST(Parser, ErrorUnsafeHead) {
  Catalog cat;
  auto r = ParseQuery("q(X, W) :- r(X).", &cat);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST(Parser, ErrorUnsafeComparisonVar) {
  Catalog cat;
  auto r = ParseQuery("q(X) :- r(X), W < 3.", &cat);
  ASSERT_FALSE(r.ok());
}

TEST(Parser, ErrorSymbolicConstantInComparison) {
  Catalog cat;
  auto r = ParseQuery("q(X) :- r(X), X < apple.", &cat);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST(Parser, ErrorArityMismatchAcrossRules) {
  Catalog cat;
  ASSERT_TRUE(ParseQuery("q(X) :- r(X, Y).", &cat).ok());
  auto r = ParseQuery("p(X) :- r(X).", &cat);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST(Parser, ErrorGarbageCharacter) {
  Catalog cat;
  auto r = ParseQuery("q(X) :- r(X) & s(X).", &cat);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kParseError);
}

TEST(Parser, ErrorLoneColon) {
  Catalog cat;
  auto r = ParseQuery("q(X) : r(X).", &cat);
  ASSERT_FALSE(r.ok());
}

TEST(Parser, ErrorBangWithoutEquals) {
  Catalog cat;
  auto r = ParseQuery("q(X) :- r(X), X ! 3.", &cat);
  ASSERT_FALSE(r.ok());
}

TEST(Parser, ProgramParsesMultipleRules) {
  Catalog cat;
  auto r = ParseProgram(
      "v1(X) :- r(X, Y).\n"
      "v2(X, Y) :- r(X, Y), s(Y).\n",
      &cat);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r.value().size(), 2u);
}

TEST(Parser, ProgramTrailingGarbageFails) {
  Catalog cat;
  auto r = ParseProgram("v1(X) :- r(X). stray", &cat);
  ASSERT_FALSE(r.ok());
}

TEST(Parser, SingleQueryTrailingInputFails) {
  Catalog cat;
  auto r = ParseQuery("q(X) :- r(X). extra(Y) :- r(Y).", &cat);
  ASSERT_FALSE(r.ok());
}

TEST(Parser, ToStringRoundTrip) {
  Catalog cat;
  std::string text = "q(X, Y) :- edge(X, Z), edge(Z, Y), X < 5.";
  Query q1 = ParseQuery(text, &cat).value();
  std::string rendered = q1.ToString();
  Query q2 = ParseQuery(rendered, &cat).value();
  EXPECT_EQ(q1.ToString(), q2.ToString());
  EXPECT_EQ(q1.body().size(), q2.body().size());
}

}  // namespace
}  // namespace aqv
