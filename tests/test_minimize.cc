#include <gtest/gtest.h>

#include "containment/containment.h"
#include "containment/minimize.h"
#include "cq/parser.h"

namespace aqv {
namespace {

class MinimizeTest : public ::testing::Test {
 protected:
  Catalog cat_;
  Query Parse(const std::string& s) { return ParseQuery(s, &cat_).value(); }

  Query Min(const Query& q) {
    auto r = Minimize(q);
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    return r.value();
  }
};

TEST_F(MinimizeTest, DropsSubsumedAtom) {
  Query q = Parse("q(X) :- r(X, Y), r(X, Z).");
  Query m = Min(q);
  EXPECT_EQ(m.body().size(), 1u);
  EXPECT_TRUE(AreEquivalent(q, m).value());
}

TEST_F(MinimizeTest, KeepsNecessaryJoin) {
  Query q = Parse("q(X) :- r(X, Y), s(Y, Z).");
  Query m = Min(q);
  EXPECT_EQ(m.body().size(), 2u);
}

TEST_F(MinimizeTest, ExactDuplicatesCollapse) {
  Query q = Parse("q(X) :- r(X, Y), r(X, Y), r(X, Y).");
  Query m = Min(q);
  EXPECT_EQ(m.body().size(), 1u);
}

TEST_F(MinimizeTest, ClassicTriplePath) {
  // r(X,Y), r(X,Z), s(Z) minimizes to r(X,Z), s(Z).
  Query q = Parse("q(X) :- r(X, Y), r(X, Z), s(Z).");
  Query m = Min(q);
  EXPECT_EQ(m.body().size(), 2u);
  EXPECT_TRUE(AreEquivalent(q, m).value());
}

TEST_F(MinimizeTest, DistinguishedVariablesPinAtoms) {
  // Both atoms mention head variables: nothing removable.
  Query q = Parse("q(X, Y, Z) :- r(X, Y), r(X, Z).");
  Query m = Min(q);
  EXPECT_EQ(m.body().size(), 2u);
}

TEST_F(MinimizeTest, CoreOfTriangleWithPendant) {
  // A pendant path into a triangle folds into the triangle (boolean query).
  Query q = Parse(
      "q() :- e(A, B), e(B, C), e(C, A), e(P, A).");
  Query m = Min(q);
  EXPECT_EQ(m.body().size(), 3u);
}

TEST_F(MinimizeTest, MinimizationIsIdempotent) {
  Query q = Parse("q(X) :- r(X, Y), r(X, Z), r(W, Y).");
  Query m1 = Min(q);
  Query m2 = Min(m1);
  EXPECT_EQ(m1.body().size(), m2.body().size());
  EXPECT_TRUE(AreEquivalent(m1, m2).value());
}

TEST_F(MinimizeTest, VariableSpaceCompacted) {
  Query q = Parse("q(X) :- r(X, Y), r(X, Z).");
  Query m = Min(q);
  EXPECT_EQ(m.num_vars(), 2);  // X plus one existential
}

TEST_F(MinimizeTest, ComparisonVariablesProtectAtoms) {
  // The s-atom binds Z which a comparison needs; it must survive even
  // though relationally redundant... it is not redundant here, but the
  // comparison-var safety path is exercised.
  Query q = Parse("q(X) :- r(X, Y), s(X, Z), Z < 5.");
  Query m = Min(q);
  EXPECT_EQ(m.body().size(), 2u);
  EXPECT_EQ(m.comparisons().size(), 1u);
}

TEST_F(MinimizeTest, ComparisonFreeAtomDropsWithComparisonsPresent) {
  Query q = Parse("q(X) :- r(X, Y), r(X, W), X < 3.");
  Query m = Min(q);
  EXPECT_EQ(m.body().size(), 1u);
  EXPECT_EQ(m.comparisons().size(), 1u);
}

TEST_F(MinimizeTest, IsMinimalAgreesWithMinimize) {
  Query redundant = Parse("q(X) :- r(X, Y), r(X, Z).");
  Query minimal = Parse("q(X) :- r(X, Y), s(Y, Z).");
  EXPECT_FALSE(IsMinimal(redundant).value());
  EXPECT_TRUE(IsMinimal(minimal).value());
}

TEST_F(MinimizeTest, SingleAtomNeverRemoved) {
  Query q = Parse("q(X) :- r(X, X).");
  Query m = Min(q);
  EXPECT_EQ(m.body().size(), 1u);
}

TEST_F(MinimizeTest, CompactVariablesRenumbersDensely) {
  Query q = Parse("q(X) :- r(X, Y), s(Y, Z), t(Z, W).");
  Query pruned = q;
  pruned.RemoveBodyAtom(2);  // drops t(Z, W); W becomes unused
  Query c = CompactVariables(pruned);
  EXPECT_EQ(c.num_vars(), 3);
  EXPECT_TRUE(c.Validate().ok());
}

TEST_F(MinimizeTest, HeadConstantsSurvive) {
  Query q = Parse("q(X, 7) :- r(X, Y), r(X, Z).");
  Query m = Min(q);
  EXPECT_EQ(m.body().size(), 1u);
  EXPECT_TRUE(m.head().args[1].is_const());
}

TEST_F(MinimizeTest, UnionMinimizationDropsSubsumedDisjunct) {
  UnionQuery u;
  u.disjuncts.push_back(Parse("q(X) :- r(X, Y)."));
  u.disjuncts.push_back(Parse("q(X) :- r(X, Y), t(Y)."));  // subsumed
  u.disjuncts.push_back(Parse("q(X) :- s(X)."));
  UnionQuery m = MinimizeUnion(u).value();
  EXPECT_EQ(m.size(), 2);
}

TEST_F(MinimizeTest, UnionMinimizationMinimizesDisjuncts) {
  UnionQuery u;
  u.disjuncts.push_back(Parse("q(X) :- r(X, Y), r(X, Z)."));
  UnionQuery m = MinimizeUnion(u).value();
  ASSERT_EQ(m.size(), 1);
  EXPECT_EQ(m.disjuncts[0].body().size(), 1u);
}

TEST_F(MinimizeTest, UnionMinimizationKeepsOneOfEquivalentPair) {
  UnionQuery u;
  u.disjuncts.push_back(Parse("q(X) :- r(X, Y)."));
  u.disjuncts.push_back(Parse("q(U) :- r(U, W)."));  // same query, renamed
  UnionQuery m = MinimizeUnion(u).value();
  EXPECT_EQ(m.size(), 1);
}

TEST_F(MinimizeTest, UnionMinimizationPreservesSemantics) {
  UnionQuery u;
  u.disjuncts.push_back(Parse("q(X) :- a(X), b(X)."));
  u.disjuncts.push_back(Parse("q(X) :- a(X), c(X)."));
  UnionQuery m = MinimizeUnion(u).value();
  EXPECT_EQ(m.size(), 2);
  EXPECT_TRUE(UnionIsContainedInUnion(u, m).value());
  EXPECT_TRUE(UnionIsContainedInUnion(m, u).value());
}

}  // namespace
}  // namespace aqv
