#include <gtest/gtest.h>

#include "containment/comparison_containment.h"
#include "containment/containment.h"
#include "cq/parser.h"
#include "eval/evaluator.h"
#include "util/rng.h"
#include "workload/datagen.h"
#include "workload/generators.h"

namespace aqv {
namespace {

// ---------------------------------------------------------------------------
// Random semi-interval queries: comparisons of the form Var op Const over a
// small constant pool, attached to random relational skeletons.
// ---------------------------------------------------------------------------

class ComparisonProperties : public ::testing::TestWithParam<uint64_t> {
 protected:
  Catalog cat_;
  Rng rng_{GetParam()};

  Query RandomComparisonQuery(const std::string& name) {
    RandomQuerySpec spec;
    spec.num_subgoals = 3;
    spec.num_vars = 3;
    spec.num_predicates = 2;
    spec.head_arity = 1;
    spec.head_name = name;
    Query q = MakeRandomQuery(&cat_, &rng_, spec).value();
    // Attach 1-2 semi-interval comparisons on body variables.
    std::vector<bool> in_body = q.BodyVarMask();
    std::vector<VarId> body_vars;
    for (VarId v = 0; v < q.num_vars(); ++v) {
      if (in_body[v]) body_vars.push_back(v);
    }
    int num_cmp = 1 + static_cast<int>(rng_.NextBounded(2));
    for (int i = 0; i < num_cmp && !body_vars.empty(); ++i) {
      VarId v = body_vars[rng_.NextBounded(body_vars.size())];
      int64_t c = static_cast<int64_t>(rng_.NextBounded(6));
      CmpOp op = static_cast<CmpOp>(rng_.NextBounded(4));
      Term lhs = Term::Var(v);
      Term rhs = Term::Const(cat_.InternNumericConstant(c));
      if (rng_.NextBool(0.5)) std::swap(lhs, rhs);
      q.AddComparison(Comparison(op, lhs, rhs));
    }
    EXPECT_TRUE(q.Validate().ok());
    return q;
  }
};

TEST_P(ComparisonProperties, ContainmentIsReflexiveWithComparisons) {
  for (int i = 0; i < 6; ++i) {
    Query q = RandomComparisonQuery("cr" + std::to_string(i));
    auto r = IsContainedIn(q, q);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    EXPECT_TRUE(r.value()) << q.ToString();
  }
}

TEST_P(ComparisonProperties, DroppingComparisonsWidens) {
  for (int i = 0; i < 6; ++i) {
    Query narrow = RandomComparisonQuery("cw" + std::to_string(i));
    Query wide(narrow.catalog());
    for (int v = 0; v < narrow.num_vars(); ++v) {
      wide.AddVariable(narrow.var_name(v));
    }
    wide.set_head(narrow.head());
    for (const Atom& a : narrow.body()) wide.AddBodyAtom(a);
    auto r = IsContainedIn(narrow, wide);
    ASSERT_TRUE(r.ok()) << narrow.ToString();
    EXPECT_TRUE(r.value()) << narrow.ToString();
  }
}

TEST_P(ComparisonProperties, ContainmentImpliesAnswerSubsetOnData) {
  Rng data_rng(GetParam() ^ 0x5a5a5a);
  for (int i = 0; i < 5; ++i) {
    Query a = RandomComparisonQuery("da" + std::to_string(i));
    Query b = RandomComparisonQuery("db" + std::to_string(i));
    if (a.head().arity() != b.head().arity()) continue;
    auto contained = IsContainedIn(a, b);
    if (!contained.ok()) continue;  // linearization cap: skip
    if (!contained.value()) continue;
    DataGenSpec spec;
    spec.tuples_per_relation = 30;
    spec.domain_size = 8;  // overlaps the comparison constant pool [0,6)
    Database db = MakeRandomDatabase(&cat_, ExtensionalPredicates(cat_),
                                     &data_rng, spec);
    Relation ra = EvaluateQuery(a, db).value();
    Relation rb = EvaluateQuery(b, db).value();
    for (auto& row : ra.Rows()) {
      EXPECT_TRUE(rb.Contains(row))
          << "a: " << a.ToString() << "\nb: " << b.ToString();
    }
  }
}

TEST_P(ComparisonProperties, SatisfiabilityAgreesWithLinearizationCount) {
  for (int i = 0; i < 6; ++i) {
    Query q = RandomComparisonQuery("sl" + std::to_string(i));
    bool sat = ComparisonsSatisfiable(q);
    // Enumerate linearizations of the comparison variables against the
    // constants used; satisfiable iff at least one exists.
    std::set<VarId> cmp_vars;
    std::set<int64_t> consts;
    for (const Comparison& c : q.comparisons()) {
      for (Term t : {c.lhs, c.rhs}) {
        if (t.is_var()) {
          cmp_vars.insert(t.var());
        } else {
          auto v = q.catalog()->constant(t.constant()).numeric;
          if (v.has_value()) consts.insert(*v);
        }
      }
    }
    auto lins = EnumerateLinearizations(
        q, std::vector<VarId>(cmp_vars.begin(), cmp_vars.end()),
        std::vector<int64_t>(consts.begin(), consts.end()), 100000);
    ASSERT_TRUE(lins.ok()) << q.ToString();
    EXPECT_EQ(sat, !lins.value().empty()) << q.ToString();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ComparisonProperties,
                         ::testing::Values(3, 14, 159, 2653));

// ---------------------------------------------------------------------------
// Parser round-trip and robustness.
// ---------------------------------------------------------------------------

class ParserRoundTrip : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ParserRoundTrip, ToStringReparsesEquivalent) {
  Catalog cat;
  Rng rng(GetParam());
  RandomQuerySpec spec;
  spec.num_subgoals = 4;
  spec.num_vars = 4;
  spec.constant_prob = 0.25;
  for (int i = 0; i < 10; ++i) {
    RandomQuerySpec s = spec;
    s.head_name = "rt" + std::to_string(i);
    Query q = MakeRandomQuery(&cat, &rng, s).value();
    auto re = ParseQuery(q.ToString(), &cat);
    ASSERT_TRUE(re.ok()) << q.ToString() << " -> "
                         << re.status().ToString();
    auto eq = AreEquivalent(q, re.value());
    ASSERT_TRUE(eq.ok());
    EXPECT_TRUE(eq.value()) << q.ToString();
  }
}

TEST_P(ParserRoundTrip, GarbageNeverCrashes) {
  Catalog cat;
  Rng rng(GetParam() * 31 + 7);
  const std::string alphabet = "qrxyzXYZ(),.:-<>=!0123456789 \t_";
  for (int i = 0; i < 200; ++i) {
    std::string text;
    int len = 1 + static_cast<int>(rng.NextBounded(40));
    for (int j = 0; j < len; ++j) {
      text += alphabet[rng.NextBounded(alphabet.size())];
    }
    auto r = ParseQuery(text, &cat);  // must return, never crash
    if (r.ok()) {
      EXPECT_TRUE(r.value().Validate().ok()) << text;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParserRoundTrip,
                         ::testing::Values(1, 2, 3));

}  // namespace
}  // namespace aqv
