#include <gtest/gtest.h>

#include "containment/containment.h"
#include "cq/parser.h"
#include "views/expansion.h"
#include "views/view.h"

namespace aqv {
namespace {

class ExpansionTest : public ::testing::Test {
 protected:
  Catalog cat_;
  Query Parse(const std::string& s) { return ParseQuery(s, &cat_).value(); }

  ViewSet Views(const std::string& text) {
    auto r = ViewSet::Parse(text, &cat_);
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    return std::move(r).value();
  }
};

TEST_F(ExpansionTest, ViewSetParseAndLookup) {
  ViewSet vs = Views("v1(X) :- r(X, Y).\nv2(X, Y) :- r(X, Y), s(Y).");
  EXPECT_EQ(vs.size(), 2);
  EXPECT_NE(vs.FindByName("v1"), nullptr);
  EXPECT_NE(vs.FindByName("v2"), nullptr);
  EXPECT_EQ(vs.FindByName("v3"), nullptr);
  EXPECT_EQ(vs.FindByName("v1")->definition.body().size(), 1u);
}

TEST_F(ExpansionTest, DuplicateViewNameRejected) {
  auto r = ViewSet::Parse("v(X) :- r(X, Y).\nv(X) :- s(X).", &cat_);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(ExpansionTest, SelfReferentialViewRejected) {
  auto r = ViewSet::Parse("w(X) :- r(X, Y), w(Y).", &cat_);
  ASSERT_FALSE(r.ok());
}

TEST_F(ExpansionTest, UsesOnlyViews) {
  ViewSet vs = Views("v1(X) :- r(X, Y).");
  Query complete = Parse("p(X) :- v1(X).");
  Query partial = Parse("p2(X) :- v1(X), r(X, X).");
  EXPECT_TRUE(UsesOnlyViews(complete, vs));
  EXPECT_FALSE(UsesOnlyViews(partial, vs));
}

TEST_F(ExpansionTest, BasicUnfoldingFreshensExistentials) {
  ViewSet vs = Views("v1(X) :- r(X, Y).");
  Query rw = Parse("p(A, B) :- v1(A), v1(B).");
  auto e = ExpandRewriting(rw, vs);
  ASSERT_TRUE(e.ok()) << e.status().ToString();
  ASSERT_TRUE(e.value().satisfiable);
  const Query& x = e.value().query;
  ASSERT_EQ(x.body().size(), 2u);
  // Both atoms are r; their existential second arguments must differ.
  EXPECT_NE(x.body()[0].args[1], x.body()[1].args[1]);
  EXPECT_EQ(cat_.pred(x.body()[0].pred).name, "r");
}

TEST_F(ExpansionTest, JoinThroughDistinguishedVars) {
  ViewSet vs = Views("v2(X, Y) :- r(X, Y), s(Y).");
  Query rw = Parse("p(A, C) :- v2(A, B), v2(B, C).");
  Query expected =
      Parse("p(A, C) :- r(A, B), s(B), r(B, C), s(C).");
  auto e = ExpandRewriting(rw, vs);
  ASSERT_TRUE(e.ok());
  ASSERT_TRUE(e.value().satisfiable);
  EXPECT_TRUE(AreEquivalent(e.value().query, expected).value());
}

TEST_F(ExpansionTest, RepeatedHeadVariableForcesUnification) {
  ViewSet vs = Views("vd(X, X) :- r(X, X).");
  Query rw = Parse("p(A) :- vd(A, B), s(B).");
  auto e = ExpandRewriting(rw, vs);
  ASSERT_TRUE(e.ok());
  ASSERT_TRUE(e.value().satisfiable);
  // A and B are identified: expansion is r(A,A), s(A).
  Query expected = Parse("p(A) :- r(A, A), s(A).");
  EXPECT_TRUE(AreEquivalent(e.value().query, expected).value());
}

TEST_F(ExpansionTest, HeadConstantClashIsUnsatisfiable) {
  ViewSet vs = Views("vc(X, 3) :- r(X, 3).");
  Query rw = Parse("p(A) :- vc(A, 4).");
  auto e = ExpandRewriting(rw, vs);
  ASSERT_TRUE(e.ok());
  EXPECT_FALSE(e.value().satisfiable);
}

TEST_F(ExpansionTest, HeadConstantBindsArgument) {
  ViewSet vs = Views("vc2(X, 3) :- r(X, 3).");
  Query rw = Parse("p(A, B) :- vc2(A, B), t(B).");
  auto e = ExpandRewriting(rw, vs);
  ASSERT_TRUE(e.ok());
  ASSERT_TRUE(e.value().satisfiable);
  // B is forced to 3 everywhere, including the head.
  Query expected = Parse("p(A, 3) :- r(A, 3), t(3).");
  EXPECT_TRUE(AreEquivalent(e.value().query, expected).value());
}

TEST_F(ExpansionTest, PartialRewritingKeepsBaseAtoms) {
  ViewSet vs = Views("v1b(X) :- r(X, Y).");
  Query rw = Parse("p(A) :- v1b(A), u(A).");
  auto e = ExpandRewriting(rw, vs);
  ASSERT_TRUE(e.ok());
  ASSERT_TRUE(e.value().satisfiable);
  Query expected = Parse("p(A) :- r(A, Y), u(A).");
  EXPECT_TRUE(AreEquivalent(e.value().query, expected).value());
}

TEST_F(ExpansionTest, ViewComparisonsCarryIntoExpansion) {
  ViewSet vs = Views("vlt(X) :- r(X, Y), Y < 5.");
  Query rw = Parse("p(A) :- vlt(A).");
  auto e = ExpandRewriting(rw, vs);
  ASSERT_TRUE(e.ok());
  ASSERT_TRUE(e.value().satisfiable);
  EXPECT_EQ(e.value().query.comparisons().size(), 1u);
}

TEST_F(ExpansionTest, RewritingComparisonsPreserved) {
  ViewSet vs = Views("vp(X, Y) :- r(X, Y).");
  Query rw = Parse("p(A) :- vp(A, B), A < B.");
  auto e = ExpandRewriting(rw, vs);
  ASSERT_TRUE(e.ok());
  ASSERT_EQ(e.value().query.comparisons().size(), 1u);
}

TEST_F(ExpansionTest, ArityMismatchRejected) {
  ViewSet vs = Views("vm(X) :- r(X, X).");
  // Build a bogus atom with wrong arity manually.
  Query rw(&cat_);
  VarId a = rw.AddVariable("A");
  PredId vm = cat_.FindPredicate("vm").value();
  PredId p = cat_.GetOrAddPredicate("p9", 1, PredKind::kIntensional).value();
  rw.set_head(Atom(p, {Term::Var(a)}));
  rw.AddBodyAtom(Atom(vm, {Term::Var(a), Term::Var(a)}));
  auto e = ExpandRewriting(rw, vs);
  ASSERT_FALSE(e.ok());
}

TEST_F(ExpansionTest, ExpandUnionDropsUnsatisfiable) {
  ViewSet vs = Views("vu(X, 3) :- r(X, 3).\nvw(X) :- s(X).");
  UnionQuery u;
  u.disjuncts.push_back(Parse("p(A) :- vu(A, 4)."));  // unsat
  u.disjuncts.push_back(Parse("p(A) :- vw(A)."));
  auto e = ExpandUnion(u, vs);
  ASSERT_TRUE(e.ok());
  EXPECT_EQ(e.value().size(), 1);
}

TEST_F(ExpansionTest, MinimizeRewritingDropsRedundantViewAtom) {
  ViewSet vs = Views(
      "mv1(A, B) :- r(A, B).\n"
      "mv2(A) :- r(A, B).");
  // mv2(X) is implied by mv1(X, Y): its expansion adds nothing.
  Query rw = Parse("p(X, Y) :- mv1(X, Y), mv2(X).");
  Query m = MinimizeRewriting(rw, vs).value();
  ASSERT_EQ(m.body().size(), 1u);
  EXPECT_EQ(cat_.pred(m.body()[0].pred).name, "mv1");
  // Equivalence of expansions preserved.
  Query before = ExpandRewriting(rw, vs).value().query;
  Query after = ExpandRewriting(m, vs).value().query;
  EXPECT_TRUE(AreEquivalent(before, after).value());
}

TEST_F(ExpansionTest, MinimizeRewritingKeepsNecessaryAtoms) {
  ViewSet vs = Views(
      "nv1(A, B) :- e(A, B).\n"
      "nv2(B, C) :- f(B, C).");
  Query rw = Parse("p(X, Z) :- nv1(X, Y), nv2(Y, Z).");
  Query m = MinimizeRewriting(rw, vs).value();
  EXPECT_EQ(m.body().size(), 2u);
}

TEST_F(ExpansionTest, MinimizeRewritingHandlesBaseAtoms) {
  // Partial rewriting: the base atom must survive (it is not redundant).
  ViewSet vs = Views("pv(A, B) :- e(A, B).");
  Query rw = Parse("p(X) :- pv(X, Y), u(Y).");
  Query m = MinimizeRewriting(rw, vs).value();
  EXPECT_EQ(m.body().size(), 2u);
}

TEST_F(ExpansionTest, MinimizeRewritingRejectsUnsatisfiable) {
  ViewSet vs = Views("uv(A, 3) :- r(A, 3).");
  Query rw = Parse("p(X) :- uv(X, 4).");
  auto m = MinimizeRewriting(rw, vs);
  ASSERT_FALSE(m.ok());
  EXPECT_EQ(m.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(ExpansionTest, UnfoldingTheoremDirection) {
  // For any rewriting r over views, each view atom's expansion maps onto
  // base atoms; a rewriting body of view atoms with all-distinguished views
  // reproduces the composed query exactly.
  ViewSet vs = Views("va(X, Y) :- e(X, Y).\nvb(X, Y) :- f(X, Y).");
  Query rw = Parse("p(A, C) :- va(A, B), vb(B, C).");
  Query direct = Parse("p(A, C) :- e(A, B), f(B, C).");
  auto e = ExpandRewriting(rw, vs);
  ASSERT_TRUE(e.ok());
  EXPECT_TRUE(AreEquivalent(e.value().query, direct).value());
}

}  // namespace
}  // namespace aqv
