// Tests of the frontend TCP line-protocol server (frontend/server.h):
// protocol framing (payload lines + ok/err terminators), per-connection
// session isolation, the STATS alias, and the load-bearing concurrency
// claim — N concurrent clients running the same script through one shared
// RewriteService receive byte-identical responses. CI additionally runs
// this binary under ThreadSanitizer (the tsan-service job).

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "frontend/server.h"
#include "gtest/gtest.h"

namespace aqv {
namespace {

/// Blocking TCP client helper: connects to 127.0.0.1:port.
int ConnectTo(int port) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  int rc = ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
  EXPECT_EQ(rc, 0) << std::strerror(errno);
  return fd;
}

bool IsTerminator(const std::string& line) {
  return line == "ok" || line.rfind("err ", 0) == 0;
}

/// Sends `commands` (one per line) and reads until `expected_terminators`
/// terminator lines arrived (or the peer closed). Returns everything read.
std::string Roundtrip(int port, const std::vector<std::string>& commands) {
  int fd = ConnectTo(port);
  std::string request;
  for (const std::string& c : commands) request += c + "\n";
  size_t sent = 0;
  while (sent < request.size()) {
    ssize_t n = ::send(fd, request.data() + sent, request.size() - sent, 0);
    if (n <= 0) break;
    sent += static_cast<size_t>(n);
  }
  std::string received;
  size_t terminators = 0;
  size_t scanned = 0;
  char buf[4096];
  while (terminators < commands.size()) {
    ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;
    received.append(buf, static_cast<size_t>(n));
    size_t nl;
    while ((nl = received.find('\n', scanned)) != std::string::npos) {
      if (IsTerminator(received.substr(scanned, nl - scanned))) {
        ++terminators;
      }
      scanned = nl + 1;
    }
  }
  ::close(fd);
  return received;
}

const std::vector<std::string> kScript = {
    "view v(X, Y) :- edge(X, Y), checked(Y).",
    "query q(X, Z) :- edge(X, Y), checked(Y), edge(Y, Z).",
    "fact edge(1, 2).",
    "fact checked(2).",
    "fact edge(2, 3).",
    "show views",
    "rewrite with lmss",
    "rewrite",
    "answer route direct",
    "answer route cost",
    "quit"};

TEST(FrontendServerTest, StartResolvesEphemeralPortAndStops) {
  FrontendServer server;
  ASSERT_TRUE(server.Start().ok());
  EXPECT_GT(server.port(), 0);
  server.Stop();
  server.Stop();  // idempotent
}

TEST(FrontendServerTest, SingleClientRoundTrip) {
  FrontendServer server;
  ASSERT_TRUE(server.Start().ok());
  std::string response = Roundtrip(server.port(), kScript);
  EXPECT_NE(response.find("added view v\nok\n"), std::string::npos);
  EXPECT_NE(response.find("route direct: 1 answer (exact)\n(1, 3)\nok\n"),
            std::string::npos);
  EXPECT_NE(
      response.find("engine lmss: equivalent=no, rewritings=0\nok\n"),
      std::string::npos);
  EXPECT_EQ(server.connections_accepted(), 1u);
  server.Stop();
}

TEST(FrontendServerTest, ErrorsUseErrTerminator) {
  FrontendServer server;
  ASSERT_TRUE(server.Start().ok());
  std::string response =
      Roundtrip(server.port(), {"bogus", "view broken(", "quit"});
  EXPECT_NE(response.find(
                "err InvalidArgument: unknown command 'bogus' (try 'help')"),
            std::string::npos);
  EXPECT_NE(response.find("err ParseError:"), std::string::npos);
  server.Stop();
}

TEST(FrontendServerTest, LoadIsDisabledOnServerSessions) {
  FrontendServer server;
  ASSERT_TRUE(server.Start().ok());
  std::string response =
      Roundtrip(server.port(), {"load /etc/hostname", "quit"});
  EXPECT_NE(response.find("err Unimplemented: load is disabled"),
            std::string::npos);
  server.Stop();
}

TEST(FrontendServerTest, StatsAliasSurfacesServiceStats) {
  ServerOptions options;
  options.service.num_workers = 2;
  FrontendServer server(options);
  ASSERT_TRUE(server.Start().ok());
  std::string response = Roundtrip(
      server.port(),
      {"query q(X) :- e(X).", "fact e(1).", "answer route direct", "STATS",
       "quit"});
  // Every command executes as a counted generic task on the pool, and the
  // service counts a task before its body delivers the result — so by the
  // time the STATS task renders the line, the three commands before it
  // (query/fact/answer) and STATS itself are all deterministically
  // counted, exactly four.
  EXPECT_NE(response.find("service: requests=4 ok=4 failed=0 workers=2"),
            std::string::npos);
  EXPECT_NE(response.find("oracle: hits="), std::string::npos);
  EXPECT_NE(response.find("plan_cache: hits="), std::string::npos);
  server.Stop();
}

TEST(FrontendServerTest, SessionsAreIsolatedPerConnection) {
  FrontendServer server;
  ASSERT_TRUE(server.Start().ok());
  std::string first = Roundtrip(
      server.port(), {"view v(X) :- e(X).", "fact e(1).", "quit"});
  EXPECT_NE(first.find("added view v"), std::string::npos);
  // A second connection starts from a blank session.
  std::string second =
      Roundtrip(server.port(), {"show views", "show facts", "quit"});
  EXPECT_NE(second.find("(none)\nok\n(none)\nok\n"), std::string::npos);
  server.Stop();
}

TEST(FrontendServerTest, ConcurrentClientsGetIdenticalResponses) {
  ServerOptions options;
  options.service.num_workers = 4;
  FrontendServer server(options);
  ASSERT_TRUE(server.Start().ok());

  std::string expected = Roundtrip(server.port(), kScript);
  ASSERT_NE(expected.find("route direct: 1 answer (exact)"),
            std::string::npos);

  constexpr int kClients = 8;
  std::vector<std::string> responses(kClients);
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int i = 0; i < kClients; ++i) {
    clients.emplace_back([&, i] {
      responses[i] = Roundtrip(server.port(), kScript);
    });
  }
  for (std::thread& t : clients) t.join();
  for (int i = 0; i < kClients; ++i) {
    EXPECT_EQ(responses[i], expected) << "client " << i;
  }
  EXPECT_EQ(server.connections_accepted(),
            static_cast<uint64_t>(kClients) + 1);
  EXPECT_GE(server.service().lifetime_stats().requests,
            static_cast<uint64_t>(kClients));
  server.Stop();
}

TEST(FrontendServerTest, StopWhileClientConnectedUnblocksIt) {
  FrontendServer server;
  ASSERT_TRUE(server.Start().ok());
  int fd = ConnectTo(server.port());
  // Half a command, never finished: the handler is blocked in recv.
  ::send(fd, "show vi", 7, 0);
  std::thread stopper([&] { server.Stop(); });
  char buf[256];
  while (::recv(fd, buf, sizeof(buf), 0) > 0) {
  }
  stopper.join();
  ::close(fd);
}

TEST(FrontendServerTest, OverlongLineIsRefused) {
  ServerOptions options;
  options.max_line_bytes = 64;
  FrontendServer server(options);
  ASSERT_TRUE(server.Start().ok());
  // Both shapes of an overlong line must be refused: one that arrives
  // complete (newline included in the same packet) and one whose
  // terminator never comes.
  for (const std::string& big :
       {std::string(256, 'x') + "\n", std::string(256, 'x')}) {
    int fd = ConnectTo(server.port());
    ::send(fd, big.data(), big.size(), 0);
    std::string received;
    char buf[512];
    ssize_t n;
    while ((n = ::recv(fd, buf, sizeof(buf), 0)) > 0) {
      received.append(buf, static_cast<size_t>(n));
    }
    EXPECT_EQ(received, "err InvalidArgument: line exceeds 64 bytes\n");
    ::close(fd);
  }
  server.Stop();
}

TEST(FrontendServerTest, LineExactlyAtCapIsAccepted) {
  ServerOptions options;
  options.max_line_bytes = 64;
  FrontendServer server(options);
  ASSERT_TRUE(server.Start().ok());
  // Content length (newline excluded) == cap is the last accepted size,
  // and the connection stays fully usable afterwards.
  std::string at_cap = "%" + std::string(63, 'x');
  ASSERT_EQ(at_cap.size(), 64u);
  std::string response =
      Roundtrip(server.port(), {at_cap, "help", "quit"});
  EXPECT_EQ(response.find("err "), std::string::npos) << response;
  EXPECT_NE(response.find("ok\ncommands:"), std::string::npos) << response;
  server.Stop();
}

TEST(FrontendServerTest, LineOneByteOverCapIsRefused) {
  ServerOptions options;
  options.max_line_bytes = 64;
  FrontendServer server(options);
  ASSERT_TRUE(server.Start().ok());
  std::string over_cap = "%" + std::string(64, 'x') + "\n";
  int fd = ConnectTo(server.port());
  ::send(fd, over_cap.data(), over_cap.size(), 0);
  std::string received;
  char buf[256];
  ssize_t n;
  while ((n = ::recv(fd, buf, sizeof(buf), 0)) > 0) {
    received.append(buf, static_cast<size_t>(n));
  }
  EXPECT_EQ(received, "err InvalidArgument: line exceeds 64 bytes\n");
  ::close(fd);
  server.Stop();
}

TEST(FrontendServerTest, PartialLinesAcrossReadsRespectTheCap) {
  ServerOptions options;
  options.max_line_bytes = 64;
  FrontendServer server(options);
  ASSERT_TRUE(server.Start().ok());

  // An under-cap line split across two sends (the server recv()s the
  // fragments separately) is reassembled and accepted.
  {
    int fd = ConnectTo(server.port());
    std::string head = "%" + std::string(30, 'a');
    std::string tail = std::string(30, 'b') + "\nquit\n";
    ::send(fd, head.data(), head.size(), 0);
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    ::send(fd, tail.data(), tail.size(), 0);
    std::string received;
    char buf[256];
    ssize_t n;
    while ((n = ::recv(fd, buf, sizeof(buf), 0)) > 0) {
      received.append(buf, static_cast<size_t>(n));
    }
    EXPECT_EQ(received, "ok\nok\n");
    ::close(fd);
  }

  // A newline-less carry that crosses the cap on a *later* read is
  // refused as soon as the accumulated partial line exceeds it.
  {
    int fd = ConnectTo(server.port());
    std::string fragment(40, 'x');
    ::send(fd, fragment.data(), fragment.size(), 0);
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    ::send(fd, fragment.data(), fragment.size(), 0);
    std::string received;
    char buf[256];
    ssize_t n;
    while ((n = ::recv(fd, buf, sizeof(buf), 0)) > 0) {
      received.append(buf, static_cast<size_t>(n));
    }
    EXPECT_EQ(received, "err InvalidArgument: line exceeds 64 bytes\n");
    ::close(fd);
  }
  server.Stop();
}

TEST(FrontendServerTest, FinishedConnectionThreadsAreReaped) {
  FrontendServer server;
  ASSERT_TRUE(server.Start().ok());
  // Serial short-lived connections: each accept reaps the previous
  // connection's finished handler thread, so a long-lived server does
  // not accumulate one zombie thread per connection ever served (pinned
  // here behaviorally — every connection keeps getting full service).
  for (int i = 0; i < 32; ++i) {
    std::string response = Roundtrip(server.port(), {"help", "quit"});
    ASSERT_NE(response.find("commands:"), std::string::npos) << i;
  }
  EXPECT_EQ(server.connections_accepted(), 32u);
  server.Stop();
}

}  // namespace
}  // namespace aqv
