// Adversarial protocol tests of the epoll frontend server
// (frontend/server.h): hostile wire shapes — whole scripts pipelined into
// one write, byte-at-a-time slow-loris sends, partial lines abandoned by
// disconnects, RST aborts mid-response — plus the operational edges:
// connection-cap refusal and recovery, idle-timeout sweeps, STATS under
// concurrent load, pipelined `quit` cutting off later commands, the
// auth/permission gate (handshake ordering, bad credentials, read-only
// refusal, tenant isolation), and the Stop()-mid-write drain contract.
// Wherever responses are deterministic they are byte-compared against an
// inline Session rendered through RenderWireResponse — the server must be
// invisible as a transport. CI additionally runs this binary under
// ThreadSanitizer (the tsan-service job).

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "frontend/differential.h"
#include "frontend/server.h"
#include "frontend/session.h"
#include "gtest/gtest.h"

namespace aqv {
namespace {

int ConnectTo(int port) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  int rc = ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
  EXPECT_EQ(rc, 0) << std::strerror(errno);
  return fd;
}

void SendAll(int fd, const std::string& data) {
  size_t sent = 0;
  while (sent < data.size()) {
    ssize_t n = ::send(fd, data.data() + sent, data.size() - sent, 0);
    if (n <= 0) break;
    sent += static_cast<size_t>(n);
  }
}

/// Reads until the peer closes (EOF) or errors.
std::string RecvUntilEof(int fd) {
  std::string received;
  char buf[4096];
  ssize_t n;
  while ((n = ::recv(fd, buf, sizeof(buf), 0)) > 0) {
    received.append(buf, static_cast<size_t>(n));
  }
  return received;
}

bool IsTerminator(const std::string& line) {
  return line == "ok" || line.rfind("err ", 0) == 0;
}

size_t CountTerminators(const std::string& stream) {
  size_t count = 0;
  size_t scanned = 0;
  size_t nl;
  while ((nl = stream.find('\n', scanned)) != std::string::npos) {
    if (IsTerminator(stream.substr(scanned, nl - scanned))) ++count;
    scanned = nl + 1;
  }
  return count;
}

/// Reads until `expected_terminators` terminator lines arrived (or EOF).
std::string RecvResponses(int fd, size_t expected_terminators) {
  std::string received;
  size_t terminators = 0;
  size_t scanned = 0;
  char buf[4096];
  while (terminators < expected_terminators) {
    ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;
    received.append(buf, static_cast<size_t>(n));
    size_t nl;
    while ((nl = received.find('\n', scanned)) != std::string::npos) {
      if (IsTerminator(received.substr(scanned, nl - scanned))) ++terminators;
      scanned = nl + 1;
    }
  }
  return received;
}

std::string Roundtrip(int port, const std::vector<std::string>& commands) {
  int fd = ConnectTo(port);
  std::string request;
  for (const std::string& c : commands) request += c + "\n";
  SendAll(fd, request);
  std::string received = RecvResponses(fd, commands.size());
  ::close(fd);
  return received;
}

/// The inline-Session ground truth for `commands`: what the server must
/// send byte for byte (session options mirror the server's template —
/// load disabled, everything else default). Stops after `quit`, exactly
/// as the server does.
std::string GroundTruth(const std::vector<std::string>& commands) {
  SessionOptions options;
  options.enable_load = false;
  Session session(options);
  std::string expected;
  for (const std::string& c : commands) {
    CommandResult result = session.Execute(c);
    expected += RenderWireResponse(result);
    if (result.quit) break;
  }
  return expected;
}

/// A deterministic mixed script: mutations, probes, and errors.
const std::vector<std::string> kMixedScript = {
    "view v(X, Y) :- edge(X, Y), checked(Y).",
    "view w(X) :- checked(X).",
    "query q(X, Z) :- edge(X, Y), checked(Y), edge(Y, Z).",
    "fact edge(1, 2).",
    "fact checked(2).",
    "fact edge(2, 3).",
    "show views",
    "show facts",
    "rewrite with lmss",
    "rewrite with minicon",
    "answer route direct",
    "answer route complete",
    "bogus command",
    "view broken(",
    "explain",
    "quit"};

// --- hostile framing ---------------------------------------------------

TEST(ServerProtocolTest, PipelinedScriptInOneWriteMatchesGroundTruth) {
  FrontendServer server;
  ASSERT_TRUE(server.Start().ok());
  std::string expected = GroundTruth(kMixedScript);
  int fd = ConnectTo(server.port());
  std::string request;
  for (const std::string& c : kMixedScript) request += c + "\n";
  SendAll(fd, request);  // the whole session in a single write
  std::string received = RecvUntilEof(fd);  // quit closes: read to EOF
  ::close(fd);
  EXPECT_EQ(received, expected);
  server.Stop();
}

TEST(ServerProtocolTest, SlowLorisByteAtATimeMatchesGroundTruth) {
  FrontendServer server;
  ASSERT_TRUE(server.Start().ok());
  const std::vector<std::string> script = {
      "view v(X) :- e(X).", "fact e(1).", "show views", "quit"};
  std::string expected = GroundTruth(script);
  int fd = ConnectTo(server.port());
  std::string request;
  for (const std::string& c : script) request += c + "\n";
  // One byte per send: every line crosses many reads, and the carry
  // buffer reassembles each of them.
  for (char byte : request) {
    SendAll(fd, std::string(1, byte));
    if (byte == '\n') {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }
  std::string received = RecvUntilEof(fd);
  ::close(fd);
  EXPECT_EQ(received, expected);
  server.Stop();
}

TEST(ServerProtocolTest, PartialLineDisconnectLeavesServerHealthy) {
  FrontendServer server;
  ASSERT_TRUE(server.Start().ok());
  // A client abandons an unterminated line. No response is owed for it
  // (the command never completed), and the server must carry on serving.
  {
    int fd = ConnectTo(server.port());
    SendAll(fd, "show vi");  // no newline, ever
    ::shutdown(fd, SHUT_WR);
    std::string received = RecvUntilEof(fd);
    EXPECT_EQ(received, "");
    ::close(fd);
  }
  // Completed lines pipelined *before* the abandoned fragment still get
  // their responses flushed on half-close.
  {
    int fd = ConnectTo(server.port());
    SendAll(fd, "help\nshow vi");
    ::shutdown(fd, SHUT_WR);
    std::string received = RecvUntilEof(fd);
    EXPECT_EQ(received, GroundTruth({"help"}));
    ::close(fd);
  }
  std::string after = Roundtrip(server.port(), {"help", "quit"});
  EXPECT_NE(after.find("commands:"), std::string::npos);
  server.Stop();
}

TEST(ServerProtocolTest, AbruptResetMidResponseLeavesServerHealthy) {
  FrontendServer server;
  ASSERT_TRUE(server.Start().ok());
  // Pipeline enough output to outrun the client, then RST the connection
  // (SO_LINGER{on, 0} turns close() into an abort) while the server is
  // still writing. The write error must only kill that connection.
  for (int round = 0; round < 4; ++round) {
    int fd = ConnectTo(server.port());
    std::string request;
    for (int i = 0; i < 64; ++i) request += "help\n";
    SendAll(fd, request);
    char buf[512];
    (void)::recv(fd, buf, sizeof(buf), 0);  // a taste, then slam the door
    linger hard{};
    hard.l_onoff = 1;
    hard.l_linger = 0;
    ::setsockopt(fd, SOL_SOCKET, SO_LINGER, &hard, sizeof(hard));
    ::close(fd);
  }
  std::string after = Roundtrip(server.port(), {"help", "quit"});
  EXPECT_NE(after.find("commands:"), std::string::npos);
  server.Stop();
}

// --- operational limits ------------------------------------------------

TEST(ServerProtocolTest, ConnectionCapRefusesWithExactErrorAndRecovers) {
  ServerOptions options;
  options.max_connections = 2;
  FrontendServer server(options);
  ASSERT_TRUE(server.Start().ok());

  // Fill the cap with two live connections (a served command proves each
  // is registered, not merely in the accept queue).
  int held_a = ConnectTo(server.port());
  SendAll(held_a, "show views\n");
  EXPECT_EQ(RecvResponses(held_a, 1), "(none)\nok\n");
  int held_b = ConnectTo(server.port());
  SendAll(held_b, "show views\n");
  EXPECT_EQ(RecvResponses(held_b, 1), "(none)\nok\n");

  // The third connection is refused with the documented terminator and
  // closed immediately.
  int refused = ConnectTo(server.port());
  EXPECT_EQ(RecvUntilEof(refused),
            "err ResourceExhausted: connection limit (2) reached\n");
  ::close(refused);

  // Releasing a slot restores service (the close needs an event-loop trip
  // to be observed, so poll until a fresh connection is served).
  SendAll(held_a, "quit\n");
  EXPECT_EQ(RecvUntilEof(held_a), "ok\n");
  ::close(held_a);
  std::string response;
  for (int attempt = 0; attempt < 100; ++attempt) {
    response = Roundtrip(server.port(), {"help", "quit"});
    if (response.find("commands:") != std::string::npos) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_NE(response.find("commands:"), std::string::npos);

  ::close(held_b);
  server.Stop();
}

TEST(ServerProtocolTest, IdleConnectionsAreClosedByTheTimeoutSweep) {
  ServerOptions options;
  options.idle_timeout_ms = 100;
  FrontendServer server(options);
  ASSERT_TRUE(server.Start().ok());
  int fd = ConnectTo(server.port());
  auto t0 = std::chrono::steady_clock::now();
  std::string received = RecvUntilEof(fd);  // server closes, no verdict line
  auto elapsed = std::chrono::steady_clock::now() - t0;
  EXPECT_EQ(received, "");
  EXPECT_LT(elapsed, std::chrono::seconds(30));
  ::close(fd);
  server.Stop();
}

TEST(ServerProtocolTest, ActiveConnectionSurvivesTheIdleTimeout) {
  ServerOptions options;
  options.idle_timeout_ms = 300;
  FrontendServer server(options);
  ASSERT_TRUE(server.Start().ok());
  int fd = ConnectTo(server.port());
  // Gaps under the timeout, total well over it: activity must keep
  // resetting the idle clock.
  for (int i = 0; i < 8; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    SendAll(fd, "show views\n");
    ASSERT_EQ(RecvResponses(fd, 1), "(none)\nok\n") << "iteration " << i;
  }
  SendAll(fd, "quit\n");
  EXPECT_EQ(RecvUntilEof(fd), "ok\n");
  ::close(fd);
  server.Stop();
}

TEST(ServerProtocolTest, StatsUnderConcurrentLoadStaysWellFormed) {
  ServerOptions options;
  options.service.num_workers = 4;
  FrontendServer server(options);
  ASSERT_TRUE(server.Start().ok());
  const std::vector<std::string> script = {
      "view v(X) :- e(X).", "fact e(1).", "query q(X) :- e(X).",
      "rewrite",            "STATS",      "quit"};
  constexpr int kClients = 6;
  std::vector<std::string> responses(kClients);
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int i = 0; i < kClients; ++i) {
    clients.emplace_back(
        [&, i] { responses[i] = Roundtrip(server.port(), script); });
  }
  for (std::thread& t : clients) t.join();
  for (int i = 0; i < kClients; ++i) {
    // STATS content races with the other clients, but every response must
    // be complete and framed: one terminator per command, all counters
    // present, never an error.
    EXPECT_EQ(CountTerminators(responses[i]), script.size()) << "client " << i;
    EXPECT_NE(responses[i].find("service: requests="), std::string::npos);
    EXPECT_NE(responses[i].find("oracle: hits="), std::string::npos);
    EXPECT_NE(responses[i].find("plan_cache: hits="), std::string::npos);
    EXPECT_EQ(responses[i].find("err "), std::string::npos) << responses[i];
  }
  server.Stop();
}

TEST(ServerProtocolTest, PipelinedQuitStopsProcessingLaterCommands) {
  FrontendServer server;
  ASSERT_TRUE(server.Start().ok());
  int fd = ConnectTo(server.port());
  // Everything after `quit` must be discarded, not executed: exactly two
  // responses, then EOF.
  SendAll(fd, "show views\nquit\nview v(X) :- e(X).\nshow views\n");
  std::string received = RecvUntilEof(fd);
  ::close(fd);
  EXPECT_EQ(received, GroundTruth({"show views", "quit"}));
  EXPECT_EQ(CountTerminators(received), 2u);
  server.Stop();
}

// --- auth / permissions ------------------------------------------------

ServerOptions TwoTenantOptions() {
  ServerOptions options;
  options.accounts = {{"alice", "s3cret", true}, {"bob", "hunter2", true}};
  return options;
}

TEST(ServerProtocolTest, CommandsBeforeAuthAreRefused) {
  FrontendServer server(TwoTenantOptions());
  ASSERT_TRUE(server.Start().ok());
  int fd = ConnectTo(server.port());
  SendAll(fd, "show views\n");
  EXPECT_EQ(RecvResponses(fd, 1),
            "err Unauthenticated: authenticate first (auth <user> <token>)\n");
  SendAll(fd, "auth alice s3cret\n");
  EXPECT_EQ(RecvResponses(fd, 1), "authenticated as alice\nok\n");
  SendAll(fd, "show views\nquit\n");
  EXPECT_EQ(RecvUntilEof(fd), "(none)\nok\nok\n");
  ::close(fd);
  server.Stop();
}

TEST(ServerProtocolTest, BadCredentialsAreRefusedWithoutKillingTheConn) {
  FrontendServer server(TwoTenantOptions());
  ASSERT_TRUE(server.Start().ok());
  int fd = ConnectTo(server.port());
  SendAll(fd, "auth alice wrong\n");
  EXPECT_EQ(RecvResponses(fd, 1),
            "err PermissionDenied: bad credentials for user 'alice'\n");
  SendAll(fd, "auth mallory s3cret\n");
  EXPECT_EQ(RecvResponses(fd, 1),
            "err PermissionDenied: bad credentials for user 'mallory'\n");
  SendAll(fd, "auth\n");
  EXPECT_EQ(RecvResponses(fd, 1),
            "err InvalidArgument: usage: auth <user> <token>\n");
  // The connection survives every refusal; a correct handshake still works.
  SendAll(fd, "auth alice s3cret\nquit\n");
  EXPECT_EQ(RecvUntilEof(fd), "authenticated as alice\nok\nok\n");
  ::close(fd);
  server.Stop();
}

TEST(ServerProtocolTest, UnauthenticatedQuitStillCloses) {
  FrontendServer server(TwoTenantOptions());
  ASSERT_TRUE(server.Start().ok());
  int fd = ConnectTo(server.port());
  SendAll(fd, "quit\n");
  EXPECT_EQ(RecvUntilEof(fd), "ok\n");
  ::close(fd);
  server.Stop();
}

TEST(ServerProtocolTest, CommentsAndBlanksPassTheGateUnauthenticated) {
  FrontendServer server(TwoTenantOptions());
  ASSERT_TRUE(server.Start().ok());
  int fd = ConnectTo(server.port());
  // Comments and blank lines carry no authority: they reach the session
  // (which answers a bare `ok`) instead of being refused Unauthenticated.
  SendAll(fd, "% a comment\n\nauth bob hunter2\nquit\n");
  EXPECT_EQ(RecvUntilEof(fd), "ok\nok\nauthenticated as bob\nok\nok\n");
  ::close(fd);
  server.Stop();
}

TEST(ServerProtocolTest, ReadOnlyAccountsCannotMutate) {
  ServerOptions options;
  options.accounts = {{"auditor", "tok", false}};
  FrontendServer server(options);
  ASSERT_TRUE(server.Start().ok());
  int fd = ConnectTo(server.port());
  SendAll(fd, "auth auditor tok\n");
  EXPECT_EQ(RecvResponses(fd, 1), "authenticated as auditor (read-only)\nok\n");
  for (const std::string& mutating :
       {std::string("view v(X) :- e(X)."), std::string("fact e(1)."),
        std::string("query q(X) :- e(X)."), std::string("reset")}) {
    SendAll(fd, mutating + "\n");
    EXPECT_EQ(RecvResponses(fd, 1),
              "err PermissionDenied: user 'auditor' is read-only\n")
        << mutating;
  }
  // Read-side commands still work.
  SendAll(fd, "show views\nhelp\nquit\n");
  std::string rest = RecvUntilEof(fd);
  EXPECT_NE(rest.find("(none)\nok\n"), std::string::npos);
  EXPECT_NE(rest.find("commands:"), std::string::npos);
  ::close(fd);
  server.Stop();
}

TEST(ServerProtocolTest, TenantsNeverSeeEachOthersViews) {
  FrontendServer server(TwoTenantOptions());
  ASSERT_TRUE(server.Start().ok());
  // Two authenticated tenants interleaved on live connections: alice's
  // schema must be invisible to bob throughout, and vice versa.
  int alice = ConnectTo(server.port());
  int bob = ConnectTo(server.port());
  SendAll(alice, "auth alice s3cret\n");
  EXPECT_EQ(RecvResponses(alice, 1), "authenticated as alice\nok\n");
  SendAll(bob, "auth bob hunter2\n");
  EXPECT_EQ(RecvResponses(bob, 1), "authenticated as bob\nok\n");

  SendAll(alice, "view secret_a(X) :- e(X).\nfact e(42).\n");
  EXPECT_EQ(RecvResponses(alice, 2),
            "added view secret_a\nok\nok (1 fact total)\nok\n");
  SendAll(bob, "show views\nshow facts\n");
  EXPECT_EQ(RecvResponses(bob, 2), "(none)\nok\n(none)\nok\n");

  SendAll(bob, "view secret_b(Y) :- f(Y).\n");
  EXPECT_EQ(RecvResponses(bob, 1), "added view secret_b\nok\n");
  SendAll(alice, "show views\n");
  std::string alice_views = RecvResponses(alice, 1);
  EXPECT_NE(alice_views.find("secret_a"), std::string::npos);
  EXPECT_EQ(alice_views.find("secret_b"), std::string::npos);

  SendAll(alice, "quit\n");
  SendAll(bob, "quit\n");
  EXPECT_EQ(RecvUntilEof(alice), "ok\n");
  EXPECT_EQ(RecvUntilEof(bob), "ok\n");
  ::close(alice);
  ::close(bob);
  server.Stop();
}

// --- Stop() drain contract ---------------------------------------------

TEST(ServerProtocolTest, StopMidWriteNeverTearsAResponse) {
  // Regression: Stop() while a connection has queued output (the client
  // pipelined 200 commands and is not reading) must flush whole responses
  // and then close — never cut a response mid-line, never strand the
  // client without EOF.
  FrontendServer server;
  ASSERT_TRUE(server.Start().ok());
  const std::string unit = GroundTruth({"help"});
  ASSERT_FALSE(unit.empty());

  int fd = ConnectTo(server.port());
  std::string request;
  for (int i = 0; i < 200; ++i) request += "help\n";
  SendAll(fd, request);
  // Let the server chew through part of the pipeline while the client
  // reads nothing, so response bytes are queued server-side at Stop time.
  std::this_thread::sleep_for(std::chrono::milliseconds(150));
  std::thread stopper([&] { server.Stop(); });
  std::string received = RecvUntilEof(fd);  // concurrent with the drain
  stopper.join();
  ::close(fd);

  // Whatever was flushed is an exact prefix of the pipeline's responses:
  // a whole number of complete `help` responses, byte-identical each.
  ASSERT_EQ(received.size() % unit.size(), 0u)
      << "torn response: " << received.size() << " bytes is not a multiple of "
      << unit.size();
  for (size_t at = 0; at < received.size(); at += unit.size()) {
    ASSERT_EQ(received.compare(at, unit.size(), unit), 0)
        << "response " << (at / unit.size()) << " is corrupted";
  }
}

TEST(ServerProtocolTest, StopWithIdleAndMidLineConnectionsIsClean) {
  FrontendServer server;
  ASSERT_TRUE(server.Start().ok());
  int idle = ConnectTo(server.port());
  int midline = ConnectTo(server.port());
  SendAll(midline, "show vi");  // unterminated carry at Stop time
  std::thread stopper([&] { server.Stop(); });
  EXPECT_EQ(RecvUntilEof(idle), "");
  EXPECT_EQ(RecvUntilEof(midline), "");
  stopper.join();
  ::close(idle);
  ::close(midline);
}

}  // namespace
}  // namespace aqv
