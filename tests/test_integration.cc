#include <gtest/gtest.h>

#include "containment/containment.h"
#include "cq/parser.h"
#include "eval/certain.h"
#include "eval/evaluator.h"
#include "eval/materialize.h"
#include "rewriting/bucket.h"
#include "rewriting/inverse_rules.h"
#include "rewriting/lmss.h"
#include "rewriting/minicon.h"
#include "views/expansion.h"
#include "workload/scenarios.h"

namespace aqv {
namespace {

/// Warehouse: parse -> LMSS -> execute rewriting over extents -> compare
/// against direct evaluation over base tables. The full materialized-view
/// optimization story.
TEST(Integration, WarehouseEquivalentRewritingRoundTrip) {
  Scenario s = MakeWarehouseScenario(1, 400).value();
  LmssOptions opts;
  opts.max_rewritings = 4;
  LmssResult res =
      FindEquivalentRewritings(s.query, s.views, opts).value();
  ASSERT_TRUE(res.exists);

  Database extents = MaterializeViews(s.views, s.base).value();
  Relation direct = EvaluateQuery(s.query, s.base).value();
  ASSERT_GT(direct.size(), 0u);
  for (const Query& rw : res.rewritings) {
    Relation via_views = EvaluateQuery(rw, extents).value();
    EXPECT_TRUE(Relation::SameSet(direct, via_views))
        << "rewriting " << rw.ToString() << " disagrees with base";
  }
}

/// Travel with the pre-joined source: equivalent rewriting exists; without
/// it: contained rewritings only, answers still sound and here complete
/// (the information survives in the route+service sources... it does not:
/// the airline is hidden in `routes`, so answers can be strictly fewer).
TEST(Integration, TravelEquivalentAndContainedRegimes) {
  Scenario s = MakeTravelScenario(2, 300).value();
  EXPECT_TRUE(ExistsEquivalentRewriting(s.query, s.views).value());

  // Drop `goodflights`: rebuild a view set with the other three sources.
  ViewSet reduced;
  for (const View& v : s.views.views()) {
    if (v.name() != "goodflights") {
      ASSERT_TRUE(reduced.Add(v.definition).ok());
    }
  }
  EXPECT_FALSE(ExistsEquivalentRewriting(s.query, reduced).value());

  // Maximally-contained answering with the reduced sources.
  MiniConResult mc = MiniConRewrite(s.query, reduced).value();
  Database extents = MaterializeViews(reduced, s.base).value();
  Relation direct = EvaluateQuery(s.query, s.base).value();
  if (!mc.rewritings.empty()) {
    Relation certain = EvaluateRewritingUnion(s.query, mc.rewritings, extents).value();
    for (auto& row : certain.Rows()) {
      EXPECT_TRUE(direct.Contains(row));  // soundness
    }
  }
}

/// Bibliography: MiniCon union == Bucket union == inverse-rules answers.
TEST(Integration, BibliographyThreeWayAgreement) {
  Scenario s = MakeBibliographyScenario(3, 120).value();
  Database extents = MaterializeViews(s.views, s.base).value();

  MiniConResult mc = MiniConRewrite(s.query, s.views).value();
  BucketResult bk = BucketRewrite(s.query, s.views).value();
  InverseRuleSet ir = BuildInverseRules(s.views).value();

  Relation ir_ans = CertainAnswersViaInverseRules(s.query, ir, extents).value();
  if (mc.rewritings.empty()) {
    EXPECT_TRUE(bk.rewritings.empty());
    EXPECT_EQ(ir_ans.size(), 0u);
    return;
  }
  Relation mc_ans = EvaluateRewritingUnion(s.query, mc.rewritings, extents).value();
  Relation bk_ans = EvaluateRewritingUnion(s.query, bk.rewritings, extents).value();
  EXPECT_TRUE(Relation::SameSet(mc_ans, bk_ans));
  EXPECT_TRUE(Relation::SameSet(mc_ans, ir_ans));

  Relation direct = EvaluateQuery(s.query, s.base).value();
  for (auto& row : mc_ans.Rows()) {
    EXPECT_TRUE(direct.Contains(row));
  }
}

/// The LMSS running theme: rewriting length never exceeds the (minimized)
/// query's subgoal count, across a grid of hand-built cases.
TEST(Integration, LengthBoundAcrossGrid) {
  Catalog cat;
  struct Case {
    const char* query;
    const char* views;
  };
  const Case cases[] = {
      {"q1(X, Y) :- a(X, Z), b(Z, Y).",
       "v1(A, B) :- a(A, B).\nv2(B, C) :- b(B, C)."},
      {"q2(X) :- a(X, Y), b(Y, X).",
       "v3(A, B) :- a(A, B).\nv4(B, C) :- b(B, C)."},
      {"q3(X, W) :- a(X, Y), b(Y, Z), c(Z, W).",
       "v5(A, C) :- a(A, B), b(B, C).\nv6(C, D) :- c(C, D)."},
      {"q4(X) :- a(X, Y), a(Y, Z).",
       "v7(A, B) :- a(A, B)."},
  };
  for (const Case& c : cases) {
    Query q = ParseQuery(c.query, &cat).value();
    ViewSet vs = ViewSet::Parse(c.views, &cat).value();
    LmssOptions opts;
    opts.max_rewritings = 50;
    LmssResult res = FindEquivalentRewritings(q, vs, opts).value();
    for (const Query& rw : res.rewritings) {
      EXPECT_LE(rw.body().size(), res.minimized_query.body().size())
          << rw.ToString();
    }
  }
}

/// Program text in, answers out: the whole stack driven only through the
/// public parse/rewrite/evaluate API, no internal constructors.
TEST(Integration, TextToAnswersPipeline) {
  Catalog cat;
  ViewSet views = ViewSet::Parse(R"(
    parentof(P, C) :- parent(P, C).
    grandp(G, C) :- parent(G, P), parent(P, C).
  )",
                                 &cat)
                      .value();
  Query q =
      ParseQuery("q(G, C) :- parent(G, P), parent(P, C).", &cat).value();

  Database base(&cat);
  PredId parent = cat.FindPredicate("parent").value();
  base.Add(parent, {1, 2});
  base.Add(parent, {2, 3});
  base.Add(parent, {2, 4});

  LmssResult res = FindEquivalentRewritings(q, views).value();
  ASSERT_TRUE(res.exists);
  Database extents = MaterializeViews(views, base).value();
  Relation via = EvaluateQuery(res.rewritings[0], extents).value();
  Relation direct = EvaluateQuery(q, base).value();
  EXPECT_TRUE(Relation::SameSet(via, direct));
  ASSERT_EQ(direct.size(), 2u);
  EXPECT_TRUE(direct.Contains({1, 3}));
  EXPECT_TRUE(direct.Contains({1, 4}));
}

/// Comparison predicates through the full pipeline.
TEST(Integration, ComparisonQueryEndToEnd) {
  Catalog cat;
  ViewSet views =
      ViewSet::Parse("vcheap(I, P) :- price(I, P), P < 100.", &cat).value();
  Query q =
      ParseQuery("q(I) :- price(I, P), P < 100.", &cat).value();
  LmssResult res = FindEquivalentRewritings(q, views).value();
  ASSERT_TRUE(res.exists);

  Database base(&cat);
  PredId price = cat.FindPredicate("price").value();
  base.Add(price, {1, 50});
  base.Add(price, {2, 150});
  base.Add(price, {3, 99});
  Database extents = MaterializeViews(views, base).value();
  Relation via = EvaluateQuery(res.rewritings[0], extents).value();
  Relation direct = EvaluateQuery(q, base).value();
  EXPECT_TRUE(Relation::SameSet(via, direct));
  EXPECT_EQ(direct.size(), 2u);
}

}  // namespace
}  // namespace aqv
