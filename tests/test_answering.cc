/// Route-equivalence suite for the end-to-end answering pipeline: on every
/// scenario where an equivalent rewriting exists, the complete-rewriting
/// route (any engine), the inverse-rules route, and the cost-planned route
/// must all return exactly the direct evaluation of the query over the
/// hidden base database — LMSS95's answering semantics meeting
/// Duschka-Genesereth's, with the pipeline as the integration point.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "answering/answering.h"
#include "cq/parser.h"
#include "eval/materialize.h"
#include "service/service.h"
#include "util/rng.h"
#include "workload/datagen.h"
#include "workload/generators.h"
#include "workload/registry.h"

namespace aqv {
namespace {

AnswerRequest BaseRequest(const Query& q, const ViewSet& views,
                          const Database& base) {
  AnswerRequest request;
  request.query.disjuncts.push_back(q);
  request.views = &views;
  request.base = &base;
  return request;
}

Relation Answer(AnswerRequest request, AnswerRoute route,
                const std::string& engine = "") {
  request.route = route;
  if (!engine.empty()) request.engine = engine;
  auto resp = AnswerQuery(request);
  EXPECT_TRUE(resp.ok()) << AnswerRouteName(route) << "/" << engine << ": "
                         << resp.status().ToString();
  return std::move(resp).value().result;
}

/// The invariant: every route and engine reproduces direct evaluation.
void ExpectAllRoutesMatchDirect(const Query& q, const ViewSet& views,
                                const Database& base,
                                const std::string& context) {
  AnswerRequest request = BaseRequest(q, views, base);
  Relation direct = Answer(request, AnswerRoute::kDirect);
  Relation inverse = Answer(request, AnswerRoute::kInverseRules);
  EXPECT_TRUE(Relation::SameSet(direct, inverse))
      << context << ": inverse-rules route diverged";
  Relation cost = Answer(request, AnswerRoute::kCostBased);
  EXPECT_TRUE(Relation::SameSet(direct, cost))
      << context << ": cost route diverged";
  for (const std::string& engine : EngineNames()) {
    Relation complete =
        Answer(request, AnswerRoute::kCompleteRewriting, engine);
    EXPECT_TRUE(Relation::SameSet(direct, complete))
        << context << ": complete route via " << engine << " diverged";
  }
}

TEST(Answering, RouteRegistryRoundTrips) {
  ASSERT_EQ(AnswerRouteNames().size(), 4u);
  for (const std::string& name : AnswerRouteNames()) {
    auto route = AnswerRouteByName(name);
    ASSERT_TRUE(route.ok()) << name;
    EXPECT_EQ(AnswerRouteName(route.value()), name);
  }
  EXPECT_EQ(AnswerRouteByName("nope").status().code(), StatusCode::kNotFound);
}

TEST(Answering, RegistryScenarioRouteEquivalence) {
  // All three packaged scenarios have an equivalent rewriting (goodflights
  // / salesfull / mutual+samecites), so certain answers coincide with
  // q(D) and every route must agree exactly — the acceptance oracle.
  for (const std::string& name : ScenarioNames()) {
    for (uint64_t seed : {3u, 11u}) {
      Scenario s = MakeScenarioByName(name, seed, 60).value();
      // Self-check the premise the equivalence rests on.
      AnswerRequest probe = BaseRequest(s.query, s.views, s.base);
      probe.route = AnswerRoute::kCompleteRewriting;
      probe.engine = "lmss";
      auto lmss = AnswerQuery(probe);
      ASSERT_TRUE(lmss.ok()) << lmss.status().ToString();
      ASSERT_TRUE(lmss.value().exact)
          << name << ": expected an equivalent rewriting to exist";
      ExpectAllRoutesMatchDirect(s.query, s.views, s.base,
                                 name + "/seed:" + std::to_string(seed));
    }
  }
}

TEST(Answering, RandomizedChainRouteEquivalence) {
  // Chain of length 4 with hand-tiled covering views (equivalent rewriting
  // exists by construction: w1 ∘ w2 spans the chain, middles hidden) plus
  // random sub-chain noise views, on generated data.
  for (uint64_t seed = 1; seed <= 4; ++seed) {
    Catalog cat;
    Rng rng(seed);
    ChainViewSpec vspec;
    vspec.chain.length = 4;
    vspec.num_views = 4;
    vspec.min_length = 1;
    vspec.max_length = 2;
    vspec.policy = DistinguishedPolicy::kEnds;
    Query q = MakeChainQuery(&cat, vspec.chain).value();
    ViewSet views = MakeChainViews(&cat, &rng, vspec).value();
    ASSERT_TRUE(
        views.Add(ParseQuery("w1(A, C) :- r1(A, B), r2(B, C).", &cat).value())
            .ok());
    ASSERT_TRUE(
        views.Add(ParseQuery("w2(C, E) :- r3(C, D), r4(D, E).", &cat).value())
            .ok());

    DataGenSpec dspec;
    dspec.tuples_per_relation = 40;
    dspec.domain_size = 6;
    Database base =
        MakeRandomDatabase(&cat, ExtensionalPredicates(cat), &rng, dspec);
    ExpectAllRoutesMatchDirect(q, views, base,
                               "chain/seed:" + std::to_string(seed));
  }
}

TEST(Answering, RandomizedStarRouteEquivalence) {
  // 3-ray star with one fully-exposed view per ray (equivalent rewriting
  // exists by construction) plus random multi-ray noise views.
  for (uint64_t seed = 1; seed <= 4; ++seed) {
    Catalog cat;
    Rng rng(seed + 100);
    StarViewSpec vspec;
    vspec.star.rays = 3;
    vspec.num_views = 3;
    vspec.min_rays = 1;
    vspec.max_rays = 2;
    vspec.policy = DistinguishedPolicy::kAll;
    Query q = MakeStarQuery(&cat, vspec.star).value();
    ViewSet views = MakeStarViews(&cat, &rng, vspec).value();
    for (int ray = 1; ray <= 3; ++ray) {
      std::string rule = "t" + std::to_string(ray) + "(C, A) :- s" +
                         std::to_string(ray) + "(C, A).";
      ASSERT_TRUE(views.Add(ParseQuery(rule, &cat).value()).ok());
    }

    DataGenSpec dspec;
    dspec.tuples_per_relation = 30;
    dspec.domain_size = 5;
    Database base =
        MakeRandomDatabase(&cat, ExtensionalPredicates(cat), &rng, dspec);
    ExpectAllRoutesMatchDirect(q, views, base,
                               "star/seed:" + std::to_string(seed));
  }
}

TEST(Answering, NoCompleteRewritingYieldsTypedEmptyNotError) {
  // lmss finds no equivalent rewriting: the complete route returns a
  // sound, correctly-typed empty relation (the empty-union regression).
  Catalog cat;
  Query q = ParseQuery("q(X, Z) :- e(X, Y), f(Y, Z).", &cat).value();
  ViewSet views = ViewSet::Parse("ve(A, B) :- e(A, B).", &cat).value();
  Database base(&cat);
  base.Add(cat.FindPredicate("e").value(), {1, 2});
  base.Add(cat.FindPredicate("f").value(), {2, 3});

  AnswerRequest request = BaseRequest(q, views, base);
  request.route = AnswerRoute::kCompleteRewriting;
  request.engine = "lmss";
  auto resp = AnswerQuery(request);
  ASSERT_TRUE(resp.ok()) << resp.status().ToString();
  EXPECT_FALSE(resp.value().exact);
  EXPECT_TRUE(resp.value().result.empty());
  EXPECT_EQ(resp.value().result.arity(), 2);
  EXPECT_EQ(resp.value().result.pred(), q.head().pred);
}

TEST(Answering, PartialRewritingsEvaluateOverMergedRelations) {
  // allow_base_atoms lets lmss emit a partial rewriting (view + base
  // atoms); the complete route must evaluate it over extents merged with
  // the base relations it reads, not extents alone (where the base atom
  // would silently match nothing), and must report complete = false.
  Catalog cat;
  Query q = ParseQuery("q(X, Z) :- e(X, Y), f(Y, Z).", &cat).value();
  ViewSet views = ViewSet::Parse("ve(A, B) :- e(A, B).", &cat).value();
  Database base(&cat);
  base.Add(cat.FindPredicate("e").value(), {1, 2});
  base.Add(cat.FindPredicate("f").value(), {2, 3});

  AnswerRequest request = BaseRequest(q, views, base);
  request.route = AnswerRoute::kCompleteRewriting;
  request.engine = "lmss";
  request.options.lmss.allow_base_atoms = true;
  auto resp = AnswerQuery(request);
  ASSERT_TRUE(resp.ok()) << resp.status().ToString();
  EXPECT_FALSE(resp.value().complete);
  Relation direct = EvaluateQuery(q, base).value();
  EXPECT_TRUE(Relation::SameSet(resp.value().result, direct));
  EXPECT_EQ(resp.value().result.size(), 1u);  // (1, 3)

  // Without the base database the partial rewriting is not executable.
  AnswerRequest extents_only = request;
  Database extents = MaterializeViews(views, base).value();
  extents_only.base = nullptr;
  extents_only.extents = &extents;
  auto rejected = AnswerQuery(extents_only);
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(), StatusCode::kInvalidArgument);
}

TEST(Answering, CachedExtentsSkipMaterialization) {
  Scenario s = MakeWarehouseScenario(7, 50).value();
  Database extents = MaterializeViews(s.views, s.base).value();

  AnswerRequest on_demand = BaseRequest(s.query, s.views, s.base);
  on_demand.route = AnswerRoute::kInverseRules;
  auto from_base = AnswerQuery(on_demand);
  ASSERT_TRUE(from_base.ok());
  EXPECT_GT(from_base.value().stats.materialize.probes, 0u);

  AnswerRequest cached = on_demand;
  cached.extents = &extents;
  auto from_cache = AnswerQuery(cached);
  ASSERT_TRUE(from_cache.ok());
  EXPECT_EQ(from_cache.value().stats.materialize.probes, 0u);
  EXPECT_EQ(from_cache.value().stats.materialize.intermediate_rows, 0u);
  EXPECT_TRUE(Relation::SameSet(from_base.value().result,
                                from_cache.value().result));

  // Extents alone (no base) also serve the view-side routes — the pure
  // LAV regime where the mediator never sees base data.
  AnswerRequest extents_only;
  extents_only.query.disjuncts.push_back(s.query);
  extents_only.views = &s.views;
  extents_only.extents = &extents;
  extents_only.route = AnswerRoute::kCostBased;
  auto lav = AnswerQuery(extents_only);
  ASSERT_TRUE(lav.ok()) << lav.status().ToString();
  EXPECT_TRUE(lav.value().complete);  // only complete plans are executable
  EXPECT_TRUE(
      Relation::SameSet(lav.value().result, from_base.value().result));
}

TEST(Answering, CostRouteReportsPlansAndPicksCheapest) {
  Scenario s = MakeWarehouseScenario(5, 200).value();
  AnswerRequest request = BaseRequest(s.query, s.views, s.base);
  request.route = AnswerRoute::kCostBased;
  auto resp = AnswerQuery(request);
  ASSERT_TRUE(resp.ok()) << resp.status().ToString();
  const AnswerResponse& r = resp.value();
  ASSERT_GE(r.plans.best, 0);
  ASSERT_FALSE(r.plans.plans.empty());
  // The chosen plan is the cheapest of the reported plans.
  for (const PlanChoice& plan : r.plans.plans) {
    EXPECT_GE(plan.estimated_cost,
              r.plans.plans[r.plans.best].estimated_cost);
  }
  // The pre-joined salesfull view beats re-joining the star schema.
  EXPECT_TRUE(r.complete);
  EXPECT_TRUE(r.exact);
  // Every reported plan carries its producing engine.
  bool has_direct = false;
  for (const PlanChoice& plan : r.plans.plans) {
    EXPECT_FALSE(plan.engine.empty());
    has_direct |= plan.engine == "direct";
  }
  EXPECT_TRUE(has_direct);
}

TEST(Answering, UnionSourceSupportedOnExtentRoutesOnly) {
  // Union sources (two rules, one head predicate) materialize correctly,
  // but the rewriting engines and inverse rules soundly refuse them.
  Catalog cat;
  Query q = ParseQuery("q(X) :- p(X).", &cat).value();
  ViewSet views;
  ASSERT_TRUE(views.Add(ParseQuery("u(X) :- p(X).", &cat).value()).ok());
  ASSERT_TRUE(
      views.AddRule(ParseQuery("u(X) :- p2(X).", &cat).value()).ok());
  Database base(&cat);
  base.Add(cat.FindPredicate("p").value(), {1});
  base.Add(cat.FindPredicate("p2").value(), {2});

  AnswerRequest request = BaseRequest(q, views, base);
  Relation direct = Answer(request, AnswerRoute::kDirect);
  EXPECT_EQ(direct.size(), 1u);

  request.route = AnswerRoute::kInverseRules;
  auto ir = AnswerQuery(request);
  ASSERT_FALSE(ir.ok());
  EXPECT_EQ(ir.status().code(), StatusCode::kUnimplemented);

  request.route = AnswerRoute::kCompleteRewriting;
  request.engine = "minicon";
  auto mc = AnswerQuery(request);
  ASSERT_FALSE(mc.ok());
  EXPECT_EQ(mc.status().code(), StatusCode::kUnimplemented);
}

TEST(Answering, RequestValidation) {
  Catalog cat;
  Query q = ParseQuery("q(X) :- p(X).", &cat).value();
  ViewSet views = ViewSet::Parse("v(X) :- p(X).", &cat).value();
  Database base(&cat);

  AnswerRequest empty;
  EXPECT_EQ(AnswerQuery(empty).status().code(), StatusCode::kInvalidArgument);

  AnswerRequest no_data;
  no_data.query.disjuncts.push_back(q);
  no_data.views = &views;
  EXPECT_EQ(AnswerQuery(no_data).status().code(),
            StatusCode::kInvalidArgument);

  AnswerRequest direct_needs_base;
  direct_needs_base.query.disjuncts.push_back(q);
  direct_needs_base.route = AnswerRoute::kDirect;
  EXPECT_EQ(AnswerQuery(direct_needs_base).status().code(),
            StatusCode::kInvalidArgument);

  AnswerRequest bad_engine;
  bad_engine.query.disjuncts.push_back(q);
  bad_engine.views = &views;
  bad_engine.base = &base;
  bad_engine.engine = "nope";
  EXPECT_EQ(AnswerQuery(bad_engine).status().code(), StatusCode::kNotFound);
}

TEST(Answering, ServiceAnswerBatchMatchesSerialPipeline) {
  // The service's answering job kind: identical payloads to serial
  // AnswerQuery calls, for the whole scenario × route × engine grid.
  AnswerScenarioBatch batch =
      MakeAnswerBatchFromScenarios(
          ScenarioNames(), EngineNames(),
          {AnswerRoute::kDirect, AnswerRoute::kCompleteRewriting,
           AnswerRoute::kInverseRules, AnswerRoute::kCostBased},
          /*repeats=*/1, /*seed=*/9, /*db_size=*/40)
          .value();
  ASSERT_EQ(batch.size(),
            ScenarioNames().size() * (3 + EngineNames().size()));

  ServiceOptions options;
  options.num_workers = 4;
  RewriteService service(options);
  auto result = service.AnswerBatch(batch.requests);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result.value().responses.size(), batch.size());
  EXPECT_EQ(result.value().stats.ok, batch.size());
  EXPECT_EQ(result.value().stats.failed, 0u);

  for (size_t i = 0; i < batch.size(); ++i) {
    const AnswerServiceResponse& via_service = result.value().responses[i];
    ASSERT_TRUE(via_service.status.ok())
        << batch.labels[i] << ": " << via_service.status.ToString();
    auto serial = AnswerQuery(batch.requests[i]);
    ASSERT_TRUE(serial.ok()) << batch.labels[i];
    EXPECT_TRUE(Relation::SameSet(serial.value().result,
                                  via_service.response.result))
        << batch.labels[i];
    EXPECT_EQ(serial.value().exact, via_service.response.exact)
        << batch.labels[i];
  }
}

TEST(Answering, MixedJobKindsShareThePool) {
  Scenario s = MakeTravelScenario(13, 40).value();
  ServiceOptions options;
  options.num_workers = 2;
  RewriteService service(options);

  ServiceRequest rewrite;
  rewrite.engine = "minicon";
  rewrite.request.query.disjuncts.push_back(s.query);
  rewrite.request.views = &s.views;
  uint64_t rewrite_ticket = service.Submit(rewrite).value();

  AnswerRequest answer = BaseRequest(s.query, s.views, s.base);
  answer.route = AnswerRoute::kInverseRules;
  uint64_t answer_ticket = service.SubmitAnswer(answer).value();

  auto answer_resp = service.WaitAnswer(answer_ticket);
  ASSERT_TRUE(answer_resp.ok());
  ASSERT_TRUE(answer_resp.value().status.ok());
  auto rewrite_resp = service.Wait(rewrite_ticket);
  ASSERT_TRUE(rewrite_resp.ok());
  ASSERT_TRUE(rewrite_resp.value().status.ok());

  // The two jobs agree: evaluating the minicon union over extents equals
  // the inverse-rules certain answers.
  Database extents = MaterializeViews(s.views, s.base).value();
  Relation via_union =
      EvaluateRewritingUnion(s.query, rewrite_resp.value().response.rewritings,
                             extents)
          .value();
  EXPECT_TRUE(Relation::SameSet(via_union,
                                answer_resp.value().response.result));

  // Lifetime stats count both kinds.
  EXPECT_EQ(service.lifetime_stats().requests, 2u);
}

TEST(Answering, TypedTicketCollection) {
  Scenario s = MakeTravelScenario(13, 30).value();
  RewriteService service(ServiceOptions{});
  AnswerRequest answer = BaseRequest(s.query, s.views, s.base);
  answer.route = AnswerRoute::kDirect;
  uint64_t ticket = service.SubmitAnswer(answer).value();
  // Collecting an answering ticket through the rewrite-side API reports
  // kNotFound (after completion) instead of hanging or mixing payloads.
  auto wrong = service.Wait(ticket);
  ASSERT_FALSE(wrong.ok());
  EXPECT_EQ(wrong.status().code(), StatusCode::kNotFound);
  auto right = service.WaitAnswer(ticket);
  ASSERT_TRUE(right.ok());
  EXPECT_TRUE(right.value().status.ok());
}

}  // namespace
}  // namespace aqv
