#include <gtest/gtest.h>

#include "cq/parser.h"
#include "eval/evaluator.h"
#include "eval/materialize.h"
#include "workload/datagen.h"
#include "workload/generators.h"
#include "workload/scenarios.h"

namespace aqv {
namespace {

TEST(Generators, ChainQueryShape) {
  Catalog cat;
  ChainQuerySpec spec;
  spec.length = 5;
  Query q = MakeChainQuery(&cat, spec).value();
  EXPECT_EQ(q.body().size(), 5u);
  EXPECT_EQ(q.num_vars(), 6);
  EXPECT_EQ(q.head().arity(), 2);
  EXPECT_TRUE(q.Validate().ok());
  // Adjacent subgoals share exactly the middle variable.
  EXPECT_EQ(q.body()[0].args[1], q.body()[1].args[0]);
}

TEST(Generators, ChainQuerySharedPredicate) {
  Catalog cat;
  ChainQuerySpec spec;
  spec.length = 4;
  spec.distinct_predicates = false;
  Query q = MakeChainQuery(&cat, spec).value();
  for (const Atom& a : q.body()) {
    EXPECT_EQ(a.pred, q.body()[0].pred);
  }
}

TEST(Generators, ChainViewsAreSubchains) {
  Catalog cat;
  ChainViewSpec spec;
  spec.chain.length = 6;
  spec.num_views = 20;
  spec.min_length = 2;
  spec.max_length = 3;
  Rng rng(5);
  ViewSet vs = MakeChainViews(&cat, &rng, spec).value();
  ASSERT_EQ(vs.size(), 20);
  for (const View& v : vs.views()) {
    EXPECT_GE(v.definition.body().size(), 2u);
    EXPECT_LE(v.definition.body().size(), 3u);
    EXPECT_TRUE(v.definition.Validate().ok());
  }
}

TEST(Generators, ChainViewPolicies) {
  Catalog cat;
  ChainViewSpec spec;
  spec.chain.length = 5;
  spec.num_views = 8;
  spec.policy = DistinguishedPolicy::kEnds;
  Rng rng(6);
  ViewSet ends = MakeChainViews(&cat, &rng, spec).value();
  for (const View& v : ends.views()) {
    EXPECT_EQ(v.definition.head().arity(), 2);
  }
  spec.policy = DistinguishedPolicy::kAll;
  spec.view_prefix = "w";
  ViewSet all = MakeChainViews(&cat, &rng, spec).value();
  for (const View& v : all.views()) {
    EXPECT_EQ(v.definition.head().arity(),
              static_cast<int>(v.definition.body().size()) + 1);
  }
}

TEST(Generators, StarQueryShape) {
  Catalog cat;
  StarQuerySpec spec;
  spec.rays = 4;
  Query q = MakeStarQuery(&cat, spec).value();
  EXPECT_EQ(q.body().size(), 4u);
  EXPECT_EQ(q.num_vars(), 5);
  // All subgoals share the center variable.
  for (const Atom& a : q.body()) {
    EXPECT_EQ(a.args[0], q.body()[0].args[0]);
  }
}

TEST(Generators, StarViews) {
  Catalog cat;
  StarViewSpec spec;
  spec.star.rays = 5;
  spec.num_views = 12;
  spec.min_rays = 1;
  spec.max_rays = 2;
  Rng rng(7);
  ViewSet vs = MakeStarViews(&cat, &rng, spec).value();
  ASSERT_EQ(vs.size(), 12);
  for (const View& v : vs.views()) {
    EXPECT_LE(v.definition.body().size(), 2u);
  }
}

TEST(Generators, CompleteQueryShape) {
  Catalog cat;
  CompleteQuerySpec spec;
  spec.nodes = 4;
  Query q = MakeCompleteQuery(&cat, spec).value();
  EXPECT_EQ(q.body().size(), 6u);  // C(4,2)
  EXPECT_EQ(q.num_vars(), 4);
  EXPECT_EQ(q.head().arity(), 4);
}

TEST(Generators, CompleteViews) {
  Catalog cat;
  CompleteViewSpec spec;
  spec.complete.nodes = 4;
  spec.num_views = 10;
  Rng rng(8);
  ViewSet vs = MakeCompleteViews(&cat, &rng, spec).value();
  EXPECT_EQ(vs.size(), 10);
  for (const View& v : vs.views()) {
    EXPECT_TRUE(v.definition.Validate().ok());
  }
}

TEST(Generators, RandomQueriesAreValid) {
  Catalog cat;
  Rng rng(9);
  RandomQuerySpec spec;
  spec.num_subgoals = 5;
  spec.num_vars = 4;
  spec.constant_prob = 0.2;
  for (int i = 0; i < 50; ++i) {
    RandomQuerySpec s = spec;
    s.head_name = "q" + std::to_string(i);
    Query q = MakeRandomQuery(&cat, &rng, s).value();
    EXPECT_TRUE(q.Validate().ok()) << q.ToString();
    EXPECT_EQ(q.body().size(), 5u);
  }
}

TEST(Generators, RandomViewsDistinctNames) {
  Catalog cat;
  Rng rng(10);
  RandomQuerySpec spec;
  ViewSet vs = MakeRandomViews(&cat, &rng, spec, 7, "rv").value();
  EXPECT_EQ(vs.size(), 7);
}

TEST(DataGen, RandomDatabaseRespectsSpec) {
  Catalog cat;
  PredId r = cat.GetOrAddPredicate("r", 2).value();
  PredId s = cat.GetOrAddPredicate("s", 3).value();
  Rng rng(11);
  DataGenSpec spec;
  spec.tuples_per_relation = 100;
  spec.domain_size = 10;
  Database db = MakeRandomDatabase(&cat, {r, s}, &rng, spec);
  const Relation* rr = db.Find(r);
  ASSERT_NE(rr, nullptr);
  EXPECT_LE(rr->size(), 100u);  // dedup may shrink
  EXPECT_GT(rr->size(), 50u);
  for (size_t i = 0; i < rr->size(); ++i) {
    EXPECT_GE(rr->at(i, 0), 0);
    EXPECT_LT(rr->at(i, 0), 10);
  }
  EXPECT_EQ(db.Find(s)->arity(), 3);
}

TEST(DataGen, ExtensionalPredicateListing) {
  Catalog cat;
  cat.GetOrAddPredicate("r", 2).value();
  cat.GetOrAddPredicate("q", 1, PredKind::kIntensional).value();
  std::vector<PredId> ext = ExtensionalPredicates(cat);
  EXPECT_EQ(ext.size(), 1u);
}

class ScenarioTest : public ::testing::TestWithParam<int> {};

TEST(Scenarios, TravelScenarioIsCoherent) {
  auto s = MakeTravelScenario(42, 200);
  ASSERT_TRUE(s.ok()) << s.status().ToString();
  EXPECT_TRUE(s->query.Validate().ok());
  EXPECT_EQ(s->views.size(), 5);
  EXPECT_GT(s->base.TotalTuples(), 100u);
  // Views materialize and the query has answers over the base.
  Database extents = MaterializeViews(s->views, s->base).value();
  EXPECT_GT(extents.TotalTuples(), 0u);
  Relation direct = EvaluateQuery(s->query, s->base).value();
  EXPECT_GT(direct.size(), 0u);
}

TEST(Scenarios, WarehouseScenarioHasEquivalentRewritingMaterial) {
  auto s = MakeWarehouseScenario(43, 300);
  ASSERT_TRUE(s.ok()) << s.status().ToString();
  EXPECT_EQ(s->views.size(), 4);
  Relation direct = EvaluateQuery(s->query, s->base).value();
  EXPECT_GT(direct.size(), 0u);
}

TEST(Scenarios, BibliographyScenario) {
  auto s = MakeBibliographyScenario(44, 150);
  ASSERT_TRUE(s.ok()) << s.status().ToString();
  EXPECT_TRUE(s->query.Validate().ok());
  Database extents = MaterializeViews(s->views, s->base).value();
  EXPECT_GT(extents.TotalTuples(), 0u);
}

TEST(Scenarios, DeterministicForSeed) {
  auto a = MakeTravelScenario(7, 100);
  auto b = MakeTravelScenario(7, 100);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->base.TotalTuples(), b->base.TotalTuples());
}

}  // namespace
}  // namespace aqv
