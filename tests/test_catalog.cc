#include <gtest/gtest.h>

#include "cq/atom.h"
#include "cq/catalog.h"
#include "cq/term.h"

namespace aqv {
namespace {

TEST(Term, FactoriesAndAccessors) {
  Term v = Term::Var(3);
  Term c = Term::Const(5);
  EXPECT_TRUE(v.is_var());
  EXPECT_FALSE(v.is_const());
  EXPECT_EQ(v.var(), 3);
  EXPECT_TRUE(c.is_const());
  EXPECT_EQ(c.constant(), 5);
}

TEST(Term, EqualityDistinguishesKinds) {
  EXPECT_EQ(Term::Var(1), Term::Var(1));
  EXPECT_NE(Term::Var(1), Term::Var(2));
  EXPECT_NE(Term::Var(1), Term::Const(1));
  EXPECT_EQ(Term::Const(0), Term::Const(0));
}

TEST(Term, OrderingIsTotal) {
  EXPECT_LT(Term::Var(0), Term::Var(1));
  EXPECT_LT(Term::Var(5), Term::Const(0));  // kind-major order
}

TEST(Term, PackRoundTripsDistinctly) {
  EXPECT_NE(Term::Var(7).Pack(), Term::Const(7).Pack());
  EXPECT_NE(TermHash()(Term::Var(7)), TermHash()(Term::Const(7)));
}

TEST(Catalog, RegistersPredicatesWithArity) {
  Catalog cat;
  auto r = cat.GetOrAddPredicate("edge", 2);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(cat.pred(r.value()).name, "edge");
  EXPECT_EQ(cat.pred(r.value()).arity, 2);
  EXPECT_EQ(cat.pred(r.value()).kind, PredKind::kExtensional);
}

TEST(Catalog, RejectsArityMismatch) {
  Catalog cat;
  ASSERT_TRUE(cat.GetOrAddPredicate("edge", 2).ok());
  auto bad = cat.GetOrAddPredicate("edge", 3);
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kInvalidArgument);
}

TEST(Catalog, IdempotentRegistration) {
  Catalog cat;
  PredId a = cat.GetOrAddPredicate("r", 2).value();
  PredId b = cat.GetOrAddPredicate("r", 2).value();
  EXPECT_EQ(a, b);
  EXPECT_EQ(cat.num_predicates(), 1);
}

TEST(Catalog, IntensionalUpgradeSticks) {
  Catalog cat;
  PredId p = cat.GetOrAddPredicate("v", 1).value();
  EXPECT_EQ(cat.pred(p).kind, PredKind::kExtensional);
  ASSERT_TRUE(cat.GetOrAddPredicate("v", 1, PredKind::kIntensional).ok());
  EXPECT_EQ(cat.pred(p).kind, PredKind::kIntensional);
  // Re-registering extensionally does not downgrade.
  ASSERT_TRUE(cat.GetOrAddPredicate("v", 1).ok());
  EXPECT_EQ(cat.pred(p).kind, PredKind::kIntensional);
}

TEST(Catalog, FindPredicate) {
  Catalog cat;
  EXPECT_EQ(cat.FindPredicate("ghost").status().code(), StatusCode::kNotFound);
  PredId p = cat.GetOrAddPredicate("r", 1).value();
  EXPECT_EQ(cat.FindPredicate("r").value(), p);
}

TEST(Catalog, NumericConstantsParseValues) {
  Catalog cat;
  ConstId c = cat.InternConstant("42");
  ASSERT_TRUE(cat.constant(c).numeric.has_value());
  EXPECT_EQ(*cat.constant(c).numeric, 42);
  ConstId neg = cat.InternConstant("-17");
  EXPECT_EQ(*cat.constant(neg).numeric, -17);
}

TEST(Catalog, SymbolicConstantsHaveNoValue) {
  Catalog cat;
  ConstId c = cat.InternConstant("alice");
  EXPECT_FALSE(cat.constant(c).numeric.has_value());
  EXPECT_EQ(cat.constant(c).name, "alice");
}

TEST(Catalog, ConstantInterningIsIdempotent) {
  Catalog cat;
  EXPECT_EQ(cat.InternConstant("x"), cat.InternConstant("x"));
  EXPECT_EQ(cat.InternNumericConstant(7), cat.InternConstant("7"));
}

TEST(Catalog, FreshConstantsNeverCollide) {
  Catalog cat;
  ConstId a = cat.FreshConstant("t");
  ConstId b = cat.FreshConstant("t");
  EXPECT_NE(a, b);
  EXPECT_NE(cat.constant(a).name, cat.constant(b).name);
}

TEST(Atom, ToStringRendersNamesAndConstants) {
  Catalog cat;
  PredId p = cat.GetOrAddPredicate("edge", 2).value();
  ConstId c = cat.InternConstant("7");
  Atom a(p, {Term::Var(0), Term::Const(c)});
  std::vector<std::string> names{"X"};
  EXPECT_EQ(a.ToString(cat, names), "edge(X, 7)");
}

TEST(Atom, ToStringFallsBackForUnnamedVars) {
  Catalog cat;
  PredId p = cat.GetOrAddPredicate("r", 1).value();
  Atom a(p, {Term::Var(4)});
  EXPECT_EQ(a.ToString(cat, {}), "r(V4)");
}

TEST(Atom, HashDiffersOnArgs) {
  Catalog cat;
  PredId p = cat.GetOrAddPredicate("r", 2).value();
  Atom a(p, {Term::Var(0), Term::Var(1)});
  Atom b(p, {Term::Var(1), Term::Var(0)});
  EXPECT_NE(a, b);
  EXPECT_NE(AtomHash()(a), AtomHash()(b));
}

}  // namespace
}  // namespace aqv
