/// Property tests for the cached-index evaluator: across randomized
/// generated scenarios, evaluation with persistent cached hash indexes
/// must produce bit-identical relations, identical intermediate-row
/// counts, and identical probe counts to the cold per-query-index
/// baseline; the intermediate_row_cap must fire at exactly the same row
/// counts either way.

#include <gtest/gtest.h>

#include <vector>

#include "cq/parser.h"
#include "eval/evaluator.h"
#include "eval/materialize.h"
#include "workload/generator.h"
#include "workload/scenarios.h"

namespace aqv {
namespace {

EvalOptions HotOptions() {
  EvalOptions o;
  o.use_cached_indexes = true;
  return o;
}

EvalOptions ColdOptions() {
  EvalOptions o;
  o.use_cached_indexes = false;
  return o;
}

/// Bit-identical comparison: same rows in the same order (SameSet would
/// hide ordering divergence, which the determinism invariant forbids).
void ExpectBitIdentical(const Relation& a, const Relation& b,
                        const std::string& what) {
  ASSERT_EQ(a.arity(), b.arity()) << what;
  ASSERT_EQ(a.size(), b.size()) << what;
  EXPECT_EQ(a.Rows(), b.Rows()) << what;
}

TEST(EvalProperties, CachedVsColdBitIdenticalAcrossGeneratedScenarios) {
  // >= 20 pinned seeds over varied generator knobs. Each scenario is
  // checked on two surfaces: the query over the hidden base, and full
  // view materialization (which exercises index reuse across view
  // definitions sharing base relations).
  for (uint64_t seed = 1; seed <= 24; ++seed) {
    GeneratedScenarioSpec spec;
    spec.seed = seed;
    spec.num_predicates = 4 + static_cast<int>(seed % 5);
    spec.query_atoms = 2 + static_cast<int>(seed % 3);
    spec.num_views = 8 + static_cast<int>(seed % 7);
    spec.min_view_atoms = 1;
    spec.max_view_atoms = 3;
    spec.redundancy = (seed % 4) * 0.1;
    spec.noise_view_fraction = (seed % 3) * 0.1;
    spec.facts_per_predicate = 20 + static_cast<int>(seed % 13) * 5;
    spec.domain_size = 10 + static_cast<int>(seed % 17);
    spec.zipf_skew = (seed % 2) ? 0.9 : 0.0;
    SCOPED_TRACE("seed=" + std::to_string(seed));
    auto scenario = GenerateScenario(spec);
    ASSERT_TRUE(scenario.ok()) << scenario.status().ToString();
    const Scenario& s = scenario.value();

    EvalStats hot_stats;
    EvalStats cold_stats;
    auto hot = EvaluateQuery(s.query, s.base, HotOptions(), &hot_stats);
    auto cold = EvaluateQuery(s.query, s.base, ColdOptions(), &cold_stats);
    ASSERT_TRUE(hot.ok()) << hot.status().ToString();
    ASSERT_TRUE(cold.ok()) << cold.status().ToString();
    ExpectBitIdentical(hot.value(), cold.value(), "query over base");
    EXPECT_EQ(hot_stats.intermediate_rows, cold_stats.intermediate_rows);
    EXPECT_EQ(hot_stats.probes, cold_stats.probes);
    EXPECT_EQ(cold_stats.index_hits, 0u);

    // Re-evaluating with the caches warm must change nothing but the
    // hit/build counters.
    EvalStats warm_stats;
    auto warm = EvaluateQuery(s.query, s.base, HotOptions(), &warm_stats);
    ASSERT_TRUE(warm.ok());
    ExpectBitIdentical(hot.value(), warm.value(), "warm re-evaluation");
    EXPECT_EQ(warm_stats.intermediate_rows, hot_stats.intermediate_rows);
    EXPECT_EQ(warm_stats.index_builds, 0u);

    auto hot_extents = MaterializeViews(s.views, s.base, HotOptions());
    auto cold_extents = MaterializeViews(s.views, s.base, ColdOptions());
    ASSERT_TRUE(hot_extents.ok()) << hot_extents.status().ToString();
    ASSERT_TRUE(cold_extents.ok()) << cold_extents.status().ToString();
    std::vector<PredId> hot_preds = hot_extents.value().Predicates();
    ASSERT_EQ(hot_preds, cold_extents.value().Predicates());
    for (PredId p : hot_preds) {
      ExpectBitIdentical(*hot_extents.value().Find(p),
                         *cold_extents.value().Find(p),
                         "extent of pred " + std::to_string(p));
    }
  }
}

TEST(EvalProperties, RowCapFiresAtSameCountsWithIndexesOn) {
  // A cross-product-heavy query with a known intermediate-row footprint:
  // the cap must fire at exactly the same counts in both modes.
  Catalog cat;
  Query q = ParseQuery("q(X, Y) :- r(X, A), s(Y, B).", &cat).value();
  Database db(&cat);
  PredId r = cat.FindPredicate("r").value();
  PredId s = cat.FindPredicate("s").value();
  for (int i = 0; i < 30; ++i) {
    db.Add(r, {i, i % 5});
    db.Add(s, {i, i % 7});
  }
  db.DedupAll();

  EvalStats reference;
  ASSERT_TRUE(EvaluateQuery(q, db, HotOptions(), &reference).ok());
  ASSERT_GT(reference.intermediate_rows, 0u);

  for (bool cached : {true, false}) {
    SCOPED_TRACE(cached ? "cached" : "cold");
    EvalOptions at_cap = cached ? HotOptions() : ColdOptions();
    at_cap.intermediate_row_cap = reference.intermediate_rows;
    EvalStats at_cap_stats;
    EXPECT_TRUE(EvaluateQuery(q, db, at_cap, &at_cap_stats).ok());
    EXPECT_EQ(at_cap_stats.intermediate_rows, reference.intermediate_rows);

    EvalOptions below_cap = at_cap;
    below_cap.intermediate_row_cap = reference.intermediate_rows - 1;
    auto overrun = EvaluateQuery(q, db, below_cap);
    ASSERT_FALSE(overrun.ok());
    EXPECT_EQ(overrun.status().code(), StatusCode::kResourceExhausted);
  }
}

TEST(EvalProperties, UnionDisjunctsShareCachedIndexes) {
  // Two disjuncts joining the same relation on the same key columns: the
  // first builds the index, the second must hit it.
  Catalog cat;
  Query d1 = ParseQuery("q(X, Z) :- a(X, Y), b(Y, Z).", &cat).value();
  Query d2 = ParseQuery("q(X, Z) :- c(X, Y), b(Y, Z).", &cat).value();
  Database db(&cat);
  PredId a = cat.FindPredicate("a").value();
  PredId b = cat.FindPredicate("b").value();
  PredId c = cat.FindPredicate("c").value();
  for (int i = 0; i < 40; ++i) {
    db.Add(a, {i, i % 10});
    db.Add(b, {i % 10, i});
    db.Add(c, {i + 100, i % 10});
  }
  db.DedupAll();
  UnionQuery u;
  u.disjuncts = {d1, d2};

  EvalStats stats;
  auto hot = EvaluateUnion(u, db, HotOptions(), &stats);
  ASSERT_TRUE(hot.ok()) << hot.status().ToString();
  // b's index on its probe columns is built by the first disjunct and
  // reused by the second.
  EXPECT_GE(stats.index_hits, 1u) << "no index sharing across disjuncts";

  // And the shared-index union still matches the cold baseline
  // bit-for-bit.
  EvalStats cold_stats;
  auto cold = EvaluateUnion(u, db, ColdOptions(), &cold_stats);
  ASSERT_TRUE(cold.ok());
  EXPECT_EQ(hot.value().Rows(), cold.value().Rows());
  EXPECT_EQ(stats.intermediate_rows, cold_stats.intermediate_rows);
  EXPECT_EQ(cold_stats.index_hits, 0u);
}

TEST(EvalProperties, RepeatedAnswersReuseIndexesOnStaticData) {
  // The repeated-`answer` regime the cache exists for: on an unchanged
  // database, every evaluation after the first is all hits, no builds.
  Scenario s = MakeWarehouseScenario(11, 500).value();
  EvalStats first;
  ASSERT_TRUE(EvaluateQuery(s.query, s.base, HotOptions(), &first).ok());
  EXPECT_GT(first.index_builds, 0u);
  for (int repeat = 0; repeat < 3; ++repeat) {
    EvalStats again;
    ASSERT_TRUE(EvaluateQuery(s.query, s.base, HotOptions(), &again).ok());
    EXPECT_EQ(again.index_builds, 0u);
    EXPECT_GT(again.index_hits, 0u);
    EXPECT_EQ(again.intermediate_rows, first.intermediate_rows);
  }

  // Mutation invalidates: adding a fact forces a rebuild on next touch.
  PredId sale = s.catalog->FindPredicate("sale").value();
  s.base.Add(sale, {1, 1});
  EvalStats after_mutation;
  ASSERT_TRUE(
      EvaluateQuery(s.query, s.base, HotOptions(), &after_mutation).ok());
  EXPECT_GT(after_mutation.index_builds, 0u);
}

}  // namespace
}  // namespace aqv
