#include <gtest/gtest.h>

#include "containment/containment.h"
#include "cq/parser.h"
#include "rewriting/bucket.h"
#include "views/expansion.h"

namespace aqv {
namespace {

class BucketTest : public ::testing::Test {
 protected:
  Catalog cat_;
  Query Parse(const std::string& s) { return ParseQuery(s, &cat_).value(); }

  ViewSet Views(const std::string& text) {
    auto r = ViewSet::Parse(text, &cat_);
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    return std::move(r).value();
  }

  BucketResult Run(const Query& q, const ViewSet& vs,
                   BucketOptions opts = {}) {
    auto r = BucketRewrite(q, vs, opts);
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    return std::move(r).value();
  }

  // Soundness: every emitted rewriting's expansion is contained in q.
  void CheckSound(const Query& q, const ViewSet& vs,
                  const UnionQuery& rewritings) {
    for (const Query& rw : rewritings.disjuncts) {
      auto e = ExpandRewriting(rw, vs);
      ASSERT_TRUE(e.ok());
      ASSERT_TRUE(e.value().satisfiable);
      auto sub = IsContainedIn(e.value().query, q);
      ASSERT_TRUE(sub.ok());
      EXPECT_TRUE(sub.value()) << rw.ToString();
    }
  }
};

TEST_F(BucketTest, SingleViewFillsBucket) {
  Query q = Parse("q(X) :- r(X, Y).");
  ViewSet vs = Views("v(A, B) :- r(A, B).");
  BucketResult res = Run(q, vs);
  ASSERT_EQ(res.buckets.size(), 1u);
  EXPECT_EQ(res.buckets[0].size(), 1u);
  ASSERT_EQ(res.rewritings.size(), 1);
  CheckSound(q, vs, res.rewritings);
}

TEST_F(BucketTest, EmptyBucketMeansNoRewriting) {
  Query q = Parse("q(X) :- r(X, Y), u(Y).");
  ViewSet vs = Views("v(A, B) :- r(A, B).");
  BucketResult res = Run(q, vs);
  EXPECT_TRUE(res.rewritings.empty());
  EXPECT_TRUE(res.buckets[1].empty());
}

TEST_F(BucketTest, DistinguishedVarMustBeExposed) {
  Query q = Parse("q(X, Y) :- r(X, Y).");
  ViewSet vs = Views("v(A) :- r(A, B).");  // hides column 2
  BucketResult res = Run(q, vs);
  EXPECT_TRUE(res.buckets[0].empty());
  EXPECT_TRUE(res.rewritings.empty());
}

TEST_F(BucketTest, ContainmentCheckFiltersBrokenJoins) {
  // Both buckets non-empty, but the join variable is hidden, so every
  // combination fails the containment check.
  Query q = Parse("q(X, Z) :- e(X, Y), f(Y, Z).");
  ViewSet vs = Views("v(A) :- e(A, B).\nw(C) :- f(B, C).");
  BucketResult res = Run(q, vs);
  EXPECT_FALSE(res.buckets[0].empty());
  EXPECT_FALSE(res.buckets[1].empty());
  EXPECT_TRUE(res.rewritings.empty());
  EXPECT_GT(res.combinations_enumerated, 0u);
}

TEST_F(BucketTest, JoinSurvivesWhenExposed) {
  Query q = Parse("q(X, Z) :- e(X, Y), f(Y, Z).");
  ViewSet vs = Views("v(A, B) :- e(A, B).\nw(B, C) :- f(B, C).");
  BucketResult res = Run(q, vs);
  ASSERT_EQ(res.rewritings.size(), 1);
  CheckSound(q, vs, res.rewritings);
  // And it is in fact equivalent here.
  auto e = ExpandRewriting(res.rewritings.disjuncts[0], vs);
  EXPECT_TRUE(AreEquivalent(e.value().query, q).value());
}

TEST_F(BucketTest, ContainedButNotEquivalentKept) {
  // The view is narrower than the query; bucket keeps it as a contained
  // rewriting (certain-answer semantics), but not under require_equivalent.
  Query q = Parse("q(X) :- e(X, Y).");
  ViewSet vs = Views("v(A, B) :- e(A, B), t(B).");
  BucketResult res = Run(q, vs);
  ASSERT_EQ(res.rewritings.size(), 1);
  CheckSound(q, vs, res.rewritings);

  BucketOptions strict;
  strict.require_equivalent = true;
  BucketResult res2 = Run(q, vs, strict);
  EXPECT_TRUE(res2.rewritings.empty());
}

TEST_F(BucketTest, MultipleViewsSameSubgoalMakeUnion) {
  Query q = Parse("q(X) :- e(X, Y).");
  ViewSet vs = Views(
      "v1(A, B) :- e(A, B), t(B).\n"
      "v2(A, B) :- e(A, B), u(B).");
  BucketResult res = Run(q, vs);
  EXPECT_EQ(res.buckets[0].size(), 2u);
  EXPECT_EQ(res.rewritings.size(), 2);
  CheckSound(q, vs, res.rewritings);
}

TEST_F(BucketTest, SelfJoinViewInducesEquality) {
  Query q = Parse("q(X, Y) :- r(X, Y).");
  ViewSet vs = Views("v(A) :- r(A, A).");
  BucketResult res = Run(q, vs);
  ASSERT_EQ(res.rewritings.size(), 1);
  const Query& rw = res.rewritings.disjuncts[0];
  // X and Y collapse in the rewriting head.
  EXPECT_EQ(rw.head().args[0], rw.head().args[1]);
  CheckSound(q, vs, res.rewritings);
}

TEST_F(BucketTest, ConstantInQuerySubgoal) {
  Query q = Parse("q(X) :- r(X, 3).");
  ViewSet vs = Views("v(A, B) :- r(A, B).");
  BucketResult res = Run(q, vs);
  ASSERT_EQ(res.rewritings.size(), 1);
  // The rewriting must call v(X, 3).
  const Query& rw = res.rewritings.disjuncts[0];
  ASSERT_EQ(rw.body().size(), 1u);
  EXPECT_TRUE(rw.body()[0].args[1].is_const());
  CheckSound(q, vs, res.rewritings);
}

TEST_F(BucketTest, ViewConstantRestrictsCandidate) {
  Query q = Parse("q(X) :- r(X, Y).");
  ViewSet vs = Views("v(A) :- r(A, 3).");
  BucketResult res = Run(q, vs);
  // Usable: v(X) covers r(X,Y) with Y := 3 (contained, not equivalent).
  ASSERT_EQ(res.rewritings.size(), 1);
  CheckSound(q, vs, res.rewritings);
}

TEST_F(BucketTest, CombinationCapSurfaces) {
  Query q = Parse("q(X) :- e(X, Y), f(Y, Z).");
  ViewSet vs = Views(
      "v1(A, B) :- e(A, B).\nv2(A, B) :- e(A, B), t(B).\n"
      "w1(B, C) :- f(B, C).\nw2(B, C) :- f(B, C), u(C).");
  BucketOptions opts;
  opts.max_combinations = 1;
  auto r = BucketRewrite(q, vs, opts);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kResourceExhausted);
}

TEST_F(BucketTest, PruneSubsumedTightensUnion) {
  Query q = Parse("q(X) :- e(X, Y).");
  ViewSet vs = Views(
      "v1(A, B) :- e(A, B).\n"
      "v2(A, B) :- e(A, B), t(B).");
  BucketOptions opts;
  opts.prune_subsumed = true;
  BucketResult res = Run(q, vs, opts);
  // v2's rewriting is subsumed by v1's.
  ASSERT_EQ(res.rewritings.size(), 1);
  EXPECT_NE(res.rewritings.disjuncts[0].ToString().find("v1"),
            std::string::npos);
}

TEST_F(BucketTest, EnrichmentRecoversJoinPredicateRewritings) {
  // Regression for the classic Bucket incompleteness: the subchain views
  // expose the join variable, but each bucket entry introduces a fresh
  // variable for the other endpoint, so no plain combination is contained
  // in q. The validation step's join-predicate enrichment (probe
  // homomorphisms into q) must recover the rewriting MiniCon finds
  // directly. (Found by the MiniConEqualsBucketAsUnions property sweep.)
  Query q = Parse("q(X0, X3) :- r1(X0, X1), r2(X1, X2), r3(X2, X3).");
  ViewSet vs = Views(
      "v1(Y0, Y2) :- r1(Y0, Y1), r2(Y1, Y2).\n"
      "v5(Y2, Y3) :- r3(Y2, Y3).");
  BucketResult res = Run(q, vs);
  ASSERT_FALSE(res.rewritings.empty());
  CheckSound(q, vs, res.rewritings);
  // Some disjunct must be fully equivalent to q.
  bool found_equivalent = false;
  for (const Query& rw : res.rewritings.disjuncts) {
    auto e = ExpandRewriting(rw, vs);
    ASSERT_TRUE(e.ok());
    if (AreEquivalent(e.value().query, q).value()) found_equivalent = true;
  }
  EXPECT_TRUE(found_equivalent);
}

TEST_F(BucketTest, EnrichmentCapZeroDisablesIt) {
  Query q = Parse("q(X0, X3) :- s1(X0, X1), s2(X1, X2), s3(X2, X3).");
  ViewSet vs = Views(
      "w1(Y0, Y2) :- s1(Y0, Y1), s2(Y1, Y2).\n"
      "w5(Y2, Y3) :- s3(Y2, Y3).");
  BucketOptions opts;
  opts.max_enrichments_per_combination = 0;
  BucketResult res = Run(q, vs, opts);
  // Without enrichment the classic algorithm finds nothing here.
  EXPECT_TRUE(res.rewritings.empty());
}

TEST_F(BucketTest, ComparisonQuerySoundness) {
  Query q = Parse("q(X) :- r(X, Y), X < 3.");
  ViewSet vs = Views("v(A, B) :- r(A, B).");
  BucketResult res = Run(q, vs);
  ASSERT_EQ(res.rewritings.size(), 1);
  // The rewriting carries the comparison along.
  EXPECT_EQ(res.rewritings.disjuncts[0].comparisons().size(), 1u);
  CheckSound(q, vs, res.rewritings);
}

}  // namespace
}  // namespace aqv
