// Unit tests of the storage engine's layers below the session: filesystem
// primitives and the directory lock (storage/fs.h), the segment file
// format and its two load backends (storage/segment.h, eval/mmap_store.h),
// the manifest/journal text formats (storage/manifest.h), and the
// SessionStore snapshot/recover/append cycle (storage/store.h). The
// crash-injection sweeps live in test_storage_recovery.cc; the
// session-level round trips in test_storage_persistence.cc.

#include <unistd.h>

#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "cq/catalog.h"
#include "eval/database.h"
#include "eval/mmap_store.h"
#include "eval/relation.h"
#include "eval/value.h"
#include "gtest/gtest.h"
#include "storage/fs.h"
#include "storage/manifest.h"
#include "storage/segment.h"
#include "storage/store.h"

namespace aqv {
namespace {

/// A unique scratch directory under the test's cwd, removed on teardown.
class ScratchDir {
 public:
  explicit ScratchDir(const std::string& tag) {
    char buf[256];
    std::snprintf(buf, sizeof(buf), "storage_%s_%d", tag.c_str(),
                  static_cast<int>(::getpid()));
    path_ = buf;
    Wipe();
    EXPECT_TRUE(EnsureDir(path_).ok());
  }
  ~ScratchDir() { Wipe(); }

  const std::string& path() const { return path_; }
  std::string file(const std::string& name) const { return path_ + "/" + name; }

 private:
  void Wipe() {
    auto names = ListDir(path_);
    if (names.ok()) {
      for (const std::string& name : *names) {
        Status removed = RemoveFile(path_ + "/" + name);
        (void)removed;
      }
    }
    ::rmdir(path_.c_str());
  }
  std::string path_;
};

TEST(Crc32Test, MatchesKnownVectors) {
  // The IEEE/zlib check value for "123456789".
  EXPECT_EQ(Crc32("123456789", 9), 0xCBF43926u);
  EXPECT_EQ(Crc32("", 0), 0u);
  // Seedable incremental use equals one-shot.
  uint32_t first = Crc32("12345", 5);
  EXPECT_EQ(Crc32("6789", 4, first), 0xCBF43926u);
}

TEST(FsTest, DurableWriteReadRoundTrip) {
  ScratchDir dir("fs");
  std::string path = dir.file("blob");
  ASSERT_TRUE(WriteFileDurable(path, "hello\nworld", /*sync=*/true).ok());
  auto read = ReadFile(path);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(*read, "hello\nworld");
  auto size = FileSize(path);
  ASSERT_TRUE(size.ok());
  EXPECT_EQ(*size, 11u);
  ASSERT_TRUE(TruncateFile(path, 5).ok());
  EXPECT_EQ(*ReadFile(path), "hello");
}

TEST(FsTest, ReplaceFileAtomicLeavesNoTmp) {
  ScratchDir dir("replace");
  std::string path = dir.file("target");
  ASSERT_TRUE(ReplaceFileAtomic(path, "v1", /*sync=*/true).ok());
  ASSERT_TRUE(ReplaceFileAtomic(path, "v2", /*sync=*/true).ok());
  EXPECT_EQ(*ReadFile(path), "v2");
  EXPECT_FALSE(FileExists(path + ".tmp"));
}

TEST(FsTest, DirLockExcludesASecondAttachEvenInProcess) {
  ScratchDir dir("lock");
  auto first = DirLock::Acquire(dir.path());
  ASSERT_TRUE(first.ok());
  auto second = DirLock::Acquire(dir.path());
  ASSERT_FALSE(second.ok());
  EXPECT_EQ(second.status().code(), StatusCode::kResourceExhausted);
  first->Release();
  auto third = DirLock::Acquire(dir.path());
  EXPECT_TRUE(third.ok());
}

TEST(FsTest, AppendFileAccumulates) {
  ScratchDir dir("append");
  std::string path = dir.file("log");
  {
    auto log = AppendFile::Open(path);
    ASSERT_TRUE(log.ok());
    ASSERT_TRUE(log->Append("a\n", /*sync=*/true).ok());
    ASSERT_TRUE(log->Append("b\n", /*sync=*/true).ok());
  }
  // Re-opening appends after the existing content.
  auto log = AppendFile::Open(path);
  ASSERT_TRUE(log.ok());
  ASSERT_TRUE(log->Append("c\n", /*sync=*/false).ok());
  EXPECT_EQ(*ReadFile(path), "a\nb\nc\n");
}

/// A small two-column relation with distinctive values.
Relation TestRelation(PredId pred, size_t rows) {
  Relation rel(pred, 2);
  for (size_t i = 0; i < rows; ++i) {
    rel.Add({static_cast<Value>(i), static_cast<Value>(i * 10 + 1)});
  }
  rel.SortDedup();
  return rel;
}

TEST(SegmentTest, EncodeLoadRoundTripBothBackends) {
  ScratchDir dir("segment");
  Relation rel = TestRelation(PredId{0}, 37);
  std::string bytes = EncodeSegment(rel);
  EXPECT_EQ(bytes.size(), kSegmentHeaderSize + 37 * 2 * sizeof(Value));
  std::string path = dir.file("r.seg");
  ASSERT_TRUE(WriteFileDurable(path, bytes, /*sync=*/false).ok());

  auto info = ParseSegmentHeader(
      reinterpret_cast<const uint8_t*>(bytes.data()), bytes.size(),
      /*verify_checksum=*/true);
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info->arity, 2);
  EXPECT_EQ(info->rows, 37u);
  EXPECT_TRUE(info->sorted);

  for (bool use_mmap : {false, true}) {
    auto loaded = LoadSegment(path, PredId{0}, info->data_crc, use_mmap,
                              /*verify_checksum=*/true);
    ASSERT_TRUE(loaded.ok()) << (use_mmap ? "mmap" : "columnar");
    EXPECT_STREQ(loaded->StorageBackend(), use_mmap ? "mmap" : "columnar");
    EXPECT_TRUE(loaded->sorted());
    ASSERT_EQ(loaded->size(), rel.size());
    for (size_t i = 0; i < rel.size(); ++i) {
      EXPECT_EQ(loaded->at(i, 0), rel.at(i, 0));
      EXPECT_EQ(loaded->at(i, 1), rel.at(i, 1));
    }
  }
}

TEST(SegmentTest, RejectsTornAndForeignFiles) {
  ScratchDir dir("torn");
  Relation rel = TestRelation(PredId{0}, 8);
  std::string bytes = EncodeSegment(rel);
  auto header = [&](const std::string& data, bool verify) {
    return ParseSegmentHeader(reinterpret_cast<const uint8_t*>(data.data()),
                              data.size(), verify);
  };
  // Truncated mid-data: geometry check fails even without checksums.
  EXPECT_EQ(header(bytes.substr(0, bytes.size() - 3), false).status().code(),
            StatusCode::kParseError);
  // Shorter than a header.
  EXPECT_EQ(header(bytes.substr(0, 10), false).status().code(),
            StatusCode::kParseError);
  // Wrong magic.
  std::string foreign = bytes;
  foreign[0] = 'X';
  EXPECT_EQ(header(foreign, false).status().code(), StatusCode::kParseError);
  // Flipped data byte: only the checksum pass notices.
  std::string corrupt = bytes;
  corrupt[kSegmentHeaderSize + 4] ^= 0x01;
  EXPECT_TRUE(header(corrupt, false).ok());
  EXPECT_EQ(header(corrupt, true).status().code(), StatusCode::kParseError);
  // A wrong-file swap: the manifest CRC cross-check fails the load.
  std::string path = dir.file("r.seg");
  ASSERT_TRUE(WriteFileDurable(path, bytes, /*sync=*/false).ok());
  auto swapped = LoadSegment(path, PredId{0}, /*expected_crc=*/0xDEADBEEF,
                             /*use_mmap=*/true, /*verify_checksum=*/false);
  EXPECT_EQ(swapped.status().code(), StatusCode::kParseError);
}

TEST(MmapStoreTest, CopyOnWriteUpgradeAndSharedClones) {
  ScratchDir dir("mmap");
  Relation rel = TestRelation(PredId{0}, 16);
  std::string path = dir.file("r.seg");
  ASSERT_TRUE(WriteFileDurable(path, EncodeSegment(rel), false).ok());
  auto map = MemMap::Open(path);
  ASSERT_TRUE(map.ok());

  auto store = MakeMmapStore(*map, kSegmentHeaderSize, 2, 16);
  EXPECT_STREQ(store->Backend(), "mmap");
  // A pre-mutation clone shares the mapping (still the mmap backend).
  auto clone = store->Clone();
  EXPECT_STREQ(clone->Backend(), "mmap");
  // Mutating the original upgrades it to heap storage without touching
  // the clone's view of the data.
  Value row[2] = {100, 200};
  store->Append(row);
  EXPECT_EQ(store->rows(), 17u);
  EXPECT_EQ(store->Column(0)[16], 100);
  EXPECT_EQ(clone->rows(), 16u);
  EXPECT_EQ(clone->Column(0)[3], rel.at(3, 0));
  // Missing file is a clean NotFound.
  EXPECT_EQ(MemMap::Open(dir.file("absent")).status().code(),
            StatusCode::kNotFound);
}

TEST(ManifestTest, EncodeParseRoundTrip) {
  Manifest m;
  m.generation = 7;
  m.journal_file = "journal.000007";
  m.constants = {"1", "alice", "-3"};
  m.preds = {{"v", 2, true}, {"e", 2, false}, {"q", 1, true}};
  m.view_rules = {"v(X, Y) :- e(X, Y)."};
  m.query_rules = {"q(X) :- e(X, Y)."};
  m.relations = {{"e", 42, 0xCAFEBABE, "e.000007.seg"}};
  std::string text = EncodeManifest(m);
  auto parsed = ParseManifest(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->generation, 7u);
  EXPECT_EQ(parsed->journal_file, "journal.000007");
  EXPECT_EQ(parsed->constants, m.constants);
  ASSERT_EQ(parsed->preds.size(), 3u);
  EXPECT_EQ(parsed->preds[1].name, "e");
  EXPECT_FALSE(parsed->preds[1].intensional);
  EXPECT_TRUE(parsed->preds[0].intensional);
  EXPECT_EQ(parsed->view_rules, m.view_rules);
  EXPECT_EQ(parsed->query_rules, m.query_rules);
  ASSERT_EQ(parsed->relations.size(), 1u);
  EXPECT_EQ(parsed->relations[0].rows, 42u);
  EXPECT_EQ(parsed->relations[0].crc, 0xCAFEBABEu);
}

TEST(ManifestTest, FailsClosedOnTampering) {
  Manifest m;
  m.generation = 1;
  m.journal_file = "journal.000001";
  std::string text = EncodeManifest(m);
  ASSERT_TRUE(ParseManifest(text).ok());
  // Any flipped byte breaks the trailing end-CRC.
  for (size_t i : {size_t{0}, text.size() / 2}) {
    std::string bad = text;
    bad[i] ^= 0x20;
    EXPECT_EQ(ParseManifest(bad).status().code(), StatusCode::kParseError)
        << "flip at " << i;
  }
  // Truncation loses the end line.
  EXPECT_EQ(ParseManifest(text.substr(0, text.size() - 2)).status().code(),
            StatusCode::kParseError);
  // Trailing junk after `end` is rejected.
  EXPECT_EQ(ParseManifest(text + "x").status().code(),
            StatusCode::kParseError);
}

TEST(JournalTest, FramingAndTornTailRecovery) {
  std::string text = EncodeJournalRecord("fact e(1, 2).") +
                     EncodeJournalRecord("view v(X) :- e(X, X).");
  JournalReplay replay = ParseJournal(text);
  ASSERT_EQ(replay.commands.size(), 2u);
  EXPECT_EQ(replay.commands[0], "fact e(1, 2).");
  EXPECT_EQ(replay.commands[1], "view v(X) :- e(X, X).");
  EXPECT_EQ(replay.valid_bytes, text.size());

  // A torn third record: replay keeps the intact prefix only.
  std::string torn = text + EncodeJournalRecord("fact e(3, 4).").substr(0, 9);
  replay = ParseJournal(torn);
  EXPECT_EQ(replay.commands.size(), 2u);
  EXPECT_EQ(replay.valid_bytes, text.size());

  // A corrupt record body: everything after it is ignored too.
  std::string corrupt = text;
  corrupt[corrupt.size() - 4] ^= 0x01;
  replay = ParseJournal(corrupt + EncodeJournalRecord("fact e(5, 6)."));
  EXPECT_EQ(replay.commands.size(), 1u);
}

/// A minimal SnapshotInput over a scratch catalog: one view, one query,
/// one binary extensional relation with `rows` facts.
struct TinyProblem {
  std::unique_ptr<Catalog> catalog = std::make_unique<Catalog>();
  Database base;
  std::vector<std::string> views = {"v(X, Y) :- e(X, Y)."};
  std::vector<std::string> query = {"q(X) :- e(X, Y)."};
  PredId e;

  explicit TinyProblem(size_t rows) : base(catalog.get()) {
    EXPECT_TRUE(catalog->GetOrAddPredicate("v", 2, PredKind::kIntensional).ok());
    e = *catalog->GetOrAddPredicate("e", 2, PredKind::kExtensional);
    EXPECT_TRUE(catalog->GetOrAddPredicate("q", 1, PredKind::kIntensional).ok());
    Relation rel = TestRelation(e, rows);
    base.Install(std::move(rel));
  }

  SnapshotInput Input() const {
    SnapshotInput input;
    input.catalog = catalog.get();
    input.view_rules = views;
    input.query_rules = query;
    input.base = &base;
    return input;
  }
};

TEST(SessionStoreTest, SnapshotRecoverAppendCycle) {
  ScratchDir dir("store");
  StoreOptions options;
  options.sync = false;  // keep the unit test fast; fsync paths are
                         // exercised by the recovery sweeps
  TinyProblem problem(21);
  {
    auto store = SessionStore::Attach(dir.path(), options);
    ASSERT_TRUE(store.ok());
    EXPECT_FALSE((*store)->has_manifest());
    // Recover before any commit: a clean NotFound, not corruption.
    EXPECT_EQ((*store)->Recover().status().code(), StatusCode::kNotFound);
    ASSERT_TRUE((*store)->Snapshot(problem.Input()).ok());
    EXPECT_EQ((*store)->generation(), 1u);
    ASSERT_TRUE((*store)->Append("fact e(90, 91).").ok());
    ASSERT_TRUE((*store)->Append("fact e(92, 93).").ok());
    EXPECT_EQ((*store)->journal_records(), 2u);
  }
  // Reattach (the destructor released the lock) and recover.
  auto store = SessionStore::Attach(dir.path(), options);
  ASSERT_TRUE(store.ok());
  EXPECT_TRUE((*store)->has_manifest());
  auto state = (*store)->Recover();
  ASSERT_TRUE(state.ok()) << state.status().ToString();
  EXPECT_EQ(state->generation, 1u);
  EXPECT_EQ(state->view_rules, problem.views);
  EXPECT_EQ(state->query_rules, problem.query);
  ASSERT_EQ(state->journal_commands.size(), 2u);
  EXPECT_EQ(state->journal_commands[0], "fact e(90, 91).");
  const Relation* rel = state->base.Find(problem.e);
  ASSERT_NE(rel, nullptr);
  EXPECT_EQ(rel->size(), 21u);
  EXPECT_STREQ(rel->StorageBackend(), "mmap");
  // The journal stays open: appends after recovery land in the same log.
  ASSERT_TRUE((*store)->Append("fact e(94, 95).").ok());
  EXPECT_EQ((*store)->journal_records(), 3u);
}

TEST(SessionStoreTest, SnapshotGarbageCollectsOldGenerations) {
  ScratchDir dir("gc");
  StoreOptions options;
  options.sync = false;
  TinyProblem problem(5);
  auto store = SessionStore::Attach(dir.path(), options);
  ASSERT_TRUE(store.ok());
  ASSERT_TRUE((*store)->Snapshot(problem.Input()).ok());
  ASSERT_TRUE((*store)->Snapshot(problem.Input()).ok());
  ASSERT_TRUE((*store)->Snapshot(problem.Input()).ok());
  EXPECT_EQ((*store)->generation(), 3u);
  auto names = ListDir(dir.path());
  ASSERT_TRUE(names.ok());
  // Exactly one generation lives on disk: LOCK, MANIFEST, one segment,
  // one journal.
  std::vector<std::string> expect = {"LOCK", "MANIFEST", "e.000003.seg",
                                     "journal.000003"};
  EXPECT_EQ(*names, expect);
}

TEST(SessionStoreTest, AttachConflictIsResourceExhausted) {
  ScratchDir dir("conflict");
  auto first = SessionStore::Attach(dir.path(), StoreOptions{});
  ASSERT_TRUE(first.ok());
  auto second = SessionStore::Attach(dir.path(), StoreOptions{});
  ASSERT_FALSE(second.ok());
  EXPECT_EQ(second.status().code(), StatusCode::kResourceExhausted);
}

TEST(SessionStoreTest, RecoveryPreservesSymbolicConstantDecoding) {
  // Symbolic constants persist as raw tagged Values; recovery re-interns
  // in manifest order, so the decoded text must match exactly.
  ScratchDir dir("symbolic");
  StoreOptions options;
  options.sync = false;
  auto catalog = std::make_unique<Catalog>();
  ASSERT_TRUE(catalog->GetOrAddPredicate("v", 1, PredKind::kIntensional).ok());
  PredId e = *catalog->GetOrAddPredicate("e", 2, PredKind::kExtensional);
  Value alice = SymbolicValue(catalog->InternConstant("alice"));
  Value bob = SymbolicValue(catalog->InternConstant("bob"));
  Database base(catalog.get());
  Relation rel(e, 2);
  rel.Add({alice, bob});
  rel.Add({bob, alice});
  rel.SortDedup();
  base.Install(std::move(rel));
  SnapshotInput input;
  input.catalog = catalog.get();
  input.view_rules = {"v(X) :- e(X, Y)."};
  input.base = &base;
  {
    auto store = SessionStore::Attach(dir.path(), options);
    ASSERT_TRUE(store.ok());
    ASSERT_TRUE((*store)->Snapshot(input).ok());
  }
  auto store = SessionStore::Attach(dir.path(), options);
  ASSERT_TRUE(store.ok());
  auto state = (*store)->Recover();
  ASSERT_TRUE(state.ok());
  const Relation* loaded = state->base.Find(e);
  ASSERT_NE(loaded, nullptr);
  ASSERT_EQ(loaded->size(), 2u);
  EXPECT_EQ(ValueToString(*state->catalog, loaded->at(0, 0)), "alice");
  EXPECT_EQ(ValueToString(*state->catalog, loaded->at(0, 1)), "bob");
}

}  // namespace
}  // namespace aqv
