#include <gtest/gtest.h>

#include "containment/containment.h"
#include "cq/parser.h"
#include "rewriting/lmss.h"
#include "views/expansion.h"

namespace aqv {
namespace {

class LmssTest : public ::testing::Test {
 protected:
  Catalog cat_;
  Query Parse(const std::string& s) { return ParseQuery(s, &cat_).value(); }

  ViewSet Views(const std::string& text) {
    auto r = ViewSet::Parse(text, &cat_);
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    return std::move(r).value();
  }

  LmssResult Run(const Query& q, const ViewSet& vs, int max_rewritings = 1) {
    LmssOptions opts;
    opts.max_rewritings = max_rewritings;
    auto r = FindEquivalentRewritings(q, vs, opts);
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    return std::move(r).value();
  }

  // Every returned rewriting must expand to something equivalent to q.
  void CheckWitnesses(const Query& q, const ViewSet& vs,
                      const LmssResult& res) {
    for (const Query& rw : res.rewritings) {
      EXPECT_TRUE(UsesOnlyViews(rw, vs)) << rw.ToString();
      auto e = ExpandRewriting(rw, vs);
      ASSERT_TRUE(e.ok());
      ASSERT_TRUE(e.value().satisfiable);
      auto eq = AreEquivalent(e.value().query, q);
      ASSERT_TRUE(eq.ok());
      EXPECT_TRUE(eq.value()) << "rewriting " << rw.ToString()
                              << " expands to non-equivalent "
                              << e.value().query.ToString();
    }
  }
};

TEST_F(LmssTest, IdentityViewGivesRewriting) {
  Query q = Parse("q(X, Y) :- r(X, Y).");
  ViewSet vs = Views("v(A, B) :- r(A, B).");
  LmssResult res = Run(q, vs);
  EXPECT_TRUE(res.exists);
  ASSERT_EQ(res.rewritings.size(), 1u);
  CheckWitnesses(q, vs, res);
}

TEST_F(LmssTest, TwoHopChainFromSingleEdgeView) {
  Query q = Parse("q(X, Z) :- e(X, Y), e(Y, Z).");
  ViewSet vs = Views("v(A, B) :- e(A, B).");
  LmssResult res = Run(q, vs);
  EXPECT_TRUE(res.exists);
  CheckWitnesses(q, vs, res);
}

TEST_F(LmssTest, HiddenJoinVariableBlocksRewriting) {
  // The view hides Y, which the query needs to join on.
  Query q = Parse("q(X, Z) :- e(X, Y), f(Y, Z).");
  ViewSet vs = Views("v(A) :- e(A, B).\nw(C) :- f(B, C).");
  LmssResult res = Run(q, vs);
  EXPECT_FALSE(res.exists);
}

TEST_F(LmssTest, ExposedJoinVariableEnablesRewriting) {
  Query q = Parse("q(X, Z) :- e(X, Y), f(Y, Z).");
  ViewSet vs = Views("v(A, B) :- e(A, B).\nw(B, C) :- f(B, C).");
  LmssResult res = Run(q, vs);
  EXPECT_TRUE(res.exists);
  CheckWitnesses(q, vs, res);
}

TEST_F(LmssTest, ViewTooNarrowNoRewriting) {
  // The view constrains more than the query: expansion ⊑ q strictly.
  Query q = Parse("q(X) :- e(X, Y).");
  ViewSet vs = Views("v(A) :- e(A, B), t(B).");
  LmssResult res = Run(q, vs);
  EXPECT_FALSE(res.exists);
}

TEST_F(LmssTest, ViewTooWideNoRewriting) {
  Query q = Parse("q(X) :- e(X, Y), t(Y).");
  ViewSet vs = Views("v(A) :- e(A, B).");
  LmssResult res = Run(q, vs);
  EXPECT_FALSE(res.exists);
}

TEST_F(LmssTest, RedundantQueryMinimizedFirst) {
  // After minimization the query is a single atom.
  Query q = Parse("q(X) :- e(X, Y), e(X, Z).");
  ViewSet vs = Views("v(A, B) :- e(A, B).");
  LmssResult res = Run(q, vs);
  EXPECT_TRUE(res.exists);
  EXPECT_EQ(res.minimized_query.body().size(), 1u);
  CheckWitnesses(q, vs, res);
}

TEST_F(LmssTest, CycleThroughSingleView) {
  Query q = Parse("q(X) :- e(X, Y), e(Y, X).");
  ViewSet vs = Views("v(A, B) :- e(A, B).");
  LmssResult res = Run(q, vs);
  EXPECT_TRUE(res.exists);
  CheckWitnesses(q, vs, res);
}

TEST_F(LmssTest, TwoAtomViewCoversPairs) {
  // LMSS running example shape: a pre-joined view covering two subgoals.
  Query q = Parse("q(X, W) :- e(X, Y), f(Y, Z), g(Z, W).");
  ViewSet vs = Views(
      "v1(A, C) :- e(A, B), f(B, C).\n"
      "v2(C, D) :- g(C, D).");
  LmssResult res = Run(q, vs);
  EXPECT_TRUE(res.exists);
  CheckWitnesses(q, vs, res);
}

TEST_F(LmssTest, ConstantInView) {
  Query q = Parse("q(X) :- e(X, 3).");
  ViewSet vs = Views("v(A) :- e(A, 3).");
  LmssResult res = Run(q, vs);
  EXPECT_TRUE(res.exists);
  CheckWitnesses(q, vs, res);
}

TEST_F(LmssTest, ConstantMismatchNoRewriting) {
  Query q = Parse("q(X) :- e(X, 3).");
  ViewSet vs = Views("v(A) :- e(A, 4).");
  LmssResult res = Run(q, vs);
  EXPECT_FALSE(res.exists);
}

TEST_F(LmssTest, EnumerationFindsMultipleWitnesses) {
  Query q = Parse("q(X, Y) :- e(X, Y).");
  ViewSet vs = Views("v1(A, B) :- e(A, B).\nv2(A, B) :- e(A, B).");
  LmssResult res = Run(q, vs, /*max_rewritings=*/10);
  EXPECT_TRUE(res.exists);
  EXPECT_GE(res.rewritings.size(), 2u);
  CheckWitnesses(q, vs, res);
}

TEST_F(LmssTest, LengthBoundRespected) {
  // LMSS R1: rewritings found never exceed |body(minimized q)| atoms.
  Query q = Parse("q(X, W) :- e(X, Y), f(Y, Z), g(Z, W).");
  ViewSet vs = Views(
      "v1(A, B) :- e(A, B).\n"
      "v2(B, C) :- f(B, C).\n"
      "v3(C, D) :- g(C, D).");
  LmssResult res = Run(q, vs, /*max_rewritings=*/100);
  EXPECT_TRUE(res.exists);
  for (const Query& rw : res.rewritings) {
    EXPECT_LE(rw.body().size(), res.minimized_query.body().size());
  }
  CheckWitnesses(q, vs, res);
}

TEST_F(LmssTest, DecisionWrapper) {
  Query q = Parse("q(X, Y) :- r(X, Y).");
  ViewSet yes = Views("v(A, B) :- r(A, B).");
  ViewSet no = Views("u(A) :- r(A, B).");
  EXPECT_TRUE(ExistsEquivalentRewriting(q, yes).value());
  EXPECT_FALSE(ExistsEquivalentRewriting(q, no).value());
}

TEST_F(LmssTest, EmptyViewSetNoRewriting) {
  Query q = Parse("q(X) :- r(X).");
  ViewSet vs;
  LmssResult res = Run(q, vs);
  EXPECT_FALSE(res.exists);
  EXPECT_EQ(res.num_candidates, 0u);
}

TEST_F(LmssTest, SubsetBudgetSurfaces) {
  Query q = Parse("q(X, Z) :- e(X, Y), e(Y, Z).");
  ViewSet vs = Views("v(A, B) :- e(A, B).");
  LmssOptions opts;
  opts.max_subsets = 0;
  auto r = FindEquivalentRewritings(q, vs, opts);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kResourceExhausted);
}

TEST_F(LmssTest, SelfJoinQueryThroughPathView) {
  // q over a loop; the 2-path view folds onto it.
  Query q = Parse("q(X) :- e(X, X).");
  ViewSet vs = Views("v(A, C) :- e(A, B), e(B, C).");
  LmssResult res = Run(q, vs);
  // Expansion of v(X,X) is e(X,B),e(B,X) which is NOT equivalent to e(X,X).
  EXPECT_FALSE(res.exists);
}

TEST_F(LmssTest, DistinguishedEverywhereView) {
  Query q = Parse("q(X, Y, Z) :- e(X, Y), f(Y, Z).");
  ViewSet vs = Views("v(A, B, C) :- e(A, B), f(B, C).");
  LmssResult res = Run(q, vs);
  EXPECT_TRUE(res.exists);
  CheckWitnesses(q, vs, res);
}

TEST_F(LmssTest, PartialRewritingFillsUncoveredSubgoal) {
  // No view covers u; a partial rewriting uses the base atom for it.
  Query q = Parse("q(X, Z) :- e(X, Y), f(Y, Z), u(Z).");
  ViewSet vs = Views("v(A, B) :- e(A, B).\nw(B, C) :- f(B, C).");
  LmssResult complete_only = Run(q, vs);
  EXPECT_FALSE(complete_only.exists);

  LmssOptions opts;
  opts.allow_base_atoms = true;
  opts.max_rewritings = 10;
  LmssResult partial = FindEquivalentRewritings(q, vs, opts).value();
  ASSERT_TRUE(partial.exists);
  bool found_mixed = false;
  for (const Query& rw : partial.rewritings) {
    bool has_view = false, has_base = false;
    for (const Atom& a : rw.body()) {
      (vs.FindByPred(a.pred) != nullptr ? has_view : has_base) = true;
    }
    if (has_view && has_base) found_mixed = true;
    auto e = ExpandRewriting(rw, vs);
    ASSERT_TRUE(e.ok());
    EXPECT_TRUE(AreEquivalent(e.value().query, q).value()) << rw.ToString();
  }
  EXPECT_TRUE(found_mixed);
}

TEST_F(LmssTest, PartialRewritingSuppressesTrivialByDefault) {
  Query q = Parse("q(X) :- r(X, Y).");
  ViewSet vs;  // no views at all
  LmssOptions opts;
  opts.allow_base_atoms = true;
  opts.max_rewritings = 10;
  LmssResult res = FindEquivalentRewritings(q, vs, opts).value();
  EXPECT_FALSE(res.exists);  // all-base rewriting suppressed

  opts.allow_trivial = true;
  LmssResult trivial = FindEquivalentRewritings(q, vs, opts).value();
  ASSERT_TRUE(trivial.exists);
  EXPECT_EQ(trivial.rewritings[0].body().size(), 1u);
}

TEST_F(LmssTest, PartialRewritingPrefersNothingItCannotProve) {
  // The base atom route must still pass the equivalence gate: a view that
  // is too narrow stays unusable even with base atoms available.
  Query q = Parse("q(X) :- e(X, Y), t(Y).");
  ViewSet vs = Views("v(A) :- e(A, B), t(B), z(B).");
  LmssOptions opts;
  opts.allow_base_atoms = true;
  opts.max_rewritings = 10;
  LmssResult res = FindEquivalentRewritings(q, vs, opts).value();
  for (const Query& rw : res.rewritings) {
    auto e = ExpandRewriting(rw, vs);
    ASSERT_TRUE(e.ok());
    EXPECT_TRUE(AreEquivalent(e.value().query, q).value());
    // v cannot appear: its z(B) constraint is not implied by q.
    for (const Atom& a : rw.body()) {
      EXPECT_EQ(vs.FindByPred(a.pred), nullptr);
    }
  }
}

TEST_F(LmssTest, ComparisonQueryWithMatchingViewComparison) {
  Query q = Parse("q(X) :- r(X, Y), Y < 5.");
  ViewSet vs = Views("v(A) :- r(A, B), B < 5.");
  LmssResult res = Run(q, vs);
  EXPECT_TRUE(res.exists);
  for (const Query& rw : res.rewritings) {
    auto e = ExpandRewriting(rw, vs);
    ASSERT_TRUE(e.ok());
    EXPECT_TRUE(AreEquivalent(e.value().query, q).value());
  }
}

TEST_F(LmssTest, ComparisonMismatchNoRewriting) {
  Query q = Parse("q(X) :- r(X, Y), Y < 5.");
  ViewSet vs = Views("v(A) :- r(A, B), B < 4.");
  LmssResult res = Run(q, vs);
  EXPECT_FALSE(res.exists);
}

}  // namespace
}  // namespace aqv
