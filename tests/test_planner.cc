#include <gtest/gtest.h>

#include "cq/parser.h"
#include "eval/evaluator.h"
#include "eval/materialize.h"
#include "rewriting/planner.h"
#include "workload/scenarios.h"

namespace aqv {
namespace {

class PlannerTest : public ::testing::Test {
 protected:
  Catalog cat_;
  Query Parse(const std::string& s) { return ParseQuery(s, &cat_).value(); }

  ViewSet Views(const std::string& text) {
    auto r = ViewSet::Parse(text, &cat_);
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    return std::move(r).value();
  }
};

TEST_F(PlannerTest, StatsFromDatabase) {
  Database db(&cat_);
  PredId r = cat_.GetOrAddPredicate("r", 2).value();
  db.Add(r, {1, 2});
  db.Add(r, {3, 4});
  ExtentStats stats = ExtentStats::FromDatabase(db);
  EXPECT_EQ(stats.Card(r), 2u);
  EXPECT_EQ(stats.Card(r + 100), 0u);
  // FromDatabase carries the measured per-column distinct counts;
  // CardinalitiesOnly (the model-ablation feed) does not.
  const std::vector<uint64_t>* distinct = stats.Distinct(r);
  ASSERT_NE(distinct, nullptr);
  EXPECT_EQ(*distinct, (std::vector<uint64_t>{2, 2}));
  ExtentStats sizes = ExtentStats::CardinalitiesOnly(db);
  EXPECT_EQ(sizes.Card(r), 2u);
  EXPECT_EQ(sizes.Distinct(r), nullptr);
}

TEST_F(PlannerTest, MeasuredSelectivityBeatsArityRatioGuessOnSkew) {
  // Two join targets with identical cardinality and arity: `wide` has n
  // distinct join keys (fanout ~1 per probe), `narrow` only 2 (fanout
  // n/2). The arity-ratio guess sees no difference; the measured model
  // and the evaluator's actual intermediate-row counters both do.
  Query via_wide = Parse("qw(X, Z) :- src(X, Y), wide(Y, Z).");
  Query via_narrow = Parse("qn(X, Z) :- src(X, Y), narrow(Y, Z).");
  Database db(&cat_);
  PredId src = cat_.FindPredicate("src").value();
  PredId wide = cat_.FindPredicate("wide").value();
  PredId narrow = cat_.FindPredicate("narrow").value();
  const int n = 200;
  for (int i = 0; i < n; ++i) {
    db.Add(src, {i, i % 2});
    db.Add(wide, {i, i});
    db.Add(narrow, {i % 2, i});
  }
  db.DedupAll();

  ExtentStats guessed = ExtentStats::CardinalitiesOnly(db);
  EXPECT_DOUBLE_EQ(EstimatePlanCost(via_wide, guessed),
                   EstimatePlanCost(via_narrow, guessed))
      << "sanity: the size-only guess cannot tell the plans apart";

  ExtentStats measured = ExtentStats::FromDatabase(db);
  double wide_cost = EstimatePlanCost(via_wide, measured);
  double narrow_cost = EstimatePlanCost(via_narrow, measured);
  EXPECT_LT(wide_cost, narrow_cost);

  EvalStats wide_stats;
  ASSERT_TRUE(EvaluateQuery(via_wide, db, {}, &wide_stats).ok());
  EvalStats narrow_stats;
  ASSERT_TRUE(EvaluateQuery(via_narrow, db, {}, &narrow_stats).ok());
  EXPECT_LT(wide_stats.intermediate_rows, narrow_stats.intermediate_rows)
      << "the measured model's ordering must match real evaluation";
}

TEST_F(PlannerTest, CostPrefersSmallRelations) {
  Query small = Parse("q(X) :- tiny(X, Y).");
  Query big = Parse("q2(X) :- huge(X, Y).");
  ExtentStats stats;
  stats.cardinality[cat_.FindPredicate("tiny").value()] = 10;
  stats.cardinality[cat_.FindPredicate("huge").value()] = 100000;
  EXPECT_LT(EstimatePlanCost(small, stats), EstimatePlanCost(big, stats));
}

TEST_F(PlannerTest, CostGrowsWithJoinDepth) {
  Query one = Parse("p1(X) :- r(X, Y).");
  Query two = Parse("p2(X) :- r(X, Y), r(Y, Z).");
  ExtentStats stats;
  stats.cardinality[cat_.FindPredicate("r").value()] = 100;
  EXPECT_LT(EstimatePlanCost(one, stats), EstimatePlanCost(two, stats));
}

TEST_F(PlannerTest, ConnectedJoinCheaperThanCrossProduct) {
  // Regression for the cardinality-only prefix-product model: it charged
  // the connected chain r⋈s (via the shared variable Y) the full 100×100
  // while the *cross product* with the smaller u got 50 + 50×100 — so the
  // old model preferred the cross-product plan. The bound-variable-aware
  // model charges the chain's second atom c^(1/2) per probe and flips the
  // ordering.
  Query chain = Parse("pc(X, Z) :- r(X, Y), s(Y, Z).");
  Query cross = Parse("px(X, Z) :- r(X, Y), u(Z, W).");
  ExtentStats stats;
  stats.cardinality[cat_.FindPredicate("r").value()] = 100;
  stats.cardinality[cat_.FindPredicate("s").value()] = 100;
  stats.cardinality[cat_.FindPredicate("u").value()] = 50;
  double chain_cost = EstimatePlanCost(chain, stats);
  double cross_cost = EstimatePlanCost(cross, stats);
  EXPECT_LT(chain_cost, cross_cost);

  // The old model's numbers, for the record: sorted prefix products give
  // chain = 100 + 100·100 = 10100 and cross = 50 + 50·100 = 5050.
  EXPECT_LT(chain_cost, 5050.0);
}

TEST_F(PlannerTest, BoundConstantsAndRepeatsReduceCost) {
  Query open = Parse("po(X, Y) :- big(X, Y).");
  Query constant = Parse("pk(X) :- big(X, 7).");
  Query repeated = Parse("pr(X) :- big(X, X).");
  ExtentStats stats;
  stats.cardinality[cat_.FindPredicate("big").value()] = 10000;
  EXPECT_LT(EstimatePlanCost(constant, stats), EstimatePlanCost(open, stats));
  EXPECT_LT(EstimatePlanCost(repeated, stats), EstimatePlanCost(open, stats));
}

TEST_F(PlannerTest, CostOrderingTracksActualEvalStats) {
  // The model's claim — connected joins beat cross products — validated
  // against the evaluator's own intermediate-row counters on real data.
  Query chain = Parse("qc(X, Z) :- e1(X, Y), e2(Y, Z).");
  Query cross = Parse("qx(X, Z) :- e1(X, Y), e3(Z, W).");
  Database db(&cat_);
  PredId e1 = cat_.FindPredicate("e1").value();
  PredId e2 = cat_.FindPredicate("e2").value();
  PredId e3 = cat_.FindPredicate("e3").value();
  for (int i = 0; i < 100; ++i) {
    db.Add(e1, {i % 30, (i * 7) % 30});
    db.Add(e2, {(i * 3) % 30, i % 30});
    if (i < 50) db.Add(e3, {i % 30, (i * 11) % 30});
  }
  EvalStats chain_stats;
  ASSERT_TRUE(EvaluateQuery(chain, db, {}, &chain_stats).ok());
  EvalStats cross_stats;
  ASSERT_TRUE(EvaluateQuery(cross, db, {}, &cross_stats).ok());
  ASSERT_LT(chain_stats.intermediate_rows, cross_stats.intermediate_rows);

  ExtentStats stats = ExtentStats::FromDatabase(db);
  EXPECT_LT(EstimatePlanCost(chain, stats), EstimatePlanCost(cross, stats));
}

TEST_F(PlannerTest, PlansComeFromAllEnginesWithProvenance) {
  Query q = Parse("q(X, Z) :- e(X, Y), f(Y, Z).");
  ViewSet vs = Views(
      "ve(A, B) :- e(A, B).\n"
      "vf(B, C) :- f(B, C).\n"
      "vj(A, C) :- e(A, B), f(B, C).");
  PlannerResult res = ChooseBestPlan(q, vs, {}, {}).value();
  ASSERT_GE(res.plans.size(), 2u);
  bool has_engine_plan = false;
  bool has_direct_plan = false;
  for (const PlanChoice& plan : res.plans) {
    EXPECT_FALSE(plan.engine.empty());
    if (plan.engine == "direct") {
      has_direct_plan = true;
      EXPECT_FALSE(plan.complete);
    } else {
      has_engine_plan = true;
    }
  }
  EXPECT_TRUE(has_engine_plan);
  EXPECT_TRUE(has_direct_plan);
  EXPECT_GT(res.stats.num_candidates, 0u);
}

TEST_F(PlannerTest, EngineSubsetRestrictsPlanSources) {
  Query q = Parse("q2(X, Z) :- g2(X, Y), h2(Y, Z).");
  ViewSet vs = Views("vgh(A, C) :- g2(A, B), h2(B, C).");
  PlannerOptions opts;
  opts.engines = {"minicon"};
  opts.include_direct_plan = false;
  PlannerResult res = ChooseBestPlan(q, vs, {}, {}, opts).value();
  ASSERT_FALSE(res.plans.empty());
  for (const PlanChoice& plan : res.plans) {
    EXPECT_EQ(plan.engine, "minicon");
    EXPECT_TRUE(plan.complete);
  }
}

TEST_F(PlannerTest, ChoosesPreJoinedViewWhenCheaper) {
  Query q = Parse("q(X, Z) :- e(X, Y), f(Y, Z).");
  ViewSet vs = Views(
      "ve(A, B) :- e(A, B).\n"
      "vf(B, C) :- f(B, C).\n"
      "vj(A, C) :- e(A, B), f(B, C).");
  ExtentStats view_stats;
  view_stats.cardinality[cat_.FindPredicate("ve").value()] = 1000;
  view_stats.cardinality[cat_.FindPredicate("vf").value()] = 1000;
  view_stats.cardinality[cat_.FindPredicate("vj").value()] = 50;
  ExtentStats base_stats;
  base_stats.cardinality[cat_.FindPredicate("e").value()] = 1000;
  base_stats.cardinality[cat_.FindPredicate("f").value()] = 1000;

  PlannerResult res = ChooseBestPlan(q, vs, view_stats, base_stats).value();
  ASSERT_GE(res.plans.size(), 2u);
  ASSERT_GE(res.best, 0);
  // The single-atom vj plan dominates everything.
  const PlanChoice& best = res.plans[res.best];
  ASSERT_EQ(best.rewriting.body().size(), 1u);
  EXPECT_EQ(cat_.pred(best.rewriting.body()[0].pred).name, "vj");
  EXPECT_TRUE(best.complete);
}

TEST_F(PlannerTest, FallsBackToDirectWhenNoRewriting) {
  Query q = Parse("q(X) :- g(X, Y), h(Y).");
  ViewSet vs = Views("vg(A) :- g(A, B).");  // cannot rewrite
  ExtentStats base_stats;
  base_stats.cardinality[cat_.FindPredicate("g").value()] = 10;
  base_stats.cardinality[cat_.FindPredicate("h").value()] = 10;
  PlannerResult res = ChooseBestPlan(q, vs, {}, base_stats).value();
  ASSERT_EQ(res.plans.size(), 1u);  // just the direct plan
  EXPECT_EQ(res.best, 0);
  EXPECT_FALSE(res.plans[0].complete);
}

TEST_F(PlannerTest, DirectPlanCanWinOnStats) {
  // The view extent is (artificially) bigger than re-joining the bases.
  Query q = Parse("q(X, Z) :- a(X, Y), b(Y, Z).");
  ViewSet vs = Views("vab(X, Z) :- a(X, Y), b(Y, Z).");
  ExtentStats view_stats;
  view_stats.cardinality[cat_.FindPredicate("vab").value()] = 1'000'000;
  ExtentStats base_stats;
  base_stats.cardinality[cat_.FindPredicate("a").value()] = 10;
  base_stats.cardinality[cat_.FindPredicate("b").value()] = 10;
  PlannerResult res = ChooseBestPlan(q, vs, view_stats, base_stats).value();
  ASSERT_GE(res.plans.size(), 2u);
  EXPECT_FALSE(res.plans[res.best].complete);  // direct plan wins
}

TEST_F(PlannerTest, NoDirectPlanOption) {
  Query q = Parse("q(X) :- r(X, Y).");
  ViewSet vs = Views("v(A, B) :- r(A, B).");
  PlannerOptions opts;
  opts.include_direct_plan = false;
  PlannerResult res = ChooseBestPlan(q, vs, {}, {}, opts).value();
  ASSERT_EQ(res.plans.size(), 1u);
  EXPECT_TRUE(res.plans[0].complete);
}

TEST_F(PlannerTest, EndToEndOnWarehouseScenario) {
  Scenario s = MakeWarehouseScenario(5, 2000).value();
  Database extents = MaterializeViews(s.views, s.base).value();
  PlannerResult res =
      ChooseBestPlan(s.query, s.views, ExtentStats::FromDatabase(extents),
                     ExtentStats::FromDatabase(s.base))
          .value();
  ASSERT_GE(res.best, 0);
  const PlanChoice& best = res.plans[res.best];
  // Execute the winner on the right database and cross-check.
  Relation direct = EvaluateQuery(s.query, s.base).value();
  Relation chosen = best.complete
                        ? EvaluateQuery(best.rewriting, extents).value()
                        : EvaluateQuery(best.rewriting, s.base).value();
  EXPECT_TRUE(Relation::SameSet(direct, chosen));
}

}  // namespace
}  // namespace aqv
