#include <gtest/gtest.h>

#include "cq/parser.h"
#include "eval/evaluator.h"
#include "eval/materialize.h"
#include "rewriting/planner.h"
#include "workload/scenarios.h"

namespace aqv {
namespace {

class PlannerTest : public ::testing::Test {
 protected:
  Catalog cat_;
  Query Parse(const std::string& s) { return ParseQuery(s, &cat_).value(); }

  ViewSet Views(const std::string& text) {
    auto r = ViewSet::Parse(text, &cat_);
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    return std::move(r).value();
  }
};

TEST_F(PlannerTest, StatsFromDatabase) {
  Database db(&cat_);
  PredId r = cat_.GetOrAddPredicate("r", 2).value();
  db.Add(r, {1, 2});
  db.Add(r, {3, 4});
  ExtentStats stats = ExtentStats::FromDatabase(db);
  EXPECT_EQ(stats.Card(r), 2u);
  EXPECT_EQ(stats.Card(r + 100), 0u);
}

TEST_F(PlannerTest, CostPrefersSmallRelations) {
  Query small = Parse("q(X) :- tiny(X, Y).");
  Query big = Parse("q2(X) :- huge(X, Y).");
  ExtentStats stats;
  stats.cardinality[cat_.FindPredicate("tiny").value()] = 10;
  stats.cardinality[cat_.FindPredicate("huge").value()] = 100000;
  EXPECT_LT(EstimatePlanCost(small, stats), EstimatePlanCost(big, stats));
}

TEST_F(PlannerTest, CostGrowsWithJoinDepth) {
  Query one = Parse("p1(X) :- r(X, Y).");
  Query two = Parse("p2(X) :- r(X, Y), r(Y, Z).");
  ExtentStats stats;
  stats.cardinality[cat_.FindPredicate("r").value()] = 100;
  EXPECT_LT(EstimatePlanCost(one, stats), EstimatePlanCost(two, stats));
}

TEST_F(PlannerTest, ChoosesPreJoinedViewWhenCheaper) {
  Query q = Parse("q(X, Z) :- e(X, Y), f(Y, Z).");
  ViewSet vs = Views(
      "ve(A, B) :- e(A, B).\n"
      "vf(B, C) :- f(B, C).\n"
      "vj(A, C) :- e(A, B), f(B, C).");
  ExtentStats view_stats;
  view_stats.cardinality[cat_.FindPredicate("ve").value()] = 1000;
  view_stats.cardinality[cat_.FindPredicate("vf").value()] = 1000;
  view_stats.cardinality[cat_.FindPredicate("vj").value()] = 50;
  ExtentStats base_stats;
  base_stats.cardinality[cat_.FindPredicate("e").value()] = 1000;
  base_stats.cardinality[cat_.FindPredicate("f").value()] = 1000;

  PlannerResult res = ChooseBestPlan(q, vs, view_stats, base_stats).value();
  ASSERT_GE(res.plans.size(), 2u);
  ASSERT_GE(res.best, 0);
  // The single-atom vj plan dominates everything.
  const PlanChoice& best = res.plans[res.best];
  ASSERT_EQ(best.rewriting.body().size(), 1u);
  EXPECT_EQ(cat_.pred(best.rewriting.body()[0].pred).name, "vj");
  EXPECT_TRUE(best.complete);
}

TEST_F(PlannerTest, FallsBackToDirectWhenNoRewriting) {
  Query q = Parse("q(X) :- g(X, Y), h(Y).");
  ViewSet vs = Views("vg(A) :- g(A, B).");  // cannot rewrite
  ExtentStats base_stats;
  base_stats.cardinality[cat_.FindPredicate("g").value()] = 10;
  base_stats.cardinality[cat_.FindPredicate("h").value()] = 10;
  PlannerResult res = ChooseBestPlan(q, vs, {}, base_stats).value();
  ASSERT_EQ(res.plans.size(), 1u);  // just the direct plan
  EXPECT_EQ(res.best, 0);
  EXPECT_FALSE(res.plans[0].complete);
}

TEST_F(PlannerTest, DirectPlanCanWinOnStats) {
  // The view extent is (artificially) bigger than re-joining the bases.
  Query q = Parse("q(X, Z) :- a(X, Y), b(Y, Z).");
  ViewSet vs = Views("vab(X, Z) :- a(X, Y), b(Y, Z).");
  ExtentStats view_stats;
  view_stats.cardinality[cat_.FindPredicate("vab").value()] = 1'000'000;
  ExtentStats base_stats;
  base_stats.cardinality[cat_.FindPredicate("a").value()] = 10;
  base_stats.cardinality[cat_.FindPredicate("b").value()] = 10;
  PlannerResult res = ChooseBestPlan(q, vs, view_stats, base_stats).value();
  ASSERT_GE(res.plans.size(), 2u);
  EXPECT_FALSE(res.plans[res.best].complete);  // direct plan wins
}

TEST_F(PlannerTest, NoDirectPlanOption) {
  Query q = Parse("q(X) :- r(X, Y).");
  ViewSet vs = Views("v(A, B) :- r(A, B).");
  PlannerOptions opts;
  opts.include_direct_plan = false;
  PlannerResult res = ChooseBestPlan(q, vs, {}, {}, opts).value();
  ASSERT_EQ(res.plans.size(), 1u);
  EXPECT_TRUE(res.plans[0].complete);
}

TEST_F(PlannerTest, EndToEndOnWarehouseScenario) {
  Scenario s = MakeWarehouseScenario(5, 2000).value();
  Database extents = MaterializeViews(s.views, s.base).value();
  PlannerResult res =
      ChooseBestPlan(s.query, s.views, ExtentStats::FromDatabase(extents),
                     ExtentStats::FromDatabase(s.base))
          .value();
  ASSERT_GE(res.best, 0);
  const PlanChoice& best = res.plans[res.best];
  // Execute the winner on the right database and cross-check.
  Relation direct = EvaluateQuery(s.query, s.base).value();
  Relation chosen = best.complete
                        ? EvaluateQuery(best.rewriting, extents).value()
                        : EvaluateQuery(best.rewriting, s.base).value();
  EXPECT_TRUE(Relation::SameSet(direct, chosen));
}

}  // namespace
}  // namespace aqv
