// The docs doctest harness: every fenced code block in README.md and
// docs/*.md that contains `aqv> ` prompt lines is an executable artifact.
// Each block is replayed, command by command, through a fresh frontend
// Session (one Session per block — state persists within a block), and
// the lines shown after each prompt must match TranscriptLines() of the
// real CommandResult *verbatim*. Docs can no longer rot: edit a
// transcript without running it and this suite fails with a diff.
//
// Transcript grammar inside a ``` block:
//   - lines before the first `aqv> ` are ignored (shell invocations etc.)
//   - `aqv> <command>` runs <command>
//   - every following line, until the next prompt or the end of the
//     block, is the command's expected output
// Blocks without any `aqv> ` line are ignored (shell/C++/JSON examples).

#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "frontend/session.h"
#include "gtest/gtest.h"

#ifndef AQV_SOURCE_DIR
#error "tests/CMakeLists.txt must define AQV_SOURCE_DIR"
#endif

namespace aqv {
namespace {

constexpr char kPrompt[] = "aqv> ";

std::vector<std::string> SplitLines(const std::string& text) {
  std::vector<std::string> lines;
  size_t start = 0;
  while (start <= text.size()) {
    size_t nl = text.find('\n', start);
    if (nl == std::string::npos) {
      lines.push_back(text.substr(start));
      break;
    }
    lines.push_back(text.substr(start, nl - start));
    start = nl + 1;
  }
  return lines;
}

struct TranscriptStep {
  int line_no = 0;  // 1-based line of the prompt in the markdown file
  std::string command;
  std::vector<std::string> expected;
};

struct Transcript {
  std::string file;
  int line_no = 0;  // line of the opening fence
  std::vector<TranscriptStep> steps;
};

/// Extracts every transcript block (fenced, containing `aqv> `) of one
/// markdown file.
std::vector<Transcript> ExtractTranscripts(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << "cannot open " << path;
  std::string content((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
  std::vector<std::string> lines = SplitLines(content);

  std::vector<Transcript> out;
  bool in_fence = false;
  Transcript current;
  for (size_t i = 0; i < lines.size(); ++i) {
    const std::string& line = lines[i];
    if (line.rfind("```", 0) == 0) {
      if (in_fence) {
        if (!current.steps.empty()) out.push_back(current);
        current = Transcript();
      } else {
        current.file = path;
        current.line_no = static_cast<int>(i) + 1;
      }
      in_fence = !in_fence;
      continue;
    }
    if (!in_fence) continue;
    if (line.rfind(kPrompt, 0) == 0) {
      TranscriptStep step;
      step.line_no = static_cast<int>(i) + 1;
      step.command = line.substr(sizeof(kPrompt) - 1);
      current.steps.push_back(step);
    } else if (!current.steps.empty()) {
      current.steps.back().expected.push_back(line);
    }
    // Lines before the first prompt in a block are ignored.
  }
  EXPECT_FALSE(in_fence) << path << ": unterminated code fence";
  return out;
}

void ReplayTranscript(const Transcript& t) {
  SCOPED_TRACE(t.file + ":" + std::to_string(t.line_no));
  Session session;
  for (const TranscriptStep& step : t.steps) {
    CommandResult result = session.Execute(step.command);
    std::string expected;
    for (size_t i = 0; i < step.expected.size(); ++i) {
      if (i > 0) expected += '\n';
      expected += step.expected[i];
    }
    EXPECT_EQ(TranscriptLines(result), expected)
        << t.file << ":" << step.line_no << ": aqv> " << step.command;
  }
}

std::vector<std::string> DocFiles() {
  std::vector<std::string> files = {std::string(AQV_SOURCE_DIR) +
                                    "/README.md"};
  for (const auto& entry : std::filesystem::directory_iterator(
           std::string(AQV_SOURCE_DIR) + "/docs")) {
    if (entry.path().extension() == ".md") {
      files.push_back(entry.path().string());
    }
  }
  return files;
}

TEST(DocsTest, EveryFencedTranscriptReplaysVerbatim) {
  size_t transcripts = 0;
  size_t commands = 0;
  for (const std::string& file : DocFiles()) {
    for (const Transcript& t : ExtractTranscripts(file)) {
      ReplayTranscript(t);
      ++transcripts;
      commands += t.steps.size();
    }
  }
  // Discovery guard: silently finding nothing must fail, not pass — the
  // README quickstart and the FRONTEND/QUERY_LANGUAGE walkthroughs alone
  // account for this many.
  EXPECT_GE(transcripts, 4u);
  EXPECT_GE(commands, 25u);
}

/// The committed demo script must replay clean — it is what CI's
/// frontend-smoke job feeds aqvsh.
TEST(DocsTest, DemoScriptRunsWithoutErrors) {
  std::string path = std::string(AQV_SOURCE_DIR) + "/examples/demo.aqv";
  std::ifstream in(path);
  ASSERT_TRUE(in.good()) << "cannot open " << path;
  std::string content((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
  Session session;
  std::vector<CommandResult> results = session.ExecuteScript(content);
  ASSERT_FALSE(results.empty());
  for (size_t i = 0; i < results.size(); ++i) {
    EXPECT_TRUE(results[i].ok())
        << path << ":" << (i + 1) << ": " << results[i].status.ToString();
  }
  EXPECT_TRUE(results.back().quit) << "demo.aqv should end with quit";
}

}  // namespace
}  // namespace aqv
