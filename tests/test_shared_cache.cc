// Property tests of the shared cross-connection rewriting caches: the
// catalog-independent encodings (cq/global_symbols.h + GlobalFingerprint),
// the server-lifetime ContainmentOracle surviving the catalogs that fed
// it, and the end-to-end equivalence contract of frontend/server.h —
// share_cache on (1 shard and N shards) and off must produce bit-identical
// wire responses on replayed generator workloads, with the caches actually
// hitting on repeats and never serving a stale plan across view-set
// mutations. CI additionally runs this binary under ThreadSanitizer (the
// tsan-service job).

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "containment/containment.h"
#include "containment/oracle.h"
#include "cq/catalog.h"
#include "cq/parser.h"
#include "cq/query.h"
#include "frontend/differential.h"
#include "frontend/replay.h"
#include "frontend/server.h"
#include "frontend/session.h"
#include "gtest/gtest.h"
#include "service/plan_cache.h"
#include "workload/generator.h"

namespace aqv {
namespace {

// --- TCP plumbing (as in test_frontend_server.cc) ----------------------

int ConnectTo(int port) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  int rc = ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
  EXPECT_EQ(rc, 0) << std::strerror(errno);
  return fd;
}

/// Sends `lines` in one write and reads to EOF (every script ends in
/// `quit`, so the server closes when done).
std::string RunScript(int port, const std::vector<std::string>& lines) {
  int fd = ConnectTo(port);
  std::string request;
  for (const std::string& line : lines) request += line + "\n";
  size_t sent = 0;
  while (sent < request.size()) {
    ssize_t n = ::send(fd, request.data() + sent, request.size() - sent, 0);
    if (n <= 0) break;
    sent += static_cast<size_t>(n);
  }
  std::string received;
  char buf[8192];
  ssize_t n;
  while ((n = ::recv(fd, buf, sizeof(buf), 0)) > 0) {
    received.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  return received;
}

/// The inline-Session ground truth: the byte stream a transport-free
/// replay of `lines` produces (server session semantics: load disabled,
/// no service, no shared caches).
std::string GroundTruth(const std::vector<std::string>& lines) {
  SessionOptions options;
  options.enable_load = false;
  Session session(options);
  std::string expected;
  for (const std::string& line : lines) {
    CommandResult result = session.Execute(line);
    expected += RenderWireResponse(result);
    if (result.quit) break;
  }
  return expected;
}

// --- catalog-independent encodings -------------------------------------

TEST(SharedCacheTest, GlobalFingerprintAgreesAcrossCatalogs) {
  // Parse the same query into two catalogs whose local dense ids diverge
  // (the second catalog interns unrelated predicates first): the local
  // fingerprints may differ, the global ones must not.
  Catalog a;
  auto qa = ParseQuery("q(X, Z) :- e(X, Y), f(Y, Z).", &a);
  ASSERT_TRUE(qa.ok());

  Catalog b;
  auto skew = ParseQuery("skew(U) :- zzz(U), yyy(U, U).", &b);
  ASSERT_TRUE(skew.ok());
  // Variable names differ too: canonicalization must erase them.
  auto qb = ParseQuery("q(A, C) :- e(A, B), f(B, C).", &b);
  ASSERT_TRUE(qb.ok());

  EXPECT_EQ(GlobalCanonicalEncoding(*qa), GlobalCanonicalEncoding(*qb));
  EXPECT_EQ(GlobalFingerprint(*qa), GlobalFingerprint(*qb));

  // A structurally different query must not collide on the encoding.
  auto other = ParseQuery("q(X, Z) :- e(X, Y), e(Y, Z).", &b);
  ASSERT_TRUE(other.ok());
  EXPECT_NE(GlobalCanonicalEncoding(*qb), GlobalCanonicalEncoding(*other));
}

TEST(SharedCacheTest, OracleEntriesSurviveTheirCatalogs) {
  ContainmentOracle oracle(/*max_entries=*/1024, /*num_shards=*/4);
  ContainmentOptions options;

  auto first_catalog = std::make_unique<Catalog>();
  auto sub = ParseQuery("q(X) :- e(X, Y), e(Y, X).", first_catalog.get());
  auto super = ParseQuery("p(X) :- e(X, Y).", first_catalog.get());
  ASSERT_TRUE(sub.ok() && super.ok());
  auto first = oracle.IsContainedIn(*sub, *super, options);
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(oracle.stats().hits, 0u);
  EXPECT_EQ(oracle.stats().misses, 1u);

  // Destroy the catalog that produced the cached entry, then re-ask the
  // same (renamed) pair from a fresh catalog: the entry must hit, and the
  // verdict must match — nothing in the cache may reference the dead
  // catalog.
  Query sub_copy = *sub;
  Query super_copy = *super;
  (void)sub_copy;
  (void)super_copy;
  first_catalog.reset();

  Catalog second_catalog;
  auto sub2 = ParseQuery("q(A) :- e(A, B), e(B, A).", &second_catalog);
  auto super2 = ParseQuery("p(A) :- e(A, B).", &second_catalog);
  ASSERT_TRUE(sub2.ok() && super2.ok());
  auto second = oracle.IsContainedIn(*sub2, *super2, options);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(*second, *first);
  EXPECT_EQ(oracle.stats().hits, 1u);
  EXPECT_EQ(oracle.stats().misses, 1u);
  EXPECT_EQ(oracle.stats().confirm_failures, 0u);
}

// --- end-to-end equivalence over generated workloads -------------------

/// Renders the soak script of one pinned seed: a small generated LAV
/// scenario with churn (so `reset` + view re-adds exercise plan-cache
/// invalidation), probed across engines and routes.
std::vector<std::string> ScriptForSeed(uint64_t seed) {
  GeneratedScenarioSpec spec;
  spec.seed = seed;
  spec.num_predicates = 4;
  spec.query_atoms = 2;
  spec.num_views = 6;
  spec.max_view_atoms = 2;
  spec.facts_per_predicate = 5;
  spec.domain_size = 12;
  auto scenario = GenerateScenario(spec);
  EXPECT_TRUE(scenario.ok()) << scenario.status().ToString();
  if (!scenario.ok()) return {};
  SoakScriptOptions script_options;
  script_options.seed = seed * 7919 + 1;
  script_options.churn_cycles = static_cast<int>(seed % 3);
  auto script = SoakScriptFromScenario(*scenario, script_options);
  EXPECT_TRUE(script.ok()) << script.status().ToString();
  if (!script.ok()) return {};
  return SplitScriptLines(script->text);
}

TEST(SharedCacheTest, CacheModesAreByteIdenticalOnPinnedSeeds) {
  // The acceptance property of the shared caches: across 20 pinned
  // generator seeds, a server with the shared oracle + plan cache (both 1
  // shard and 8 shards) answers every replayed script byte-identically to
  // a cache-off server and to the inline-session ground truth — even with
  // two clients racing the same script through the shared caches.
  ServerOptions shared8;
  shared8.share_cache = true;
  shared8.service.num_workers = 4;
  shared8.service.oracle_shards = 8;
  shared8.plan_cache_shards = 8;

  ServerOptions shared1;
  shared1.share_cache = true;
  shared1.service.num_workers = 4;
  shared1.service.oracle_shards = 1;
  shared1.plan_cache_shards = 1;

  ServerOptions isolated;
  isolated.share_cache = false;
  isolated.service.num_workers = 4;

  FrontendServer server_shared8(shared8);
  FrontendServer server_shared1(shared1);
  FrontendServer server_isolated(isolated);
  ASSERT_TRUE(server_shared8.Start().ok());
  ASSERT_TRUE(server_shared1.Start().ok());
  ASSERT_TRUE(server_isolated.Start().ok());
  FrontendServer* servers[] = {&server_shared8, &server_shared1,
                               &server_isolated};

  for (uint64_t seed = 1; seed <= 20; ++seed) {
    std::vector<std::string> lines = ScriptForSeed(seed);
    ASSERT_FALSE(lines.empty()) << "seed " << seed;
    std::string expected = GroundTruth(lines);

    // Two clients per server replay the script concurrently: cross-
    // connection cache hits must not perturb a single byte.
    std::string responses[3][2];
    std::vector<std::thread> clients;
    for (int s = 0; s < 3; ++s) {
      for (int c = 0; c < 2; ++c) {
        clients.emplace_back([&, s, c] {
          responses[s][c] = RunScript(servers[s]->port(), lines);
        });
      }
    }
    for (std::thread& t : clients) t.join();
    for (int s = 0; s < 3; ++s) {
      for (int c = 0; c < 2; ++c) {
        EXPECT_EQ(responses[s][c], expected)
            << "seed " << seed << " server " << s << " client " << c;
      }
    }
  }

  // The equivalence only attests cache sharing if the shared caches were
  // actually exercised: 20 seeds x 2 clients of repeated probes must have
  // produced hits in both shared servers.
  EXPECT_GT(server_shared8.oracle().stats().hits, 0u);
  EXPECT_GT(server_shared1.oracle().stats().hits, 0u);
  EXPECT_GT(server_shared8.plan_cache().stats().hits, 0u);
  EXPECT_GT(server_shared1.plan_cache().stats().hits, 0u);

  server_shared8.Stop();
  server_shared1.Stop();
  server_isolated.Stop();
}

TEST(SharedCacheTest, RepeatedScriptsHitThePlanCacheAcrossConnections) {
  ServerOptions options;
  options.share_cache = true;
  FrontendServer server(options);
  ASSERT_TRUE(server.Start().ok());
  // Identity mirrors guarantee an equivalent rewriting exists, so the
  // engines pose real containment questions (a problem with zero
  // rewritings never consults the oracle).
  const std::vector<std::string> script = {
      "view ve(X, Y) :- edge(X, Y).",
      "view vc(X) :- checked(X).",
      "view vj(X, Y) :- edge(X, Y), checked(Y).",
      "query q(X, Z) :- edge(X, Y), checked(Y), edge(Y, Z).",
      "fact edge(1, 2).",
      "fact checked(2).",
      "fact edge(2, 3).",
      "rewrite with lmss",
      "rewrite with minicon",
      "answer route complete with lmss",  // not plan-cached: engine runs every time
      "quit"};
  std::string first = RunScript(server.port(), script);
  PlanCacheStats after_first = server.plan_cache().stats();
  OracleStats oracle_first = server.oracle().stats();
  EXPECT_EQ(after_first.hits, 0u);
  EXPECT_GE(after_first.inserts, 2u);  // one plan per rewrite probe

  // A brand-new connection (fresh session, fresh catalog) repeating the
  // problem is answered from the cache, byte-identically.
  std::string second = RunScript(server.port(), script);
  PlanCacheStats after_second = server.plan_cache().stats();
  EXPECT_EQ(second, first);
  EXPECT_GE(after_second.hits, 2u);
  EXPECT_EQ(after_second.inserts, after_first.inserts);
  // The answer probe re-runs the engine, whose containment questions are
  // all repeats of the first connection's — and the first connection's
  // catalog is gone by now, so every one of these hits is an entry that
  // outlived the catalog it was built from. No new misses may appear.
  OracleStats oracle_second = server.oracle().stats();
  EXPECT_GT(oracle_second.hits, oracle_first.hits);
  EXPECT_EQ(oracle_second.misses, oracle_first.misses);
  server.Stop();
}

TEST(SharedCacheTest, ViewMutationsInvalidateCachedPlans) {
  ServerOptions options;
  options.share_cache = true;
  FrontendServer server(options);
  ASSERT_TRUE(server.Start().ok());

  // One connection: rewrite, mutate the view set, rewrite again, reset
  // and rebuild a different view set, rewrite a third time. Every rewrite
  // after a mutation must reflect the *current* views — byte-compared
  // against the inline ground truth, which has no cache to go stale.
  const std::vector<std::string> script = {
      "view v(X, Y) :- edge(X, Y).",
      "query q(X, Z) :- edge(X, Y), edge(Y, Z).",
      "rewrite with lmss",
      "rewrite with lmss",  // exact repeat: served from cache
      "view w(X) :- edge(X, X).",
      "rewrite with lmss",  // view added: key changed, fresh engine run
      "reset",
      "view u(X, Y) :- edge(Y, X).",
      "query q(X, Z) :- edge(X, Y), edge(Y, Z).",
      "rewrite with lmss",  // rebuilt problem: again a fresh key
      "quit"};
  std::string expected = GroundTruth(script);
  std::string response = RunScript(server.port(), script);
  EXPECT_EQ(response, expected);

  PlanCacheStats stats = server.plan_cache().stats();
  EXPECT_GE(stats.hits, 1u);    // the exact repeat
  EXPECT_GE(stats.misses, 3u);  // initial + after-add + after-reset
  server.Stop();
}

}  // namespace
}  // namespace aqv
