#include <gtest/gtest.h>

#include "containment/containment.h"
#include "cq/parser.h"
#include "rewriting/bucket.h"
#include "rewriting/minicon.h"
#include "views/expansion.h"

namespace aqv {
namespace {

class MiniConTest : public ::testing::Test {
 protected:
  Catalog cat_;
  Query Parse(const std::string& s) { return ParseQuery(s, &cat_).value(); }

  ViewSet Views(const std::string& text) {
    auto r = ViewSet::Parse(text, &cat_);
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    return std::move(r).value();
  }

  MiniConResult Run(const Query& q, const ViewSet& vs,
                    MiniConOptions opts = {}) {
    auto r = MiniConRewrite(q, vs, opts);
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    return std::move(r).value();
  }

  void CheckSound(const Query& q, const ViewSet& vs,
                  const UnionQuery& rewritings) {
    for (const Query& rw : rewritings.disjuncts) {
      auto e = ExpandRewriting(rw, vs);
      ASSERT_TRUE(e.ok());
      ASSERT_TRUE(e.value().satisfiable);
      auto sub = IsContainedIn(e.value().query, q);
      ASSERT_TRUE(sub.ok());
      EXPECT_TRUE(sub.value()) << rw.ToString() << " expands to "
                               << e.value().query.ToString();
    }
  }

  // The headline MiniCon == Bucket property: both unions are maximally
  // contained, hence mutually contained (comparing expansions).
  void CheckMatchesBucket(const Query& q, const ViewSet& vs) {
    MiniConResult mc = Run(q, vs);
    auto bk = BucketRewrite(q, vs);
    ASSERT_TRUE(bk.ok()) << bk.status().ToString();
    auto mc_exp = ExpandUnion(mc.rewritings, vs);
    auto bk_exp = ExpandUnion(bk.value().rewritings, vs);
    ASSERT_TRUE(mc_exp.ok());
    ASSERT_TRUE(bk_exp.ok());
    if (mc_exp.value().empty() && bk_exp.value().empty()) return;
    ASSERT_FALSE(mc_exp.value().empty());
    ASSERT_FALSE(bk_exp.value().empty());
    auto fwd = UnionIsContainedInUnion(mc_exp.value(), bk_exp.value());
    auto bwd = UnionIsContainedInUnion(bk_exp.value(), mc_exp.value());
    ASSERT_TRUE(fwd.ok());
    ASSERT_TRUE(bwd.ok());
    EXPECT_TRUE(fwd.value()) << "MiniCon union not within bucket union";
    EXPECT_TRUE(bwd.value()) << "Bucket union not within MiniCon union";
  }
};

TEST_F(MiniConTest, SingleViewSingleMcd) {
  Query q = Parse("q(X) :- r(X, Y).");
  ViewSet vs = Views("v(A, B) :- r(A, B).");
  MiniConResult res = Run(q, vs);
  EXPECT_EQ(res.mcds.size(), 1u);
  ASSERT_EQ(res.rewritings.size(), 1);
  CheckSound(q, vs, res.rewritings);
}

TEST_F(MiniConTest, HiddenJoinVarForcesMultiSubgoalMcd) {
  // Y is existential in the view, so an MCD seeded at e must swallow f too.
  Query q = Parse("q(X, Z) :- e(X, Y), f(Y, Z).");
  ViewSet vs = Views("v(A, C) :- e(A, B), f(B, C).");
  MiniConResult res = Run(q, vs);
  ASSERT_EQ(res.mcds.size(), 1u);
  EXPECT_EQ(res.mcds[0].covered, (std::vector<int>{0, 1}));
  ASSERT_EQ(res.rewritings.size(), 1);
  CheckSound(q, vs, res.rewritings);
}

TEST_F(MiniConTest, UncoverableForcedSubgoalKillsMcd) {
  // The view exposes only e; the closure needs f but the view has none.
  Query q = Parse("q(X, Z) :- e(X, Y), f(Y, Z).");
  ViewSet vs = Views("v(A) :- e(A, B).");
  MiniConResult res = Run(q, vs);
  EXPECT_TRUE(res.mcds.empty());
  EXPECT_TRUE(res.rewritings.empty());
}

TEST_F(MiniConTest, DistinguishedJoinVarKeepsMcdsSmall) {
  // Y distinguished in both views: two single-subgoal MCDs suffice.
  Query q = Parse("q(X, Z) :- e(X, Y), f(Y, Z).");
  ViewSet vs = Views("v(A, B) :- e(A, B).\nw(B, C) :- f(B, C).");
  MiniConResult res = Run(q, vs);
  EXPECT_EQ(res.mcds.size(), 2u);
  for (const auto& mcd : res.mcds) {
    EXPECT_EQ(mcd.covered.size(), 1u);
  }
  ASSERT_EQ(res.rewritings.size(), 1);
  CheckSound(q, vs, res.rewritings);
}

TEST_F(MiniConTest, DisjointnessPreventsOverlappingCombinations) {
  // Two views both covering both subgoals: combinations are single-MCD.
  Query q = Parse("q(X, Z) :- e(X, Y), f(Y, Z).");
  ViewSet vs = Views(
      "v(A, C) :- e(A, B), f(B, C).\n"
      "w(A, C) :- e(A, B), f(B, C).");
  MiniConResult res = Run(q, vs);
  EXPECT_EQ(res.mcds.size(), 2u);
  EXPECT_EQ(res.rewritings.size(), 2);
  for (const Query& rw : res.rewritings.disjuncts) {
    EXPECT_EQ(rw.body().size(), 1u);
  }
  CheckSound(q, vs, res.rewritings);
}

TEST_F(MiniConTest, HeadVarOnExistentialViewPositionRejected) {
  Query q = Parse("q(X, Y) :- r(X, Y).");
  ViewSet vs = Views("v(A) :- r(A, B).");
  MiniConResult res = Run(q, vs);
  EXPECT_TRUE(res.mcds.empty());
}

TEST_F(MiniConTest, MatchesBucketOnChain) {
  Query q = Parse("q(X, W) :- e(X, Y), f(Y, Z), g(Z, W).");
  ViewSet vs = Views(
      "v1(A, B) :- e(A, B).\n"
      "v2(B, C) :- f(B, C).\n"
      "v3(C, D) :- g(C, D).\n"
      "v4(A, C) :- e(A, B), f(B, C).");
  CheckMatchesBucket(q, vs);
}

TEST_F(MiniConTest, MatchesBucketWithPartialViews) {
  Query q = Parse("q(X) :- e(X, Y), t(Y).");
  ViewSet vs = Views(
      "v1(A, B) :- e(A, B).\n"
      "v2(B) :- t(B).\n"
      "v3(A) :- e(A, B), t(B).");
  CheckMatchesBucket(q, vs);
}

TEST_F(MiniConTest, MatchesBucketWhenNothingWorks) {
  Query q = Parse("q(X) :- e(X, Y), u(Y).");
  ViewSet vs = Views("v(A, B) :- e(A, B).");
  CheckMatchesBucket(q, vs);
}

TEST_F(MiniConTest, MatchesBucketOnStar) {
  Query q = Parse("q(L1, L2, L3) :- s1(C, L1), s2(C, L2), s3(C, L3).");
  ViewSet vs = Views(
      "v12(C, A, B) :- s1(C, A), s2(C, B).\n"
      "v3(C, D) :- s3(C, D).\n"
      "v123(A, B, D) :- s1(C, A), s2(C, B), s3(C, D).");
  CheckMatchesBucket(q, vs);
}

TEST_F(MiniConTest, VerifyOptionChangesNothingOnCleanInputs) {
  Query q = Parse("q(X, Z) :- e(X, Y), f(Y, Z).");
  ViewSet vs = Views("v(A, B) :- e(A, B).\nw(B, C) :- f(B, C).");
  MiniConOptions verify;
  verify.verify_candidates = true;
  MiniConResult a = Run(q, vs);
  MiniConResult b = Run(q, vs, verify);
  EXPECT_EQ(a.rewritings.size(), b.rewritings.size());
}

TEST_F(MiniConTest, SelfJoinMcds) {
  Query q = Parse("q(X) :- e(X, Y), e(Y, X).");
  ViewSet vs = Views("v(A, B) :- e(A, B).");
  MiniConResult res = Run(q, vs);
  // Two MCDs (one per subgoal), combination joins them.
  EXPECT_EQ(res.mcds.size(), 2u);
  ASSERT_GE(res.rewritings.size(), 1);
  CheckSound(q, vs, res.rewritings);
  CheckMatchesBucket(q, vs);
}

TEST_F(MiniConTest, CombinationCapSurfaces) {
  Query q = Parse("q(X) :- e(X, Y).");
  ViewSet vs = Views("v(A, B) :- e(A, B).");
  MiniConOptions opts;
  opts.max_combinations = 0;
  auto r = MiniConRewrite(q, vs, opts);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kResourceExhausted);
}

TEST_F(MiniConTest, ComparisonQueryForcesVerification) {
  Query q = Parse("q(X) :- r(X, Y), X < 3.");
  ViewSet vs = Views("v(A, B) :- r(A, B).");
  MiniConResult res = Run(q, vs);
  ASSERT_EQ(res.rewritings.size(), 1);
  CheckSound(q, vs, res.rewritings);
}

TEST_F(MiniConTest, NoIllegalViewInternalUnification) {
  // Regression: closing an MCD must never merge two view variables when one
  // is existential — that demands an equality inside the view body that no
  // rewriting can enforce. With the two_hop view below, a buggy closure
  // produces q(X, X) :- two_hop(F, X), ... whose expansion is NOT contained
  // in q (found via examples/quickstart).
  Query q = Parse("q(X, Z) :- edge(X, Y), checked(Y), edge(Y, Z).");
  ViewSet vs = Views(
      "safeedge(X, Y) :- edge(X, Y), checked(Y).\n"
      "ischecked(X) :- checked(X).\n"
      "twohop(X, Z) :- edge(X, Y), edge(Y, Z).");
  MiniConResult res = Run(q, vs);
  for (const auto& mcd : res.mcds) {
    EXPECT_NE(mcd.view->name(), "twohop")
        << "two_hop cannot legally cover any subgoal here";
  }
  CheckSound(q, vs, res.rewritings);
  CheckMatchesBucket(q, vs);
}

TEST_F(MiniConTest, LegalDistinguishedMergeStillWorks) {
  // Merging two *distinguished* view variables stays legal: the candidate
  // repeats the argument (v(X, X)) to enforce it.
  Query q = Parse("q(X) :- r(X, X).");
  ViewSet vs = Views("v(A, B) :- r(A, B).");
  MiniConResult res = Run(q, vs);
  ASSERT_EQ(res.rewritings.size(), 1);
  const Query& rw = res.rewritings.disjuncts[0];
  ASSERT_EQ(rw.body().size(), 1u);
  EXPECT_EQ(rw.body()[0].args[0], rw.body()[0].args[1]);
  CheckSound(q, vs, res.rewritings);
}

TEST_F(MiniConTest, ExistentialPinnedToConstantRejected) {
  // Unifying the query's constant against an existential view position
  // would constrain the view internally: no MCD may form.
  Query q = Parse("q(X) :- r(X, 3).");
  ViewSet vs = Views("vh(A) :- r(A, B).");
  MiniConResult res = Run(q, vs);
  EXPECT_TRUE(res.mcds.empty());
  EXPECT_TRUE(res.rewritings.empty());
}

TEST_F(MiniConTest, ConstantsInQueryAndView) {
  Query q = Parse("q(X) :- r(X, 3), s(X).");
  ViewSet vs = Views("v(A) :- r(A, 3).\nw(A) :- s(A).");
  MiniConResult res = Run(q, vs);
  ASSERT_EQ(res.rewritings.size(), 1);
  CheckSound(q, vs, res.rewritings);
  CheckMatchesBucket(q, vs);
}

}  // namespace
}  // namespace aqv
