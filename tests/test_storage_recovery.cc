// Crash-injection property tests of the storage engine (the PR's core
// durability claim): a session runs a randomized mutation script with
// saves interleaved while the fault injector (storage/fault.h) kills the
// storage layer at *every* discrete fault point — and at sampled byte
// positions inside the write streams — and after each simulated crash a
// fresh session must reopen the directory to a consistent state:
//
//   1. never a parse error or torn manifest — reopen is either a clean
//      "opened: ..." or a clean "no committed database" NotFound;
//   2. the recovered state is byte-identical (views, facts, direct-route
//      answers) to the state of some *prefix* of the script, replayed in
//      memory;
//   3. the prefix includes every command the crashed session durably
//      acknowledged (an acked mutation or save survives the crash).
//
// The sweep is exhaustive over fault points per scenario: a counting pass
// (FaultArm(-1, -1)) measures how many points a clean run traverses, then
// each index is armed in turn against a fresh directory.

#include <unistd.h>

#include <cstdint>
#include <cstdio>
#include <set>
#include <string>
#include <vector>

#include "frontend/session.h"
#include "gtest/gtest.h"
#include "storage/fault.h"
#include "storage/fs.h"
#include "util/rng.h"

namespace aqv {
namespace {

/// A unique scratch directory, wiped before and after each use.
class ScratchDir {
 public:
  explicit ScratchDir(const std::string& tag) {
    char buf[256];
    std::snprintf(buf, sizeof(buf), "recovery_%s_%d", tag.c_str(),
                  static_cast<int>(::getpid()));
    path_ = buf;
    Wipe();
  }
  ~ScratchDir() { Wipe(); }

  const std::string& path() const { return path_; }

  void Wipe() {
    auto names = ListDir(path_);
    if (names.ok()) {
      for (const std::string& name : *names) {
        Status removed = RemoveFile(path_ + "/" + name);
        (void)removed;
      }
    }
    ::rmdir(path_.c_str());
  }

 private:
  std::string path_;
};

/// A randomized mutation script over a small fixed schema, with `save`
/// commands interleaved (dir stamped in by the runner). Only state
/// commands — probes live in the fingerprint, not the script.
std::vector<std::string> MakeScenario(uint64_t seed, const std::string& dir) {
  Rng rng(seed);
  std::vector<std::string> views = {
      "view v0(X, Y) :- e(X, Y).",
      "view v1(X) :- f(X, Y).",
      "view v2(X) :- e(X, Y), g(Y).",
  };
  std::vector<std::string> queries = {
      "query q(X) :- e(X, Y).",
      "query q(X) :- f(X, Y).",
      "query q(X, Z) :- e(X, Y), e(Y, Z).",
  };
  std::vector<std::string> script;
  script.push_back(views[0]);
  script.push_back(queries[seed % queries.size()]);
  int n = static_cast<int>(rng.NextInRange(6, 14));
  for (int i = 0; i < n; ++i) {
    double roll = rng.NextDouble();
    if (roll < 0.45) {
      const char* pred = rng.NextBool(0.5) ? "e" : "f";
      script.push_back("fact " + std::string(pred) + "(" +
                       std::to_string(rng.NextInRange(1, 9)) + ", " +
                       std::to_string(rng.NextInRange(1, 9)) + ").");
    } else if (roll < 0.55) {
      script.push_back("fact g(" + std::to_string(rng.NextInRange(1, 9)) +
                       ").");
    } else if (roll < 0.7) {
      script.push_back(
          views[static_cast<size_t>(rng.NextInRange(0, 2))]);
    } else if (roll < 0.8) {
      script.push_back(
          queries[static_cast<size_t>(rng.NextInRange(0, 2))]);
    } else if (roll < 0.92) {
      script.push_back("save " + dir);
    } else {
      // Retire: detaches the store; a later save re-attaches.
      script.push_back("reset");
    }
  }
  // Every scenario commits at least once so most sweeps cross a snapshot.
  script.push_back("save " + dir);
  script.push_back("fact e(7, 8).");
  return script;
}

/// The state fingerprint compared across recovery and prefix replay:
/// views, fact counts, and (when a query is set) the direct-route answer
/// rows — i.e. everything `answer` semantics depend on.
std::string Fingerprint(Session& session) {
  std::string fp = TranscriptLines(session.Execute("show views")) + "\n" +
                   TranscriptLines(session.Execute("show facts")) + "\n";
  if (session.query().has_value()) {
    fp += TranscriptLines(session.Execute("answer route direct")) + "\n";
  } else {
    fp += "no query\n";
  }
  return fp;
}

/// Replays `script[0..len)` through a fresh in-memory session (persistence
/// disabled, so `save` is a no-op failure) and fingerprints the result.
std::string PrefixFingerprint(const std::vector<std::string>& script,
                              size_t len) {
  SessionOptions options;
  options.enable_persist = false;
  Session session(options);
  for (size_t i = 0; i < len; ++i) {
    CommandResult r = session.Execute(script[i]);
    (void)r;
  }
  return Fingerprint(session);
}

struct CrashRun {
  bool crashed = false;
  std::string crash_site;
  /// Largest script index whose command was durably acknowledged: an ok
  /// `save`, or an ok mutation while a store was attached (journaled +
  /// fsync'd before the ack).
  int durable_floor = -1;
  bool any_save_acked = false;
};

/// Runs the script under whatever fault arming is active; the directory
/// afterwards is the simulated post-crash disk.
CrashRun RunCrashSession(const std::vector<std::string>& script) {
  CrashRun run;
  Session session;
  for (size_t i = 0; i < script.size(); ++i) {
    bool attached_before = session.store() != nullptr;
    bool is_save = script[i].rfind("save ", 0) == 0;
    CommandResult r = session.Execute(script[i]);
    if (r.ok() && (is_save || attached_before)) {
      run.durable_floor = static_cast<int>(i);
      if (is_save) run.any_save_acked = true;
    }
  }
  run.crashed = FaultCrashed();
  run.crash_site = FaultCrashSite();
  return run;
}

/// The recovery property, checked after every simulated crash.
void CheckRecovery(const std::vector<std::string>& script,
                   const std::string& dir, const CrashRun& run,
                   const std::string& label) {
  Session session;
  CommandResult opened = session.Execute("open " + dir);
  if (!opened.ok()) {
    // The only legitimate failure: nothing was ever committed. Torn
    // manifests, bad checksums, or unparseable rules must never surface.
    EXPECT_EQ(opened.status.code(), StatusCode::kNotFound)
        << label << ": reopen failed with " << opened.status.ToString();
    EXPECT_FALSE(run.any_save_acked)
        << label << ": an acked save vanished — " << opened.status.ToString();
    return;
  }
  std::string recovered = Fingerprint(session);
  size_t first_match = script.size() + 1;
  for (size_t len = static_cast<size_t>(run.durable_floor + 1);
       len <= script.size(); ++len) {
    if (PrefixFingerprint(script, len) == recovered) {
      first_match = len;
      break;
    }
  }
  EXPECT_LE(first_match, script.size())
      << label << " (crash at " << run.crash_site
      << "): recovered state matches no prefix >= durable floor "
      << run.durable_floor << "\nrecovered:\n"
      << recovered;
}

TEST(StorageRecoveryTest, CrashSweepOverEveryFaultPoint) {
  const int kScenarios = 24;
  uint64_t total_points = 0;
  uint64_t crashes_fired = 0;
  for (int s = 0; s < kScenarios; ++s) {
    ScratchDir dir("s" + std::to_string(s));
    std::vector<std::string> script =
        MakeScenario(static_cast<uint64_t>(s) + 1, dir.path());

    // Counting pass: how many discrete fault points does a clean run
    // traverse?
    FaultArm(-1, -1);
    RunCrashSession(script);
    FaultProbe probe = FaultDisarm();
    ASSERT_GT(probe.points, 0u) << "scenario " << s;
    total_points += probe.points;

    for (uint64_t i = 0; i < probe.points; ++i) {
      dir.Wipe();
      FaultArm(static_cast<int64_t>(i), -1);
      CrashRun run = RunCrashSession(script);
      FaultDisarm();
      if (run.crashed) ++crashes_fired;
      CheckRecovery(script, dir.path(), run,
                    "scenario " + std::to_string(s) + " point " +
                        std::to_string(i));
      if (HasFailure()) return;  // one detailed failure beats hundreds
    }
  }
  // The sweep is only meaningful if it actually crossed fault points and
  // fired crashes.
  EXPECT_GT(total_points, static_cast<uint64_t>(kScenarios) * 5);
  EXPECT_GT(crashes_fired, 0u);
}

TEST(StorageRecoveryTest, CrashSweepOverSampledBytePositions) {
  const int kScenarios = 20;
  const uint64_t kSamplesPerScenario = 8;
  uint64_t crashes_fired = 0;
  for (int s = 0; s < kScenarios; ++s) {
    ScratchDir dir("b" + std::to_string(s));
    std::vector<std::string> script =
        MakeScenario(static_cast<uint64_t>(s) + 101, dir.path());

    FaultArm(-1, -1);
    RunCrashSession(script);
    FaultProbe probe = FaultDisarm();
    ASSERT_GT(probe.bytes, 0u) << "scenario " << s;

    std::set<uint64_t> samples;
    for (uint64_t j = 0; j < kSamplesPerScenario; ++j) {
      samples.insert(probe.bytes * j / kSamplesPerScenario);
    }
    // Odd offsets tear records and segment values mid-field.
    samples.insert(probe.bytes / 3 + 1);
    for (uint64_t b : samples) {
      dir.Wipe();
      FaultArm(-1, static_cast<int64_t>(b));
      CrashRun run = RunCrashSession(script);
      FaultDisarm();
      if (run.crashed) ++crashes_fired;
      CheckRecovery(script, dir.path(), run,
                    "scenario " + std::to_string(s) + " byte " +
                        std::to_string(b));
      if (HasFailure()) return;
    }
  }
  EXPECT_GT(crashes_fired, 0u);
}

TEST(StorageRecoveryTest, CleanRunsRoundTripExactly) {
  // Control: with no faults armed, reopening after the full script must
  // reproduce the final state exactly (floor == last durable command).
  for (int s = 0; s < 5; ++s) {
    ScratchDir dir("clean" + std::to_string(s));
    std::vector<std::string> script =
        MakeScenario(static_cast<uint64_t>(s) + 201, dir.path());
    CrashRun run = RunCrashSession(script);
    ASSERT_FALSE(run.crashed);
    ASSERT_TRUE(run.any_save_acked);
    CheckRecovery(script, dir.path(), run, "clean " + std::to_string(s));
    if (HasFailure()) return;
  }
}

}  // namespace
}  // namespace aqv
