// Tests of the differential checking harness (frontend/differential.h):
// the answer-payload parser, the wire renderer, the mirror checker's
// byte-compare and semantic cross-checks, the response tamperer, the
// ddmin script shrinker, and the end-to-end TCP replay loop against a
// live FrontendServer — including the harness self-test, where an
// injected fault must be caught and shrunk. CI additionally runs this
// binary under ThreadSanitizer (the tsan-service job).

#include <algorithm>
#include <string>
#include <vector>

#include "frontend/differential.h"
#include "frontend/replay.h"
#include "frontend/server.h"
#include "frontend/session.h"
#include "gtest/gtest.h"
#include "workload/generator.h"

namespace aqv {
namespace {

const std::vector<std::string> kScript = {
    "% a hand-rolled differential script",
    "view v(X, Y) :- edge(X, Y), checked(Y).",
    "query q(X, Z) :- edge(X, Y), checked(Y), edge(Y, Z).",
    "fact edge(1, 2).",
    "fact checked(2).",
    "fact edge(2, 3).",
    "rewrite with lmss",
    "answer route direct",
    "answer route inverse-rules",
    "answer route cost",
    "quit"};

TEST(ParseAnswerPayloadTest, ParsesEngineFreeHeader) {
  auto parsed = ParseAnswerPayload("route direct: 1 answer (exact)\n(1, 3)");
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->route, "direct");
  EXPECT_EQ(parsed->engine, "");
  EXPECT_EQ(parsed->count, 1);
  EXPECT_TRUE(parsed->exact);
  ASSERT_EQ(parsed->rows.size(), 1u);
  EXPECT_EQ(parsed->rows[0], "(1, 3)");
}

TEST(ParseAnswerPayloadTest, ParsesEngineEchoAndCertainTag) {
  auto parsed = ParseAnswerPayload(
      "route complete (engine minicon): 2 answers (certain)\n(1, 2)\n(3, 4)");
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->route, "complete");
  EXPECT_EQ(parsed->engine, "minicon");
  EXPECT_EQ(parsed->count, 2);
  EXPECT_FALSE(parsed->exact);
  EXPECT_EQ(parsed->rows.size(), 2u);
}

TEST(ParseAnswerPayloadTest, RejectsMalformedPayloads) {
  EXPECT_FALSE(ParseAnswerPayload("").ok());
  EXPECT_FALSE(ParseAnswerPayload("added view v").ok());
  EXPECT_FALSE(ParseAnswerPayload("route direct: x answers (exact)").ok());
  EXPECT_FALSE(ParseAnswerPayload("route direct: 1 answer").ok());
  // Count noun must agree with the count.
  EXPECT_FALSE(ParseAnswerPayload("route direct: 2 answer (exact)").ok());
  // Row lines must look like tuples.
  EXPECT_FALSE(
      ParseAnswerPayload("route direct: 1 answer (exact)\nnot a row").ok());
}

TEST(DifferentialTest, RenderWireResponseMatchesProtocol) {
  CommandResult ok_result;
  ok_result.output = "added view v";
  EXPECT_EQ(RenderWireResponse(ok_result), "added view v\nok\n");
  CommandResult empty;
  EXPECT_EQ(RenderWireResponse(empty), "ok\n");
  CommandResult err;
  err.status = Status::InvalidArgument("nope");
  EXPECT_EQ(RenderWireResponse(err), "err InvalidArgument: nope\n");
}

TEST(DifferentialTest, IsCheckableExcludesNonDeterministicCommands) {
  EXPECT_FALSE(MirrorChecker::IsCheckable(""));
  EXPECT_FALSE(MirrorChecker::IsCheckable("% comment"));
  EXPECT_FALSE(MirrorChecker::IsCheckable("# comment"));
  EXPECT_FALSE(MirrorChecker::IsCheckable("show stats"));
  EXPECT_FALSE(MirrorChecker::IsCheckable("STATS"));
  EXPECT_FALSE(MirrorChecker::IsCheckable("load x.aqv"));
  EXPECT_TRUE(MirrorChecker::IsCheckable("show views"));
  EXPECT_TRUE(MirrorChecker::IsCheckable("answer route direct"));
  EXPECT_TRUE(MirrorChecker::IsCheckable("quit"));
}

/// Feeds the checker the honest wire rendering of a second, identical
/// session — the in-process stand-in for a well-behaved server.
TEST(DifferentialTest, HonestResponsesProduceNoDivergence) {
  Session honest;
  MirrorChecker checker;
  for (const std::string& line : kScript) {
    std::string raw = RenderWireResponse(honest.Execute(line));
    auto divergence = checker.Check(line, raw);
    EXPECT_FALSE(divergence.has_value())
        << line << ": " << divergence->ToString();
  }
  EXPECT_EQ(checker.answers_checked(), 3u);
  EXPECT_EQ(checker.rewrites_checked(), 1u);
}

TEST(DifferentialTest, TamperedAnswerIsCaught) {
  Session honest;
  MirrorChecker checker;
  bool caught = false;
  for (const std::string& line : kScript) {
    std::string raw = RenderWireResponse(honest.Execute(line));
    if (line == "answer route direct") {
      ASSERT_TRUE(FlipOneAnswer(&raw));
    }
    auto divergence = checker.Check(line, raw);
    if (divergence.has_value()) {
      EXPECT_EQ(divergence->kind, "wire-mismatch");
      EXPECT_EQ(divergence->command, "answer route direct");
      caught = true;
      break;
    }
  }
  EXPECT_TRUE(caught);
}

TEST(DifferentialTest, FlipOneAnswerOnlyTouchesAnswerResponses) {
  std::string not_answer = "added view v\nok\n";
  EXPECT_FALSE(FlipOneAnswer(&not_answer));
  EXPECT_EQ(not_answer, "added view v\nok\n");
  std::string answer = "route direct: 1 answer (exact)\n(1, 3)\nok\n";
  std::string before = answer;
  EXPECT_TRUE(FlipOneAnswer(&answer));
  EXPECT_NE(answer, before);
}

TEST(DifferentialTest, ShrinkScriptFindsTheMinimalCore) {
  std::vector<std::string> lines = {"a", "b", "c", "d", "e", "f", "g"};
  auto still = [](const std::vector<std::string>& candidate) {
    return std::count(candidate.begin(), candidate.end(), "b") > 0 &&
           std::count(candidate.begin(), candidate.end(), "f") > 0;
  };
  std::vector<std::string> shrunk = ShrinkScript(lines, still);
  EXPECT_EQ(shrunk, (std::vector<std::string>{"b", "f"}));
}

TEST(DifferentialTest, ShrinkScriptPreservesOrder) {
  std::vector<std::string> lines;
  for (int i = 0; i < 40; ++i) lines.push_back("x" + std::to_string(i));
  auto still = [](const std::vector<std::string>& candidate) {
    // The divergence needs x3 before x37.
    auto a = std::find(candidate.begin(), candidate.end(), "x3");
    auto b = std::find(candidate.begin(), candidate.end(), "x37");
    return a != candidate.end() && b != candidate.end() && a < b;
  };
  std::vector<std::string> shrunk = ShrinkScript(lines, still);
  EXPECT_EQ(shrunk, (std::vector<std::string>{"x3", "x37"}));
}

TEST(DifferentialTest, TcpReplayAgainstLiveServerIsClean) {
  FrontendServer server;
  ASSERT_TRUE(server.Start().ok());
  auto result = ReplayAndCheckOverTcp(server.port(), kScript, {});
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_FALSE(result->divergence.has_value())
      << result->divergence->ToString();
  EXPECT_EQ(result->commands_sent, static_cast<int>(kScript.size()));
  EXPECT_EQ(result->answers_checked, 3u);
  EXPECT_EQ(result->rewrites_checked, 1u);
  server.Stop();
}

TEST(DifferentialTest, TcpReplayOfGeneratedSoakScriptIsClean) {
  GeneratedScenarioSpec spec;
  spec.seed = 31;
  spec.num_predicates = 8;
  spec.num_views = 15;
  spec.facts_per_predicate = 6;
  spec.domain_size = 12;
  auto scenario = GenerateScenario(spec);
  ASSERT_TRUE(scenario.ok());
  SoakScriptOptions sopts;
  sopts.seed = 5;
  sopts.churn_cycles = 1;
  auto script = SoakScriptFromScenario(*scenario, sopts);
  ASSERT_TRUE(script.ok());

  FrontendServer server;
  ASSERT_TRUE(server.Start().ok());
  auto result = ReplayAndCheckOverTcp(
      server.port(), SplitScriptLines(script->text), {});
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_FALSE(result->divergence.has_value())
      << result->divergence->ToString();
  EXPECT_EQ(result->answers_checked,
            static_cast<uint64_t>(script->answer_probes));
  EXPECT_EQ(result->rewrites_checked,
            static_cast<uint64_t>(script->rewrite_probes));
  server.Stop();
}

/// The end-to-end self-test the soak driver's --inject-fault-at mode
/// relies on: a tampered response over real TCP is caught, and the
/// diverging script shrinks to a minimal repro that still diverges under
/// the re-injected fault.
TEST(DifferentialTest, InjectedFaultIsCaughtAndShrinksToAMinimalRepro) {
  FrontendServer server;
  ASSERT_TRUE(server.Start().ok());

  TcpReplayOptions inject;
  inject.tamper_at_answer = 0;
  auto result = ReplayAndCheckOverTcp(server.port(), kScript, inject);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_TRUE(result->divergence.has_value());
  EXPECT_EQ(result->divergence->kind, "wire-mismatch");
  EXPECT_EQ(result->divergence->command, "answer route direct");

  TcpReplayOptions reinject;
  reinject.tamper_match = result->divergence->command;
  auto still = [&](const std::vector<std::string>& candidate) {
    auto replay = ReplayAndCheckOverTcp(server.port(), candidate, reinject);
    return replay.ok() && replay->divergence.has_value();
  };
  ASSERT_TRUE(still(kScript));
  std::vector<std::string> shrunk = ShrinkScript(kScript, still);
  EXPECT_LT(shrunk.size(), kScript.size());
  // The core: a query to answer and the tampered probe itself.
  EXPECT_NE(std::find(shrunk.begin(), shrunk.end(), "answer route direct"),
            shrunk.end());
  server.Stop();
}

}  // namespace
}  // namespace aqv
