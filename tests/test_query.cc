#include <gtest/gtest.h>

#include "cq/canonical_db.h"
#include "cq/parser.h"
#include "cq/query.h"
#include "cq/substitution.h"

namespace aqv {
namespace {

class QueryTest : public ::testing::Test {
 protected:
  Catalog cat_;
  Query Parse(const std::string& s) { return ParseQuery(s, &cat_).value(); }
};

TEST_F(QueryTest, HeadVarsInOrderOfAppearance) {
  Query q = Parse("q(Y, X, Y) :- r(X, Y).");
  std::vector<VarId> hv = q.HeadVars();
  ASSERT_EQ(hv.size(), 2u);
  EXPECT_EQ(q.var_name(hv[0]), "Y");
  EXPECT_EQ(q.var_name(hv[1]), "X");
}

TEST_F(QueryTest, DistinguishedMask) {
  Query q = Parse("q(X) :- r(X, Y), s(Y, Z).");
  auto mask = q.DistinguishedMask();
  int count = 0;
  for (bool b : mask) count += b;
  EXPECT_EQ(count, 1);
}

TEST_F(QueryTest, VarOccurrences) {
  Query q = Parse("q(X) :- r(X, Y), s(Y, Z), t(X).");
  auto occ = q.VarOccurrences();
  // X occurs in atoms 0 and 2; Y in 0 and 1; Z in 1.
  EXPECT_EQ(occ[0], (std::vector<int>{0, 2}));
  EXPECT_EQ(occ[1], (std::vector<int>{0, 1}));
  EXPECT_EQ(occ[2], (std::vector<int>{1}));
}

TEST_F(QueryTest, RemoveBodyAtom) {
  Query q = Parse("q(X) :- r(X, Y), s(Y, Z), t(X).");
  q.RemoveBodyAtom(1);
  ASSERT_EQ(q.body().size(), 2u);
  EXPECT_EQ(cat_.pred(q.body()[1].pred).name, "t");
}

TEST_F(QueryTest, CanonicalKeyInvariantUnderRenaming) {
  Query a = Parse("q(X, Y) :- r(X, Z), s(Z, Y).");
  Query b = Parse("q(U, V) :- s(W, V), r(U, W).");  // reordered + renamed
  EXPECT_EQ(a.CanonicalKey(), b.CanonicalKey());
}

TEST_F(QueryTest, CanonicalKeySeparatesHeadPermutation) {
  Query a = Parse("qc(X, Y) :- r(X, Y).");
  Query b = Parse("qd(Y, X) :- r(X, Y).");
  EXPECT_NE(a.CanonicalKey(), b.CanonicalKey());
}

TEST_F(QueryTest, CanonicalKeySeparatesStructures) {
  Query a = Parse("qe(X) :- r(X, Y), r(Y, X).");
  Query b = Parse("qf(X) :- r(X, Y), r(X, Y).");
  EXPECT_NE(a.CanonicalKey(), b.CanonicalKey());
}

TEST_F(QueryTest, CanonicalKeySeesComparisons) {
  Query a = Parse("qg(X) :- r(X, Y), X < 3.");
  Query b = Parse("qh(X) :- r(X, Y), Y < 3.");
  EXPECT_NE(a.CanonicalKey(), b.CanonicalKey());
}

TEST_F(QueryTest, FingerprintInvariantUnderRenaming) {
  Query a = Parse("q(X, Y) :- r(X, Z), s(Z, Y).");
  Query b = Parse("q(U, V) :- s(W, V), r(U, W).");  // reordered + renamed
  EXPECT_EQ(a.Fingerprint(), b.Fingerprint());
  EXPECT_TRUE(a.CanonicalForm() == b.CanonicalForm());
}

TEST_F(QueryTest, FingerprintSeparatesHeadPermutation) {
  // Same head predicate: only the argument order distinguishes them.
  Query a = Parse("qperm(X, Y) :- r(X, Y).");
  Query b = Parse("qperm(Y, X) :- r(X, Y).");
  EXPECT_NE(a.Fingerprint(), b.Fingerprint());
}

TEST_F(QueryTest, FingerprintSeparatesStructures) {
  Query a = Parse("qe(X) :- r(X, Y), r(Y, X).");
  Query b = Parse("qf(X) :- r(X, Y), r(X, Y).");
  EXPECT_NE(a.Fingerprint(), b.Fingerprint());
}

TEST_F(QueryTest, FingerprintSeesComparisons) {
  Query a = Parse("qg(X) :- r(X, Y), X < 3.");
  Query b = Parse("qh(X) :- r(X, Y), Y < 3.");
  EXPECT_NE(a.Fingerprint(), b.Fingerprint());
}

TEST_F(QueryTest, FingerprintMatchesStructuralHashOfCanonicalForm) {
  Query q = Parse("qi(X) :- r(X, Y), s(Y, Z), Z < 5.");
  EXPECT_EQ(q.Fingerprint(), StructuralHash(q.CanonicalForm()));
}

TEST_F(QueryTest, CanonicalFormCollapsesDuplicateAtomsAndUnusedVars) {
  Query a = Parse("qj(X) :- r(X, Y), r(X, Y).");
  Query b = Parse("qj(X) :- r(X, Y).");
  EXPECT_TRUE(a.CanonicalForm() == b.CanonicalForm());
  Query c = Parse("qk(X) :- r(X, Y), s(Y, Z).");
  Query form = c.CanonicalForm();
  EXPECT_TRUE(form.Validate().ok());
  EXPECT_EQ(form.num_vars(), 3);
}

TEST_F(QueryTest, ValidateRejectsArityTamper) {
  Query q = Parse("q(X) :- r(X, Y).");
  Query broken = q;
  Atom bad = q.body()[0];
  bad.args.pop_back();
  broken.RemoveBodyAtom(0);
  broken.AddBodyAtom(bad);
  EXPECT_FALSE(broken.Validate().ok());
}

TEST_F(QueryTest, UnionToStringListsDisjuncts) {
  UnionQuery u;
  u.disjuncts.push_back(Parse("q(X) :- a(X)."));
  u.disjuncts.push_back(Parse("q(X) :- b(X)."));
  std::string s = u.ToString();
  EXPECT_NE(s.find("a(X)"), std::string::npos);
  EXPECT_NE(s.find("b(X)"), std::string::npos);
}

TEST_F(QueryTest, SubstitutionBindAndRollback) {
  Substitution s(3);
  EXPECT_FALSE(s.IsBound(0));
  size_t cp = s.Checkpoint();
  s.Bind(0, Term::Var(7));
  EXPECT_TRUE(s.IsBound(0));
  EXPECT_TRUE(s.BindOrCheck(0, Term::Var(7)));
  EXPECT_FALSE(s.BindOrCheck(0, Term::Var(8)));
  s.Rollback(cp);
  EXPECT_FALSE(s.IsBound(0));
}

TEST_F(QueryTest, SubstitutionApplyToAtom) {
  Query q = Parse("q(X) :- r(X, Y).");
  Substitution s(q.num_vars());
  s.Bind(0, Term::Const(cat_.InternConstant("9")));
  Atom img = s.ApplyToAtom(q.body()[0]);
  EXPECT_TRUE(img.args[0].is_const());
  EXPECT_TRUE(img.args[1].is_var());  // unbound maps to itself
}

TEST_F(QueryTest, VarImporterFreshensExistentials) {
  Query src = Parse("v(X) :- r(X, Y).");
  Query dst(&cat_);
  VarId a = dst.AddVariable("A");
  VarImporter imp(src, &dst, "i_");
  imp.Preset(0, Term::Var(a));  // X -> A
  Atom img = imp.ImportAtom(src.body()[0]);
  EXPECT_EQ(img.args[0], Term::Var(a));
  EXPECT_TRUE(img.args[1].is_var());
  EXPECT_NE(img.args[1], Term::Var(a));
  EXPECT_EQ(dst.num_vars(), 2);  // A plus imported Y
}

TEST_F(QueryTest, RenameVariablesKeepsStructure) {
  Query q = Parse("q(X) :- r(X, Y), X < 2.");
  Query r = RenameVariables(q, "z");
  EXPECT_EQ(r.num_vars(), q.num_vars());
  EXPECT_EQ(r.body(), q.body());
  EXPECT_EQ(r.var_name(0), "z0");
}

TEST_F(QueryTest, FreezeQueryGroundsEverything) {
  Query q = Parse("q(X) :- r(X, Y), s(Y, 3).");
  FrozenQuery fz = FreezeQuery(q, &cat_);
  EXPECT_EQ(fz.var_to_const.size(), 2u);
  for (const Atom& a : fz.frozen.body()) {
    for (Term t : a.args) EXPECT_TRUE(t.is_const());
  }
  for (Term t : fz.frozen.head().args) EXPECT_TRUE(t.is_const());
  // Distinct variables freeze to distinct constants.
  EXPECT_NE(fz.var_to_const[0], fz.var_to_const[1]);
}

TEST_F(QueryTest, FreezeTwiceYieldsDifferentConstants) {
  Query q = Parse("q(X) :- r(X).");
  FrozenQuery a = FreezeQuery(q, &cat_);
  FrozenQuery b = FreezeQuery(q, &cat_);
  EXPECT_NE(a.var_to_const[0], b.var_to_const[0]);
}

}  // namespace
}  // namespace aqv
