// Session-level persistence tests: save -> open -> answer must be
// byte-identical to a session that never touched disk, across all four
// answer routes and both ColumnStore backends (in-memory columnar and
// read-only mmap); the persisted soak script must replay cleanly over a
// live TCP server against the in-memory differential mirror; and the
// resource contract of `reset` — detaching a store releases every
// descriptor (journal fd, directory lock), so open/reset cycles hold no
// fds. Concurrent sessions over distinct stores run under TSan in CI.

#include <dirent.h>
#include <unistd.h>

#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "frontend/differential.h"
#include "frontend/replay.h"
#include "frontend/server.h"
#include "frontend/session.h"
#include "gtest/gtest.h"
#include "storage/fault.h"
#include "storage/fs.h"
#include "workload/generator.h"

namespace aqv {
namespace {

class ScratchDir {
 public:
  explicit ScratchDir(const std::string& tag) {
    char buf[256];
    std::snprintf(buf, sizeof(buf), "persist_%s_%d", tag.c_str(),
                  static_cast<int>(::getpid()));
    path_ = buf;
    Wipe();
  }
  ~ScratchDir() { Wipe(); }

  const std::string& path() const { return path_; }

  void Wipe() {
    auto names = ListDir(path_);
    if (names.ok()) {
      for (const std::string& name : *names) {
        // Best-effort scratch cleanup; a leftover file fails the next run.
        AQV_DISCARD_STATUS(RemoveFile(path_ + "/" + name));
      }
    }
    ::rmdir(path_.c_str());
  }

 private:
  std::string path_;
};

/// A problem every route can answer: views mirror the base predicates, so
/// a complete (equivalent) rewriting exists.
const char* const kProblem[] = {
    "view v_edge(X, Y) :- e(X, Y).",
    "view v_good(X) :- g(X).",
    "view v_pair(X, Z) :- e(X, Y), e(Y, Z).",
    "query q(X, Z) :- e(X, Y), e(Y, Z), g(Z).",
    "fact e(1, 2).",
    "fact e(2, 3).",
    "fact e(3, 4).",
    "fact e(2, 5).",
    "fact g(3).",
    "fact g(4).",
    "fact g(5).",
};

const char* const kRoutes[] = {"direct", "complete", "inverse-rules", "cost"};

void LoadProblem(Session& session) {
  for (const char* line : kProblem) {
    CommandResult r = session.Execute(line);
    ASSERT_TRUE(r.ok()) << line << ": " << r.status.ToString();
  }
}

/// TranscriptLines of `answer route <r>` for every route, '\n'-joined.
std::string AnswerAllRoutes(Session& session) {
  std::string out;
  for (const char* route : kRoutes) {
    out += TranscriptLines(session.Execute(std::string("answer route ") +
                                           route)) +
           "\n";
  }
  return out;
}

TEST(StoragePersistenceTest, SaveOpenAnswersByteIdenticalBothBackends) {
  // Ground truth: a session that never touches disk.
  Session memory;
  LoadProblem(memory);
  std::string expected = AnswerAllRoutes(memory);
  ASSERT_NE(expected.find("(exact)"), std::string::npos);

  for (bool use_mmap : {false, true}) {
    ScratchDir dir(use_mmap ? "mmap" : "columnar");
    {
      SessionOptions options;
      options.storage.use_mmap = use_mmap;
      Session writer(options);
      LoadProblem(writer);
      CommandResult saved = writer.Execute("save " + dir.path());
      ASSERT_TRUE(saved.ok()) << saved.status.ToString();
      EXPECT_EQ(saved.output, "saved: 3 views, 7 facts, query set");
    }
    SessionOptions options;
    options.storage.use_mmap = use_mmap;
    Session reader(options);
    CommandResult opened = reader.Execute("open " + dir.path());
    ASSERT_TRUE(opened.ok()) << opened.status.ToString();
    EXPECT_EQ(opened.output,
              "opened: 3 views, 7 facts, query set (journal: 0 commands)");
    EXPECT_EQ(AnswerAllRoutes(reader), expected)
        << (use_mmap ? "mmap" : "columnar");
  }
}

// Error-discipline regression: a mutation whose journal append fails must
// surface that failure to the user — the fact applied in memory but is NOT
// durable, and reporting "ok" would quietly promise durability the disk
// never delivered. The [[nodiscard]] audit hardened exactly this path
// (Session::Journaled turns an Append error into the command's status).
TEST(StoragePersistenceTest, JournalAppendFailureSurfacesToUser) {
  ScratchDir dir("journalfail");
  Session writer;
  LoadProblem(writer);
  ASSERT_TRUE(writer.Execute("save " + dir.path()).ok());

  // Arm the injector: the next durable fault point is the journal fsync
  // of the upcoming `fact` append.
  FaultArm(0, -1);
  CommandResult mutated = writer.Execute("fact e(9, 9).");
  FaultProbe probe = FaultDisarm();
  ASSERT_GT(probe.points, 0u) << "append path traversed no fault point";
  EXPECT_FALSE(mutated.ok())
      << "journal append failed but the command reported success";
  EXPECT_EQ(mutated.status.code(), StatusCode::kInternal);

  // The session itself stays usable; the mutation is visible in memory
  // (kProblem loads 4 e-tuples; the failed-to-journal fact is the 5th).
  CommandResult shown = writer.Execute("show facts");
  EXPECT_TRUE(shown.ok());
  EXPECT_NE(shown.output.find("e: 5 tuples"), std::string::npos)
      << shown.output;
}

TEST(StoragePersistenceTest, JournaledMutationsSurviveReopen) {
  ScratchDir dir("journal");
  std::string expected;
  {
    Session writer;
    LoadProblem(writer);
    ASSERT_TRUE(writer.Execute("save " + dir.path()).ok());
    // Mutations after the snapshot ride the journal, no re-save.
    ASSERT_TRUE(writer.Execute("fact e(5, 6).").ok());
    ASSERT_TRUE(writer.Execute("fact g(6).").ok());
    ASSERT_TRUE(writer.Execute("view v_self(X) :- e(X, X).").ok());
    expected = AnswerAllRoutes(writer);
  }
  Session reader;
  CommandResult opened = reader.Execute("open " + dir.path());
  ASSERT_TRUE(opened.ok()) << opened.status.ToString();
  EXPECT_EQ(opened.output,
            "opened: 4 views, 9 facts, query set (journal: 3 commands)");
  EXPECT_EQ(AnswerAllRoutes(reader), expected);
}

TEST(StoragePersistenceTest, PersistedSoakScriptReplaysAgainstMirror) {
  // The end-to-end wiring: a generated scenario's save/open churn script
  // replayed over a real TCP server in lock-step with the in-memory
  // mirror. The mirror skips save/open, so every answer byte-compare
  // after an `open` is a persistence round trip.
  ScratchDir dir("soak");
  GeneratedScenarioSpec spec;
  spec.seed = 7;
  spec.num_predicates = 6;
  spec.num_views = 10;
  spec.query_atoms = 2;
  spec.guarantee_equivalent = true;
  spec.facts_per_predicate = 6;
  spec.domain_size = 12;
  auto scenario = GenerateScenario(spec);
  ASSERT_TRUE(scenario.ok()) << scenario.status().ToString();

  SoakScriptOptions sopts;
  sopts.seed = 11;
  sopts.churn_cycles = 2;
  sopts.persist_dir = dir.path();
  auto script = SoakScriptFromScenario(*scenario, sopts);
  ASSERT_TRUE(script.ok()) << script.status().ToString();
  EXPECT_GT(script->saves, 0);
  EXPECT_GT(script->opens, 0);

  FrontendServer server;
  ASSERT_TRUE(server.Start().ok());
  auto result =
      ReplayAndCheckOverTcp(server.port(), SplitScriptLines(script->text), {});
  server.Stop();
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_FALSE(result->divergence.has_value())
      << result->divergence->ToString();
  EXPECT_GT(result->answers_checked, 0u);
}

/// Open descriptors of this process (via /proc/self/fd, Linux).
int CountOpenFds() {
  DIR* dir = ::opendir("/proc/self/fd");
  if (dir == nullptr) return -1;
  int n = 0;
  while (::readdir(dir) != nullptr) ++n;
  ::closedir(dir);
  return n;
}

TEST(StoragePersistenceTest, OpenResetCyclesLeakNoFds) {
  ScratchDir dir("fds");
  {
    Session writer;
    LoadProblem(writer);
    ASSERT_TRUE(writer.Execute("save " + dir.path()).ok());
  }
  Session session;
  int baseline = CountOpenFds();
  if (baseline < 0) GTEST_SKIP() << "/proc/self/fd not available";
  for (int i = 0; i < 16; ++i) {
    ASSERT_TRUE(session.Execute("open " + dir.path()).ok()) << "cycle " << i;
    ASSERT_NE(session.store(), nullptr);
    ASSERT_TRUE(session.Execute("reset").ok()) << "cycle " << i;
    ASSERT_EQ(session.store(), nullptr);
    // Detached again: the journal fd, the lock fd, and the mmaps are gone.
    EXPECT_EQ(CountOpenFds(), baseline) << "cycle " << i;
  }
  // reset journaled each cycle; the journal is 16 resets long now, and a
  // final open replays them into an empty session.
  CommandResult opened = session.Execute("open " + dir.path());
  ASSERT_TRUE(opened.ok());
  EXPECT_EQ(opened.output,
            "opened: 0 views, 0 facts, query unset (journal: 16 commands)");
}

TEST(StoragePersistenceTest, ConcurrentSessionsOverDistinctStores) {
  // One store per session is the concurrency contract (the directory
  // lock enforces exclusivity); N threads with N directories must not
  // interfere. This binary runs under TSan in CI.
  const int kThreads = 4;
  std::vector<ScratchDir> dirs;
  dirs.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    dirs.emplace_back("thread" + std::to_string(t));
  }
  std::vector<std::string> results(kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t, &dirs, &results] {
      const std::string& dir = dirs[static_cast<size_t>(t)].path();
      {
        Session writer;
        for (const char* line : kProblem) {
          if (!writer.Execute(line).ok()) return;
        }
        if (!writer.Execute("save " + dir).ok()) return;
        // One journaled mutation past the snapshot.
        if (!writer.Execute("fact e(7, 8).").ok()) return;
        // While the writer holds the flock, nobody else can attach.
        Session contender;
        if (contender.Execute("open " + dir).ok()) return;
      }  // writer destruction releases the lock
      Session reader;
      if (!reader.Execute("open " + dir).ok()) return;
      results[static_cast<size_t>(t)] = AnswerAllRoutes(reader);
    });
  }
  for (std::thread& thread : threads) thread.join();
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_FALSE(results[static_cast<size_t>(t)].empty()) << "thread " << t;
    EXPECT_EQ(results[static_cast<size_t>(t)], results[0]);
  }
}

TEST(StoragePersistenceTest, LockedDirectoryRejectsSecondSession) {
  ScratchDir dir("locked");
  Session first;
  LoadProblem(first);
  ASSERT_TRUE(first.Execute("save " + dir.path()).ok());
  Session second;
  CommandResult r = second.Execute("open " + dir.path());
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status.code(), StatusCode::kResourceExhausted);
  // The failed open left `second` untouched and detached.
  EXPECT_EQ(second.store(), nullptr);
  // After the first session lets go, the second can attach.
  ASSERT_TRUE(first.Execute("reset").ok());
  EXPECT_TRUE(second.Execute("open " + dir.path()).ok());
}

TEST(StoragePersistenceTest, PersistCanBeDisabled) {
  SessionOptions options;
  options.enable_persist = false;
  Session session(options);
  CommandResult r = session.Execute("save anywhere");
  EXPECT_EQ(r.status.code(), StatusCode::kUnimplemented);
  EXPECT_EQ(session.Execute("open anywhere").status.code(),
            StatusCode::kUnimplemented);
}

}  // namespace
}  // namespace aqv
