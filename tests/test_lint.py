#!/usr/bin/env python3
"""Unit and end-to-end tests for tools/lint/aqv_lint.py.

Complements `aqv_lint --fixtures` (which proves every rule fires and
passes on committed fixture files) with checker-internals coverage — the
comment/string/digit-separator stripper, suppression parsing, guard
derivation — and subprocess-level gate proofs: a seeded layering
violation and a seeded unchecked-Status-style discard annotation must
fail a full run, and a clean synthetic tree must pass. Stdlib only.
"""

import os
import shutil
import subprocess
import sys
import tempfile
import unittest

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
LINT = os.path.join(REPO_ROOT, "tools", "lint", "aqv_lint.py")
sys.path.insert(0, os.path.dirname(LINT))

import aqv_lint  # noqa: E402


def findings_for(path, text):
    out = []
    aqv_lint.check_file(path, text, out)
    return [(f.line, f.rule) for f in out]


class StripCodeTest(unittest.TestCase):
    def test_preserves_line_structure(self):
        text = ('int a; // rand(\n/* throw\nthrow */ int b;\n'
                'const char* s = "fsync(";\n')
        stripped = aqv_lint.strip_code(text)
        self.assertEqual(text.count("\n"), stripped.count("\n"))
        self.assertNotIn("rand(", stripped)
        self.assertNotIn("throw", stripped)
        self.assertNotIn("fsync(", stripped)

    def test_digit_separators_are_not_char_literals(self):
        # The original stripper treated 100'000's apostrophe as an opening
        # quote and swallowed everything to the next apostrophe — lines,
        # violations, and all.
        text = "uint64_t cap = 100'000;\nint bad = rand();\n"
        stripped = aqv_lint.strip_code(text)
        self.assertIn("rand()", stripped)
        self.assertEqual(stripped.count("\n"), 2)

    def test_char_literals_still_stripped(self):
        stripped = aqv_lint.strip_code("char c = 'x'; char q = '\\'';\n")
        self.assertNotIn("x", stripped)

    def test_raw_strings(self):
        text = 'const char* r = R"(rand() throw\nfsync()derp)";\nint x;\n'
        stripped = aqv_lint.strip_code(text)
        self.assertNotIn("rand", stripped)
        self.assertEqual(stripped.count("\n"), text.count("\n"))


class RuleScopingTest(unittest.TestCase):
    def test_layering_reads_path_from_raw_line(self):
        # String literals are blanked by the stripper; the include path
        # must still be recovered (regression: every edge once read as "").
        hits = findings_for("src/util/x.cc", '#include "cq/query.h"\n')
        self.assertIn((1, "layering"), hits)

    def test_commented_include_is_not_an_edge(self):
        hits = findings_for("src/util/x.cc",
                            '// #include "frontend/server.h"\n')
        self.assertEqual(hits, [])

    def test_eval_rewriting_cycle_is_legal_both_ways(self):
        self.assertEqual(
            findings_for("src/eval/a.cc",
                         '#include "rewriting/inverse_rules.h"\n'), [])
        self.assertEqual(
            findings_for("src/rewriting/b.cc",
                         '#include "eval/database.h"\n'), [])

    def test_only_frontend_reaches_service(self):
        self.assertEqual(
            findings_for("src/frontend/x.cc",
                         '#include "service/service.h"\n'), [])
        self.assertIn(
            (1, "layering"),
            findings_for("src/storage/x.cc",
                         '#include "service/service.h"\n'))

    def test_nothing_includes_frontend(self):
        for module in ("util", "service", "workload", "storage"):
            self.assertIn(
                (1, "layering"),
                findings_for("src/%s/x.cc" % module,
                             '#include "frontend/session.h"\n'))

    def test_tests_and_bench_are_exempt_from_layering(self):
        text = '#include "frontend/server.h"\n#include "service/service.h"\n'
        self.assertEqual(findings_for("tests/test_x.cc", text), [])
        self.assertEqual(findings_for("bench/bench_x.cc", text), [])

    def test_determinism_applies_to_tests_too(self):
        self.assertIn((1, "determinism"),
                      findings_for("tests/test_x.cc", "int r = rand();\n"))

    def test_storage_fs_exempts_fs_cc_only(self):
        call = "int rc = fsync(fd);\n"
        self.assertEqual(findings_for("src/storage/fs.cc", call), [])
        self.assertIn((1, "storage-fs"),
                      findings_for("src/storage/store.cc", call))

    def test_nodiscard_checks_headers_not_impls(self):
        decl = "Status Frob(int x);\n"
        self.assertIn((1, "nodiscard-decl"),
                      findings_for("src/cq/x.h", decl))
        self.assertEqual(findings_for("src/cq/x.cc", decl), [])

    def test_nodiscard_accepts_prev_line_attribute(self):
        text = ("#ifndef AQV_CQ_X_H_\n#define AQV_CQ_X_H_\n"
                "[[nodiscard]]\nStatus Frob(int x);\n"
                "#endif  // AQV_CQ_X_H_\n")
        self.assertEqual(findings_for("src/cq/x.h", text), [])


class SuppressionTest(unittest.TestCase):
    def test_same_line_disable(self):
        hits = findings_for(
            "src/cq/x.cc",
            "int r = rand();  // aqv-lint: disable=determinism\n")
        self.assertEqual(hits, [])

    def test_disable_next_line(self):
        hits = findings_for(
            "src/cq/x.cc",
            "// aqv-lint: disable-next-line=determinism\nint r = rand();\n")
        self.assertEqual(hits, [])

    def test_disable_wrong_rule_does_not_silence(self):
        hits = findings_for(
            "src/cq/x.cc",
            "int r = rand();  // aqv-lint: disable=no-throw\n")
        self.assertIn((1, "determinism"), hits)

    def test_unknown_rule_is_a_finding(self):
        hits = findings_for(
            "src/cq/x.cc", "int x;  // aqv-lint: disable=bogus-rule\n")
        self.assertIn((1, "suppression"), hits)


class GuardTest(unittest.TestCase):
    def test_expected_guard_derivation(self):
        self.assertEqual(aqv_lint.expected_guard("src/eval/mmap_store.h"),
                         "AQV_EVAL_MMAP_STORE_H_")

    def test_wrong_guard_flagged_at_ifndef_line(self):
        text = "// hi\n\n#ifndef WRONG_H\n#define WRONG_H\n#endif\n"
        self.assertIn((3, "include-guard"),
                      findings_for("src/cq/term.h", text))

    def test_missing_guard_flagged(self):
        self.assertIn((1, "include-guard"),
                      findings_for("src/cq/term.h", "#pragma once\nint x;\n"))


class DagSanityTest(unittest.TestCase):
    def test_allowed_covers_every_module(self):
        self.assertEqual(set(aqv_lint.ALLOWED), set(aqv_lint.MODULES))
        for module, deps in aqv_lint.ALLOWED.items():
            self.assertIn(module, deps)
            self.assertTrue(deps <= set(aqv_lint.MODULES))

    def test_the_only_cycle_is_eval_rewriting(self):
        cycles = []
        for a in aqv_lint.MODULES:
            for b in aqv_lint.ALLOWED[a]:
                if a != b and a in aqv_lint.ALLOWED[b]:
                    cycles.append(tuple(sorted((a, b))))
        self.assertEqual(sorted(set(cycles)), [("eval", "rewriting")])


class EndToEndGateTest(unittest.TestCase):
    """Subprocess-level proof that the gate gates: seeded violations in a
    synthetic tree must fail the run; the clean version must pass."""

    def setUp(self):
        self.root = tempfile.mkdtemp(prefix="aqv_lint_e2e_")
        os.makedirs(os.path.join(self.root, "src", "util"))

    def tearDown(self):
        shutil.rmtree(self.root, ignore_errors=True)

    def write(self, rel, text):
        path = os.path.join(self.root, rel)
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(text)

    def run_lint(self):
        return subprocess.run(
            [sys.executable, LINT, "--root", self.root, "src"],
            capture_output=True, text=True)

    def test_clean_tree_passes(self):
        self.write("src/util/ok.cc", "int answer() { return 42; }\n")
        proc = self.run_lint()
        self.assertEqual(proc.returncode, 0, proc.stdout + proc.stderr)

    def test_seeded_layering_violation_fails(self):
        self.write("src/util/breach.cc",
                   '#include "frontend/session.h"\nint x;\n')
        proc = self.run_lint()
        self.assertEqual(proc.returncode, 1)
        self.assertIn("[layering]", proc.stdout)

    def test_seeded_unchecked_discard_decl_fails(self):
        self.write("src/util/drop.h",
                   "#ifndef AQV_UTIL_DROP_H_\n#define AQV_UTIL_DROP_H_\n"
                   "Status Save(int x);\n"
                   "#endif  // AQV_UTIL_DROP_H_\n")
        proc = self.run_lint()
        self.assertEqual(proc.returncode, 1)
        self.assertIn("[nodiscard-decl]", proc.stdout)

    def test_fixture_mode_self_checks(self):
        proc = subprocess.run([sys.executable, LINT, "--fixtures"],
                              capture_output=True, text=True)
        self.assertEqual(proc.returncode, 0, proc.stdout + proc.stderr)


if __name__ == "__main__":
    unittest.main()
