#include <gtest/gtest.h>

#include "cq/parser.h"
#include "eval/datalog.h"

namespace aqv {
namespace {

class DatalogTest : public ::testing::Test {
 protected:
  Catalog cat_;
  Query Parse(const std::string& s) { return ParseQuery(s, &cat_).value(); }
};

TEST_F(DatalogTest, NonRecursiveSinglePass) {
  DatalogProgram prog;
  prog.rules.push_back(Parse("derived(X, Z) :- e(X, Y), e(Y, Z)."));
  Database edb(&cat_);
  PredId e = cat_.FindPredicate("e").value();
  edb.Add(e, {1, 2});
  edb.Add(e, {2, 3});
  auto out = EvaluateDatalogProgram(prog, edb);
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  PredId derived = cat_.FindPredicate("derived").value();
  const Relation* rel = out.value().Find(derived);
  ASSERT_NE(rel, nullptr);
  EXPECT_EQ(rel->size(), 1u);
  EXPECT_TRUE(rel->Contains({1, 3}));
}

TEST_F(DatalogTest, TransitiveClosureConverges) {
  DatalogProgram prog;
  prog.rules.push_back(Parse("tc(X, Y) :- e(X, Y)."));
  prog.rules.push_back(Parse("tc(X, Z) :- tc(X, Y), e(Y, Z)."));
  Database edb(&cat_);
  PredId e = cat_.FindPredicate("e").value();
  for (int i = 0; i < 6; ++i) edb.Add(e, {i, i + 1});
  auto out = EvaluateDatalogProgram(prog, edb);
  ASSERT_TRUE(out.ok());
  PredId tc = cat_.FindPredicate("tc").value();
  const Relation* rel = out.value().Find(tc);
  ASSERT_NE(rel, nullptr);
  EXPECT_EQ(rel->size(), 21u);  // 7 choose 2
  EXPECT_TRUE(rel->Contains({0, 6}));
}

TEST_F(DatalogTest, CycleClosureTerminates) {
  DatalogProgram prog;
  prog.rules.push_back(Parse("tc2(X, Y) :- c(X, Y)."));
  prog.rules.push_back(Parse("tc2(X, Z) :- tc2(X, Y), c(Y, Z)."));
  Database edb(&cat_);
  PredId c = cat_.FindPredicate("c").value();
  edb.Add(c, {0, 1});
  edb.Add(c, {1, 2});
  edb.Add(c, {2, 0});
  auto out = EvaluateDatalogProgram(prog, edb);
  ASSERT_TRUE(out.ok());
  const Relation* rel =
      out.value().Find(cat_.FindPredicate("tc2").value());
  EXPECT_EQ(rel->size(), 9u);  // complete on the 3-cycle
}

TEST_F(DatalogTest, MaxRoundsGuard) {
  DatalogProgram prog;
  prog.rules.push_back(Parse("grow(X, Y) :- g(X, Y)."));
  prog.rules.push_back(Parse("grow(X, Z) :- grow(X, Y), g(Y, Z)."));
  Database edb(&cat_);
  PredId g = cat_.FindPredicate("g").value();
  for (int i = 0; i < 30; ++i) edb.Add(g, {i, i + 1});
  auto out = EvaluateDatalogProgram(prog, edb, {}, /*max_rounds=*/2);
  ASSERT_FALSE(out.ok());
  EXPECT_EQ(out.status().code(), StatusCode::kResourceExhausted);
}

TEST_F(DatalogTest, ApplyInverseRulesReconstructsFacts) {
  ViewSet vs = ViewSet::Parse("v(X, Z) :- r(X, Y), s(Y, Z).", &cat_).value();
  InverseRuleSet ir = BuildInverseRules(vs).value();
  Database extents(&cat_);
  PredId v = cat_.FindPredicate("v").value();
  extents.Add(v, {1, 9});
  extents.Add(v, {2, 8});
  SkolemTable skolems;
  auto out = ApplyInverseRules(ir, extents, &skolems);
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  PredId r = cat_.FindPredicate("r").value();
  PredId s = cat_.FindPredicate("s").value();
  const Relation* rr = out.value().Find(r);
  const Relation* ss = out.value().Find(s);
  ASSERT_NE(rr, nullptr);
  ASSERT_NE(ss, nullptr);
  EXPECT_EQ(rr->size(), 2u);
  EXPECT_EQ(ss->size(), 2u);
  // The Skolem witness for tuple (1,9) joins r and s.
  EXPECT_EQ(skolems.size(), 2u);
  Value y1 = rr->Contains({1, skolems.Intern(0, {1, 9})})
                 ? skolems.Intern(0, {1, 9})
                 : -1;
  ASSERT_TRUE(IsSkolem(y1));
  EXPECT_TRUE(ss->Contains({y1, 9}));
}

TEST_F(DatalogTest, InverseRulesRepeatedHeadVarFilters) {
  ViewSet vs = ViewSet::Parse("vd(X, X) :- r(X, X).", &cat_).value();
  InverseRuleSet ir = BuildInverseRules(vs).value();
  Database extents(&cat_);
  PredId vd = cat_.FindPredicate("vd").value();
  extents.Add(vd, {1, 1});
  extents.Add(vd, {1, 2});  // does not match the v(X,X) pattern
  SkolemTable skolems;
  auto out = ApplyInverseRules(ir, extents, &skolems);
  ASSERT_TRUE(out.ok());
  const Relation* rr = out.value().Find(cat_.FindPredicate("r").value());
  ASSERT_NE(rr, nullptr);
  EXPECT_EQ(rr->size(), 1u);
  EXPECT_TRUE(rr->Contains({1, 1}));
}

TEST_F(DatalogTest, InverseRulesConstantFilter) {
  ViewSet vs = ViewSet::Parse("vc(X, 3) :- r(X, 3).", &cat_).value();
  InverseRuleSet ir = BuildInverseRules(vs).value();
  Database extents(&cat_);
  PredId vc = cat_.FindPredicate("vc").value();
  extents.Add(vc, {1, 3});
  extents.Add(vc, {2, 4});  // filtered: second column must be 3
  SkolemTable skolems;
  auto out = ApplyInverseRules(ir, extents, &skolems);
  ASSERT_TRUE(out.ok());
  const Relation* rr = out.value().Find(cat_.FindPredicate("r").value());
  EXPECT_EQ(rr->size(), 1u);
  EXPECT_TRUE(rr->Contains({1, 3}));
}

TEST_F(DatalogTest, SkolemsSharedAcrossRulesOfOneView) {
  // Both r and s receive the SAME skolem value for a given view tuple.
  ViewSet vs =
      ViewSet::Parse("vv(X) :- r(X, Y), s(Y, X).", &cat_).value();
  InverseRuleSet ir = BuildInverseRules(vs).value();
  Database extents(&cat_);
  extents.Add(cat_.FindPredicate("vv").value(), {5});
  SkolemTable skolems;
  auto out = ApplyInverseRules(ir, extents, &skolems);
  ASSERT_TRUE(out.ok());
  const Relation* rr = out.value().Find(cat_.FindPredicate("r").value());
  const Relation* ss = out.value().Find(cat_.FindPredicate("s").value());
  ASSERT_EQ(rr->size(), 1u);
  ASSERT_EQ(ss->size(), 1u);
  EXPECT_EQ(skolems.size(), 1u);
  EXPECT_EQ(rr->at(0, 1), ss->at(0, 0));  // same witness value
}

TEST_F(DatalogTest, EmptyExtentsYieldEmptyDerivations) {
  ViewSet vs = ViewSet::Parse("ve(X) :- r(X, Y).", &cat_).value();
  InverseRuleSet ir = BuildInverseRules(vs).value();
  Database extents(&cat_);
  SkolemTable skolems;
  auto out = ApplyInverseRules(ir, extents, &skolems);
  ASSERT_TRUE(out.ok());
  const Relation* rr = out.value().Find(cat_.FindPredicate("r").value());
  ASSERT_NE(rr, nullptr);
  EXPECT_TRUE(rr->empty());
}

}  // namespace
}  // namespace aqv
