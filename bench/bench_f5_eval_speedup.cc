/// F5 — The optimization payoff LMSS motivates: answering the query from
/// materialized views versus recomputing the joins over base tables, on the
/// warehouse star-schema scenario, across database sizes up to a 10^6-row
/// fact table.
///
/// Every evaluation benchmark runs as an Indexed/Cold pair:
///
///   Indexed   use_cached_indexes=true over a shared setup whose relation
///             index caches are primed — the steady state of a server
///             answering repeated queries over static extents.
///   Cold      use_cached_indexes=false — the row-at-a-time baseline that
///             rebuilds a throwaway hash index on every evaluation (the
///             pre-cache evaluator behavior).
///
/// BM_F5_SelectiveAnswer is the headline pair: a point query with a
/// constant (one product category out of db_size/100) where the cold path
/// pays an O(fact-table) index build per evaluation while the indexed path
/// probes cached postings. Expected shape: the indexed/cold gap widens
/// with the fact table and clears 10x at 10^6 rows; view materialization
/// cost (amortized in practice) is reported separately.

#include <benchmark/benchmark.h>

#include <map>
#include <memory>

#include "bench_common.h"
#include "cq/parser.h"
#include "eval/evaluator.h"
#include "eval/materialize.h"
#include "rewriting/lmss.h"
#include "rewriting/planner.h"
#include "workload/scenarios.h"

namespace aqv {
namespace {

struct F5Setup {
  Scenario scenario;
  Database extents;
  Query rewriting;
  Query selective;
};

EvalOptions IndexedOptions() {
  EvalOptions o;
  o.use_cached_indexes = true;
  return o;
}

EvalOptions ColdOptions() {
  EvalOptions o;
  o.use_cached_indexes = false;
  return o;
}

/// The executed rewriting is the *planner's* pick, not the first one the
/// enumeration happens to produce — enumeration order is not cost order
/// (an early 3-atom plan loses to the single pre-join at scale).
std::unique_ptr<F5Setup> MakeSetup(int db_size) {
  auto setup = std::make_unique<F5Setup>(
      F5Setup{bench::Unwrap(MakeWarehouseScenario(17, db_size), "scenario"),
              Database(), Query(), Query()});
  setup->extents = bench::Unwrap(
      MaterializeViews(setup->scenario.views, setup->scenario.base),
      "materialize");
  PlannerOptions popts;
  popts.include_direct_plan = false;
  PlannerResult plan = bench::Unwrap(
      ChooseBestPlan(setup->scenario.query, setup->scenario.views,
                     ExtentStats::FromDatabase(setup->extents),
                     ExtentStats::FromDatabase(setup->scenario.base), popts),
      "planner");
  if (plan.best < 0) {
    std::fprintf(stderr, "F5: no equivalent rewriting in warehouse scenario\n");
    std::abort();
  }
  setup->rewriting = plan.plans[plan.best].rewriting;
  // One product category (5001) out of db_size/100: ~1% of products, so
  // the answer is small while the scanned-if-unindexed fact table is not.
  setup->selective = bench::Unwrap(
      ParseQuery("qsel(C, R) :- sale(C, P), product(P, 5001), customer(C, R).",
                 setup->scenario.catalog.get()),
      "selective query");
  // Prime the relation index caches so Indexed variants measure the warm
  // steady state from the first iteration (the 1x CI smoke included).
  bench::Unwrap(EvaluateQuery(setup->scenario.query, setup->scenario.base,
                              IndexedOptions()),
                "prime direct");
  bench::Unwrap(EvaluateQuery(setup->rewriting, setup->extents,
                              IndexedOptions()),
                "prime rewriting");
  bench::Unwrap(EvaluateQuery(setup->selective, setup->scenario.base,
                              IndexedOptions()),
                "prime selective");
  return setup;
}

/// Benchmark-library runners re-enter the registered function per
/// repetition; the 10^6-row scenario is too expensive to rebuild each
/// time, so setups are cached per size for the process lifetime.
F5Setup& GetSetup(int db_size) {
  static std::map<int, std::unique_ptr<F5Setup>>* cache =
      new std::map<int, std::unique_ptr<F5Setup>>();
  std::unique_ptr<F5Setup>& slot = (*cache)[db_size];
  if (slot == nullptr) slot = MakeSetup(db_size);
  return *slot;
}

void ExportEvalCounters(benchmark::State& state, const EvalStats& stats,
                        size_t answers) {
  state.counters["answers"] = static_cast<double>(answers);
  state.counters["intermediate_rows"] =
      static_cast<double>(stats.intermediate_rows);
  state.counters["probes"] = static_cast<double>(stats.probes);
  state.counters["index_builds"] = static_cast<double>(stats.index_builds);
  state.counters["index_hits"] = static_cast<double>(stats.index_hits);
}

void RunEval(benchmark::State& state, const Query& q, const Database& db,
             const EvalOptions& options) {
  size_t answers = 0;
  EvalStats stats;
  for (auto _ : state) {
    stats = EvalStats();
    Relation r = bench::Unwrap(EvaluateQuery(q, db, options, &stats), "eval");
    answers = r.size();
    benchmark::DoNotOptimize(r);
  }
  state.SetItemsProcessed(state.iterations());
  ExportEvalCounters(state, stats, answers);
}

void BM_F5_DirectOverBase(benchmark::State& state) {
  F5Setup& setup = GetSetup(static_cast<int>(state.range(0)));
  EvalOptions options = state.range(1) ? IndexedOptions() : ColdOptions();
  RunEval(state, setup.scenario.query, setup.scenario.base, options);
  state.counters["base_tuples"] =
      static_cast<double>(setup.scenario.base.TotalTuples());
}

void BM_F5_ViaRewriting(benchmark::State& state) {
  F5Setup& setup = GetSetup(static_cast<int>(state.range(0)));
  EvalOptions options = state.range(1) ? IndexedOptions() : ColdOptions();
  RunEval(state, setup.rewriting, setup.extents, options);
  state.counters["extent_tuples"] =
      static_cast<double>(setup.extents.TotalTuples());
}

void BM_F5_SelectiveAnswer(benchmark::State& state) {
  F5Setup& setup = GetSetup(static_cast<int>(state.range(0)));
  EvalOptions options = state.range(1) ? IndexedOptions() : ColdOptions();
  RunEval(state, setup.selective, setup.scenario.base, options);
  state.counters["base_tuples"] =
      static_cast<double>(setup.scenario.base.TotalTuples());
}

void BM_F5_MaterializationCost(benchmark::State& state) {
  F5Setup& setup = GetSetup(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    Database extents = bench::Unwrap(
        MaterializeViews(setup.scenario.views, setup.scenario.base),
        "materialize");
    benchmark::DoNotOptimize(extents);
  }
}

void BM_F5_RewritePlanningCost(benchmark::State& state) {
  F5Setup& setup = GetSetup(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    LmssResult res = bench::Unwrap(
        FindEquivalentRewritings(setup.scenario.query, setup.scenario.views),
        "lmss");
    benchmark::DoNotOptimize(res);
  }
}

/// size x {Cold=0, Indexed=1}, labeled so reports read
/// BM_F5_.../<size>/Cold|Indexed.
void F5EvalArgs(benchmark::internal::Benchmark* b) {
  b->ArgNames({"size", "Indexed"});
  for (int size : {10'000, 100'000, 1'000'000}) {
    b->Args({size, 0});
    b->Args({size, 1});
  }
}

void F5SetupArgs(benchmark::internal::Benchmark* b) {
  for (int size : {10'000, 100'000, 1'000'000}) b->Args({size});
}

BENCHMARK(BM_F5_DirectOverBase)
    ->Apply(F5EvalArgs)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_F5_ViaRewriting)->Apply(F5EvalArgs)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_F5_SelectiveAnswer)
    ->Apply(F5EvalArgs)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_F5_MaterializationCost)
    ->Apply(F5SetupArgs)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_F5_RewritePlanningCost)
    ->Apply(F5SetupArgs)
    ->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace aqv

int main(int argc, char** argv) {
  aqv::bench::Banner("F5", "answering from views vs base tables, warehouse "
                           "scenario (args: fact-table size, indexed=0/1)");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
