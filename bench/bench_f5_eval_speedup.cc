/// F5 — The optimization payoff LMSS motivates: answering the query from
/// materialized views versus recomputing the joins over base tables, on the
/// warehouse star-schema scenario, across database sizes.
///
/// Expected shape: the pre-joined view rewriting wins roughly in proportion
/// to the join work avoided, with the gap widening as the fact table grows;
/// view materialization cost (amortized in practice) is reported separately.

#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "eval/evaluator.h"
#include "eval/materialize.h"
#include "rewriting/lmss.h"
#include "rewriting/planner.h"
#include "workload/scenarios.h"

namespace aqv {
namespace {

struct F5Setup {
  Scenario scenario;
  Database extents;
  Query rewriting;
};

/// The executed rewriting is the *planner's* pick, not the first one the
/// enumeration happens to produce — enumeration order is not cost order
/// (an early 3-atom plan loses to the single pre-join at scale).
F5Setup MakeSetup(int db_size) {
  F5Setup setup{bench::Unwrap(MakeWarehouseScenario(17, db_size), "scenario"),
                Database(), Query()};
  setup.extents = bench::Unwrap(
      MaterializeViews(setup.scenario.views, setup.scenario.base),
      "materialize");
  PlannerOptions popts;
  popts.include_direct_plan = false;
  PlannerResult plan = bench::Unwrap(
      ChooseBestPlan(setup.scenario.query, setup.scenario.views,
                     ExtentStats::FromDatabase(setup.extents),
                     ExtentStats::FromDatabase(setup.scenario.base), popts),
      "planner");
  if (plan.best < 0) {
    std::fprintf(stderr, "F5: no equivalent rewriting in warehouse scenario\n");
    std::abort();
  }
  setup.rewriting = plan.plans[plan.best].rewriting;
  return setup;
}

void BM_F5_DirectOverBase(benchmark::State& state) {
  F5Setup setup = MakeSetup(static_cast<int>(state.range(0)));
  size_t answers = 0;
  for (auto _ : state) {
    Relation r = bench::Unwrap(
        EvaluateQuery(setup.scenario.query, setup.scenario.base), "direct");
    answers = r.size();
    benchmark::DoNotOptimize(r);
  }
  state.counters["answers"] = static_cast<double>(answers);
  state.counters["base_tuples"] =
      static_cast<double>(setup.scenario.base.TotalTuples());
}

void BM_F5_ViaRewriting(benchmark::State& state) {
  F5Setup setup = MakeSetup(static_cast<int>(state.range(0)));
  size_t answers = 0;
  for (auto _ : state) {
    Relation r = bench::Unwrap(EvaluateQuery(setup.rewriting, setup.extents),
                               "rewriting eval");
    answers = r.size();
    benchmark::DoNotOptimize(r);
  }
  state.counters["answers"] = static_cast<double>(answers);
  state.counters["extent_tuples"] =
      static_cast<double>(setup.extents.TotalTuples());
}

void BM_F5_MaterializationCost(benchmark::State& state) {
  Scenario s = bench::Unwrap(
      MakeWarehouseScenario(17, static_cast<int>(state.range(0))), "scenario");
  for (auto _ : state) {
    Database extents =
        bench::Unwrap(MaterializeViews(s.views, s.base), "materialize");
    benchmark::DoNotOptimize(extents);
  }
}

void BM_F5_RewritePlanningCost(benchmark::State& state) {
  Scenario s = bench::Unwrap(
      MakeWarehouseScenario(17, static_cast<int>(state.range(0))), "scenario");
  for (auto _ : state) {
    LmssResult res = bench::Unwrap(FindEquivalentRewritings(s.query, s.views),
                                   "lmss");
    benchmark::DoNotOptimize(res);
  }
}

void F5Args(benchmark::internal::Benchmark* b) {
  for (int size : {1'000, 10'000, 100'000}) b->Args({size});
}

BENCHMARK(BM_F5_DirectOverBase)->Apply(F5Args)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_F5_ViaRewriting)->Apply(F5Args)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_F5_MaterializationCost)
    ->Apply(F5Args)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_F5_RewritePlanningCost)
    ->Apply(F5Args)
    ->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace aqv

int main(int argc, char** argv) {
  aqv::bench::Banner("F5", "answering from views vs base tables, warehouse "
                           "scenario (arg: fact-table size)");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
