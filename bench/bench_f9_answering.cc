/// F9 — End-to-end query answering over materialized views: route × engine
/// × scenario × data size. Where F5 measured one hand-picked rewriting and
/// F8 measured rewriting throughput, F9 measures the full answering
/// pipeline (answering/answering.h) producing actual tuples:
///
///   BM_F9_Direct        q over the base database — the ground-truth
///                       baseline every view route is compared against.
///   BM_F9_Complete      the named engine's rewriting union evaluated
///                       over (pre-materialized) view extents.
///   BM_F9_InverseRules  certain answers via the Skolem datalog program —
///                       rule construction is linear, cost sits in
///                       evaluation (Duschka-Genesereth trade).
///   BM_F9_CostPlanned   ChooseBestPlan across the planner's default
///                       engine list, then execute the cheapest plan.
///   BM_F9_ServiceBatch  the whole route × engine grid as one answering
///                       batch on the concurrent service (shared pool +
///                       sharded oracle).
///
/// All variants answer the same seeded scenarios on the same data, so
/// items/s and the `answers` counters compare directly; `exact` reports
/// whether the route returned q(D) (1) or a certain-answer
/// under-approximation. On the registry scenarios every route is exact —
/// the route-equivalence invariant tests/test_answering.cc enforces.

#include <benchmark/benchmark.h>

#include <memory>
#include <string>
#include <vector>

#include "answering/answering.h"
#include "bench_common.h"
#include "eval/materialize.h"
#include "service/service.h"
#include "workload/registry.h"

namespace aqv {
namespace {

struct F9Setup {
  std::unique_ptr<Scenario> scenario;
  Database extents;
};

F9Setup MakeSetup(const std::string& scenario_name, int db_size) {
  F9Setup setup;
  setup.scenario = std::make_unique<Scenario>(bench::Unwrap(
      MakeScenarioByName(scenario_name, /*seed=*/21, db_size), "scenario"));
  setup.extents = bench::Unwrap(
      MaterializeViews(setup.scenario->views, setup.scenario->base),
      "materialize");
  return setup;
}

AnswerRequest MakeRequest(const F9Setup& setup, AnswerRoute route,
                          const std::string& engine) {
  AnswerRequest request;
  request.query.disjuncts.push_back(setup.scenario->query);
  request.views = &setup.scenario->views;
  request.base = &setup.scenario->base;
  request.extents = &setup.extents;
  request.route = route;
  request.engine = engine;
  return request;
}

void RunRoute(benchmark::State& state, const std::string& scenario_name,
              AnswerRoute route, const std::string& engine) {
  F9Setup setup = MakeSetup(scenario_name, static_cast<int>(state.range(0)));
  AnswerRequest request = MakeRequest(setup, route, engine);
  size_t answers = 0;
  bool exact = false;
  for (auto _ : state) {
    AnswerResponse resp;
    if (!bench::UnwrapOrSkip(AnswerQuery(request), state, &resp)) return;
    answers = resp.result.size();
    exact = resp.exact;
    benchmark::DoNotOptimize(resp);
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["answers"] = static_cast<double>(answers);
  state.counters["exact"] = exact ? 1.0 : 0.0;
}

/// The full grid as one mixed batch through the service's answering job
/// kind: 3 scenarios × (direct + inverse-rules + cost + 4 complete-route
/// engines) per repeat.
void RunServiceBatch(benchmark::State& state, int workers) {
  AnswerScenarioBatch batch = bench::Unwrap(
      MakeAnswerBatchFromScenarios(
          ScenarioNames(), EngineNames(),
          {AnswerRoute::kDirect, AnswerRoute::kCompleteRewriting,
           AnswerRoute::kInverseRules, AnswerRoute::kCostBased},
          /*repeats=*/2, /*seed=*/21,
          static_cast<int>(state.range(0))),
      "answer batch");
  ServiceOptions options;
  options.num_workers = workers;
  RewriteService service(options);
  ServiceStats last;
  for (auto _ : state) {
    AnswerBatchResult result;
    if (!bench::UnwrapOrSkip(service.AnswerBatch(batch.requests), state,
                             &result)) {
      return;
    }
    last = result.stats;
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(batch.size()));
  state.counters["throughput_rps"] = last.throughput_rps;
  state.counters["p50_ms"] = last.p50_ms;
  state.counters["p95_ms"] = last.p95_ms;
  state.counters["oracle_hit_rate"] = last.oracle.hit_rate();
}

void F9Args(benchmark::internal::Benchmark* b) {
  b->Arg(50)->Arg(200)->Unit(benchmark::kMillisecond);
}

void RegisterAll() {
  for (const std::string& scenario : ScenarioNames()) {
    std::string direct = "BM_F9_Direct/" + scenario;
    benchmark::RegisterBenchmark(
        direct.c_str(),
        [scenario](benchmark::State& state) {
          RunRoute(state, scenario, AnswerRoute::kDirect, "");
        })
        ->Apply(F9Args);
    std::string ir = "BM_F9_InverseRules/" + scenario;
    benchmark::RegisterBenchmark(
        ir.c_str(),
        [scenario](benchmark::State& state) {
          RunRoute(state, scenario, AnswerRoute::kInverseRules, "");
        })
        ->Apply(F9Args);
    std::string cost = "BM_F9_CostPlanned/" + scenario;
    benchmark::RegisterBenchmark(
        cost.c_str(),
        [scenario](benchmark::State& state) {
          RunRoute(state, scenario, AnswerRoute::kCostBased, "");
        })
        ->Apply(F9Args);
    for (const std::string& engine : EngineNames()) {
      std::string complete = "BM_F9_Complete/" + scenario + "/" + engine;
      benchmark::RegisterBenchmark(
          complete.c_str(),
          [scenario, engine](benchmark::State& state) {
            RunRoute(state, scenario, AnswerRoute::kCompleteRewriting,
                     engine);
          })
          ->Apply(F9Args);
    }
  }
  for (int workers : {1, 4}) {
    std::string name = "BM_F9_ServiceBatch/workers:" + std::to_string(workers);
    benchmark::RegisterBenchmark(
        name.c_str(),
        [workers](benchmark::State& state) {
          RunServiceBatch(state, workers);
        })
        ->Apply(F9Args)
        ->UseRealTime();
  }
  // The 10^6-row block: the warehouse star schema at full scale, on the
  // routes that stay tractable there (inverse-rules re-derives the whole
  // extent through the Skolem program and is measured at the small sizes
  // above instead).
  struct MillionRoute {
    const char* name;
    AnswerRoute route;
    const char* engine;
  };
  for (MillionRoute r : {MillionRoute{"direct", AnswerRoute::kDirect, ""},
                         MillionRoute{"complete-lmss",
                                      AnswerRoute::kCompleteRewriting, "lmss"},
                         MillionRoute{"cost", AnswerRoute::kCostBased, ""}}) {
    std::string name = std::string("BM_F9_MillionRow/warehouse/") + r.name;
    AnswerRoute route = r.route;
    std::string engine = r.engine;
    benchmark::RegisterBenchmark(
        name.c_str(),
        [route, engine](benchmark::State& state) {
          RunRoute(state, "warehouse", route, engine);
        })
        ->Arg(1'000'000)
        ->Unit(benchmark::kMillisecond);
  }
}

}  // namespace
}  // namespace aqv

int main(int argc, char** argv) {
  aqv::bench::Banner("F9", "end-to-end answering over materialized views: "
                           "route x engine x scenario x data size");
  aqv::RegisterAll();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
