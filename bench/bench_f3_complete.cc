/// F3 — Rewriting time vs number of views on COMPLETE (clique) queries:
/// every pair of query variables is joined, so view specializations
/// overlap heavily. This is the densest combination space of the grid and
/// the regime where Bucket's per-subgoal buckets stay small but its
/// cross-product still multiplies out.

#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "rewriting/bucket.h"
#include "rewriting/inverse_rules.h"
#include "rewriting/lmss.h"
#include "rewriting/minicon.h"
#include "util/rng.h"
#include "workload/generators.h"

namespace aqv {
namespace {

struct CompleteInstance {
  Catalog catalog;
  Query query;
  ViewSet views;
};

CompleteInstance MakeInstance(int nodes, int num_views, uint64_t seed) {
  CompleteInstance inst;
  CompleteViewSpec vspec;
  vspec.complete.nodes = nodes;
  vspec.num_views = num_views;
  vspec.min_edges = 1;
  vspec.max_edges = 3;
  vspec.policy = DistinguishedPolicy::kAll;
  Rng rng(seed);
  inst.query = bench::Unwrap(MakeCompleteQuery(&inst.catalog, vspec.complete),
                             "complete query");
  inst.views = bench::Unwrap(MakeCompleteViews(&inst.catalog, &rng, vspec),
                             "complete views");
  return inst;
}

void BM_F3_Bucket(benchmark::State& state) {
  CompleteInstance inst = MakeInstance(static_cast<int>(state.range(0)),
                                       static_cast<int>(state.range(1)), 59);
  uint64_t rewritings = 0;
  for (auto _ : state) {
    BucketResult r;
    if (!bench::UnwrapOrSkip(BucketRewrite(inst.query, inst.views), state,
                             &r)) {
      return;
    }
    rewritings = r.rewritings.size();
    benchmark::DoNotOptimize(r);
  }
  state.counters["rewritings"] = static_cast<double>(rewritings);
}

void BM_F3_MiniCon(benchmark::State& state) {
  CompleteInstance inst = MakeInstance(static_cast<int>(state.range(0)),
                                       static_cast<int>(state.range(1)), 59);
  uint64_t rewritings = 0, mcds = 0;
  for (auto _ : state) {
    MiniConOptions opts;
    opts.max_combinations = 20'000'000;
    MiniConResult r =
        bench::Unwrap(MiniConRewrite(inst.query, inst.views, opts), "minicon");
    rewritings = r.rewritings.size();
    mcds = r.mcds.size();
    benchmark::DoNotOptimize(r);
  }
  state.counters["rewritings"] = static_cast<double>(rewritings);
  state.counters["mcds"] = static_cast<double>(mcds);
}

void BM_F3_InverseRules(benchmark::State& state) {
  CompleteInstance inst = MakeInstance(static_cast<int>(state.range(0)),
                                       static_cast<int>(state.range(1)), 59);
  for (auto _ : state) {
    InverseRuleSet r =
        bench::Unwrap(BuildInverseRules(inst.views), "inverse rules");
    benchmark::DoNotOptimize(r);
  }
}

void BM_F3_LmssDecision(benchmark::State& state) {
  CompleteInstance inst = MakeInstance(static_cast<int>(state.range(0)),
                                       static_cast<int>(state.range(1)), 59);
  for (auto _ : state) {
    bool exists = bench::Unwrap(
        ExistsEquivalentRewriting(inst.query, inst.views), "lmss");
    benchmark::DoNotOptimize(exists);
  }
}

void CompleteArgs(benchmark::internal::Benchmark* b) {
  for (int views : {5, 10, 20, 40}) {
    b->Args({3, views});
  }
  for (int views : {5, 10, 20}) {
    b->Args({4, views});
  }
}

// The 4-node clique has six subgoals; Bucket's product is only tractable on
// the smaller grids.
void BucketCompleteArgs(benchmark::internal::Benchmark* b) {
  for (int views : {5, 10, 20, 40}) {
    b->Args({3, views});
  }
  for (int views : {5, 10}) {
    b->Args({4, views});
  }
}

BENCHMARK(BM_F3_Bucket)
    ->Apply(BucketCompleteArgs)
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_F3_MiniCon)->Apply(CompleteArgs)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_F3_InverseRules)
    ->Apply(CompleteArgs)
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_F3_LmssDecision)
    ->Apply(CompleteArgs)
    ->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace aqv

int main(int argc, char** argv) {
  aqv::bench::Banner("F3", "rewriting time vs #views, complete queries "
                           "(args: nodes, num_views)");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
