/// A1 — Ablations of the design choices DESIGN.md calls out:
///   (a) fail-first dynamic atom ordering in the homomorphism search vs
///       static body order (the containment inner loop);
///   (b) MiniCon with vs without the per-candidate containment check the
///       MiniCon theorem removes;
///   (c) Bucket with vs without subsumption pruning of the output union;
///   (d) LMSS with vs without the beyond-cover extension pass.
/// Each pair shares inputs, so the ratio isolates the choice.

#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "containment/homomorphism.h"
#include "cq/parser.h"
#include "rewriting/bucket.h"
#include "rewriting/lmss.h"
#include "rewriting/minicon.h"
#include "util/rng.h"
#include "workload/generators.h"

namespace aqv {
namespace {

// --- (a) homomorphism ordering --------------------------------------------

struct HomInstance {
  Catalog catalog;
  Query from;
  Query to;
};

/// Self-join chains into a dense loop: many partial matches, where ordering
/// decides how early contradictions surface.
HomInstance MakeHomInstance(int chain_len) {
  HomInstance inst;
  ChainQuerySpec spec;
  spec.length = chain_len;
  spec.distinct_predicates = false;
  inst.to = bench::Unwrap(MakeChainQuery(&inst.catalog, spec), "to");
  ChainQuerySpec longer = spec;
  longer.length = chain_len + 3;
  longer.head_name = "q2";
  inst.from = bench::Unwrap(MakeChainQuery(&inst.catalog, longer), "from");
  return inst;
}

void BM_A1_HomDynamicOrdering(benchmark::State& state) {
  HomInstance inst = MakeHomInstance(static_cast<int>(state.range(0)));
  HomSearchOptions opts;
  opts.dynamic_ordering = true;
  for (auto _ : state) {
    bool found = false;
    if (!bench::UnwrapOrSkip(FindHomomorphism(inst.from, inst.to, opts),
                             state, &found)) {
      return;
    }
    benchmark::DoNotOptimize(found);
  }
}

void BM_A1_HomStaticOrdering(benchmark::State& state) {
  HomInstance inst = MakeHomInstance(static_cast<int>(state.range(0)));
  HomSearchOptions opts;
  opts.dynamic_ordering = false;
  for (auto _ : state) {
    bool found = false;
    if (!bench::UnwrapOrSkip(FindHomomorphism(inst.from, inst.to, opts),
                             state, &found)) {
      return;
    }
    benchmark::DoNotOptimize(found);
  }
}

// --- (b) MiniCon verification ---------------------------------------------

struct WorkloadInstance {
  Catalog catalog;
  Query query;
  ViewSet views;
};

WorkloadInstance MakeChainWorkload(int length, int num_views) {
  WorkloadInstance inst;
  ChainViewSpec vspec;
  vspec.chain.length = length;
  vspec.num_views = num_views;
  vspec.min_length = 1;
  vspec.max_length = 3;
  vspec.policy = DistinguishedPolicy::kEnds;
  Rng rng(4321);
  inst.query =
      bench::Unwrap(MakeChainQuery(&inst.catalog, vspec.chain), "query");
  inst.views =
      bench::Unwrap(MakeChainViews(&inst.catalog, &rng, vspec), "views");
  return inst;
}

void BM_A1_MiniConNoVerify(benchmark::State& state) {
  WorkloadInstance inst = MakeChainWorkload(4, static_cast<int>(state.range(0)));
  for (auto _ : state) {
    MiniConResult r =
        bench::Unwrap(MiniConRewrite(inst.query, inst.views), "minicon");
    benchmark::DoNotOptimize(r);
  }
}

void BM_A1_MiniConWithVerify(benchmark::State& state) {
  WorkloadInstance inst = MakeChainWorkload(4, static_cast<int>(state.range(0)));
  MiniConOptions opts;
  opts.verify_candidates = true;
  for (auto _ : state) {
    MiniConResult r = bench::Unwrap(
        MiniConRewrite(inst.query, inst.views, opts), "minicon+verify");
    benchmark::DoNotOptimize(r);
  }
}

// --- (c) bucket subsumption pruning ----------------------------------------

void BM_A1_BucketNoPrune(benchmark::State& state) {
  WorkloadInstance inst = MakeChainWorkload(4, static_cast<int>(state.range(0)));
  size_t disjuncts = 0;
  for (auto _ : state) {
    BucketResult r;
    if (!bench::UnwrapOrSkip(BucketRewrite(inst.query, inst.views), state,
                             &r)) {
      return;
    }
    disjuncts = r.rewritings.size();
    benchmark::DoNotOptimize(r);
  }
  state.counters["disjuncts"] = static_cast<double>(disjuncts);
}

void BM_A1_BucketWithPrune(benchmark::State& state) {
  WorkloadInstance inst = MakeChainWorkload(4, static_cast<int>(state.range(0)));
  BucketOptions opts;
  opts.prune_subsumed = true;
  size_t disjuncts = 0;
  for (auto _ : state) {
    BucketResult r;
    if (!bench::UnwrapOrSkip(BucketRewrite(inst.query, inst.views, opts),
                             state, &r)) {
      return;
    }
    disjuncts = r.rewritings.size();
    benchmark::DoNotOptimize(r);
  }
  state.counters["disjuncts"] = static_cast<double>(disjuncts);
}

// --- (d) LMSS extension pass -----------------------------------------------

void BM_A1_LmssWithExtension(benchmark::State& state) {
  WorkloadInstance inst = MakeChainWorkload(4, static_cast<int>(state.range(0)));
  LmssOptions opts;
  opts.extend_beyond_cover = true;
  for (auto _ : state) {
    LmssResult r = bench::Unwrap(
        FindEquivalentRewritings(inst.query, inst.views, opts), "lmss");
    benchmark::DoNotOptimize(r);
  }
}

void BM_A1_LmssCoversOnly(benchmark::State& state) {
  WorkloadInstance inst = MakeChainWorkload(4, static_cast<int>(state.range(0)));
  LmssOptions opts;
  opts.extend_beyond_cover = false;
  for (auto _ : state) {
    LmssResult r = bench::Unwrap(
        FindEquivalentRewritings(inst.query, inst.views, opts), "lmss");
    benchmark::DoNotOptimize(r);
  }
}

BENCHMARK(BM_A1_HomDynamicOrdering)
    ->DenseRange(4, 8, 2)
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_A1_HomStaticOrdering)
    ->DenseRange(4, 8, 2)
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_A1_MiniConNoVerify)
    ->Arg(10)
    ->Arg(20)
    ->Arg(40)
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_A1_MiniConWithVerify)
    ->Arg(10)
    ->Arg(20)
    ->Arg(40)
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_A1_BucketNoPrune)
    ->Arg(10)
    ->Arg(20)
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_A1_BucketWithPrune)
    ->Arg(10)
    ->Arg(20)
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_A1_LmssWithExtension)
    ->Arg(10)
    ->Arg(20)
    ->Arg(40)
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_A1_LmssCoversOnly)
    ->Arg(10)
    ->Arg(20)
    ->Arg(40)
    ->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace aqv

int main(int argc, char** argv) {
  aqv::bench::Banner("A1", "design-choice ablations (see file header)");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
