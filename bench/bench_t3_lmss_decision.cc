/// T3 — Cost of the LMSS equivalent-rewriting decision as the query grows:
/// chain queries with prefix/suffix/pair views guaranteeing a rewriting
/// exists (positive instances) and with a withheld middle predicate
/// (negative instances, which must exhaust the cover search).

#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "cq/parser.h"
#include "rewriting/lmss.h"
#include "workload/generators.h"

namespace aqv {
namespace {

struct T3Instance {
  Catalog catalog;
  Query query;
  ViewSet views;
};

/// Views: every contiguous 2-subchain plus single edges, all with endpoint
/// heads — a rewriting always exists.
T3Instance PositiveInstance(int chain_length) {
  T3Instance inst;
  ChainQuerySpec spec;
  spec.length = chain_length;
  inst.query = bench::Unwrap(MakeChainQuery(&inst.catalog, spec), "chain");
  std::string views_text;
  for (int start = 0; start < chain_length; ++start) {
    for (int len = 1; len <= 2 && start + len <= chain_length; ++len) {
      std::string name =
          "v" + std::to_string(start) + "_" + std::to_string(len);
      std::string body;
      for (int i = 0; i < len; ++i) {
        if (i > 0) body += ", ";
        body += "r" + std::to_string(start + i + 1) + "(Y" +
                std::to_string(start + i) + ", Y" +
                std::to_string(start + i + 1) + ")";
      }
      views_text += name + "(Y" + std::to_string(start) + ", Y" +
                    std::to_string(start + len) + ") :- " + body + ".\n";
    }
  }
  inst.views = bench::Unwrap(ViewSet::Parse(views_text, &inst.catalog),
                             "views");
  return inst;
}

/// Same views minus anything covering the middle predicate: no rewriting.
T3Instance NegativeInstance(int chain_length) {
  T3Instance inst;
  ChainQuerySpec spec;
  spec.length = chain_length;
  inst.query = bench::Unwrap(MakeChainQuery(&inst.catalog, spec), "chain");
  int withheld = chain_length / 2;  // 0-based subgoal index withheld
  std::string views_text;
  for (int start = 0; start < chain_length; ++start) {
    for (int len = 1; len <= 2 && start + len <= chain_length; ++len) {
      bool covers_withheld = false;
      for (int i = 0; i < len; ++i) {
        if (start + i == withheld) covers_withheld = true;
      }
      if (covers_withheld) continue;
      std::string name =
          "w" + std::to_string(start) + "_" + std::to_string(len);
      std::string body;
      for (int i = 0; i < len; ++i) {
        if (i > 0) body += ", ";
        body += "r" + std::to_string(start + i + 1) + "(Y" +
                std::to_string(start + i) + ", Y" +
                std::to_string(start + i + 1) + ")";
      }
      views_text += name + "(Y" + std::to_string(start) + ", Y" +
                    std::to_string(start + len) + ") :- " + body + ".\n";
    }
  }
  inst.views = bench::Unwrap(ViewSet::Parse(views_text, &inst.catalog),
                             "views");
  return inst;
}

void BM_T3_PositiveDecision(benchmark::State& state) {
  T3Instance inst = PositiveInstance(static_cast<int>(state.range(0)));
  bool exists = false;
  for (auto _ : state) {
    exists = bench::Unwrap(ExistsEquivalentRewriting(inst.query, inst.views),
                           "decide");
    benchmark::DoNotOptimize(exists);
  }
  state.counters["exists"] = exists ? 1 : 0;  // must be 1
}

void BM_T3_NegativeDecision(benchmark::State& state) {
  T3Instance inst = NegativeInstance(static_cast<int>(state.range(0)));
  bool exists = true;
  for (auto _ : state) {
    exists = bench::Unwrap(ExistsEquivalentRewriting(inst.query, inst.views),
                           "decide");
    benchmark::DoNotOptimize(exists);
  }
  state.counters["exists"] = exists ? 1 : 0;  // must be 0
}

void BM_T3_EnumerateAll(benchmark::State& state) {
  T3Instance inst = PositiveInstance(static_cast<int>(state.range(0)));
  size_t count = 0;
  for (auto _ : state) {
    LmssOptions opts;
    opts.max_rewritings = 10'000;
    LmssResult res = bench::Unwrap(
        FindEquivalentRewritings(inst.query, inst.views, opts), "enumerate");
    count = res.rewritings.size();
    benchmark::DoNotOptimize(res);
  }
  state.counters["rewritings"] = static_cast<double>(count);
}

BENCHMARK(BM_T3_PositiveDecision)
    ->DenseRange(2, 10, 2)
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_T3_NegativeDecision)
    ->DenseRange(2, 10, 2)
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_T3_EnumerateAll)
    ->DenseRange(2, 8, 2)
    ->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace aqv

int main(int argc, char** argv) {
  aqv::bench::Banner("T3", "LMSS decision cost vs chain length "
                           "(arg: chain_length)");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
