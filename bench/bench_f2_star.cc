/// F2 — Rewriting time vs number of views on STAR queries. In the star
/// regime the center variable joins every subgoal; with fully-exposed views
/// MCDs stay single-subgoal and MiniCon's advantage over Bucket's
/// cross-product narrows relative to chains.

#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "rewriting/bucket.h"
#include "rewriting/inverse_rules.h"
#include "rewriting/lmss.h"
#include "rewriting/minicon.h"
#include "util/rng.h"
#include "workload/generators.h"

namespace aqv {
namespace {

struct StarInstance {
  Catalog catalog;
  Query query;
  ViewSet views;
};

StarInstance MakeInstance(int rays, int num_views, uint64_t seed) {
  StarInstance inst;
  StarViewSpec vspec;
  vspec.star.rays = rays;
  vspec.num_views = num_views;
  vspec.min_rays = 1;
  vspec.max_rays = 2;
  vspec.policy = DistinguishedPolicy::kAll;
  Rng rng(seed);
  inst.query =
      bench::Unwrap(MakeStarQuery(&inst.catalog, vspec.star), "star query");
  inst.views =
      bench::Unwrap(MakeStarViews(&inst.catalog, &rng, vspec), "star views");
  return inst;
}

void BM_F2_Bucket(benchmark::State& state) {
  StarInstance inst = MakeInstance(static_cast<int>(state.range(0)),
                                   static_cast<int>(state.range(1)), 31);
  uint64_t rewritings = 0;
  for (auto _ : state) {
    BucketResult r;
    if (!bench::UnwrapOrSkip(BucketRewrite(inst.query, inst.views), state,
                             &r)) {
      return;
    }
    rewritings = r.rewritings.size();
    benchmark::DoNotOptimize(r);
  }
  state.counters["rewritings"] = static_cast<double>(rewritings);
}

void BM_F2_MiniCon(benchmark::State& state) {
  StarInstance inst = MakeInstance(static_cast<int>(state.range(0)),
                                   static_cast<int>(state.range(1)), 31);
  uint64_t rewritings = 0, mcds = 0;
  for (auto _ : state) {
    MiniConResult r =
        bench::Unwrap(MiniConRewrite(inst.query, inst.views), "minicon");
    rewritings = r.rewritings.size();
    mcds = r.mcds.size();
    benchmark::DoNotOptimize(r);
  }
  state.counters["rewritings"] = static_cast<double>(rewritings);
  state.counters["mcds"] = static_cast<double>(mcds);
}

void BM_F2_InverseRules(benchmark::State& state) {
  StarInstance inst = MakeInstance(static_cast<int>(state.range(0)),
                                   static_cast<int>(state.range(1)), 31);
  for (auto _ : state) {
    InverseRuleSet r =
        bench::Unwrap(BuildInverseRules(inst.views), "inverse rules");
    benchmark::DoNotOptimize(r);
  }
}

void BM_F2_LmssDecision(benchmark::State& state) {
  StarInstance inst = MakeInstance(static_cast<int>(state.range(0)),
                                   static_cast<int>(state.range(1)), 31);
  for (auto _ : state) {
    bool exists = bench::Unwrap(
        ExistsEquivalentRewriting(inst.query, inst.views), "lmss");
    benchmark::DoNotOptimize(exists);
  }
}

void StarArgs(benchmark::internal::Benchmark* b) {
  for (int views : {5, 10, 20, 40, 80}) {
    b->Args({4, views});
  }
  b->Args({6, 20});
}

// Bucket's per-subgoal product limits its practical grid (the F1 story).
void BucketStarArgs(benchmark::internal::Benchmark* b) {
  for (int views : {5, 10, 20, 40}) {
    b->Args({4, views});
  }
}

BENCHMARK(BM_F2_Bucket)->Apply(BucketStarArgs)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_F2_MiniCon)->Apply(StarArgs)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_F2_InverseRules)->Apply(StarArgs)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_F2_LmssDecision)->Apply(StarArgs)->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace aqv

int main(int argc, char** argv) {
  aqv::bench::Banner("F2", "rewriting time vs #views, star queries "
                           "(args: rays, num_views)");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
