/// F12 — The storage engine's larger-than-RAM claim: a warehouse base with
/// a 10^6-row fact table (plus a bulk relation the query never touches, so
/// the database file footprint far exceeds the working set) is snapshotted
/// to a database directory, reopened, and the F5 selective point query is
/// answered straight off the persisted extents.
///
/// Each benchmark runs as an Mmap/Columnar pair — the open-time ablation
/// of StoreOptions::use_mmap:
///
///   Mmap      segments served through the read-only mmap backend
///             (eval/mmap_store.h): pages fault in lazily, so open is
///             near-instant and resident memory grows with the *touched*
///             column set, not the file size;
///   Columnar  segments copied onto the heap at open — the eager
///             baseline whose open cost and memory footprint scale with
///             every byte on disk.
///
/// Counters: `file_mb` (on-disk database size), `rss_open_mb` /
/// `rss_answer_mb` (VmRSS growth across open, and across open + warm
/// answer; Linux-only, 0 elsewhere), and the evaluator's index counters —
/// the headline expectation is Mmap rss_answer_mb well below file_mb with
/// warm `index_hits` > 0, while Columnar tracks file_mb.

#include <benchmark/benchmark.h>
#include <unistd.h>

#include <fstream>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.h"
#include "cq/parser.h"
#include "eval/evaluator.h"
#include "storage/fs.h"
#include "storage/store.h"
#include "workload/scenarios.h"

namespace aqv {
namespace {

/// VmRSS of this process in MiB (0 where /proc is unavailable).
double RssMb() {
  std::ifstream in("/proc/self/status");
  std::string line;
  while (std::getline(in, line)) {
    if (line.rfind("VmRSS:", 0) == 0) {
      return std::stod(line.substr(6)) / 1024.0;
    }
  }
  return 0.0;
}

void WipeDir(const std::string& dir) {
  auto names = ListDir(dir);
  if (!names.ok()) return;
  for (const std::string& name : *names) {
    Status removed = RemoveFile(dir + "/" + name);
    (void)removed;
  }
}

/// Directories created by this process, removed at exit (main()).
std::vector<std::string>& CreatedDirs() {
  static auto* dirs = new std::vector<std::string>();
  return *dirs;
}

/// Removes every created database directory when the process exits.
struct DirJanitor {
  ~DirJanitor() {
    for (const std::string& dir : CreatedDirs()) {
      WipeDir(dir);
      ::rmdir(dir.c_str());
    }
  }
} dir_janitor;

struct F12Setup {
  std::string dir;
  StoreOptions options;
  /// The recovered problem: mmap- or heap-backed extents per the ablation
  /// arm. Holding it does NOT hold the directory lock — the store is
  /// dropped after recovery, so BM_F12_OpenRecover can re-attach.
  RecoveredState state;
  Query selective;
  double file_mb = 0;
  double rss_open_mb = 0;
  double rss_answer_mb = 0;
};

EvalOptions IndexedOptions() {
  EvalOptions o;
  o.use_cached_indexes = true;
  return o;
}

std::unique_ptr<F12Setup> MakeSetup(int db_size, bool use_mmap) {
  auto setup = std::make_unique<F12Setup>();
  setup->dir = "bench_f12_" + std::to_string(db_size) +
               (use_mmap ? "_mmap" : "_columnar");
  setup->options.use_mmap = use_mmap;
  setup->options.sync = false;  // measuring open/answer, not fsync
  WipeDir(setup->dir);
  CreatedDirs().push_back(setup->dir);

  // Write phase in its own scope: the in-memory problem and the writing
  // store are gone before the open-side RSS baseline is taken.
  {
    Scenario scenario =
        bench::Unwrap(MakeWarehouseScenario(17, db_size), "scenario");
    // The bulk relation the query never touches: 2x the fact table, so
    // the on-disk footprint dwarfs the queried columns.
    PredId bulk = bench::Unwrap(
        scenario.catalog->GetOrAddPredicate("bulk", 2,
                                            PredKind::kExtensional),
        "bulk pred");
    Relation rel(bulk, 2);
    rel.Reserve(static_cast<size_t>(db_size) * 2);
    for (int64_t i = 0; i < static_cast<int64_t>(db_size) * 2; ++i) {
      rel.Add({i, i * 2 + 1});
    }
    rel.SortDedup();
    scenario.base.Install(std::move(rel));

    SnapshotInput input;
    input.catalog = scenario.catalog.get();
    for (const View& v : scenario.views.views()) {
      input.view_rules.push_back(v.definition.ToString());
    }
    input.base = &scenario.base;
    auto store = bench::Unwrap(
        SessionStore::Attach(setup->dir, setup->options), "attach");
    Status committed = store->Snapshot(input);
    if (!committed.ok()) {
      std::fprintf(stderr, "F12 snapshot failed: %s\n",
                   committed.ToString().c_str());
      std::abort();
    }
  }
  std::vector<std::string> files =
      bench::Unwrap(ListDir(setup->dir), "list");
  for (const std::string& name : files) {
    setup->file_mb +=
        static_cast<double>(
            bench::Unwrap(FileSize(setup->dir + "/" + name), "size")) /
        (1024.0 * 1024.0);
  }

  // Open phase: attach + recover, then drop the store (keeps the mounted
  // extents, releases the lock).
  double rss0 = RssMb();
  {
    auto store = bench::Unwrap(
        SessionStore::Attach(setup->dir, setup->options), "reattach");
    setup->state = bench::Unwrap(store->Recover(), "recover");
  }
  setup->rss_open_mb = RssMb() - rss0;

  // The F5 selective point query, parsed against the *recovered* catalog,
  // primed once so the benchmark loop measures the warm steady state.
  setup->selective = bench::Unwrap(
      ParseQuery("qsel(C, R) :- sale(C, P), product(P, 5001), customer(C, R).",
                 setup->state.catalog.get()),
      "selective query");
  bench::Unwrap(
      EvaluateQuery(setup->selective, setup->state.base, IndexedOptions()),
      "prime");
  setup->rss_answer_mb = RssMb() - rss0;
  return setup;
}

F12Setup& GetSetup(int db_size, bool use_mmap) {
  static auto* cache = new std::map<std::pair<int, bool>,
                                    std::unique_ptr<F12Setup>>();
  std::unique_ptr<F12Setup>& slot = (*cache)[{db_size, use_mmap}];
  if (slot == nullptr) slot = MakeSetup(db_size, use_mmap);
  return *slot;
}

void ExportCounters(benchmark::State& state, const F12Setup& setup) {
  state.counters["file_mb"] = setup.file_mb;
  state.counters["rss_open_mb"] = setup.rss_open_mb;
  state.counters["rss_answer_mb"] = setup.rss_answer_mb;
  state.counters["base_tuples"] =
      static_cast<double>(setup.state.base.TotalTuples());
}

void BM_F12_OpenRecover(benchmark::State& state) {
  F12Setup& setup = GetSetup(static_cast<int>(state.range(0)),
                             state.range(1) != 0);
  uint64_t rows = 0;
  for (auto _ : state) {
    auto store = bench::Unwrap(
        SessionStore::Attach(setup.dir, setup.options), "attach");
    RecoveredState recovered = bench::Unwrap(store->Recover(), "recover");
    rows = recovered.base.TotalTuples();
    benchmark::DoNotOptimize(recovered);
  }
  state.SetItemsProcessed(static_cast<int64_t>(rows) * state.iterations());
  ExportCounters(state, setup);
}

void BM_F12_SelectiveAnswerPersisted(benchmark::State& state) {
  F12Setup& setup = GetSetup(static_cast<int>(state.range(0)),
                             state.range(1) != 0);
  size_t answers = 0;
  EvalStats stats;
  for (auto _ : state) {
    stats = EvalStats();
    Relation r = bench::Unwrap(
        EvaluateQuery(setup.selective, setup.state.base, IndexedOptions(),
                      &stats),
        "eval");
    answers = r.size();
    benchmark::DoNotOptimize(r);
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["answers"] = static_cast<double>(answers);
  state.counters["index_hits"] = static_cast<double>(stats.index_hits);
  state.counters["index_builds"] = static_cast<double>(stats.index_builds);
  ExportCounters(state, setup);
}

/// size x {Columnar=0, Mmap=1}, labeled so reports read
/// BM_F12_.../<size>/Mmap:0|1.
void F12Args(benchmark::internal::Benchmark* b) {
  b->ArgNames({"size", "Mmap"});
  for (int size : {100'000, 1'000'000}) {
    b->Args({size, 1});
    b->Args({size, 0});
  }
}

BENCHMARK(BM_F12_OpenRecover)->Apply(F12Args)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_F12_SelectiveAnswerPersisted)
    ->Apply(F12Args)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace aqv

int main(int argc, char** argv) {
  aqv::bench::Banner("F12", "answering off persisted extents: mmap vs "
                            "eager columnar open (args: fact-table size, "
                            "mmap=0/1)");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
