/// T4 — Certain-answer computation cost across the two maximally-contained
/// routes, on LAV scenarios with growing data:
///   (a) MiniCon union rewriting, then evaluate over extents;
///   (b) inverse rules: reconstruct skolemized base facts, evaluate, filter.
/// Counters confirm both routes return the same number of certain answers
/// (`agree` must be 1) — the cross-implementation agreement that backs the
/// correctness claims, timed at realistic sizes.

#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "eval/certain.h"
#include "eval/materialize.h"
#include "rewriting/inverse_rules.h"
#include "rewriting/minicon.h"
#include "workload/scenarios.h"

namespace aqv {
namespace {

struct T4Setup {
  Scenario scenario;
  ViewSet reduced;  // without the pre-joined source: contained-only regime
  Database extents;
};

T4Setup MakeSetup(int db_size) {
  T4Setup setup{bench::Unwrap(MakeTravelScenario(23, db_size), "scenario"),
                ViewSet(), Database()};
  for (const View& v : setup.scenario.views.views()) {
    if (v.name() != "goodflights") {
      Status st = setup.reduced.Add(v.definition);
      if (!st.ok()) {
        std::fprintf(stderr, "T4 setup: %s\n", st.ToString().c_str());
        std::abort();
      }
    }
  }
  setup.extents = bench::Unwrap(
      MaterializeViews(setup.reduced, setup.scenario.base), "materialize");
  return setup;
}

void BM_T4_MiniConRoute(benchmark::State& state) {
  T4Setup setup = MakeSetup(static_cast<int>(state.range(0)));
  size_t answers = 0;
  for (auto _ : state) {
    MiniConResult mc = bench::Unwrap(
        MiniConRewrite(setup.scenario.query, setup.reduced), "minicon");
    if (mc.rewritings.empty()) {
      answers = 0;
      continue;
    }
    Relation r = bench::Unwrap(
        EvaluateRewritingUnion(setup.scenario.query, mc.rewritings, setup.extents), "eval");
    answers = r.size();
    benchmark::DoNotOptimize(r);
  }
  state.counters["answers"] = static_cast<double>(answers);
}

void BM_T4_InverseRulesRoute(benchmark::State& state) {
  T4Setup setup = MakeSetup(static_cast<int>(state.range(0)));
  size_t answers = 0;
  for (auto _ : state) {
    InverseRuleSet ir =
        bench::Unwrap(BuildInverseRules(setup.reduced), "inverse rules");
    Relation r = bench::Unwrap(
        CertainAnswersViaInverseRules(setup.scenario.query, ir, setup.extents),
        "eval");
    answers = r.size();
    benchmark::DoNotOptimize(r);
  }
  state.counters["answers"] = static_cast<double>(answers);
}

void BM_T4_Agreement(benchmark::State& state) {
  T4Setup setup = MakeSetup(static_cast<int>(state.range(0)));
  double agree = 0;
  for (auto _ : state) {
    MiniConResult mc = bench::Unwrap(
        MiniConRewrite(setup.scenario.query, setup.reduced), "minicon");
    InverseRuleSet ir =
        bench::Unwrap(BuildInverseRules(setup.reduced), "inverse rules");
    Relation via_ir = bench::Unwrap(
        CertainAnswersViaInverseRules(setup.scenario.query, ir, setup.extents),
        "ir eval");
    if (mc.rewritings.empty()) {
      agree = via_ir.empty() ? 1.0 : 0.0;
      continue;
    }
    Relation via_mc = bench::Unwrap(
        EvaluateRewritingUnion(setup.scenario.query, mc.rewritings, setup.extents), "mc eval");
    agree = Relation::SameSet(via_mc, via_ir) ? 1.0 : 0.0;
    benchmark::DoNotOptimize(via_mc);
  }
  state.counters["agree"] = agree;  // must be 1
}

void T4Args(benchmark::internal::Benchmark* b) {
  for (int size : {100, 1'000, 10'000}) b->Args({size});
}

BENCHMARK(BM_T4_MiniConRoute)->Apply(T4Args)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_T4_InverseRulesRoute)
    ->Apply(T4Args)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_T4_Agreement)->Apply(T4Args)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace aqv

int main(int argc, char** argv) {
  aqv::bench::Banner("T4", "certain answers: MiniCon route vs inverse-rules "
                           "route, travel scenario (arg: base size)");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
