/// F10 — the frontend session layer: what the surface costs on top of the
/// library it fronts. All variants drive the packaged LAV scenarios
/// (workload/registry.h) rendered into the command syntax by
/// frontend/replay.h, so the numbers reflect realistic session traffic:
///
///   BM_F10_ScriptReplay    parse + execute a whole scenario script
///                          (views, every base fact, the query) into a
///                          fresh Session — the command-ingest rate, in
///                          commands/s.
///   BM_F10_AnswerCommand   `answer route <r>` dispatched through a
///                          preloaded Session (command parse + pipeline).
///   BM_F10_AnswerApi       the same AnswerRequest called directly on
///                          AnswerQuery — the floor; the gap to
///                          AnswerCommand is the frontend dispatch tax.
///
/// The dispatch tax should stay in the noise: the frontend's job is
/// plumbing, and this bench is the regression guard on that claim.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "answering/answering.h"
#include "bench_common.h"
#include "frontend/replay.h"
#include "frontend/session.h"
#include "workload/registry.h"

namespace aqv {
namespace {

struct F10Setup {
  std::unique_ptr<Scenario> scenario;
  std::string script;
};

F10Setup MakeSetup(const std::string& scenario_name, int db_size) {
  F10Setup setup;
  setup.scenario = std::make_unique<Scenario>(bench::Unwrap(
      MakeScenarioByName(scenario_name, /*seed=*/21, db_size), "scenario"));
  setup.script =
      bench::Unwrap(ScriptFromScenario(*setup.scenario), "script");
  return setup;
}

void RunScriptReplay(benchmark::State& state,
                     const std::string& scenario_name) {
  F10Setup setup = MakeSetup(scenario_name, static_cast<int>(state.range(0)));
  size_t commands = 0;
  for (auto _ : state) {
    Session session;
    std::vector<CommandResult> results = session.ExecuteScript(setup.script);
    commands = session.commands_executed();
    for (const CommandResult& r : results) {
      if (!r.ok()) {
        state.SkipWithError(r.status.ToString().c_str());
        return;
      }
    }
    benchmark::DoNotOptimize(results);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(commands));
  state.counters["commands"] = static_cast<double>(commands);
}

void RunAnswerCommand(benchmark::State& state,
                      const std::string& scenario_name,
                      const std::string& route) {
  F10Setup setup = MakeSetup(scenario_name, static_cast<int>(state.range(0)));
  Session session;
  for (const CommandResult& r : session.ExecuteScript(setup.script)) {
    if (!r.ok()) {
      state.SkipWithError(r.status.ToString().c_str());
      return;
    }
  }
  std::string command = "answer route " + route;
  size_t answers = 0;
  for (auto _ : state) {
    CommandResult result = session.Execute(command);
    if (!result.ok()) {
      state.SkipWithError(result.status.ToString().c_str());
      return;
    }
    answers = static_cast<size_t>(
        std::count(result.output.begin(), result.output.end(), '\n'));
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["answers"] = static_cast<double>(answers);
}

void RunAnswerApi(benchmark::State& state, const std::string& scenario_name,
                  AnswerRoute route) {
  F10Setup setup = MakeSetup(scenario_name, static_cast<int>(state.range(0)));
  AnswerRequest request;
  request.query.disjuncts.push_back(setup.scenario->query);
  request.views = &setup.scenario->views;
  request.base = &setup.scenario->base;
  request.route = route;
  size_t answers = 0;
  for (auto _ : state) {
    AnswerResponse response;
    if (!bench::UnwrapOrSkip(AnswerQuery(request), state, &response)) return;
    answers = response.result.size();
    benchmark::DoNotOptimize(response);
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["answers"] = static_cast<double>(answers);
}

void F10Args(benchmark::internal::Benchmark* b) {
  b->Arg(50)->Arg(200)->Unit(benchmark::kMillisecond);
}

void RegisterAll() {
  for (const std::string& scenario : ScenarioNames()) {
    std::string replay = "BM_F10_ScriptReplay/" + scenario;
    benchmark::RegisterBenchmark(
        replay.c_str(),
        [scenario](benchmark::State& state) {
          RunScriptReplay(state, scenario);
        })
        ->Apply(F10Args);
    for (const std::string& route : {std::string("direct"),
                                     std::string("complete"),
                                     std::string("cost")}) {
      std::string cmd = "BM_F10_AnswerCommand/" + scenario + "/" + route;
      benchmark::RegisterBenchmark(
          cmd.c_str(),
          [scenario, route](benchmark::State& state) {
            RunAnswerCommand(state, scenario, route);
          })
          ->Apply(F10Args);
    }
    std::string api = "BM_F10_AnswerApi/" + scenario + "/direct";
    benchmark::RegisterBenchmark(
        api.c_str(),
        [scenario](benchmark::State& state) {
          RunAnswerApi(state, scenario, AnswerRoute::kDirect);
        })
        ->Apply(F10Args);
  }
}

}  // namespace
}  // namespace aqv

int main(int argc, char** argv) {
  aqv::bench::Banner("F10", "frontend session layer: script replay and "
                            "command dispatch over the answering pipeline");
  aqv::RegisterAll();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
