/// F10 — the frontend session layer: what the surface costs on top of the
/// library it fronts. All variants drive the packaged LAV scenarios
/// (workload/registry.h) rendered into the command syntax by
/// frontend/replay.h, so the numbers reflect realistic session traffic:
///
///   BM_F10_ScriptReplay    parse + execute a whole scenario script
///                          (views, every base fact, the query) into a
///                          fresh Session — the command-ingest rate, in
///                          commands/s.
///   BM_F10_AnswerCommand   `answer route <r>` dispatched through a
///                          preloaded Session (command parse + pipeline).
///   BM_F10_AnswerApi       the same AnswerRequest called directly on
///                          AnswerQuery — the floor; the gap to
///                          AnswerCommand is the frontend dispatch tax.
///
/// The dispatch tax should stay in the noise: the frontend's job is
/// plumbing, and this bench is the regression guard on that claim.
///
/// PR 10 adds the epoll TCP server sweeps:
///
///   BM_F10_ServerManyConnections/N   N concurrent clients replaying one
///                          scenario script against a single shared-cache
///                          server (N = 1..128; the epoll loop multiplexes
///                          all of them onto one worker pool) — aggregate
///                          commands/s.
///   BM_F10_ServerRepeatedQueryHitRate/N  the shared-schema repeated-query
///                          regime: N successive connections re-issuing the
///                          same rewrite/answer probes through the shared
///                          oracle + plan cache, byte-compared against a
///                          per-connection-cache server on every repeat.
///                          Counters surface the steady-state oracle, plan,
///                          and combined hit rates and the byte_identical
///                          attestation.

#include <benchmark/benchmark.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "answering/answering.h"
#include "bench_common.h"
#include "frontend/replay.h"
#include "frontend/server.h"
#include "frontend/session.h"
#include "workload/registry.h"

namespace aqv {
namespace {

struct F10Setup {
  std::unique_ptr<Scenario> scenario;
  std::string script;
};

F10Setup MakeSetup(const std::string& scenario_name, int db_size) {
  F10Setup setup;
  setup.scenario = std::make_unique<Scenario>(bench::Unwrap(
      MakeScenarioByName(scenario_name, /*seed=*/21, db_size), "scenario"));
  setup.script =
      bench::Unwrap(ScriptFromScenario(*setup.scenario), "script");
  return setup;
}

void RunScriptReplay(benchmark::State& state,
                     const std::string& scenario_name) {
  F10Setup setup = MakeSetup(scenario_name, static_cast<int>(state.range(0)));
  size_t commands = 0;
  for (auto _ : state) {
    Session session;
    std::vector<CommandResult> results = session.ExecuteScript(setup.script);
    commands = session.commands_executed();
    for (const CommandResult& r : results) {
      if (!r.ok()) {
        state.SkipWithError(r.status.ToString().c_str());
        return;
      }
    }
    benchmark::DoNotOptimize(results);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(commands));
  state.counters["commands"] = static_cast<double>(commands);
}

void RunAnswerCommand(benchmark::State& state,
                      const std::string& scenario_name,
                      const std::string& route) {
  F10Setup setup = MakeSetup(scenario_name, static_cast<int>(state.range(0)));
  Session session;
  for (const CommandResult& r : session.ExecuteScript(setup.script)) {
    if (!r.ok()) {
      state.SkipWithError(r.status.ToString().c_str());
      return;
    }
  }
  std::string command = "answer route " + route;
  size_t answers = 0;
  for (auto _ : state) {
    CommandResult result = session.Execute(command);
    if (!result.ok()) {
      state.SkipWithError(result.status.ToString().c_str());
      return;
    }
    answers = static_cast<size_t>(
        std::count(result.output.begin(), result.output.end(), '\n'));
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["answers"] = static_cast<double>(answers);
}

void RunAnswerApi(benchmark::State& state, const std::string& scenario_name,
                  AnswerRoute route) {
  F10Setup setup = MakeSetup(scenario_name, static_cast<int>(state.range(0)));
  AnswerRequest request;
  request.query.disjuncts.push_back(setup.scenario->query);
  request.views = &setup.scenario->views;
  request.base = &setup.scenario->base;
  request.route = route;
  size_t answers = 0;
  for (auto _ : state) {
    AnswerResponse response;
    if (!bench::UnwrapOrSkip(AnswerQuery(request), state, &response)) return;
    answers = response.result.size();
    benchmark::DoNotOptimize(response);
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["answers"] = static_cast<double>(answers);
}

void F10Args(benchmark::internal::Benchmark* b) {
  b->Arg(50)->Arg(200)->Unit(benchmark::kMillisecond);
}

// --- epoll server sweeps (PR 10) ---------------------------------------

/// Blocking TCP client: sends `request` in one write, reads to EOF (the
/// request ends in `quit`, so the server closes when done).
std::string ReplayOverTcp(int port, const std::string& request) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return {};
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return {};
  }
  size_t sent = 0;
  while (sent < request.size()) {
    ssize_t n = ::send(fd, request.data() + sent, request.size() - sent, 0);
    if (n <= 0) break;
    sent += static_cast<size_t>(n);
  }
  std::string received;
  char buf[8192];
  ssize_t n;
  while ((n = ::recv(fd, buf, sizeof(buf), 0)) > 0) {
    received.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  return received;
}

/// One whole-session request: the scenario script plus rewrite/answer
/// probes and a closing `quit`.
std::string ProbedRequest(const std::string& scenario_name, int db_size) {
  F10Setup setup = MakeSetup(scenario_name, db_size);
  return setup.script +
         "rewrite with lmss\n"
         "rewrite with minicon\n"
         "answer route complete with lmss\n"
         "quit\n";
}

void RunServerManyConnections(benchmark::State& state) {
  const int clients = static_cast<int>(state.range(0));
  const std::string request = ProbedRequest("warehouse", /*db_size=*/50);
  const size_t commands_per_conn = static_cast<size_t>(
      std::count(request.begin(), request.end(), '\n'));
  ServerOptions options;
  options.share_cache = true;
  options.max_connections = 256;
  FrontendServer server(options);
  if (!server.Start().ok()) {
    state.SkipWithError("server start failed");
    return;
  }
  for (auto _ : state) {
    std::vector<std::string> responses(static_cast<size_t>(clients));
    std::vector<std::thread> threads;
    threads.reserve(static_cast<size_t>(clients));
    for (int c = 0; c < clients; ++c) {
      threads.emplace_back([&, c] {
        responses[static_cast<size_t>(c)] =
            ReplayOverTcp(server.port(), request);
      });
    }
    for (std::thread& t : threads) t.join();
    for (int c = 1; c < clients; ++c) {
      if (responses[static_cast<size_t>(c)] != responses[0]) {
        state.SkipWithError("cross-connection response mismatch");
        return;
      }
    }
    if (responses[0].empty()) {
      state.SkipWithError("empty response");
      return;
    }
    benchmark::DoNotOptimize(responses);
  }
  state.SetItemsProcessed(state.iterations() * clients *
                          static_cast<int64_t>(commands_per_conn));
  state.counters["clients"] = static_cast<double>(clients);
  state.counters["commands_per_conn"] =
      static_cast<double>(commands_per_conn);
  state.counters["oracle_hit_rate"] = server.oracle().stats().hit_rate();
  state.counters["plan_hit_rate"] = server.plan_cache().stats().hit_rate();
  server.Stop();
}

void RunServerRepeatedQueryHitRate(benchmark::State& state) {
  const int repeats = static_cast<int>(state.range(0));
  const std::string request = ProbedRequest("warehouse", /*db_size=*/50);
  ServerOptions shared;
  shared.share_cache = true;
  ServerOptions isolated;
  isolated.share_cache = false;
  FrontendServer shared_server(shared);
  FrontendServer isolated_server(isolated);
  if (!shared_server.Start().ok() || !isolated_server.Start().ok()) {
    state.SkipWithError("server start failed");
    return;
  }
  bool identical = true;
  for (auto _ : state) {
    for (int r = 0; r < repeats; ++r) {
      // A fresh connection per repeat: the hits below are genuinely
      // cross-connection (each repeat's catalog is new), and every repeat
      // is byte-compared against the per-connection-cache server.
      std::string cached = ReplayOverTcp(shared_server.port(), request);
      std::string uncached = ReplayOverTcp(isolated_server.port(), request);
      identical = identical && !cached.empty() && cached == uncached;
      benchmark::DoNotOptimize(cached);
    }
  }
  if (!identical) {
    state.SkipWithError("shared-cache response diverged from per-conn run");
    return;
  }
  OracleStats oracle = shared_server.oracle().stats();
  PlanCacheStats plans = shared_server.plan_cache().stats();
  const double lookups =
      static_cast<double>(oracle.lookups() + plans.lookups());
  state.SetItemsProcessed(state.iterations() * repeats);
  state.counters["repeats"] = static_cast<double>(repeats);
  state.counters["oracle_hit_rate"] = oracle.hit_rate();
  state.counters["plan_hit_rate"] = plans.hit_rate();
  state.counters["combined_hit_rate"] =
      lookups == 0.0
          ? 0.0
          : static_cast<double>(oracle.hits + plans.hits) / lookups;
  state.counters["byte_identical"] = 1.0;
  shared_server.Stop();
  isolated_server.Stop();
}

void RegisterAll() {
  for (const std::string& scenario : ScenarioNames()) {
    std::string replay = "BM_F10_ScriptReplay/" + scenario;
    benchmark::RegisterBenchmark(
        replay.c_str(),
        [scenario](benchmark::State& state) {
          RunScriptReplay(state, scenario);
        })
        ->Apply(F10Args);
    for (const std::string& route : {std::string("direct"),
                                     std::string("complete"),
                                     std::string("cost")}) {
      std::string cmd = "BM_F10_AnswerCommand/" + scenario + "/" + route;
      benchmark::RegisterBenchmark(
          cmd.c_str(),
          [scenario, route](benchmark::State& state) {
            RunAnswerCommand(state, scenario, route);
          })
          ->Apply(F10Args);
    }
    std::string api = "BM_F10_AnswerApi/" + scenario + "/direct";
    benchmark::RegisterBenchmark(
        api.c_str(),
        [scenario](benchmark::State& state) {
          RunAnswerApi(state, scenario, AnswerRoute::kDirect);
        })
        ->Apply(F10Args);
  }
  benchmark::RegisterBenchmark("BM_F10_ServerManyConnections",
                               RunServerManyConnections)
      ->Arg(1)
      ->Arg(8)
      ->Arg(32)
      ->Arg(128)
      ->Unit(benchmark::kMillisecond)
      ->UseRealTime();
  benchmark::RegisterBenchmark("BM_F10_ServerRepeatedQueryHitRate",
                               RunServerRepeatedQueryHitRate)
      ->Arg(2)
      ->Arg(8)
      ->Arg(32)
      ->Unit(benchmark::kMillisecond)
      ->UseRealTime();
}

}  // namespace
}  // namespace aqv

int main(int argc, char** argv) {
  aqv::bench::Banner("F10", "frontend session layer: script replay and "
                            "command dispatch over the answering pipeline");
  aqv::RegisterAll();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
