/// F11 — the scenario-family generator and the soak-script path it feeds
/// (workload/generator.h, frontend/replay.h): what scenario synthesis
/// and script rendering cost, and how fast a Session ingests a churning
/// probed soak script. The soak driver's throughput ceiling is whichever
/// of these is slowest, so each stage gets its own number:
///
///   BM_F11_Generate          GenerateScenario at 100 / 300 / 1000 views
///                            — catalog + views + Zipf base synthesis.
///   BM_F11_RenderSoakScript  SoakScriptFromScenario with churn: the
///                            script-rendering rate, in commands/s.
///   BM_F11_SoakReplay        a fresh Session executing the rendered
///                            soak script end to end (views, facts,
///                            churn resets, probes) — commands/s; the
///                            probe-heavy cousin of BM_F10_ScriptReplay.

#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "bench_common.h"
#include "frontend/differential.h"
#include "frontend/replay.h"
#include "frontend/session.h"
#include "workload/generator.h"

namespace aqv {
namespace {

GeneratedScenarioSpec SpecWithViews(int num_views) {
  GeneratedScenarioSpec spec;
  spec.seed = 17;
  spec.num_predicates = 16;
  spec.num_views = num_views;
  spec.facts_per_predicate = 10;
  spec.domain_size = 24;
  return spec;
}

void BM_F11_Generate(benchmark::State& state) {
  GeneratedScenarioSpec spec = SpecWithViews(static_cast<int>(state.range(0)));
  int views = 0;
  for (auto _ : state) {
    Scenario scenario;
    if (!bench::UnwrapOrSkip(GenerateScenario(spec), state, &scenario)) {
      return;
    }
    views = scenario.views.size();
    benchmark::DoNotOptimize(scenario);
  }
  state.SetItemsProcessed(state.iterations() * views);
  state.counters["views"] = static_cast<double>(views);
}
BENCHMARK(BM_F11_Generate)->Arg(100)->Arg(300)->Arg(1000)->Unit(
    benchmark::kMillisecond);

void BM_F11_RenderSoakScript(benchmark::State& state) {
  GeneratedScenarioSpec spec = SpecWithViews(static_cast<int>(state.range(0)));
  Scenario scenario = bench::Unwrap(GenerateScenario(spec), "scenario");
  SoakScriptOptions options;
  options.seed = 3;
  options.churn_cycles = 2;
  size_t commands = 0;
  for (auto _ : state) {
    SoakScript script;
    if (!bench::UnwrapOrSkip(SoakScriptFromScenario(scenario, options), state,
                             &script)) {
      return;
    }
    commands = SplitScriptLines(script.text).size();
    benchmark::DoNotOptimize(script);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(commands));
  state.counters["commands"] = static_cast<double>(commands);
}
BENCHMARK(BM_F11_RenderSoakScript)->Arg(100)->Arg(300)->Unit(
    benchmark::kMillisecond);

void BM_F11_SoakReplay(benchmark::State& state) {
  GeneratedScenarioSpec spec = SpecWithViews(static_cast<int>(state.range(0)));
  Scenario scenario = bench::Unwrap(GenerateScenario(spec), "scenario");
  SoakScriptOptions options;
  options.seed = 3;
  // Probes across every route are the expensive part; churn multiplies
  // the view/fact ingest volume.
  options.churn_cycles = state.range(1) == 0 ? 0 : 2;
  SoakScript script =
      bench::Unwrap(SoakScriptFromScenario(scenario, options), "script");
  size_t commands = 0;
  for (auto _ : state) {
    Session session;
    std::vector<CommandResult> results = session.ExecuteScript(script.text);
    commands = session.commands_executed();
    for (const CommandResult& r : results) {
      if (!r.ok()) {
        state.SkipWithError(r.status.ToString().c_str());
        return;
      }
    }
    benchmark::DoNotOptimize(results);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(commands));
  state.counters["commands"] = static_cast<double>(commands);
}
BENCHMARK(BM_F11_SoakReplay)
    ->Args({100, 0})
    ->Args({100, 2})
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace aqv

int main(int argc, char** argv) {
  aqv::bench::Banner("F11", "scenario-family generator: synthesis, soak-"
                            "script rendering, and probed session replay");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
