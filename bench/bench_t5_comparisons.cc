/// T5 — The comparison-predicate hardness jump (paper result R4), measured:
/// linearization counts grow at ordered-Bell scale with the number of
/// order-relevant terms, and the complete containment test's cost follows.
/// The comparison-free homomorphism test on the same relational skeletons
/// is the polynomial baseline the jump is measured against.

#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "containment/comparison_containment.h"
#include "containment/containment.h"
#include "cq/parser.h"

namespace aqv {
namespace {

/// q over a k-clique of "less-than-or-equal" constrained variables.
std::string OrderedQueryText(const char* head, int k, bool with_order) {
  std::string body;
  for (int i = 0; i < k; ++i) {
    if (i) body += ", ";
    body += "r(X" + std::to_string(i) + ", X" + std::to_string(i + 1) + ")";
  }
  if (with_order) {
    body += ", X0 <= X" + std::to_string(k);
  }
  return std::string(head) + "(X0, X" + std::to_string(k) + ") :- " + body +
         ".";
}

void BM_T5_LinearizationCount(benchmark::State& state) {
  Catalog cat;
  int k = static_cast<int>(state.range(0));
  Query q = ParseQuery(OrderedQueryText("q", k, false), &cat).value();
  std::vector<VarId> vars;
  for (int v = 0; v <= k; ++v) vars.push_back(v);
  size_t count = 0;
  for (auto _ : state) {
    auto lins = EnumerateLinearizations(q, vars, {}, 50'000'000);
    if (!lins.ok()) {
      state.SkipWithError(lins.status().ToString().c_str());
      return;
    }
    count = lins.value().size();
    benchmark::DoNotOptimize(lins);
  }
  state.counters["linearizations"] = static_cast<double>(count);
}

void BM_T5_ComparisonContainment(benchmark::State& state) {
  Catalog cat;
  int k = static_cast<int>(state.range(0));
  Query sub = ParseQuery(OrderedQueryText("qs", k, true), &cat).value();
  Query super = ParseQuery(OrderedQueryText("qt", k, false), &cat).value();
  ContainmentOptions opts;
  opts.linearization_cap = 50'000'000;
  bool contained = false;
  for (auto _ : state) {
    auto r = IsContainedIn(sub, super, opts);
    if (!r.ok()) {
      state.SkipWithError(r.status().ToString().c_str());
      return;
    }
    contained = r.value();
    benchmark::DoNotOptimize(r);
  }
  state.counters["contained"] = contained ? 1 : 0;  // must be 1
}

void BM_T5_PlainBaseline(benchmark::State& state) {
  // Same relational skeleton, no comparisons: polynomial-ish homomorphism
  // check (the R4 jump's denominator).
  Catalog cat;
  int k = static_cast<int>(state.range(0));
  Query sub = ParseQuery(OrderedQueryText("pa", k, false), &cat).value();
  Query super = ParseQuery(OrderedQueryText("pb", k, false), &cat).value();
  for (auto _ : state) {
    bool c = IsContainedIn(sub, super).value();
    benchmark::DoNotOptimize(c);
  }
}

void BM_T5_SatisfiabilityCheck(benchmark::State& state) {
  // The polynomial satisfiability test stays cheap at any size — the
  // contrast inside the comparison machinery itself.
  Catalog cat;
  int k = static_cast<int>(state.range(0));
  std::string body;
  for (int i = 0; i < k; ++i) {
    if (i) body += ", ";
    body += "r(X" + std::to_string(i) + ", X" + std::to_string(i + 1) + ")";
  }
  for (int i = 0; i < k; ++i) {
    body += ", X" + std::to_string(i) + " <= X" + std::to_string(i + 1);
  }
  Query q = ParseQuery("qsat(X0) :- " + body + ".", &cat).value();
  for (auto _ : state) {
    bool sat = ComparisonsSatisfiable(q);
    benchmark::DoNotOptimize(sat);
  }
}

BENCHMARK(BM_T5_LinearizationCount)
    ->DenseRange(1, 6, 1)
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_T5_ComparisonContainment)
    ->DenseRange(1, 6, 1)
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_T5_PlainBaseline)
    ->DenseRange(1, 6, 1)
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_T5_SatisfiabilityCheck)
    ->DenseRange(4, 24, 4)
    ->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace aqv

int main(int argc, char** argv) {
  aqv::bench::Banner("T5", "comparison-predicate hardness: linearization "
                           "blow-up vs polynomial baselines (arg: #terms-1)");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
