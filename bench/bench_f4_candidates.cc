/// F4 — Candidate-space sizes vs number of views on the chain workload:
/// bucket entries per subgoal, MCD count, canonical view tuples, and the
/// combination counts each algorithm enumerates. This figure explains the
/// F1–F3 time curves: Bucket's cost tracks the product of bucket sizes,
/// MiniCon's tracks the (much smaller) number of disjoint MCD covers.

#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "rewriting/bucket.h"
#include "rewriting/candidates.h"
#include "rewriting/minicon.h"
#include "util/rng.h"
#include "workload/generators.h"

namespace aqv {
namespace {

struct Instance {
  Catalog catalog;
  Query query;
  ViewSet views;
};

Instance MakeInstance(int chain_length, int num_views, uint64_t seed) {
  Instance inst;
  ChainViewSpec vspec;
  vspec.chain.length = chain_length;
  vspec.num_views = num_views;
  vspec.min_length = 1;
  vspec.max_length = 3;
  vspec.policy = DistinguishedPolicy::kEnds;
  Rng rng(seed);
  inst.query = bench::Unwrap(MakeChainQuery(&inst.catalog, vspec.chain),
                             "chain query");
  inst.views =
      bench::Unwrap(MakeChainViews(&inst.catalog, &rng, vspec), "chain views");
  return inst;
}

void BM_F4_BucketEntries(benchmark::State& state) {
  Instance inst = MakeInstance(4, static_cast<int>(state.range(0)), 73);
  double entries = 0, product = 1, combos = 0;
  for (auto _ : state) {
    BucketResult r;
    if (!bench::UnwrapOrSkip(BucketRewrite(inst.query, inst.views), state,
                             &r)) {
      return;
    }
    entries = 0;
    product = 1;
    for (const auto& bucket : r.buckets) {
      entries += static_cast<double>(bucket.size());
      product *= static_cast<double>(bucket.size());
    }
    combos = static_cast<double>(r.combinations_enumerated);
    benchmark::DoNotOptimize(r);
  }
  state.counters["entries_total"] = entries;
  state.counters["bucket_product"] = product;
  state.counters["combinations"] = combos;
}

void BM_F4_Mcds(benchmark::State& state) {
  Instance inst = MakeInstance(4, static_cast<int>(state.range(0)), 73);
  double mcds = 0, combos = 0, rewritings = 0;
  for (auto _ : state) {
    MiniConResult r =
        bench::Unwrap(MiniConRewrite(inst.query, inst.views), "minicon");
    mcds = static_cast<double>(r.mcds.size());
    combos = static_cast<double>(r.combinations_enumerated);
    rewritings = static_cast<double>(r.rewritings.size());
    benchmark::DoNotOptimize(r);
  }
  state.counters["mcds"] = mcds;
  state.counters["combinations"] = combos;
  state.counters["rewritings"] = rewritings;
}

void BM_F4_CanonicalTuples(benchmark::State& state) {
  Instance inst = MakeInstance(4, static_cast<int>(state.range(0)), 73);
  double tuples = 0;
  for (auto _ : state) {
    std::vector<ViewAtomCandidate> pool = bench::Unwrap(
        CanonicalViewTuples(inst.query, inst.views), "tuples");
    tuples = static_cast<double>(pool.size());
    benchmark::DoNotOptimize(pool);
  }
  state.counters["tuples"] = tuples;
}

void F4Args(benchmark::internal::Benchmark* b) {
  for (int views : {5, 10, 20, 40, 80, 140}) b->Args({views});
}

// The bucket product at 80+ views runs minutes per iteration; the curve is
// unambiguous by 40 (see also F1's asymmetric grids).
void F4BucketArgs(benchmark::internal::Benchmark* b) {
  for (int views : {5, 10, 20, 40}) b->Args({views});
}

BENCHMARK(BM_F4_BucketEntries)
    ->Apply(F4BucketArgs)
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_F4_Mcds)->Apply(F4Args)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_F4_CanonicalTuples)
    ->Apply(F4Args)
    ->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace aqv

int main(int argc, char** argv) {
  aqv::bench::Banner("F4", "candidate-space sizes vs #views, chain length 4 "
                           "(arg: num_views)");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
