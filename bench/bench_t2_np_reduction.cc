/// T2 — The NP-hardness reduction as a measurable artifact (paper result
/// R2): 3-SAT formulas run through the 3-coloring reduction into
/// rewriting-existence instances. Counters report the SAT/rewriting
/// agreement (must be perfect on planted-SAT and crafted-UNSAT families)
/// and the timing shows the decision cost growing with formula size —
/// the hardness made visible.

#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "rewriting/hardness.h"
#include "rewriting/lmss.h"
#include "util/rng.h"

namespace aqv {
namespace {

Formula3Sat PlantedFormula(Rng* rng, int num_vars, int num_clauses) {
  uint64_t assignment = rng->Next();
  Formula3Sat f = RandomFormula(rng, num_vars, num_clauses);
  for (Clause3& c : f.clauses) {
    bool satisfied = false;
    for (int lit : c.lits) {
      int var = lit > 0 ? lit : -lit;
      bool value = (assignment >> (var - 1)) & 1;
      if ((lit > 0) == value) satisfied = true;
    }
    if (!satisfied) {
      int var = c.lits[0] > 0 ? c.lits[0] : -c.lits[0];
      c.lits[0] = ((assignment >> (var - 1)) & 1) ? var : -var;
    }
  }
  return f;
}

Formula3Sat CraftedUnsat() {
  Formula3Sat f;
  f.num_vars = 2;
  f.clauses.push_back({{1, 1, 2}});
  f.clauses.push_back({{1, 1, -2}});
  f.clauses.push_back({{-1, -1, 2}});
  f.clauses.push_back({{-1, -1, -2}});
  return f;
}

void BM_T2_PlantedSatDecision(benchmark::State& state) {
  Rng rng(9000 + state.range(0));
  Formula3Sat f = PlantedFormula(&rng, static_cast<int>(state.range(0)),
                                 static_cast<int>(state.range(1)));
  HardnessInstance inst =
      bench::Unwrap(FormulaToRewritingInstance(f), "reduction");
  int agreements = 0, total = 0;
  for (auto _ : state) {
    LmssOptions opts;
    opts.candidates.node_budget = 100'000'000;
    opts.candidates.max_homs_per_view = 4;
    bool exists = false;
    if (!bench::UnwrapOrSkip(
            ExistsEquivalentRewriting(inst.query, inst.views, opts), state,
            &exists)) {
      return;  // NP-hard instance exceeded its budget: reported as skipped
    }
    ++total;
    agreements += exists ? 1 : 0;  // planted => satisfiable => must exist
    benchmark::DoNotOptimize(exists);
  }
  state.counters["agreement"] =
      total > 0 && agreements == total ? 1.0 : 0.0;
  state.counters["view_atoms"] =
      static_cast<double>(inst.views.view(0).definition.body().size());
}

void BM_T2_CraftedUnsatDecision(benchmark::State& state) {
  HardnessInstance inst =
      bench::Unwrap(FormulaToRewritingInstance(CraftedUnsat()), "reduction");
  int agreements = 0, total = 0;
  for (auto _ : state) {
    LmssOptions opts;
    opts.candidates.node_budget = 100'000'000;
    opts.candidates.max_homs_per_view = 4;
    bool exists = true;
    if (!bench::UnwrapOrSkip(
            ExistsEquivalentRewriting(inst.query, inst.views, opts), state,
            &exists)) {
      return;
    }
    ++total;
    agreements += exists ? 0 : 1;  // unsat => no rewriting
    benchmark::DoNotOptimize(exists);
  }
  state.counters["agreement"] =
      total > 0 && agreements == total ? 1.0 : 0.0;
}

void BM_T2_ReductionConstruction(benchmark::State& state) {
  Rng rng(4100);
  Formula3Sat f = PlantedFormula(&rng, static_cast<int>(state.range(0)),
                                 static_cast<int>(state.range(1)));
  for (auto _ : state) {
    HardnessInstance inst =
        bench::Unwrap(FormulaToRewritingInstance(f), "reduction");
    benchmark::DoNotOptimize(inst);
  }
}

BENCHMARK(BM_T2_PlantedSatDecision)
    ->Args({3, 4})
    ->Args({4, 6})
    ->Args({4, 8})
    ->Args({5, 10})
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_T2_CraftedUnsatDecision)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_T2_ReductionConstruction)
    ->Args({4, 8})
    ->Args({8, 24})
    ->Args({16, 60})
    ->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace aqv

int main(int argc, char** argv) {
  aqv::bench::Banner(
      "T2", "3-SAT -> rewriting-existence reduction; agreement must be 1 "
            "(args: vars, clauses)");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
