/// F1 — Rewriting time vs number of views on CHAIN queries, the headline
/// figure family of the MiniCon evaluation. Series: Bucket, MiniCon,
/// InverseRules (rule construction), LMSS (equivalent-rewriting decision).
///
/// Expected shape: MiniCon and Bucket both grow with the view count, with
/// Bucket's Cartesian-product-plus-containment-checks dominating as views
/// increase; inverse-rule construction is near-linear and cheapest; the
/// LMSS decision sits between, driven by candidate-pool size.

#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "rewriting/bucket.h"
#include "rewriting/inverse_rules.h"
#include "rewriting/lmss.h"
#include "rewriting/minicon.h"
#include "util/rng.h"
#include "workload/generators.h"

namespace aqv {
namespace {

struct ChainInstance {
  Catalog catalog;
  Query query;
  ViewSet views;
};

ChainInstance MakeInstance(int chain_length, int num_views, uint64_t seed) {
  ChainInstance inst;
  ChainViewSpec vspec;
  vspec.chain.length = chain_length;
  vspec.num_views = num_views;
  vspec.min_length = 1;
  vspec.max_length = 3;
  vspec.policy = DistinguishedPolicy::kEnds;
  Rng rng(seed);
  inst.query = bench::Unwrap(MakeChainQuery(&inst.catalog, vspec.chain),
                             "chain query");
  inst.views =
      bench::Unwrap(MakeChainViews(&inst.catalog, &rng, vspec), "chain views");
  return inst;
}

void BM_F1_Bucket(benchmark::State& state) {
  ChainInstance inst =
      MakeInstance(static_cast<int>(state.range(0)),
                   static_cast<int>(state.range(1)), 97);
  uint64_t rewritings = 0, combos = 0;
  for (auto _ : state) {
    BucketResult r;
    if (!bench::UnwrapOrSkip(BucketRewrite(inst.query, inst.views), state,
                             &r)) {
      return;
    }
    rewritings = r.rewritings.size();
    combos = r.combinations_enumerated;
    benchmark::DoNotOptimize(r);
  }
  state.counters["rewritings"] = static_cast<double>(rewritings);
  state.counters["combinations"] = static_cast<double>(combos);
}

void BM_F1_MiniCon(benchmark::State& state) {
  ChainInstance inst =
      MakeInstance(static_cast<int>(state.range(0)),
                   static_cast<int>(state.range(1)), 97);
  uint64_t rewritings = 0, mcds = 0;
  for (auto _ : state) {
    MiniConResult r =
        bench::Unwrap(MiniConRewrite(inst.query, inst.views), "minicon");
    rewritings = r.rewritings.size();
    mcds = r.mcds.size();
    benchmark::DoNotOptimize(r);
  }
  state.counters["rewritings"] = static_cast<double>(rewritings);
  state.counters["mcds"] = static_cast<double>(mcds);
}

void BM_F1_InverseRules(benchmark::State& state) {
  ChainInstance inst =
      MakeInstance(static_cast<int>(state.range(0)),
                   static_cast<int>(state.range(1)), 97);
  uint64_t rules = 0;
  for (auto _ : state) {
    InverseRuleSet r =
        bench::Unwrap(BuildInverseRules(inst.views), "inverse rules");
    rules = r.rules.size();
    benchmark::DoNotOptimize(r);
  }
  state.counters["rules"] = static_cast<double>(rules);
}

void BM_F1_LmssDecision(benchmark::State& state) {
  ChainInstance inst =
      MakeInstance(static_cast<int>(state.range(0)),
                   static_cast<int>(state.range(1)), 97);
  bool exists = false;
  for (auto _ : state) {
    exists = bench::Unwrap(ExistsEquivalentRewriting(inst.query, inst.views),
                           "lmss");
    benchmark::DoNotOptimize(exists);
  }
  state.counters["exists"] = exists ? 1 : 0;
}

void ChainArgs(benchmark::internal::Benchmark* b) {
  for (int views : {5, 10, 20, 40, 80, 140}) {
    b->Args({4, views});
  }
  b->Args({8, 40});  // longer chain point
}

// Bucket's Cartesian product makes >40 views impractical (that asymmetry IS
// the figure); the other series run the full grid.
void BucketChainArgs(benchmark::internal::Benchmark* b) {
  for (int views : {5, 10, 20, 40}) {
    b->Args({4, views});
  }
}

BENCHMARK(BM_F1_Bucket)
    ->Apply(BucketChainArgs)
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_F1_MiniCon)->Apply(ChainArgs)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_F1_InverseRules)
    ->Apply(ChainArgs)
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_F1_LmssDecision)
    ->Apply(ChainArgs)
    ->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace aqv

int main(int argc, char** argv) {
  aqv::bench::Banner("F1", "rewriting time vs #views, chain queries "
                           "(args: chain_length, num_views)");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
