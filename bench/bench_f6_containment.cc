/// F6 — Containment and minimization micro-costs versus query size: the
/// inner loop of every rewriting engine. Random CQs with controlled
/// subgoal counts; chains as the structured counterpoint.

#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "containment/containment.h"
#include "containment/minimize.h"
#include "cq/substitution.h"
#include "util/rng.h"
#include "workload/generators.h"

namespace aqv {
namespace {

void BM_F6_RandomContainment(benchmark::State& state) {
  Catalog cat;
  Rng rng(1234 + state.range(0));
  RandomQuerySpec spec;
  spec.num_subgoals = static_cast<int>(state.range(0));
  spec.num_vars = std::max<int>(3, state.range(0) / 2 + 1);
  spec.num_predicates = 3;
  spec.head_arity = 2;
  std::vector<std::pair<Query, Query>> pairs;
  for (int i = 0; i < 16; ++i) {
    RandomQuerySpec a = spec, b = spec;
    a.head_name = "qa" + std::to_string(i);
    b.head_name = "qb" + std::to_string(i);
    pairs.push_back({bench::Unwrap(MakeRandomQuery(&cat, &rng, a), "qa"),
                     bench::Unwrap(MakeRandomQuery(&cat, &rng, b), "qb")});
  }
  int contained = 0;
  size_t i = 0;
  for (auto _ : state) {
    const auto& [qa, qb] = pairs[i++ % pairs.size()];
    bool c = bench::Unwrap(IsContainedIn(qa, qb), "containment");
    contained += c;
    benchmark::DoNotOptimize(c);
  }
  state.counters["contained_frac"] =
      benchmark::Counter(static_cast<double>(contained),
                         benchmark::Counter::kAvgIterations);
}

void BM_F6_SelfEquivalence(benchmark::State& state) {
  // Equivalence of a query against its own variable-renamed copy: the
  // always-true fast path that minimization and dedup hit constantly.
  Catalog cat;
  Rng rng(77);
  ChainQuerySpec spec;
  spec.length = static_cast<int>(state.range(0));
  Query q = bench::Unwrap(MakeChainQuery(&cat, spec), "chain");
  Query r = RenameVariables(q, "w");
  for (auto _ : state) {
    bool eq = bench::Unwrap(AreEquivalent(q, r), "equivalence");
    benchmark::DoNotOptimize(eq);
  }
}

void BM_F6_SelfJoinChainContainment(benchmark::State& state) {
  // Single-predicate chains: the classic exponential-ish instance family
  // for containment mapping search.
  Catalog cat;
  ChainQuerySpec spec;
  spec.length = static_cast<int>(state.range(0));
  spec.distinct_predicates = false;
  Query q = bench::Unwrap(MakeChainQuery(&cat, spec), "chain");
  ChainQuerySpec longer = spec;
  longer.length = spec.length + 2;
  longer.head_name = "q2";
  Query q2 = bench::Unwrap(MakeChainQuery(&cat, longer), "chain2");
  for (auto _ : state) {
    bool c = bench::Unwrap(IsContainedIn(q2, q), "containment");
    benchmark::DoNotOptimize(c);
  }
}

void BM_F6_Minimization(benchmark::State& state) {
  // Minimize a chain padded with redundant atom copies.
  Catalog cat;
  ChainQuerySpec spec;
  spec.length = static_cast<int>(state.range(0));
  Query q = bench::Unwrap(MakeChainQuery(&cat, spec), "chain");
  Query padded = q;
  int extra = static_cast<int>(q.body().size());
  for (int i = 0; i < extra; ++i) {
    Atom a = q.body()[i % q.body().size()];
    // Redirect the second argument to a fresh variable: subsumed atom.
    Query* p = &padded;
    VarId fresh = p->AddVariable("R" + std::to_string(i));
    a.args[1] = Term::Var(fresh);
    p->AddBodyAtom(a);
  }
  size_t core_size = 0;
  for (auto _ : state) {
    Query m = bench::Unwrap(Minimize(padded), "minimize");
    core_size = m.body().size();
    benchmark::DoNotOptimize(m);
  }
  state.counters["padded_atoms"] = static_cast<double>(padded.body().size());
  state.counters["core_atoms"] = static_cast<double>(core_size);
}

BENCHMARK(BM_F6_RandomContainment)
    ->DenseRange(2, 12, 2)
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_F6_SelfEquivalence)
    ->DenseRange(2, 14, 3)
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_F6_SelfJoinChainContainment)
    ->DenseRange(2, 10, 2)
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_F6_Minimization)
    ->DenseRange(2, 10, 2)
    ->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace aqv

int main(int argc, char** argv) {
  aqv::bench::Banner("F6", "containment/minimization micro-costs "
                           "(arg: subgoals)");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
