#ifndef AQV_BENCH_BENCH_COMMON_H_
#define AQV_BENCH_BENCH_COMMON_H_

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <string>

#include "util/status.h"

namespace aqv {
namespace bench {

/// Unwraps a Result in bench code; aborts loudly on error (benchmarks must
/// not silently measure failure paths).
template <typename T>
T Unwrap(Result<T> r, const char* what) {
  if (!r.ok()) {
    std::fprintf(stderr, "bench setup failed (%s): %s\n", what,
                 r.status().ToString().c_str());
    std::abort();
  }
  return std::move(r).value();
}

/// Prints an experiment banner so the bench output reads like the
/// EXPERIMENTS.md tables it regenerates.
inline void Banner(const char* id, const char* title) {
  std::printf("==== %s: %s ====\n", id, title);
}

/// Unwraps into *out, or marks the benchmark skipped (resource caps on the
/// exponential algorithms are expected outcomes, not setup bugs).
template <typename T>
bool UnwrapOrSkip(Result<T> r, benchmark::State& state, T* out) {
  if (!r.ok()) {
    state.SkipWithError(r.status().ToString().c_str());
    return false;
  }
  *out = std::move(r).value();
  return true;
}

}  // namespace bench
}  // namespace aqv

#endif  // AQV_BENCH_BENCH_COMMON_H_
