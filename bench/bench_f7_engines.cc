/// F7 — Cross-engine comparison on identical workloads through the unified
/// RewritingEngine layer: every strategy (lmss, bucket, minicon, ucq) on
/// the same chain families and LAV scenarios, with the shared
/// ContainmentOracle on vs. off. Counters surface the oracle's hit rate
/// and entry count, so the memoization win (and its ceiling) is read
/// straight off the report.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>

#include "bench_common.h"
#include "containment/oracle.h"
#include "rewriting/engine.h"
#include "util/rng.h"
#include "workload/generators.h"
#include "workload/registry.h"

namespace aqv {
namespace {

/// A chain query with random sub-chain views, heap-backed so the Query /
/// ViewSet catalog pointers stay stable.
struct ChainWorkload {
  Catalog catalog;
  Query query;
  ViewSet views;
};

std::unique_ptr<ChainWorkload> MakeChainWorkload(int length, int num_views,
                                                 uint64_t seed,
                                                 bool self_join = false) {
  auto w = std::make_unique<ChainWorkload>();
  ChainQuerySpec qspec;
  qspec.length = length;
  qspec.distinct_predicates = !self_join;
  w->query = bench::Unwrap(MakeChainQuery(&w->catalog, qspec), "chain query");
  Rng rng(seed);
  ChainViewSpec vspec;
  vspec.chain = qspec;
  vspec.num_views = num_views;
  vspec.max_length = 3;
  // Fully exposed views keep the maximally-contained unions non-empty (the
  // kEnds default hides interior variables, which on short random view sets
  // often leaves no complete cover at all).
  vspec.policy = DistinguishedPolicy::kAll;
  w->views =
      bench::Unwrap(MakeChainViews(&w->catalog, &rng, vspec), "chain views");

  // Deterministically re-seed until every query predicate occurs in some
  // view: an uncovered subgoal short-circuits Bucket/MiniCon to the empty
  // union, which is not the regime this bench measures.
  auto covered = [&] {
    for (const Atom& g : w->query.body()) {
      bool found = false;
      for (const View& v : w->views.views()) {
        for (const Atom& vg : v.definition.body()) {
          if (vg.pred == g.pred) found = true;
        }
      }
      if (!found) return false;
    }
    return true;
  };
  uint64_t retry = 0;
  while (!covered()) {
    if (++retry > 32) {
      std::fprintf(stderr,
                   "bench setup failed: no covering chain-view set within 32 "
                   "reseeds (length=%d, seed=%llu)\n",
                   length, static_cast<unsigned long long>(seed));
      std::abort();
    }
    Rng retry_rng(seed + retry);
    w->views = bench::Unwrap(MakeChainViews(&w->catalog, &retry_rng, vspec),
                             "chain views");
  }
  return w;
}

void ReportOracle(benchmark::State& state, const ContainmentOracle& oracle) {
  state.counters["oracle_hit_rate"] = oracle.stats().hit_rate();
  state.counters["oracle_entries"] = static_cast<double>(oracle.size());
  state.counters["oracle_lookups"] =
      static_cast<double>(oracle.stats().lookups());
}

/// One engine on one chain workload; the oracle (when on) is shared across
/// iterations, the steady-state regime of a long-running rewriting service.
void RunChainBench(benchmark::State& state, const std::string& engine,
                   bool oracle_on, int length, bool self_join = false) {
  std::unique_ptr<ChainWorkload> w =
      MakeChainWorkload(length, 2 * length, 42, self_join);
  ContainmentOracle oracle;
  RewriteRequest request;
  request.query.disjuncts.push_back(w->query);
  request.views = &w->views;
  if (oracle_on) request.options.oracle = &oracle;

  double rewritings = 0;
  for (auto _ : state) {
    RewriteResponse resp;
    if (!bench::UnwrapOrSkip(RunEngine(engine, request), state, &resp)) {
      return;
    }
    rewritings = static_cast<double>(resp.rewritings.size());
    benchmark::DoNotOptimize(resp);
  }
  state.counters["rewritings"] = rewritings;
  if (oracle_on) ReportOracle(state, oracle);
}

/// All four engines back to back on one workload, sharing a single oracle:
/// measures cross-engine cache reuse (Bucket's checks warming MiniCon's
/// verification, LMSS minimization feeding the UCQ wrapper, ...).
void RunSharedOracleBench(benchmark::State& state, int length) {
  std::unique_ptr<ChainWorkload> w = MakeChainWorkload(length, 8, 43);
  ContainmentOracle oracle;
  RewriteRequest request;
  request.query.disjuncts.push_back(w->query);
  request.views = &w->views;
  request.options.oracle = &oracle;

  for (auto _ : state) {
    for (const std::string& engine : EngineNames()) {
      RewriteResponse resp;
      if (!bench::UnwrapOrSkip(RunEngine(engine, request), state, &resp)) {
        return;
      }
      benchmark::DoNotOptimize(resp);
    }
  }
  ReportOracle(state, oracle);
}

/// Scenario × engine through the registries — the "any scenario drives any
/// engine by name" hook, measured.
void RunScenarioBench(benchmark::State& state, const std::string& scenario,
                      const std::string& engine, bool oracle_on) {
  Scenario s = bench::Unwrap(MakeScenarioByName(scenario, 7, 100), "scenario");
  ContainmentOracle oracle;
  EngineOptions options;
  if (oracle_on) options.oracle = &oracle;

  for (auto _ : state) {
    RewriteResponse resp;
    if (!bench::UnwrapOrSkip(RewriteScenarioWithEngine(s, engine, options),
                             state, &resp)) {
      return;
    }
    benchmark::DoNotOptimize(resp);
  }
  if (oracle_on) ReportOracle(state, oracle);
}

void RegisterAll() {
  for (const std::string& engine : EngineNames()) {
    for (bool oracle_on : {false, true}) {
      for (int length : {4, 5}) {
        std::string name = "BM_F7_Chain/" + engine +
                           (oracle_on ? "/oracle:on" : "/oracle:off") +
                           "/len:" + std::to_string(length);
        benchmark::RegisterBenchmark(
            name.c_str(),
            [engine, oracle_on, length](benchmark::State& state) {
              RunChainBench(state, engine, oracle_on, length);
            })
            ->Unit(benchmark::kMicrosecond);
      }
    }
  }
  // Self-join chains: the hard containment family (every hom search is a
  // real backtrack) — the regime the memoized oracle exists for. LMSS only:
  // the MCD/bucket candidate spaces explode combinatorially here.
  for (bool oracle_on : {false, true}) {
    for (int length : {6, 8}) {
      std::string name = "BM_F7_SelfJoinChain/lmss" +
                         std::string(oracle_on ? "/oracle:on" : "/oracle:off") +
                         "/len:" + std::to_string(length);
      benchmark::RegisterBenchmark(
          name.c_str(), [oracle_on, length](benchmark::State& state) {
            RunChainBench(state, "lmss", oracle_on, length,
                          /*self_join=*/true);
          })
          ->Unit(benchmark::kMicrosecond);
    }
  }
  for (int length : {4, 5}) {
    std::string name =
        "BM_F7_AllEnginesSharedOracle/len:" + std::to_string(length);
    benchmark::RegisterBenchmark(name.c_str(),
                                 [length](benchmark::State& state) {
                                   RunSharedOracleBench(state, length);
                                 })
        ->Unit(benchmark::kMicrosecond);
  }
  for (const std::string& scenario : ScenarioNames()) {
    for (const std::string& engine : EngineNames()) {
      for (bool oracle_on : {false, true}) {
        std::string name = "BM_F7_Scenario/" + scenario + "/" + engine +
                           (oracle_on ? "/oracle:on" : "/oracle:off");
        benchmark::RegisterBenchmark(
            name.c_str(),
            [scenario, engine, oracle_on](benchmark::State& state) {
              RunScenarioBench(state, scenario, engine, oracle_on);
            })
            ->Unit(benchmark::kMicrosecond);
      }
    }
  }
}

}  // namespace
}  // namespace aqv

int main(int argc, char** argv) {
  aqv::bench::Banner("F7", "cross-engine comparison via the unified engine "
                           "layer (oracle on/off)");
  aqv::RegisterAll();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
