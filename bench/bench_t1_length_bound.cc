/// T1 — Empirical validation of the LMSS bounded-rewriting theorem (R1):
/// if an equivalent rewriting exists, one exists with at most n view atoms
/// (n = |body(Q)| after minimization). The harness enumerates ALL
/// rewritings with the size cap raised to n+2 across workload instances and
/// asserts that every instance with a rewriting also has one of length <= n.
///
/// Output: per-configuration timing plus counters `instances`,
/// `with_rewriting`, and `bound_violations` (must be 0).

#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "rewriting/lmss.h"
#include "util/rng.h"
#include "workload/generators.h"

namespace aqv {
namespace {

struct SweepOutcome {
  int instances = 0;
  int with_rewriting = 0;
  int bound_violations = 0;
};

SweepOutcome SweepChains(int chain_length, int num_views, uint64_t seed,
                         int trials) {
  SweepOutcome out;
  for (int t = 0; t < trials; ++t) {
    Catalog cat;
    ChainViewSpec vspec;
    vspec.chain.length = chain_length;
    vspec.num_views = num_views;
    vspec.min_length = 1;
    vspec.max_length = 3;
    vspec.policy = DistinguishedPolicy::kEnds;
    Rng rng(seed + t);
    Query q = bench::Unwrap(MakeChainQuery(&cat, vspec.chain), "chain");
    ViewSet vs =
        bench::Unwrap(MakeChainViews(&cat, &rng, vspec), "chain views");

    LmssOptions opts;
    opts.max_rewritings = 1'000;
    opts.max_rewriting_atoms =
        static_cast<int>(q.body().size()) + 2;  // search BEYOND the bound
    LmssResult res =
        bench::Unwrap(FindEquivalentRewritings(q, vs, opts), "lmss");
    ++out.instances;
    if (!res.exists) continue;
    ++out.with_rewriting;
    size_t shortest = SIZE_MAX;
    for (const Query& rw : res.rewritings) {
      shortest = std::min(shortest, rw.body().size());
    }
    if (shortest > res.minimized_query.body().size()) {
      ++out.bound_violations;  // would falsify the theorem
    }
  }
  return out;
}

void BM_T1_ChainSweep(benchmark::State& state) {
  SweepOutcome out;
  for (auto _ : state) {
    out = SweepChains(static_cast<int>(state.range(0)),
                      static_cast<int>(state.range(1)), 4242, 10);
    benchmark::DoNotOptimize(out);
  }
  state.counters["instances"] = out.instances;
  state.counters["with_rewriting"] = out.with_rewriting;
  state.counters["bound_violations"] = out.bound_violations;
}

SweepOutcome SweepStars(int rays, int num_views, uint64_t seed, int trials) {
  SweepOutcome out;
  for (int t = 0; t < trials; ++t) {
    Catalog cat;
    StarViewSpec vspec;
    vspec.star.rays = rays;
    vspec.num_views = num_views;
    vspec.min_rays = 1;
    vspec.max_rays = 3;
    vspec.policy = DistinguishedPolicy::kAll;
    Rng rng(seed + t);
    Query q = bench::Unwrap(MakeStarQuery(&cat, vspec.star), "star");
    ViewSet vs = bench::Unwrap(MakeStarViews(&cat, &rng, vspec), "views");
    LmssOptions opts;
    opts.max_rewritings = 1'000;
    opts.max_rewriting_atoms = static_cast<int>(q.body().size()) + 2;
    LmssResult res =
        bench::Unwrap(FindEquivalentRewritings(q, vs, opts), "lmss");
    ++out.instances;
    if (!res.exists) continue;
    ++out.with_rewriting;
    size_t shortest = SIZE_MAX;
    for (const Query& rw : res.rewritings) {
      shortest = std::min(shortest, rw.body().size());
    }
    if (shortest > res.minimized_query.body().size()) ++out.bound_violations;
  }
  return out;
}

void BM_T1_StarSweep(benchmark::State& state) {
  SweepOutcome out;
  for (auto _ : state) {
    out = SweepStars(static_cast<int>(state.range(0)),
                     static_cast<int>(state.range(1)), 777, 10);
    benchmark::DoNotOptimize(out);
  }
  state.counters["instances"] = out.instances;
  state.counters["with_rewriting"] = out.with_rewriting;
  state.counters["bound_violations"] = out.bound_violations;
}

BENCHMARK(BM_T1_ChainSweep)
    ->Args({3, 8})
    ->Args({4, 8})
    ->Args({5, 10})
    ->Args({6, 12})
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_T1_StarSweep)
    ->Args({3, 8})
    ->Args({4, 10})
    ->Args({5, 12})
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace aqv

int main(int argc, char** argv) {
  aqv::bench::Banner(
      "T1", "LMSS length-bound validation; bound_violations must be 0 "
            "(args: size, num_views)");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
