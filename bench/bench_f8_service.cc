/// F8 — Batch throughput of the concurrent rewriting service: worker count
/// × oracle shard count × batch size, against the serial baseline the
/// service replaces (direct per-request RewritingEngine calls). Per-request
/// latency has an NP-hardness floor (PAPER.md Thms 3.1/3.3), so the service
/// wins on throughput via two separable mechanisms, each with its own
/// baseline here:
///
///   BM_F8_SerialBaseline      direct calls, no cache — the pre-service
///                             state of the world.
///   BM_F8_SerialSharedOracle  direct calls sharing one oracle — isolates
///                             the cross-request memoization win.
///   BM_F8_ServiceCold         fresh service per iteration (thread spawn +
///                             cold cache included) — one-shot batch cost.
///   BM_F8_ServiceSteady       one long-lived service, warm cache — the
///                             steady-state regime of a resident server.
///
/// All variants process identical mixed-scenario batches from
/// MakeBatchFromScenarios, so items/s numbers compare directly; counters
/// surface the service's own ServiceStats (throughput, p50/p95, hit rate).

#include <benchmark/benchmark.h>

#include <memory>
#include <string>
#include <vector>

#include "bench_common.h"
#include "containment/oracle.h"
#include "frontend/replay.h"
#include "frontend/session.h"
#include "rewriting/engine.h"
#include "service/batch.h"
#include "service/plan_cache.h"
#include "service/service.h"
#include "workload/registry.h"

namespace aqv {
namespace {

/// One mixed batch: every scenario × every engine × `repeats` fresh
/// instances (batch size = 3 scenarios × 4 engines × repeats).
std::unique_ptr<ScenarioRequestBatch> MakeBatch(int repeats) {
  auto batch = std::make_unique<ScenarioRequestBatch>(bench::Unwrap(
      MakeBatchFromScenarios(ScenarioNames(), EngineNames(), repeats,
                             /*seed=*/7, /*db_size=*/50),
      "scenario batch"));
  return batch;
}

void ReportServiceStats(benchmark::State& state, const ServiceStats& stats) {
  state.counters["throughput_rps"] = stats.throughput_rps;
  state.counters["p50_ms"] = stats.p50_ms;
  state.counters["p95_ms"] = stats.p95_ms;
  state.counters["oracle_hit_rate"] = stats.oracle.hit_rate();
}

void RunSerial(benchmark::State& state, int repeats, bool shared_oracle) {
  std::unique_ptr<ScenarioRequestBatch> batch = MakeBatch(repeats);
  ContainmentOracle oracle;
  for (auto _ : state) {
    for (size_t i = 0; i < batch->size(); ++i) {
      RewriteRequest request = batch->requests[i];
      if (shared_oracle) request.options.oracle = &oracle;
      RewriteResponse resp;
      if (!bench::UnwrapOrSkip(RunEngine(batch->engines[i], request), state,
                               &resp)) {
        return;
      }
      benchmark::DoNotOptimize(resp);
    }
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(batch->size()));
  if (shared_oracle) {
    state.counters["oracle_hit_rate"] = oracle.stats().hit_rate();
  }
}

void RunServiceCold(benchmark::State& state, int repeats, int workers,
                    size_t shards) {
  std::unique_ptr<ScenarioRequestBatch> batch = MakeBatch(repeats);
  std::vector<ServiceRequest> requests = ToServiceRequests(*batch);
  ServiceStats last;
  for (auto _ : state) {
    ServiceOptions options;
    options.num_workers = workers;
    options.oracle_shards = shards;
    RewriteService service(options);
    BatchResult result;
    if (!bench::UnwrapOrSkip(service.RewriteBatch(requests), state, &result)) {
      return;
    }
    last = result.stats;
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(batch->size()));
  ReportServiceStats(state, last);
}

void RunServiceSteady(benchmark::State& state, int repeats, int workers,
                      size_t shards) {
  std::unique_ptr<ScenarioRequestBatch> batch = MakeBatch(repeats);
  std::vector<ServiceRequest> requests = ToServiceRequests(*batch);
  ServiceOptions options;
  options.num_workers = workers;
  options.oracle_shards = shards;
  RewriteService service(options);
  ServiceStats last;
  for (auto _ : state) {
    BatchResult result;
    if (!bench::UnwrapOrSkip(service.RewriteBatch(requests), state, &result)) {
      return;
    }
    last = result.stats;
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(batch->size()));
  ReportServiceStats(state, last);
}

/// PR 10: the repeated-query regime of a resident server — fresh sessions
/// (fresh catalogs) re-running identical rewrite probes against one
/// server-lifetime oracle + plan cache. `repeats` is the curve axis; the
/// steady-state combined hit rate should approach 1 as repeats grow,
/// because only the first session pays for engine runs (the
/// catalog-independent encodings make every later session's probes exact
/// cache hits despite their brand-new catalogs).
void RunSharedCacheRepeats(benchmark::State& state, int repeats) {
  std::vector<std::string> script;
  {
    Scenario scenario = bench::Unwrap(
        MakeScenarioByName("warehouse", /*seed=*/7, /*db_size=*/50),
        "scenario");
    std::string text =
        bench::Unwrap(ScriptFromScenario(scenario), "script");
    size_t at = 0, nl;
    while ((nl = text.find('\n', at)) != std::string::npos) {
      script.push_back(text.substr(at, nl - at));
      at = nl + 1;
    }
  }
  script.push_back("rewrite with lmss");
  script.push_back("rewrite with minicon");
  // Answers are never plan-cached, so this probe keeps every repeat
  // consulting the containment oracle (the lmss route poses containment
  // questions even when the rewrite itself was a plan-cache hit).
  script.push_back("answer route complete with lmss");
  ContainmentOracle oracle(size_t{1} << 20, /*num_shards=*/8);
  RewritePlanCache plans;
  for (auto _ : state) {
    for (int r = 0; r < repeats; ++r) {
      SessionOptions options;
      options.engine.oracle = &oracle;
      options.plan_cache = &plans;
      Session session(options);
      for (const std::string& line : script) {
        CommandResult result = session.Execute(line);
        if (!result.ok()) {
          state.SkipWithError(result.status.ToString().c_str());
          return;
        }
        benchmark::DoNotOptimize(result);
      }
    }
  }
  OracleStats ostats = oracle.stats();
  PlanCacheStats pstats = plans.stats();
  const double lookups =
      static_cast<double>(ostats.lookups() + pstats.lookups());
  state.SetItemsProcessed(state.iterations() * repeats);
  state.counters["oracle_hit_rate"] = ostats.hit_rate();
  state.counters["plan_hit_rate"] = pstats.hit_rate();
  state.counters["combined_hit_rate"] =
      lookups == 0.0
          ? 0.0
          : static_cast<double>(ostats.hits + pstats.hits) / lookups;
}

std::string BatchTag(int repeats) {
  // 3 scenarios × 4 engines per repeat.
  return "/batch:" + std::to_string(static_cast<size_t>(repeats) *
                                    ScenarioNames().size() *
                                    EngineNames().size());
}

void RegisterAll() {
  for (int repeats : {2, 8}) {
    std::string serial = "BM_F8_SerialBaseline" + BatchTag(repeats);
    benchmark::RegisterBenchmark(serial.c_str(),
                                 [repeats](benchmark::State& state) {
                                   RunSerial(state, repeats, false);
                                 })
        ->Unit(benchmark::kMillisecond);
    std::string cached = "BM_F8_SerialSharedOracle" + BatchTag(repeats);
    benchmark::RegisterBenchmark(cached.c_str(),
                                 [repeats](benchmark::State& state) {
                                   RunSerial(state, repeats, true);
                                 })
        ->Unit(benchmark::kMillisecond);
    for (int workers : {1, 2, 4, 8}) {
      for (size_t shards : {size_t{1}, size_t{8}}) {
        std::string suffix = "/workers:" + std::to_string(workers) +
                             "/shards:" + std::to_string(shards) +
                             BatchTag(repeats);
        std::string cold = "BM_F8_ServiceCold" + suffix;
        benchmark::RegisterBenchmark(
            cold.c_str(),
            [repeats, workers, shards](benchmark::State& state) {
              RunServiceCold(state, repeats, workers, shards);
            })
            ->Unit(benchmark::kMillisecond)
            ->UseRealTime();
        std::string steady = "BM_F8_ServiceSteady" + suffix;
        benchmark::RegisterBenchmark(
            steady.c_str(),
            [repeats, workers, shards](benchmark::State& state) {
              RunServiceSteady(state, repeats, workers, shards);
            })
            ->Unit(benchmark::kMillisecond)
            ->UseRealTime();
      }
    }
  }
  for (int repeats : {2, 8, 32}) {
    std::string shared =
        "BM_F8_SharedCacheRepeats/repeats:" + std::to_string(repeats);
    benchmark::RegisterBenchmark(shared.c_str(),
                                 [repeats](benchmark::State& state) {
                                   RunSharedCacheRepeats(state, repeats);
                                 })
        ->Unit(benchmark::kMillisecond);
  }
}

}  // namespace
}  // namespace aqv

int main(int argc, char** argv) {
  aqv::bench::Banner("F8", "concurrent batch-rewriting service: workers x "
                           "shards x batch vs the serial baseline");
  aqv::RegisterAll();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
