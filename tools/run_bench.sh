#!/usr/bin/env bash
# Runs the benchmark suite and merges the per-binary google/benchmark JSON
# reports into one perf-trajectory artifact (BENCH_PR10.json by default).
# The suite includes bench_f8_service (the concurrent batch-rewriting
# service sweep) and bench_f9_answering (the end-to-end answering
# pipeline: route x engine x scenario x data size); see docs/OPERATIONS.md
# for how to read the merged JSON.
#
# Usage:
#   tools/run_bench.sh [BUILD_DIR] [OUTPUT_JSON]
#
# Environment knobs (all optional):
#   AQV_BENCH_MIN_TIME     --benchmark_min_time value (e.g. "0.05" seconds
#                          or "1x" for one iteration; default: benchmark's).
#   AQV_BENCH_REPETITIONS  --benchmark_repetitions value (default 1).
#   AQV_BENCH_FILTER       --benchmark_filter regex applied to every binary.
#   AQV_BENCH_BINARIES     Space-separated subset of bench binary names
#                          (default: every bench_* in BUILD_DIR/bench).
#
# CI smoke example (reduced work, engine + answering benches only):
#   AQV_BENCH_MIN_TIME=1x AQV_BENCH_BINARIES="bench_f7_engines bench_f9_answering" \
#     tools/run_bench.sh build BENCH_PR10.json

set -euo pipefail

BUILD_DIR=${1:-build}
OUTPUT=${2:-BENCH_PR10.json}
REPETITIONS=${AQV_BENCH_REPETITIONS:-1}
MIN_TIME=${AQV_BENCH_MIN_TIME:-}
FILTER=${AQV_BENCH_FILTER:-}

BENCH_DIR="$BUILD_DIR/bench"
if [[ ! -d "$BENCH_DIR" ]]; then
  echo "error: $BENCH_DIR not found; configure with -DAQV_BUILD_BENCH=ON" >&2
  exit 1
fi

if [[ -n "${AQV_BENCH_BINARIES:-}" ]]; then
  BINARIES=()
  for name in $AQV_BENCH_BINARIES; do
    BINARIES+=("$BENCH_DIR/$name")
  done
else
  mapfile -t BINARIES < <(find "$BENCH_DIR" -maxdepth 1 -name 'bench_*' \
    -type f -executable | sort)
fi
if [[ ${#BINARIES[@]} -eq 0 ]]; then
  echo "error: no bench binaries found in $BENCH_DIR" >&2
  exit 1
fi

TMP_DIR=$(mktemp -d)
trap 'rm -rf "$TMP_DIR"' EXIT

FLAGS=(--benchmark_repetitions="$REPETITIONS")
[[ -n "$MIN_TIME" ]] && FLAGS+=(--benchmark_min_time="$MIN_TIME")
[[ -n "$FILTER" ]] && FLAGS+=(--benchmark_filter="$FILTER")

for bin in "${BINARIES[@]}"; do
  name=$(basename "$bin")
  echo "== running $name =="
  # Banners go to stdout; the JSON report goes to its own file.
  "$bin" "${FLAGS[@]}" \
    --benchmark_out="$TMP_DIR/$name.json" --benchmark_out_format=json
done

python3 - "$TMP_DIR" "$OUTPUT" <<'PY'
import json, pathlib, sys

tmp_dir, output = pathlib.Path(sys.argv[1]), pathlib.Path(sys.argv[2])
merged = {"suites": {}}
for report in sorted(tmp_dir.glob("*.json")):
    with report.open() as f:
        data = json.load(f)
    merged["suites"][report.stem] = data
    # One shared context (machine info) is enough at the top level.
    merged.setdefault("context", data.get("context", {}))
total = sum(len(s.get("benchmarks", [])) for s in merged["suites"].values())
merged["num_suites"] = len(merged["suites"])
merged["num_benchmarks"] = total
output.write_text(json.dumps(merged, indent=1) + "\n")
print(f"wrote {output} ({merged['num_suites']} suites, {total} benchmarks)")
PY
