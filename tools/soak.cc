/// \file
/// Differential soak/fuzz driver over the TCP frontend: boots a real
/// epoll FrontendServer in-process (shared cross-connection oracle +
/// rewriting-plan cache by default; --shared-cache 0 restores isolated
/// per-connection caches), generates randomized LAV scenario families
/// (workload/generator.h), renders each as a churning probed session
/// script (frontend/replay.h), and replays the scripts over real TCP
/// connections from N concurrent client threads — every response checked
/// byte-for-byte and semantically against an in-process mirror
/// (frontend/differential.h), which makes the soak a live proof that the
/// shared caches never perturb a byte. On divergence the script is
/// ddmin-shrunk against the live server and dumped as a standalone `.aqv`
/// repro that `aqvsh` can replay. A multi-tenant isolation phase
/// (--tenants N) precedes the soak: authenticated tenants interleave
/// their own scenarios on one account-gated server, and any cross-tenant
/// leakage diverges from the mirror. Exit code 0 = clean soak, 1 =
/// divergence (repro written), 2 = usage/setup error.
///
/// The harness self-test: `--inject-fault-at K` tampers the K-th answer
/// response of the first scenario in flight, as if the server had
/// answered wrongly; a healthy harness must catch it, shrink it, and
/// exit 1. tools/soak.sh runs both modes; knobs and recipes are
/// documented in docs/OPERATIONS.md.

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "answering/answering.h"
#include "frontend/differential.h"
#include "frontend/replay.h"
#include "frontend/server.h"
#include "rewriting/engine.h"
#include "storage/fs.h"
#include "util/rng.h"
#include "workload/generator.h"

namespace {

using namespace aqv;

struct SoakConfig {
  uint64_t seed = 1;
  int clients = 4;
  int scenarios = 50;
  long min_commands = 10000;
  int duration_s = 0;  // 0 = unbounded; otherwise a hard wall-clock cap.
  int views_min = 50;
  int views_max = 120;
  int preds_min = 10;
  int preds_max = 24;
  int churn_max = 2;
  int inject_fault_at = -1;  // tamper the Nth answer of the first scenario
  bool shared_cache = true;  // server-lifetime oracle + plan cache
  int tenants = 2;           // interleaved isolation phase; 0 disables
  std::string repro_dir = ".";
  std::string persist_dir;  // empty = in-memory sessions only
};

void Usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [flags]\n"
      "  --seed N             master seed (default 1)\n"
      "  --clients N          concurrent client threads (default 4)\n"
      "  --scenarios N        minimum scenarios to replay (default 50)\n"
      "  --min-commands N     keep generating until N commands sent (10000)\n"
      "  --duration-s N       hard wall-clock cap, 0 = none (default 0)\n"
      "  --views-min/--views-max N    views per scenario band (50..120)\n"
      "  --preds-min/--preds-max N    mediated-schema band (10..24)\n"
      "  --churn-max N        max view-churn cycles per script (default 2)\n"
      "  --inject-fault-at N  self-test: tamper the Nth answer response of\n"
      "                       the first scenario; expect exit 1 + a repro\n"
      "  --shared-cache 0|1   share one oracle + rewriting-plan cache across\n"
      "                       every connection (default 1; 0 = per-conn)\n"
      "  --tenants N          interleaved multi-tenant isolation phase with\n"
      "                       N authenticated tenants (default 2, 0 = off)\n"
      "  --repro-dir DIR      where divergence repros are written (.)\n"
      "  --persist DIR        persistence churn: every script saves/opens a\n"
      "                       database under DIR/sN (recovery probes)\n",
      argv0);
}

bool ParseFlags(int argc, char** argv, SoakConfig* cfg) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") return false;
    if (i + 1 >= argc) {
      std::fprintf(stderr, "flag %s needs a value\n", arg.c_str());
      return false;
    }
    const char* v = argv[++i];
    if (arg == "--seed") cfg->seed = std::strtoull(v, nullptr, 10);
    else if (arg == "--clients") cfg->clients = std::atoi(v);
    else if (arg == "--scenarios") cfg->scenarios = std::atoi(v);
    else if (arg == "--min-commands") cfg->min_commands = std::atol(v);
    else if (arg == "--duration-s") cfg->duration_s = std::atoi(v);
    else if (arg == "--views-min") cfg->views_min = std::atoi(v);
    else if (arg == "--views-max") cfg->views_max = std::atoi(v);
    else if (arg == "--preds-min") cfg->preds_min = std::atoi(v);
    else if (arg == "--preds-max") cfg->preds_max = std::atoi(v);
    else if (arg == "--churn-max") cfg->churn_max = std::atoi(v);
    else if (arg == "--inject-fault-at") cfg->inject_fault_at = std::atoi(v);
    else if (arg == "--shared-cache") cfg->shared_cache = std::atoi(v) != 0;
    else if (arg == "--tenants") cfg->tenants = std::atoi(v);
    else if (arg == "--repro-dir") cfg->repro_dir = v;
    else if (arg == "--persist") cfg->persist_dir = v;
    else {
      std::fprintf(stderr, "unknown flag %s\n", arg.c_str());
      return false;
    }
  }
  if (cfg->clients < 1 || cfg->scenarios < 1 ||
      cfg->views_min < 1 || cfg->views_max < cfg->views_min ||
      cfg->preds_min < 2 || cfg->preds_max < cfg->preds_min) {
    std::fprintf(stderr, "out-of-band flag values\n");
    return false;
  }
  return true;
}

/// The randomized scenario family: spec + script knobs for scenario
/// `index`, a pure function of (config.seed, index).
struct ScenarioPlan {
  GeneratedScenarioSpec spec;
  SoakScriptOptions script;
};

ScenarioPlan PlanScenario(const SoakConfig& cfg, int index) {
  Rng rng(cfg.seed * 1000003ULL + static_cast<uint64_t>(index));
  ScenarioPlan plan;
  GeneratedScenarioSpec& spec = plan.spec;
  spec.seed = rng.Next();
  spec.num_predicates =
      static_cast<int>(rng.NextInRange(cfg.preds_min, cfg.preds_max));
  spec.num_tenants =
      rng.NextBool(0.25) ? static_cast<int>(rng.NextInRange(2, 3)) : 1;
  spec.query_atoms = static_cast<int>(rng.NextInRange(2, 4));
  spec.num_views =
      static_cast<int>(rng.NextInRange(cfg.views_min, cfg.views_max));
  spec.chain_weight = 0.5 + rng.NextDouble();
  spec.star_weight = 0.5 + rng.NextDouble();
  spec.snowflake_weight = 0.5 + rng.NextDouble();
  spec.max_view_atoms = static_cast<int>(rng.NextInRange(2, 4));
  spec.coverage = 0.6 + 0.4 * rng.NextDouble();
  spec.redundancy = 0.3 * rng.NextDouble();
  spec.noise_view_fraction = 0.2 * rng.NextDouble();
  spec.head_keep_prob = 0.4 + 0.5 * rng.NextDouble();
  // Mirrors stay on: they guarantee an equivalent rewriting, which keeps
  // the cost route executable and all four routes comparable.
  spec.guarantee_equivalent = true;
  spec.facts_per_predicate = static_cast<int>(rng.NextInRange(8, 20));
  spec.domain_size = static_cast<int>(rng.NextInRange(16, 48));
  spec.zipf_skew = 1.2 * rng.NextDouble();

  plan.script.seed = rng.Next();
  plan.script.engines = EngineNames();
  plan.script.routes = AnswerRouteNames();
  plan.script.churn_cycles =
      cfg.churn_max > 0 ? static_cast<int>(rng.NextInRange(0, cfg.churn_max))
                        : 0;
  if (!cfg.persist_dir.empty()) {
    // One database directory per scenario: concurrent clients never
    // contend on a flock, and each script's save/open churn is isolated.
    plan.script.persist_dir =
        cfg.persist_dir + "/s" + std::to_string(index);
  }
  return plan;
}

/// The first divergence any client hit, with everything shrinking and the
/// repro dump need.
struct FaultRecord {
  int scenario_index = 0;
  std::vector<std::string> lines;
  Divergence divergence;
  bool injected = false;
};

std::string FirstLine(const std::string& text) {
  size_t nl = text.find('\n');
  return nl == std::string::npos ? text : text.substr(0, nl);
}

void WriteRepro(const SoakConfig& cfg, const FaultRecord& fault,
                const std::vector<std::string>& shrunk,
                const std::string& path) {
  std::ofstream out(path);
  out << "% aqv soak divergence repro (ddmin-shrunk from "
      << fault.lines.size() << " to " << shrunk.size() << " commands)\n";
  out << "% seed: " << cfg.seed << ", scenario: " << fault.scenario_index
      << ", injected fault: " << (fault.injected ? "yes" : "no") << "\n";
  out << "% kind: " << fault.divergence.kind << "\n";
  out << "% command: " << fault.divergence.command << "\n";
  out << "% expected: " << FirstLine(fault.divergence.expected) << "\n";
  out << "% actual:   " << FirstLine(fault.divergence.actual) << "\n";
  out << "% replay with: build/aqvsh " << path << "\n";
  for (const std::string& line : shrunk) out << line << "\n";
  if (shrunk.empty() || shrunk.back() != "quit") out << "quit\n";
}

/// The interleaved multi-tenant isolation phase: an account-gated server
/// (one credential per tenant), every tenant authenticating and replaying
/// its own generated scenario concurrently with the others through the
/// shared caches. The differential mirror executes each connection's
/// script inline on private state, so any cross-tenant leakage — another
/// tenant's views or facts surfacing in a response — is a byte divergence.
/// `auth` itself is answered at the server boundary and skipped by the
/// mirror. Exit 0 = isolated, 1 = leakage/divergence, 2 = setup error.
int RunTenantIsolation(const SoakConfig& cfg) {
  ServerOptions options;
  options.share_cache = cfg.shared_cache;
  std::vector<std::string> tokens;
  for (int t = 0; t < cfg.tenants; ++t) {
    tokens.push_back("tok-" + std::to_string(cfg.seed * 31 +
                                             static_cast<uint64_t>(t)));
    options.accounts.push_back(
        {"tenant" + std::to_string(t), tokens.back(), true});
  }
  FrontendServer server(options);
  Status started = server.Start();
  if (!started.ok()) {
    std::fprintf(stderr, "tenant server start failed: %s\n",
                 started.ToString().c_str());
    return 2;
  }
  std::printf("[soak] tenant isolation: %d tenant(s) interleaved on "
              "127.0.0.1:%d (shared cache %s)\n",
              cfg.tenants, server.port(), cfg.shared_cache ? "on" : "off");

  std::mutex mu;
  std::vector<std::string> failures;
  std::atomic<long> commands{0};
  auto tenant_worker = [&](int t) {
    // A distinct small scenario per tenant, seeded disjointly from the
    // main soak's PlanScenario stream.
    GeneratedScenarioSpec spec;
    spec.seed = cfg.seed * 2000003ULL + static_cast<uint64_t>(t) + 1;
    spec.num_predicates = 6;
    spec.query_atoms = 2;
    spec.num_views = 10;
    spec.max_view_atoms = 3;
    spec.facts_per_predicate = 6;
    spec.domain_size = 16;
    auto scenario = GenerateScenario(spec);
    if (!scenario.ok()) {
      std::lock_guard<std::mutex> lock(mu);
      failures.push_back("tenant " + std::to_string(t) +
                         " generation failed: " +
                         scenario.status().ToString());
      return;
    }
    SoakScriptOptions script_options;
    script_options.seed = spec.seed + 17;
    script_options.churn_cycles = 1;
    auto script = SoakScriptFromScenario(*scenario, script_options);
    if (!script.ok()) {
      std::lock_guard<std::mutex> lock(mu);
      failures.push_back("tenant " + std::to_string(t) +
                         " script render failed: " +
                         script.status().ToString());
      return;
    }
    std::vector<std::string> lines = SplitScriptLines(script->text);
    lines.insert(lines.begin(),
                 "auth tenant" + std::to_string(t) + " " + tokens[t]);
    auto replay = ReplayAndCheckOverTcp(server.port(), lines,
                                        TcpReplayOptions{});
    std::lock_guard<std::mutex> lock(mu);
    if (!replay.ok()) {
      failures.push_back("tenant " + std::to_string(t) + " replay failed: " +
                         replay.status().ToString());
      return;
    }
    commands.fetch_add(replay->commands_sent);
    if (replay->divergence.has_value()) {
      failures.push_back("tenant " + std::to_string(t) +
                         " DIVERGED (cross-tenant leakage?): " +
                         replay->divergence->ToString());
    }
  };
  // Two rounds: the second replays the same scripts through the by-then
  // warm shared caches — hits must not perturb isolation either.
  for (int round = 0; round < 2 && failures.empty(); ++round) {
    std::vector<std::thread> threads;
    threads.reserve(static_cast<size_t>(cfg.tenants));
    for (int t = 0; t < cfg.tenants; ++t) threads.emplace_back(tenant_worker, t);
    for (std::thread& th : threads) th.join();
  }

  // Gate self-test: the mirror has no auth gate, so an unauthenticated
  // command being refused MUST surface as a divergence — if it does not,
  // the gate silently let the command through.
  auto gate =
      ReplayAndCheckOverTcp(server.port(), {"show views", "quit"},
                            TcpReplayOptions{});
  if (gate.ok() && !gate->divergence.has_value()) {
    failures.push_back(
        "gate self-test: unauthenticated command was not refused");
  }

  server.Stop();
  if (!failures.empty()) {
    for (const std::string& f : failures) {
      std::fprintf(stderr, "[soak] tenant isolation: %s\n", f.c_str());
    }
    return 1;
  }
  std::printf("[soak] tenant isolation OK: %ld command(s), no cross-tenant "
              "leakage\n",
              commands.load());
  return 0;
}

int Run(const SoakConfig& cfg) {
  if (!cfg.persist_dir.empty()) {
    // Scenario scripts create DIR/sN themselves; DIR must exist first
    // (EnsureDir is one level deep).
    Status dir = EnsureDir(cfg.persist_dir);
    if (!dir.ok()) {
      std::fprintf(stderr, "persist dir: %s\n", dir.ToString().c_str());
      return 2;
    }
  }
  ServerOptions server_options;  // ephemeral port, 64 conns
  server_options.share_cache = cfg.shared_cache;
  FrontendServer server(server_options);
  Status started = server.Start();
  if (!started.ok()) {
    std::fprintf(stderr, "server start failed: %s\n",
                 started.ToString().c_str());
    return 2;
  }
  const int port = server.port();
  std::printf("[soak] server on 127.0.0.1:%d, %d client(s), seed %llu, "
              "shared cache %s\n",
              port, cfg.clients,
              static_cast<unsigned long long>(cfg.seed),
              cfg.shared_cache ? "on" : "off");

  std::atomic<int> next_index{0};
  std::atomic<int> scenarios_done{0};
  std::atomic<long> total_commands{0};
  std::atomic<long> total_answers{0};
  std::atomic<long> total_rewrites{0};
  std::atomic<bool> stop{false};
  std::mutex fault_mu;
  std::optional<FaultRecord> fault;
  std::vector<std::string> errors;
  const auto t0 = std::chrono::steady_clock::now();
  auto expired = [&] {
    if (cfg.duration_s <= 0) return false;
    return std::chrono::steady_clock::now() - t0 >=
           std::chrono::seconds(cfg.duration_s);
  };

  auto worker = [&] {
    while (!stop.load()) {
      if (expired()) break;
      int index = next_index.fetch_add(1);
      if (index >= cfg.scenarios &&
          total_commands.load() >= cfg.min_commands) {
        break;
      }
      ScenarioPlan plan = PlanScenario(cfg, index);
      auto scenario = GenerateScenario(plan.spec);
      if (!scenario.ok()) {
        std::lock_guard<std::mutex> lock(fault_mu);
        errors.push_back("scenario " + std::to_string(index) +
                         " generation failed: " +
                         scenario.status().ToString());
        stop.store(true);
        break;
      }
      auto script = SoakScriptFromScenario(*scenario, plan.script);
      if (!script.ok()) {
        std::lock_guard<std::mutex> lock(fault_mu);
        errors.push_back("scenario " + std::to_string(index) +
                         " script render failed: " +
                         script.status().ToString());
        stop.store(true);
        break;
      }
      std::vector<std::string> lines = SplitScriptLines(script->text);
      TcpReplayOptions ropts;
      if (cfg.inject_fault_at >= 0 && index == 0) {
        ropts.tamper_at_answer = cfg.inject_fault_at;
      }
      auto replay = ReplayAndCheckOverTcp(port, lines, ropts);
      if (!replay.ok()) {
        std::lock_guard<std::mutex> lock(fault_mu);
        errors.push_back("scenario " + std::to_string(index) +
                         " replay failed: " + replay.status().ToString());
        stop.store(true);
        break;
      }
      total_commands.fetch_add(replay->commands_sent);
      total_answers.fetch_add(static_cast<long>(replay->answers_checked));
      total_rewrites.fetch_add(static_cast<long>(replay->rewrites_checked));
      int done = scenarios_done.fetch_add(1) + 1;
      if (replay->divergence.has_value()) {
        std::lock_guard<std::mutex> lock(fault_mu);
        if (!fault.has_value()) {
          FaultRecord record;
          record.scenario_index = index;
          record.lines = std::move(lines);
          record.divergence = *replay->divergence;
          record.injected = ropts.tamper_at_answer >= 0;
          fault = std::move(record);
        }
        stop.store(true);
        break;
      }
      if (done % 10 == 0 || done == cfg.scenarios) {
        std::printf("[soak] %d scenario(s), %ld command(s), %ld answer "
                    "check(s), %ld rewrite check(s)\n",
                    done, total_commands.load(), total_answers.load(),
                    total_rewrites.load());
      }
    }
  };

  std::vector<std::thread> clients;
  clients.reserve(static_cast<size_t>(cfg.clients));
  for (int i = 0; i < cfg.clients; ++i) clients.emplace_back(worker);
  for (std::thread& t : clients) t.join();

  int exit_code = 0;
  if (!errors.empty()) {
    for (const std::string& e : errors) {
      std::fprintf(stderr, "[soak] error: %s\n", e.c_str());
    }
    exit_code = 2;
  } else if (fault.has_value()) {
    std::printf("[soak] DIVERGENCE at %s\n",
                fault->divergence.ToString().c_str());
    std::printf("[soak] shrinking %zu-command script...\n",
                fault->lines.size());
    // Re-inject a recorded tamper during shrink so the self-test fault
    // stays reproducible on every candidate replay.
    TcpReplayOptions sopts;
    if (fault->injected) sopts.tamper_match = fault->divergence.command;
    auto still_diverges = [&](const std::vector<std::string>& candidate) {
      auto r = ReplayAndCheckOverTcp(port, candidate, sopts);
      return r.ok() && r->divergence.has_value();
    };
    std::vector<std::string> shrunk = fault->lines;
    if (still_diverges(shrunk)) {
      shrunk = ShrinkScript(std::move(shrunk), still_diverges);
    } else {
      std::printf("[soak] divergence did not reproduce on re-replay; "
                  "dumping the unshrunk script\n");
    }
    std::string path = cfg.repro_dir + "/repro-seed" +
                       std::to_string(cfg.seed) + "-s" +
                       std::to_string(fault->scenario_index) + ".aqv";
    WriteRepro(cfg, *fault, shrunk, path);
    std::printf("[soak] repro (%zu command(s)) written to %s\n",
                shrunk.size(), path.c_str());
    exit_code = 1;
  }

  if (cfg.shared_cache) {
    OracleStats oracle = server.oracle().stats();
    PlanCacheStats plans = server.plan_cache().stats();
    std::printf("[soak] shared caches: oracle hits=%llu misses=%llu "
                "hit_rate=%.3f; plans hits=%llu misses=%llu hit_rate=%.3f\n",
                static_cast<unsigned long long>(oracle.hits),
                static_cast<unsigned long long>(oracle.misses),
                oracle.hit_rate(),
                static_cast<unsigned long long>(plans.hits),
                static_cast<unsigned long long>(plans.misses),
                plans.hit_rate());
  }
  server.Stop();
  std::printf("[soak] done: %d scenario(s), %ld command(s), %ld answer "
              "check(s), %ld rewrite check(s), %s\n",
              scenarios_done.load(), total_commands.load(),
              total_answers.load(), total_rewrites.load(),
              exit_code == 0 ? "no divergence"
                             : (exit_code == 1 ? "DIVERGENCE" : "ERROR"));
  return exit_code;
}

}  // namespace

int main(int argc, char** argv) {
  SoakConfig cfg;
  if (!ParseFlags(argc, argv, &cfg)) {
    Usage(argv[0]);
    return 2;
  }
  if (cfg.tenants >= 2) {
    int tenant_rc = RunTenantIsolation(cfg);
    if (tenant_rc != 0) return tenant_rc;
  }
  return Run(cfg);
}
