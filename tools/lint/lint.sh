#!/usr/bin/env bash
# CI entry point for the static-analysis job's Python leg.
#
# Order matters: the fixture self-test and the checker's own unit suite
# run first, so a broken aqv_lint can never vacuously bless the tree; the
# real-tree run writes the JSON report CI uploads as an artifact; the
# hygiene step (py_compile + tabnanny, both stdlib — no new deps) covers
# every Python tool in the repo.
set -euo pipefail
cd "$(dirname "$0")/../.."

report="${1:-lint_report.json}"
py_tools=(tools/lint/aqv_lint.py tools/check_bench_smoke.py tests/test_lint.py)

python3 tools/lint/aqv_lint.py --fixtures
python3 tests/test_lint.py
python3 tools/lint/aqv_lint.py --report "$report"
python3 -m py_compile "${py_tools[@]}"
python3 -m tabnanny "${py_tools[@]}"
echo "static-analysis (python leg): clean; report at $report"
