#!/usr/bin/env python3
"""aqv_lint — machine-checks the engineering invariants of the aqv tree.

The codebase documents a set of invariants (docs/INVARIANTS.md) that the
paper-level guarantees rest on: a module dependency DAG, no exceptions
across module boundaries, seeded-only randomness, scoped lock holders,
durability syscalls centralized in storage/fs.cc, canonical include
guards, and [[nodiscard]] on every Status/Result-returning declaration.
This checker enforces them textually — stdlib only, no libclang — so the
gate runs anywhere Python 3.8+ runs.

Usage:
  tools/lint/aqv_lint.py                      # lint src/ tests/ bench/ tools/ examples/
  tools/lint/aqv_lint.py --fixtures           # self-test over committed fixtures
  tools/lint/aqv_lint.py --list-rules         # rule catalogue
  tools/lint/aqv_lint.py --report lint.json   # also write a JSON report

Suppressions (same line or the line above the finding):
  // aqv-lint: disable=<rule>[,<rule>...]          this line
  // aqv-lint: disable-next-line=<rule>[,...]      the next line
  // aqv-lint: disable-file=<rule>[,...]           whole file (first 10 lines)
Every suppression should carry an adjacent justification comment.

Exit status: 0 = clean, 1 = findings, 2 = usage/self-test failure.
"""

import argparse
import json
import os
import re
import sys

# --------------------------------------------------------------------------
# The declared module DAG (docs/ARCHITECTURE.md "module graph").
#
# ALLOWED[m] = modules whose headers files in src/<m>/ may include. Every
# module may include itself. eval <-> rewriting is the single permitted
# cycle (datalog/certain need inverse rules; the planner needs the
# evaluator's cost feedback). frontend is the ingress: nothing includes it.
# service is included by frontend only.
# --------------------------------------------------------------------------

MODULES = (
    "util",
    "cq",
    "containment",
    "views",
    "eval",
    "rewriting",
    "answering",
    "storage",
    "workload",
    "service",
    "frontend",
)

ALLOWED = {
    "util": {"util"},
    "cq": {"cq", "util"},
    "containment": {"containment", "cq", "util"},
    "views": {"views", "containment", "cq", "util"},
    "eval": {"eval", "rewriting", "views", "containment", "cq", "util"},
    "rewriting": {"rewriting", "eval", "views", "containment", "cq", "util"},
    "answering": {
        "answering", "rewriting", "eval", "views", "containment", "cq", "util",
    },
    "storage": {"storage", "eval", "views", "cq", "util"},
    "workload": {
        "workload", "answering", "rewriting", "eval", "views", "containment",
        "cq", "util",
    },
    "service": {
        "service", "answering", "workload", "rewriting", "eval", "views",
        "containment", "cq", "util",
    },
    "frontend": {
        "frontend", "service", "storage", "workload", "answering", "rewriting",
        "eval", "views", "containment", "cq", "util",
    },
}

RULES = {
    "layering": (
        "#include edges in src/ must follow the declared module DAG "
        "(eval<->rewriting is the only cycle; nothing includes frontend; "
        "only frontend includes service)"
    ),
    "no-throw": (
        "`throw` is forbidden in src/: fallible operations return "
        "Status/Result<T> (util/status.h); no exception crosses a module "
        "boundary"
    ),
    "determinism": (
        "unseeded/wall-clock randomness (rand, random_device, mt19937, "
        "time(), system_clock) is forbidden in src/ and tests/: use the "
        "seeded util/rng.h so soak replays are byte-deterministic"
    ),
    "lock-discipline": (
        "raw .lock()/.unlock()/.try_lock() calls are forbidden: use "
        "std::lock_guard / std::unique_lock / std::scoped_lock so unlock "
        "is exception- and early-return-safe"
    ),
    "storage-fs": (
        "durability syscalls (rename, ::open, fsync, fdatasync) outside "
        "src/storage/fs.cc are forbidden: route them through storage/fs.h "
        "so the crash-injection fault layer sees every fault point"
    ),
    "include-guard": (
        "headers under src/ must open with the canonical include guard "
        "AQV_<MODULE>_<FILE>_H_"
    ),
    "nodiscard-decl": (
        "Status/Result<T>-returning declarations in src/ headers must be "
        "[[nodiscard]]: dropping an error silently is how swallowed "
        "failures are born"
    ),
    "suppression": (
        "suppression hygiene: disable= must name known rule ids and "
        "disable-file must sit in the first 10 lines of the file"
    ),
}

SUPPRESS_RE = re.compile(
    r"aqv-lint:\s*(disable|disable-next-line|disable-file)="
    r"([A-Za-z0-9_,-]+)"
)

INCLUDE_RE = re.compile(r'^\s*#\s*include\s+"([^"]+)"')

DETERMINISM_PATTERNS = (
    (re.compile(r"\bsrand\s*\("), "srand("),
    (re.compile(r"(?<!_)\brand\s*\("), "rand("),
    (re.compile(r"\brandom_device\b"), "std::random_device"),
    (re.compile(r"\bmt19937(_64)?\b"), "std::mt19937"),
    (re.compile(r"\bminstd_rand0?\b"), "std::minstd_rand"),
    (re.compile(r"\bdefault_random_engine\b"), "std::default_random_engine"),
    (re.compile(r"(?<![\w:.])time\s*\("), "time()"),
    (re.compile(r"\bsystem_clock\b"), "std::chrono::system_clock"),
)

LOCK_RE = re.compile(r"[\w\)\]>]\s*(?:\.|->)\s*(?:lock|unlock|try_lock)\s*\(")

STORAGE_FS_PATTERNS = (
    (re.compile(r"(?<![\w:.])rename\s*\("), "rename("),
    (re.compile(r"::open\s*\("), "::open("),
    (re.compile(r"(?<![\w:.])fsync\s*\("), "fsync("),
    (re.compile(r"(?<![\w:.])fdatasync\s*\("), "fdatasync("),
)

THROW_RE = re.compile(r"\bthrow\b")

# A function declaration/definition line whose return type is Status or
# Result<...>: optional specifiers, the type, then an identifier directly
# followed by an open paren. `Status s = f();` (init) and `return
# Status::OK();` do not match; `friend` matches so hidden-friend
# declarations are covered too.
NODISCARD_DECL_RE = re.compile(
    r"^\s*(?:(?:static|virtual|inline|constexpr|explicit|friend)\s+)*"
    r"(?:aqv::)?(?:Status|Result\s*<[^;={}]*>)\s+"
    r"[A-Za-z_]\w*\s*\("
)
NODISCARD_MARK_RE = re.compile(r"\[\[\s*nodiscard\s*\]\]")

CXX_EXTENSIONS = (".h", ".hpp", ".cc", ".cpp", ".cxx")


class Finding:
    __slots__ = ("path", "line", "rule", "message")

    def __init__(self, path, line, rule, message):
        self.path = path
        self.line = line
        self.rule = rule
        self.message = message

    def render(self):
        return "%s:%d: [%s] %s" % (self.path, self.line, self.rule,
                                   self.message)

    def as_json(self):
        return {
            "path": self.path,
            "line": self.line,
            "rule": self.rule,
            "message": self.message,
        }


def strip_code(text):
    """Blanks out comments and string/char literals, preserving line
    structure, so rule regexes never fire inside prose or literals.
    Handles //, /* */, "...", '...', and R"delim(...)delim"."""
    out = []
    i = 0
    n = len(text)
    while i < n:
        c = text[i]
        if c == "/" and i + 1 < n and text[i + 1] == "/":
            j = text.find("\n", i)
            if j == -1:
                j = n
            i = j
        elif c == "/" and i + 1 < n and text[i + 1] == "*":
            j = text.find("*/", i + 2)
            j = n if j == -1 else j + 2
            out.append("\n" * text.count("\n", i, j))
            i = j
        elif c == "R" and text[i:i + 2] == 'R"':
            m = re.match(r'R"([^()\s\\]{0,16})\(', text[i:])
            if m:
                close = ")" + m.group(1) + '"'
                j = text.find(close, i + m.end())
                j = n if j == -1 else j + len(close)
                out.append("\n" * text.count("\n", i, j))
                i = j
            else:
                out.append(c)
                i += 1
        elif c == '"':
            j = i + 1
            while j < n and text[j] != '"':
                j += 2 if text[j] == "\\" else 1
            i = min(j + 1, n)
            out.append('""')
        elif c == "'":
            if i > 0 and text[i - 1].isdigit():
                # C++14 digit separator (5'000'000), not a char literal.
                out.append(c)
                i += 1
                continue
            j = i + 1
            while j < n and text[j] != "'":
                j += 2 if text[j] == "\\" else 1
            i = min(j + 1, n)
            out.append("''")
        else:
            out.append(c)
            i += 1
    return "".join(out)


def parse_suppressions(raw_lines):
    """Returns (per_line, whole_file): per_line maps 1-based line number ->
    set of rule ids suppressed there; whole_file is a set of rule ids."""
    per_line = {}
    whole_file = set()
    for idx, line in enumerate(raw_lines, start=1):
        m = SUPPRESS_RE.search(line)
        if not m:
            continue
        kind, rules = m.group(1), set(m.group(2).split(","))
        unknown = rules - set(RULES)
        if unknown:
            per_line.setdefault(idx, set()).add("__unknown__")
        if kind == "disable":
            per_line.setdefault(idx, set()).update(rules)
        elif kind == "disable-next-line":
            per_line.setdefault(idx + 1, set()).update(rules)
        elif kind == "disable-file":
            if idx <= 10:
                whole_file.update(rules)
            else:
                per_line.setdefault(idx, set()).add("__misplaced__")
    return per_line, whole_file


def top_dir(rel_path):
    parts = rel_path.replace(os.sep, "/").split("/")
    return parts[0] if parts else ""


def src_module(rel_path):
    parts = rel_path.replace(os.sep, "/").split("/")
    if len(parts) >= 3 and parts[0] == "src" and parts[1] in MODULES:
        return parts[1]
    return None


def expected_guard(rel_path):
    parts = rel_path.replace(os.sep, "/").split("/")
    module = parts[1]
    stem = os.path.splitext(parts[-1])[0]
    return "AQV_%s_%s_H_" % (module.upper(), re.sub(r"\W", "_", stem).upper())


def check_file(rel_path, text, findings):
    """Runs every applicable rule over one file. `rel_path` is the
    repo-relative path that scoping decisions key on."""
    if not rel_path.endswith(CXX_EXTENSIONS):
        return
    raw_lines = text.split("\n")
    per_line, whole_file = parse_suppressions(raw_lines)
    code_lines = strip_code(text).split("\n")

    top = top_dir(rel_path)
    module = src_module(rel_path)
    in_src = module is not None
    is_header = rel_path.endswith((".h", ".hpp"))
    basename = rel_path.replace(os.sep, "/").rsplit("/", 1)[-1]
    is_fs_impl = in_src and module == "storage" and basename in ("fs.cc",
                                                                "fs.h")

    def emit(line_no, rule, message):
        if rule in whole_file:
            return
        suppressed = per_line.get(line_no, set())
        if rule in suppressed:
            return
        findings.append(Finding(rel_path, line_no, rule, message))

    for line_no, code in enumerate(code_lines, start=1):
        # -- layering ------------------------------------------------------
        # strip_code blanks string literals, so recover the include path
        # from the raw line; the stripped line gates out commented-out
        # includes.
        m = None
        if code.lstrip().startswith("#") and "include" in code:
            m = INCLUDE_RE.match(raw_lines[line_no - 1])
        if m and in_src:
            target = m.group(1).split("/")[0]
            if target in MODULES:
                if target not in ALLOWED[module]:
                    emit(line_no, "layering",
                         "module '%s' must not include '%s' (allowed: %s)"
                         % (module, target,
                            ", ".join(sorted(ALLOWED[module]))))
            elif "/" in m.group(1):
                emit(line_no, "layering",
                     "quoted include '%s' does not resolve to a declared "
                     "module" % m.group(1))

        # -- no-throw ------------------------------------------------------
        if in_src and THROW_RE.search(code):
            emit(line_no, "no-throw",
                 "`throw` in src/ — return Status/Result<T> instead "
                 "(util/status.h)")

        # -- determinism ---------------------------------------------------
        if top in ("src", "tests"):
            for pattern, label in DETERMINISM_PATTERNS:
                if pattern.search(code):
                    emit(line_no, "determinism",
                         "%s is nondeterministic — use the seeded "
                         "util/rng.h" % label)

        # -- lock-discipline ----------------------------------------------
        if top in ("src", "tests") and LOCK_RE.search(code):
            emit(line_no, "lock-discipline",
                 "raw lock()/unlock() call — use a scoped holder "
                 "(lock_guard/unique_lock/scoped_lock)")

        # -- storage-fs ----------------------------------------------------
        if in_src and not is_fs_impl:
            for pattern, label in STORAGE_FS_PATTERNS:
                if pattern.search(code):
                    emit(line_no, "storage-fs",
                         "%s outside storage/fs.cc — durability syscalls "
                         "go through the fs.h helpers so fault injection "
                         "sees them" % label)

        # -- nodiscard-decl ------------------------------------------------
        if in_src and is_header and NODISCARD_DECL_RE.match(code):
            prev = code_lines[line_no - 2] if line_no >= 2 else ""
            if not (NODISCARD_MARK_RE.search(code)
                    or NODISCARD_MARK_RE.search(prev)):
                emit(line_no, "nodiscard-decl",
                     "Status/Result-returning declaration lacks "
                     "[[nodiscard]]")

    # -- include-guard -----------------------------------------------------
    if in_src and is_header:
        guard = expected_guard(rel_path)
        ifndef_line = None
        for line_no, code in enumerate(code_lines, start=1):
            stripped = code.strip()
            if not stripped:
                continue
            if stripped.startswith("#ifndef"):
                ifndef_line = (line_no, stripped.split()[-1])
            break  # only the first non-blank code line may open the guard
        if ifndef_line is None:
            emit(1, "include-guard",
                 "header has no include guard (expected #ifndef %s)" % guard)
        elif ifndef_line[1] != guard:
            emit(ifndef_line[0], "include-guard",
                 "include guard '%s' should be '%s'"
                 % (ifndef_line[1], guard))

    # -- suppression hygiene ----------------------------------------------
    for line_no, rules in sorted(per_line.items()):
        if "__unknown__" in rules:
            findings.append(Finding(
                rel_path, line_no, "suppression",
                "suppression names an unknown rule id (see --list-rules)"))
        if "__misplaced__" in rules:
            findings.append(Finding(
                rel_path, line_no, "suppression",
                "disable-file suppressions must sit in the first 10 lines"))


def iter_files(root, paths):
    for path in paths:
        base = os.path.join(root, path)
        if os.path.isfile(base):
            yield os.path.relpath(base, root)
            continue
        for dirpath, dirnames, filenames in os.walk(base):
            dirnames[:] = sorted(
                d for d in dirnames
                if d not in ("fixtures", "__pycache__")
                and not d.startswith("build"))
            for name in sorted(filenames):
                if name.endswith(CXX_EXTENSIONS):
                    yield os.path.relpath(os.path.join(dirpath, name), root)


def run_lint(root, paths, report_path=None):
    findings = []
    count = 0
    for rel in iter_files(root, paths):
        count += 1
        with open(os.path.join(root, rel), "r", encoding="utf-8",
                  errors="replace") as fh:
            check_file(rel, fh.read(), findings)
    findings.sort(key=lambda f: (f.path, f.line, f.rule))
    for f in findings:
        print(f.render())
    if report_path:
        with open(report_path, "w", encoding="utf-8") as fh:
            json.dump({
                "files_checked": count,
                "findings": [f.as_json() for f in findings],
            }, fh, indent=2)
            fh.write("\n")
    print("aqv_lint: %d file(s) checked, %d finding(s)"
          % (count, len(findings)), file=sys.stderr)
    return 1 if findings else 0


# --------------------------------------------------------------------------
# Fixture self-test. Each fixture file declares its pretend repo path on the
# first line (`// lint-path: src/eval/foo.h`) and marks expected findings
# with `// expect: <rule>` on the offending line. good/ fixtures must be
# clean; bad/ fixtures must produce exactly their expected findings; and
# across bad/ every rule must fire at least once (prove the gate gates).
# --------------------------------------------------------------------------

LINT_PATH_RE = re.compile(r"lint-path:\s*(\S+)")
EXPECT_RE = re.compile(r"//\s*expect:\s*([A-Za-z-]+(?:,[A-Za-z-]+)*)")


def run_fixture_file(fixture_path):
    with open(fixture_path, "r", encoding="utf-8") as fh:
        text = fh.read()
    m = LINT_PATH_RE.search(text.split("\n", 1)[0])
    if not m:
        return None, ["%s: first line must declare `lint-path:`"
                      % fixture_path]
    rel_path = m.group(1)
    expected = set()
    for line_no, line in enumerate(text.split("\n"), start=1):
        em = EXPECT_RE.search(line)
        if em:
            for rule in em.group(1).split(","):
                expected.add((line_no, rule))
    findings = []
    check_file(rel_path, text, findings)
    actual = set((f.line, f.rule) for f in findings)
    errors = []
    for line_no, rule in sorted(expected - actual):
        errors.append("%s:%d: expected [%s] finding did not fire"
                      % (fixture_path, line_no, rule))
    for line_no, rule in sorted(actual - expected):
        errors.append("%s:%d: unexpected [%s] finding"
                      % (fixture_path, line_no, rule))
    return set(r for (_, r) in actual), errors


def run_fixtures(root):
    fixture_dir = os.path.join(root, "tools", "lint", "fixtures")
    good_dir = os.path.join(fixture_dir, "good")
    bad_dir = os.path.join(fixture_dir, "bad")
    errors = []
    fired = set()
    n = 0
    for directory, must_be_clean in ((good_dir, True), (bad_dir, False)):
        if not os.path.isdir(directory):
            errors.append("missing fixture directory: %s" % directory)
            continue
        for name in sorted(os.listdir(directory)):
            if not name.endswith(CXX_EXTENSIONS):
                continue
            n += 1
            rules, errs = run_fixture_file(os.path.join(directory, name))
            errors.extend(errs)
            if rules:
                if must_be_clean:
                    pass  # errs already flagged the unexpected findings
                else:
                    fired.update(rules)
    missing = set(RULES) - fired
    if missing:
        errors.append("rules never fired on any bad fixture: %s"
                      % ", ".join(sorted(missing)))
    for err in errors:
        print(err)
    print("aqv_lint --fixtures: %d fixture(s), %d error(s), rules fired: %s"
          % (n, len(errors), ", ".join(sorted(fired)) or "none"),
          file=sys.stderr)
    return 2 if errors else 0


def main(argv):
    parser = argparse.ArgumentParser(
        prog="aqv_lint", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("paths", nargs="*",
                        default=["src", "tests", "bench", "tools",
                                 "examples"],
                        help="files or directories relative to --root")
    parser.add_argument("--root", default=None,
                        help="repo root (default: two levels above this "
                             "script)")
    parser.add_argument("--fixtures", action="store_true",
                        help="run the committed good/bad fixture self-test")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule catalogue and exit")
    parser.add_argument("--report", default=None, metavar="FILE",
                        help="write findings as JSON to FILE")
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in sorted(RULES):
            print("%-16s %s" % (rule, RULES[rule]))
        return 0

    root = args.root or os.path.dirname(os.path.dirname(os.path.dirname(
        os.path.abspath(__file__))))
    if args.fixtures:
        return run_fixtures(root)
    return run_lint(root, args.paths, args.report)


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
