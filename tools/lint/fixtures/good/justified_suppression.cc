// lint-path: src/eval/justified_suppression.cc
// Working suppressions: each banned token below carries a same-line or
// next-line disable with a justification, so a clean run stays clean.

#include "eval/relation.h"

namespace aqv {

inline int OpenReadOnly(const char* path) {
  // Read-only fd on an immutable file: not a durability fault point.
  return ::open(path, 0);  // aqv-lint: disable=storage-fs
}

inline void AdoptForeignLockHandle(std::unique_lock<std::mutex>* held) {
  // Re-acquiring through an std::unique_lock is still scoped ownership;
  // the raw-call ban is about naked mutex members.
  // aqv-lint: disable-next-line=lock-discipline
  held->lock();
}

}  // namespace aqv
