// lint-path: src/eval/clean_module.h
// A fully conforming header: canonical guard, DAG-legal includes,
// [[nodiscard]] on every Status/Result declaration, scoped lock holders,
// seeded randomness only.

#ifndef AQV_EVAL_CLEAN_MODULE_H_
#define AQV_EVAL_CLEAN_MODULE_H_

#include <mutex>
#include <string>

#include "cq/query.h"
#include "eval/relation.h"
#include "rewriting/inverse_rules.h"  // the one permitted cycle: eval <-> rewriting
#include "util/rng.h"
#include "util/status.h"

namespace aqv {

[[nodiscard]] Status CheckInvariants(const Query& q);

[[nodiscard]] Result<Relation> EvaluateSomething(const Query& q,
                                                 SeededRng* rng);

// Multi-line annotation placement: attribute on the line above also counts.
[[nodiscard]]
Result<bool> SlowPath(const Query& q);

class Widget {
 public:
  [[nodiscard]] Status Refresh();

  // A scoped holder is the sanctioned way to take the relation mutex.
  int ReadCount() const {
    std::lock_guard<std::mutex> hold(mu_);
    return count_;
  }

 private:
  mutable std::mutex mu_;
  int count_ = 0;
};

}  // namespace aqv

#endif  // AQV_EVAL_CLEAN_MODULE_H_
