// lint-path: src/eval/stripper_regressions.cc
// Regression fixture for the comment/string/literal stripper: none of the
// banned tokens below are real code, so a correct stripper reports nothing.

#include "eval/relation.h"
#include "util/status.h"

namespace aqv {

// C++14 digit separators are not char literals. A stripper that treats the
// lone apostrophe in 100'000 as an opening quote swallows the rest of the
// file — including real violations — so this constant guards the guard.
constexpr uint64_t kBudget = 5'000'000;
constexpr uint64_t kCap = 100'000;

// Banned tokens in comments must not fire: throw, rand(), fsync(),
// std::random_device, mu_.lock(), time(NULL), system_clock.
// #include "frontend/server.h"  (a commented-out include is not an edge)

inline const char* Describe() {
  // Banned tokens inside string literals are data, not calls.
  return "call rand() then throw; fsync(fd); mu_.lock(); time(0)";
}

inline char Apostrophe() { return '\''; }

// The word `timeline(` contains "time(" only when boundaries are ignored;
// qualified std::time-like names on members (obj.time_ms) are fields.
inline int timeline(int x) { return x; }

}  // namespace aqv
