// lint-path: src/cq/sloppy_header.h
// Wrong include guard, unannotated fallible declarations, and a
// service-from-below include (only frontend may include service).

#ifndef SLOPPY_HEADER_H  // expect: include-guard
#define SLOPPY_HEADER_H

#include "service/service.h"  // expect: layering
#include "util/status.h"

namespace aqv {

Status Validate(int x);  // expect: nodiscard-decl

Result<int> Count(const char* name);  // expect: nodiscard-decl

// mt19937 is banned even seeded: util/rng.h is the one sanctioned RNG.
inline int Roll(std::mt19937* gen) {  // expect: determinism
  return static_cast<int>((*gen)());
}

inline long Stamp() {
  // system_clock is wall time; replays would not be byte-deterministic.
  return std::chrono::system_clock::now()  // expect: determinism
      .time_since_epoch()
      .count();
}

}  // namespace aqv

#endif  // SLOPPY_HEADER_H
