// lint-path: src/eval/bad_suppression.cc
// Suppression hygiene: unknown rule ids and misplaced disable-file
// directives are themselves findings, and a suppression for rule A does
// not silence rule B on the same line.

#include "eval/relation.h"

namespace aqv {

// aqv-lint: disable=not-a-real-rule  // expect: suppression

inline int StillCaught() {
  return rand();  // aqv-lint: disable=no-throw -- wrong rule  // expect: determinism
}

}  // namespace aqv

// A disable-file below line 10 is rejected rather than silently honored.
// aqv-lint: disable-file=determinism  // expect: suppression
