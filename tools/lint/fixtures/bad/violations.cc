// lint-path: src/util/violations.cc
// One of everything the body rules ban. util is the bottom of the DAG, so
// any aqv include from here is also a layering violation.

#include "cq/query.h"  // expect: layering
#include "frontend/server.h"  // expect: layering
#include "not_a_module/thing.h"  // expect: layering
#include "util/status.h"

namespace aqv {

Status Explode(bool bad) {
  if (bad) throw 42;  // expect: no-throw
  return Status::OK();
}

int UnseededNoise() {
  return rand() % 6;  // expect: determinism
}

long WallClockSeed() {
  return time(nullptr);  // expect: determinism
}

void RawLockDance(std::mutex* mu) {
  mu->lock();  // expect: lock-discipline
  mu->unlock();  // expect: lock-discipline
}

Status SneakySyscalls(const char* a, const char* b, int fd) {
  if (rename(a, b) != 0) {  // expect: storage-fs
    return Status::Internal("rename failed");
  }
  if (fsync(fd) != 0) {  // expect: storage-fs
    return Status::Internal("fsync failed");
  }
  return Status::OK();
}

}  // namespace aqv
