#!/usr/bin/env bash
# One TCP round-trip against the frontend server (frontend/server.h),
# with no client dependency beyond bash itself: the script connects over
# bash's /dev/tcp, replays a short session, and greps the expected
# protocol responses. CI's frontend-smoke job runs this after the aqvsh
# script replay; see docs/OPERATIONS.md for the protocol.
#
# Usage: tools/frontend_smoke.sh [BUILD_DIR]

set -euo pipefail

BUILD_DIR=${1:-build}
SERVER="$BUILD_DIR/examples/aqv_server"
if [[ ! -x "$SERVER" ]]; then
  echo "error: $SERVER not found; configure with -DAQV_BUILD_EXAMPLES=ON" >&2
  exit 1
fi

workdir=$(mktemp -d)
server_pid=""
cleanup() {
  status=$?
  # Any failure (including ones set -e aborts on) dumps the server log,
  # so CI failures are diagnosable from the job output alone.
  if [[ "$status" -ne 0 && -s "$workdir/server.log" ]]; then
    echo "--- server log (exit $status) ---" >&2
    cat "$workdir/server.log" >&2
    echo "---------------------------------" >&2
  fi
  if [[ -n "$server_pid" ]] && kill -0 "$server_pid" 2>/dev/null; then
    kill "$server_pid" 2>/dev/null || true
    wait "$server_pid" 2>/dev/null || true
  fi
  rm -rf "$workdir"
  exit "$status"
}
trap cleanup EXIT

# Ephemeral port: the server prints "listening on 127.0.0.1:<port>".
"$SERVER" 0 2 >"$workdir/server.log" &
server_pid=$!

port=""
for _ in $(seq 1 100); do
  port=$(sed -n 's/^listening on 127\.0\.0\.1:\([0-9]*\)$/\1/p' \
    "$workdir/server.log")
  [[ -n "$port" ]] && break
  sleep 0.05
done
if [[ -z "$port" ]]; then
  echo "error: server did not report a port" >&2
  cat "$workdir/server.log" >&2
  exit 1
fi
echo "server up on port $port"

# One session: define a problem, answer it, read stats, quit. The server
# closes the connection after quit, so a plain cat drains the response.
exec 3<>"/dev/tcp/127.0.0.1/$port"
printf '%s\n' \
  'view v(X, Y) :- edge(X, Y), checked(Y).' \
  'query q(X, Z) :- edge(X, Y), checked(Y), edge(Y, Z).' \
  'fact edge(1, 2).' \
  'fact checked(2).' \
  'fact edge(2, 3).' \
  'answer route direct' \
  'bogus' \
  'STATS' \
  'quit' >&3
if ! timeout 30 cat <&3 >"$workdir/response.txt"; then
  echo "error: timed out draining the server response" >&2
  echo "--- partial response ---" >&2
  cat "$workdir/response.txt" >&2
  exit 1
fi
exec 3<&- 3>&-

echo "--- response ---"
cat "$workdir/response.txt"
echo "----------------"

fail=0
expect() {
  if ! grep -qF "$1" "$workdir/response.txt"; then
    echo "MISSING: $1" >&2
    fail=1
  fi
}

expect 'added view v'
expect 'route direct: 1 answer (exact)'
expect '(1, 3)'
expect "err InvalidArgument: unknown command 'bogus' (try 'help')"
# Every command runs as a service task and STATS counts itself, so the
# 8 commands up to and including STATS all land in the lifetime counters
# (task success is the delivery itself, hence failed=0 despite `bogus`).
expect 'service: requests=8 ok=8 failed=0'

# 9 commands -> exactly 8 `ok` terminators plus 1 `err`. grep -c exits 1
# on zero matches, which set -e would turn into a silent death inside the
# command substitution — the `|| true` keeps the "0" and lets the explicit
# count check below do the failing, with a message.
ok_count=$(grep -cx 'ok' "$workdir/response.txt" || true)
err_count=$(grep -c '^err ' "$workdir/response.txt" || true)
if [[ "$ok_count" -ne 8 || "$err_count" -ne 1 ]]; then
  echo "bad terminator counts: ok=$ok_count err=$err_count" >&2
  fail=1
fi

if [[ "$fail" -ne 0 ]]; then
  echo "frontend smoke FAILED" >&2
  exit 1
fi
echo "frontend smoke OK"
