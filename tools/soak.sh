#!/usr/bin/env bash
# Bounded differential soak over the epoll TCP frontend (shared
# cross-connection oracle + rewriting-plan cache), in two acts:
#
#   1. a clean soak — a multi-tenant isolation phase (interleaved
#      authenticated tenants who must never see each other's views), then
#      randomized generated scenarios replayed by concurrent clients
#      through the shared caches, every response differentially checked;
#      any divergence fails the script (and leaves a shrunk .aqv repro),
#   2. the harness self-test — the same driver with --inject-fault-at,
#      which MUST exit 1 and write a repro: a soak harness that cannot
#      catch a deliberately flipped answer proves nothing.
#
# With --persist <dir>, act 1 additionally runs every scenario with
# save/open churn through per-scenario database directories under <dir>
# — each post-`open` probe interrogates state recovered from disk.
#
# CI's soak-smoke job runs this under ASan with SOAK_DURATION_S=60.
# Knobs (env): SOAK_SEED, SOAK_CLIENTS, SOAK_SCENARIOS,
# SOAK_MIN_COMMANDS, SOAK_DURATION_S, SOAK_TENANTS, SOAK_SHARED_CACHE.
# See docs/OPERATIONS.md.
#
# Usage: tools/soak.sh [BUILD_DIR] [--persist <dir>]

set -euo pipefail

BUILD_DIR=build
PERSIST_DIR=""
while [[ $# -gt 0 ]]; do
  case "$1" in
    --persist)
      PERSIST_DIR=${2:?--persist needs a directory}
      shift 2
      ;;
    *)
      BUILD_DIR=$1
      shift
      ;;
  esac
done
SOAK="$BUILD_DIR/tools/aqv_soak"
if [[ ! -x "$SOAK" ]]; then
  echo "error: $SOAK not found; configure with -DAQV_BUILD_TOOLS=ON" >&2
  exit 1
fi

SOAK_SEED=${SOAK_SEED:-20260807}
SOAK_CLIENTS=${SOAK_CLIENTS:-4}
SOAK_SCENARIOS=${SOAK_SCENARIOS:-12}
SOAK_MIN_COMMANDS=${SOAK_MIN_COMMANDS:-3000}
SOAK_DURATION_S=${SOAK_DURATION_S:-0}
SOAK_TENANTS=${SOAK_TENANTS:-2}
SOAK_SHARED_CACHE=${SOAK_SHARED_CACHE:-1}

workdir=$(mktemp -d)
cleanup() {
  status=$?
  rm -rf "$workdir"
  exit "$status"
}
trap cleanup EXIT

persist_flags=()
if [[ -n "$PERSIST_DIR" ]]; then
  mkdir -p "$PERSIST_DIR"
  persist_flags=(--persist "$PERSIST_DIR")
fi

echo "=== clean soak (seed=$SOAK_SEED clients=$SOAK_CLIENTS" \
  "scenarios=$SOAK_SCENARIOS min-commands=$SOAK_MIN_COMMANDS" \
  "duration-s=$SOAK_DURATION_S tenants=$SOAK_TENANTS" \
  "shared-cache=$SOAK_SHARED_CACHE persist=${PERSIST_DIR:-off}) ==="
"$SOAK" \
  --seed "$SOAK_SEED" \
  --clients "$SOAK_CLIENTS" \
  --scenarios "$SOAK_SCENARIOS" \
  --min-commands "$SOAK_MIN_COMMANDS" \
  --duration-s "$SOAK_DURATION_S" \
  --views-min 15 --views-max 40 \
  --preds-min 8 --preds-max 16 \
  --tenants "$SOAK_TENANTS" \
  --shared-cache "$SOAK_SHARED_CACHE" \
  "${persist_flags[@]}" \
  --repro-dir "$workdir"

echo "=== fault-injection self-test (expect divergence + repro) ==="
rc=0
"$SOAK" \
  --seed "$SOAK_SEED" \
  --clients 1 \
  --scenarios 1 \
  --min-commands 1 \
  --views-min 8 --views-max 12 \
  --preds-min 6 --preds-max 8 \
  --tenants 0 \
  --inject-fault-at 1 \
  --repro-dir "$workdir" || rc=$?
if [[ "$rc" -ne 1 ]]; then
  echo "self-test FAILED: injected fault exited $rc, want 1" >&2
  exit 1
fi
repro=$(find "$workdir" -name 'repro-*.aqv' | head -n 1)
if [[ -z "$repro" ]]; then
  echo "self-test FAILED: no repro file written" >&2
  exit 1
fi
echo "--- shrunk repro ---"
cat "$repro"
echo "--------------------"
echo "soak OK"
