#!/usr/bin/env python3
"""Sanity-checks a merged bench report (tools/run_bench.sh output).

Asserts the cached-index machinery actually engaged during the run:
every F5 Indexed:1 evaluation benchmark must report a nonzero
`index_hits` counter and zero `index_builds` (the setup primes the
caches, so a warm run that builds anything — or hits nothing — means
the cache is broken or disabled), and every Indexed:0 baseline must
report zero `index_hits`.

When the report includes the F12 storage suite, also asserts the
persisted-extents claims: every Mmap:1 persisted-answer benchmark must
produce answers through warm cached indexes (index_hits > 0,
index_builds == 0) and hold its post-answer resident growth below the
on-disk database size (`rss_answer_mb < file_mb` — the point of the
mmap backend), while the Mmap:0 eager baseline must still answer
identically (same `answers` counter as its mmap twin).

Usage: tools/check_bench_smoke.py BENCH.json
"""

import json
import sys


def fail(msg):
    print(f"check_bench_smoke: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def check_f5(suite):
    checked = 0
    for bench in suite.get("benchmarks", []):
        name = bench.get("name", "")
        if "Indexed:" not in name:
            continue
        hits = bench.get("index_hits")
        builds = bench.get("index_builds")
        if hits is None or builds is None:
            fail(f"{name}: missing index_hits/index_builds counters")
        if "Indexed:1" in name:
            if hits <= 0:
                fail(f"{name}: warm run reported index_hits={hits}")
            if builds != 0:
                fail(f"{name}: warm run reported index_builds={builds}")
        else:
            if hits != 0:
                fail(f"{name}: cold baseline reported index_hits={hits}")
        checked += 1

    if checked == 0:
        fail("no Indexed:* benchmarks found in bench_f5_eval_speedup")
    return checked


def check_f12(suite):
    checked = 0
    answers = {}  # (size) -> {mmap_flag: answers} for cross-backend equality
    for bench in suite.get("benchmarks", []):
        name = bench.get("name", "")
        if "BM_F12_SelectiveAnswerPersisted" not in name or "Mmap:" not in name:
            continue
        mmap = "Mmap:1" in name
        for counter in ("answers", "index_hits", "index_builds", "file_mb",
                        "rss_answer_mb"):
            if bench.get(counter) is None:
                fail(f"{name}: missing {counter} counter")
        if bench["answers"] <= 0:
            fail(f"{name}: persisted answer produced no rows")
        if bench["index_hits"] <= 0:
            fail(f"{name}: warm persisted run reported "
                 f"index_hits={bench['index_hits']}")
        if bench["index_builds"] != 0:
            fail(f"{name}: warm persisted run reported "
                 f"index_builds={bench['index_builds']}")
        if mmap and bench["rss_answer_mb"] >= bench["file_mb"]:
            fail(f"{name}: mmap backend resident growth "
                 f"({bench['rss_answer_mb']:.1f} MiB) is not below the "
                 f"database size ({bench['file_mb']:.1f} MiB)")
        size_key = name.split("size:")[-1].split("/")[0]
        answers.setdefault(size_key, {})[mmap] = bench["answers"]
        checked += 1

    if checked == 0:
        fail("no SelectiveAnswerPersisted benchmarks in bench_f12_storage")
    for size, by_backend in answers.items():
        if len(by_backend) == 2 and by_backend[True] != by_backend[False]:
            fail(f"F12 size {size}: mmap and columnar backends disagree "
                 f"({by_backend[True]} vs {by_backend[False]} answers)")
    return checked


def main():
    if len(sys.argv) != 2:
        fail(f"usage: {sys.argv[0]} BENCH.json")
    with open(sys.argv[1]) as f:
        merged = json.load(f)
    suites = merged.get("suites", {})

    f5 = suites.get("bench_f5_eval_speedup")
    if f5 is None:
        fail("no bench_f5_eval_speedup suite in the report")
    checked = check_f5(f5)

    f12_checked = 0
    f12 = suites.get("bench_f12_storage")
    if f12 is not None:
        f12_checked = check_f12(f12)

    print(f"check_bench_smoke: OK ({checked} F5 benchmarks, "
          f"{f12_checked} F12 benchmarks checked)")


if __name__ == "__main__":
    main()
