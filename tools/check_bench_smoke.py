#!/usr/bin/env python3
"""Sanity-checks a merged bench report (tools/run_bench.sh output).

Asserts the cached-index machinery actually engaged during the run:
every F5 Indexed:1 evaluation benchmark must report a nonzero
`index_hits` counter and zero `index_builds` (the setup primes the
caches, so a warm run that builds anything — or hits nothing — means
the cache is broken or disabled), and every Indexed:0 baseline must
report zero `index_hits`.

Usage: tools/check_bench_smoke.py BENCH.json
"""

import json
import sys


def fail(msg):
    print(f"check_bench_smoke: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def main():
    if len(sys.argv) != 2:
        fail(f"usage: {sys.argv[0]} BENCH.json")
    with open(sys.argv[1]) as f:
        merged = json.load(f)

    suite = merged.get("suites", {}).get("bench_f5_eval_speedup")
    if suite is None:
        fail("no bench_f5_eval_speedup suite in the report")

    checked = 0
    for bench in suite.get("benchmarks", []):
        name = bench.get("name", "")
        if "Indexed:" not in name:
            continue
        hits = bench.get("index_hits")
        builds = bench.get("index_builds")
        if hits is None or builds is None:
            fail(f"{name}: missing index_hits/index_builds counters")
        if "Indexed:1" in name:
            if hits <= 0:
                fail(f"{name}: warm run reported index_hits={hits}")
            if builds != 0:
                fail(f"{name}: warm run reported index_builds={builds}")
        else:
            if hits != 0:
                fail(f"{name}: cold baseline reported index_hits={hits}")
        checked += 1

    if checked == 0:
        fail("no Indexed:* benchmarks found in bench_f5_eval_speedup")
    print(f"check_bench_smoke: OK ({checked} F5 benchmarks checked)")


if __name__ == "__main__":
    main()
