/// \file
/// Differential checking harness over the frontend command protocol: the
/// cross-checking half of the soak/fuzz driver (tools/soak.cc) and of the
/// differential tests. A MirrorChecker replays every command a server
/// connection executed onto an in-process *mirror* Session — same command
/// stream, but inline (no service) and with a fresh single-shard
/// containment oracle — and demands byte-identical wire responses, which
/// exercises the service-vs-inline and shard-count-invariance contracts
/// end to end. On top of the byte compare, every successful `answer`
/// response is semantically cross-checked against ground truth computed
/// on the mirror's own state via the direct route: `(exact)` responses
/// must equal the direct relation, `(certain)` responses must be a subset
/// of it (answering/answering.h route semantics).
///
/// The file also carries the fuzzing utilities around the checker: a
/// TCP replay loop that drives a live FrontendServer in lock-step with a
/// mirror, a response tamperer for harness self-tests (a checker that
/// cannot catch an injected fault is worse than none), and a greedy
/// ddmin-style script shrinker that reduces a diverging script to a
/// small standalone repro.

#ifndef AQV_FRONTEND_DIFFERENTIAL_H_
#define AQV_FRONTEND_DIFFERENTIAL_H_

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "containment/oracle.h"
#include "frontend/session.h"
#include "util/status.h"

namespace aqv {

/// One observed disagreement between a server response and the mirror.
struct Divergence {
  /// 0-based index of the command within the replayed stream.
  int command_index = -1;
  /// The command text that diverged.
  std::string command;
  /// What kind of disagreement: "wire-mismatch" (byte compare),
  /// "exact-mismatch" (`(exact)` answer != direct route),
  /// "certain-not-subset" (`(certain)` answer has a row the direct route
  /// lacks), or "malformed-answer" (an ok `answer` payload that does not
  /// parse as the transcript grammar).
  std::string kind;
  /// What the mirror / ground truth expected.
  std::string expected;
  /// What the server actually sent.
  std::string actual;

  /// "cmd #N `...`: <kind>" — the one-line log rendering.
  std::string ToString() const;
};

/// A successful `answer` payload, decomposed per the transcript grammar
/// `route <name>[ (engine <e>)]: N answer(s) (exact|certain)` + one
/// sorted `(v1, v2)` row line per tuple.
struct ParsedAnswerPayload {
  std::string route;
  std::string engine;  ///< Empty for engine-independent routes.
  int count = 0;
  bool exact = false;
  std::vector<std::string> rows;
};

/// Parses the payload lines (terminator excluded) of a successful
/// `answer` command. kInvalidArgument when the header or a row line does
/// not match the transcript grammar.
[[nodiscard]] Result<ParsedAnswerPayload> ParseAnswerPayload(const std::string& payload);

/// The server's wire rendering of one command result: payload + '\n'
/// (when non-empty), then `ok` or `err <Code>: <message>` — must match
/// frontend/server.cc's RespondTo byte for byte.
std::string RenderWireResponse(const CommandResult& result);

/// `text` split at '\n' (a trailing final newline yields no empty line).
std::vector<std::string> SplitScriptLines(const std::string& text);

/// \brief The mirror half of the differential harness: owns an inline
/// Session (fresh single-shard oracle, no service, load disabled) and
/// checks every server response against it. Not thread-safe — one
/// MirrorChecker per replayed connection, mirroring the one-Session-per-
/// client server contract.
class MirrorChecker {
 public:
  /// `options` seeds the mirror Session; service/enable_load/oracle are
  /// overridden (inline, disabled, the checker's own single-shard oracle)
  /// regardless of what they are set to.
  explicit MirrorChecker(SessionOptions options = {});

  /// True when `command` participates in checking: excludes blank lines
  /// and comments (nothing to say), `show stats` and its `STATS` wire
  /// alias (timings are nondeterministic), `load` (filesystem), and
  /// `auth` (answered at the server boundary; no mirror analogue).
  /// Non-checkable commands are still executed on the mirror so state
  /// stays in lock-step (`auth` and save/open are additionally not
  /// executed there — see Check).
  static bool IsCheckable(std::string_view command);

  /// Executes `command` on the mirror and compares `raw_response` — the
  /// exact bytes the server sent back, payload lines plus the
  /// `ok`/`err ...` terminator line, each '\n'-terminated. Returns the
  /// divergence, or std::nullopt when server and mirror agree.
  std::optional<Divergence> Check(const std::string& command,
                                  const std::string& raw_response);

  /// The mirror session (introspection for tests and repro dumps).
  const Session& session() const { return session_; }
  int commands() const { return index_; }
  uint64_t answers_checked() const { return answers_checked_; }
  uint64_t rewrites_checked() const { return rewrites_checked_; }

 private:
  /// The mirror's own single-shard oracle. Declaration order vs the
  /// session no longer matters: oracle entries are catalog-independent
  /// (containment/oracle.h), so neither side constrains the other's
  /// lifetime.
  ContainmentOracle oracle_;
  Session session_;
  int index_ = 0;
  uint64_t answers_checked_ = 0;
  uint64_t rewrites_checked_ = 0;
};

/// \brief Tampers one answer response in place for harness self-tests:
/// flips the first digit after the `route ` header (the answer count or
/// a row constant), guaranteeing the bytes no longer match any honest
/// rendering. Returns false (input untouched) when `raw_response` does
/// not look like an answer response.
bool FlipOneAnswer(std::string* raw_response);

/// Knobs of ReplayAndCheckOverTcp.
struct TcpReplayOptions {
  /// Seeds the mirror (MirrorChecker constructor semantics).
  SessionOptions mirror;
  /// When >= 0: tamper the Nth (0-based) `answer` response received, as
  /// if the server had answered wrongly — the harness self-test.
  int tamper_at_answer = -1;
  /// When non-empty: tamper the response of the first command whose text
  /// equals this. Used by the shrinker to re-inject a recorded fault.
  std::string tamper_match;
  /// SO_RCVTIMEO on the client socket, seconds.
  int recv_timeout_s = 30;
};

/// Outcome of one replayed connection.
struct TcpReplayResult {
  /// The first divergence, if any (the replay stops at it).
  std::optional<Divergence> divergence;
  int commands_sent = 0;
  uint64_t answers_checked = 0;
  uint64_t rewrites_checked = 0;
};

/// \brief Replays `lines` over a real TCP connection to a FrontendServer
/// on 127.0.0.1:`port` in lock-step — send one command, read its full
/// response (payload + terminator), check it against the mirror — and
/// stops at the first divergence or after a `quit`. Transport failures
/// (connect/send/recv/timeouts) are errors, not divergences.
[[nodiscard]] Result<TcpReplayResult> ReplayAndCheckOverTcp(int port,
                                              const std::vector<std::string>& lines,
                                              const TcpReplayOptions& options);

/// \brief Greedy ddmin-style shrinker: repeatedly deletes chunks of
/// `lines` (halving chunk size down to single lines) while
/// `still_diverges` holds on the candidate, returning a 1-minimal
/// diverging script — deleting any single remaining line loses the
/// divergence. `still_diverges(lines)` must be true on entry; the
/// predicate is invoked O(n log n) to O(n^2) times, so keep it cheap
/// (one connection replay).
std::vector<std::string> ShrinkScript(
    std::vector<std::string> lines,
    const std::function<bool(const std::vector<std::string>&)>& still_diverges);

}  // namespace aqv

#endif  // AQV_FRONTEND_DIFFERENTIAL_H_
