#include "frontend/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <deque>
#include <utility>

namespace aqv {

namespace {

using Clock = std::chrono::steady_clock;

Status SocketError(const std::string& what) {
  return Status::Internal(what + ": " + std::strerror(errno));
}

int MsUntil(Clock::time_point deadline, Clock::time_point now) {
  if (deadline <= now) return 0;
  auto ms = std::chrono::duration_cast<std::chrono::milliseconds>(deadline -
                                                                  now)
                .count();
  if (ms > 60'000) return 60'000;
  return static_cast<int>(ms) + 1;  // +1: never wake before the deadline
}

std::string TrimView(const std::string& s) {
  size_t b = s.find_first_not_of(" \t\r\n");
  if (b == std::string::npos) return "";
  size_t e = s.find_last_not_of(" \t\r\n");
  return s.substr(b, e - b + 1);
}

/// First whitespace-delimited word of a trimmed command line.
std::string FirstWord(const std::string& trimmed) {
  size_t split = trimmed.find_first_of(" \t");
  return split == std::string::npos ? trimmed : trimmed.substr(0, split);
}

bool IsMutatingCommand(const std::string& word) {
  return word == "view" || word == "query" || word == "fact" ||
         word == "reset" || word == "save" || word == "open" ||
         word == "load";
}

}  // namespace

/// Per-connection state, owned and touched exclusively by the event-loop
/// thread. The session is the one exception: the in-flight command task
/// reads and writes it on a pool worker — but at most one task per
/// connection is ever in flight (`executing`), and the hand-offs in both
/// directions go through locked queues, so the session is still accessed
/// by one thread at a time with proper happens-before edges.
struct FrontendServer::Conn {
  int fd = -1;
  uint64_t id = 0;
  /// Bytes read but not yet terminated by '\n' (the line carry).
  std::string in;
  /// Rendered response bytes the socket has not accepted yet.
  std::string out;
  /// Parsed command lines waiting for their turn on the pool.
  std::deque<std::string> lines;
  /// True while a command task for this connection is on the pool.
  bool executing = false;
  /// True once the connection should close as soon as queued lines,
  /// the in-flight task, and the write buffer have drained.
  bool closing = false;
  /// True once no further bytes are read or parsed (quit, line-cap kill,
  /// EOF, server drain).
  bool read_shut = false;
  /// Peer half-closed its write side: finish queued work, flush, close.
  bool read_eof = false;
  /// Fd already closed while a task was in flight; the connection
  /// lingers (the task references its session) until the completion
  /// arrives, then is destroyed.
  bool dead = false;
  /// Line-cap violation verdict, delivered after earlier queued
  /// responses so wire order matches the synchronous server.
  std::string kill_error;
  bool authed = false;
  bool can_write = true;
  std::string user;
  Clock::time_point last_activity;
  uint32_t interest = 0;
  /// The connection-private oracle of `share_cache = false` mode.
  std::unique_ptr<ContainmentOracle> own_oracle;
  std::unique_ptr<Session> session;
};

FrontendServer::FrontendServer(ServerOptions options)
    : options_(std::move(options)) {
  // Rewrites/answers run inline on pool workers against the session-wired
  // shared oracle below; the service's internal oracle stays out of the
  // way so cache mode is decided in exactly one place.
  options_.service.share_oracle = false;
  service_ = std::make_unique<RewriteService>(options_.service);
  oracle_ = std::make_unique<ContainmentOracle>(
      options_.service.oracle_max_entries, options_.service.oracle_shards);
  plan_cache_ = std::make_unique<RewritePlanCache>(
      options_.plan_cache_max_entries, options_.plan_cache_shards);
}

FrontendServer::~FrontendServer() {
  Stop();
  // The loop exits only once every connection (and its in-flight task) is
  // gone, but a finished task may still sit between its completion push
  // and its eventfd tick. Destroying the service joins the workers, after
  // which no thread can touch the fds — only then may they close.
  service_.reset();
  if (event_fd_ >= 0) {
    ::close(event_fd_);
    event_fd_ = -1;
  }
  if (epoll_fd_ >= 0) {
    ::close(epoll_fd_);
    epoll_fd_ = -1;
  }
}

Status FrontendServer::Start() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (started_) return Status::Internal("server already started");
    started_ = true;
  }
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK, 0);
  if (listen_fd_ < 0) return SocketError("socket");
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(options_.port));
  if (::inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument("bad host address '" + options_.host +
                                   "'");
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
      0) {
    return SocketError("bind to " + options_.host + ":" +
                       std::to_string(options_.port));
  }
  if (::listen(listen_fd_, 256) < 0) return SocketError("listen");
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len) <
      0) {
    return SocketError("getsockname");
  }
  port_ = ntohs(bound.sin_port);
  epoll_fd_ = ::epoll_create1(0);
  if (epoll_fd_ < 0) return SocketError("epoll_create1");
  event_fd_ = ::eventfd(0, EFD_NONBLOCK);
  if (event_fd_ < 0) return SocketError("eventfd");
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.u64 = 0;  // listener
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, listen_fd_, &ev) < 0) {
    return SocketError("epoll_ctl(listener)");
  }
  ev.events = EPOLLIN;
  ev.data.u64 = 1;  // completion/stop wakeup
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, event_fd_, &ev) < 0) {
    return SocketError("epoll_ctl(eventfd)");
  }
  loop_thread_ = std::thread(&FrontendServer::EventLoop, this);
  return Status::OK();
}

void FrontendServer::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!started_ || stopped_) return;
    stopped_ = true;
  }
  stop_requested_.store(true);
  uint64_t tick = 1;
  [[maybe_unused]] ssize_t w = ::write(event_fd_, &tick, sizeof(tick));
  if (loop_thread_.joinable()) loop_thread_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  // event_fd_/epoll_fd_ stay open: a just-finished worker task may still
  // tick the eventfd (see the destructor, which closes both after the
  // service joins its workers).
}

std::string FrontendServer::RespondTo(Session& session,
                                      const std::string& line, bool* quit) {
  // STATS: the wire-level alias surfacing the shared service, oracle, and
  // plan-cache counters.
  CommandResult result =
      session.Execute(line == "STATS" ? "show stats" : line);
  std::string response = result.output;
  if (!response.empty()) response += '\n';
  if (result.quit) {
    *quit = true;
    response += "ok\n";
  } else if (result.status.ok()) {
    response += "ok\n";
  } else {
    response += "err " + result.status.ToString() + "\n";
  }
  return response;
}

std::string FrontendServer::Gate(Conn& conn, const std::string& line) {
  std::string trimmed = TrimView(line);
  // No-op lines (blank, comments) carry no authority and pass untouched —
  // the session answers them `ok` without counting a command, exactly as
  // the differential mirror does.
  if (trimmed.empty() || trimmed[0] == '%' || trimmed[0] == '#') return "";
  if (options_.accounts.empty()) return "";
  std::string word = FirstWord(trimmed);
  if (word == "auth") {
    size_t split = trimmed.find_first_of(" \t");
    std::string rest =
        split == std::string::npos ? "" : TrimView(trimmed.substr(split));
    size_t gap = rest.find_first_of(" \t");
    std::string user = gap == std::string::npos ? rest : rest.substr(0, gap);
    std::string token =
        gap == std::string::npos ? "" : TrimView(rest.substr(gap));
    if (user.empty() || token.empty() ||
        token.find_first_of(" \t") != std::string::npos) {
      return "err InvalidArgument: usage: auth <user> <token>\n";
    }
    for (const ServerAccount& account : options_.accounts) {
      if (account.user == user && account.token == token) {
        conn.authed = true;
        conn.user = user;
        conn.can_write = account.can_write;
        return "authenticated as " + user +
               (account.can_write ? "" : " (read-only)") + "\nok\n";
      }
    }
    return "err PermissionDenied: bad credentials for user '" + user +
           "'\n";
  }
  if (!conn.authed) {
    if (word == "quit" || word == "exit") {
      conn.closing = true;
      conn.read_shut = true;
      conn.lines.clear();
      return "ok\n";
    }
    return "err Unauthenticated: authenticate first (auth <user> "
           "<token>)\n";
  }
  if (!conn.can_write && IsMutatingCommand(word)) {
    return "err PermissionDenied: user '" + conn.user + "' is read-only\n";
  }
  return "";
}

void FrontendServer::EventLoop() {
  bool draining = false;
  Clock::time_point drain_deadline{};
  bool drain_forced = false;
  epoll_event events[64];
  while (true) {
    if (stop_requested_.load() && !draining) {
      draining = true;
      drain_deadline =
          Clock::now() + std::chrono::milliseconds(options_.drain_timeout_ms);
      if (listen_fd_ >= 0) {
        ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, listen_fd_, nullptr);
        ::close(listen_fd_);
        listen_fd_ = -1;
      }
      // Snapshot ids: Settle may destroy connections while we sweep.
      std::vector<uint64_t> ids;
      ids.reserve(conns_.size());
      for (const auto& entry : conns_) ids.push_back(entry.first);
      for (uint64_t id : ids) {
        auto it = conns_.find(id);
        if (it == conns_.end()) continue;
        Conn& conn = *it->second;
        conn.read_shut = true;
        conn.closing = true;
        conn.lines.clear();
        conn.in.clear();
        Settle(conn);
      }
    }
    if (draining && conns_.empty()) return;

    int timeout = -1;
    Clock::time_point now = Clock::now();
    if (draining) {
      timeout = drain_forced ? -1 : MsUntil(drain_deadline, now);
    } else if (options_.idle_timeout_ms > 0 && !conns_.empty()) {
      Clock::time_point next = now + std::chrono::hours(1);
      for (const auto& entry : conns_) {
        const Conn& conn = *entry.second;
        if (conn.dead || conn.executing) continue;
        Clock::time_point expiry =
            conn.last_activity +
            std::chrono::milliseconds(options_.idle_timeout_ms);
        if (expiry < next) next = expiry;
      }
      timeout = MsUntil(next, now);
    }

    int n = ::epoll_wait(epoll_fd_, events, 64, timeout);
    if (n < 0 && errno != EINTR) return;  // epoll fd died; nothing to serve
    for (int i = 0; i < n; ++i) {
      uint64_t tag = events[i].data.u64;
      uint32_t mask = events[i].events;
      if (tag == 0) {
        if (!draining) AcceptReady();
        continue;
      }
      if (tag == 1) {
        uint64_t drainv = 0;
        [[maybe_unused]] ssize_t r =
            ::read(event_fd_, &drainv, sizeof(drainv));
        DrainCompletions();
        continue;
      }
      auto it = conns_.find(tag);
      if (it == conns_.end()) continue;  // closed earlier this batch
      Conn& conn = *it->second;
      if (conn.dead) continue;
      if (mask & (EPOLLHUP | EPOLLERR)) {
        // Peer fully gone: responses are undeliverable, drop everything.
        CloseConn(conn);
        continue;
      }
      if (mask & EPOLLIN) {
        ReadReady(conn);
        if (conns_.find(tag) == conns_.end()) continue;
      }
      if (mask & EPOLLOUT) {
        WriteReady(conn);
        Settle(conn);
      }
    }

    now = Clock::now();
    if (draining) {
      if (!drain_forced && now >= drain_deadline) {
        // Flush budget exhausted: stop waiting for slow readers. In-flight
        // commands still finish (their connections linger as `dead` until
        // the completion lands; the loop exits only when all are gone).
        drain_forced = true;
        std::vector<uint64_t> ids;
        ids.reserve(conns_.size());
        for (const auto& entry : conns_) ids.push_back(entry.first);
        for (uint64_t id : ids) {
          auto it = conns_.find(id);
          if (it != conns_.end() && !it->second->dead) {
            CloseConn(*it->second);
          }
        }
      }
    } else if (options_.idle_timeout_ms > 0) {
      std::vector<uint64_t> expired;
      for (const auto& entry : conns_) {
        const Conn& conn = *entry.second;
        if (conn.dead || conn.executing) continue;
        if (now - conn.last_activity >=
            std::chrono::milliseconds(options_.idle_timeout_ms)) {
          expired.push_back(entry.first);
        }
      }
      for (uint64_t id : expired) {
        auto it = conns_.find(id);
        if (it != conns_.end()) CloseConn(*it->second);
      }
    }
  }
}

void FrontendServer::AcceptReady() {
  while (true) {
    int fd = ::accept4(listen_fd_, nullptr, nullptr, SOCK_NONBLOCK);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // EAGAIN: accepted everything pending
    }
    if (static_cast<int>(conns_.size()) >= options_.max_connections) {
      std::string refusal = "err ResourceExhausted: connection limit (" +
                            std::to_string(options_.max_connections) +
                            ") reached\n";
      // Best-effort single send: the refusal fits any socket buffer.
      ::send(fd, refusal.data(), refusal.size(), MSG_NOSIGNAL);
      ::close(fd);
      continue;
    }
    auto conn = std::make_unique<Conn>();
    conn->fd = fd;
    conn->id = next_conn_id_++;
    conn->last_activity = Clock::now();
    SessionOptions session_options = options_.session;
    session_options.service = service_.get();
    session_options.dispatch_inline = true;
    session_options.enable_load = false;
    if (options_.share_cache) {
      session_options.engine.oracle = oracle_.get();
      session_options.plan_cache = plan_cache_.get();
    } else {
      conn->own_oracle = std::make_unique<ContainmentOracle>(
          options_.service.oracle_max_entries, options_.service.oracle_shards);
      session_options.engine.oracle = conn->own_oracle.get();
      session_options.plan_cache = nullptr;
    }
    conn->session = std::make_unique<Session>(session_options);
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.u64 = conn->id;
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) < 0) {
      ::close(fd);
      continue;
    }
    conn->interest = EPOLLIN;
    accepted_.fetch_add(1);
    conns_.emplace(conn->id, std::move(conn));
  }
}

void FrontendServer::ParseLines(Conn& conn) {
  size_t nl;
  while (!conn.read_shut &&
         (nl = conn.in.find('\n')) != std::string::npos) {
    if (nl > options_.max_line_bytes) break;
    std::string line = conn.in.substr(0, nl);
    conn.in.erase(0, nl + 1);
    if (!line.empty() && line.back() == '\r') line.pop_back();
    conn.lines.push_back(std::move(line));
  }
  if (!conn.read_shut && conn.in.size() > options_.max_line_bytes) {
    // Overlong line (terminated or not): verdict queued behind earlier
    // commands' responses, then the connection dies — same wire behavior
    // as the synchronous server, which had answered those already.
    conn.kill_error = "err InvalidArgument: line exceeds " +
                      std::to_string(options_.max_line_bytes) + " bytes\n";
    conn.read_shut = true;
    conn.in.clear();
  }
}

void FrontendServer::ReadReady(Conn& conn) {
  char buf[4096];
  while (!conn.read_shut &&
         conn.lines.size() < options_.max_pipelined) {
    ssize_t n = ::recv(conn.fd, buf, sizeof(buf), 0);
    if (n > 0) {
      conn.last_activity = Clock::now();
      conn.in.append(buf, static_cast<size_t>(n));
      ParseLines(conn);
      continue;
    }
    if (n == 0) {
      // Peer half-closed: it may still be reading, so already-pipelined
      // commands run and their responses flush before we close.
      conn.read_eof = true;
      conn.read_shut = true;
      conn.in.clear();
      break;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    if (errno == EINTR) continue;
    CloseConn(conn);  // connection reset; nothing deliverable
    return;
  }
  Pump(conn);
  Settle(conn);
}

void FrontendServer::Pump(Conn& conn) {
  while (!conn.executing && !conn.dead && !conn.lines.empty()) {
    std::string line = std::move(conn.lines.front());
    conn.lines.pop_front();
    std::string gated = Gate(conn, line);
    if (!gated.empty()) {
      QueueWrite(conn, std::move(gated));
      if (conn.closing) return;  // gated quit
      continue;
    }
    Session* session = conn.session.get();
    uint64_t id = conn.id;
    conn.executing = true;
    Status submitted =
        service_->SubmitTask([this, session, id, line = std::move(line)] {
          bool quit = false;
          std::string response = RespondTo(*session, line, &quit);
          {
            std::lock_guard<std::mutex> lock(comp_mu_);
            completions_.push_back(Completion{id, std::move(response), quit});
          }
          uint64_t tick = 1;
          [[maybe_unused]] ssize_t w =
              ::write(event_fd_, &tick, sizeof(tick));
        });
    if (!submitted.ok()) {
      // Only possible during service shutdown; answer at the boundary.
      conn.executing = false;
      QueueWrite(conn, "err " + submitted.ToString() + "\n");
      continue;
    }
    return;  // strictly one in-flight command per connection
  }
}

void FrontendServer::DrainCompletions() {
  std::vector<Completion> batch;
  {
    std::lock_guard<std::mutex> lock(comp_mu_);
    batch.swap(completions_);
  }
  for (Completion& done : batch) {
    auto it = conns_.find(done.conn_id);
    if (it == conns_.end()) continue;
    Conn& conn = *it->second;
    conn.executing = false;
    if (conn.dead) {
      // Force-closed while the task ran; now safe to destroy.
      conns_.erase(it);
      continue;
    }
    conn.last_activity = Clock::now();
    QueueWrite(conn, std::move(done.response));
    if (done.quit) {
      conn.closing = true;
      conn.read_shut = true;
      conn.lines.clear();
      conn.in.clear();
    } else {
      Pump(conn);
    }
    Settle(conn);
  }
}

void FrontendServer::QueueWrite(Conn& conn, std::string text) {
  if (conn.dead || conn.fd < 0) return;
  if (conn.out.empty()) {
    conn.out = std::move(text);
  } else {
    conn.out += text;
  }
  WriteReady(conn);
}

void FrontendServer::WriteReady(Conn& conn) {
  while (!conn.out.empty()) {
    ssize_t n = ::send(conn.fd, conn.out.data(), conn.out.size(),
                       MSG_NOSIGNAL);
    if (n > 0) {
      conn.last_activity = Clock::now();
      conn.out.erase(0, static_cast<size_t>(n));
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    if (n < 0 && errno == EINTR) continue;
    // Peer gone: every remaining byte is undeliverable.
    conn.out.clear();
    conn.lines.clear();
    conn.read_shut = true;
    conn.closing = true;
    break;
  }
}

void FrontendServer::Settle(Conn& conn) {
  if (conn.dead) return;
  if (!conn.executing && conn.lines.empty()) {
    if (!conn.kill_error.empty()) {
      std::string verdict = std::move(conn.kill_error);
      conn.kill_error.clear();
      conn.closing = true;
      QueueWrite(conn, std::move(verdict));
    }
    if (conn.read_eof) conn.closing = true;
  }
  if (conn.closing && !conn.executing && conn.lines.empty() &&
      conn.out.empty()) {
    CloseConn(conn);
    return;
  }
  UpdateInterest(conn);
}

void FrontendServer::UpdateInterest(Conn& conn) {
  if (conn.fd < 0 || conn.dead) return;
  uint32_t want = 0;
  if (!conn.read_shut && conn.lines.size() < options_.max_pipelined) {
    want |= EPOLLIN;
  }
  if (!conn.out.empty()) want |= EPOLLOUT;
  if (want == conn.interest) return;
  epoll_event ev{};
  ev.events = want;
  ev.data.u64 = conn.id;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, conn.fd, &ev);
  conn.interest = want;
}

void FrontendServer::CloseConn(Conn& conn) {
  if (conn.fd >= 0) {
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, conn.fd, nullptr);
    ::close(conn.fd);
    conn.fd = -1;
  }
  if (conn.executing) {
    // The in-flight task references conn's session; linger until its
    // completion arrives (DrainCompletions destroys dead connections).
    conn.dead = true;
    return;
  }
  conns_.erase(conn.id);
}

}  // namespace aqv
