#include "frontend/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <utility>

#include "containment/oracle.h"

namespace aqv {

namespace {

Status SocketError(const std::string& what) {
  return Status::Internal(what + ": " + std::strerror(errno));
}

/// Loops ::send until the whole string is on the wire (or the peer is
/// gone). MSG_NOSIGNAL: a vanished client must not SIGPIPE the server.
bool SendAll(int fd, const std::string& data) {
  size_t sent = 0;
  while (sent < data.size()) {
    ssize_t n =
        ::send(fd, data.data() + sent, data.size() - sent, MSG_NOSIGNAL);
    if (n <= 0) return false;
    sent += static_cast<size_t>(n);
  }
  return true;
}

}  // namespace

FrontendServer::FrontendServer(ServerOptions options)
    : options_(std::move(options)) {
  // Oracles are per-connection (catalog lifetimes; see the header), so
  // the shared service must respect each request's own oracle pointer.
  options_.service.share_oracle = false;
  service_ = std::make_unique<RewriteService>(options_.service);
}

FrontendServer::~FrontendServer() { Stop(); }

Status FrontendServer::Start() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (started_) return Status::Internal("server already started");
    started_ = true;
  }
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) return SocketError("socket");
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(options_.port));
  if (::inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument("bad host address '" + options_.host +
                                   "'");
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
      0) {
    return SocketError("bind to " + options_.host + ":" +
                       std::to_string(options_.port));
  }
  if (::listen(listen_fd_, 64) < 0) return SocketError("listen");
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len) <
      0) {
    return SocketError("getsockname");
  }
  port_ = ntohs(bound.sin_port);
  accept_thread_ = std::thread(&FrontendServer::AcceptLoop, this);
  return Status::OK();
}

void FrontendServer::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!started_ || stopping_) return;
    stopping_ = true;
  }
  // Wake the accept loop; it exits on the failed accept.
  ::shutdown(listen_fd_, SHUT_RDWR);
  if (accept_thread_.joinable()) accept_thread_.join();
  {
    // Wake every handler blocked in recv. Handlers erase themselves from
    // live_fds_ before closing, so each fd here is still open.
    std::lock_guard<std::mutex> lock(mu_);
    for (int fd : live_fds_) ::shutdown(fd, SHUT_RDWR);
  }
  // The accept thread is joined, so conn_threads_ no longer grows.
  for (std::thread& t : conn_threads_) {
    if (t.joinable()) t.join();
  }
  ::close(listen_fd_);
  listen_fd_ = -1;
}

void FrontendServer::AcceptLoop() {
  while (true) {
    int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // Stop() shut the listener down (or it died).
    }
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) {
      ::close(fd);
      return;
    }
    ReapFinishedLocked();
    if (static_cast<int>(live_fds_.size()) >= options_.max_connections) {
      SendAll(fd, "err ResourceExhausted: connection limit (" +
                      std::to_string(options_.max_connections) +
                      ") reached\n");
      ::close(fd);
      continue;
    }
    live_fds_.insert(fd);
    accepted_.fetch_add(1);
    conn_threads_.emplace_back(&FrontendServer::HandleConnection, this, fd);
  }
}

void FrontendServer::ReapFinishedLocked() {
  if (finished_ids_.empty()) return;
  for (auto it = conn_threads_.begin(); it != conn_threads_.end();) {
    auto fid =
        std::find(finished_ids_.begin(), finished_ids_.end(), it->get_id());
    if (fid != finished_ids_.end()) {
      it->join();  // already exited; returns immediately
      finished_ids_.erase(fid);
      it = conn_threads_.erase(it);
    } else {
      ++it;
    }
  }
}

std::string FrontendServer::RespondTo(Session& session,
                                      const std::string& line, bool* quit) {
  // STATS: the wire-level alias surfacing the shared service's stats.
  CommandResult result =
      session.Execute(line == "STATS" ? "show stats" : line);
  std::string response = result.output;
  if (!response.empty()) response += '\n';
  if (result.quit) {
    *quit = true;
    response += "ok\n";
  } else if (result.status.ok()) {
    response += "ok\n";
  } else {
    response += "err " + result.status.ToString() + "\n";
  }
  return response;
}

void FrontendServer::HandleConnection(int fd) {
  // Connection-lifetime oracle, declared before the Session so every
  // catalog whose queries pass through it (including `reset`-retired
  // ones, which the Session keeps alive) outlives it.
  ContainmentOracle oracle(options_.service.oracle_max_entries,
                           options_.service.oracle_shards);
  SessionOptions session_options = options_.session;
  session_options.service = service_.get();
  session_options.enable_load = false;
  session_options.engine.oracle = &oracle;
  Session session(session_options);

  const std::string line_cap_error =
      "err InvalidArgument: line exceeds " +
      std::to_string(options_.max_line_bytes) + " bytes\n";
  std::string carry;
  char buf[4096];
  bool open = true;
  while (open) {
    ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;
    carry.append(buf, static_cast<size_t>(n));
    size_t nl;
    while (open && (nl = carry.find('\n')) != std::string::npos) {
      if (nl > options_.max_line_bytes) {
        SendAll(fd, line_cap_error);
        open = false;
        break;
      }
      std::string line = carry.substr(0, nl);
      carry.erase(0, nl + 1);
      if (!line.empty() && line.back() == '\r') line.pop_back();
      bool quit = false;
      if (!SendAll(fd, RespondTo(session, line, &quit))) open = false;
      if (quit) open = false;
    }
    if (open && carry.size() > options_.max_line_bytes) {
      SendAll(fd, line_cap_error);
      open = false;
    }
  }
  ::shutdown(fd, SHUT_RDWR);
  {
    std::lock_guard<std::mutex> lock(mu_);
    live_fds_.erase(fd);
  }
  ::close(fd);
  std::lock_guard<std::mutex> lock(mu_);
  finished_ids_.push_back(std::this_thread::get_id());
}

}  // namespace aqv
