/// \file
/// Workload → frontend bridge: renders a packaged LAV scenario
/// (workload/scenarios.h) as an aqvsh/Session command script — one `view`
/// command per view rule, one `fact` per base tuple, then the scenario
/// query. Replaying the script through a Session round-trips the whole
/// problem through the surface syntax (docs/QUERY_LANGUAGE.md), which is
/// how the frontend tests and bench_f10_frontend drive realistic session
/// traffic instead of hand-typed toys.

#ifndef AQV_FRONTEND_REPLAY_H_
#define AQV_FRONTEND_REPLAY_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/status.h"
#include "workload/scenarios.h"

namespace aqv {

/// \brief Renders `scenario` as a command script: `view` lines in view-set
/// order, `fact` lines per base relation in PredId order (row order as
/// stored), and a final `query` line. kInvalidArgument when a base value
/// cannot be written in the surface syntax (a Skolem, or a symbolic
/// constant that does not lex as a constant token).
[[nodiscard]] Result<std::string> ScriptFromScenario(const Scenario& scenario);

/// Knobs of the soak-script renderer (SoakScriptFromScenario). All
/// randomness (churn membership, probe engine rotation) comes from `seed`
/// — same scenario + same options, byte-identical script.
struct SoakScriptOptions {
  uint64_t seed = 1;
  /// Engines the probes rotate through (`rewrite with <e>`, and the
  /// engine of `answer route complete`).
  std::vector<std::string> engines = {"minicon", "lmss"};
  /// Answer routes probed after every phase, in this order.
  std::vector<std::string> routes = {"direct", "complete", "inverse-rules",
                                     "cost"};
  /// One `rewrite with <engine>` probe per phase.
  bool include_rewrites = true;
  /// View-churn cycles. Each cycle adds held-back views ("add" churn)
  /// and then retires a fraction of the active set ("retire" churn —
  /// rendered as `reset` + a rebuild of the survivors, the only retire
  /// mechanism the command language has). 0 = a single static phase.
  int churn_cycles = 0;
  /// Fraction of views withheld from phase 0 and added across cycles.
  double holdback_fraction = 0.2;
  /// Fraction of the active views retired per cycle.
  double retire_fraction = 0.25;
  /// When non-empty: the script persists itself through this database
  /// directory — `save` after every (re)build, `open` after every add
  /// churn (a recovery probe: the probes that follow interrogate state
  /// reloaded from disk + journal replay instead of the live session).
  /// Must not contain whitespace (the save/open command syntax).
  std::string persist_dir;
};

/// A rendered soak script plus the ground-truth expectations tests and the
/// soak driver assert against.
struct SoakScript {
  /// The command text, ending in `quit`.
  std::string text;
  /// Probe groups emitted (initial phase + churn add/retire phases).
  int phases = 0;
  /// Views live in the session after the final phase.
  int final_views = 0;
  /// Total `answer` / `rewrite` probe commands in the script.
  int answer_probes = 0;
  int rewrite_probes = 0;
  /// Total `save` / `open` commands (0 unless persist_dir is set).
  int saves = 0;
  int opens = 0;
};

/// \brief Renders `scenario` as a probed, churning session script: each
/// phase (re)defines part of the problem and then interrogates it with
/// `rewrite`/`answer` probes across engines and routes — the replayable
/// unit of the differential soak harness (frontend/differential.h). The
/// script is deterministic in (scenario, options) and never emits
/// non-replayable commands (`load`, `show stats`, `STATS`).
[[nodiscard]] Result<SoakScript> SoakScriptFromScenario(const Scenario& scenario,
                                          const SoakScriptOptions& options);

}  // namespace aqv

#endif  // AQV_FRONTEND_REPLAY_H_
