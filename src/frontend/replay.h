/// \file
/// Workload → frontend bridge: renders a packaged LAV scenario
/// (workload/scenarios.h) as an aqvsh/Session command script — one `view`
/// command per view rule, one `fact` per base tuple, then the scenario
/// query. Replaying the script through a Session round-trips the whole
/// problem through the surface syntax (docs/QUERY_LANGUAGE.md), which is
/// how the frontend tests and bench_f10_frontend drive realistic session
/// traffic instead of hand-typed toys.

#ifndef AQV_FRONTEND_REPLAY_H_
#define AQV_FRONTEND_REPLAY_H_

#include <string>

#include "util/status.h"
#include "workload/scenarios.h"

namespace aqv {

/// \brief Renders `scenario` as a command script: `view` lines in view-set
/// order, `fact` lines per base relation in PredId order (row order as
/// stored), and a final `query` line. kInvalidArgument when a base value
/// cannot be written in the surface syntax (a Skolem, or a symbolic
/// constant that does not lex as a constant token).
Result<std::string> ScriptFromScenario(const Scenario& scenario);

}  // namespace aqv

#endif  // AQV_FRONTEND_REPLAY_H_
