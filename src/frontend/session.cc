#include "frontend/session.h"

#include <cctype>
#include <cstdio>
#include <fstream>
#include <iterator>
#include <utility>

#include "cq/parser.h"
#include "eval/materialize.h"
#include "eval/relation.h"
#include "eval/value.h"

namespace aqv {

namespace {

std::string Trim(std::string_view s) {
  size_t b = s.find_first_not_of(" \t\r\n");
  if (b == std::string_view::npos) return "";
  size_t e = s.find_last_not_of(" \t\r\n");
  return std::string(s.substr(b, e - b + 1));
}

std::vector<std::string> SplitWords(const std::string& s) {
  std::vector<std::string> out;
  size_t i = 0;
  while (i < s.size()) {
    while (i < s.size() && std::isspace(static_cast<unsigned char>(s[i]))) ++i;
    size_t b = i;
    while (i < s.size() && !std::isspace(static_cast<unsigned char>(s[i]))) ++i;
    if (i > b) out.push_back(s.substr(b, i - b));
  }
  return out;
}

std::vector<std::string> SplitLines(std::string_view text) {
  std::vector<std::string> lines;
  size_t start = 0;
  while (start <= text.size()) {
    size_t nl = text.find('\n', start);
    if (nl == std::string_view::npos) {
      lines.emplace_back(text.substr(start));
      break;
    }
    lines.emplace_back(text.substr(start, nl - start));
    start = nl + 1;
  }
  return lines;
}

void AppendLine(std::string* out, std::string_view line) {
  if (!out->empty()) *out += '\n';
  out->append(line);
}

std::string CountNoun(size_t n, const char* singular, const char* plural) {
  return std::to_string(n) + " " + (n == 1 ? singular : plural);
}

std::string FormatCost(double cost) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6g", cost);
  return buf;
}

/// Renders a relation's rows sorted and deduplicated, one "(v1, v2)" line
/// each — the transcript-stable answer listing.
std::string SortedRows(const Relation& rel, const Catalog& catalog) {
  Relation sorted = rel;
  sorted.SortDedup();
  std::string text = sorted.ToString(catalog);
  while (!text.empty() && text.back() == '\n') text.pop_back();
  return text;
}

CommandResult Fail(Status status) {
  CommandResult r;
  r.status = std::move(status);
  return r;
}

/// Every engine knob that can change a rewrite's output, rendered as a
/// deterministic comma-joined number list — the options component of the
/// plan-cache key. The oracle pointer is deliberately excluded: the oracle
/// is a pure cache, so which one (if any) is attached never changes the
/// payload.
std::string EngineOptionsDigest(const EngineOptions& o) {
  std::string d;
  auto add = [&](auto v) {
    d += std::to_string(v);
    d += ',';
  };
  add(o.containment.node_budget);
  add(o.containment.linearization_cap);
  add(o.lmss.candidates.node_budget);
  add(o.lmss.candidates.max_candidates);
  add(o.lmss.candidates.max_homs_per_view);
  add(o.lmss.max_rewriting_atoms);
  add(o.lmss.max_rewritings);
  add(o.lmss.max_subsets);
  add(o.lmss.extend_beyond_cover);
  add(o.lmss.allow_base_atoms);
  add(o.lmss.allow_trivial);
  add(o.bucket.max_combinations);
  add(o.bucket.require_equivalent);
  add(o.bucket.prune_subsumed);
  add(o.bucket.max_enrichments_per_combination);
  add(o.minicon.max_combinations);
  add(o.minicon.verify_candidates);
  add(o.minicon.prune_subsumed);
  return d;
}

CommandResult Say(std::string output) {
  CommandResult r;
  r.output = std::move(output);
  return r;
}

}  // namespace

std::string TranscriptLines(const CommandResult& result) {
  std::string out = result.output;
  if (!result.status.ok()) {
    AppendLine(&out, "error: " + result.status.ToString());
  }
  return out;
}

Session::Session(SessionOptions options)
    : options_(std::move(options)),
      catalog_(std::make_unique<Catalog>()),
      base_(catalog_.get()) {}

CommandResult Session::Execute(std::string_view line) {
  std::string trimmed = Trim(line);
  if (trimmed.empty() || trimmed[0] == '%' || trimmed[0] == '#') return {};
  ++commands_;
  size_t split = trimmed.find_first_of(" \t");
  std::string cmd = trimmed.substr(0, split);
  std::string rest =
      split == std::string::npos ? "" : Trim(trimmed.substr(split));
  if (cmd == "quit" || cmd == "exit") {
    CommandResult r;
    r.quit = true;
    return r;
  }
  if (cmd == "help") return CmdHelp();
  if (cmd == "view") return Journaled(trimmed, CmdView(rest));
  if (cmd == "query") return Journaled(trimmed, CmdQuery(rest));
  if (cmd == "fact") return Journaled(trimmed, CmdFact(rest));
  if (cmd == "load") return CmdLoad(rest);
  if (cmd == "save") return CmdSave(rest);
  if (cmd == "open") return CmdOpen(rest);
  if (cmd == "show") return CmdShow(rest);
  if (cmd == "rewrite") return CmdRewrite(rest);
  if (cmd == "answer") return CmdAnswer(rest);
  if (cmd == "explain") return CmdExplain();
  if (cmd == "reset") return CmdReset();
  return Fail(Status::InvalidArgument("unknown command '" + cmd +
                                      "' (try 'help')"));
}

std::vector<CommandResult> Session::ExecuteScript(std::string_view text) {
  std::vector<CommandResult> results;
  for (const std::string& line : SplitLines(text)) {
    results.push_back(Execute(line));
    if (results.back().quit) break;
  }
  return results;
}

CommandResult Session::CmdHelp() {
  return Say(
      "commands:\n"
      "  view <rule(s)>    add view definition(s), e.g. view v(X) :- e(X, "
      "Y).\n"
      "  query <rule(s)>   set the query (several rules = a union query)\n"
      "  fact <atom>.      add a ground fact, e.g. fact e(1, 2).\n"
      "  load <path>       run a script of commands from a file\n"
      "  show views|facts|engines|stats\n"
      "  rewrite [with <engine>]\n"
      "  answer [route <route>] [with <engine>]\n"
      "  explain           cost-rank every equivalent plan\n"
      "  save <dir>        snapshot the session into a database directory\n"
      "  open <dir>        load a database directory (snapshot + journal)\n"
      "  reset             drop views, facts, and the query (detaches the "
      "store)\n"
      "  help              this text\n"
      "  quit              end the session\n"
      "engines: lmss, bucket, minicon, ucq\n"
      "routes: direct, complete, inverse-rules, cost");
}

/// Snapshot of every predicate's kind, for rolling back the intensional
/// marks ParseProgram applies to rule heads when a command fails partway:
/// committed commands are all-or-nothing, and a failed one must not
/// strand a predicate as intensional (which would block later `fact`s).
class Session::KindSnapshot {
 public:
  explicit KindSnapshot(Catalog* catalog) : catalog_(catalog) {
    kinds_.reserve(catalog->num_predicates());
    for (PredId p = 0; p < catalog->num_predicates(); ++p) {
      kinds_.push_back(catalog->pred(p).kind);
    }
  }

  void Restore() {
    for (PredId p = 0; p < static_cast<PredId>(kinds_.size()); ++p) {
      catalog_->SetPredKind(p, kinds_[p]);
    }
    // Predicates the failed command introduced: body symbols are already
    // extensional; head symbols must not stay intensional.
    for (PredId p = static_cast<PredId>(kinds_.size());
         p < catalog_->num_predicates(); ++p) {
      catalog_->SetPredKind(p, PredKind::kExtensional);
    }
  }

 private:
  Catalog* catalog_;
  std::vector<PredKind> kinds_;
};

CommandResult Session::CmdView(const std::string& rest) {
  KindSnapshot snapshot(catalog_.get());
  auto rules = ParseProgram(rest, catalog_.get());
  if (!rules.ok()) {
    snapshot.Restore();
    return Fail(rules.status());
  }
  if (rules->empty()) {
    return Fail(Status::InvalidArgument(
        "usage: view <rule>, e.g. view v(X) :- e(X, Y)."));
  }
  // Pre-validate every rule so the command commits all-or-nothing (the
  // checks below are exactly ViewSet::AddRule's failure modes plus the
  // facts guard; parsing already Validate()d each rule).
  for (const Query& rule : *rules) {
    PredId pred = rule.head().pred;
    const std::string& name = catalog_->pred(pred).name;
    const Relation* facts = base_.Find(pred);
    if (facts != nullptr && !facts->empty()) {
      snapshot.Restore();
      return Fail(Status::InvalidArgument(
          "predicate '" + name +
          "' already has facts; cannot redefine it as a view"));
    }
    for (const Atom& a : rule.body()) {
      if (a.pred == pred) {
        snapshot.Restore();
        return Fail(Status::InvalidArgument("view '" + name +
                                            "' refers to itself"));
      }
    }
  }
  std::string out;
  for (Query& rule : *rules) {
    PredId pred = rule.head().pred;
    std::string name = catalog_->pred(pred).name;
    Status st = views_.AddRule(std::move(rule));
    if (!st.ok()) {
      snapshot.Restore();
      return Fail(std::move(st));
    }
    int rules_for_pred = 0;
    for (const View& v : views_.views()) {
      if (v.pred == pred) ++rules_for_pred;
    }
    if (rules_for_pred == 1) {
      AppendLine(&out, "added view " + name);
    } else {
      AppendLine(&out, "added rule " + std::to_string(rules_for_pred) +
                           " for view " + name + " (union source)");
    }
  }
  return Say(std::move(out));
}

CommandResult Session::CmdQuery(const std::string& rest) {
  KindSnapshot snapshot(catalog_.get());
  auto rules = ParseProgram(rest, catalog_.get());
  if (!rules.ok()) {
    snapshot.Restore();
    return Fail(rules.status());
  }
  if (rules->empty()) {
    return Fail(Status::InvalidArgument(
        "usage: query <rule>, e.g. query q(X) :- e(X, Y)."));
  }
  const Atom& head = rules->front().head();
  for (const Query& d : *rules) {
    if (d.head().pred != head.pred || d.head().arity() != head.arity()) {
      snapshot.Restore();
      return Fail(Status::InvalidArgument(
          "query disjuncts disagree on the head predicate"));
    }
  }
  const Relation* head_facts = base_.Find(head.pred);
  if (head_facts != nullptr && !head_facts->empty()) {
    snapshot.Restore();
    return Fail(Status::InvalidArgument(
        "predicate '" + catalog_->pred(head.pred).name +
        "' already has facts; cannot use it as the query head"));
  }
  UnionQuery q;
  q.disjuncts = std::move(*rules);
  std::string out;
  if (q.size() == 1) {
    out = "query set: " + q.disjuncts[0].ToString();
  } else {
    out = "query set (" + std::to_string(q.size()) + " disjuncts):";
    for (const Query& d : q.disjuncts) AppendLine(&out, "  " + d.ToString());
  }
  query_ = std::move(q);
  return Say(std::move(out));
}

CommandResult Session::CmdFact(const std::string& rest) {
  auto atom = ParseFact(rest, catalog_.get());
  if (!atom.ok()) return Fail(atom.status());
  std::vector<Value> row;
  row.reserve(atom->args.size());
  for (const Term& t : atom->args) {
    row.push_back(ValueOfConstant(*catalog_, t.constant()));
  }
  base_.Add(atom->pred, row);
  return Say("ok (" + CountNoun(base_.TotalTuples(), "fact", "facts") +
             " total)");
}

CommandResult Session::CmdLoad(const std::string& rest) {
  if (!options_.enable_load) {
    return Fail(Status::Unimplemented("load is disabled in this session"));
  }
  if (rest.empty()) {
    return Fail(Status::InvalidArgument("usage: load <path>"));
  }
  if (load_depth_ >= options_.max_load_depth) {
    return Fail(Status::ResourceExhausted(
        "load depth cap (" + std::to_string(options_.max_load_depth) +
        ") reached"));
  }
  std::ifstream in(rest);
  if (!in) return Fail(Status::NotFound("cannot open '" + rest + "'"));
  std::string content((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
  uint64_t commands_before = commands_;
  ++load_depth_;
  std::vector<CommandResult> results = ExecuteScript(content);
  --load_depth_;
  std::string out;
  size_t errors = 0;
  bool quit = false;
  for (size_t i = 0; i < results.size(); ++i) {
    const CommandResult& r = results[i];
    if (!r.output.empty()) AppendLine(&out, r.output);
    if (!r.status.ok()) {
      ++errors;
      AppendLine(&out, rest + ":" + std::to_string(i + 1) +
                           ": error: " + r.status.ToString());
    }
    if (r.quit) quit = true;
  }
  uint64_t executed = commands_ - commands_before;
  AppendLine(&out, "loaded " + rest + " (" +
                       CountNoun(executed, "command", "commands") + ", " +
                       CountNoun(errors, "error", "errors") + ")");
  CommandResult result = Say(std::move(out));
  result.quit = quit;
  if (errors > 0) {
    result.status = Status::InvalidArgument(
        "script '" + rest + "' had " + CountNoun(errors, "error", "errors"));
  }
  return result;
}

CommandResult Session::CmdShow(const std::string& rest) {
  if (rest == "views") {
    if (views_.empty()) return Say("(none)");
    std::string out;
    for (const View& v : views_.views()) {
      AppendLine(&out, v.definition.ToString());
    }
    return Say(std::move(out));
  }
  if (rest == "facts") {
    std::string out;
    for (PredId p : base_.Predicates()) {
      const Relation* rel = base_.Find(p);
      if (rel == nullptr || rel->empty()) continue;
      AppendLine(&out, catalog_->pred(p).name + ": " +
                           CountNoun(rel->size(), "tuple", "tuples"));
    }
    if (out.empty()) return Say("(none)");
    return Say(std::move(out));
  }
  if (rest == "engines") {
    std::string out;
    for (const std::string& name : EngineNames()) {
      AppendLine(&out, name + (name == options_.default_engine
                                   ? " (default)"
                                   : ""));
    }
    return Say(std::move(out));
  }
  if (rest == "stats") {
    std::string out = "session: commands=" + std::to_string(commands_) +
                      " views=" + std::to_string(views_.size()) +
                      " facts=" + std::to_string(base_.TotalTuples()) +
                      " query=" +
                      (query_.has_value()
                           ? std::to_string(query_->size()) + " disjunct(s)"
                           : "(none)");
    AppendLine(&out,
               "last rewrite: candidates=" +
                   std::to_string(last_rewrite_.num_candidates) +
                   " combinations=" +
                   std::to_string(last_rewrite_.combinations) +
                   " checks=" + std::to_string(last_rewrite_.checks));
    const ContainmentOracle* oracle = options_.engine.oracle;
    if (oracle == nullptr && options_.service != nullptr) {
      oracle = &options_.service->oracle();
    }
    if (oracle != nullptr) {
      OracleStats os = oracle->stats();
      char rate[16];
      std::snprintf(rate, sizeof(rate), "%.2f", os.hit_rate());
      AppendLine(&out, "oracle: hits=" + std::to_string(os.hits) +
                           " misses=" + std::to_string(os.misses) +
                           " inserts=" + std::to_string(os.inserts) +
                           " hit_rate=" + rate);
    }
    if (options_.plan_cache != nullptr) {
      PlanCacheStats ps = options_.plan_cache->stats();
      char rate[16];
      std::snprintf(rate, sizeof(rate), "%.2f", ps.hit_rate());
      AppendLine(&out, "plan_cache: hits=" + std::to_string(ps.hits) +
                           " misses=" + std::to_string(ps.misses) +
                           " inserts=" + std::to_string(ps.inserts) +
                           " size=" +
                           std::to_string(options_.plan_cache->size()) +
                           " hit_rate=" + rate);
    }
    if (options_.service != nullptr) {
      ServiceStats ss = options_.service->lifetime_stats();
      AppendLine(&out, "service: requests=" + std::to_string(ss.requests) +
                           " ok=" + std::to_string(ss.ok) +
                           " failed=" + std::to_string(ss.failed) +
                           " workers=" + std::to_string(ss.num_workers) +
                           " shards=" + std::to_string(ss.oracle_shards));
    }
    return Say(std::move(out));
  }
  return Fail(Status::InvalidArgument("unknown show target '" + rest +
                                      "' (views|facts|engines|stats)"));
}

Status Session::Ready(bool needs_views) const {
  if (!query_.has_value()) {
    return Status::InvalidArgument("set a query first");
  }
  if (needs_views && views_.empty()) {
    return Status::InvalidArgument("add at least one view first");
  }
  return Status::OK();
}

Result<RewriteResponse> Session::RunRewrite(const std::string& engine_name) {
  RewriteRequest request;
  request.query = *query_;
  request.views = &views_;
  request.options = options_.engine;
  if (options_.service != nullptr && !options_.dispatch_inline) {
    ServiceRequest job;
    job.engine = engine_name;
    job.request = std::move(request);
    AQV_ASSIGN_OR_RETURN(uint64_t ticket,
                         options_.service->Submit(std::move(job)));
    AQV_ASSIGN_OR_RETURN(ServiceResponse response,
                         options_.service->Wait(ticket));
    if (!response.status.ok()) return response.status;
    return std::move(response.response);
  }
  return RunEngine(engine_name, request);
}

Result<AnswerResponse> Session::RunAnswer(AnswerRoute route,
                                          const std::string& engine_name) {
  AnswerRequest request;
  request.query = *query_;
  request.views = &views_;
  request.base = &base_;
  request.engine = engine_name;
  request.route = route;
  request.options = options_.engine;
  request.eval = options_.eval;
  request.planner = options_.planner;
  if (options_.service != nullptr && !options_.dispatch_inline) {
    AQV_ASSIGN_OR_RETURN(uint64_t ticket,
                         options_.service->SubmitAnswer(std::move(request)));
    AQV_ASSIGN_OR_RETURN(AnswerServiceResponse response,
                         options_.service->WaitAnswer(ticket));
    if (!response.status.ok()) return response.status;
    return std::move(response.response);
  }
  return AnswerQuery(request);
}

CommandResult Session::CmdRewrite(const std::string& rest) {
  std::vector<std::string> words = SplitWords(rest);
  std::string engine = options_.default_engine;
  if (words.size() == 2 && words[0] == "with") {
    engine = words[1];
  } else if (!words.empty()) {
    return Fail(Status::InvalidArgument("usage: rewrite [with <engine>]"));
  }
  Status ready = Ready(/*needs_views=*/true);
  if (!ready.ok()) return Fail(std::move(ready));
  // Shared plan cache: the key is the complete problem statement (engine,
  // options digest, rendered query and views), so a hit is byte-identical
  // to what recomputation would print and schema mutations miss naturally.
  std::string cache_key;
  if (options_.plan_cache != nullptr) {
    std::string query_text;
    for (const Query& d : query_->disjuncts) {
      AppendLine(&query_text, d.ToString());
    }
    std::string views_text;
    for (const View& v : views_.views()) {
      AppendLine(&views_text, v.definition.ToString());
    }
    cache_key = RewritePlanCache::MakeKey(
        engine, EngineOptionsDigest(options_.engine), query_text, views_text);
    if (std::optional<RewritePlanCache::Plan> plan =
            options_.plan_cache->Lookup(cache_key)) {
      last_rewrite_ = plan->stats;
      return Say(std::move(plan->rendered));
    }
  }
  auto response = RunRewrite(engine);
  if (!response.ok()) return Fail(response.status());
  last_rewrite_ = response->stats;
  std::string out = "engine " + response->engine + ": equivalent=" +
                    (response->equivalent_exists ? "yes" : "no") +
                    ", rewritings=" +
                    std::to_string(response->rewritings.size());
  for (const Query& rw : response->rewritings.disjuncts) {
    AppendLine(&out, "  " + rw.ToString());
  }
  if (options_.plan_cache != nullptr) {
    options_.plan_cache->Insert(cache_key,
                                RewritePlanCache::Plan{out, last_rewrite_});
  }
  return Say(std::move(out));
}

CommandResult Session::CmdAnswer(const std::string& rest) {
  std::vector<std::string> words = SplitWords(rest);
  std::string engine = options_.default_engine;
  AnswerRoute route = options_.default_route;
  for (size_t i = 0; i < words.size(); i += 2) {
    if (i + 1 >= words.size()) {
      return Fail(Status::InvalidArgument(
          "usage: answer [route <route>] [with <engine>]"));
    }
    if (words[i] == "route") {
      auto parsed = AnswerRouteByName(words[i + 1]);
      if (!parsed.ok()) return Fail(parsed.status());
      route = *parsed;
    } else if (words[i] == "with") {
      engine = words[i + 1];
    } else {
      return Fail(Status::InvalidArgument(
          "usage: answer [route <route>] [with <engine>]"));
    }
  }
  Status ready = Ready(/*needs_views=*/route != AnswerRoute::kDirect);
  if (!ready.ok()) return Fail(std::move(ready));
  auto response = RunAnswer(route, engine);
  if (!response.ok()) return Fail(response.status());
  last_rewrite_ = response->stats.rewrite;
  std::string out = "route " + std::string(AnswerRouteName(response->route));
  if (!response->engine.empty()) {
    out += " (engine " + response->engine + ")";
  }
  out += ": " + CountNoun(response->result.size(), "answer", "answers") +
         (response->exact ? " (exact)" : " (certain)");
  std::string rows = SortedRows(response->result, *catalog_);
  if (!rows.empty()) AppendLine(&out, rows);
  return Say(std::move(out));
}

CommandResult Session::CmdExplain() {
  Status ready = Ready(/*needs_views=*/true);
  if (!ready.ok()) return Fail(std::move(ready));
  if (query_->size() != 1) {
    return Fail(Status::InvalidArgument(
        "explain expects a single-CQ query (unions have no cost plan)"));
  }
  auto extents = MaterializeViews(views_, base_, options_.eval);
  if (!extents.ok()) return Fail(extents.status());
  ExtentStats view_stats = ExtentStats::FromDatabase(*extents);
  ExtentStats base_stats = ExtentStats::FromDatabase(base_);
  PlannerOptions popts = options_.planner;
  popts.engine = options_.engine;
  auto plans = ChooseBestPlan(query_->disjuncts[0], views_, view_stats,
                              base_stats, popts);
  if (!plans.ok()) return Fail(plans.status());
  last_rewrite_ = plans->stats;
  if (plans->plans.empty() || plans->best < 0) {
    return Say("no executable plan");
  }
  std::string out =
      "plans (" + std::to_string(plans->plans.size()) + "):";
  for (size_t i = 0; i < plans->plans.size(); ++i) {
    const PlanChoice& p = plans->plans[i];
    AppendLine(&out, "  [" + std::to_string(i) + "] engine=" + p.engine +
                         " cost=" + FormatCost(p.estimated_cost) + " " +
                         (p.complete ? "complete" : "partial") + ": " +
                         p.rewriting.ToString());
  }
  AppendLine(&out, "chosen: [" + std::to_string(plans->best) + "] engine=" +
                       plans->plans[plans->best].engine);
  return Say(std::move(out));
}

CommandResult Session::CmdReset() {
  // Journal the reset before detaching, so recovery of the directory
  // replays it (the last record any journal can hold — nothing journals
  // after the detach below).
  Status journal = Status::OK();
  bool was_attached = store_ != nullptr;
  if (was_attached && !replaying_journal_) {
    journal = store_->Append("reset");
  }
  // The old catalog may die with the command: oracle entries are keyed by
  // catalog-independent global encodings (containment/oracle.h), so no
  // shared cache holds a pointer into it. Keep it alive only until base_
  // (which references it) is replaced below.
  std::unique_ptr<Catalog> old_catalog = std::move(catalog_);
  catalog_ = std::make_unique<Catalog>();
  views_ = ViewSet();
  base_ = Database(catalog_.get());
  old_catalog.reset();
  query_.reset();
  last_rewrite_ = RewriteStats{};
  if (was_attached && !replaying_journal_) {
    // Release every store resource: the journal descriptor and directory
    // lock close here; mmap'd extents unmapped when base_ was replaced
    // above. The catalog is retired (oracle contract) but holds no fds.
    store_.reset();
  }
  // One fixed payload whether or not a store detached: the differential
  // mirror (never attached) must byte-match a persisted server session.
  CommandResult result = Say("session reset");
  if (!journal.ok()) result.status = std::move(journal);
  return result;
}

CommandResult Session::Journaled(const std::string& line,
                                 CommandResult result) {
  if (result.ok() && store_ != nullptr && !replaying_journal_) {
    Status st = store_->Append(line);
    if (!st.ok()) result.status = std::move(st);
  }
  return result;
}

SnapshotInput Session::RenderSnapshot() const {
  SnapshotInput input;
  input.catalog = catalog_.get();
  input.base = &base_;
  for (const View& v : views_.views()) {
    input.view_rules.push_back(v.definition.ToString());
  }
  if (query_.has_value()) {
    for (const Query& d : query_->disjuncts) {
      input.query_rules.push_back(d.ToString());
    }
  }
  return input;
}

std::string Session::ProblemSummary() const {
  return CountNoun(static_cast<size_t>(views_.size()), "view", "views") +
         ", " + CountNoun(base_.TotalTuples(), "fact", "facts") + ", query " +
         (query_.has_value() ? "set" : "unset");
}

CommandResult Session::CmdSave(const std::string& rest) {
  if (!options_.enable_persist) {
    return Fail(Status::Unimplemented("save/open are disabled in this "
                                      "session"));
  }
  if (rest.empty() || rest.find_first_of(" \t") != std::string::npos) {
    return Fail(Status::InvalidArgument("usage: save <dir>"));
  }
  if (store_ == nullptr || store_->dir() != rest) {
    // Release any current attachment before locking the target: flock
    // treats two descriptors of one process as rivals, so a same-dir
    // re-attach must go through the existing store (the branch above).
    store_.reset();
    auto attached = SessionStore::Attach(rest, options_.storage);
    if (!attached.ok()) return Fail(attached.status());
    store_ = std::move(*attached);
  }
  Status st = store_->Snapshot(RenderSnapshot());
  if (!st.ok()) {
    // A failed snapshot never damages the previous commit, but this
    // session can no longer claim the directory reflects it — detach.
    store_.reset();
    return Fail(std::move(st));
  }
  return Say("saved: " + ProblemSummary());
}

CommandResult Session::CmdOpen(const std::string& rest) {
  if (!options_.enable_persist) {
    return Fail(Status::Unimplemented("save/open are disabled in this "
                                      "session"));
  }
  if (rest.empty() || rest.find_first_of(" \t") != std::string::npos) {
    return Fail(Status::InvalidArgument("usage: open <dir>"));
  }
  // Recover into locals first: a failed open must leave the session
  // exactly as it was.
  std::unique_ptr<SessionStore> incoming;
  RecoveredState state;
  if (store_ != nullptr && store_->dir() == rest) {
    // Re-opening the attached directory re-reads disk through the held
    // lock (no flock self-conflict, no fd churn).
    auto recovered = store_->Recover();
    if (!recovered.ok()) return Fail(recovered.status());
    state = std::move(*recovered);
  } else {
    auto attached = SessionStore::Attach(rest, options_.storage);
    if (!attached.ok()) return Fail(attached.status());
    auto recovered = (*attached)->Recover();
    if (!recovered.ok()) return Fail(recovered.status());
    incoming = std::move(*attached);
    state = std::move(*recovered);
  }
  // Stage the parsed problem against the recovered catalog before
  // touching session state.
  ViewSet views;
  for (const std::string& rule_text : state.view_rules) {
    auto rules = ParseProgram(rule_text, state.catalog.get());
    if (!rules.ok() || rules->size() != 1) {
      return Fail(Status::Internal("stored view rule does not parse: '" +
                                   rule_text + "'"));
    }
    Status st = views.AddRule(std::move(rules->front()));
    if (!st.ok()) return Fail(std::move(st));
  }
  std::optional<UnionQuery> query;
  if (!state.query_rules.empty()) {
    std::string joined;
    for (const std::string& rule_text : state.query_rules) {
      joined += rule_text + " ";
    }
    auto rules = ParseProgram(joined, state.catalog.get());
    if (!rules.ok()) {
      return Fail(Status::Internal("stored query does not parse: '" + joined +
                                   "'"));
    }
    UnionQuery q;
    q.disjuncts = std::move(*rules);
    query = std::move(q);
  }
  // Commit: adopt the recovered problem and replay the journal tail
  // through the normal dispatcher with re-journaling suppressed. The old
  // catalog dies here — shared caches key by global encodings, not
  // catalog pointers — but must outlive base_'s replacement below.
  if (incoming != nullptr) store_ = std::move(incoming);
  std::unique_ptr<Catalog> old_catalog = std::move(catalog_);
  catalog_ = std::move(state.catalog);
  views_ = std::move(views);
  base_ = std::move(state.base);
  query_ = std::move(query);
  last_rewrite_ = RewriteStats{};
  size_t replay_errors = 0;
  replaying_journal_ = true;
  for (const std::string& command : state.journal_commands) {
    if (!Execute(command).ok()) ++replay_errors;
  }
  replaying_journal_ = false;
  CommandResult result =
      Say("opened: " + ProblemSummary() + " (journal: " +
          CountNoun(state.journal_commands.size(), "command", "commands") +
          ")");
  if (replay_errors > 0) {
    result.status = Status::Internal(
        "journal replay had " + CountNoun(replay_errors, "error", "errors"));
  }
  return result;
}

}  // namespace aqv
