#include "frontend/differential.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <cstring>
#include <set>

#include "answering/answering.h"
#include "eval/relation.h"

namespace aqv {

namespace {

/// First whitespace-delimited token of `line` after leading blanks.
std::string_view FirstWord(std::string_view line) {
  size_t b = line.find_first_not_of(" \t");
  if (b == std::string_view::npos) return {};
  size_t e = line.find_first_of(" \t", b);
  return line.substr(b, e == std::string_view::npos ? line.size() - b : e - b);
}

std::string_view SecondWord(std::string_view line) {
  std::string_view first = FirstWord(line);
  if (first.empty()) return {};
  size_t off = static_cast<size_t>(first.data() - line.data()) + first.size();
  return FirstWord(line.substr(off));
}

/// The mirror's own ground truth: the direct route over the mirror's
/// current state, rendered exactly like the session renders answer rows
/// (sorted + deduplicated).
Result<std::vector<std::string>> DirectRows(const Session& session) {
  AnswerRequest request;
  request.query = *session.query();
  request.views = &session.views();
  request.base = &session.base();
  request.route = AnswerRoute::kDirect;
  request.options = session.options().engine;
  request.eval = session.options().eval;
  AQV_ASSIGN_OR_RETURN(AnswerResponse direct, AnswerQuery(request));
  Relation sorted = direct.result;
  sorted.SortDedup();
  return SplitScriptLines(sorted.ToString(session.catalog()));
}

std::string JoinLines(const std::vector<std::string>& lines) {
  std::string out;
  for (const std::string& line : lines) {
    out += line;
    out += '\n';
  }
  return out;
}

}  // namespace

std::string Divergence::ToString() const {
  return "cmd #" + std::to_string(command_index) + " `" + command +
         "`: " + kind;
}

std::string RenderWireResponse(const CommandResult& result) {
  std::string response = result.output;
  if (!response.empty()) response += '\n';
  if (result.status.ok()) {
    response += "ok\n";
  } else {
    response += "err " + result.status.ToString() + "\n";
  }
  return response;
}

std::vector<std::string> SplitScriptLines(const std::string& text) {
  std::vector<std::string> lines;
  size_t start = 0;
  while (start < text.size()) {
    size_t nl = text.find('\n', start);
    if (nl == std::string::npos) {
      lines.push_back(text.substr(start));
      break;
    }
    lines.push_back(text.substr(start, nl - start));
    start = nl + 1;
  }
  return lines;
}

Result<ParsedAnswerPayload> ParseAnswerPayload(const std::string& payload) {
  std::vector<std::string> lines = SplitScriptLines(payload);
  if (lines.empty()) {
    return Status::InvalidArgument("answer payload is empty");
  }
  const std::string& header = lines[0];
  ParsedAnswerPayload parsed;
  size_t pos = 0;
  auto expect = [&](std::string_view token) -> bool {
    if (header.compare(pos, token.size(), token) != 0) return false;
    pos += token.size();
    return true;
  };
  if (!expect("route ")) {
    return Status::InvalidArgument("answer header does not start with 'route ': '" +
                                   header + "'");
  }
  size_t route_end = header.find_first_of(" :", pos);
  if (route_end == std::string::npos) {
    return Status::InvalidArgument("answer header missing ':': '" + header + "'");
  }
  parsed.route = header.substr(pos, route_end - pos);
  pos = route_end;
  if (expect(" (engine ")) {
    size_t close = header.find(')', pos);
    if (close == std::string::npos) {
      return Status::InvalidArgument("unterminated engine echo: '" + header + "'");
    }
    parsed.engine = header.substr(pos, close - pos);
    pos = close + 1;
  }
  if (!expect(": ")) {
    return Status::InvalidArgument("answer header missing ': ': '" + header + "'");
  }
  size_t digits = pos;
  while (pos < header.size() &&
         std::isdigit(static_cast<unsigned char>(header[pos]))) {
    ++pos;
  }
  if (pos == digits) {
    return Status::InvalidArgument("answer header missing count: '" + header + "'");
  }
  parsed.count = std::stoi(header.substr(digits, pos - digits));
  if (!expect(parsed.count == 1 ? " answer" : " answers")) {
    return Status::InvalidArgument("answer header count noun mismatch: '" +
                                   header + "'");
  }
  if (expect(" (exact)")) {
    parsed.exact = true;
  } else if (expect(" (certain)")) {
    parsed.exact = false;
  } else {
    return Status::InvalidArgument("answer header missing exactness tag: '" +
                                   header + "'");
  }
  if (pos != header.size()) {
    return Status::InvalidArgument("trailing junk in answer header: '" + header +
                                   "'");
  }
  for (size_t i = 1; i < lines.size(); ++i) {
    // Row lines: "(v1, v2)" tuples; "{()}"/"{}" for nullary heads.
    if (lines[i].empty() || (lines[i][0] != '(' && lines[i][0] != '{')) {
      return Status::InvalidArgument("answer row does not look like a tuple: '" +
                                     lines[i] + "'");
    }
    parsed.rows.push_back(lines[i]);
  }
  return parsed;
}

MirrorChecker::MirrorChecker(SessionOptions options)
    : oracle_(/*max_entries=*/1 << 20, /*num_shards=*/1),
      session_([this, &options] {
        // The differential point: inline execution against the server's
        // service-backed sessions, one shard against its sharded oracle.
        options.service = nullptr;
        options.enable_load = false;
        options.engine.oracle = &oracle_;
        return Session(std::move(options));
      }()) {}

bool MirrorChecker::IsCheckable(std::string_view command) {
  std::string_view first = FirstWord(command);
  if (first.empty() || first[0] == '%' || first[0] == '#') return false;
  if (command == "STATS" || first == "load") return false;
  if (first == "save" || first == "open") return false;
  if (first == "auth") return false;  // server-boundary, no mirror analogue
  if (first == "show" && SecondWord(command) == "stats") return false;
  return true;
}

std::optional<Divergence> MirrorChecker::Check(const std::string& command,
                                               const std::string& raw_response) {
  std::string_view first_word = FirstWord(command);
  if (first_word == "auth") {
    // Authentication is handled at the server boundary, before any
    // session sees the line; the mirror session must not execute it (it
    // would count a command the server session never saw).
    ++index_;
    return std::nullopt;
  }
  if (first_word == "save" || first_word == "open") {
    // The mirror never touches disk. Skipping save/open entirely keeps it
    // in lock-step anyway: mutations are journaled as they run, so a
    // server-side `open` reloads exactly the state both sides already
    // hold — and every answer byte-compare after this point doubles as a
    // persistence round-trip check (recovered state vs never-persisted
    // mirror state).
    ++index_;
    return std::nullopt;
  }
  CommandResult mirror =
      session_.Execute(command == "STATS" ? "show stats" : command);
  int index = index_++;
  if (!IsCheckable(command)) return std::nullopt;

  auto diverge = [&](std::string kind, std::string expected,
                     std::string actual) {
    Divergence d;
    d.command_index = index;
    d.command = command;
    d.kind = std::move(kind);
    d.expected = std::move(expected);
    d.actual = std::move(actual);
    return d;
  };

  std::string expected = RenderWireResponse(mirror);
  if (expected != raw_response) {
    return diverge("wire-mismatch", expected, raw_response);
  }

  std::string_view first = FirstWord(command);
  if (first == "rewrite" && mirror.ok()) ++rewrites_checked_;
  if (first != "answer" || !mirror.ok()) return std::nullopt;

  ++answers_checked_;
  auto parsed = ParseAnswerPayload(mirror.output);
  if (!parsed.ok()) {
    return diverge("malformed-answer", "transcript-grammar answer payload",
                   parsed.status().ToString() + "\npayload:\n" + mirror.output);
  }
  auto direct = DirectRows(session_);
  if (!direct.ok()) {
    return diverge("direct-failed",
                   "direct route executes on the mirror state",
                   direct.status().ToString());
  }
  if (parsed->exact) {
    // "(exact)" claims the result is exactly q(base).
    if (parsed->rows != *direct) {
      return diverge("exact-mismatch", JoinLines(*direct),
                     JoinLines(parsed->rows));
    }
  } else {
    // "(certain)" claims soundness: every row is a certain answer, hence
    // present in q(base).
    std::set<std::string> truth(direct->begin(), direct->end());
    for (const std::string& row : parsed->rows) {
      if (truth.count(row) == 0) {
        return diverge("certain-not-subset", JoinLines(*direct),
                       "unsound row: " + row);
      }
    }
  }
  return std::nullopt;
}

bool FlipOneAnswer(std::string* raw_response) {
  size_t route = raw_response->find("route ");
  if (route == std::string::npos) return false;
  // The first digit after the header start is the answer count (route and
  // engine names are digit-free); flipping it breaks any honest rendering.
  for (size_t i = route; i < raw_response->size(); ++i) {
    char c = (*raw_response)[i];
    if (std::isdigit(static_cast<unsigned char>(c))) {
      (*raw_response)[i] = c == '9' ? '0' : static_cast<char>(c + 1);
      return true;
    }
  }
  return false;
}

namespace {

/// Buffered line reads off a connected socket.
class LineReader {
 public:
  explicit LineReader(int fd) : fd_(fd) {}

  Result<std::string> NextLine() {
    while (true) {
      size_t nl = carry_.find('\n');
      if (nl != std::string::npos) {
        std::string line = carry_.substr(0, nl);
        carry_.erase(0, nl + 1);
        return line;
      }
      char buf[4096];
      ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
      if (n == 0) {
        return Status::Internal("server closed the connection mid-response");
      }
      if (n < 0) {
        return Status::Internal(std::string("recv failed: ") +
                                std::strerror(errno));
      }
      carry_.append(buf, static_cast<size_t>(n));
    }
  }

 private:
  int fd_;
  std::string carry_;
};

bool SendAll(int fd, const std::string& data) {
  size_t sent = 0;
  while (sent < data.size()) {
    ssize_t n = ::send(fd, data.data() + sent, data.size() - sent, 0);
    if (n <= 0) return false;
    sent += static_cast<size_t>(n);
  }
  return true;
}

bool IsTerminator(const std::string& line) {
  return line == "ok" || line.rfind("err ", 0) == 0;
}

}  // namespace

Result<TcpReplayResult> ReplayAndCheckOverTcp(
    int port, const std::vector<std::string>& lines,
    const TcpReplayOptions& options) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::Internal(std::string("socket failed: ") +
                            std::strerror(errno));
  }
  struct timeval tv;
  tv.tv_sec = options.recv_timeout_s;
  tv.tv_usec = 0;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    std::string err = std::strerror(errno);
    ::close(fd);
    return Status::Internal("connect to 127.0.0.1:" + std::to_string(port) +
                            " failed: " + err);
  }

  MirrorChecker checker(options.mirror);
  LineReader reader(fd);
  TcpReplayResult result;
  int answers_seen = 0;
  Status transport = Status::OK();
  for (const std::string& line : lines) {
    if (!SendAll(fd, line + "\n")) {
      transport = Status::Internal("send failed: " +
                                   std::string(std::strerror(errno)));
      break;
    }
    ++result.commands_sent;
    std::string raw;
    while (true) {
      auto next = reader.NextLine();
      if (!next.ok()) {
        transport = next.status();
        break;
      }
      raw += *next + "\n";
      if (IsTerminator(*next)) break;
    }
    if (!transport.ok()) break;

    bool is_answer = FirstWord(line) == "answer";
    bool tamper =
        (is_answer && options.tamper_at_answer >= 0 &&
         answers_seen == options.tamper_at_answer) ||
        (!options.tamper_match.empty() && line == options.tamper_match);
    if (is_answer) ++answers_seen;
    if (tamper) FlipOneAnswer(&raw);

    result.divergence = checker.Check(line, raw);
    if (result.divergence.has_value()) break;
    if (line == "quit" || line == "exit") break;
  }
  result.answers_checked = checker.answers_checked();
  result.rewrites_checked = checker.rewrites_checked();
  ::close(fd);
  AQV_RETURN_NOT_OK(transport);
  return result;
}

std::vector<std::string> ShrinkScript(
    std::vector<std::string> lines,
    const std::function<bool(const std::vector<std::string>&)>& still_diverges) {
  size_t chunk = std::max<size_t>(1, lines.size() / 2);
  while (true) {
    bool removed = false;
    size_t start = 0;
    while (start + chunk <= lines.size() && lines.size() > 1) {
      std::vector<std::string> candidate;
      candidate.reserve(lines.size() - chunk);
      candidate.insert(candidate.end(), lines.begin(),
                       lines.begin() + static_cast<ptrdiff_t>(start));
      candidate.insert(candidate.end(),
                       lines.begin() + static_cast<ptrdiff_t>(start + chunk),
                       lines.end());
      if (!candidate.empty() && still_diverges(candidate)) {
        lines = std::move(candidate);
        removed = true;
      } else {
        start += chunk;
      }
    }
    if (chunk == 1) {
      // 1-minimal: a full single-line pass with no removal is a fixpoint.
      if (!removed) break;
    } else {
      chunk = std::max<size_t>(1, chunk / 2);
    }
  }
  return lines;
}

}  // namespace aqv
