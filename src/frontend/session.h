/// \file
/// Umbrella header of the `frontend` module: the user-facing front door of
/// the repository. A Session owns one answering-queries-using-views problem
/// — catalog, view set, base facts, and the current query — and dispatches
/// parsed text commands (`view`, `query`, `fact`, `load`, `show`,
/// `rewrite`, `answer`, `explain`, `reset`, ...) onto the engine registry
/// (rewriting/engine.h), the cost planner (rewriting/planner.h), and the
/// answering pipeline (answering/answering.h). Every command returns a
/// structured CommandResult, so the session is unit-testable without any
/// I/O; the two thin transports — the `aqvsh` REPL/script runner under
/// examples/ and the TCP line-protocol server in frontend/server.h — only
/// move lines in and rendered results out. The surface syntax of rules and
/// facts is documented in docs/QUERY_LANGUAGE.md, the command set and
/// transports in docs/FRONTEND.md.

#ifndef AQV_FRONTEND_SESSION_H_
#define AQV_FRONTEND_SESSION_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "answering/answering.h"
#include "cq/catalog.h"
#include "cq/query.h"
#include "eval/database.h"
#include "eval/evaluator.h"
#include "rewriting/engine.h"
#include "rewriting/planner.h"
#include "service/plan_cache.h"
#include "service/service.h"
#include "storage/store.h"
#include "util/status.h"
#include "views/view.h"

namespace aqv {

/// \brief Outcome of one dispatched command: a Status (parse errors, engine
/// and pipeline failures propagate here — the session itself never dies), a
/// human-readable payload, and whether the command asked to end the
/// session.
struct CommandResult {
  Status status;
  /// '\n'-separated payload lines, no trailing newline; empty for commands
  /// with nothing to say (comments, blank lines, quit).
  std::string output;
  /// True for `quit` / `exit`: the transport should close the session.
  bool quit = false;

  bool ok() const { return status.ok(); }
};

/// The transcript rendering of a result: the payload lines, followed by an
/// `error: <status>` line when the command failed. This is exactly what
/// aqvsh prints (payload to stdout, the error line to stderr) and what the
/// docs doctest harness asserts fenced `aqv>` transcripts against.
std::string TranscriptLines(const CommandResult& result);

/// Construction-time knobs of a Session.
struct SessionOptions {
  /// Engine used by `rewrite` / `answer` when no `with <engine>` is given.
  std::string default_engine = "minicon";
  /// Route used by `answer` when no `route <route>` is given.
  AnswerRoute default_route = AnswerRoute::kCompleteRewriting;
  /// Engine knobs (oracle, containment budgets, per-strategy limits)
  /// applied to every rewrite/answer/explain the session runs.
  EngineOptions engine;
  EvalOptions eval;
  /// `explain` / cost-route knobs; `planner.engine` is overwritten with
  /// `engine` so budgets and the oracle are configured in one place.
  PlannerOptions planner;
  /// When set, `rewrite` and `answer` execute as jobs on this service
  /// (shared worker pool + sharded oracle) instead of inline; the session
  /// blocks for its own result, so command semantics are unchanged. The
  /// pointee must outlive the session.
  RewriteService* service = nullptr;
  /// When true with `service` set, rewrite/answer run inline (on the
  /// calling thread) while `show stats` still surfaces the service. The
  /// epoll server sets this: its commands already execute *on* pool
  /// workers as generic tasks, and a worker submitting a nested job and
  /// blocking on it could deadlock the pool. Pair with
  /// `engine.oracle = &service->oracle()` to keep sharing the cache.
  bool dispatch_inline = false;
  /// When set, `rewrite` consults and populates this shared rewriting-plan
  /// cache (service/plan_cache.h): an exact repeat of (engine, options,
  /// query text, views text) — across this or any other session sharing
  /// the cache — is answered byte-identically without an engine run. The
  /// pointee must outlive the session.
  RewritePlanCache* plan_cache = nullptr;
  /// `load` reads files from the process's filesystem; transports serving
  /// remote clients (frontend/server.h) disable it.
  bool enable_load = true;
  /// Nested `load` depth cap (a script loading itself must terminate).
  int max_load_depth = 8;
  /// `save <dir>` / `open <dir>` persist the session through the storage
  /// engine (storage/store.h). Unlike `load`, the TCP server keeps this
  /// on — durable server-side sessions are the point — but an embedder
  /// can turn it off.
  bool enable_persist = true;
  /// Storage-engine knobs (mmap extents, fsync discipline) applied to
  /// every store this session attaches.
  StoreOptions storage;
};

/// \brief One interactive answering-queries-using-views session: owned
/// problem state plus a text-command dispatcher. Not thread-safe — one
/// Session per client; concurrency lives in the shared RewriteService.
class Session {
 public:
  explicit Session(SessionOptions options = {});

  /// Parses and executes one command line. Blank lines and `%`/`#` comment
  /// lines are no-ops. Never throws, never exits: every failure is a
  /// CommandResult whose status is non-OK, and the session survives it.
  CommandResult Execute(std::string_view line);

  /// Executes `text` line by line (one command per line), returning one
  /// result per line processed. Stops after a `quit` command.
  std::vector<CommandResult> ExecuteScript(std::string_view text);

  // Introspection (tests and transports).
  const Catalog& catalog() const { return *catalog_; }
  const ViewSet& views() const { return views_; }
  const Database& base() const { return base_; }
  const std::optional<UnionQuery>& query() const { return query_; }
  const SessionOptions& options() const { return options_; }
  uint64_t commands_executed() const { return commands_; }
  /// The attached database store, or nullptr while detached. Attached by
  /// `save`/`open`; released by `reset` (and by re-targeting save/open).
  const SessionStore* store() const { return store_.get(); }

 private:
  class KindSnapshot;

  CommandResult CmdHelp();
  CommandResult CmdView(const std::string& rest);
  CommandResult CmdQuery(const std::string& rest);
  CommandResult CmdFact(const std::string& rest);
  CommandResult CmdLoad(const std::string& rest);
  CommandResult CmdShow(const std::string& rest);
  CommandResult CmdRewrite(const std::string& rest);
  CommandResult CmdAnswer(const std::string& rest);
  CommandResult CmdExplain();
  CommandResult CmdReset();
  CommandResult CmdSave(const std::string& rest);
  CommandResult CmdOpen(const std::string& rest);

  /// Appends the successful mutation `line` to the attached store's
  /// journal (autosave-on-mutation); a journal failure turns the result
  /// into an error — the mutation applied in memory but is not durable.
  CommandResult Journaled(const std::string& line, CommandResult result);

  /// The session problem rendered for SessionStore::Snapshot.
  SnapshotInput RenderSnapshot() const;

  /// "N views, M facts, query set|unset" — the save/open summary. Counts
  /// only, no paths or generations, so transcripts stay deterministic.
  std::string ProblemSummary() const;

  /// "set a query first" / "add at least one view first" preconditions.
  [[nodiscard]] Status Ready(bool needs_views) const;

  /// Runs `engine_name` on the session problem, inline or via the service.
  [[nodiscard]] Result<RewriteResponse> RunRewrite(const std::string& engine_name);

  /// Runs the answering pipeline, inline or via the service.
  [[nodiscard]] Result<AnswerResponse> RunAnswer(AnswerRoute route,
                                   const std::string& engine_name);

  SessionOptions options_;
  std::unique_ptr<Catalog> catalog_;
  ViewSet views_;
  Database base_;
  std::optional<UnionQuery> query_;
  /// Search counters of the session's most recent engine call (`show
  /// stats` surfaces them).
  RewriteStats last_rewrite_;
  uint64_t commands_ = 0;
  int load_depth_ = 0;
  /// The attached database store (save/open). Owns the directory lock
  /// and the journal descriptor; releasing it (reset, re-targeting)
  /// closes both. Mmap-backed extents live in base_'s relations and
  /// unmap when those are replaced.
  std::unique_ptr<SessionStore> store_;
  /// True while `open` replays the journal tail: replayed mutations must
  /// not be re-journaled, and a replayed `reset` must not detach the
  /// store being opened.
  bool replaying_journal_ = false;
};

}  // namespace aqv

#endif  // AQV_FRONTEND_SESSION_H_
