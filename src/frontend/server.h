/// \file
/// The TCP line-protocol transport of the frontend: a FrontendServer
/// accepts concurrent client connections, gives each its own Session
/// (frontend/session.h), and multiplexes every session's rewrite and
/// answering jobs onto one shared RewriteService (service/service.h) — so
/// N clients share one worker pool while their problem state stays fully
/// isolated per connection. Each connection also gets its own sharded
/// ContainmentOracle (service share_oracle is off): the oracle contract
/// (containment/oracle.h) requires every catalog to outlive the oracle
/// its queries pass through, and connection catalogs die at disconnect —
/// a server-lifetime cache would accumulate dead-catalog entries and
/// could match stale ones at a reused address.
///
/// Protocol (one command per '\n'-terminated line, as in aqvsh):
///
///   client:  view v(X) :- e(X, Y).\n
///   server:  added view v\n
///            ok\n
///   client:  bogus\n
///   server:  err InvalidArgument: unknown command 'bogus' (try 'help')\n
///
/// Every response is zero or more payload lines followed by exactly one
/// terminator line: `ok`, or `err <Code>: <message>`. Payload lines are
/// the session's CommandResult output verbatim; no payload line the
/// frontend emits is ever the bare word `ok` or starts with `err `, so a
/// client can parse responses by scanning for the terminator. `STATS` is
/// accepted as an alias for `show stats` (surfacing the shared service's
/// ServiceStats); `quit` answers `ok` and closes the connection. `load`
/// is disabled on server sessions — scripts run client-side. The full
/// protocol spec lives in docs/OPERATIONS.md.

#ifndef AQV_FRONTEND_SERVER_H_
#define AQV_FRONTEND_SERVER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_set>
#include <vector>

#include "frontend/session.h"
#include "service/service.h"
#include "util/status.h"

namespace aqv {

/// Construction-time knobs of a FrontendServer.
struct ServerOptions {
  /// Bind address. Loopback by default: the protocol is unauthenticated.
  std::string host = "127.0.0.1";
  /// TCP port; 0 asks the OS for an ephemeral one (read it back via
  /// port() after Start()).
  int port = 0;
  /// Concurrent-connection cap; excess connections are refused with an
  /// `err ResourceExhausted` terminator and closed.
  int max_connections = 64;
  /// Longest accepted command line; a longer one kills its connection.
  size_t max_line_bytes = 64 * 1024;
  /// The backing RewriteService (workers, budgets). `share_oracle` is
  /// forced off: oracles are per-connection (see the \file comment), and
  /// the oracle knobs below size each connection's own cache.
  ServiceOptions service;
  /// Template for per-connection sessions; `service` and `enable_load`
  /// are overwritten (the shared service wired in, load disabled).
  SessionOptions session;
};

/// \brief Line-protocol TCP server over per-connection Sessions and one
/// shared RewriteService. Thread model: one accept thread plus one thread
/// per live connection; Start/Stop may be called from any thread, once
/// each (Stop is also run by the destructor).
class FrontendServer {
 public:
  explicit FrontendServer(ServerOptions options = {});
  ~FrontendServer();

  FrontendServer(const FrontendServer&) = delete;
  FrontendServer& operator=(const FrontendServer&) = delete;

  /// Binds, listens, and spawns the accept loop. kInternal on socket
  /// errors (port in use, bad host, ...).
  [[nodiscard]] Status Start();

  /// Stops accepting, shuts down every live connection, and joins all
  /// threads. Idempotent; safe to call while clients are mid-command
  /// (their in-flight service jobs complete — the service drains).
  void Stop();

  /// The resolved listening port (after Start()).
  int port() const { return port_; }
  const ServerOptions& options() const { return options_; }
  RewriteService& service() { return *service_; }
  uint64_t connections_accepted() const { return accepted_.load(); }

 private:
  void AcceptLoop();
  void HandleConnection(int fd);
  /// Joins and discards connection threads that have finished (handlers
  /// record their id in finished_ids_ on exit). Requires mu_.
  void ReapFinishedLocked();
  /// Executes one protocol line on `session`, returning the full wire
  /// response (payload + terminator). Sets *quit for `quit`/`exit`.
  std::string RespondTo(Session& session, const std::string& line,
                        bool* quit);

  ServerOptions options_;
  std::unique_ptr<RewriteService> service_;
  int listen_fd_ = -1;
  int port_ = 0;
  std::thread accept_thread_;
  std::atomic<uint64_t> accepted_{0};

  std::mutex mu_;
  bool started_ = false;
  bool stopping_ = false;
  std::unordered_set<int> live_fds_;
  std::vector<std::thread> conn_threads_;
  /// Ids of exited handler threads, pending a ReapFinishedLocked join —
  /// reaped on every accept so a long-lived server does not accumulate
  /// one finished thread per connection ever served.
  std::vector<std::thread::id> finished_ids_;
};

}  // namespace aqv

#endif  // AQV_FRONTEND_SERVER_H_
