/// \file
/// The TCP line-protocol transport of the frontend: a FrontendServer
/// multiplexes every client connection onto one epoll event loop
/// (non-blocking sockets, per-connection read/write buffers) and executes
/// each parsed command as a generic task on the shared RewriteService
/// worker pool (service/service.h) — so connection count is no longer
/// bounded by thread count, and N clients share one pool while their
/// problem state stays fully isolated per connection. All connections
/// share two server-lifetime caches: one sharded ContainmentOracle and one
/// RewritePlanCache (service/plan_cache.h). This is sound because oracle
/// entries are keyed by catalog-independent canonical encodings
/// (containment/oracle.h) and plan-cache keys embed the complete rendered
/// problem statement — so a query repeated on any connection against the
/// same schema is a cache hit, and responses stay byte-identical to an
/// uncached run. Set `share_cache = false` to restore fully isolated
/// per-connection oracles (the differential harness replays both modes).
///
/// Protocol (one command per '\n'-terminated line, as in aqvsh):
///
///   client:  view v(X) :- e(X, Y).\n
///   server:  added view v\n
///            ok\n
///   client:  bogus\n
///   server:  err InvalidArgument: unknown command 'bogus' (try 'help')\n
///
/// Every response is zero or more payload lines followed by exactly one
/// terminator line: `ok`, or `err <Code>: <message>`. Payload lines are
/// the session's CommandResult output verbatim; no payload line the
/// frontend emits is ever the bare word `ok` or starts with `err `, so a
/// client can parse responses by scanning for the terminator. `STATS` is
/// accepted as an alias for `show stats` (surfacing the shared service,
/// oracle, and plan-cache counters); `quit` answers `ok` and closes the
/// connection. `load` is disabled on server sessions — scripts run
/// client-side. When `accounts` is non-empty the server additionally
/// requires an `auth <user> <token>` handshake before any other command
/// (gated with `err Unauthenticated`), and read-only accounts get `err
/// PermissionDenied` on mutating commands; each connection's views and
/// facts are visible only on that connection, so authenticated tenants
/// never see each other's schema. Idle connections are closed after
/// `idle_timeout_ms`; Stop() drains gracefully — queued responses are
/// flushed (bounded by `drain_timeout_ms`) and in-flight commands always
/// complete before their connection is destroyed. The full protocol spec
/// lives in docs/OPERATIONS.md.

#ifndef AQV_FRONTEND_SERVER_H_
#define AQV_FRONTEND_SERVER_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "containment/oracle.h"
#include "frontend/session.h"
#include "service/plan_cache.h"
#include "service/service.h"
#include "util/status.h"

namespace aqv {

/// One server account: `auth <user> <token>` authenticates a connection.
struct ServerAccount {
  std::string user;
  std::string token;
  /// False makes the account read-only: schema- or state-mutating
  /// commands (view/query/fact/reset/save/open) are refused with
  /// PermissionDenied; rewrite/answer/show/explain still work.
  bool can_write = true;
};

/// Construction-time knobs of a FrontendServer.
struct ServerOptions {
  /// Bind address. Loopback by default: the token handshake is plaintext.
  std::string host = "127.0.0.1";
  /// TCP port; 0 asks the OS for an ephemeral one (read it back via
  /// port() after Start()).
  int port = 0;
  /// Concurrent-connection cap; excess connections are refused with an
  /// `err ResourceExhausted` terminator and closed.
  int max_connections = 64;
  /// Longest accepted command line; a longer one kills its connection.
  size_t max_line_bytes = 64 * 1024;
  /// Parsed-but-unexecuted command lines a connection may pipeline before
  /// the server stops reading from it (backpressure, not an error; reads
  /// resume as the queue drains).
  size_t max_pipelined = 1024;
  /// Connections idle (no bytes read, no response written) longer than
  /// this are closed by the event loop's timeout sweep. 0 disables.
  int idle_timeout_ms = 300'000;
  /// Stop() flushes pending response bytes for at most this long before
  /// force-closing write-blocked connections (in-flight commands still
  /// always run to completion).
  int drain_timeout_ms = 2'000;
  /// The backing RewriteService (worker pool). Commands execute as
  /// generic tasks on it; its `oracle_shards`/`oracle_max_entries` also
  /// size the server-lifetime shared oracle. `share_oracle` is forced off
  /// (sharing happens through the session-level oracle wiring instead, so
  /// 'rewrite' and 'answer' hit one cache).
  ServiceOptions service;
  /// Template for per-connection sessions; `service`, `dispatch_inline`,
  /// `enable_load`, `engine.oracle`, and `plan_cache` are overwritten.
  SessionOptions session;
  /// True (default): all connections share one server-lifetime oracle and
  /// rewriting-plan cache. False: per-connection oracles, no plan cache —
  /// the pre-shared-cache behavior, kept for differential replay.
  bool share_cache = true;
  /// Total entry budget / shard count of the shared plan cache.
  size_t plan_cache_max_entries = size_t{1} << 16;
  size_t plan_cache_shards = 8;
  /// When non-empty, every connection must `auth` before other commands.
  std::vector<ServerAccount> accounts;
};

/// \brief Epoll-multiplexed line-protocol TCP server over per-connection
/// Sessions, one shared RewriteService pool, and server-lifetime rewriting
/// caches. Thread model: one event-loop thread owns every socket and all
/// connection state; command execution happens on the service's workers
/// (at most one in-flight command per connection, so each Session is
/// touched by one thread at a time); completions return to the loop
/// through an eventfd. Start/Stop may be called from any thread, once
/// each (Stop is also run by the destructor).
class FrontendServer {
 public:
  explicit FrontendServer(ServerOptions options = {});
  ~FrontendServer();

  FrontendServer(const FrontendServer&) = delete;
  FrontendServer& operator=(const FrontendServer&) = delete;

  /// Binds, listens, and spawns the event loop. kInternal on socket
  /// errors (port in use, bad host, ...).
  [[nodiscard]] Status Start();

  /// Stops accepting, drains every live connection (in-flight commands
  /// complete; buffered responses are flushed for up to
  /// `drain_timeout_ms`), and joins the event loop. Idempotent.
  void Stop();

  /// The resolved listening port (after Start()).
  int port() const { return port_; }
  const ServerOptions& options() const { return options_; }
  RewriteService& service() { return *service_; }
  /// The server-lifetime caches every connection shares (when
  /// `share_cache`; otherwise constructed but unused).
  ContainmentOracle& oracle() { return *oracle_; }
  RewritePlanCache& plan_cache() { return *plan_cache_; }
  uint64_t connections_accepted() const { return accepted_.load(); }

 private:
  struct Conn;
  /// One finished command: the rendered wire response of `conn_id`'s
  /// in-flight task, handed from a worker back to the event loop.
  struct Completion {
    uint64_t conn_id = 0;
    std::string response;
    bool quit = false;
  };

  void EventLoop();
  void AcceptReady();
  void ReadReady(Conn& conn);
  void WriteReady(Conn& conn);
  /// Splits `conn`'s read carry into lines (enforcing the line cap) and
  /// queues them for execution.
  void ParseLines(Conn& conn);
  /// Starts the next queued line if none is in flight: auth and gating
  /// answered inline, everything else dispatched to the pool.
  void Pump(Conn& conn);
  /// Applies completions delivered through the eventfd.
  void DrainCompletions();
  /// Appends `text` to the write buffer and flushes what the socket
  /// accepts now.
  void QueueWrite(Conn& conn, std::string text);
  /// Post-progress bookkeeping: emits a deferred line-cap verdict once
  /// queued work drains, closes the connection when it is fully drained
  /// and marked closing, and re-arms its epoll interest otherwise.
  void Settle(Conn& conn);
  /// Re-arms `conn`'s epoll registration to match its buffer state.
  void UpdateInterest(Conn& conn);
  void CloseConn(Conn& conn);
  /// The auth/permission gate. Returns an empty string when `line` may
  /// proceed to the session, else the full wire response that answers it
  /// at the boundary. Sets *handled_quit for gated `quit`.
  std::string Gate(Conn& conn, const std::string& line);
  /// Executes one protocol line on `session` (worker thread), returning
  /// the full wire response (payload + terminator). Sets *quit.
  static std::string RespondTo(Session& session, const std::string& line,
                               bool* quit);

  ServerOptions options_;
  std::unique_ptr<RewriteService> service_;
  std::unique_ptr<ContainmentOracle> oracle_;
  std::unique_ptr<RewritePlanCache> plan_cache_;
  int listen_fd_ = -1;
  int epoll_fd_ = -1;
  int event_fd_ = -1;
  int port_ = 0;
  std::thread loop_thread_;
  std::atomic<uint64_t> accepted_{0};
  std::atomic<bool> stop_requested_{false};

  std::mutex mu_;  // guards started_/stopped_ (Start/Stop handshakes)
  bool started_ = false;
  bool stopped_ = false;

  std::mutex comp_mu_;  // guards completions_ (workers -> event loop)
  std::vector<Completion> completions_;

  // Event-loop-thread state (no locking: one owner thread).
  std::unordered_map<uint64_t, std::unique_ptr<Conn>> conns_;
  uint64_t next_conn_id_ = 2;  // 0 = listener, 1 = eventfd in epoll data
};

}  // namespace aqv

#endif  // AQV_FRONTEND_SERVER_H_
