#include "frontend/replay.h"

#include <algorithm>
#include <cctype>
#include <numeric>

#include "eval/relation.h"
#include "eval/value.h"
#include "util/rng.h"

namespace aqv {

namespace {

/// True when `text` lexes back as a single constant token: an integer
/// literal or a lowercase identifier (docs/QUERY_LANGUAGE.md).
bool IsWritableConstant(const std::string& text) {
  if (text.empty()) return false;
  size_t i = 0;
  if (text[0] == '-') i = 1;
  if (i < text.size() &&
      std::isdigit(static_cast<unsigned char>(text[i]))) {
    for (; i < text.size(); ++i) {
      if (!std::isdigit(static_cast<unsigned char>(text[i]))) return false;
    }
    return true;
  }
  if (!std::islower(static_cast<unsigned char>(text[0]))) return false;
  for (char c : text) {
    if (!std::isalnum(static_cast<unsigned char>(c)) && c != '_') {
      return false;
    }
  }
  return true;
}

/// The `fact` lines of a scenario's base database, per base relation in
/// PredId order (row order as stored) — shared by both renderers.
Result<std::string> FactLines(const Scenario& scenario) {
  const Catalog& catalog = *scenario.catalog;
  std::string out;
  for (PredId p : scenario.base.Predicates()) {
    const Relation* rel = scenario.base.Find(p);
    if (rel == nullptr || rel->empty()) continue;
    const std::string& pred = catalog.pred(p).name;
    for (size_t i = 0; i < rel->size(); ++i) {
      out += "fact " + pred + "(";
      for (int c = 0; c < rel->arity(); ++c) {
        Value v = rel->at(i, c);
        if (IsSkolem(v)) {
          return Status::InvalidArgument(
              "base relation '" + pred +
              "' holds a Skolem value; not expressible as a fact");
        }
        std::string text = ValueToString(catalog, v);
        if (!IsWritableConstant(text)) {
          return Status::InvalidArgument("constant '" + text +
                                         "' does not lex as a constant");
        }
        if (c > 0) out += ", ";
        out += text;
      }
      out += ").\n";
    }
  }
  return out;
}

}  // namespace

Result<std::string> ScriptFromScenario(const Scenario& scenario) {
  std::string out = "% scenario: " + scenario.description + "\n";
  for (const View& v : scenario.views.views()) {
    out += "view " + v.definition.ToString() + "\n";
  }
  AQV_ASSIGN_OR_RETURN(std::string facts, FactLines(scenario));
  out += facts;
  out += "query " + scenario.query.ToString() + "\n";
  return out;
}

Result<SoakScript> SoakScriptFromScenario(const Scenario& scenario,
                                          const SoakScriptOptions& options) {
  if (options.engines.empty()) {
    return Status::InvalidArgument("soak script needs at least one engine");
  }
  if (options.routes.empty() && !options.include_rewrites) {
    return Status::InvalidArgument(
        "soak script needs at least one probe (routes or rewrites)");
  }
  if (options.churn_cycles < 0) {
    return Status::InvalidArgument("churn_cycles must be >= 0");
  }
  if (options.holdback_fraction < 0.0 || options.holdback_fraction >= 1.0 ||
      options.retire_fraction < 0.0 || options.retire_fraction >= 1.0) {
    return Status::InvalidArgument(
        "holdback/retire fractions must be in [0, 1)");
  }
  if (scenario.views.empty()) {
    return Status::InvalidArgument("soak script needs a non-empty ViewSet");
  }
  if (options.persist_dir.find_first_of(" \t") != std::string::npos) {
    return Status::InvalidArgument(
        "persist_dir must not contain whitespace: '" + options.persist_dir +
        "'");
  }

  AQV_ASSIGN_OR_RETURN(std::string facts, FactLines(scenario));
  Rng rng(options.seed);
  const int n = scenario.views.size();

  // Churn membership: `held` views are withheld from phase 0 and added
  // across cycles; retirement reshuffles `active` each cycle.
  std::vector<int> active(n);
  std::iota(active.begin(), active.end(), 0);
  std::vector<int> held;
  if (options.churn_cycles > 0 && options.holdback_fraction > 0.0 && n > 1) {
    std::vector<int> shuffled = active;
    rng.Shuffle(&shuffled);
    int hold = std::min(
        n - 1, static_cast<int>(options.holdback_fraction * n + 0.5));
    held.assign(shuffled.end() - hold, shuffled.end());
    shuffled.resize(static_cast<size_t>(n - hold));
    active = std::move(shuffled);
  }
  std::sort(active.begin(), active.end());

  SoakScript out;
  size_t probe_cursor = 0;
  auto probes = [&](std::string* text) {
    ++out.phases;
    const std::string& engine =
        options.engines[probe_cursor % options.engines.size()];
    ++probe_cursor;
    if (options.include_rewrites) {
      *text += "rewrite with " + engine + "\n";
      ++out.rewrite_probes;
    }
    for (const std::string& route : options.routes) {
      *text += "answer route " + route;
      if (route == "complete") *text += " with " + engine;
      *text += "\n";
      ++out.answer_probes;
    }
  };
  auto rebuild = [&](std::string* text) {
    for (int i : active) {
      *text += "view " + scenario.views.view(i).definition.ToString() + "\n";
    }
    *text += facts;
    *text += "query " + scenario.query.ToString() + "\n";
  };
  const bool persist = !options.persist_dir.empty();
  // Persistence discipline: `save` right after every (re)build — in
  // particular after each `reset`, which detaches the store — so every
  // later `open` finds a committed snapshot; mutations between save and
  // open ride the journal.
  auto save = [&](std::string* text) {
    if (!persist) return;
    *text += "save " + options.persist_dir + "\n";
    ++out.saves;
  };
  auto reopen = [&](std::string* text) {
    if (!persist) return;
    *text += "% recovery probe: reload snapshot + journal tail\n";
    *text += "open " + options.persist_dir + "\n";
    ++out.opens;
  };

  std::string text = "% soak script: " + scenario.description + "\n";
  rebuild(&text);
  save(&text);
  probes(&text);

  for (int cycle = 0; cycle < options.churn_cycles; ++cycle) {
    if (!held.empty()) {
      // Add churn: introduce a slice of the held-back views mid-session.
      int take = std::max<int>(
          1, static_cast<int>(held.size()) / (options.churn_cycles - cycle));
      take = std::min<int>(take, static_cast<int>(held.size()));
      std::vector<int> adds(held.end() - take, held.end());
      held.resize(held.size() - static_cast<size_t>(take));
      std::sort(adds.begin(), adds.end());
      text += "% churn: add " + std::to_string(take) + " view(s)\n";
      for (int i : adds) {
        text +=
            "view " + scenario.views.view(i).definition.ToString() + "\n";
      }
      active.insert(active.end(), adds.begin(), adds.end());
      std::sort(active.begin(), active.end());
      // The added views were journaled live; reopening replays them on
      // top of the snapshot, so the probes below run on recovered state.
      reopen(&text);
      probes(&text);
    }
    int retire = std::min<int>(
        static_cast<int>(options.retire_fraction * active.size()),
        static_cast<int>(active.size()) - 1);
    if (retire > 0) {
      // Retire churn: the command language has no `drop view`, so
      // retirement is a `reset` plus a rebuild of the survivors.
      rng.Shuffle(&active);
      active.resize(active.size() - static_cast<size_t>(retire));
      std::sort(active.begin(), active.end());
      text += "% churn: retire " + std::to_string(retire) +
              " view(s) (reset + rebuild)\nreset\n";
      rebuild(&text);
      save(&text);
      probes(&text);
    }
  }
  text += "quit\n";
  out.text = std::move(text);
  out.final_views = static_cast<int>(active.size());
  return out;
}

}  // namespace aqv
