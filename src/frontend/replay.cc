#include "frontend/replay.h"

#include <cctype>

#include "eval/relation.h"
#include "eval/value.h"

namespace aqv {

namespace {

/// True when `text` lexes back as a single constant token: an integer
/// literal or a lowercase identifier (docs/QUERY_LANGUAGE.md).
bool IsWritableConstant(const std::string& text) {
  if (text.empty()) return false;
  size_t i = 0;
  if (text[0] == '-') i = 1;
  if (i < text.size() &&
      std::isdigit(static_cast<unsigned char>(text[i]))) {
    for (; i < text.size(); ++i) {
      if (!std::isdigit(static_cast<unsigned char>(text[i]))) return false;
    }
    return true;
  }
  if (!std::islower(static_cast<unsigned char>(text[0]))) return false;
  for (char c : text) {
    if (!std::isalnum(static_cast<unsigned char>(c)) && c != '_') {
      return false;
    }
  }
  return true;
}

}  // namespace

Result<std::string> ScriptFromScenario(const Scenario& scenario) {
  const Catalog& catalog = *scenario.catalog;
  std::string out = "% scenario: " + scenario.description + "\n";
  for (const View& v : scenario.views.views()) {
    out += "view " + v.definition.ToString() + "\n";
  }
  for (PredId p : scenario.base.Predicates()) {
    const Relation* rel = scenario.base.Find(p);
    if (rel == nullptr || rel->empty()) continue;
    const std::string& pred = catalog.pred(p).name;
    for (size_t i = 0; i < rel->size(); ++i) {
      out += "fact " + pred + "(";
      for (int c = 0; c < rel->arity(); ++c) {
        Value v = rel->at(i, c);
        if (IsSkolem(v)) {
          return Status::InvalidArgument(
              "base relation '" + pred +
              "' holds a Skolem value; not expressible as a fact");
        }
        std::string text = ValueToString(catalog, v);
        if (!IsWritableConstant(text)) {
          return Status::InvalidArgument("constant '" + text +
                                         "' does not lex as a constant");
        }
        if (c > 0) out += ", ";
        out += text;
      }
      out += ").\n";
    }
  }
  out += "query " + scenario.query.ToString() + "\n";
  return out;
}

}  // namespace aqv
