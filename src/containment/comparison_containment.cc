#include "containment/comparison_containment.h"

#include <algorithm>
#include <map>
#include <set>

#include "containment/containment.h"
#include "containment/homomorphism.h"

namespace aqv {

namespace {

// ---------------------------------------------------------------------------
// Union-find over term nodes (variables first, then constants).
// ---------------------------------------------------------------------------

class UnionFind {
 public:
  explicit UnionFind(int n) : parent_(n) {
    for (int i = 0; i < n; ++i) parent_[i] = i;
  }
  int Find(int x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }
  void Unite(int a, int b) { parent_[Find(a)] = Find(b); }

 private:
  std::vector<int> parent_;
};

// Numeric value of a constant, if any.
std::optional<int64_t> NumericOf(const Catalog& cat, ConstId c) {
  return cat.constant(c).numeric;
}

// Collects distinct numeric constant values used anywhere in `q`, recording
// one representative ConstId per value.
void CollectNumericConsts(const Query& q, std::map<int64_t, ConstId>* out) {
  auto visit = [&](Term t) {
    if (t.is_const()) {
      auto v = NumericOf(*q.catalog(), t.constant());
      if (v.has_value()) out->emplace(*v, t.constant());
    }
  };
  for (Term t : q.head().args) visit(t);
  for (const Atom& a : q.body()) {
    for (Term t : a.args) visit(t);
  }
  for (const Comparison& c : q.comparisons()) {
    visit(c.lhs);
    visit(c.rhs);
  }
}

// ---------------------------------------------------------------------------
// Satisfiability of the comparison conjunction (dense order).
// ---------------------------------------------------------------------------

// Tarjan-free SCC via Kosaraju (graphs here are tiny).
std::vector<int> SccIds(int n, const std::vector<std::pair<int, int>>& edges) {
  std::vector<std::vector<int>> adj(n), radj(n);
  for (auto [u, v] : edges) {
    adj[u].push_back(v);
    radj[v].push_back(u);
  }
  std::vector<int> order;
  std::vector<bool> seen(n, false);
  // Iterative DFS for finish order.
  for (int s = 0; s < n; ++s) {
    if (seen[s]) continue;
    std::vector<std::pair<int, size_t>> stack{{s, 0}};
    seen[s] = true;
    while (!stack.empty()) {
      auto& [u, i] = stack.back();
      if (i < adj[u].size()) {
        int w = adj[u][i++];
        if (!seen[w]) {
          seen[w] = true;
          stack.push_back({w, 0});
        }
      } else {
        order.push_back(u);
        stack.pop_back();
      }
    }
  }
  std::vector<int> comp(n, -1);
  int num_comp = 0;
  for (int idx = n - 1; idx >= 0; --idx) {
    int s = order[idx];
    if (comp[s] != -1) continue;
    std::vector<int> stack{s};
    comp[s] = num_comp;
    while (!stack.empty()) {
      int u = stack.back();
      stack.pop_back();
      for (int w : radj[u]) {
        if (comp[w] == -1) {
          comp[w] = num_comp;
          stack.push_back(w);
        }
      }
    }
    ++num_comp;
  }
  return comp;
}

}  // namespace

bool ComparisonsSatisfiable(const Query& q) {
  if (!q.has_comparisons()) return true;
  const Catalog& cat = *q.catalog();

  // Pre-pass for symbolic (non-numeric) constants: only = and != make sense.
  for (const Comparison& c : q.comparisons()) {
    auto symbolic = [&](Term t) {
      return t.is_const() && !NumericOf(cat, t.constant()).has_value();
    };
    bool any_sym = symbolic(c.lhs) || symbolic(c.rhs);
    if (!any_sym) continue;
    switch (c.op) {
      case CmpOp::kLt:
        return false;  // order undefined on symbolic constants
      case CmpOp::kLe:
        if (!(c.lhs == c.rhs)) return false;
        break;
      case CmpOp::kEq:
        // var = symbolic is satisfiable; symbolic = other-symbolic is not
        // (unique name assumption), handled by the union-find below only for
        // numeric nodes, so check directly here.
        if (c.lhs.is_const() && c.rhs.is_const() && !(c.lhs == c.rhs)) {
          return false;
        }
        break;
      case CmpOp::kNe:
        if (c.lhs == c.rhs) return false;
        break;
    }
  }

  // Node space: variables, then one node per distinct numeric value.
  std::set<int64_t> values;
  for (const Comparison& c : q.comparisons()) {
    for (Term t : {c.lhs, c.rhs}) {
      if (t.is_const()) {
        auto v = NumericOf(cat, t.constant());
        if (v.has_value()) values.insert(*v);
      }
    }
  }
  std::vector<int64_t> vals(values.begin(), values.end());
  int nv = q.num_vars();
  int n = nv + static_cast<int>(vals.size());
  auto node_of = [&](Term t) -> int {
    if (t.is_var()) return t.var();
    auto v = NumericOf(cat, t.constant());
    if (!v.has_value()) return -1;  // symbolic, handled in pre-pass
    int idx = static_cast<int>(
        std::lower_bound(vals.begin(), vals.end(), *v) - vals.begin());
    return nv + idx;
  };

  UnionFind uf(n);
  for (const Comparison& c : q.comparisons()) {
    if (c.op != CmpOp::kEq) continue;
    int a = node_of(c.lhs), b = node_of(c.rhs);
    if (a < 0 || b < 0) continue;
    uf.Unite(a, b);
  }
  // Two distinct numeric constants forced equal?
  std::map<int, int64_t> const_class;
  for (size_t i = 0; i < vals.size(); ++i) {
    int rep = uf.Find(nv + static_cast<int>(i));
    auto it = const_class.find(rep);
    if (it != const_class.end() && it->second != vals[i]) return false;
    const_class[rep] = vals[i];
  }

  // Order graph on class representatives: u -> v for u <= v / u < v, with
  // strictness recorded; constant spine adds c_i < c_{i+1}.
  std::vector<std::pair<int, int>> edges;
  std::vector<std::tuple<int, int, bool>> typed;  // (u, v, strict)
  auto add_edge = [&](int u, int v, bool strict) {
    u = uf.Find(u);
    v = uf.Find(v);
    edges.push_back({u, v});
    typed.push_back({u, v, strict});
  };
  for (const Comparison& c : q.comparisons()) {
    int a = node_of(c.lhs), b = node_of(c.rhs);
    if (a < 0 || b < 0) continue;
    if (c.op == CmpOp::kLt) add_edge(a, b, true);
    if (c.op == CmpOp::kLe) add_edge(a, b, false);
  }
  for (size_t i = 0; i + 1 < vals.size(); ++i) {
    add_edge(nv + static_cast<int>(i), nv + static_cast<int>(i) + 1, true);
  }

  std::vector<int> scc = SccIds(n, edges);
  for (auto [u, v, strict] : typed) {
    if (strict && scc[u] == scc[v]) return false;
  }
  // Forced-equal classes with distinct constants, or violated !=.
  std::map<int, int64_t> scc_const;
  for (size_t i = 0; i < vals.size(); ++i) {
    int s = scc[uf.Find(nv + static_cast<int>(i))];
    auto it = scc_const.find(s);
    if (it != scc_const.end() && it->second != vals[i]) return false;
    scc_const[s] = vals[i];
  }
  for (const Comparison& c : q.comparisons()) {
    if (c.op != CmpOp::kNe) continue;
    int a = node_of(c.lhs), b = node_of(c.rhs);
    if (a < 0 || b < 0) continue;
    if (scc[uf.Find(a)] == scc[uf.Find(b)]) return false;
  }
  return true;
}

Query NormalizeEqualities(const Query& q, bool* unsatisfiable) {
  *unsatisfiable = false;
  const Catalog& cat = *q.catalog();
  int nv = q.num_vars();

  // Union-find over variables; each class may acquire one pinned constant.
  UnionFind uf(nv);
  std::vector<std::optional<Term>> pinned(nv);
  auto pin = [&](int rep, Term c) -> bool {
    if (pinned[rep].has_value()) return *pinned[rep] == c;
    pinned[rep] = c;
    return true;
  };
  for (const Comparison& c : q.comparisons()) {
    if (c.op != CmpOp::kEq) continue;
    if (c.lhs.is_var() && c.rhs.is_var()) {
      int ra = uf.Find(c.lhs.var());
      int rb = uf.Find(c.rhs.var());
      if (ra == rb) continue;
      uf.Unite(ra, rb);
      int r = uf.Find(ra);
      std::optional<Term> pa = pinned[ra], pb = pinned[rb];
      if (pa.has_value() && pb.has_value() && !(*pa == *pb)) {
        *unsatisfiable = true;
        return q;
      }
      pinned[r] = pa.has_value() ? pa : pb;
    } else if (c.lhs.is_var() || c.rhs.is_var()) {
      Term v = c.lhs.is_var() ? c.lhs : c.rhs;
      Term k = c.lhs.is_var() ? c.rhs : c.lhs;
      if (!pin(uf.Find(v.var()), k)) {
        *unsatisfiable = true;
        return q;
      }
    } else if (!(c.lhs == c.rhs)) {
      // const = const: equal numerics could have distinct ConstIds only if
      // spelled differently, which InternConstant canonicalizes; differing
      // ids mean differing values.
      auto a = NumericOf(cat, c.lhs.constant());
      auto b = NumericOf(cat, c.rhs.constant());
      if (!a.has_value() || !b.has_value() || *a != *b) {
        *unsatisfiable = true;
        return q;
      }
    }
  }

  // Build the rewritten query over representative terms.
  Query out(q.catalog());
  std::vector<std::optional<Term>> new_term(nv);
  auto map_term = [&](Term t) -> Term {
    if (t.is_const()) return t;
    int rep = uf.Find(t.var());
    if (pinned[rep].has_value()) return *pinned[rep];
    if (!new_term[rep].has_value()) {
      new_term[rep] = Term::Var(out.AddVariable(q.var_name(rep)));
    }
    return *new_term[rep];
  };
  Atom head = q.head();
  for (Term& t : head.args) t = map_term(t);
  out.set_head(std::move(head));
  for (const Atom& a : q.body()) {
    Atom na = a;
    for (Term& t : na.args) t = map_term(t);
    out.AddBodyAtom(std::move(na));
  }
  for (const Comparison& c : q.comparisons()) {
    if (c.op == CmpOp::kEq) continue;  // applied above
    Comparison nc(c.op, map_term(c.lhs), map_term(c.rhs));
    if (nc.lhs == nc.rhs) {
      if (nc.op == CmpOp::kLe) continue;  // trivially true
      *unsatisfiable = true;              // t < t or t != t
      return q;
    }
    if (nc.lhs.is_const() && nc.rhs.is_const()) {
      auto a = NumericOf(cat, nc.lhs.constant());
      auto b = NumericOf(cat, nc.rhs.constant());
      if (a.has_value() && b.has_value()) {
        if (!EvalCmp(nc.op, *a, *b)) {
          *unsatisfiable = true;
          return q;
        }
        continue;  // trivially true
      }
    }
    out.AddComparison(nc);
  }
  return out;
}

// ---------------------------------------------------------------------------
// Linearization enumeration.
// ---------------------------------------------------------------------------

namespace {

struct LinClass {
  std::optional<int64_t> value;  // pinned numeric value, if any
  std::vector<VarId> vars;
};

class LinEnumerator {
 public:
  LinEnumerator(const Query& q, const std::vector<VarId>& vars,
                const std::vector<int64_t>& spine, uint64_t cap)
      : q_(q), cap_(cap) {
    for (int64_t v : spine) classes_.push_back(LinClass{v, {}});
    // Place most-constrained variables first.
    std::vector<int> cmp_count(q.num_vars(), 0);
    for (const Comparison& c : q.comparisons()) {
      if (c.lhs.is_var()) ++cmp_count[c.lhs.var()];
      if (c.rhs.is_var()) ++cmp_count[c.rhs.var()];
    }
    order_ = vars;
    std::sort(order_.begin(), order_.end(), [&](VarId a, VarId b) {
      if (cmp_count[a] != cmp_count[b]) return cmp_count[a] > cmp_count[b];
      return a < b;
    });
    placed_.assign(q.num_vars(), false);
    var_class_.assign(q.num_vars(), -1);
  }

  Result<std::vector<Linearization>> Run() {
    Status st = Recurse(0);
    if (!st.ok()) return st;
    return std::move(out_);
  }

 private:
  // Index of the class currently holding term `t`, or -1 if not applicable
  // (unplaced var / symbolic constant).
  int ClassOf(Term t) const {
    if (t.is_var()) {
      return placed_[t.var()] ? var_class_[t.var()] : -1;
    }
    auto v = NumericOf(*q_.catalog(), t.constant());
    if (!v.has_value()) return -1;
    for (int i = 0; i < static_cast<int>(classes_.size()); ++i) {
      if (classes_[i].value.has_value() && *classes_[i].value == *v) return i;
    }
    return -1;
  }

  // Checks every comparison whose endpoints are all decided; order-monotone,
  // so a violation here can never be repaired by later insertions.
  bool Consistent() const {
    for (const Comparison& c : q_.comparisons()) {
      auto decided = [&](Term t) {
        if (t.is_var()) return placed_[t.var()];
        return true;
      };
      if (!decided(c.lhs) || !decided(c.rhs)) continue;
      int a = ClassOf(c.lhs);
      int b = ClassOf(c.rhs);
      if (a < 0 || b < 0) {
        // Symbolic constant in a comparison: only = / != are meaningful.
        bool identical = c.lhs == c.rhs;
        if (c.op == CmpOp::kEq && !identical) return false;
        if (c.op == CmpOp::kNe && identical) return false;
        if (c.op == CmpOp::kLt) return false;
        if (c.op == CmpOp::kLe && !identical) return false;
        continue;
      }
      if (!EvalCmp(c.op, a, b)) return false;  // ranks compare like values
    }
    return true;
  }

  Status Recurse(size_t depth) {
    if (++nodes_ > cap_ * 64 + 4096) {
      return Status::ResourceExhausted("linearization enumeration node cap");
    }
    if (depth == order_.size()) {
      if (out_.size() >= cap_) {
        return Status::ResourceExhausted(
            "more than " + std::to_string(cap_) + " linearizations");
      }
      Linearization lin;
      lin.var_rank.assign(q_.num_vars(), -1);
      for (int i = 0; i < static_cast<int>(classes_.size()); ++i) {
        lin.rank_value.push_back(classes_[i].value);
        for (VarId v : classes_[i].vars) lin.var_rank[v] = i;
      }
      out_.push_back(std::move(lin));
      return Status::OK();
    }
    VarId v = order_[depth];
    // Option A: join an existing class.
    for (int i = 0; i < static_cast<int>(classes_.size()); ++i) {
      classes_[i].vars.push_back(v);
      placed_[v] = true;
      var_class_[v] = i;
      if (Consistent()) AQV_RETURN_NOT_OK(Recurse(depth + 1));
      placed_[v] = false;
      var_class_[v] = -1;
      classes_[i].vars.pop_back();
    }
    // Option B: open a new class in any gap.
    for (int g = 0; g <= static_cast<int>(classes_.size()); ++g) {
      classes_.insert(classes_.begin() + g, LinClass{std::nullopt, {v}});
      // Shift recorded classes at or after the gap.
      for (VarId w = 0; w < static_cast<VarId>(var_class_.size()); ++w) {
        if (placed_[w] && var_class_[w] >= g) ++var_class_[w];
      }
      placed_[v] = true;
      var_class_[v] = g;
      if (Consistent()) AQV_RETURN_NOT_OK(Recurse(depth + 1));
      placed_[v] = false;
      classes_.erase(classes_.begin() + g);
      for (VarId w = 0; w < static_cast<VarId>(var_class_.size()); ++w) {
        if (placed_[w] && var_class_[w] > g) --var_class_[w];
      }
      var_class_[v] = -1;
    }
    return Status::OK();
  }

  const Query& q_;
  uint64_t cap_;
  uint64_t nodes_ = 0;
  std::vector<LinClass> classes_;
  std::vector<VarId> order_;
  std::vector<bool> placed_;
  std::vector<int> var_class_;
  std::vector<Linearization> out_;
};

}  // namespace

Result<std::vector<Linearization>> EnumerateLinearizations(
    const Query& q, const std::vector<VarId>& vars_to_rank,
    const std::vector<int64_t>& spine_values, uint64_t cap) {
  LinEnumerator e(q, vars_to_rank, spine_values, cap);
  return e.Run();
}

// ---------------------------------------------------------------------------
// The containment test itself.
// ---------------------------------------------------------------------------

namespace {

// Variables of `sub` whose rank can influence either side of the test:
// sub's own comparison variables, plus any sub variable occurring at a
// (predicate, position) where a compared variable of some `super` occurs
// (an over-approximation of the possible homomorphism images).
std::vector<VarId> RelevantVars(const Query& sub,
                                const std::vector<const Query*>& supers) {
  std::set<std::pair<PredId, int>> positions;
  for (const Query* sp : supers) {
    std::set<VarId> compared;
    for (const Comparison& c : sp->comparisons()) {
      if (c.lhs.is_var()) compared.insert(c.lhs.var());
      if (c.rhs.is_var()) compared.insert(c.rhs.var());
    }
    for (const Atom& a : sp->body()) {
      for (int i = 0; i < a.arity(); ++i) {
        if (a.args[i].is_var() && compared.count(a.args[i].var())) {
          positions.insert({a.pred, i});
        }
      }
    }
  }
  std::set<VarId> rel;
  for (const Comparison& c : sub.comparisons()) {
    if (c.lhs.is_var()) rel.insert(c.lhs.var());
    if (c.rhs.is_var()) rel.insert(c.rhs.var());
  }
  for (const Atom& a : sub.body()) {
    for (int i = 0; i < a.arity(); ++i) {
      if (a.args[i].is_var() && positions.count({a.pred, i})) {
        rel.insert(a.args[i].var());
      }
    }
  }
  return std::vector<VarId>(rel.begin(), rel.end());
}

// Evaluates `super`'s comparisons under homomorphism h and linearization lin.
bool ComparisonsHold(const Query& super, const Query& sub,
                     const Substitution& h, const Linearization& lin) {
  const Catalog& cat = *sub.catalog();
  auto rank_of = [&](Term t, bool* symbolic, ConstId* sym_id) -> int {
    *symbolic = false;
    if (t.is_var()) return lin.var_rank[t.var()];
    auto v = NumericOf(cat, t.constant());
    if (!v.has_value()) {
      *symbolic = true;
      *sym_id = t.constant();
      return -1;
    }
    for (int i = 0; i < static_cast<int>(lin.rank_value.size()); ++i) {
      if (lin.rank_value[i].has_value() && *lin.rank_value[i] == *v) return i;
    }
    return -1;
  };
  for (const Comparison& c : super.comparisons()) {
    Term l = c.lhs.is_var() ? h.Get(c.lhs.var()) : c.lhs;
    Term r = c.rhs.is_var() ? h.Get(c.rhs.var()) : c.rhs;
    bool lsym = false, rsym = false;
    ConstId lid = -1, rid = -1;
    int rl = rank_of(l, &lsym, &lid);
    int rr = rank_of(r, &rsym, &rid);
    if (lsym || rsym) {
      bool identical = lsym && rsym && lid == rid;
      switch (c.op) {
        case CmpOp::kEq:
          if (!identical) return false;
          break;
        case CmpOp::kNe:
          if (identical) return false;
          break;
        case CmpOp::kLt:
          return false;
        case CmpOp::kLe:
          if (!identical) return false;
          break;
      }
      continue;
    }
    if (rl < 0 || rr < 0) return false;  // defensive: unranked image
    if (!EvalCmp(c.op, rl, rr)) return false;
  }
  return true;
}

// Rewrites `sub` identifying terms that share a rank under `lin`: each
// ranked variable becomes its class representative (the pinned constant if
// the class carries a value, else the smallest variable of the class). This
// is the canonical database of the linearization, reified as a query, so the
// homomorphism search sees e.g. r(X, Y) with X=Y forced as r(X, X).
Query CollapseByLinearization(const Query& sub, const Linearization& lin,
                              const std::map<int64_t, ConstId>& const_of) {
  int ranks = static_cast<int>(lin.rank_value.size());
  std::vector<Term> rep(ranks, Term::Var(-1));
  for (int r = 0; r < ranks; ++r) {
    if (lin.rank_value[r].has_value()) {
      auto it = const_of.find(*lin.rank_value[r]);
      if (it != const_of.end()) rep[r] = Term::Const(it->second);
    }
  }
  for (VarId v = sub.num_vars() - 1; v >= 0; --v) {
    int r = lin.var_rank[v];
    if (r >= 0 && !rep[r].is_const()) rep[r] = Term::Var(v);
  }
  auto map_term = [&](Term t) -> Term {
    if (!t.is_var()) return t;
    int r = lin.var_rank[t.var()];
    if (r < 0 || rep[r] == Term::Var(-1)) return t;
    return rep[r];
  };
  Query out(sub.catalog());
  for (int v = 0; v < sub.num_vars(); ++v) out.AddVariable(sub.var_name(v));
  Atom head = sub.head();
  for (Term& t : head.args) t = map_term(t);
  out.set_head(std::move(head));
  for (const Atom& a : sub.body()) {
    Atom na = a;
    for (Term& t : na.args) t = map_term(t);
    out.AddBodyAtom(std::move(na));
  }
  return out;
}

Result<bool> ContainedInAnyUnderLinearizations(
    const Query& sub, const std::vector<const Query*>& supers,
    const ContainmentOptions& options) {
  if (!ComparisonsSatisfiable(sub)) return true;

  std::map<int64_t, ConstId> const_of;
  CollectNumericConsts(sub, &const_of);
  for (const Query* sp : supers) CollectNumericConsts(*sp, &const_of);
  std::vector<int64_t> spine;
  for (const auto& [value, id] : const_of) spine.push_back(value);
  std::vector<VarId> relevant = RelevantVars(sub, supers);

  AQV_ASSIGN_OR_RETURN(
      std::vector<Linearization> lins,
      EnumerateLinearizations(sub, relevant, spine,
                              options.linearization_cap));
  HomSearchOptions hopts;
  hopts.node_budget = options.node_budget;
  for (const Linearization& lin : lins) {
    Query collapsed = CollapseByLinearization(sub, lin, const_of);
    bool found = false;
    for (const Query* sp : supers) {
      auto cb = [&](const Substitution& h) {
        if (ComparisonsHold(*sp, collapsed, h, lin)) {
          found = true;
          return false;  // stop enumeration
        }
        return true;
      };
      AQV_ASSIGN_OR_RETURN(int64_t n,
                           ForEachHomomorphism(*sp, collapsed, hopts, cb));
      (void)n;
      if (found) break;
    }
    if (!found) return false;
  }
  return true;
}

}  // namespace

Result<bool> ComparisonAwareIsContainedIn(const Query& sub, const Query& super,
                                          const ContainmentOptions& options) {
  return ContainedInAnyUnderLinearizations(sub, {&super}, options);
}

Result<bool> ComparisonAwareIsContainedInUnion(
    const Query& sub, const UnionQuery& super,
    const ContainmentOptions& options) {
  std::vector<const Query*> supers;
  supers.reserve(super.disjuncts.size());
  for (const Query& d : super.disjuncts) supers.push_back(&d);
  if (supers.empty()) return !ComparisonsSatisfiable(sub);
  return ContainedInAnyUnderLinearizations(sub, supers, options);
}

}  // namespace aqv
