/// \file
/// Umbrella header of the `containment` module: the decision procedures all
/// rewriting search rests on. IsContainedIn decides q1 ⊑ q2 via
/// Chandra-Merlin containment mappings (homomorphism.h) for comparison-free
/// CQs and via the complete linearization test (comparison_containment.h)
/// when comparisons are present; minimize.h computes cores. Invariants:
/// both queries must share a Catalog; every search is budgeted through
/// ContainmentOptions so callers stay total (kResourceExhausted, never a
/// hang) — the problems are NP-complete resp. Π²ₚ-hard, so budgets are load
/// bearing, not cosmetic.

#ifndef AQV_CONTAINMENT_CONTAINMENT_H_
#define AQV_CONTAINMENT_CONTAINMENT_H_

#include <cstdint>

#include "cq/catalog.h"
#include "cq/query.h"
#include "util/status.h"

namespace aqv {

class ContainmentOracle;

/// Options threaded through every containment decision.
struct ContainmentOptions {
  /// Backtracking budget per homomorphism search.
  uint64_t node_budget = 5'000'000;
  /// Cap on the number of linearizations enumerated by the comparison-aware
  /// test (see comparison_containment.h). The test is Π²ₚ-hard in general;
  /// the cap keeps callers total.
  uint64_t linearization_cap = 200'000;
  /// When non-null, IsContainedIn (and everything built on it) routes
  /// through this memoizing cache (see oracle.h). Not owned; the caller
  /// keeps it alive for the duration of the pipeline that shares it.
  ContainmentOracle* oracle = nullptr;
};

/// \brief Decides `sub ⊑ super`: every answer of `sub` is an answer of
/// `super` on every database.
///
/// Comparison-free pair: Chandra-Merlin containment mapping from `super`
/// into `sub`. If either query carries comparisons, delegates to the
/// complete linearization test (dense-order semantics; see
/// comparison_containment.h).
[[nodiscard]] Result<bool> IsContainedIn(const Query& sub, const Query& super,
                           const ContainmentOptions& options = {});

/// Decides `sub ≡ super` (mutual containment).
[[nodiscard]] Result<bool> AreEquivalent(const Query& a, const Query& b,
                           const ContainmentOptions& options = {});

/// CQ ⊑ UCQ. For comparison-free queries this holds iff `sub` is contained
/// in some single disjunct (Sagiv-Yannakakis); with comparisons the test
/// falls back to the linearization machinery, which checks each
/// linearization against the whole union.
[[nodiscard]] Result<bool> IsContainedInUnion(const Query& sub, const UnionQuery& super,
                                const ContainmentOptions& options = {});

/// UCQ ⊑ CQ: every disjunct must be contained.
[[nodiscard]] Result<bool> UnionIsContainedIn(const UnionQuery& sub, const Query& super,
                                const ContainmentOptions& options = {});

/// UCQ ⊑ UCQ: every disjunct of `sub` contained in the union `super`.
[[nodiscard]] Result<bool> UnionIsContainedInUnion(const UnionQuery& sub,
                                     const UnionQuery& super,
                                     const ContainmentOptions& options = {});

}  // namespace aqv

#endif  // AQV_CONTAINMENT_CONTAINMENT_H_
