#ifndef AQV_CONTAINMENT_MINIMIZE_H_
#define AQV_CONTAINMENT_MINIMIZE_H_

#include "containment/containment.h"
#include "cq/query.h"
#include "util/status.h"

namespace aqv {

/// \brief Computes the core of `q`: an equivalent query with a
/// subset-minimal body (Chandra-Merlin minimization).
///
/// Repeatedly drops a body atom whenever the reduced query is still
/// equivalent (only the reduced ⊑ original direction needs checking; the
/// other holds because dropping conjuncts relaxes a query). Duplicate atoms
/// are removed first. The result has its variable space compacted: unused
/// variables are gone and remaining ones are renumbered densely.
///
/// For comparison-carrying queries the equivalence checks run through the
/// comparison-aware machinery; comparisons themselves are preserved
/// verbatim (the core is computed on the relational part).
[[nodiscard]] Result<Query> Minimize(const Query& q, const ContainmentOptions& options = {});

/// Rebuilds `q` keeping only variables that occur in its head, body, or
/// comparisons, renumbered in order of first occurrence.
Query CompactVariables(const Query& q);

/// Returns true iff `q` equals its own core (no removable atom). Exposed for
/// tests and the LMSS search, which requires minimized inputs.
[[nodiscard]] Result<bool> IsMinimal(const Query& q, const ContainmentOptions& options = {});

/// \brief Minimizes a union of CQs: each disjunct is replaced by its core,
/// then disjuncts contained in another disjunct are dropped (keeping the
/// first representative of mutually-equivalent groups). The result is the
/// canonical minimal form of the union (Sagiv-Yannakakis).
[[nodiscard]] Result<UnionQuery> MinimizeUnion(const UnionQuery& u,
                                 const ContainmentOptions& options = {});

}  // namespace aqv

#endif  // AQV_CONTAINMENT_MINIMIZE_H_
