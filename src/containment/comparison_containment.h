#ifndef AQV_CONTAINMENT_COMPARISON_CONTAINMENT_H_
#define AQV_CONTAINMENT_COMPARISON_CONTAINMENT_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "cq/query.h"
#include "util/status.h"

namespace aqv {

struct ContainmentOptions;

/// \brief Complete containment test for CQs with built-in comparisons over a
/// dense ordered domain (Klug's linearization criterion):
///
///   sub ⊑ super  iff  for every total preorder λ of sub's terms consistent
///   with sub's comparisons, there is a containment mapping h from super
///   into sub whose image satisfies super's comparisons under λ.
///
/// The number of linearizations is the ordered-Bell-scale quantity that makes
/// this problem Π²ₚ-complete; `options.linearization_cap` bounds the
/// enumeration and the call fails with kResourceExhausted beyond it instead
/// of answering unsoundly.
///
/// Semantics note: the comparison domain is dense and unbounded (ℚ). Results
/// are sound for the integer-valued evaluation engine (a ⊑ over ℚ implies ⊑
/// over ℤ instances) but may report non-containment for pairs that are
/// contained only because of integer gaps (e.g. X < Y, Y < X+1).
[[nodiscard]] Result<bool> ComparisonAwareIsContainedIn(const Query& sub, const Query& super,
                                          const ContainmentOptions& options);

/// Union variant: checks each linearization of `sub` against all disjuncts.
[[nodiscard]] Result<bool> ComparisonAwareIsContainedInUnion(const Query& sub,
                                               const UnionQuery& super,
                                               const ContainmentOptions& options);

/// \brief Decides satisfiability of a conjunction of comparisons over a dense
/// ordered domain, in polynomial time.
///
/// Collapses `=` classes (union-find), then looks for a `<` edge inside a
/// strongly connected component of the ≤/< constraint graph, a `!=` within a
/// forced-equal class, or two distinct constants forced equal.
bool ComparisonsSatisfiable(const Query& q);

/// \brief Equality-normalizes `q`: applies every `=` constraint by
/// collapsing variables (var=var) or substituting constants (var=const),
/// removing the processed equalities. Returns the rewritten query.
///
/// If the equalities are directly contradictory (const=const with different
/// values), sets *unsatisfiable and the returned query is `q` unchanged.
Query NormalizeEqualities(const Query& q, bool* unsatisfiable);

/// \brief One total preorder over a query's terms: `var_rank[v]` gives the
/// rank of ranked variables (-1 for variables outside the ranked set), and
/// `rank_constant[r]` pins rank r to a numeric constant value (nullopt for
/// ranks holding only variables). Equal ranks mean identified terms; rank
/// order is value order. Exposed for testing and for the T5 bench.
struct Linearization {
  std::vector<int> var_rank;
  std::vector<std::optional<int64_t>> rank_value;
};

/// Enumerates all linearizations of `vars_to_rank` (interleaved with the
/// distinct numeric constants `spine_values`, pre-sorted ascending)
/// consistent with q's comparisons. Variables outside `vars_to_rank` must
/// not appear in q's comparisons. Stops past `cap` completed linearizations
/// with kResourceExhausted.
[[nodiscard]] Result<std::vector<Linearization>> EnumerateLinearizations(
    const Query& q, const std::vector<VarId>& vars_to_rank,
    const std::vector<int64_t>& spine_values, uint64_t cap);

}  // namespace aqv

#endif  // AQV_CONTAINMENT_COMPARISON_CONTAINMENT_H_
