#include "containment/minimize.h"

#include <algorithm>
#include <vector>

namespace aqv {

Query CompactVariables(const Query& q) {
  std::vector<int> remap(q.num_vars(), -1);
  Query out(q.catalog());
  auto map_term = [&](Term t) -> Term {
    if (t.is_const()) return t;
    if (remap[t.var()] == -1) {
      remap[t.var()] = out.AddVariable(q.var_name(t.var()));
    }
    return Term::Var(remap[t.var()]);
  };
  Atom head = q.head();
  for (Term& t : head.args) t = map_term(t);
  out.set_head(std::move(head));
  for (const Atom& a : q.body()) {
    Atom na = a;
    for (Term& t : na.args) t = map_term(t);
    out.AddBodyAtom(std::move(na));
  }
  for (const Comparison& c : q.comparisons()) {
    out.AddComparison(Comparison(c.op, map_term(c.lhs), map_term(c.rhs)));
  }
  return out;
}

namespace {

// Variables that must stay bound by the body: head vars and comparison vars.
std::vector<bool> RequiredVars(const Query& q) {
  std::vector<bool> req(q.num_vars(), false);
  for (Term t : q.head().args) {
    if (t.is_var()) req[t.var()] = true;
  }
  for (const Comparison& c : q.comparisons()) {
    if (c.lhs.is_var()) req[c.lhs.var()] = true;
    if (c.rhs.is_var()) req[c.rhs.var()] = true;
  }
  return req;
}

// True if every required variable still occurs in some body atom.
bool StillSafe(const Query& q, const std::vector<bool>& required) {
  std::vector<bool> bound(q.num_vars(), false);
  for (const Atom& a : q.body()) {
    for (Term t : a.args) {
      if (t.is_var()) bound[t.var()] = true;
    }
  }
  for (int v = 0; v < q.num_vars(); ++v) {
    if (required[v] && !bound[v]) return false;
  }
  return true;
}

}  // namespace

Result<Query> Minimize(const Query& q, const ContainmentOptions& options) {
  Query current = q;

  // Set-semantics cleanup: drop exact-duplicate atoms first.
  {
    std::vector<Atom> dedup;
    for (const Atom& a : current.body()) {
      if (std::find(dedup.begin(), dedup.end(), a) == dedup.end()) {
        dedup.push_back(a);
      }
    }
    if (dedup.size() != current.body().size()) {
      Query next(current.catalog());
      for (int v = 0; v < current.num_vars(); ++v) {
        next.AddVariable(current.var_name(v));
      }
      next.set_head(current.head());
      for (Atom& a : dedup) next.AddBodyAtom(std::move(a));
      for (const Comparison& c : current.comparisons()) next.AddComparison(c);
      current = std::move(next);
    }
  }

  std::vector<bool> required = RequiredVars(current);
  bool changed = true;
  while (changed) {
    changed = false;
    for (int i = 0; i < static_cast<int>(current.body().size()); ++i) {
      if (current.body().size() == 1) break;  // keep at least one atom
      Query candidate = current;
      candidate.RemoveBodyAtom(i);
      if (!StillSafe(candidate, required)) continue;
      // candidate ⊒ current always; equivalence needs candidate ⊑ current.
      AQV_ASSIGN_OR_RETURN(bool contained,
                           IsContainedIn(candidate, current, options));
      if (contained) {
        current = std::move(candidate);
        changed = true;
        break;
      }
    }
  }
  return CompactVariables(current);
}

Result<bool> IsMinimal(const Query& q, const ContainmentOptions& options) {
  AQV_ASSIGN_OR_RETURN(Query m, Minimize(q, options));
  return m.body().size() == q.body().size();
}

Result<UnionQuery> MinimizeUnion(const UnionQuery& u,
                                 const ContainmentOptions& options) {
  std::vector<Query> cores;
  cores.reserve(u.disjuncts.size());
  for (const Query& d : u.disjuncts) {
    AQV_ASSIGN_OR_RETURN(Query core, Minimize(d, options));
    cores.push_back(std::move(core));
  }
  std::vector<bool> dead(cores.size(), false);
  for (size_t i = 0; i < cores.size(); ++i) {
    if (dead[i]) continue;
    for (size_t j = 0; j < cores.size(); ++j) {
      if (i == j || dead[j]) continue;
      AQV_ASSIGN_OR_RETURN(bool sub, IsContainedIn(cores[i], cores[j], options));
      if (!sub) continue;
      AQV_ASSIGN_OR_RETURN(bool back, IsContainedIn(cores[j], cores[i], options));
      if (!back || j < i) {
        dead[i] = true;
        break;
      }
    }
  }
  UnionQuery out;
  for (size_t i = 0; i < cores.size(); ++i) {
    if (!dead[i]) out.disjuncts.push_back(std::move(cores[i]));
  }
  return out;
}

}  // namespace aqv
