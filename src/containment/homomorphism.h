#ifndef AQV_CONTAINMENT_HOMOMORPHISM_H_
#define AQV_CONTAINMENT_HOMOMORPHISM_H_

#include <cstdint>
#include <functional>

#include "cq/query.h"
#include "cq/substitution.h"
#include "util/status.h"

namespace aqv {

/// Options for containment-mapping (homomorphism) search.
struct HomSearchOptions {
  /// Backtracking step budget; exceeded -> kResourceExhausted. Containment
  /// of CQs is NP-complete, so an explicit budget keeps every caller total.
  uint64_t node_budget = 5'000'000;

  /// Require head(from) to map onto head(to) argument-wise (the containment
  /// -mapping condition). Disable for body-only homomorphisms, e.g. when
  /// generating candidate view tuples over the canonical database.
  bool map_head = true;

  /// Dynamic fail-first atom ordering (pick the unmapped atom with the
  /// fewest compatible targets at every step). Disable to process atoms in
  /// body order — the ablation knob behind bench_a1_ablations, showing why
  /// the default matters on self-join-heavy queries.
  bool dynamic_ordering = true;
};

/// \brief Searches for a containment mapping h : vars(from) -> terms(to)
/// with h(head(from)) = head(to) (if map_head) and h(a) ∈ body(to) for every
/// a ∈ body(from). By Chandra-Merlin, such an h exists iff to ⊑ from for
/// comparison-free CQs.
///
/// If found and `out` is non-null, *out receives the mapping (sized
/// from.num_vars()). Comparisons are ignored here; comparison-aware
/// containment lives in comparison_containment.h.
[[nodiscard]] Result<bool> FindHomomorphism(const Query& from, const Query& to,
                              const HomSearchOptions& options = {},
                              Substitution* out = nullptr);

/// Invokes `cb` for every containment mapping from `from` into `to` (in an
/// unspecified but deterministic order). `cb` returns true to continue
/// enumerating, false to stop early. Returns the number of mappings visited.
[[nodiscard]] Result<int64_t> ForEachHomomorphism(
    const Query& from, const Query& to, const HomSearchOptions& options,
    const std::function<bool(const Substitution&)>& cb);

}  // namespace aqv

#endif  // AQV_CONTAINMENT_HOMOMORPHISM_H_
