#include "containment/oracle.h"

namespace aqv {

namespace {

uint64_t PairKey(uint64_t sub_fp, uint64_t super_fp) {
  // Asymmetric combine: (a, b) and (b, a) are distinct directions.
  uint64_t h = sub_fp * 0x9e3779b97f4a7c15ULL;
  h ^= super_fp + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  return h;
}

}  // namespace

OracleStats operator-(const OracleStats& after, const OracleStats& before) {
  OracleStats d;
  d.hits = after.hits - before.hits;
  d.misses = after.misses - before.misses;
  d.inserts = after.inserts - before.inserts;
  d.capacity_rejects = after.capacity_rejects - before.capacity_rejects;
  d.confirm_failures = after.confirm_failures - before.confirm_failures;
  return d;
}

const ContainmentOracle::FormEntry& ContainmentOracle::FormOf(
    const Query& q, FormEntry* scratch) {
  // Keyed by the cheap order-sensitive hash of the *raw* query; a verbatim
  // structural match (operator==, plus catalog identity) is required before
  // a cached form is reused, so hash collisions cost a recanonicalization,
  // never a wrong form.
  uint64_t raw_hash = StructuralHash(q);
  auto it = forms_.find(raw_hash);
  if (it != forms_.end()) {
    for (const std::unique_ptr<FormEntry>& e : it->second) {
      if (e->raw.catalog() == q.catalog() && e->raw == q) return *e;
    }
  }
  Query form = q.CanonicalForm();
  uint64_t form_hash = StructuralHash(form);
  if (form_entries_ >= max_entries_) {
    // Past the budget: compute without caching (the form cache honours the
    // same entry budget as the decision cache).
    *scratch = FormEntry{q, std::move(form), form_hash};
    return *scratch;
  }
  auto entry =
      std::make_unique<FormEntry>(FormEntry{q, std::move(form), form_hash});
  const FormEntry& ref = *entry;
  forms_[raw_hash].push_back(std::move(entry));
  ++form_entries_;
  return ref;
}

Result<bool> ContainmentOracle::IsContainedIn(
    const Query& sub, const Query& super, const ContainmentOptions& options) {
  // Entries are heap-allocated, so these references survive each other.
  FormEntry sub_scratch, super_scratch;
  const FormEntry& sub_entry = FormOf(sub, &sub_scratch);
  const FormEntry& super_entry = FormOf(super, &super_scratch);
  const Query& sub_form = sub_entry.form;
  const Query& super_form = super_entry.form;
  uint64_t key = PairKey(sub_entry.form_hash, super_entry.form_hash);

  auto it = cache_.find(key);
  if (it != cache_.end()) {
    for (const Entry& e : it->second) {
      if (e.catalog == sub.catalog() && e.sub_form == sub_form &&
          e.super_form == super_form) {
        ++stats_.hits;
        return e.contained;
      }
      ++stats_.confirm_failures;
    }
  }
  ++stats_.misses;

  ContainmentOptions raw = options;
  raw.oracle = nullptr;
  Result<bool> decided = aqv::IsContainedIn(sub, super, raw);
  if (!decided.ok()) return decided;  // errors (budget overruns) not cached

  if (entries_ >= max_entries_) {
    ++stats_.capacity_rejects;
  } else {
    // Copies, not moves: the forms may live in (and stay in) the form cache.
    Entry e{sub.catalog(), sub_form, super_form, decided.value()};
    cache_[key].push_back(std::move(e));
    ++entries_;
    ++stats_.inserts;
  }
  return decided;
}

void ContainmentOracle::Clear() {
  cache_.clear();
  forms_.clear();
  entries_ = 0;
  form_entries_ = 0;
}

}  // namespace aqv
