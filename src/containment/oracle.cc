#include "containment/oracle.h"

namespace aqv {

namespace {

uint64_t PairKey(uint64_t sub_fp, uint64_t super_fp) {
  // Asymmetric combine: (a, b) and (b, a) are distinct directions.
  uint64_t h = sub_fp * 0x9e3779b97f4a7c15ULL;
  h ^= super_fp + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  return h;
}

size_t RoundUpPow2(size_t n) {
  size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

}  // namespace

OracleStats operator-(const OracleStats& after, const OracleStats& before) {
  OracleStats d;
  d.hits = after.hits - before.hits;
  d.misses = after.misses - before.misses;
  d.inserts = after.inserts - before.inserts;
  d.capacity_rejects = after.capacity_rejects - before.capacity_rejects;
  d.confirm_failures = after.confirm_failures - before.confirm_failures;
  return d;
}

ContainmentOracle::ContainmentOracle(size_t max_entries, size_t num_shards)
    : max_entries_(max_entries) {
  if (num_shards < 1) num_shards = 1;
  if (num_shards > 256) num_shards = 256;
  num_shards = RoundUpPow2(num_shards);
  shards_.reserve(num_shards);
  for (size_t i = 0; i < num_shards; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
  // Ceil split keeps the total budget ≥ max_entries; with one shard the
  // budget (and thus capacity behavior) is exactly the unsharded oracle's.
  per_shard_budget_ = (max_entries + num_shards - 1) / num_shards;
  shard_mask_ = static_cast<uint64_t>(num_shards - 1);
  unsigned bits = 0;
  for (size_t p = num_shards; p > 1; p >>= 1) ++bits;
  shard_shift_ = bits == 0 ? 0 : 64 - bits;
}

const ContainmentOracle::FormEntry& ContainmentOracle::FormOf(
    const Query& q, FormEntry* scratch) {
  // Keyed by the cheap order-sensitive hash of the *raw* catalog-
  // independent encoding; a verbatim encoding match is required before a
  // cached canonical encoding is reused, so hash collisions cost a
  // recanonicalization, never a wrong form. The raw encoding identifies
  // the query across catalogs — no catalog pointer is consulted.
  std::vector<uint64_t> raw = GlobalRawEncoding(q);
  uint64_t raw_hash = HashWords(raw);
  Shard& shard = ShardFor(raw_hash);
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.forms.find(raw_hash);
    if (it != shard.forms.end()) {
      for (const std::unique_ptr<FormEntry>& e : it->second) {
        // Entries are heap-allocated and never evicted before Clear(), so
        // the reference stays valid after the lock is released.
        if (e->raw == raw) return *e;
      }
    }
  }
  // Canonicalization is the expensive step — run it outside the lock.
  std::vector<uint64_t> canon = GlobalCanonicalEncoding(q);
  uint64_t canon_hash = HashWords(canon);
  std::lock_guard<std::mutex> lock(shard.mu);
  // Another thread may have inserted the same raw query while we
  // canonicalized; reuse its entry rather than growing the bucket.
  auto it = shard.forms.find(raw_hash);
  if (it != shard.forms.end()) {
    for (const std::unique_ptr<FormEntry>& e : it->second) {
      if (e->raw == raw) return *e;
    }
  }
  if (shard.form_entries >= per_shard_budget_) {
    // Past the budget: compute without caching (the form cache honours the
    // same entry budget as the decision cache).
    *scratch = FormEntry{std::move(raw), std::move(canon), canon_hash};
    return *scratch;
  }
  auto entry = std::make_unique<FormEntry>(
      FormEntry{std::move(raw), std::move(canon), canon_hash});
  const FormEntry& ref = *entry;
  shard.forms[raw_hash].push_back(std::move(entry));
  ++shard.form_entries;
  return ref;
}

Result<bool> ContainmentOracle::IsContainedIn(
    const Query& sub, const Query& super, const ContainmentOptions& options) {
  // Form entries are heap-allocated, so these references survive each other
  // and outlive their shard locks.
  FormEntry sub_scratch, super_scratch;
  const FormEntry& sub_entry = FormOf(sub, &sub_scratch);
  const FormEntry& super_entry = FormOf(super, &super_scratch);
  const std::vector<uint64_t>& sub_canon = sub_entry.canon;
  const std::vector<uint64_t>& super_canon = super_entry.canon;
  uint64_t key = PairKey(sub_entry.canon_hash, super_entry.canon_hash);
  Shard& shard = ShardFor(key);

  {
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.cache.find(key);
    if (it != shard.cache.end()) {
      for (const Entry& e : it->second) {
        if (e.sub_canon == sub_canon && e.super_canon == super_canon) {
          shard.hits.fetch_add(1, std::memory_order_relaxed);
          return e.contained;
        }
        shard.confirm_failures.fetch_add(1, std::memory_order_relaxed);
      }
    }
  }
  shard.misses.fetch_add(1, std::memory_order_relaxed);

  // The raw decision — the NP-hard part — runs with no lock held.
  ContainmentOptions raw = options;
  raw.oracle = nullptr;
  Result<bool> decided = aqv::IsContainedIn(sub, super, raw);
  if (!decided.ok()) return decided;  // errors (budget overruns) not cached

  std::lock_guard<std::mutex> lock(shard.mu);
  // Re-probe for a concurrent insert of the same pair (confirm_failures is
  // not re-counted: the pre-compute scan already charged this bucket, and
  // the single-threaded totals must match the unsharded oracle's exactly).
  auto it = shard.cache.find(key);
  if (it != shard.cache.end()) {
    for (const Entry& e : it->second) {
      if (e.sub_canon == sub_canon && e.super_canon == super_canon) {
        return decided;  // same pure decision; don't grow the bucket
      }
    }
  }
  if (shard.entries >= per_shard_budget_) {
    shard.capacity_rejects.fetch_add(1, std::memory_order_relaxed);
  } else {
    // Copies, not moves: the encodings may live in (and stay in) the form
    // cache.
    Entry e{sub_canon, super_canon, decided.value()};
    shard.cache[key].push_back(std::move(e));
    ++shard.entries;
    shard.inserts.fetch_add(1, std::memory_order_relaxed);
  }
  return decided;
}

OracleStats ContainmentOracle::stats() const {
  OracleStats s;
  for (const std::unique_ptr<Shard>& shard : shards_) {
    s.hits += shard->hits.load(std::memory_order_relaxed);
    s.misses += shard->misses.load(std::memory_order_relaxed);
    s.inserts += shard->inserts.load(std::memory_order_relaxed);
    s.capacity_rejects +=
        shard->capacity_rejects.load(std::memory_order_relaxed);
    s.confirm_failures +=
        shard->confirm_failures.load(std::memory_order_relaxed);
  }
  return s;
}

void ContainmentOracle::ResetStats() {
  for (const std::unique_ptr<Shard>& shard : shards_) {
    shard->hits.store(0, std::memory_order_relaxed);
    shard->misses.store(0, std::memory_order_relaxed);
    shard->inserts.store(0, std::memory_order_relaxed);
    shard->capacity_rejects.store(0, std::memory_order_relaxed);
    shard->confirm_failures.store(0, std::memory_order_relaxed);
  }
}

size_t ContainmentOracle::size() const {
  size_t total = 0;
  for (const std::unique_ptr<Shard>& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    total += shard->entries;
  }
  return total;
}

void ContainmentOracle::Clear() {
  for (const std::unique_ptr<Shard>& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    shard->cache.clear();
    shard->forms.clear();
    shard->entries = 0;
    shard->form_entries = 0;
  }
}

}  // namespace aqv
