#include "containment/containment.h"

#include "containment/comparison_containment.h"
#include "containment/homomorphism.h"
#include "containment/oracle.h"

namespace aqv {

namespace {

bool AnyComparisons(const Query& a, const Query& b) {
  return a.has_comparisons() || b.has_comparisons();
}

bool AnyComparisons(const Query& a, const UnionQuery& u) {
  if (a.has_comparisons()) return true;
  for (const Query& d : u.disjuncts) {
    if (d.has_comparisons()) return true;
  }
  return false;
}

}  // namespace

Result<bool> IsContainedIn(const Query& sub, const Query& super,
                           const ContainmentOptions& options) {
  if (options.oracle != nullptr) {
    return options.oracle->IsContainedIn(sub, super, options);
  }
  if (!AnyComparisons(sub, super)) {
    HomSearchOptions hopts;
    hopts.node_budget = options.node_budget;
    return FindHomomorphism(super, sub, hopts);
  }
  return ComparisonAwareIsContainedIn(sub, super, options);
}

Result<bool> AreEquivalent(const Query& a, const Query& b,
                           const ContainmentOptions& options) {
  AQV_ASSIGN_OR_RETURN(bool ab, IsContainedIn(a, b, options));
  if (!ab) return false;
  return IsContainedIn(b, a, options);
}

Result<bool> IsContainedInUnion(const Query& sub, const UnionQuery& super,
                                const ContainmentOptions& options) {
  if (super.empty()) {
    // Contained in the empty union only if `sub` is unsatisfiable.
    return !ComparisonsSatisfiable(sub);
  }
  if (!AnyComparisons(sub, super)) {
    // Sagiv-Yannakakis: containment in a union of CQs is witnessed by a
    // single disjunct.
    for (const Query& d : super.disjuncts) {
      AQV_ASSIGN_OR_RETURN(bool in, IsContainedIn(sub, d, options));
      if (in) return true;
    }
    return false;
  }
  return ComparisonAwareIsContainedInUnion(sub, super, options);
}

Result<bool> UnionIsContainedIn(const UnionQuery& sub, const Query& super,
                                const ContainmentOptions& options) {
  for (const Query& d : sub.disjuncts) {
    AQV_ASSIGN_OR_RETURN(bool in, IsContainedIn(d, super, options));
    if (!in) return false;
  }
  return true;
}

Result<bool> UnionIsContainedInUnion(const UnionQuery& sub,
                                     const UnionQuery& super,
                                     const ContainmentOptions& options) {
  for (const Query& d : sub.disjuncts) {
    AQV_ASSIGN_OR_RETURN(bool in, IsContainedInUnion(d, super, options));
    if (!in) return false;
  }
  return true;
}

}  // namespace aqv
