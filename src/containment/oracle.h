/// \file
/// Memoized containment oracle: the shared cache every rewriting engine
/// routes its IsContainedIn / AreEquivalent calls through. Entries are
/// keyed by 64-bit hashes of the (sub, super) *catalog-independent
/// canonical encodings* (GlobalCanonicalEncoding in cq/query.h) and
/// confirmed by exact encoding comparison, so a cache hit is always sound
/// — hash collisions degrade to misses, never to wrong answers. Because
/// the encodings name predicates and constants by their process-global
/// interned ids (cq/global_symbols.h) rather than catalog-local dense ids,
/// entries carry no catalog pointer and survive the catalogs that produced
/// them: one server-lifetime oracle soundly serves every short-lived
/// per-connection catalog, and structurally-identical queries parsed into
/// different catalogs hit each other's entries. Wire an oracle into a
/// pipeline by setting ContainmentOptions::oracle; every call site that
/// threads those options (minimization, candidate verification,
/// subsumption pruning, the engine searches) then shares one cache.
///
/// Thread safety: the oracle is internally sharded — both the form cache
/// and the decision cache are sliced by fingerprint across `num_shards`
/// shards, each guarded by its own mutex and holding its own slice of the
/// entry budget — so any number of threads may call IsContainedIn on one
/// shared oracle concurrently (the service layer in src/service/ does
/// exactly that). Stats counters are relaxed atomics: exact under a
/// single thread, and never torn (only momentarily inconsistent relative
/// to each other) under many. Clear() and ResetStats() are the only
/// exceptions: they must not race concurrent lookups.

#ifndef AQV_CONTAINMENT_ORACLE_H_
#define AQV_CONTAINMENT_ORACLE_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "containment/containment.h"
#include "cq/query.h"
#include "util/status.h"

namespace aqv {

/// Hit/miss/budget counters of one ContainmentOracle (a plain-value
/// snapshot; the live counters inside the oracle are per-shard atomics).
struct OracleStats {
  /// Lookups answered from the cache.
  uint64_t hits = 0;
  /// Lookups that fell through to a real containment decision.
  uint64_t misses = 0;
  /// Entries added to the cache (misses minus capacity rejections and
  /// non-OK decisions, which are never cached).
  uint64_t inserts = 0;
  /// Results not cached because the shard's entry budget was full.
  uint64_t capacity_rejects = 0;
  /// Bucket probes whose key hash matched but whose canonical-encoding
  /// confirmation failed (true 64-bit collisions or same-key distinct
  /// pairs) — the soundness guard firing.
  uint64_t confirm_failures = 0;

  uint64_t lookups() const { return hits + misses; }
  double hit_rate() const {
    return lookups() == 0 ? 0.0 : static_cast<double>(hits) / lookups();
  }
};

/// Counter-wise difference (for per-request deltas of a shared oracle).
OracleStats operator-(const OracleStats& after, const OracleStats& before);

/// \brief Memoizes containment decisions across a rewriting session — or a
/// whole server lifetime — safely shareable across threads and across
/// catalogs.
///
/// The key of a (sub, super) pair combines the hashes of the two
/// catalog-independent canonical encodings; each bucket holds the
/// encodings of the pairs that produced it, so renamings, body
/// reorderings, *and re-parses into fresh catalogs* of an already-decided
/// pair hit without a new homomorphism search. Only OK results are cached
/// — kResourceExhausted under one budget must stay retryable under
/// another.
///
/// Sharding: shard index = key >> (64 - log2(num_shards_rounded_up)), i.e.
/// the top key bits slice both caches. With `num_shards == 1` (the
/// default) behavior — decisions, stats totals, capacity behavior — is
/// identical to the pre-sharding single-threaded oracle. With N shards the
/// entry budget is split evenly (ceil(max_entries / N) per shard), so
/// capacity_rejects can differ across shard counts once a shard fills;
/// decisions never differ (the cache is pure).
///
/// Lifetime: entries reference no catalog (symbols appear as process-global
/// interned ids), so catalogs may be created and destroyed freely while an
/// oracle lives — the former catalogs-must-outlive-the-oracle contract is
/// gone. Soundness across catalogs: equal canonical encodings imply the
/// queries are isomorphic under the meaning-preserving symbol bijection
/// ((name, arity) for predicates, source text for constants), and
/// containment is invariant under that bijection.
class ContainmentOracle {
 public:
  /// `max_entries` bounds total cache growth across all shards; past a
  /// shard's slice of it, results are still computed and returned but no
  /// longer cached (capacity_rejects counts them). `num_shards` is clamped
  /// to [1, 256] and rounded up to a power of two.
  explicit ContainmentOracle(size_t max_entries = size_t{1} << 20,
                             size_t num_shards = 1);

  ContainmentOracle(const ContainmentOracle&) = delete;
  ContainmentOracle& operator=(const ContainmentOracle&) = delete;

  /// Memoized `sub ⊑ super`. `options.oracle` is ignored here (the raw
  /// decision always runs uncached; no recursion). Equivalence and the
  /// union variants need no oracle entry points: the free functions route
  /// through here whenever ContainmentOptions::oracle is set. Safe to call
  /// from any number of threads concurrently.
  [[nodiscard]] Result<bool> IsContainedIn(const Query& sub, const Query& super,
                             const ContainmentOptions& options);

  /// Aggregated snapshot of the per-shard atomic counters. Exact when no
  /// lookup is in flight; under concurrency each counter is itself exact
  /// (relaxed atomic), but the snapshot may straddle an in-flight lookup.
  OracleStats stats() const;
  /// Zeroes the counters. Must not race concurrent lookups.
  void ResetStats();

  /// Number of cached entries (summed across shards).
  size_t size() const;
  size_t max_entries() const { return max_entries_; }
  size_t num_shards() const { return shards_.size(); }

  /// Drops all entries (stats are kept; ResetStats clears those). Must not
  /// race concurrent lookups: FormOf references handed out earlier die.
  void Clear();

 private:
  /// One memoized decision: the catalog-independent canonical encodings of
  /// the pair (the confirmation key — plain word-vector equality, no
  /// catalog pointer) and the cached verdict.
  struct Entry {
    std::vector<uint64_t> sub_canon;
    std::vector<uint64_t> super_canon;
    bool contained;
  };

  /// One canonicalization memo: the verbatim (raw) encoding identifying
  /// the exact input query, its canonical encoding, and the canonical
  /// hash, cached so hits pay neither re-canonicalization nor re-hash.
  struct FormEntry {
    std::vector<uint64_t> raw;
    std::vector<uint64_t> canon;
    uint64_t canon_hash;
  };

  /// One lock domain: a slice of the form cache and of the decision cache,
  /// with its own share of the entry budget. Heap-allocated (the mutex
  /// pins it) and padded-by-allocation against false sharing.
  struct Shard {
    mutable std::mutex mu;
    std::unordered_map<uint64_t, std::vector<std::unique_ptr<FormEntry>>>
        forms;
    std::unordered_map<uint64_t, std::vector<Entry>> cache;
    size_t form_entries = 0;
    size_t entries = 0;
    std::atomic<uint64_t> hits{0};
    std::atomic<uint64_t> misses{0};
    std::atomic<uint64_t> inserts{0};
    std::atomic<uint64_t> capacity_rejects{0};
    std::atomic<uint64_t> confirm_failures{0};
  };

  Shard& ShardFor(uint64_t key) const {
    // Top bits: the keys are well-mixed 64-bit hashes, and the low bits
    // already pick the unordered_map bucket inside the shard.
    return *shards_[(key >> shard_shift_) & shard_mask_];
  }

  /// Canonical encoding (plus its hash) of `q`, served from the sharded
  /// form cache when the exact same query (verbatim raw-encoding match,
  /// across any catalog) was canonicalized before — the common case for
  /// the fixed outer query and for recurring expansions. The returned
  /// reference is stable until Clear() (entries are heap-allocated and
  /// never evicted); past the shard's entry budget the encoding is
  /// computed into `*scratch` instead.
  const FormEntry& FormOf(const Query& q, FormEntry* scratch);

  std::vector<std::unique_ptr<Shard>> shards_;
  size_t max_entries_;
  size_t per_shard_budget_;
  uint64_t shard_mask_;
  unsigned shard_shift_;
};

}  // namespace aqv

#endif  // AQV_CONTAINMENT_ORACLE_H_
