/// \file
/// Memoized containment oracle: the shared cache every rewriting engine
/// routes its IsContainedIn / AreEquivalent calls through. Entries are
/// keyed by 64-bit structural fingerprints of the (sub, super) canonical
/// forms and confirmed by exact canonical-form comparison, so a cache hit
/// is always sound — fingerprint collisions degrade to misses, never to
/// wrong answers. Wire an oracle into a pipeline by setting
/// ContainmentOptions::oracle; every call site that threads those options
/// (minimization, candidate verification, subsumption pruning, the engine
/// searches) then shares one cache. Not thread-safe: one oracle per
/// rewriting session.

#ifndef AQV_CONTAINMENT_ORACLE_H_
#define AQV_CONTAINMENT_ORACLE_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "containment/containment.h"
#include "cq/query.h"
#include "util/status.h"

namespace aqv {

/// Hit/miss/budget counters of one ContainmentOracle.
struct OracleStats {
  /// Lookups answered from the cache.
  uint64_t hits = 0;
  /// Lookups that fell through to a real containment decision.
  uint64_t misses = 0;
  /// Entries added to the cache (misses minus capacity rejections and
  /// non-OK decisions, which are never cached).
  uint64_t inserts = 0;
  /// Results not cached because the entry budget (max_entries) was full.
  uint64_t capacity_rejects = 0;
  /// Bucket probes whose fingerprint matched but whose canonical-form
  /// confirmation failed (true 64-bit collisions or same-key distinct
  /// pairs) — the soundness guard firing.
  uint64_t confirm_failures = 0;

  uint64_t lookups() const { return hits + misses; }
  double hit_rate() const {
    return lookups() == 0 ? 0.0 : static_cast<double>(hits) / lookups();
  }
};

/// Counter-wise difference (for per-request deltas of a shared oracle).
OracleStats operator-(const OracleStats& after, const OracleStats& before);

/// \brief Memoizes containment decisions across a rewriting session.
///
/// The key of a (sub, super) pair combines Fingerprint(sub) and
/// Fingerprint(super); each bucket holds the canonical forms of the pairs
/// that produced it, so renamings and body reorderings of an already-decided
/// pair hit without a new homomorphism search. Only OK results are cached —
/// kResourceExhausted under one budget must stay retryable under another.
///
/// Catalogs are identified by pointer: every Catalog whose queries pass
/// through an oracle must outlive it (or be separated by a Clear()). A
/// catalog destroyed and reallocated at the same address with different
/// predicate meanings would otherwise match stale entries.
class ContainmentOracle {
 public:
  /// `max_entries` bounds cache growth; past it, results are still computed
  /// and returned but no longer cached (capacity_rejects counts them).
  explicit ContainmentOracle(size_t max_entries = size_t{1} << 20)
      : max_entries_(max_entries) {}

  /// Memoized `sub ⊑ super`. `options.oracle` is ignored here (the raw
  /// decision always runs uncached; no recursion). Equivalence and the
  /// union variants need no oracle entry points: the free functions route
  /// through here whenever ContainmentOptions::oracle is set.
  Result<bool> IsContainedIn(const Query& sub, const Query& super,
                             const ContainmentOptions& options);

  const OracleStats& stats() const { return stats_; }
  void ResetStats() { stats_ = OracleStats{}; }

  /// Number of cached entries.
  size_t size() const { return entries_; }
  size_t max_entries() const { return max_entries_; }

  /// Drops all entries (stats are kept; ResetStats clears those).
  void Clear();

 private:
  struct Entry {
    const Catalog* catalog;
    Query sub_form;
    Query super_form;
    bool contained;
  };

  struct FormEntry {
    Query raw;
    Query form;
    /// StructuralHash(form), cached so hits pay no re-hash.
    uint64_t form_hash;
  };

  /// Canonical form (plus its hash) of `q`, served from the form cache when
  /// the exact same query (verbatim structural match) was canonicalized
  /// before — the common case for the fixed outer query and for recurring
  /// expansions. The returned reference is stable across further FormOf
  /// calls (entries are heap-allocated); past the entry budget the form is
  /// computed into `*scratch` instead of cached.
  const FormEntry& FormOf(const Query& q, FormEntry* scratch);

  std::unordered_map<uint64_t, std::vector<std::unique_ptr<FormEntry>>>
      forms_;
  std::unordered_map<uint64_t, std::vector<Entry>> cache_;
  size_t form_entries_ = 0;
  size_t entries_ = 0;
  size_t max_entries_;
  OracleStats stats_;
};

}  // namespace aqv

#endif  // AQV_CONTAINMENT_ORACLE_H_
