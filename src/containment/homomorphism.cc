#include "containment/homomorphism.h"

#include <algorithm>
#include <utility>
#include <vector>

namespace aqv {

namespace {

/// Backtracking engine shared by the find-one and for-each entry points.
class HomSearch {
 public:
  HomSearch(const Query& from, const Query& to, const HomSearchOptions& opts,
            std::function<bool(const Substitution&)> cb)
      : from_(from),
        to_(to),
        opts_(opts),
        cb_(std::move(cb)),
        subst_(from.num_vars()) {
    // Index target atoms by predicate for candidate generation.
    by_pred_.resize(to.catalog()->num_predicates());
    for (int i = 0; i < static_cast<int>(to_.body().size()); ++i) {
      PredId p = to_.body()[i].pred;
      if (p >= 0 && p < static_cast<PredId>(by_pred_.size())) {
        by_pred_[p].push_back(i);
      }
    }
    mapped_.assign(from_.body().size(), false);
  }

  /// Runs the search. Returns the visit count, or an error on budget
  /// exhaustion. Sets stopped_early if the callback returned false.
  Result<int64_t> Run() {
    if (opts_.map_head) {
      const Atom& hf = from_.head();
      const Atom& ht = to_.head();
      if (hf.arity() != ht.arity()) return int64_t{0};
      for (int i = 0; i < hf.arity(); ++i) {
        if (!UnifyArg(hf.args[i], ht.args[i])) return int64_t{0};
      }
    }
    Status st = Recurse(0);
    if (!st.ok()) return st;
    return found_;
  }

 private:
  bool UnifyArg(Term from_arg, Term to_arg) {
    if (from_arg.is_const()) return from_arg == to_arg;
    return subst_.BindOrCheck(from_arg.var(), to_arg);
  }

  /// Quick compatibility test of from-atom `a` against to-atom `b` under the
  /// current partial substitution, without binding.
  bool Compatible(const Atom& a, const Atom& b) const {
    for (int i = 0; i < a.arity(); ++i) {
      Term fa = a.args[i];
      Term tb = b.args[i];
      if (fa.is_const()) {
        if (fa != tb) return false;
      } else if (subst_.IsBound(fa.var()) && subst_.Get(fa.var()) != tb) {
        return false;
      }
    }
    return true;
  }

  /// Chooses the unmapped from-atom with the fewest compatible targets
  /// (fail-first), or the first unmapped atom under static ordering.
  /// Returns -1 when all atoms are mapped.
  int PickAtom(int* num_candidates) const {
    if (!opts_.dynamic_ordering) {
      for (int i = 0; i < static_cast<int>(from_.body().size()); ++i) {
        if (mapped_[i]) continue;
        const Atom& a = from_.body()[i];
        int count = 0;
        if (a.pred >= 0 && a.pred < static_cast<PredId>(by_pred_.size())) {
          for (int j : by_pred_[a.pred]) {
            if (Compatible(a, to_.body()[j])) ++count;
          }
        }
        *num_candidates = count;
        return i;
      }
      *num_candidates = 0;
      return -1;
    }
    int best = -1;
    int best_count = INT32_MAX;
    for (int i = 0; i < static_cast<int>(from_.body().size()); ++i) {
      if (mapped_[i]) continue;
      const Atom& a = from_.body()[i];
      int count = 0;
      if (a.pred >= 0 && a.pred < static_cast<PredId>(by_pred_.size())) {
        for (int j : by_pred_[a.pred]) {
          if (Compatible(a, to_.body()[j])) ++count;
        }
      }
      if (count < best_count) {
        best_count = count;
        best = i;
        if (count == 0) break;
      }
    }
    *num_candidates = best == -1 ? 0 : best_count;
    return best;
  }

  Status Recurse(int depth) {
    if (stopped_early_) return Status::OK();
    if (++nodes_ > opts_.node_budget) {
      return Status::ResourceExhausted(
          "homomorphism search exceeded node budget of " +
          std::to_string(opts_.node_budget));
    }
    if (depth == static_cast<int>(from_.body().size())) {
      ++found_;
      if (!cb_(subst_)) stopped_early_ = true;
      return Status::OK();
    }
    int candidates = 0;
    int pick = PickAtom(&candidates);
    if (pick < 0 || candidates == 0) return Status::OK();
    const Atom& a = from_.body()[pick];
    mapped_[pick] = true;
    for (int j : by_pred_[a.pred]) {
      const Atom& b = to_.body()[j];
      size_t cp = subst_.Checkpoint();
      bool ok = true;
      for (int i = 0; i < a.arity() && ok; ++i) {
        ok = UnifyArg(a.args[i], b.args[i]);
      }
      if (ok) {
        Status st = Recurse(depth + 1);
        if (!st.ok()) return st;
        if (stopped_early_) {
          subst_.Rollback(cp);
          break;
        }
      }
      subst_.Rollback(cp);
    }
    mapped_[pick] = false;
    return Status::OK();
  }

  const Query& from_;
  const Query& to_;
  const HomSearchOptions& opts_;
  // By value: callers routinely pass lambdas, which would otherwise bind a
  // reference to a std::function temporary that dies with the constructor
  // call (a Release-build stack-use-after-scope, caught by ASan).
  std::function<bool(const Substitution&)> cb_;
  Substitution subst_;
  std::vector<std::vector<int>> by_pred_;
  std::vector<bool> mapped_;
  uint64_t nodes_ = 0;
  int64_t found_ = 0;
  bool stopped_early_ = false;
};

}  // namespace

Result<bool> FindHomomorphism(const Query& from, const Query& to,
                              const HomSearchOptions& options,
                              Substitution* out) {
  bool found = false;
  auto cb = [&](const Substitution& s) {
    found = true;
    if (out != nullptr) *out = s;
    return false;  // stop at first
  };
  HomSearch search(from, to, options, cb);
  AQV_ASSIGN_OR_RETURN(int64_t n, search.Run());
  (void)n;
  return found;
}

Result<int64_t> ForEachHomomorphism(
    const Query& from, const Query& to, const HomSearchOptions& options,
    const std::function<bool(const Substitution&)>& cb) {
  HomSearch search(from, to, options, cb);
  return search.Run();
}

}  // namespace aqv
