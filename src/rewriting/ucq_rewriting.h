#ifndef AQV_REWRITING_UCQ_REWRITING_H_
#define AQV_REWRITING_UCQ_REWRITING_H_

#include "containment/containment.h"
#include "cq/query.h"
#include "rewriting/lmss.h"
#include "rewriting/minicon.h"
#include "util/status.h"
#include "views/view.h"

namespace aqv {

/// Outcome of rewriting a union of CQs.
struct UcqRewritingResult {
  /// True iff the (minimized) union has an equivalent rewriting.
  bool exists = false;
  /// One equivalent rewriting per disjunct of the minimized union (valid
  /// when `exists`): their union, expanded, is equivalent to the input.
  UnionQuery rewritings;
  /// The minimized input union the per-disjunct results refer to.
  UnionQuery minimized;
  /// Aggregates of the per-disjunct LMSS searches (candidate pool sizes,
  /// subsets enumerated, expansion-equivalence checks run).
  uint64_t num_candidates = 0;
  uint64_t subsets_tested = 0;
  uint64_t candidates_checked = 0;
};

/// \brief Equivalent rewriting of a *union* of conjunctive queries.
///
/// Uses the disjunct-wise reduction: after minimizing the union (each
/// disjunct a core, no disjunct contained in another), an equivalent
/// rewriting of the union exists iff every surviving disjunct has an
/// equivalent rewriting on its own. (⇐ is immediate; ⇒ follows from
/// Sagiv-Yannakakis containment: an equivalent rewriting union must
/// contain, for each disjunct Qi, an expansion disjunct e with
/// Qi ⊑ e ⊑ Qj for some j; minimality forces i = j and e ≡ Qi.)
///
/// Comparison-free inputs only for the completeness claim; the per-disjunct
/// LMSS caveats apply otherwise.
[[nodiscard]] Result<UcqRewritingResult> FindEquivalentUnionRewriting(
    const UnionQuery& q, const ViewSet& views, const LmssOptions& options = {});

/// \brief Maximally-contained rewriting of a union of CQs: the union of the
/// per-disjunct MiniCon unions (sound and complete disjunct-wise for
/// comparison-free inputs).
[[nodiscard]] Result<UnionQuery> MaximallyContainedUnionRewriting(
    const UnionQuery& q, const ViewSet& views,
    const MiniConOptions& options = {});

}  // namespace aqv

#endif  // AQV_REWRITING_UCQ_REWRITING_H_
