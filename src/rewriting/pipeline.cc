#include "rewriting/pipeline.h"

#include <utility>

#include "views/expansion.h"

namespace aqv {

Result<bool> QueryDeduper::Insert(const Query& q,
                                  const ContainmentOptions& options) {
  Query form = q.CanonicalForm();
  uint64_t fp = StructuralHash(form);
  std::vector<Query>& bucket = forms_[fp];
  for (const Query& stored : bucket) {
    if (stored == form) return false;  // isomorphic duplicate
    // Fingerprint collision between distinct forms: only an equivalence
    // test can tell a hash accident from a genuinely new rewriting.
    AQV_ASSIGN_OR_RETURN(bool equiv, AreEquivalent(form, stored, options));
    if (equiv) return false;
  }
  bucket.push_back(std::move(form));
  ++count_;
  return true;
}

bool CandidateDeduper::Insert(const ViewAtomCandidate& c) {
  uint64_t fp = c.Fingerprint();
  std::vector<ViewAtomCandidate>& bucket = seen_[fp];
  for (const ViewAtomCandidate& stored : bucket) {
    if (stored == c) return false;
  }
  bucket.push_back(c);
  ++count_;
  return true;
}

Result<ExpansionCheck> BuildAndVerify(
    const Query& q, const ViewSet& views,
    const std::vector<const ViewAtomCandidate*>& picks,
    bool include_comparisons, VerifyLevel level,
    const ContainmentOptions& options) {
  ExpansionCheck check;
  check.rewriting = BuildRewriting(q, picks, include_comparisons);
  if (!check.rewriting.has_value()) return check;
  if (level == VerifyLevel::kNone) {
    check.passed = true;
    return check;
  }
  AQV_ASSIGN_OR_RETURN(ExpansionResult exp,
                       ExpandRewriting(*check.rewriting, views));
  check.satisfiable = exp.satisfiable;
  if (!check.satisfiable) return check;
  // Expansion ⊑ q is the discriminating direction; q ⊑ expansion usually
  // holds by construction but is what kEquivalent must confirm.
  AQV_ASSIGN_OR_RETURN(check.contained, IsContainedIn(exp.query, q, options));
  if (!check.contained) return check;
  if (level == VerifyLevel::kContained) {
    check.passed = true;
    return check;
  }
  AQV_ASSIGN_OR_RETURN(check.equivalent, IsContainedIn(q, exp.query, options));
  check.passed = check.equivalent;
  return check;
}

}  // namespace aqv
