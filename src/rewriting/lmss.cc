#include "rewriting/lmss.h"

#include <algorithm>

#include "containment/minimize.h"
#include "rewriting/pipeline.h"
#include "views/expansion.h"

namespace aqv {

namespace {

/// DFS state for the covering-subset search.
class LmssSearch {
 public:
  LmssSearch(const Query& q, const ViewSet& views,
             const std::vector<ViewAtomCandidate>& pool,
             const LmssOptions& options, LmssResult* result)
      : q_(q), views_(views), pool_(pool), options_(options), result_(result) {
    full_mask_ = q.body().empty()
                     ? 0
                     : (q.body().size() == 64
                            ? ~uint64_t{0}
                            : (uint64_t{1} << q.body().size()) - 1);
    max_atoms_ = options.max_rewriting_atoms < 0
                     ? static_cast<int>(q.body().size())
                     : options.max_rewriting_atoms;
    banned_.assign(pool.size(), false);
  }

  Status Run() { return Recurse(0); }

 private:
  bool Done() const {
    return static_cast<int>(result_->rewritings.size()) >=
           options_.max_rewritings;
  }

  /// Tests one candidate set; records the rewriting if it is equivalent.
  Status TestSubset() {
    ++result_->subsets_tested;
    if (result_->subsets_tested > options_.max_subsets) {
      return Status::ResourceExhausted(
          "LMSS search exceeded max_subsets=" +
          std::to_string(options_.max_subsets));
    }
    if (options_.allow_base_atoms && !options_.allow_trivial) {
      bool any_view = false;
      for (const ViewAtomCandidate* pick : chosen_) {
        if (pick->view != nullptr) any_view = true;
      }
      if (!any_view) return Status::OK();
    }
    AQV_ASSIGN_OR_RETURN(
        ExpansionCheck check,
        BuildAndVerify(q_, views_, chosen_,
                       /*include_comparisons=*/q_.has_comparisons(),
                       VerifyLevel::kEquivalent, options_.containment));
    if (check.rewriting.has_value()) ++result_->candidates_checked;
    if (!check.passed) return Status::OK();
    AQV_ASSIGN_OR_RETURN(
        bool fresh, seen_rewritings_.Insert(*check.rewriting,
                                            options_.containment));
    if (fresh) {
      result_->rewritings.push_back(std::move(*check.rewriting));
      result_->exists = true;
    }
    return Status::OK();
  }

  /// Optional strengthening pass: supersets of a failed cover.
  Status Extend(size_t from_index) {
    if (Done()) return Status::OK();
    if (static_cast<int>(chosen_.size()) >= max_atoms_) return Status::OK();
    for (size_t i = from_index; i < pool_.size(); ++i) {
      if (banned_[i]) continue;
      chosen_.push_back(&pool_[i]);
      AQV_RETURN_NOT_OK(TestSubset());
      if (!Done()) AQV_RETURN_NOT_OK(Extend(i + 1));
      chosen_.pop_back();
      if (Done()) break;
    }
    return Status::OK();
  }

  Status Recurse(uint64_t covered) {
    if (Done()) return Status::OK();
    if (covered == full_mask_) {
      AQV_RETURN_NOT_OK(TestSubset());
      if (!Done() && options_.extend_beyond_cover) {
        AQV_RETURN_NOT_OK(Extend(0));
      }
      return Status::OK();
    }
    if (static_cast<int>(chosen_.size()) >= max_atoms_) return Status::OK();
    // Lowest uncovered subgoal.
    int target = 0;
    while (covered & (uint64_t{1} << target)) ++target;

    // Branch over candidates covering `target`; ban each tried candidate in
    // subsequent branches of this node so every subset appears once.
    std::vector<size_t> tried;
    for (size_t i = 0; i < pool_.size(); ++i) {
      if (banned_[i]) continue;
      if (!(pool_[i].covered_mask & (uint64_t{1} << target))) continue;
      chosen_.push_back(&pool_[i]);
      banned_[i] = true;
      tried.push_back(i);
      Status st = Recurse(covered | pool_[i].covered_mask);
      chosen_.pop_back();
      if (!st.ok()) {
        for (size_t j : tried) banned_[j] = false;
        return st;
      }
      if (Done()) break;
    }
    for (size_t j : tried) banned_[j] = false;
    return Status::OK();
  }

  const Query& q_;
  const ViewSet& views_;
  const std::vector<ViewAtomCandidate>& pool_;
  const LmssOptions& options_;
  LmssResult* result_;
  uint64_t full_mask_ = 0;
  int max_atoms_ = 0;
  std::vector<const ViewAtomCandidate*> chosen_;
  std::vector<bool> banned_;
  QueryDeduper seen_rewritings_;
};

}  // namespace

Result<LmssResult> FindEquivalentRewritings(const Query& q,
                                            const ViewSet& views,
                                            const LmssOptions& options) {
  AQV_RETURN_NOT_OK(q.Validate());
  LmssResult result;
  AQV_ASSIGN_OR_RETURN(result.minimized_query,
                       Minimize(q, options.containment));
  const Query& mq = result.minimized_query;

  AQV_ASSIGN_OR_RETURN(std::vector<ViewAtomCandidate> pool,
                       CanonicalViewTuples(mq, views, options.candidates));
  if (options.allow_base_atoms) {
    // Partial rewritings: each base subgoal of q can cover itself.
    for (int i = 0; i < static_cast<int>(mq.body().size()); ++i) {
      ViewAtomCandidate base;
      base.view = nullptr;
      base.atom = mq.body()[i];
      base.covered = {i};
      base.covered_mask = uint64_t{1} << i;
      pool.push_back(std::move(base));
    }
  }
  result.num_candidates = pool.size();

  LmssSearch search(mq, views, pool, options, &result);
  AQV_RETURN_NOT_OK(search.Run());
  return result;
}

Result<bool> ExistsEquivalentRewriting(const Query& q, const ViewSet& views,
                                       const LmssOptions& options) {
  LmssOptions decide = options;
  decide.max_rewritings = 1;
  AQV_ASSIGN_OR_RETURN(LmssResult r,
                       FindEquivalentRewritings(q, views, decide));
  return r.exists;
}

}  // namespace aqv
