#ifndef AQV_REWRITING_BUCKET_H_
#define AQV_REWRITING_BUCKET_H_

#include <cstdint>
#include <vector>

#include "containment/containment.h"
#include "cq/query.h"
#include "rewriting/candidates.h"
#include "util/status.h"
#include "views/view.h"

namespace aqv {

/// Options for the Bucket algorithm.
struct BucketOptions {
  ContainmentOptions containment;

  /// Cap on bucket combinations enumerated (the Cartesian product is the
  /// algorithm's exponential step).
  uint64_t max_combinations = 5'000'000;

  /// Keep only rewritings whose expansion is *equivalent* to q, not merely
  /// contained in it (the LMSS notion instead of maximal containment).
  bool require_equivalent = false;

  /// Post-process the union by dropping disjuncts subsumed by others
  /// (quadratic in output size; off for benchmarking parity).
  bool prune_subsumed = false;

  /// When a combination fails the direct containment check, the classic
  /// Bucket validation may still succeed after *adding join predicates*:
  /// we enumerate homomorphisms from the combination's expansion into q and
  /// use each to identify fresh candidate variables with q terms. This caps
  /// how many such enrichments are tried per combination.
  size_t max_enrichments_per_combination = 16;
};

/// Outcome of the Bucket algorithm.
struct BucketResult {
  /// buckets[i] holds the candidate view atoms for q's i-th subgoal.
  std::vector<std::vector<ViewAtomCandidate>> buckets;
  /// Contained (or equivalent, per options) conjunctive rewritings.
  UnionQuery rewritings;
  /// Cartesian-product combinations enumerated.
  uint64_t combinations_enumerated = 0;
  /// Combinations that produced a well-formed rewriting and reached the
  /// containment check (the algorithm's dominant cost).
  uint64_t candidates_checked = 0;
};

/// \brief The Bucket algorithm (Information Manifold lineage): for each
/// query subgoal, collect view atoms whose definition can cover it
/// (unifying the subgoal with a view subgoal, distinguished query variables
/// landing on exposed view positions); then test every one-per-bucket
/// combination with an expansion containment check, keeping those contained
/// in q.
///
/// The union of kept rewritings is the maximally-contained rewriting of q
/// using `views` (comparison-free case). Comparisons on q are carried into
/// each candidate and handled by the comparison-aware containment test —
/// sound, with the linearization-cap caveat.
[[nodiscard]] Result<BucketResult> BucketRewrite(const Query& q, const ViewSet& views,
                                   const BucketOptions& options = {});

}  // namespace aqv

#endif  // AQV_REWRITING_BUCKET_H_
