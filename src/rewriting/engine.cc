#include "rewriting/engine.h"

#include <utility>

#include "rewriting/ucq_rewriting.h"

namespace aqv {

namespace {

/// The effective containment options of a request: the shared budgets with
/// the oracle wired in.
ContainmentOptions EffectiveContainment(const EngineOptions& options) {
  ContainmentOptions c = options.containment;
  c.oracle = options.oracle;
  return c;
}

/// Snapshot-delta bracket around one engine run.
class OracleScope {
 public:
  explicit OracleScope(ContainmentOracle* oracle) : oracle_(oracle) {
    if (oracle_ != nullptr) before_ = oracle_->stats();
  }
  OracleStats Delta() const {
    return oracle_ == nullptr ? OracleStats{} : oracle_->stats() - before_;
  }

 private:
  ContainmentOracle* oracle_;
  OracleStats before_;
};

Status RequireRewritableViews(const ViewSet* views) {
  if (views == nullptr) {
    return Status::InvalidArgument("RewriteRequest.views is null");
  }
  if (views->HasUnionSources()) {
    return Status::Unimplemented(
        "view set contains union sources (multiple rules per head "
        "predicate); rewriting engines expand view atoms by a single "
        "definition and would be unsound here");
  }
  return Status::OK();
}

Status RequireSingleton(const RewriteRequest& request, std::string_view name) {
  AQV_RETURN_NOT_OK(RequireRewritableViews(request.views));
  if (request.query.size() != 1) {
    return Status::InvalidArgument(
        std::string(name) + " engine expects a single-CQ request (got " +
        std::to_string(request.query.size()) +
        " disjuncts); use the \"ucq\" engine for unions");
  }
  return Status::OK();
}

class LmssEngine : public RewritingEngine {
 public:
  std::string_view name() const override { return "lmss"; }

  Result<RewriteResponse> Rewrite(const RewriteRequest& request)
      const override {
    AQV_RETURN_NOT_OK(RequireSingleton(request, name()));
    LmssOptions opts = request.options.lmss;
    opts.containment = EffectiveContainment(request.options);
    OracleScope scope(request.options.oracle);
    AQV_ASSIGN_OR_RETURN(
        LmssResult r, FindEquivalentRewritings(request.query.disjuncts[0],
                                               *request.views, opts));
    RewriteResponse out;
    out.engine = name();
    out.equivalent_exists = r.exists;
    if (!r.rewritings.empty()) out.witness = r.rewritings.front();
    out.rewritings.disjuncts = std::move(r.rewritings);
    out.minimized.disjuncts.push_back(std::move(r.minimized_query));
    out.stats.num_candidates = r.num_candidates;
    out.stats.combinations = r.subsets_tested;
    out.stats.checks = r.candidates_checked;
    out.stats.oracle = scope.Delta();
    return out;
  }
};

class BucketEngine : public RewritingEngine {
 public:
  std::string_view name() const override { return "bucket"; }

  Result<RewriteResponse> Rewrite(const RewriteRequest& request)
      const override {
    AQV_RETURN_NOT_OK(RequireSingleton(request, name()));
    BucketOptions opts = request.options.bucket;
    opts.containment = EffectiveContainment(request.options);
    OracleScope scope(request.options.oracle);
    AQV_ASSIGN_OR_RETURN(
        BucketResult r,
        BucketRewrite(request.query.disjuncts[0], *request.views, opts));
    RewriteResponse out;
    out.engine = name();
    out.equivalent_exists =
        opts.require_equivalent && !r.rewritings.empty();
    out.rewritings = std::move(r.rewritings);
    if (out.equivalent_exists) out.witness = out.rewritings.disjuncts.front();
    for (const auto& bucket : r.buckets) {
      out.stats.num_candidates += bucket.size();
    }
    out.stats.combinations = r.combinations_enumerated;
    out.stats.checks = r.candidates_checked;
    out.stats.oracle = scope.Delta();
    return out;
  }
};

class MiniConEngine : public RewritingEngine {
 public:
  std::string_view name() const override { return "minicon"; }

  Result<RewriteResponse> Rewrite(const RewriteRequest& request)
      const override {
    AQV_RETURN_NOT_OK(RequireSingleton(request, name()));
    MiniConOptions opts = request.options.minicon;
    opts.containment = EffectiveContainment(request.options);
    OracleScope scope(request.options.oracle);
    AQV_ASSIGN_OR_RETURN(
        MiniConResult r,
        MiniConRewrite(request.query.disjuncts[0], *request.views, opts));
    RewriteResponse out;
    out.engine = name();
    out.rewritings = std::move(r.rewritings);
    out.stats.num_candidates = r.mcds.size();
    out.stats.combinations = r.combinations_enumerated;
    out.stats.checks = r.candidates_checked;
    out.stats.oracle = scope.Delta();
    return out;
  }
};

class UcqEngine : public RewritingEngine {
 public:
  std::string_view name() const override { return "ucq"; }

  Result<RewriteResponse> Rewrite(const RewriteRequest& request)
      const override {
    AQV_RETURN_NOT_OK(RequireRewritableViews(request.views));
    LmssOptions opts = request.options.lmss;
    opts.containment = EffectiveContainment(request.options);
    OracleScope scope(request.options.oracle);
    AQV_ASSIGN_OR_RETURN(
        UcqRewritingResult r,
        FindEquivalentUnionRewriting(request.query, *request.views, opts));
    RewriteResponse out;
    out.engine = name();
    out.equivalent_exists = r.exists;
    out.rewritings = std::move(r.rewritings);
    if (r.exists && !out.rewritings.empty()) {
      out.witness = out.rewritings.disjuncts.front();
    }
    out.minimized = std::move(r.minimized);
    out.stats.num_candidates = r.num_candidates;
    out.stats.combinations = r.subsets_tested;
    out.stats.checks = r.candidates_checked;
    out.stats.oracle = scope.Delta();
    return out;
  }
};

}  // namespace

const std::vector<std::string>& EngineNames() {
  static const std::vector<std::string>* names =
      new std::vector<std::string>{"lmss", "bucket", "minicon", "ucq"};
  return *names;
}

Result<std::unique_ptr<RewritingEngine>> MakeEngine(std::string_view name) {
  std::unique_ptr<RewritingEngine> engine;
  if (name == "lmss") {
    engine = std::make_unique<LmssEngine>();
  } else if (name == "bucket") {
    engine = std::make_unique<BucketEngine>();
  } else if (name == "minicon") {
    engine = std::make_unique<MiniConEngine>();
  } else if (name == "ucq") {
    engine = std::make_unique<UcqEngine>();
  } else {
    return Status::NotFound("no rewriting engine named '" +
                            std::string(name) + "'");
  }
  return engine;
}

Result<RewriteResponse> RunEngine(std::string_view name,
                                  const RewriteRequest& request) {
  AQV_ASSIGN_OR_RETURN(std::unique_ptr<RewritingEngine> engine,
                       MakeEngine(name));
  return engine->Rewrite(request);
}

}  // namespace aqv
