#ifndef AQV_REWRITING_MINICON_H_
#define AQV_REWRITING_MINICON_H_

#include <cstdint>
#include <vector>

#include "containment/containment.h"
#include "cq/query.h"
#include "rewriting/candidates.h"
#include "util/status.h"
#include "views/view.h"

namespace aqv {

/// Options for the MiniCon algorithm.
struct MiniConOptions {
  ContainmentOptions containment;

  /// Cap on MCD combinations enumerated.
  uint64_t max_combinations = 5'000'000;

  /// Verify each combined rewriting with an expansion containment check.
  /// The MiniCon theorem makes this unnecessary for comparison-free inputs
  /// (the algorithm's headline win over Bucket); it is forced on when q
  /// carries comparisons, where the theorem does not apply.
  bool verify_candidates = false;

  /// Post-process the union by dropping subsumed disjuncts.
  bool prune_subsumed = false;
};

/// Outcome of the MiniCon algorithm.
struct MiniConResult {
  /// All MiniCon descriptions formed (deduplicated).
  std::vector<ViewAtomCandidate> mcds;
  /// The union of combined rewritings (maximally contained, comparison-free
  /// case).
  UnionQuery rewritings;
  /// Exact-cover combinations enumerated.
  uint64_t combinations_enumerated = 0;
  /// Complete covers that reached the expansion-containment check (stays 0
  /// in the check-free mode the MiniCon theorem licenses).
  uint64_t candidates_checked = 0;
};

/// \brief The MiniCon algorithm (Pottinger-Halevy): forms MiniCon
/// descriptions (MCDs) — view specializations paired with the minimal set
/// of query subgoals they must cover — and combines MCDs with pairwise
/// disjoint coverage into rewritings.
///
/// The MCD property enforced during formation:
///  (C1) a distinguished variable of q unified into the view must land on
///       an exposed position (view head variable or constant);
///  (C2) if a query variable is unified only with existential view
///       variables, every query subgoal containing it must be covered by
///       this same MCD (its value is irrecoverable across views).
/// Closure is search: covering a forced subgoal branches over the view
/// subgoals it can map to.
///
/// By the MiniCon correctness theorem, the union of all disjoint-cover
/// combinations equals the maximally-contained rewriting without any
/// per-candidate containment test.
[[nodiscard]] Result<MiniConResult> MiniConRewrite(const Query& q, const ViewSet& views,
                                     const MiniConOptions& options = {});

}  // namespace aqv

#endif  // AQV_REWRITING_MINICON_H_
