#ifndef AQV_REWRITING_TWO_SPACE_UNIFIER_H_
#define AQV_REWRITING_TWO_SPACE_UNIFIER_H_

#include <optional>
#include <vector>

#include "cq/atom.h"
#include "cq/term.h"

namespace aqv {

/// \brief Union-find unifier over two variable spaces — a query's and a
/// view's — with constant pinning. The shared mechanics of Bucket entry
/// creation and MiniCon MCD closure.
///
/// Nodes 0..nq-1 are query variables, nq..nq+nv-1 are view variables. Each
/// equivalence class may be pinned to at most one constant; pinning two
/// different constants fails the unification. Copyable: MCD closure
/// branches by copying the unifier state.
class TwoSpaceUnifier {
 public:
  TwoSpaceUnifier(int num_q_vars, int num_v_vars)
      : nq_(num_q_vars),
        parent_(num_q_vars + num_v_vars),
        pinned_(num_q_vars + num_v_vars) {
    for (int i = 0; i < static_cast<int>(parent_.size()); ++i) parent_[i] = i;
  }

  int NodeOfQVar(VarId v) const { return v; }
  int NodeOfVVar(VarId v) const { return nq_ + v; }

  int Find(int x) const {
    while (parent_[x] != x) x = parent_[x];
    return x;
  }

  /// Unifies a query-side term with a view-side term. Returns false on a
  /// constant clash.
  bool UnifyPair(Term q_term, Term v_term) {
    if (q_term.is_const() && v_term.is_const()) return q_term == v_term;
    if (q_term.is_const()) return Pin(NodeOfVVar(v_term.var()), q_term);
    if (v_term.is_const()) return Pin(NodeOfQVar(q_term.var()), v_term);
    return Union(NodeOfQVar(q_term.var()), NodeOfVVar(v_term.var()));
  }

  /// Positionwise unification of a query atom with a view atom (same
  /// predicate and arity assumed checked by the caller).
  bool UnifyAtoms(const Atom& q_atom, const Atom& v_atom) {
    for (int i = 0; i < q_atom.arity(); ++i) {
      if (!UnifyPair(q_atom.args[i], v_atom.args[i])) return false;
    }
    return true;
  }

  /// The constant pinned to x's class, if any.
  std::optional<Term> PinnedConst(int x) const { return pinned_[Find(x)]; }

  /// All nodes in x's class (linear scan; classes here are tiny).
  std::vector<int> ClassMembers(int x) const {
    std::vector<int> out;
    int rep = Find(x);
    for (int i = 0; i < static_cast<int>(parent_.size()); ++i) {
      if (Find(i) == rep) out.push_back(i);
    }
    return out;
  }

  /// Query variables in x's class, ascending.
  std::vector<VarId> QVarsInClass(int x) const {
    std::vector<VarId> out;
    for (int m : ClassMembers(x)) {
      if (m < nq_) out.push_back(m);
    }
    return out;
  }

  /// True if x's class contains view variable `v`.
  bool ClassContainsVVar(int x, VarId v) const {
    return Find(x) == Find(NodeOfVVar(v));
  }

  int num_nodes() const { return static_cast<int>(parent_.size()); }
  int num_q_vars() const { return nq_; }

 private:
  bool Union(int a, int b) {
    a = Find(a);
    b = Find(b);
    if (a == b) return true;
    if (pinned_[a].has_value() && pinned_[b].has_value() &&
        !(*pinned_[a] == *pinned_[b])) {
      return false;
    }
    parent_[a] = b;
    if (!pinned_[b].has_value()) pinned_[b] = pinned_[a];
    return true;
  }

  bool Pin(int x, Term c) {
    x = Find(x);
    if (pinned_[x].has_value()) return *pinned_[x] == c;
    pinned_[x] = c;
    return true;
  }

  int nq_;
  std::vector<int> parent_;
  std::vector<std::optional<Term>> pinned_;
};

}  // namespace aqv

#endif  // AQV_REWRITING_TWO_SPACE_UNIFIER_H_
