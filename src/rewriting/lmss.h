#ifndef AQV_REWRITING_LMSS_H_
#define AQV_REWRITING_LMSS_H_

#include <cstdint>
#include <vector>

#include "containment/containment.h"
#include "cq/query.h"
#include "rewriting/candidates.h"
#include "util/status.h"
#include "views/view.h"

namespace aqv {

/// Options for the LMSS equivalent-rewriting search.
struct LmssOptions {
  ContainmentOptions containment;
  CandidateOptions candidates;

  /// Maximum number of view atoms in a rewriting. -1 means |body(Q)| after
  /// minimization — the LMSS bound: if any equivalent rewriting exists, one
  /// exists within this size, so the default search is a complete decision
  /// procedure.
  int max_rewriting_atoms = -1;

  /// Stop after this many rewritings (1 = decision/witness mode).
  /// INT32_MAX enumerates everything within the size bound.
  int max_rewritings = 1;

  /// Budget on candidate subsets tested (kResourceExhausted past it).
  uint64_t max_subsets = 2'000'000;

  /// After a covering subset fails the equivalence test, also try
  /// strengthening it with additional candidates up to the size bound.
  /// Covers suffice for the classic comparison-free completeness argument;
  /// the extension pass additionally explores supersets of failed covers.
  bool extend_beyond_cover = true;

  /// Allow *partial* rewritings (LMSS R3): body atoms may be base-relation
  /// subgoals of q itself in addition to view atoms. Every subgoal of the
  /// minimized query joins the candidate pool as its own cover, so the
  /// search degenerates gracefully: with no usable views the identity
  /// rewriting is found. Rewritings that use no view at all are suppressed
  /// unless `allow_trivial` is also set.
  bool allow_base_atoms = false;

  /// With allow_base_atoms: also emit the trivial all-base rewriting.
  bool allow_trivial = false;
};

/// Outcome of the LMSS search.
struct LmssResult {
  /// True iff an equivalent complete rewriting exists within the bound.
  bool exists = false;
  /// The rewritings found (over view predicates), up to max_rewritings.
  std::vector<Query> rewritings;
  /// Q after minimization (what the search actually ran against).
  Query minimized_query;
  /// Size of the candidate pool (view tuples over the canonical database).
  uint64_t num_candidates = 0;
  /// Number of candidate subsets enumerated by the search (including
  /// prefiltered and unbuildable ones; bounded by max_subsets).
  uint64_t subsets_tested = 0;
  /// Subsets that built a rewriting and reached the expansion-equivalence
  /// check — the search's dominant cost.
  uint64_t candidates_checked = 0;
};

/// \brief The PODS'95 algorithm: decides whether query `q` has an equivalent
/// rewriting using only `views`, and produces witnesses.
///
/// Method (following the paper's two theorems):
///  1. Minimize q (the core).
///  2. Build the candidate pool of view tuples over q's canonical database.
///     Any minimal equivalent rewriting is isomorphic to a subset of this
///     pool whose covered sets span body(q).
///  3. Search covering subsets of size <= |body(q)| (the LMSS length
///     bound), testing Expand(candidate) ≡ q for each. Covers are
///     enumerated exactly once via lowest-uncovered-subgoal branching.
///
/// For comparison-free q and views the procedure is sound and complete.
/// When comparisons are present, the equivalence tests are comparison-aware
/// (sound) but the candidate pool is built from the relational structure
/// only, so a rewriting that would need new comparison literals in its body
/// is not found; see DESIGN.md (R4).
[[nodiscard]] Result<LmssResult> FindEquivalentRewritings(const Query& q,
                                            const ViewSet& views,
                                            const LmssOptions& options = {});

/// Decision-only convenience wrapper (max_rewritings = 1).
[[nodiscard]] Result<bool> ExistsEquivalentRewriting(const Query& q, const ViewSet& views,
                                       const LmssOptions& options = {});

}  // namespace aqv

#endif  // AQV_REWRITING_LMSS_H_
