#include "rewriting/candidates.h"

#include <algorithm>
#include <map>
#include <set>

#include "containment/comparison_containment.h"
#include "containment/homomorphism.h"
#include "containment/minimize.h"
#include "rewriting/pipeline.h"
#include "rewriting/two_space_unifier.h"
#include "util/hash.h"
#include "views/expansion.h"

namespace aqv {

std::string ViewAtomCandidate::ToString(const Query& q) const {
  std::string out =
      view != nullptr ? view->name() : q.catalog()->pred(atom.pred).name;
  out += '(';
  for (size_t i = 0; i < atom.args.size(); ++i) {
    if (i > 0) out += ", ";
    Term t = atom.args[i];
    if (t.is_const()) {
      out += q.catalog()->constant(t.constant()).name;
    } else if (t.var() < q.num_vars()) {
      out += q.var_name(t.var());
    } else {
      out += "_f" + std::to_string(t.var() - q.num_vars());
    }
  }
  out += ")[covers";
  for (int c : covered) out += " " + std::to_string(c);
  out += ']';
  return out;
}

namespace {

std::vector<std::pair<VarId, Term>> SortedEqualities(
    const std::vector<std::pair<VarId, Term>>& eqs) {
  std::vector<std::pair<VarId, Term>> sorted = eqs;
  std::sort(sorted.begin(), sorted.end());
  sorted.erase(std::unique(sorted.begin(), sorted.end()), sorted.end());
  return sorted;
}

}  // namespace

uint64_t ViewAtomCandidate::Fingerprint() const {
  Fnv1a h;
  h.Mix(static_cast<uint64_t>(atom.pred));
  for (Term t : atom.args) h.Mix(t.Pack());
  h.Mix(0x9e3779b97f4a7c15ULL);
  for (auto [v, t] : SortedEqualities(induced_equalities)) {
    h.Mix(static_cast<uint64_t>(v));
    h.Mix(t.Pack());
  }
  h.Mix(0x517cc1b727220a95ULL);
  for (int c : covered) h.Mix(static_cast<uint64_t>(c));
  return h.hash();
}

bool operator==(const ViewAtomCandidate& a, const ViewAtomCandidate& b) {
  return a.atom == b.atom && a.covered == b.covered &&
         SortedEqualities(a.induced_equalities) ==
             SortedEqualities(b.induced_equalities);
}

Result<std::vector<ViewAtomCandidate>> CanonicalViewTuples(
    const Query& q, const ViewSet& views, const CandidateOptions& options) {
  if (q.body().size() > 64) {
    return Status::Unimplemented(
        "query has " + std::to_string(q.body().size()) +
        " body atoms; candidate covered-set bitmasks are 64-bit");
  }
  std::vector<ViewAtomCandidate> out;
  CandidateDeduper seen;
  HomSearchOptions hopts;
  hopts.node_budget = options.node_budget;
  hopts.map_head = false;

  for (const View& view : views.views()) {
    const Query& def = view.definition;
    bool over_budget = false;
    uint64_t homs_visited = 0;
    auto cb = [&](const Substitution& rho) {
      if (options.max_homs_per_view != 0 &&
          ++homs_visited > options.max_homs_per_view) {
        return false;  // silent per-view cap; see CandidateOptions
      }
      ViewAtomCandidate cand;
      cand.view = &view;
      // Head args under rho; safety guarantees all head vars are bound.
      Atom head = def.head();
      for (Term& t : head.args) t = rho.Apply(t);
      cand.atom = std::move(head);
      // Covered set: which Q atoms the view body lands on.
      std::set<int> covered;
      for (const Atom& b : def.body()) {
        Atom image = rho.ApplyToAtom(b);
        for (int i = 0; i < static_cast<int>(q.body().size()); ++i) {
          if (q.body()[i] == image) covered.insert(i);
        }
      }
      cand.covered.assign(covered.begin(), covered.end());
      for (int i : cand.covered) cand.covered_mask |= uint64_t{1} << i;
      if (seen.Insert(cand)) {
        out.push_back(std::move(cand));
      }
      if (out.size() >= options.max_candidates) {
        over_budget = true;
        return false;
      }
      return true;
    };
    AQV_ASSIGN_OR_RETURN(int64_t n, ForEachHomomorphism(def, q, hopts, cb));
    (void)n;
    if (over_budget) {
      return Status::ResourceExhausted(
          "candidate pool exceeded max_candidates=" +
          std::to_string(options.max_candidates));
    }
  }
  return out;
}

std::optional<Query> BuildRewriting(
    const Query& q, const std::vector<const ViewAtomCandidate*>& picks,
    bool include_comparisons) {
  Query r(q.catalog());
  for (int v = 0; v < q.num_vars(); ++v) r.AddVariable(q.var_name(v));
  r.set_head(q.head());

  int fresh_base = q.num_vars();
  for (const ViewAtomCandidate* pick : picks) {
    Atom a = pick->atom;
    // Remap candidate-local fresh vars into this rewriting's var space.
    for (Term& t : a.args) {
      if (t.is_var() && t.var() >= q.num_vars()) {
        int local = t.var() - q.num_vars();
        while (r.num_vars() < fresh_base + local + 1) {
          r.AddVariable("F" + std::to_string(r.num_vars()));
        }
        t = Term::Var(fresh_base + local);
      }
    }
    r.AddBodyAtom(std::move(a));
    for (auto [v, t] : pick->induced_equalities) {
      r.AddComparison(Comparison(CmpOp::kEq, Term::Var(v), t));
    }
    fresh_base += pick->num_fresh;
  }
  if (include_comparisons) {
    for (const Comparison& c : q.comparisons()) r.AddComparison(c);
  }

  bool unsat = false;
  Query normalized = NormalizeEqualities(r, &unsat);
  if (unsat) return std::nullopt;

  // Residual comparisons over variables the rewriting cannot see are
  // dropped: the covering view enforces them internally, and the caller's
  // containment/equivalence check remains the arbiter of correctness.
  std::vector<bool> in_body_pre(normalized.num_vars(), false);
  for (const Atom& a : normalized.body()) {
    for (Term t : a.args) {
      if (t.is_var()) in_body_pre[t.var()] = true;
    }
  }
  Query filtered(normalized.catalog());
  for (int v = 0; v < normalized.num_vars(); ++v) {
    filtered.AddVariable(normalized.var_name(v));
  }
  filtered.set_head(normalized.head());
  for (const Atom& a : normalized.body()) filtered.AddBodyAtom(a);
  for (const Comparison& c : normalized.comparisons()) {
    bool visible = true;
    for (Term t : {c.lhs, c.rhs}) {
      if (t.is_var() && !in_body_pre[t.var()]) visible = false;
    }
    if (visible) filtered.AddComparison(c);
  }
  Query compact = CompactVariables(filtered);

  // Safety: every head variable must appear in the body.
  std::vector<bool> in_body(compact.num_vars(), false);
  for (const Atom& a : compact.body()) {
    for (Term t : a.args) {
      if (t.is_var()) in_body[t.var()] = true;
    }
  }
  for (Term t : compact.head().args) {
    if (t.is_var() && !in_body[t.var()]) return std::nullopt;
  }
  return compact;
}

std::optional<ViewAtomCandidate> MakeCandidateFromUnifier(
    const Query& q, const View& view, const TwoSpaceUnifier& unifier,
    std::vector<int> covered, bool require_distinguished_exposed) {
  const Query& def = view.definition;

  // A class is "exposed" if it carries a constant or a view head variable.
  std::vector<bool> head_var(def.num_vars(), false);
  for (Term t : def.head().args) {
    if (t.is_var()) head_var[t.var()] = true;
  }

  // Legality: the unification may never constrain the view's *internal*
  // structure. A class holding an existential view variable together with
  // any other view variable (or a pinned constant) would demand an equality
  // inside the view body that no rewriting can enforce — such candidates
  // are unsound for the check-free MiniCon combination and useless for
  // Bucket. (Several *distinguished* view variables in one class are fine:
  // repeating the argument in the view atom enforces that equality.)
  {
    std::set<int> checked_classes;
    for (int node = 0; node < unifier.num_nodes(); ++node) {
      int rep = unifier.Find(node);
      if (!checked_classes.insert(rep).second) continue;
      int view_vars = 0;
      int existential_view_vars = 0;
      for (int m : unifier.ClassMembers(rep)) {
        if (m >= q.num_vars()) {
          ++view_vars;
          if (!head_var[m - q.num_vars()]) ++existential_view_vars;
        }
      }
      if (existential_view_vars > 0 &&
          (view_vars > 1 || unifier.PinnedConst(rep).has_value())) {
        return std::nullopt;
      }
    }
  }
  auto exposed = [&](int node) {
    if (unifier.PinnedConst(node).has_value()) return true;
    for (int m : unifier.ClassMembers(node)) {
      if (m >= q.num_vars() && head_var[m - q.num_vars()]) return true;
    }
    return false;
  };

  if (require_distinguished_exposed) {
    std::vector<bool> distinguished = q.DistinguishedMask();
    for (int gi : covered) {
      for (Term t : q.body()[gi].args) {
        if (t.is_var() && distinguished[t.var()] &&
            !exposed(unifier.NodeOfQVar(t.var()))) {
          return std::nullopt;
        }
      }
    }
  }

  ViewAtomCandidate cand;
  cand.view = &view;
  std::sort(covered.begin(), covered.end());
  covered.erase(std::unique(covered.begin(), covered.end()), covered.end());
  cand.covered = std::move(covered);
  for (int i : cand.covered) cand.covered_mask |= uint64_t{1} << i;

  // Head args per class: pinned constant > smallest query var > fresh.
  std::map<int, Term> class_term;
  auto term_for_class = [&](int node) -> Term {
    int rep = unifier.Find(node);
    auto it = class_term.find(rep);
    if (it != class_term.end()) return it->second;
    Term result = Term::Var(-1);
    std::optional<Term> pinned = unifier.PinnedConst(rep);
    if (pinned.has_value()) {
      result = *pinned;
    } else {
      std::vector<VarId> qvars = unifier.QVarsInClass(rep);
      if (!qvars.empty()) {
        result = Term::Var(qvars.front());
      } else {
        result = Term::Var(q.num_vars() + cand.num_fresh);
        ++cand.num_fresh;
      }
    }
    class_term.emplace(rep, result);
    return result;
  };

  Atom atom(def.head().pred, {});
  for (Term t : def.head().args) {
    if (t.is_const()) {
      atom.args.push_back(t);
    } else {
      atom.args.push_back(term_for_class(unifier.NodeOfVVar(t.var())));
    }
  }
  cand.atom = std::move(atom);

  // Induced equalities from classes identifying query variables.
  std::set<int> done;
  for (VarId v = 0; v < q.num_vars(); ++v) {
    int rep = unifier.Find(unifier.NodeOfQVar(v));
    if (!done.insert(rep).second) continue;
    std::vector<VarId> qvars = unifier.QVarsInClass(rep);
    std::optional<Term> pinned = unifier.PinnedConst(rep);
    if (pinned.has_value()) {
      for (VarId x : qvars) cand.induced_equalities.push_back({x, *pinned});
    } else if (qvars.size() >= 2) {
      for (size_t i = 1; i < qvars.size(); ++i) {
        cand.induced_equalities.push_back({qvars[i], Term::Var(qvars[0])});
      }
    }
  }
  return cand;
}

Result<UnionQuery> RemoveSubsumedDisjuncts(const UnionQuery& rewritings,
                                           const ViewSet& views,
                                           const ContainmentOptions& options) {
  // Expand all disjuncts once, dropping unsatisfiable ones.
  std::vector<Query> expansions;
  std::vector<const Query*> kept_sources;
  UnionQuery out;
  for (const Query& r : rewritings.disjuncts) {
    AQV_ASSIGN_OR_RETURN(ExpansionResult e, ExpandRewriting(r, views));
    if (!e.satisfiable) continue;
    expansions.push_back(std::move(e.query));
    kept_sources.push_back(&r);
  }
  std::vector<bool> dead(expansions.size(), false);
  for (size_t i = 0; i < expansions.size(); ++i) {
    if (dead[i]) continue;
    for (size_t j = 0; j < expansions.size(); ++j) {
      if (i == j || dead[j]) continue;
      AQV_ASSIGN_OR_RETURN(
          bool sub, IsContainedIn(expansions[i], expansions[j], options));
      if (sub) {
        // i ⊑ j: drop i, unless they are equivalent and i comes first.
        AQV_ASSIGN_OR_RETURN(
            bool back, IsContainedIn(expansions[j], expansions[i], options));
        if (!back || j < i) {
          dead[i] = true;
          break;
        }
      }
    }
  }
  for (size_t i = 0; i < expansions.size(); ++i) {
    if (!dead[i]) out.disjuncts.push_back(*kept_sources[i]);
  }
  return out;
}

}  // namespace aqv
