/// \file
/// Shared pipeline stages of the rewriting engines. LMSS, Bucket, MiniCon,
/// and the UCQ wrapper used to re-derive three things independently:
/// canonical dedup of emitted rewritings, dedup of candidate view atoms,
/// and the build → expand → containment-check verification of a candidate
/// combination. This header is the single implementation all four engines
/// now share; every containment call inside it threads ContainmentOptions,
/// so wiring a ContainmentOracle into those options memoizes the whole
/// pipeline at once.

#ifndef AQV_REWRITING_PIPELINE_H_
#define AQV_REWRITING_PIPELINE_H_

#include <cstddef>
#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "containment/containment.h"
#include "cq/query.h"
#include "rewriting/candidates.h"
#include "util/status.h"
#include "views/view.h"

namespace aqv {

/// \brief Fingerprint-keyed dedup of emitted rewritings with
/// equivalence-confirmed collision handling.
///
/// A query is a duplicate when its 64-bit Fingerprint() matches a stored
/// entry and either the canonical forms are identical (isomorphic — the
/// common case) or, for a genuine fingerprint collision between distinct
/// forms, an equivalence test confirms it adds nothing. The equivalence
/// fallback routes through ContainmentOptions, so it is memoized whenever
/// an oracle is wired in.
class QueryDeduper {
 public:
  /// Returns true iff `q` was not seen before (and records it).
  [[nodiscard]] Result<bool> Insert(const Query& q, const ContainmentOptions& options);

  size_t size() const { return count_; }

 private:
  std::unordered_map<uint64_t, std::vector<Query>> forms_;
  size_t count_ = 0;
};

/// \brief Exact structural dedup of ViewAtomCandidate values keyed by their
/// 64-bit Fingerprint(). Colliding entries are compared field-wise
/// (operator==), so the dedup is sound without any containment test —
/// candidates are syntactic objects, not queries.
class CandidateDeduper {
 public:
  /// Returns true iff `c` was not seen before (and records it).
  bool Insert(const ViewAtomCandidate& c);

  size_t size() const { return count_; }

 private:
  std::unordered_map<uint64_t, std::vector<ViewAtomCandidate>> seen_;
  size_t count_ = 0;
};

/// How much of the expansion-containment verification a caller needs.
enum class VerifyLevel {
  /// Build the rewriting only (MiniCon's check-free combination: the MCD
  /// theorem makes verification unnecessary for comparison-free inputs).
  kNone,
  /// Expansion satisfiable and contained in q (maximally-contained mode).
  kContained,
  /// Contained and containing: expansion ≡ q (the LMSS equivalent-rewriting
  /// notion).
  kEquivalent,
};

/// Outcome of building a candidate combination and verifying its expansion.
struct ExpansionCheck {
  /// The assembled rewriting; nullopt when the combination is unbuildable
  /// (induced-equality constant clash or unsafe head).
  std::optional<Query> rewriting;
  /// Built, and the requested VerifyLevel held — the caller's accept flag.
  bool passed = false;
  /// Expansion satisfiable (no head-unification constant clash).
  bool satisfiable = false;
  /// expansion ⊑ q held (computed for kContained and kEquivalent).
  bool contained = false;
  /// q ⊑ expansion held too (computed for kEquivalent only).
  bool equivalent = false;
};

/// \brief The verification stage shared by every engine: BuildRewriting on
/// `picks`, ExpandRewriting over `views`, then the containment checks
/// `level` asks for. Checks short-circuit: an unsatisfiable expansion or a
/// failed ⊑ skips the rest.
[[nodiscard]] Result<ExpansionCheck> BuildAndVerify(
    const Query& q, const ViewSet& views,
    const std::vector<const ViewAtomCandidate*>& picks,
    bool include_comparisons, VerifyLevel level,
    const ContainmentOptions& options);

}  // namespace aqv

#endif  // AQV_REWRITING_PIPELINE_H_
