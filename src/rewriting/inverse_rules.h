#ifndef AQV_REWRITING_INVERSE_RULES_H_
#define AQV_REWRITING_INVERSE_RULES_H_

#include <string>
#include <vector>

#include "cq/atom.h"
#include "cq/catalog.h"
#include "util/status.h"
#include "views/view.h"

namespace aqv {

/// A Skolem function introduced by inverting one view: it names the unknown
/// value of one existential view variable as a function of the view tuple.
struct SkolemFunction {
  /// The view this function belongs to.
  PredId view_pred = -1;
  /// The existential variable it stands for (name from the view definition).
  std::string var_name;
  /// Number of parameters (= number of distinct view head variables).
  int arity = 0;
};

/// One argument of an inverse-rule head: either a plain term over the view
/// head's variables or a Skolem application f_i(params).
struct InverseArg {
  Term term;           ///< valid when skolem_fn < 0
  int skolem_fn = -1;  ///< index into InverseRuleSet::functions when >= 0

  bool is_skolem() const { return skolem_fn >= 0; }
};

/// \brief One inverse rule  p(ā) :- v(X̄)  derived from a body atom p of
/// view v. Variables are the view definition's variable space.
struct InverseRule {
  /// The rule body: the view's original head atom (repeated variables and
  /// constants intact — they act as match filters on the extent).
  Atom view_atom;
  /// The derived base predicate.
  PredId head_pred = -1;
  /// Head arguments; existential variables appear as Skolem applications.
  std::vector<InverseArg> head_args;
  /// The variables (of the view definition) feeding every Skolem in this
  /// rule, in a fixed order shared across the view's rules.
  std::vector<VarId> skolem_params;
  /// Variable names for rendering.
  std::vector<std::string> var_names;

  std::string ToString(const Catalog& catalog) const;
};

/// \brief The inverse-rules rewriting of a view set (Duschka-Genesereth):
/// a datalog program over view extents that reconstructs a canonical
/// database of base facts, with Skolem terms standing for unknown values.
///
/// Evaluating the query over the reconstructed facts and discarding
/// Skolem-carrying answers yields exactly the certain answers — the same
/// maximally-contained semantics Bucket/MiniCon unions compute, traded
/// differently: rule construction is linear-time here, with the cost pushed
/// to evaluation.
struct InverseRuleSet {
  std::vector<InverseRule> rules;
  std::vector<SkolemFunction> functions;

  std::string ToString(const Catalog& catalog) const;
};

/// Builds the inverse rules for every view in `views`.
[[nodiscard]] Result<InverseRuleSet> BuildInverseRules(const ViewSet& views);

}  // namespace aqv

#endif  // AQV_REWRITING_INVERSE_RULES_H_
