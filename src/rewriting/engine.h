/// \file
/// The unified rewriting-engine layer: every strategy in the repository —
/// the LMSS decision procedure, Bucket, MiniCon, and the UCQ wrapper —
/// implements one request/response interface, so scenarios, benches, and
/// tools can drive any of them by name and compare them on identical
/// workloads. A request optionally carries a ContainmentOracle; the engine
/// threads it through ContainmentOptions so minimization, candidate
/// verification, dedup confirmation, and subsumption pruning all share one
/// memoized containment core, and the response surfaces the oracle's
/// hit/miss/budget delta alongside the engine's own search counters.

#ifndef AQV_REWRITING_ENGINE_H_
#define AQV_REWRITING_ENGINE_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "containment/containment.h"
#include "containment/oracle.h"
#include "cq/query.h"
#include "rewriting/bucket.h"
#include "rewriting/lmss.h"
#include "rewriting/minicon.h"
#include "util/status.h"
#include "views/view.h"

namespace aqv {

/// Options shared by every engine plus the per-strategy knobs. The engine
/// overwrites each strategy struct's ContainmentOptions with `containment`
/// (oracle wired in), so callers set budgets in exactly one place.
struct EngineOptions {
  /// Shared memoized containment cache; null runs uncached. Not owned.
  ContainmentOracle* oracle = nullptr;
  /// Containment budgets applied to every decision the engine makes.
  ContainmentOptions containment;
  /// LMSS knobs (also drive the UCQ wrapper's per-disjunct searches).
  LmssOptions lmss;
  BucketOptions bucket;
  MiniConOptions minicon;
};

/// One rewriting problem: a query (a union; singleton for the CQ engines),
/// the available views, and the options above.
struct RewriteRequest {
  UnionQuery query;
  const ViewSet* views = nullptr;
  EngineOptions options;
};

/// Search counters plus the oracle's delta for one request.
struct RewriteStats {
  /// Candidate pool size (LMSS view tuples, bucket entries, MCDs).
  uint64_t num_candidates = 0;
  /// Combinations / covering subsets enumerated by the search.
  uint64_t combinations = 0;
  /// Combinations that reached the expansion-containment check.
  uint64_t checks = 0;
  /// This request's share of the oracle's counters (zeros when no oracle).
  OracleStats oracle;
};

/// Uniform outcome of every engine.
struct RewriteResponse {
  /// The engine that produced this response.
  std::string engine;
  /// LMSS / UCQ: an equivalent rewriting exists. Bucket with
  /// require_equivalent: at least one equivalent disjunct was kept.
  bool equivalent_exists = false;
  /// The rewriting union: maximally-contained disjuncts (Bucket, MiniCon)
  /// or equivalent witnesses (LMSS, UCQ; valid when equivalent_exists).
  UnionQuery rewritings;
  /// First witness, for decision-style callers (LMSS / UCQ).
  std::optional<Query> witness;
  /// The minimized input the search ran against (engines that minimize).
  UnionQuery minimized;
  RewriteStats stats;
};

/// \brief Interface every rewriting strategy implements. Implementations
/// are stateless; one engine instance can serve many requests.
class RewritingEngine {
 public:
  virtual ~RewritingEngine() = default;

  /// Registry name ("lmss", "bucket", "minicon", "ucq").
  virtual std::string_view name() const = 0;

  /// Runs the strategy. CQ engines (lmss/bucket/minicon) require a
  /// singleton request.query; the ucq engine accepts any union.
  [[nodiscard]] virtual Result<RewriteResponse> Rewrite(const RewriteRequest& request)
      const = 0;
};

/// Names of all registered engines, in a stable order.
const std::vector<std::string>& EngineNames();

/// Constructs the engine registered under `name` (kNotFound otherwise).
[[nodiscard]] Result<std::unique_ptr<RewritingEngine>> MakeEngine(std::string_view name);

/// One-shot convenience: MakeEngine(name)->Rewrite(request).
[[nodiscard]] Result<RewriteResponse> RunEngine(std::string_view name,
                                  const RewriteRequest& request);

}  // namespace aqv

#endif  // AQV_REWRITING_ENGINE_H_
