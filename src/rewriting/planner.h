#ifndef AQV_REWRITING_PLANNER_H_
#define AQV_REWRITING_PLANNER_H_

#include <map>
#include <vector>

#include "cq/query.h"
#include "eval/database.h"
#include "rewriting/lmss.h"
#include "util/status.h"
#include "views/view.h"

namespace aqv {

/// \brief Per-relation cardinalities the planner costs plans against.
struct ExtentStats {
  std::map<PredId, uint64_t> cardinality;

  /// Cardinality of `pred` (0 when unknown/absent).
  uint64_t Card(PredId pred) const {
    auto it = cardinality.find(pred);
    return it == cardinality.end() ? 0 : it->second;
  }

  /// Snapshot of the relation sizes of `db`.
  static ExtentStats FromDatabase(const Database& db);
};

/// \brief Estimated execution cost of a CQ under a left-deep nested-loop
/// model with no selectivity information: atoms are ordered ascending by
/// cardinality and the cost is the sum of prefix products (the classic
/// textbook upper bound). Deliberately simple — it ranks "pre-joined view"
/// against "re-join the base tables" robustly, which is all the
/// view-selection decision needs.
double EstimatePlanCost(const Query& q, const ExtentStats& stats);

/// One plan the planner considered.
struct PlanChoice {
  Query rewriting;
  double estimated_cost = 0;
  /// True when every body atom is a view predicate.
  bool complete = false;
};

/// Options for plan selection.
struct PlannerOptions {
  LmssOptions lmss;
  /// Cap on the number of equivalent rewritings enumerated and costed.
  int max_plans = 64;
  /// Also consider answering directly over base relations (the "no views"
  /// plan). Requires base stats to be meaningful.
  bool include_direct_plan = true;
};

/// Outcome of plan selection.
struct PlannerResult {
  /// Every plan considered, in enumeration order. Non-empty iff some plan
  /// exists (the direct plan counts when enabled).
  std::vector<PlanChoice> plans;
  /// Index of the cheapest plan in `plans`, or -1 when none.
  int best = -1;
};

/// \brief The LMSS optimization loop in one call: enumerate equivalent
/// rewritings of `q` over `views`, cost each against the view-extent
/// statistics, optionally cost the direct plan against base statistics, and
/// pick the cheapest. The chosen rewriting evaluates over the extents
/// database; the direct plan evaluates over the base database.
Result<PlannerResult> ChooseBestPlan(const Query& q, const ViewSet& views,
                                     const ExtentStats& view_stats,
                                     const ExtentStats& base_stats,
                                     const PlannerOptions& options = {});

}  // namespace aqv

#endif  // AQV_REWRITING_PLANNER_H_
