/// \file
/// Cost-based plan selection over the rewriting-engine registry: enumerate
/// equivalent rewritings of a query from every registered engine
/// (rewriting/engine.h), cost each candidate — and optionally the direct
/// "no views" plan — under a bound-variable-aware left-deep join model,
/// and pick the cheapest. The cost model simulates the evaluator's own
/// greedy atom order (eval/evaluator.h), so estimated cost tracks the
/// intermediate-row counts EvaluateQuery actually reports in EvalStats.

#ifndef AQV_REWRITING_PLANNER_H_
#define AQV_REWRITING_PLANNER_H_

#include <map>
#include <string>
#include <vector>

#include "cq/query.h"
#include "eval/database.h"
#include "rewriting/engine.h"
#include "util/status.h"
#include "views/view.h"

namespace aqv {

/// \brief Per-relation statistics the planner costs plans against:
/// cardinalities, plus (when measured from real data) per-column distinct
/// counts.
struct ExtentStats {
  std::map<PredId, uint64_t> cardinality;
  /// Measured per-column distinct counts, keyed like `cardinality`.
  /// Entries are optional: predicates without one are costed with the
  /// uniform-domain arity-ratio guess (see EstimatePlanCost).
  std::map<PredId, std::vector<uint64_t>> column_distinct;

  /// Cardinality of `pred` (0 when unknown/absent).
  uint64_t Card(PredId pred) const {
    auto it = cardinality.find(pred);
    return it == cardinality.end() ? 0 : it->second;
  }

  /// Measured per-column distinct counts of `pred`, or nullptr.
  const std::vector<uint64_t>* Distinct(PredId pred) const {
    auto it = column_distinct.find(pred);
    return it == column_distinct.end() ? nullptr : &it->second;
  }

  /// Full measured snapshot of `db`: relation sizes plus the per-column
  /// distinct counts the relations computed at SortDedup/first-demand
  /// time (eval/index.h RelationStats, via Database::Stats).
  static ExtentStats FromDatabase(const Database& db);

  /// Sizes only — the pre-measurement feed, kept for the model ablation
  /// (cost estimates fall back to the arity-ratio guess everywhere).
  static ExtentStats CardinalitiesOnly(const Database& db);
};

/// \brief Estimated execution cost of a CQ under a left-deep nested-loop
/// model that mirrors the evaluator's greedy atom order: at each step the
/// unused atom with the most bound argument positions joins next
/// (tie-break on cardinality). An atom of cardinality c probed with bound
/// positions B contributes an effective fan-out of
///
///   c * prod_{p in B} 1/distinct(p)        (measured column stats)
///   c^((a-b)/a), b = |B|, a = arity        (fallback guess: uniform
///                                           per-column domain of c^(1/a)
///                                           values)
///
/// where B covers bound variables, constants, and within-atom repeated
/// variables. The cost is the sum of intermediate result sizes, the
/// quantity EvalStats::intermediate_rows measures; with measured stats the
/// estimate tracks skew the arity-ratio guess is blind to (a join through
/// a 2-valued column fans out c/2, not c^(1/2)).
double EstimatePlanCost(const Query& q, const ExtentStats& stats);

/// One plan the planner considered.
struct PlanChoice {
  Query rewriting;
  double estimated_cost = 0;
  /// True when every body atom is a view predicate.
  bool complete = false;
  /// Registry name of the engine that produced this rewriting, or
  /// "direct" for the no-views plan.
  std::string engine;
};

/// Options for plan selection.
struct PlannerOptions {
  /// Engines consulted for equivalent rewritings, by registry name
  /// (EngineNames()); empty means every registered engine except "ucq",
  /// which on the planner's singleton queries only repeats the lmss
  /// search (request it explicitly to include it anyway).
  std::vector<std::string> engines;
  /// Options (oracle, budgets, per-strategy knobs) handed to each engine.
  /// Strategy limits that bound the enumeration (lmss.max_rewritings) are
  /// overridden from max_plans; Bucket runs with require_equivalent so
  /// every candidate plan answers the query exactly.
  EngineOptions engine;
  /// Cap on the number of equivalent rewritings enumerated and costed.
  int max_plans = 64;
  /// Also consider answering directly over base relations (the "no views"
  /// plan). Requires base stats to be meaningful.
  bool include_direct_plan = true;
};

/// Outcome of plan selection.
struct PlannerResult {
  /// Every plan considered, in enumeration order (engines in registry
  /// order, deduplicated across engines). Non-empty iff some plan exists
  /// (the direct plan counts when enabled).
  std::vector<PlanChoice> plans;
  /// Index of the cheapest plan in `plans`, or -1 when none.
  int best = -1;
  /// Aggregate search counters of every engine consulted.
  RewriteStats stats;
};

/// \brief The view-selection optimization loop in one call: enumerate
/// equivalent rewritings of `q` over `views` from every engine in
/// `options.engines`, cost each against the view-extent statistics,
/// optionally cost the direct plan against base statistics, and pick the
/// cheapest. The chosen rewriting evaluates over the extents database
/// (merged with base stats for partial rewritings); the direct plan
/// evaluates over the base database.
///
/// Engines that fail with a budget/size error (kResourceExhausted,
/// kUnimplemented) are skipped — the planner degrades to the engines that
/// finished; kInvalidArgument and internal errors propagate.
[[nodiscard]] Result<PlannerResult> ChooseBestPlan(const Query& q, const ViewSet& views,
                                     const ExtentStats& view_stats,
                                     const ExtentStats& base_stats,
                                     const PlannerOptions& options = {});

}  // namespace aqv

#endif  // AQV_REWRITING_PLANNER_H_
