#ifndef AQV_REWRITING_HARDNESS_H_
#define AQV_REWRITING_HARDNESS_H_

#include <memory>
#include <vector>

#include "cq/catalog.h"
#include "cq/query.h"
#include "util/rng.h"
#include "util/status.h"
#include "views/view.h"

namespace aqv {

/// An undirected graph (for the 3-colorability leg of the reduction chain).
struct Graph {
  int num_nodes = 0;
  std::vector<std::pair<int, int>> edges;
};

/// A 3-CNF clause: three non-zero literals, DIMACS sign convention
/// (variable indices start at 1; negative means negated).
struct Clause3 {
  int lits[3] = {0, 0, 0};
};

/// A 3-SAT formula.
struct Formula3Sat {
  int num_vars = 0;
  std::vector<Clause3> clauses;
};

/// \brief The NP-hardness witness machinery for the LMSS rewriting-existence
/// problem (paper result R2), as an executable reduction chain:
///
///   3-SAT  -> graph 3-colorability  -> equivalent-rewriting existence.
///
/// The last leg: for a graph G, build boolean query q() whose body is the
/// complete directed triangle K3 and a single boolean view v() whose body is
/// K3 plus G's edges (both directions). An equivalent rewriting of q using
/// {v} exists iff there is a homomorphism K3 ∪ G -> K3, i.e. iff G is
/// 3-colorable. T2 (bench_t2_np_reduction) measures the correspondence.
///
/// This is a polynomial reduction witnessing NP-hardness in our own
/// machinery; the original LMSS proof is not reproduced verbatim (the
/// paper's text is unavailable — see the DESIGN.md mismatch notice).
Graph ThreeSatToThreeColoring(const Formula3Sat& formula);

/// A 3-SAT → rewriting-existence instance: the query, the single view, and
/// the catalog that owns their symbols.
struct HardnessInstance {
  std::unique_ptr<Catalog> catalog;
  Query query;
  ViewSet views;
};

/// Builds the rewriting-existence instance for graph `g`.
[[nodiscard]] Result<HardnessInstance> GraphToRewritingInstance(const Graph& g);

/// Convenience: full chain 3-SAT -> rewriting instance.
[[nodiscard]] Result<HardnessInstance> FormulaToRewritingInstance(const Formula3Sat& f);

/// Exhaustive 3-SAT decision (tests/benches ground truth; num_vars <= 24).
[[nodiscard]] Result<bool> BruteForceSat(const Formula3Sat& formula);

/// Exhaustive 3-colorability decision (num_nodes <= 20).
[[nodiscard]] Result<bool> BruteForceThreeColorable(const Graph& g);

/// Uniform random 3-CNF with `num_clauses` clauses over `num_vars` vars
/// (distinct variables within each clause).
Formula3Sat RandomFormula(Rng* rng, int num_vars, int num_clauses);

}  // namespace aqv

#endif  // AQV_REWRITING_HARDNESS_H_
