#include "rewriting/planner.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <utility>

#include "containment/containment.h"
#include "rewriting/pipeline.h"
#include "views/expansion.h"

namespace aqv {

ExtentStats ExtentStats::FromDatabase(const Database& db) {
  ExtentStats stats;
  for (PredId p : db.Predicates()) {
    std::shared_ptr<const RelationStats> measured = db.Stats(p);
    stats.cardinality[p] = measured->cardinality;
    std::vector<uint64_t> distinct;
    distinct.reserve(measured->columns.size());
    for (const RelationStats::Column& col : measured->columns) {
      distinct.push_back(col.distinct);
    }
    stats.column_distinct[p] = std::move(distinct);
  }
  return stats;
}

ExtentStats ExtentStats::CardinalitiesOnly(const Database& db) {
  ExtentStats stats;
  for (PredId p : db.Predicates()) {
    stats.cardinality[p] = db.Find(p)->size();
  }
  return stats;
}

namespace {

/// Bound argument positions of `a` given the currently-bound variable
/// set. With `count_repeats`, repeated occurrences of an unbound variable
/// within the atom also count — the evaluator filters them per matched
/// row, so they shrink the fan-out, but its PlanAtomOrder does *not*
/// score them when choosing the next atom; the cost model keeps the two
/// uses separate so it simulates the order the evaluator actually picks.
/// When `positions` is non-null, the counted argument positions are
/// appended to it (for per-column selectivity lookup).
int BoundPositions(const Atom& a, const std::vector<bool>& bound,
                   bool count_repeats, std::vector<int>* positions = nullptr) {
  int count = 0;
  std::vector<VarId> seen;
  for (int i = 0; i < a.arity(); ++i) {
    Term t = a.args[i];
    bool counted = false;
    if (t.is_const()) {
      counted = true;
    } else if (bound[t.var()]) {
      counted = true;
    } else if (std::find(seen.begin(), seen.end(), t.var()) != seen.end()) {
      counted = count_repeats;
    } else {
      seen.push_back(t.var());
    }
    if (counted) {
      ++count;
      if (positions != nullptr) positions->push_back(i);
    }
  }
  return count;
}

/// Expected matches per probe of an atom with cardinality `card` and
/// `arity` columns, `bound` of which are fixed: uniform columns over a
/// domain of card^(1/arity) values give card / (card^(1/arity))^bound.
/// The fallback when no measured column stats exist.
double GuessedFanout(double card, int arity, int bound) {
  if (arity <= 0) return 1.0;
  if (bound >= arity) bound = arity;
  return std::pow(card, static_cast<double>(arity - bound) /
                            static_cast<double>(arity));
}

/// Expected matches per probe from measured statistics: each bound column
/// p keeps a 1/distinct(p) fraction of the rows (independence assumed).
double MeasuredFanout(double card, const std::vector<uint64_t>& distinct,
                      const std::vector<int>& bound_positions) {
  double fanout = card;
  for (int pos : bound_positions) {
    uint64_t d = pos < static_cast<int>(distinct.size()) ? distinct[pos] : 0;
    fanout /= static_cast<double>(std::max<uint64_t>(1, d));
  }
  return fanout;
}

void Accumulate(OracleStats* into, const OracleStats& delta) {
  into->hits += delta.hits;
  into->misses += delta.misses;
  into->inserts += delta.inserts;
  into->capacity_rejects += delta.capacity_rejects;
  into->confirm_failures += delta.confirm_failures;
}

/// Budget and size overruns degrade planning to the engines that finished;
/// anything else is a caller or library bug and must surface.
bool IsSkippableEngineFailure(const Status& status) {
  return status.code() == StatusCode::kResourceExhausted ||
         status.code() == StatusCode::kUnimplemented;
}

}  // namespace

double EstimatePlanCost(const Query& q, const ExtentStats& stats) {
  int n = static_cast<int>(q.body().size());
  std::vector<bool> used(n, false);
  std::vector<bool> bound(static_cast<size_t>(q.num_vars()), false);
  double cost = 0;
  double running = 1;
  for (int step = 0; step < n; ++step) {
    // Mirror the evaluator's greedy order: most bound positions first,
    // tie-break on cardinality.
    int best = -1;
    int best_bound = -1;
    double best_card = 0;
    for (int i = 0; i < n; ++i) {
      if (used[i]) continue;
      const Atom& a = q.body()[i];
      int b = BoundPositions(a, bound, /*count_repeats=*/false);
      double card = static_cast<double>(
          std::max<uint64_t>(1, stats.Card(a.pred)));
      if (b > best_bound || (b == best_bound && card < best_card)) {
        best = i;
        best_bound = b;
        best_card = card;
      }
    }
    const Atom& a = q.body()[best];
    used[best] = true;
    // Fan-out: within-atom duplicates do filter, even though they do not
    // influence the order above. Measured per-column distinct counts give
    // the selectivity of each bound position; predicates never measured
    // fall back to the uniform-domain guess.
    std::vector<int> fanout_positions;
    int fanout_bound =
        BoundPositions(a, bound, /*count_repeats=*/true, &fanout_positions);
    const std::vector<uint64_t>* distinct = stats.Distinct(a.pred);
    running *= distinct != nullptr
                   ? MeasuredFanout(best_card, *distinct, fanout_positions)
                   : GuessedFanout(best_card, a.arity(), fanout_bound);
    cost += running;
    for (Term t : a.args) {
      if (t.is_var()) bound[t.var()] = true;
    }
  }
  return cost;
}

Result<PlannerResult> ChooseBestPlan(const Query& q, const ViewSet& views,
                                     const ExtentStats& view_stats,
                                     const ExtentStats& base_stats,
                                     const PlannerOptions& options) {
  PlannerResult result;
  // Default engine list: every registered engine except "ucq" — the
  // planner always submits a singleton query, for which the ucq engine
  // reduces to the lmss search already run, producing only duplicates for
  // the deduper to discard. Callers can still request it explicitly.
  std::vector<std::string> engines = options.engines;
  if (engines.empty()) {
    for (const std::string& name : EngineNames()) {
      if (name != "ucq") engines.push_back(name);
    }
  }

  // Partial rewritings read views and base relations; merge the stats
  // with view extents taking precedence.
  ExtentStats merged = base_stats;
  for (const auto& [pred, card] : view_stats.cardinality) {
    merged.cardinality[pred] = card;
  }
  for (const auto& [pred, distinct] : view_stats.column_distinct) {
    merged.column_distinct[pred] = distinct;
  }

  ContainmentOptions copts = options.engine.containment;
  copts.oracle = options.engine.oracle;
  QueryDeduper deduper;

  Query minimized = q;
  bool have_minimized = false;

  for (const std::string& name : engines) {
    if (static_cast<int>(result.plans.size()) >= options.max_plans) break;
    RewriteRequest request;
    request.query.disjuncts.push_back(q);
    request.views = &views;
    request.options = options.engine;
    request.options.lmss.max_rewritings = options.max_plans;
    // Only exact plans: a merely-contained rewriting does not answer q.
    request.options.bucket.require_equivalent = true;
    Result<RewriteResponse> run = RunEngine(name, request);
    if (!run.ok()) {
      if (IsSkippableEngineFailure(run.status())) continue;
      return run.status();
    }
    RewriteResponse resp = std::move(run).value();
    result.stats.num_candidates += resp.stats.num_candidates;
    result.stats.combinations += resp.stats.combinations;
    result.stats.checks += resp.stats.checks;
    Accumulate(&result.stats.oracle, resp.stats.oracle);
    if (!have_minimized && !resp.minimized.empty()) {
      minimized = resp.minimized.disjuncts[0];
      have_minimized = true;
    }

    // Equivalence guarantee per engine: lmss/ucq witnesses only when the
    // decision succeeded; bucket ran with require_equivalent; minicon
    // disjuncts are contained and need the reverse direction confirmed.
    if ((name == "lmss" || name == "ucq") && !resp.equivalent_exists) {
      continue;
    }
    bool must_verify = name != "lmss" && name != "ucq" && name != "bucket";
    for (Query& rw : resp.rewritings.disjuncts) {
      if (static_cast<int>(result.plans.size()) >= options.max_plans) break;
      if (must_verify) {
        AQV_ASSIGN_OR_RETURN(ExpansionResult ex, ExpandRewriting(rw, views));
        if (!ex.satisfiable) continue;
        Result<bool> equivalent = AreEquivalent(q, ex.query, copts);
        if (!equivalent.ok()) {
          if (IsSkippableEngineFailure(equivalent.status())) continue;
          return equivalent.status();
        }
        if (!equivalent.value()) continue;
      }
      AQV_ASSIGN_OR_RETURN(bool fresh, deduper.Insert(rw, copts));
      if (!fresh) continue;
      PlanChoice plan;
      plan.engine = name;
      plan.complete = UsesOnlyViews(rw, views);
      plan.estimated_cost = EstimatePlanCost(rw, merged);
      plan.rewriting = std::move(rw);
      result.plans.push_back(std::move(plan));
    }
  }

  if (options.include_direct_plan) {
    PlanChoice direct;
    direct.rewriting = std::move(minimized);
    direct.engine = "direct";
    direct.complete = false;
    direct.estimated_cost = EstimatePlanCost(direct.rewriting, base_stats);
    result.plans.push_back(std::move(direct));
  }
  for (int i = 0; i < static_cast<int>(result.plans.size()); ++i) {
    if (result.best < 0 ||
        result.plans[i].estimated_cost <
            result.plans[result.best].estimated_cost) {
      result.best = i;
    }
  }
  return result;
}

}  // namespace aqv
