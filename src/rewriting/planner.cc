#include "rewriting/planner.h"

#include <algorithm>

namespace aqv {

ExtentStats ExtentStats::FromDatabase(const Database& db) {
  ExtentStats stats;
  for (PredId p : db.Predicates()) {
    stats.cardinality[p] = db.Find(p)->size();
  }
  return stats;
}

double EstimatePlanCost(const Query& q, const ExtentStats& stats) {
  std::vector<double> cards;
  cards.reserve(q.body().size());
  for (const Atom& a : q.body()) {
    cards.push_back(static_cast<double>(std::max<uint64_t>(
        1, stats.Card(a.pred))));
  }
  std::sort(cards.begin(), cards.end());
  double cost = 0;
  double running = 1;
  for (double c : cards) {
    running *= c;
    cost += running;
  }
  return cost;
}

Result<PlannerResult> ChooseBestPlan(const Query& q, const ViewSet& views,
                                     const ExtentStats& view_stats,
                                     const ExtentStats& base_stats,
                                     const PlannerOptions& options) {
  PlannerResult result;

  LmssOptions lmss = options.lmss;
  lmss.max_rewritings = options.max_plans;
  AQV_ASSIGN_OR_RETURN(LmssResult rewritings,
                       FindEquivalentRewritings(q, views, lmss));
  for (Query& rw : rewritings.rewritings) {
    PlanChoice plan;
    plan.complete = UsesOnlyViews(rw, views);
    // Partial rewritings read views and base relations; merge the stats
    // with view extents taking precedence.
    ExtentStats merged = base_stats;
    for (const auto& [pred, card] : view_stats.cardinality) {
      merged.cardinality[pred] = card;
    }
    plan.estimated_cost = EstimatePlanCost(rw, merged);
    plan.rewriting = std::move(rw);
    result.plans.push_back(std::move(plan));
  }
  if (options.include_direct_plan) {
    PlanChoice direct;
    direct.rewriting = rewritings.minimized_query;
    direct.complete = false;
    direct.estimated_cost = EstimatePlanCost(direct.rewriting, base_stats);
    result.plans.push_back(std::move(direct));
  }
  for (int i = 0; i < static_cast<int>(result.plans.size()); ++i) {
    if (result.best < 0 ||
        result.plans[i].estimated_cost <
            result.plans[result.best].estimated_cost) {
      result.best = i;
    }
  }
  return result;
}

}  // namespace aqv
