#include "rewriting/hardness.h"

#include <string>

namespace aqv {

namespace {

/// Node layout of the 3-SAT -> 3-coloring graph:
///   0,1,2            palette triangle (True, False, Base)
///   3 + 2i, 4 + 2i   literal nodes x_{i+1}, ¬x_{i+1}
///   then 6 nodes per clause (two chained OR gadgets).
constexpr int kTrue = 0;
constexpr int kFalse = 1;
constexpr int kBase = 2;

int PosNode(int var) { return 3 + 2 * (var - 1); }
int NegNode(int var) { return 4 + 2 * (var - 1); }

int LitNode(int lit) { return lit > 0 ? PosNode(lit) : NegNode(-lit); }

}  // namespace

Graph ThreeSatToThreeColoring(const Formula3Sat& f) {
  Graph g;
  g.num_nodes = 3 + 2 * f.num_vars + 6 * static_cast<int>(f.clauses.size());
  auto edge = [&](int a, int b) { g.edges.push_back({a, b}); };

  // Palette triangle.
  edge(kTrue, kFalse);
  edge(kTrue, kBase);
  edge(kFalse, kBase);

  // Literal gadgets: x, ¬x, Base form a triangle, so literals take colors
  // {True, False} and complementary literals take opposite ones.
  for (int v = 1; v <= f.num_vars; ++v) {
    edge(PosNode(v), NegNode(v));
    edge(PosNode(v), kBase);
    edge(NegNode(v), kBase);
  }

  // OR gadget (a, b) -> z using fresh nodes x, y, z:
  //   x–a, y–b, x–y, x–z, y–z.
  // z can be colored True iff a or b is True (given a, b in {True, False}).
  int next = 3 + 2 * f.num_vars;
  auto or_gadget = [&](int a, int b) {
    int x = next++, y = next++, z = next++;
    edge(x, a);
    edge(y, b);
    edge(x, y);
    edge(x, z);
    edge(y, z);
    return z;
  };
  for (const Clause3& c : f.clauses) {
    int z1 = or_gadget(LitNode(c.lits[0]), LitNode(c.lits[1]));
    int z2 = or_gadget(z1, LitNode(c.lits[2]));
    // Force the clause output to color True.
    edge(z2, kFalse);
    edge(z2, kBase);
  }
  return g;
}

Result<HardnessInstance> GraphToRewritingInstance(const Graph& g) {
  HardnessInstance inst;
  inst.catalog = std::make_unique<Catalog>();
  Catalog* cat = inst.catalog.get();
  AQV_ASSIGN_OR_RETURN(PredId edge_pred,
                       cat->GetOrAddPredicate("edge", 2));
  AQV_ASSIGN_OR_RETURN(
      PredId q_pred,
      cat->GetOrAddPredicate("q", 0, PredKind::kIntensional));
  AQV_ASSIGN_OR_RETURN(
      PredId v_pred,
      cat->GetOrAddPredicate("v", 0, PredKind::kIntensional));

  // q() :- all six directed edges of K3.
  Query q(cat);
  VarId a = q.AddVariable("A"), b = q.AddVariable("B"), c = q.AddVariable("C");
  q.set_head(Atom(q_pred, {}));
  auto k3 = [&](Query* dst, VarId x, VarId y, VarId z) {
    VarId tri[3] = {x, y, z};
    for (int i = 0; i < 3; ++i) {
      for (int j = 0; j < 3; ++j) {
        if (i == j) continue;
        dst->AddBodyAtom(
            Atom(edge_pred, {Term::Var(tri[i]), Term::Var(tri[j])}));
      }
    }
  };
  k3(&q, a, b, c);
  AQV_RETURN_NOT_OK(q.Validate());
  inst.query = std::move(q);

  // v() :- K3 ∪ G (both directions per graph edge).
  Query v(cat);
  VarId va = v.AddVariable("A"), vb = v.AddVariable("B"),
        vc = v.AddVariable("C");
  v.set_head(Atom(v_pred, {}));
  k3(&v, va, vb, vc);
  std::vector<VarId> node_var(g.num_nodes, -1);
  for (int i = 0; i < g.num_nodes; ++i) {
    node_var[i] = v.AddVariable("N" + std::to_string(i));
  }
  for (auto [s, t] : g.edges) {
    v.AddBodyAtom(
        Atom(edge_pred, {Term::Var(node_var[s]), Term::Var(node_var[t])}));
    v.AddBodyAtom(
        Atom(edge_pred, {Term::Var(node_var[t]), Term::Var(node_var[s])}));
  }
  AQV_RETURN_NOT_OK(v.Validate());
  AQV_RETURN_NOT_OK(inst.views.Add(std::move(v)));
  return inst;
}

Result<HardnessInstance> FormulaToRewritingInstance(const Formula3Sat& f) {
  return GraphToRewritingInstance(ThreeSatToThreeColoring(f));
}

Result<bool> BruteForceSat(const Formula3Sat& f) {
  if (f.num_vars > 24) {
    return Status::InvalidArgument("BruteForceSat limited to 24 variables");
  }
  for (uint64_t assign = 0; assign < (uint64_t{1} << f.num_vars); ++assign) {
    bool all = true;
    for (const Clause3& c : f.clauses) {
      bool clause = false;
      for (int lit : c.lits) {
        int var = lit > 0 ? lit : -lit;
        bool value = (assign >> (var - 1)) & 1;
        if ((lit > 0) == value) {
          clause = true;
          break;
        }
      }
      if (!clause) {
        all = false;
        break;
      }
    }
    if (all) return true;
  }
  return false;
}

Result<bool> BruteForceThreeColorable(const Graph& g) {
  if (g.num_nodes > 20) {
    return Status::InvalidArgument(
        "BruteForceThreeColorable limited to 20 nodes");
  }
  std::vector<int> color(g.num_nodes, 0);
  // Odometer over 3^n colorings with early clause checks would be nicer;
  // instances here are tiny, so plain enumeration with pruning suffices.
  uint64_t total = 1;
  for (int i = 0; i < g.num_nodes; ++i) total *= 3;
  for (uint64_t code = 0; code < total; ++code) {
    uint64_t c = code;
    for (int i = 0; i < g.num_nodes; ++i) {
      color[i] = static_cast<int>(c % 3);
      c /= 3;
    }
    bool proper = true;
    for (auto [s, t] : g.edges) {
      if (color[s] == color[t]) {
        proper = false;
        break;
      }
    }
    if (proper) return true;
  }
  return false;
}

Formula3Sat RandomFormula(Rng* rng, int num_vars, int num_clauses) {
  Formula3Sat f;
  f.num_vars = num_vars;
  for (int i = 0; i < num_clauses; ++i) {
    Clause3 c;
    int vars[3] = {-1, -1, -1};
    for (int j = 0; j < 3; ++j) {
      int v;
      do {
        v = static_cast<int>(rng->NextBounded(num_vars)) + 1;
      } while (v == vars[0] || v == vars[1]);
      vars[j] = v;
      c.lits[j] = rng->NextBool(0.5) ? v : -v;
    }
    f.clauses.push_back(c);
  }
  return f;
}

}  // namespace aqv
