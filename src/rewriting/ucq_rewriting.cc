#include "rewriting/ucq_rewriting.h"

#include <unordered_set>

#include "containment/minimize.h"

namespace aqv {

Result<UcqRewritingResult> FindEquivalentUnionRewriting(
    const UnionQuery& q, const ViewSet& views, const LmssOptions& options) {
  if (q.empty()) {
    return Status::InvalidArgument("empty union query");
  }
  UcqRewritingResult result;
  AQV_ASSIGN_OR_RETURN(result.minimized, MinimizeUnion(q, options.containment));

  result.exists = true;
  for (const Query& disjunct : result.minimized.disjuncts) {
    LmssOptions per = options;
    per.max_rewritings = 1;
    AQV_ASSIGN_OR_RETURN(LmssResult r,
                         FindEquivalentRewritings(disjunct, views, per));
    if (!r.exists) {
      result.exists = false;
      result.rewritings.disjuncts.clear();
      return result;
    }
    result.rewritings.disjuncts.push_back(std::move(r.rewritings[0]));
  }
  return result;
}

Result<UnionQuery> MaximallyContainedUnionRewriting(
    const UnionQuery& q, const ViewSet& views, const MiniConOptions& options) {
  UnionQuery out;
  std::unordered_set<std::string> seen;
  for (const Query& disjunct : q.disjuncts) {
    AQV_ASSIGN_OR_RETURN(MiniConResult r,
                         MiniConRewrite(disjunct, views, options));
    for (Query& rw : r.rewritings.disjuncts) {
      std::string key = rw.CanonicalKey();
      if (seen.insert(std::move(key)).second) {
        out.disjuncts.push_back(std::move(rw));
      }
    }
  }
  return out;
}

}  // namespace aqv
