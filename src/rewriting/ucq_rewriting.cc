#include "rewriting/ucq_rewriting.h"

#include "containment/minimize.h"
#include "rewriting/pipeline.h"

namespace aqv {

Result<UcqRewritingResult> FindEquivalentUnionRewriting(
    const UnionQuery& q, const ViewSet& views, const LmssOptions& options) {
  if (q.empty()) {
    return Status::InvalidArgument("empty union query");
  }
  UcqRewritingResult result;
  AQV_ASSIGN_OR_RETURN(result.minimized, MinimizeUnion(q, options.containment));

  result.exists = true;
  for (const Query& disjunct : result.minimized.disjuncts) {
    LmssOptions per = options;
    per.max_rewritings = 1;
    AQV_ASSIGN_OR_RETURN(LmssResult r,
                         FindEquivalentRewritings(disjunct, views, per));
    result.num_candidates += r.num_candidates;
    result.subsets_tested += r.subsets_tested;
    result.candidates_checked += r.candidates_checked;
    if (!r.exists) {
      result.exists = false;
      result.rewritings.disjuncts.clear();
      return result;
    }
    result.rewritings.disjuncts.push_back(std::move(r.rewritings[0]));
  }
  return result;
}

Result<UnionQuery> MaximallyContainedUnionRewriting(
    const UnionQuery& q, const ViewSet& views, const MiniConOptions& options) {
  UnionQuery out;
  QueryDeduper seen;
  for (const Query& disjunct : q.disjuncts) {
    AQV_ASSIGN_OR_RETURN(MiniConResult r,
                         MiniConRewrite(disjunct, views, options));
    for (Query& rw : r.rewritings.disjuncts) {
      AQV_ASSIGN_OR_RETURN(bool fresh, seen.Insert(rw, options.containment));
      if (fresh) {
        out.disjuncts.push_back(std::move(rw));
      }
    }
  }
  return out;
}

}  // namespace aqv
