#include "rewriting/inverse_rules.h"

#include <map>

namespace aqv {

std::string InverseRule::ToString(const Catalog& catalog) const {
  auto term_str = [&](Term t) -> std::string {
    if (t.is_const()) return catalog.constant(t.constant()).name;
    VarId v = t.var();
    if (v >= 0 && v < static_cast<VarId>(var_names.size())) {
      return var_names[v];
    }
    return "V" + std::to_string(v);
  };
  std::string out = catalog.pred(head_pred).name + "(";
  for (size_t i = 0; i < head_args.size(); ++i) {
    if (i > 0) out += ", ";
    const InverseArg& a = head_args[i];
    if (a.is_skolem()) {
      out += "f" + std::to_string(a.skolem_fn) + "(";
      for (size_t j = 0; j < skolem_params.size(); ++j) {
        if (j > 0) out += ", ";
        out += term_str(Term::Var(skolem_params[j]));
      }
      out += ")";
    } else {
      out += term_str(a.term);
    }
  }
  out += ") :- " + view_atom.ToString(catalog, var_names) + ".";
  return out;
}

std::string InverseRuleSet::ToString(const Catalog& catalog) const {
  std::string out;
  for (const InverseRule& r : rules) {
    out += r.ToString(catalog);
    out += '\n';
  }
  return out;
}

Result<InverseRuleSet> BuildInverseRules(const ViewSet& views) {
  if (views.HasUnionSources()) {
    // A tuple of a union source witnesses a *disjunction* of its rules'
    // bodies; inverting every rule would assert all disjuncts as facts.
    return Status::Unimplemented(
        "view set contains union sources (multiple rules per head "
        "predicate); inverse rules for disjunctive sources are unsound "
        "without disjunctive heads");
  }
  InverseRuleSet out;
  for (const View& view : views.views()) {
    const Query& def = view.definition;
    AQV_RETURN_NOT_OK(def.Validate());
    std::vector<VarId> params = def.HeadVars();
    std::vector<bool> distinguished = def.DistinguishedMask();

    // One Skolem function per existential variable of the view.
    std::map<VarId, int> skolem_of_var;
    for (VarId v = 0; v < def.num_vars(); ++v) {
      if (distinguished[v]) continue;
      skolem_of_var[v] = static_cast<int>(out.functions.size());
      out.functions.push_back(SkolemFunction{
          view.pred, def.var_name(v), static_cast<int>(params.size())});
    }

    for (const Atom& body_atom : def.body()) {
      InverseRule rule;
      rule.view_atom = def.head();
      rule.head_pred = body_atom.pred;
      rule.skolem_params = params;
      rule.var_names = def.var_names();
      for (Term t : body_atom.args) {
        InverseArg arg;
        if (t.is_var() && !distinguished[t.var()]) {
          arg.skolem_fn = skolem_of_var.at(t.var());
        } else {
          arg.term = t;
        }
        rule.head_args.push_back(arg);
      }
      out.rules.push_back(std::move(rule));
    }
  }
  return out;
}

}  // namespace aqv
