#include "rewriting/minicon.h"

#include <algorithm>
#include <set>

#include "rewriting/pipeline.h"
#include "rewriting/two_space_unifier.h"

namespace aqv {

namespace {

/// MCD formation for one view: grows a seed unification until the MiniCon
/// property holds, branching over the view subgoals a forced query subgoal
/// can map to.
class McdBuilder {
 public:
  McdBuilder(const Query& q, const View& view,
             std::vector<ViewAtomCandidate>* out, CandidateDeduper* seen)
      : q_(q), view_(view), out_(out), seen_(seen) {
    distinguished_ = q.DistinguishedMask();
    var_occ_ = q.VarOccurrences();
    head_var_.assign(view.definition.num_vars(), false);
    for (Term t : view.definition.head().args) {
      if (t.is_var()) head_var_[t.var()] = true;
    }
  }

  /// Seeds an MCD at query subgoal `gi` mapped onto view subgoal `vg`.
  void Seed(int gi, const Atom& vg) {
    const Atom& g = q_.body()[gi];
    if (vg.pred != g.pred || vg.arity() != g.arity()) return;
    TwoSpaceUnifier u(q_.num_vars(), view_.definition.num_vars());
    if (!u.UnifyAtoms(g, vg)) return;
    Close(u, {gi});
  }

 private:
  bool Exposed(const TwoSpaceUnifier& u, int node) const {
    if (u.PinnedConst(node).has_value()) return true;
    for (int m : u.ClassMembers(node)) {
      if (m >= q_.num_vars() && head_var_[m - q_.num_vars()]) return true;
    }
    return false;
  }

  /// Finds a query subgoal that C2 forces into the MCD, or -2 if the state
  /// is dead (an unexposed distinguished variable with nothing left to
  /// cover), or -1 if the MCD is complete.
  int FindForcedSubgoal(const TwoSpaceUnifier& u,
                        const std::vector<int>& covered) const {
    std::vector<bool> in_covered(q_.body().size(), false);
    for (int i : covered) in_covered[i] = true;
    std::set<VarId> covered_vars;
    for (int i : covered) {
      for (Term t : q_.body()[i].args) {
        if (t.is_var()) covered_vars.insert(t.var());
      }
    }
    bool dead = false;
    for (VarId x : covered_vars) {
      if (Exposed(u, u.NodeOfQVar(x))) continue;
      // x is glued to existential view variables only.
      for (int s : var_occ_[x]) {
        if (!in_covered[s]) return s;  // C2: must cover s
      }
      if (distinguished_[x]) dead = true;  // C1 unrecoverable
    }
    return dead ? -2 : -1;
  }

  void Close(const TwoSpaceUnifier& u, std::vector<int> covered) {
    int forced = FindForcedSubgoal(u, covered);
    if (forced == -2) return;
    if (forced == -1) {
      std::optional<ViewAtomCandidate> cand = MakeCandidateFromUnifier(
          q_, view_, u, covered, /*require_distinguished_exposed=*/true);
      if (!cand.has_value()) return;
      if (seen_->Insert(*cand)) {
        out_->push_back(std::move(*cand));
      }
      return;
    }
    const Atom& g = q_.body()[forced];
    covered.push_back(forced);
    for (const Atom& vg : view_.definition.body()) {
      if (vg.pred != g.pred || vg.arity() != g.arity()) continue;
      TwoSpaceUnifier next = u;
      if (!next.UnifyAtoms(g, vg)) continue;
      Close(next, covered);
    }
  }

  const Query& q_;
  const View& view_;
  std::vector<ViewAtomCandidate>* out_;
  CandidateDeduper* seen_;
  std::vector<bool> distinguished_;
  std::vector<std::vector<int>> var_occ_;
  std::vector<bool> head_var_;
};

/// Exact-cover combination of MCDs (disjoint coverage, lowest-uncovered
/// -subgoal branching enumerates each combination exactly once).
class McdCombiner {
 public:
  McdCombiner(const Query& q, const ViewSet& views,
              const std::vector<ViewAtomCandidate>& mcds,
              const MiniConOptions& options, bool verify,
              MiniConResult* result)
      : q_(q),
        views_(views),
        mcds_(mcds),
        options_(options),
        verify_(verify),
        result_(result) {
    full_mask_ = q.body().empty()
                     ? 0
                     : (q.body().size() == 64
                            ? ~uint64_t{0}
                            : (uint64_t{1} << q.body().size()) - 1);
  }

  Status Run() { return Recurse(0); }

 private:
  Status Emit() {
    AQV_ASSIGN_OR_RETURN(
        ExpansionCheck check,
        BuildAndVerify(q_, views_, chosen_,
                       /*include_comparisons=*/q_.has_comparisons(),
                       verify_ ? VerifyLevel::kContained : VerifyLevel::kNone,
                       options_.containment));
    if (verify_ && check.rewriting.has_value()) {
      ++result_->candidates_checked;
    }
    if (!check.passed) return Status::OK();
    AQV_ASSIGN_OR_RETURN(
        bool fresh, seen_.Insert(*check.rewriting, options_.containment));
    if (fresh) {
      result_->rewritings.disjuncts.push_back(std::move(*check.rewriting));
    }
    return Status::OK();
  }

  Status Recurse(uint64_t covered) {
    if (++result_->combinations_enumerated > options_.max_combinations) {
      return Status::ResourceExhausted(
          "MiniCon combinations exceeded max_combinations=" +
          std::to_string(options_.max_combinations));
    }
    if (covered == full_mask_) return Emit();
    int target = 0;
    while (covered & (uint64_t{1} << target)) ++target;
    for (const ViewAtomCandidate& m : mcds_) {
      if (!(m.covered_mask & (uint64_t{1} << target))) continue;
      if (m.covered_mask & covered) continue;  // must be disjoint
      chosen_.push_back(&m);
      Status st = Recurse(covered | m.covered_mask);
      chosen_.pop_back();
      if (!st.ok()) return st;
    }
    return Status::OK();
  }

  const Query& q_;
  const ViewSet& views_;
  const std::vector<ViewAtomCandidate>& mcds_;
  const MiniConOptions& options_;
  bool verify_;
  MiniConResult* result_;
  uint64_t full_mask_ = 0;
  std::vector<const ViewAtomCandidate*> chosen_;
  QueryDeduper seen_;
};

}  // namespace

Result<MiniConResult> MiniConRewrite(const Query& q, const ViewSet& views,
                                     const MiniConOptions& options) {
  AQV_RETURN_NOT_OK(q.Validate());
  if (q.body().size() > 64) {
    return Status::Unimplemented(
        "MiniCon limited to 64 subgoals (covered-set bitmasks); query has " +
        std::to_string(q.body().size()));
  }
  MiniConResult result;
  CandidateDeduper seen;
  for (const View& view : views.views()) {
    McdBuilder builder(q, view, &result.mcds, &seen);
    for (int gi = 0; gi < static_cast<int>(q.body().size()); ++gi) {
      for (const Atom& vg : view.definition.body()) {
        builder.Seed(gi, vg);
      }
    }
  }

  // The MiniCon theorem covers comparison-free inputs; verify otherwise.
  bool verify = options.verify_candidates || q.has_comparisons();
  McdCombiner combiner(q, views, result.mcds, options, verify, &result);
  AQV_RETURN_NOT_OK(combiner.Run());

  if (options.prune_subsumed) {
    AQV_ASSIGN_OR_RETURN(
        result.rewritings,
        RemoveSubsumedDisjuncts(result.rewritings, views, options.containment));
  }
  return result;
}

}  // namespace aqv
