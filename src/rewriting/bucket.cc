#include "rewriting/bucket.h"

#include <algorithm>

#include "containment/homomorphism.h"
#include "cq/substitution.h"
#include "rewriting/pipeline.h"
#include "rewriting/two_space_unifier.h"
#include "views/expansion.h"

namespace aqv {

namespace {

/// Fills bucket `gi` with one entry per (view, view-subgoal) unification.
void FillBucket(const Query& q, int gi, const ViewSet& views,
                std::vector<ViewAtomCandidate>* bucket) {
  const Atom& g = q.body()[gi];
  CandidateDeduper seen;
  for (const View& view : views.views()) {
    const Query& def = view.definition;
    for (const Atom& vg : def.body()) {
      if (vg.pred != g.pred || vg.arity() != g.arity()) continue;
      TwoSpaceUnifier u(q.num_vars(), def.num_vars());
      if (!u.UnifyAtoms(g, vg)) continue;
      std::optional<ViewAtomCandidate> cand = MakeCandidateFromUnifier(
          q, view, u, {gi}, /*require_distinguished_exposed=*/true);
      if (!cand.has_value()) continue;
      if (seen.Insert(*cand)) {
        bucket->push_back(std::move(*cand));
      }
    }
  }
}

/// Builds the "probe" expansion of a combination directly over q's variable
/// space (q vars keep their ids; candidate fresh vars and imported view
/// existentials extend it). Homomorphisms from the probe into q yield the
/// variable identifications ("added join predicates" in the classic Bucket
/// description) that can make a failing candidate contained.
Query BuildProbe(const Query& q, const ViewSet& views,
                 const std::vector<const ViewAtomCandidate*>& picks) {
  Query probe(q.catalog());
  for (int v = 0; v < q.num_vars(); ++v) probe.AddVariable(q.var_name(v));
  probe.set_head(q.head());

  // Pass 1: reserve every pick's fresh slots contiguously, before any view
  // body imports extend the variable space further.
  int total_fresh = 0;
  for (const ViewAtomCandidate* pick : picks) total_fresh += pick->num_fresh;
  for (int i = 0; i < total_fresh; ++i) {
    probe.AddVariable("PF" + std::to_string(i));
  }
  std::vector<Atom> remapped;
  int fresh_base = q.num_vars();
  for (const ViewAtomCandidate* pick : picks) {
    Atom a = pick->atom;
    for (Term& t : a.args) {
      if (t.is_var() && t.var() >= q.num_vars()) {
        t = Term::Var(fresh_base + (t.var() - q.num_vars()));
      }
    }
    remapped.push_back(std::move(a));
    fresh_base += pick->num_fresh;
  }

  // Pass 2: unfold each view atom into the probe.
  for (size_t i = 0; i < picks.size(); ++i) {
    const Atom& a = remapped[i];
    const Query& def = views.FindByPred(a.pred)->definition;
    VarImporter imp(def, &probe, "pe" + std::to_string(i) + "_");
    for (int j = 0; j < a.arity(); ++j) {
      Term h = def.head().args[j];
      if (h.is_var() && !imp.HasMapping(h.var())) {
        imp.Preset(h.var(), a.args[j]);
      }
    }
    for (const Atom& b : def.body()) probe.AddBodyAtom(imp.ImportAtom(b));
  }
  return probe;
}

/// Applies a probe homomorphism to the picks, yielding enriched candidates
/// whose fresh variables are replaced by q-space terms.
std::vector<ViewAtomCandidate> EnrichPicks(
    const Query& q, const std::vector<const ViewAtomCandidate*>& picks,
    const Substitution& g) {
  std::vector<ViewAtomCandidate> out;
  int fresh_base = q.num_vars();
  for (const ViewAtomCandidate* pick : picks) {
    ViewAtomCandidate e = *pick;
    for (Term& t : e.atom.args) {
      if (!t.is_var()) continue;
      VarId v = t.var();
      if (v >= q.num_vars()) v = fresh_base + (v - q.num_vars());
      if (v < g.num_source_vars() && g.IsBound(v)) t = g.Get(v);
    }
    fresh_base += e.num_fresh;
    e.num_fresh = 0;  // all candidate-local vars are now q terms
    out.push_back(std::move(e));
  }
  return out;
}

}  // namespace

Result<BucketResult> BucketRewrite(const Query& q, const ViewSet& views,
                                   const BucketOptions& options) {
  AQV_RETURN_NOT_OK(q.Validate());
  if (q.body().size() > 64) {
    return Status::Unimplemented(
        "bucket algorithm limited to 64 subgoals (covered-set bitmasks); "
        "query has " + std::to_string(q.body().size()));
  }
  BucketResult result;
  int n = static_cast<int>(q.body().size());
  result.buckets.resize(n);
  for (int i = 0; i < n; ++i) {
    FillBucket(q, i, views, &result.buckets[i]);
    if (result.buckets[i].empty()) {
      // A subgoal no view can cover: no complete rewriting exists.
      return result;
    }
  }

  // Cartesian product over buckets.
  std::vector<int> choice(n, 0);
  QueryDeduper seen_rewritings;
  for (;;) {
    if (++result.combinations_enumerated > options.max_combinations) {
      return Status::ResourceExhausted(
          "bucket combinations exceeded max_combinations=" +
          std::to_string(options.max_combinations));
    }
    // Deduplicate picks by candidate identity (one entry may serve several
    // subgoals).
    std::vector<const ViewAtomCandidate*> picks;
    CandidateDeduper pick_seen;
    for (int i = 0; i < n; ++i) {
      const ViewAtomCandidate* c = &result.buckets[i][choice[i]];
      if (pick_seen.Insert(*c)) picks.push_back(c);
    }
    auto try_candidate =
        [&](const std::vector<const ViewAtomCandidate*>& cand_picks)
        -> Result<bool> {
      AQV_ASSIGN_OR_RETURN(
          ExpansionCheck check,
          BuildAndVerify(q, views, cand_picks,
                         /*include_comparisons=*/q.has_comparisons(),
                         options.require_equivalent ? VerifyLevel::kEquivalent
                                                    : VerifyLevel::kContained,
                         options.containment));
      if (!check.rewriting.has_value()) return false;
      ++result.candidates_checked;
      if (!check.passed) return false;
      AQV_ASSIGN_OR_RETURN(
          bool fresh,
          seen_rewritings.Insert(*check.rewriting, options.containment));
      if (fresh) {
        result.rewritings.disjuncts.push_back(std::move(*check.rewriting));
      }
      return true;
    };

    AQV_ASSIGN_OR_RETURN(bool direct_hit, try_candidate(picks));
    if (!direct_hit && options.max_enrichments_per_combination > 0) {
      // Classic Bucket's containment check may add join predicates: probe
      // homomorphisms into q identify fresh variables with q terms.
      Query probe = BuildProbe(q, views, picks);
      HomSearchOptions hopts;
      hopts.node_budget = options.containment.node_budget;
      std::vector<Substitution> enrichments;
      auto cb = [&](const Substitution& g) {
        enrichments.push_back(g);
        return enrichments.size() < options.max_enrichments_per_combination;
      };
      AQV_ASSIGN_OR_RETURN(int64_t homs,
                           ForEachHomomorphism(probe, q, hopts, cb));
      (void)homs;
      for (const Substitution& g : enrichments) {
        std::vector<ViewAtomCandidate> enriched = EnrichPicks(q, picks, g);
        std::vector<const ViewAtomCandidate*> eps;
        CandidateDeduper ekeys;
        for (const ViewAtomCandidate& e : enriched) {
          if (ekeys.Insert(e)) eps.push_back(&e);
        }
        AQV_ASSIGN_OR_RETURN(bool hit, try_candidate(eps));
        (void)hit;
      }
    }
    // Advance the product counter.
    int pos = n - 1;
    while (pos >= 0) {
      if (++choice[pos] < static_cast<int>(result.buckets[pos].size())) break;
      choice[pos] = 0;
      --pos;
    }
    if (pos < 0) break;
  }

  if (options.prune_subsumed) {
    AQV_ASSIGN_OR_RETURN(
        result.rewritings,
        RemoveSubsumedDisjuncts(result.rewritings, views, options.containment));
  }
  return result;
}

}  // namespace aqv
