/// \file
/// Umbrella header of the `rewriting` module's shared currency: candidate
/// view atoms. CanonicalViewTuples computes, for a fixed query Q, every way
/// a view can contribute to a rewriting of Q (LMSS Lemma: a view is usable
/// iff there is a mapping from Q-relevant view subgoals into Q). The LMSS
/// search (lmss.h), Bucket (bucket.h), and MiniCon (minicon.h) all consume
/// ViewAtomCandidate values. Invariant: candidate atoms live in an extended term
/// space — var ids below Q.num_vars() are Q's variables, ids at or above it
/// are candidate-local fresh existentials — and `covered` always lists the
/// Q body atoms the candidate accounts for.

#ifndef AQV_REWRITING_CANDIDATES_H_
#define AQV_REWRITING_CANDIDATES_H_

#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "containment/containment.h"
#include "cq/query.h"
#include "util/status.h"
#include "views/view.h"

namespace aqv {

/// \brief One candidate view atom usable in a rewriting of a fixed query Q.
///
/// The shared currency of the LMSS, Bucket, and MiniCon engines. `atom` is a
/// view-head atom whose arguments live in an extended term space:
///   - Term::Var(v) with v <  Q.num_vars()  -> the query variable v;
///   - Term::Var(v) with v >= Q.num_vars()  -> candidate-local fresh
///     variable number v - Q.num_vars() (an existential output of the view
///     nobody in Q constrains);
///   - constants as themselves.
///
/// `covered` lists the Q body atoms this candidate accounts for (for LMSS
/// candidates: the image of the view body; for MiniCon: the MCD's subgoal
/// set; for Bucket: the single bucketed subgoal).
///
/// `induced_equalities` are Q-variable identifications the candidate forces
/// (e.g. unifying q's r(X, Y) with a view's r(B, B) forces X = Y); they are
/// applied to the whole rewriting when candidates are combined.
struct ViewAtomCandidate {
  const View* view = nullptr;
  Atom atom;
  int num_fresh = 0;
  std::vector<int> covered;
  uint64_t covered_mask = 0;
  std::vector<std::pair<VarId, Term>> induced_equalities;

  /// Human-readable rendering against `q`'s variable names.
  std::string ToString(const Query& q) const;

  /// 64-bit dedup fingerprint (view pred + args + equalities + covered set).
  /// Equal candidates always collide; CandidateDeduper (pipeline.h) confirms
  /// colliding entries field-wise via operator==.
  uint64_t Fingerprint() const;

  /// Structural identity: same atom, covered set, and induced-equality set
  /// (order-insensitive). `view` and `num_fresh` are derived from these.
  friend bool operator==(const ViewAtomCandidate& a,
                         const ViewAtomCandidate& b);
};

/// Options for candidate generation.
struct CandidateOptions {
  /// Budget for each homomorphism search during generation.
  uint64_t node_budget = 5'000'000;
  /// Upper bound on generated candidates (kResourceExhausted past it).
  uint64_t max_candidates = 100'000;
  /// Cap on homomorphisms *visited* per view (0 = unlimited). Useful when a
  /// view body admits astronomically many embeddings that all collapse to
  /// the same candidate (the NP-hardness instances). A non-zero cap can
  /// make the pool incomplete in general — the LMSS search stays sound but
  /// may miss rewritings.
  uint64_t max_homs_per_view = 0;
};

/// \brief LMSS/CoreCover candidate pool: one candidate per homomorphism from
/// a view body into Q's body (the view tuples over Q's canonical database).
///
/// Any equivalent complete rewriting of Q is equivalent to one assembled
/// from this pool with at most |body(Q)| atoms (LMSS bounded-rewriting
/// theorem + the canonical-database argument), which is what makes the LMSS
/// search in lmss.h complete. Candidates never have fresh variables or
/// induced equalities (homomorphism images are total on head variables).
///
/// Precondition: |body(q)| <= 64 (covered sets are bitmasks).
[[nodiscard]] Result<std::vector<ViewAtomCandidate>> CanonicalViewTuples(
    const Query& q, const ViewSet& views, const CandidateOptions& options = {});

/// \brief Builds the rewriting query for a chosen set of candidates: head =
/// Q's head, body = the candidate atoms (fresh variables renumbered),
/// induced equalities applied, Q's comparisons carried over when
/// `include_comparisons`.
///
/// Returns nullopt when the combination is unsatisfiable (equality constant
/// clash) or unsafe (a head variable of Q ends up unbound), i.e. not a
/// usable rewriting.
std::optional<Query> BuildRewriting(
    const Query& q, const std::vector<const ViewAtomCandidate*>& picks,
    bool include_comparisons);

/// Removes union members whose expansion is contained in another member's
/// expansion (cleanup pass for maximally-contained rewritings). Keeps the
/// first representative of each equivalence class.
[[nodiscard]] Result<UnionQuery> RemoveSubsumedDisjuncts(const UnionQuery& rewritings,
                                           const ViewSet& views,
                                           const ContainmentOptions& options);

class TwoSpaceUnifier;

/// \brief Materializes a ViewAtomCandidate from a completed query/view
/// unification (Bucket entries, MiniCon MCDs).
///
/// The candidate's atom takes, per view-head position: the pinned constant
/// of its class, else the smallest query variable in its class, else a
/// candidate-local fresh variable (one per class). Classes identifying
/// several query variables (or a query variable with a constant) become
/// induced equalities.
///
/// Returns nullopt when `require_distinguished_exposed` is set and some
/// distinguished variable of `q` occurring in a covered subgoal is unified
/// only with existential view variables — such a candidate can never
/// recover the output value (the Bucket/MiniCon head-variable condition).
std::optional<ViewAtomCandidate> MakeCandidateFromUnifier(
    const Query& q, const View& view, const TwoSpaceUnifier& unifier,
    std::vector<int> covered, bool require_distinguished_exposed);

}  // namespace aqv

#endif  // AQV_REWRITING_CANDIDATES_H_
