#include "service/batch.h"

#include <cassert>

namespace aqv {

std::vector<ServiceRequest> ToServiceRequests(
    const ScenarioRequestBatch& batch) {
  // The parallel-array invariant is documented on ScenarioRequestBatch but
  // not enforced by the type; don't read past a hand-built shorter array.
  assert(batch.engines.size() == batch.requests.size());
  size_t n = batch.engines.size() < batch.requests.size()
                 ? batch.engines.size()
                 : batch.requests.size();
  std::vector<ServiceRequest> out;
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    ServiceRequest sr;
    sr.engine = batch.engines[i];
    sr.request = batch.requests[i];
    out.push_back(std::move(sr));
  }
  return out;
}

}  // namespace aqv
