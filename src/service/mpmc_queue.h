/// \file
/// A deliberately simple multi-producer multi-consumer queue: one mutex,
/// one condition variable, one deque. No lock-free cleverness and no work
/// stealing — the items flowing through it are NP-hard rewriting problems
/// whose per-item cost dwarfs any queue overhead, so contention on the
/// queue lock is never the bottleneck (profile before replacing this).
/// Close() wakes every blocked consumer; Pop() keeps draining queued items
/// after Close and only then reports shutdown, so no accepted work is lost.

#ifndef AQV_SERVICE_MPMC_QUEUE_H_
#define AQV_SERVICE_MPMC_QUEUE_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <utility>

namespace aqv {

/// \brief Unbounded blocking MPMC queue. All members are thread-safe.
template <typename T>
class MpmcQueue {
 public:
  /// Enqueues `item` and wakes one consumer. Returns false (dropping the
  /// item) if the queue was already closed.
  bool Push(T item) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (closed_) return false;
      items_.push_back(std::move(item));
    }
    ready_.notify_one();
    return true;
  }

  /// Blocks until an item is available or the queue is closed and drained.
  /// Returns true with `*out` filled, or false meaning "shut down".
  bool Pop(T* out) {
    std::unique_lock<std::mutex> lock(mu_);
    ready_.wait(lock, [this] { return closed_ || !items_.empty(); });
    if (items_.empty()) return false;  // closed and drained
    *out = std::move(items_.front());
    items_.pop_front();
    return true;
  }

  /// Rejects future Push calls and wakes all consumers; already-queued
  /// items are still handed out by Pop.
  void Close() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      closed_ = true;
    }
    ready_.notify_all();
  }

  size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return items_.size();
  }

 private:
  mutable std::mutex mu_;
  std::condition_variable ready_;
  std::deque<T> items_;
  bool closed_ = false;
};

}  // namespace aqv

#endif  // AQV_SERVICE_MPMC_QUEUE_H_
