/// \file
/// Bridge between the workload layer's scenario-batch synthesizer
/// (workload/registry.h: MakeBatchFromScenarios) and the service layer:
/// converts a ScenarioRequestBatch — plain (engine, RewriteRequest) pairs
/// with the owning Scenario objects alongside — into the ServiceRequest
/// vector RewriteService::RewriteBatch consumes. Lives in `service` (not
/// `workload`) so the module graph stays acyclic: workload knows nothing
/// about the service; the service consumes workload batches.

#ifndef AQV_SERVICE_BATCH_H_
#define AQV_SERVICE_BATCH_H_

#include <vector>

#include "service/service.h"
#include "workload/registry.h"

namespace aqv {

/// Zips a ScenarioRequestBatch's parallel (engines, requests) arrays into
/// ServiceRequests, preserving order. The batch (specifically its owned
/// scenarios, whose catalogs and view sets the requests point into) must
/// outlive every returned request and its in-flight execution.
std::vector<ServiceRequest> ToServiceRequests(
    const ScenarioRequestBatch& batch);

}  // namespace aqv

#endif  // AQV_SERVICE_BATCH_H_
