#include "service/service.h"

#include <algorithm>
#include <utility>

namespace aqv {

namespace {

double MsBetween(std::chrono::steady_clock::time_point a,
                 std::chrono::steady_clock::time_point b) {
  return std::chrono::duration<double, std::milli>(b - a).count();
}

/// Nearest-rank percentile of an ascending-sorted sample.
double Percentile(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  size_t idx = static_cast<size_t>(q * static_cast<double>(sorted.size() - 1) +
                                   0.5);
  if (idx >= sorted.size()) idx = sorted.size() - 1;
  return sorted[idx];
}

}  // namespace

RewriteService::RewriteService(ServiceOptions options)
    : options_(options),
      oracle_(options.oracle_max_entries, options.oracle_shards),
      start_(std::chrono::steady_clock::now()) {
  int workers = options_.num_workers;
  if (workers <= 0) {
    unsigned hw = std::thread::hardware_concurrency();
    workers = hw == 0 ? 1 : static_cast<int>(hw);
  }
  workers_.reserve(static_cast<size_t>(workers));
  for (int i = 0; i < workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

RewriteService::~RewriteService() {
  {
    std::lock_guard<std::mutex> lock(results_mu_);
    shutting_down_ = true;
  }
  queue_.Close();  // workers drain queued jobs, then exit
  for (std::thread& t : workers_) t.join();
}

void RewriteService::WorkerLoop() {
  Job job;
  while (queue_.Pop(&job)) {
    ServiceResponse resp = Execute(job);
    if (resp.status.ok()) {
      completed_ok_.fetch_add(1, std::memory_order_relaxed);
    } else {
      completed_failed_.fetch_add(1, std::memory_order_relaxed);
    }
    {
      std::lock_guard<std::mutex> lock(results_mu_);
      pending_.erase(job.ticket);
      done_.emplace(job.ticket, std::move(resp));
    }
    result_ready_.notify_all();
  }
}

ServiceResponse RewriteService::Execute(Job& job) {
  ServiceResponse resp;
  resp.ticket = job.ticket;
  resp.engine = job.request.engine;
  // The worker owns the job outright, so wire the oracle in place rather
  // than deep-copying the request (its whole UCQ) per execution.
  RewriteRequest& request = job.request.request;
  if (options_.share_oracle) request.options.oracle = &oracle_;
  auto t0 = std::chrono::steady_clock::now();
  Result<RewriteResponse> r = RunEngine(job.request.engine, request);
  resp.latency_ms = MsBetween(t0, std::chrono::steady_clock::now());
  if (r.ok()) {
    resp.response = std::move(r).value();
  } else {
    resp.status = r.status();
  }
  return resp;
}

Result<uint64_t> RewriteService::Submit(ServiceRequest request) {
  Job job;
  {
    std::lock_guard<std::mutex> lock(results_mu_);
    if (shutting_down_) {
      return Status::Internal("RewriteService is shutting down");
    }
    job.ticket = next_ticket_++;
    pending_.insert(job.ticket);
  }
  uint64_t ticket = job.ticket;
  job.request = std::move(request);
  if (!queue_.Push(std::move(job))) {
    std::lock_guard<std::mutex> lock(results_mu_);
    pending_.erase(ticket);
    return Status::Internal("RewriteService is shutting down");
  }
  return ticket;
}

Result<ServiceResponse> RewriteService::Wait(uint64_t ticket) {
  std::unique_lock<std::mutex> lock(results_mu_);
  // Also wake when the ticket vanishes entirely (a racing Wait/TryWait on
  // the same ticket collected it): that must report kNotFound, not hang.
  result_ready_.wait(lock, [&] {
    return done_.count(ticket) != 0 || pending_.count(ticket) == 0;
  });
  auto it = done_.find(ticket);
  if (it == done_.end()) {
    return Status::NotFound("ticket " + std::to_string(ticket) +
                            " was never issued or was already collected");
  }
  ServiceResponse resp = std::move(it->second);
  done_.erase(it);
  return resp;
}

Result<std::optional<ServiceResponse>> RewriteService::TryWait(
    uint64_t ticket) {
  std::lock_guard<std::mutex> lock(results_mu_);
  auto it = done_.find(ticket);
  if (it == done_.end()) {
    if (pending_.count(ticket) == 0) {
      return Status::NotFound("ticket " + std::to_string(ticket) +
                              " was never issued or was already collected");
    }
    return std::optional<ServiceResponse>();  // still in flight
  }
  std::optional<ServiceResponse> resp(std::move(it->second));
  done_.erase(it);
  return resp;
}

Result<BatchResult> RewriteService::RewriteBatch(
    const std::vector<ServiceRequest>& batch) {
  OracleStats oracle_before = oracle_.stats();
  auto t0 = std::chrono::steady_clock::now();

  std::vector<uint64_t> tickets;
  tickets.reserve(batch.size());
  for (const ServiceRequest& request : batch) {
    Result<uint64_t> ticket = Submit(request);
    if (!ticket.ok()) {
      // Shutdown raced the batch: collect what was accepted, then fail.
      for (uint64_t t : tickets) (void)Wait(t);
      return ticket.status();
    }
    tickets.push_back(ticket.value());
  }

  BatchResult out;
  out.responses.reserve(batch.size());
  std::vector<double> latencies;
  latencies.reserve(batch.size());
  for (uint64_t ticket : tickets) {
    // Tickets are ours and uncollected, so Wait cannot return kNotFound.
    AQV_ASSIGN_OR_RETURN(ServiceResponse resp, Wait(ticket));
    latencies.push_back(resp.latency_ms);
    if (resp.status.ok()) {
      ++out.stats.ok;
    } else {
      ++out.stats.failed;
    }
    out.responses.push_back(std::move(resp));
  }

  out.stats.requests = batch.size();
  out.stats.wall_ms = MsBetween(t0, std::chrono::steady_clock::now());
  if (out.stats.wall_ms > 0.0) {
    out.stats.throughput_rps =
        static_cast<double>(batch.size()) / (out.stats.wall_ms / 1000.0);
  }
  std::sort(latencies.begin(), latencies.end());
  out.stats.p50_ms = Percentile(latencies, 0.50);
  out.stats.p95_ms = Percentile(latencies, 0.95);
  out.stats.max_ms = latencies.empty() ? 0.0 : latencies.back();
  out.stats.oracle = oracle_.stats() - oracle_before;
  out.stats.num_workers = num_workers();
  out.stats.oracle_shards = oracle_.num_shards();
  return out;
}

ServiceStats RewriteService::lifetime_stats() const {
  ServiceStats s;
  s.ok = completed_ok_.load(std::memory_order_relaxed);
  s.failed = completed_failed_.load(std::memory_order_relaxed);
  s.requests = s.ok + s.failed;
  s.wall_ms = MsBetween(start_, std::chrono::steady_clock::now());
  if (s.wall_ms > 0.0) {
    s.throughput_rps = static_cast<double>(s.requests) / (s.wall_ms / 1000.0);
  }
  s.oracle = oracle_.stats();
  s.num_workers = static_cast<int>(workers_.size());
  s.oracle_shards = oracle_.num_shards();
  return s;
}

}  // namespace aqv
