#include "service/service.h"

#include <algorithm>
#include <cmath>
#include <utility>

namespace aqv {

namespace {

double MsBetween(std::chrono::steady_clock::time_point a,
                 std::chrono::steady_clock::time_point b) {
  return std::chrono::duration<double, std::milli>(b - a).count();
}

}  // namespace

double NearestRankPercentile(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  // ceil(q*n)-th order statistic, 1-based; clamp guards q outside (0, 1].
  size_t rank = static_cast<size_t>(
      std::ceil(q * static_cast<double>(sorted.size())));
  if (rank < 1) rank = 1;
  if (rank > sorted.size()) rank = sorted.size();
  return sorted[rank - 1];
}

RewriteService::RewriteService(ServiceOptions options)
    : options_(options),
      oracle_(options.oracle_max_entries, options.oracle_shards),
      start_(std::chrono::steady_clock::now()) {
  int workers = options_.num_workers;
  if (workers <= 0) {
    unsigned hw = std::thread::hardware_concurrency();
    workers = hw == 0 ? 1 : static_cast<int>(hw);
  }
  workers_.reserve(static_cast<size_t>(workers));
  for (int i = 0; i < workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

RewriteService::~RewriteService() {
  {
    std::lock_guard<std::mutex> lock(results_mu_);
    shutting_down_ = true;
  }
  queue_.Close();  // workers drain queued jobs, then exit
  for (std::thread& t : workers_) t.join();
}

void RewriteService::WorkerLoop() {
  Job job;
  while (queue_.Pop(&job)) {
    // Completion counters are bumped *before* the result is delivered
    // (before the done-map insert, or before a generic task's body — the
    // body is its delivery): anything sequenced after collecting a result,
    // like a later pipelined command rendering lifetime_stats(), must
    // already see this job counted, or exact-count observers would race
    // the increment.
    if (std::holds_alternative<ServiceRequest>(job.request)) {
      ServiceResponse resp = ExecuteRewrite(job);
      Count(resp.status.ok());
      {
        std::lock_guard<std::mutex> lock(results_mu_);
        pending_.erase(job.ticket);
        done_.emplace(job.ticket, std::move(resp));
      }
    } else if (std::holds_alternative<AnswerRequest>(job.request)) {
      AnswerServiceResponse resp = ExecuteAnswer(job);
      Count(resp.status.ok());
      {
        std::lock_guard<std::mutex> lock(results_mu_);
        pending_.erase(job.ticket);
        done_answers_.emplace(job.ticket, std::move(resp));
      }
    } else {
      // Generic task: it delivers its own result; nothing lands in a done
      // map (Wait on this ticket reports kNotFound, as documented).
      Count(true);
      std::get<std::function<void()>>(job.request)();
      {
        std::lock_guard<std::mutex> lock(results_mu_);
        pending_.erase(job.ticket);
      }
    }
    result_ready_.notify_all();
  }
}

ServiceResponse RewriteService::ExecuteRewrite(Job& job) {
  ServiceRequest& rewrite = std::get<ServiceRequest>(job.request);
  ServiceResponse resp;
  resp.ticket = job.ticket;
  resp.engine = rewrite.engine;
  // The worker owns the job outright, so wire the oracle in place rather
  // than deep-copying the request (its whole UCQ) per execution.
  RewriteRequest& request = rewrite.request;
  if (options_.share_oracle) request.options.oracle = &oracle_;
  auto t0 = std::chrono::steady_clock::now();
  Result<RewriteResponse> r = RunEngine(rewrite.engine, request);
  resp.latency_ms = MsBetween(t0, std::chrono::steady_clock::now());
  if (r.ok()) {
    resp.response = std::move(r).value();
  } else {
    resp.status = r.status();
  }
  return resp;
}

AnswerServiceResponse RewriteService::ExecuteAnswer(Job& job) {
  AnswerRequest& answer = std::get<AnswerRequest>(job.request);
  AnswerServiceResponse resp;
  resp.ticket = job.ticket;
  // One wire point suffices: AnswerQuery copies request.options into the
  // planner's engine options itself.
  if (options_.share_oracle) answer.options.oracle = &oracle_;
  auto t0 = std::chrono::steady_clock::now();
  Result<AnswerResponse> r = AnswerQuery(answer);
  resp.latency_ms = MsBetween(t0, std::chrono::steady_clock::now());
  if (r.ok()) {
    resp.response = std::move(r).value();
  } else {
    resp.status = r.status();
  }
  return resp;
}

Result<uint64_t> RewriteService::Enqueue(Job job) {
  {
    std::lock_guard<std::mutex> lock(results_mu_);
    if (shutting_down_) {
      return Status::Internal("RewriteService is shutting down");
    }
    job.ticket = next_ticket_++;
    pending_.insert(job.ticket);
  }
  uint64_t ticket = job.ticket;
  if (!queue_.Push(std::move(job))) {
    std::lock_guard<std::mutex> lock(results_mu_);
    pending_.erase(ticket);
    return Status::Internal("RewriteService is shutting down");
  }
  return ticket;
}

Result<uint64_t> RewriteService::Submit(ServiceRequest request) {
  Job job;
  job.request = std::move(request);
  return Enqueue(std::move(job));
}

Result<uint64_t> RewriteService::SubmitAnswer(AnswerRequest request) {
  Job job;
  job.request = std::move(request);
  return Enqueue(std::move(job));
}

Status RewriteService::SubmitTask(std::function<void()> task) {
  Job job;
  job.request = std::move(task);
  Result<uint64_t> ticket = Enqueue(std::move(job));
  if (!ticket.ok()) return ticket.status();
  return Status::OK();
}

template <typename Response>
Result<Response> RewriteService::WaitIn(
    std::unordered_map<uint64_t, Response>& done, uint64_t ticket,
    const char* flavor) {
  std::unique_lock<std::mutex> lock(results_mu_);
  // Also wake when the ticket vanishes entirely (a racing Wait/TryWait on
  // the same ticket collected it, or it belongs to the other job kind):
  // that must report kNotFound, not hang.
  result_ready_.wait(lock, [&] {
    return done.count(ticket) != 0 || pending_.count(ticket) == 0;
  });
  auto it = done.find(ticket);
  if (it == done.end()) {
    return Status::NotFound("ticket " + std::to_string(ticket) +
                            " was never issued as " + flavor +
                            " job or was already collected");
  }
  Response resp = std::move(it->second);
  done.erase(it);
  return resp;
}

template <typename Response>
Result<std::optional<Response>> RewriteService::TryWaitIn(
    std::unordered_map<uint64_t, Response>& done, uint64_t ticket,
    const char* flavor) {
  std::lock_guard<std::mutex> lock(results_mu_);
  auto it = done.find(ticket);
  if (it == done.end()) {
    if (pending_.count(ticket) == 0) {
      return Status::NotFound("ticket " + std::to_string(ticket) +
                              " was never issued as " + flavor +
                              " job or was already collected");
    }
    return std::optional<Response>();  // still in flight
  }
  std::optional<Response> resp(std::move(it->second));
  done.erase(it);
  return resp;
}

Result<ServiceResponse> RewriteService::Wait(uint64_t ticket) {
  return WaitIn(done_, ticket, "a rewrite");
}

Result<std::optional<ServiceResponse>> RewriteService::TryWait(
    uint64_t ticket) {
  return TryWaitIn(done_, ticket, "a rewrite");
}

Result<AnswerServiceResponse> RewriteService::WaitAnswer(uint64_t ticket) {
  return WaitIn(done_answers_, ticket, "an answering");
}

Result<std::optional<AnswerServiceResponse>> RewriteService::TryWaitAnswer(
    uint64_t ticket) {
  return TryWaitIn(done_answers_, ticket, "an answering");
}

namespace {

/// Shared tail of the two batch APIs: wall time, throughput, latency
/// percentiles, per-batch oracle delta.
void FinalizeBatchStats(ServiceStats* stats, size_t batch_size,
                        std::vector<double>* latencies,
                        std::chrono::steady_clock::time_point t0,
                        const OracleStats& oracle_before,
                        const ContainmentOracle& oracle, int num_workers) {
  stats->requests = batch_size;
  stats->wall_ms = MsBetween(t0, std::chrono::steady_clock::now());
  if (stats->wall_ms > 0.0) {
    stats->throughput_rps =
        static_cast<double>(batch_size) / (stats->wall_ms / 1000.0);
  }
  std::sort(latencies->begin(), latencies->end());
  stats->p50_ms = NearestRankPercentile(*latencies, 0.50);
  stats->p95_ms = NearestRankPercentile(*latencies, 0.95);
  stats->max_ms = latencies->empty() ? 0.0 : latencies->back();
  stats->oracle = oracle.stats() - oracle_before;
  stats->num_workers = num_workers;
  stats->oracle_shards = oracle.num_shards();
}

}  // namespace

Result<BatchResult> RewriteService::RewriteBatch(
    const std::vector<ServiceRequest>& batch) {
  OracleStats oracle_before = oracle_.stats();
  auto t0 = std::chrono::steady_clock::now();

  std::vector<uint64_t> tickets;
  tickets.reserve(batch.size());
  for (const ServiceRequest& request : batch) {
    Result<uint64_t> ticket = Submit(request);
    if (!ticket.ok()) {
      // Shutdown raced the batch: collect what was accepted, then fail.
      // Discard is sound: the batch already reports the submit error, and
      // draining exists only to keep tickets from outliving the pool.
      for (uint64_t t : tickets) AQV_DISCARD_STATUS(Wait(t));
      return ticket.status();
    }
    tickets.push_back(ticket.value());
  }

  BatchResult out;
  out.responses.reserve(batch.size());
  std::vector<double> latencies;
  latencies.reserve(batch.size());
  for (uint64_t ticket : tickets) {
    // Tickets are ours and uncollected, so Wait cannot return kNotFound.
    AQV_ASSIGN_OR_RETURN(ServiceResponse resp, Wait(ticket));
    latencies.push_back(resp.latency_ms);
    if (resp.status.ok()) {
      ++out.stats.ok;
    } else {
      ++out.stats.failed;
    }
    out.responses.push_back(std::move(resp));
  }

  FinalizeBatchStats(&out.stats, batch.size(), &latencies, t0, oracle_before,
                     oracle_, num_workers());
  return out;
}

Result<AnswerBatchResult> RewriteService::AnswerBatch(
    const std::vector<AnswerRequest>& batch) {
  OracleStats oracle_before = oracle_.stats();
  auto t0 = std::chrono::steady_clock::now();

  std::vector<uint64_t> tickets;
  tickets.reserve(batch.size());
  for (const AnswerRequest& request : batch) {
    Result<uint64_t> ticket = SubmitAnswer(request);
    if (!ticket.ok()) {
      // Same justified discard as RewriteBatch: submit's error is the
      // batch result; the drain only reclaims accepted tickets.
      for (uint64_t t : tickets) AQV_DISCARD_STATUS(WaitAnswer(t));
      return ticket.status();
    }
    tickets.push_back(ticket.value());
  }

  AnswerBatchResult out;
  out.responses.reserve(batch.size());
  std::vector<double> latencies;
  latencies.reserve(batch.size());
  for (uint64_t ticket : tickets) {
    AQV_ASSIGN_OR_RETURN(AnswerServiceResponse resp, WaitAnswer(ticket));
    latencies.push_back(resp.latency_ms);
    if (resp.status.ok()) {
      ++out.stats.ok;
    } else {
      ++out.stats.failed;
    }
    out.responses.push_back(std::move(resp));
  }

  FinalizeBatchStats(&out.stats, batch.size(), &latencies, t0, oracle_before,
                     oracle_, num_workers());
  return out;
}

ServiceStats RewriteService::lifetime_stats() const {
  ServiceStats s;
  s.ok = completed_ok_.load(std::memory_order_relaxed);
  s.failed = completed_failed_.load(std::memory_order_relaxed);
  s.requests = s.ok + s.failed;
  s.wall_ms = MsBetween(start_, std::chrono::steady_clock::now());
  if (s.wall_ms > 0.0) {
    s.throughput_rps = static_cast<double>(s.requests) / (s.wall_ms / 1000.0);
  }
  s.oracle = oracle_.stats();
  s.num_workers = static_cast<int>(workers_.size());
  s.oracle_shards = oracle_.num_shards();
  return s;
}

}  // namespace aqv
