/// \file
/// The concurrent batch service: a fixed pool of worker threads executing
/// three kinds of jobs — RewriteRequests through the unified engine layer
/// (rewriting/engine.h), AnswerRequests through the end-to-end answering
/// pipeline (answering/answering.h), and opaque generic tasks
/// (SubmitTask: the frontend server runs whole parsed commands as tasks,
/// delivering results through its own completion queue) — all sharing one
/// sharded thread-safe ContainmentOracle (containment/oracle.h). Per-request
/// latency has a hard floor — the underlying problems are NP-complete
/// (LMSS95 Thms 3.1/3.3) — so the service buys throughput, not latency:
/// parallel execution across requests plus cross-request containment
/// memoization.
///
/// Entry points per job kind: the blocking batch APIs (RewriteBatch /
/// AnswerBatch: submit a vector, block for all results plus aggregate
/// ServiceStats) and the streaming Submit/Wait/TryWait resp.
/// SubmitAnswer/WaitAnswer/TryWaitAnswer ticket APIs. Tickets come from
/// one shared sequence, but collection is typed: a ticket must be
/// collected through the API flavor that submitted it (waiting on the
/// other flavor reports kNotFound once the job completes). Responses are
/// deterministic: a request's payload never depends on worker count,
/// shard count, or scheduling, because the oracle is a pure cache
/// (tests/test_service.cc holds the service to that). The one
/// non-deterministic surface is per-request RewriteStats::oracle deltas,
/// which under concurrency include other workers' traffic — read
/// aggregate oracle numbers from ServiceStats instead.

#ifndef AQV_SERVICE_SERVICE_H_
#define AQV_SERVICE_SERVICE_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <variant>
#include <vector>

#include "answering/answering.h"
#include "containment/oracle.h"
#include "rewriting/engine.h"
#include "service/mpmc_queue.h"
#include "util/status.h"

namespace aqv {

/// Construction-time knobs of a RewriteService.
struct ServiceOptions {
  /// Worker threads; 0 means std::thread::hardware_concurrency() (min 1).
  int num_workers = 0;
  /// Shards of the service's shared ContainmentOracle (rounded up to a
  /// power of two; more shards = less lock contention, same outputs).
  size_t oracle_shards = 8;
  /// Total entry budget of the shared oracle, split across shards.
  size_t oracle_max_entries = size_t{1} << 20;
  /// When true (default), every request's EngineOptions::oracle is
  /// overwritten with the service's shared oracle. When false, requests
  /// run with whatever oracle (or none) the caller set — caller-provided
  /// oracles are themselves sharded/thread-safe, so sharing one across
  /// in-flight requests is allowed.
  bool share_oracle = true;
};

/// One unit of service work: which engine, applied to which request. The
/// request's `views` pointer (and the Catalog behind it) must stay alive
/// until the response has been collected.
struct ServiceRequest {
  /// Engine registry name ("lmss", "bucket", "minicon", "ucq").
  std::string engine;
  RewriteRequest request;
};

/// Outcome of one ServiceRequest.
struct ServiceResponse {
  /// The ticket Submit returned (batch positions for RewriteBatch).
  uint64_t ticket = 0;
  /// Echo of ServiceRequest::engine.
  std::string engine;
  /// Engine-level failure (unknown engine, invalid request, budget
  /// overrun). `response` is meaningful only when this is OK.
  Status status;
  RewriteResponse response;
  /// Wall time of the engine call itself (queue wait excluded).
  double latency_ms = 0.0;
};

/// Aggregate numbers over one batch (RewriteBatch) or over the service's
/// lifetime (lifetime_stats).
struct ServiceStats {
  uint64_t requests = 0;
  uint64_t ok = 0;
  uint64_t failed = 0;
  /// Batch: submit→last-response wall time. Lifetime: since construction.
  double wall_ms = 0.0;
  /// requests / wall seconds.
  double throughput_rps = 0.0;
  /// Percentiles of per-request engine latency (batch only; zero for
  /// lifetime stats, which do not retain per-request samples).
  double p50_ms = 0.0;
  double p95_ms = 0.0;
  double max_ms = 0.0;
  /// Shared-oracle counters: the batch's delta, or lifetime totals.
  OracleStats oracle;
  int num_workers = 0;
  size_t oracle_shards = 0;
};

/// A batch's responses (in submission order) plus its aggregate stats.
struct BatchResult {
  std::vector<ServiceResponse> responses;
  ServiceStats stats;
};

/// Outcome of one answering job (the second job kind; see
/// answering/answering.h for the request/response semantics).
struct AnswerServiceResponse {
  /// The ticket SubmitAnswer returned (batch positions for AnswerBatch).
  uint64_t ticket = 0;
  /// Pipeline-level failure (unknown engine/route, missing inputs, budget
  /// overrun). `response` is meaningful only when this is OK.
  Status status;
  AnswerResponse response;
  /// Wall time of the answering call itself (queue wait excluded).
  double latency_ms = 0.0;
};

/// An answering batch's responses (in submission order) plus stats.
struct AnswerBatchResult {
  std::vector<AnswerServiceResponse> responses;
  ServiceStats stats;
};

/// True nearest-rank percentile of an ascending-sorted sample: the
/// ceil(q*n)-th order statistic for q in (0, 1] (0 for an empty sample).
/// Unlike the rounded interpolation it replaces, p50 of a 2-sample batch
/// is the *smaller* sample — the textbook nearest-rank definition.
double NearestRankPercentile(const std::vector<double>& sorted, double q);

/// \brief Fixed-pool concurrent rewriting service over the engine registry.
///
/// Thread safety: all public members may be called from any thread.
/// Shutdown: the destructor drains already-submitted work, then joins the
/// workers — it never abandons an accepted ticket, so a Wait in another
/// thread cannot be left hanging (but do collect outstanding tickets
/// before destroying the service if you care about their results).
class RewriteService {
 public:
  explicit RewriteService(ServiceOptions options = {});
  ~RewriteService();

  RewriteService(const RewriteService&) = delete;
  RewriteService& operator=(const RewriteService&) = delete;

  /// Executes `batch` across the pool; blocks until every response is in.
  /// responses[i] corresponds to batch[i]. Engine-level failures are
  /// per-response (`responses[i].status`); the call itself only fails if
  /// the service is shutting down.
  [[nodiscard]] Result<BatchResult> RewriteBatch(const std::vector<ServiceRequest>& batch);

  /// Answering twin of RewriteBatch: runs every AnswerRequest through the
  /// pipeline on the shared pool (rewriting and answering jobs interleave
  /// freely on the same workers and oracle).
  [[nodiscard]] Result<AnswerBatchResult> AnswerBatch(const std::vector<AnswerRequest>& batch);

  /// Streaming half: enqueue one request, get a ticket for Wait/TryWait.
  /// Returns kFailedPrecondition-style Internal error if shutting down.
  /// Every ticket must eventually be collected: an uncollected response is
  /// retained (full RewriteResponse payload) until the service dies, so
  /// fire-and-forget submission leaks memory for the service's lifetime.
  [[nodiscard]] Result<uint64_t> Submit(ServiceRequest request);

  /// Streaming submission of an answering job; collect the ticket with
  /// WaitAnswer/TryWaitAnswer (the rewrite-side Wait reports kNotFound
  /// for answering tickets).
  [[nodiscard]] Result<uint64_t> SubmitAnswer(AnswerRequest request);

  /// Fire-and-forget third job kind: runs `task` on a pool worker. There
  /// is no collection API — the task delivers its own result (the epoll
  /// frontend pushes completions to its event loop); Wait/WaitAnswer on a
  /// task's ticket report kNotFound. Tasks count in lifetime_stats
  /// (requests/ok) like any other job. The only failure is submission
  /// during shutdown; accepted tasks always run (the destructor drains).
  [[nodiscard]] Status SubmitTask(std::function<void()> task);

  /// Blocks until the ticket's response is ready, then hands it over
  /// (each ticket can be collected exactly once). kNotFound for tickets
  /// never issued, already collected, or submitted as the other job kind.
  [[nodiscard]] Result<ServiceResponse> Wait(uint64_t ticket);

  /// Non-blocking poll: the response if ready (collecting it), nullopt if
  /// still in flight. kNotFound as for Wait.
  [[nodiscard]] Result<std::optional<ServiceResponse>> TryWait(uint64_t ticket);

  /// Answering twins of Wait/TryWait.
  [[nodiscard]] Result<AnswerServiceResponse> WaitAnswer(uint64_t ticket);
  [[nodiscard]] Result<std::optional<AnswerServiceResponse>> TryWaitAnswer(uint64_t ticket);

  /// Totals since construction (percentiles zero; see ServiceStats).
  ServiceStats lifetime_stats() const;

  /// The shared sharded oracle (always constructed; unused per-request
  /// when options.share_oracle is false).
  ContainmentOracle& oracle() { return oracle_; }
  const ServiceOptions& options() const { return options_; }
  int num_workers() const { return static_cast<int>(workers_.size()); }

 private:
  struct Job {
    uint64_t ticket = 0;
    /// Exactly one payload per job; the alternative is the job kind.
    std::variant<ServiceRequest, AnswerRequest, std::function<void()>> request;
  };

  void WorkerLoop();
  ServiceResponse ExecuteRewrite(Job& job);
  AnswerServiceResponse ExecuteAnswer(Job& job);
  [[nodiscard]] Result<uint64_t> Enqueue(Job job);
  /// Bumps the lifetime completion counters; called by workers before a
  /// job's result is delivered (see WorkerLoop for why before).
  void Count(bool ok) {
    if (ok) {
      completed_ok_.fetch_add(1, std::memory_order_relaxed);
    } else {
      completed_failed_.fetch_add(1, std::memory_order_relaxed);
    }
  }

  /// Shared implementation of Wait/WaitAnswer and TryWait/TryWaitAnswer:
  /// the subtle wake-and-kNotFound predicate lives here once, per done
  /// map. Defined in service.cc (only used there).
  template <typename Response>
  [[nodiscard]] Result<Response> WaitIn(std::unordered_map<uint64_t, Response>& done,
                          uint64_t ticket, const char* flavor);
  template <typename Response>
  [[nodiscard]] Result<std::optional<Response>> TryWaitIn(
      std::unordered_map<uint64_t, Response>& done, uint64_t ticket,
      const char* flavor);

  ServiceOptions options_;
  ContainmentOracle oracle_;
  MpmcQueue<Job> queue_;
  std::vector<std::thread> workers_;

  mutable std::mutex results_mu_;
  std::condition_variable result_ready_;
  /// Tickets issued but not yet collected; a ticket is in `pending_` from
  /// Submit/SubmitAnswer until its response lands in the matching done
  /// map (`done_` for rewrite jobs, `done_answers_` for answering jobs).
  std::unordered_set<uint64_t> pending_;
  std::unordered_map<uint64_t, ServiceResponse> done_;
  std::unordered_map<uint64_t, AnswerServiceResponse> done_answers_;
  uint64_t next_ticket_ = 1;
  bool shutting_down_ = false;

  std::atomic<uint64_t> completed_ok_{0};
  std::atomic<uint64_t> completed_failed_{0};
  std::chrono::steady_clock::time_point start_;
};

}  // namespace aqv

#endif  // AQV_SERVICE_SERVICE_H_
