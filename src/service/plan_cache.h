/// \file
/// Server-lifetime rewriting-plan cache: memoizes the *rendered outcome* of
/// a rewrite command — the exact payload text the frontend writes to the
/// wire, plus the engine counters of the run that produced it — keyed by
/// the complete problem statement. A key embeds the engine name, a digest
/// of every numeric engine option, and the verbatim rendered text of the
/// query and of every view in scope, so:
///
///   - a hit is byte-identical to recomputation: deterministic engines are
///     pure functions of (engine, options, query text, views text), which
///     is exactly the key — two sessions whose problems render identically
///     get identical payloads whether served from cache or computed;
///   - schema mutations invalidate implicitly: adding, dropping (reset),
///     or reloading views changes the views text, hence the key, hence
///     stale plans can never be returned — they merely age out of the
///     budget.
///
/// Thread safety: sharded like the ContainmentOracle — key hash picks the
/// shard, each shard has its own mutex and slice of the entry budget; any
/// number of sessions may Lookup/Insert concurrently. Stats counters are
/// relaxed atomics. Clear() and ResetStats() must not race lookups.
///
/// This cache complements (not replaces) the ContainmentOracle: the oracle
/// memoizes the NP-hard containment subproblems across *all* traffic; the
/// plan cache short-circuits the entire engine search for exact repeats —
/// the dominant pattern of a dashboard or retry loop re-issuing one query.

#ifndef AQV_SERVICE_PLAN_CACHE_H_
#define AQV_SERVICE_PLAN_CACHE_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "rewriting/engine.h"

namespace aqv {

/// Hit/miss counters of one RewritePlanCache (plain-value snapshot).
struct PlanCacheStats {
  /// Lookups answered from the cache.
  uint64_t hits = 0;
  /// Lookups that fell through to a real engine run.
  uint64_t misses = 0;
  /// Plans added to the cache.
  uint64_t inserts = 0;
  /// Plans not cached because the shard's entry budget was full.
  uint64_t capacity_rejects = 0;

  uint64_t lookups() const { return hits + misses; }
  double hit_rate() const {
    return lookups() == 0 ? 0.0 : static_cast<double>(hits) / lookups();
  }
};

/// \brief Sharded map from a rendered problem statement to its verified
/// rewriting payload.
class RewritePlanCache {
 public:
  /// One memoized rewrite outcome.
  struct Plan {
    /// The exact command payload (everything before the "ok" terminator)
    /// the populating run rendered.
    std::string rendered;
    /// Engine counters of the populating run, replayed into the session's
    /// last-rewrite stats so `show stats` stays meaningful on hits.
    RewriteStats stats;
  };

  /// `max_entries` bounds total cached plans across all shards; past a
  /// shard's slice, Insert becomes a counted no-op. `num_shards` is
  /// clamped to [1, 256] and rounded up to a power of two.
  explicit RewritePlanCache(size_t max_entries = size_t{1} << 16,
                            size_t num_shards = 8);

  RewritePlanCache(const RewritePlanCache&) = delete;
  RewritePlanCache& operator=(const RewritePlanCache&) = delete;

  /// Builds the canonical cache key for a problem statement. `views_text`
  /// must render every view in scope (order-sensitive — the session's
  /// definition order is deterministic); `options_digest` must cover every
  /// option that can change engine output (see Session's digest builder).
  static std::string MakeKey(const std::string& engine,
                             const std::string& options_digest,
                             const std::string& query_text,
                             const std::string& views_text);

  /// The cached plan for `key`, or nullopt (counting a hit or miss).
  std::optional<Plan> Lookup(const std::string& key);

  /// Caches `plan` under `key` unless the shard is at budget or the key is
  /// already present (first writer wins; identical keys imply identical
  /// plans, so dropping the duplicate is sound).
  void Insert(const std::string& key, Plan plan);

  /// Aggregated snapshot of the per-shard counters.
  PlanCacheStats stats() const;
  /// Zeroes the counters. Must not race concurrent lookups.
  void ResetStats();

  /// Number of cached plans (summed across shards).
  size_t size() const;
  size_t max_entries() const { return max_entries_; }
  size_t num_shards() const { return shards_.size(); }

  /// Drops all plans (stats kept). Must not race concurrent lookups.
  void Clear();

 private:
  struct Shard {
    mutable std::mutex mu;
    std::unordered_map<std::string, Plan> plans;
    std::atomic<uint64_t> hits{0};
    std::atomic<uint64_t> misses{0};
    std::atomic<uint64_t> inserts{0};
    std::atomic<uint64_t> capacity_rejects{0};
  };

  Shard& ShardFor(const std::string& key) const;

  std::vector<std::unique_ptr<Shard>> shards_;
  size_t max_entries_;
  size_t per_shard_budget_;
  uint64_t shard_mask_;
};

}  // namespace aqv

#endif  // AQV_SERVICE_PLAN_CACHE_H_
