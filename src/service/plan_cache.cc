#include "service/plan_cache.h"

#include <utility>

#include "util/hash.h"

namespace aqv {

namespace {

size_t RoundUpPow2(size_t n) {
  size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

uint64_t KeyHash(const std::string& key) {
  Fnv1a h;
  for (unsigned char c : key) h.Mix(static_cast<uint64_t>(c));
  return h.hash();
}

}  // namespace

RewritePlanCache::RewritePlanCache(size_t max_entries, size_t num_shards)
    : max_entries_(max_entries) {
  if (num_shards < 1) num_shards = 1;
  if (num_shards > 256) num_shards = 256;
  num_shards = RoundUpPow2(num_shards);
  shards_.reserve(num_shards);
  for (size_t i = 0; i < num_shards; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
  per_shard_budget_ = (max_entries + num_shards - 1) / num_shards;
  shard_mask_ = static_cast<uint64_t>(num_shards - 1);
}

RewritePlanCache::Shard& RewritePlanCache::ShardFor(
    const std::string& key) const {
  // Top bits slice shards (the map's own hashing consumes the low bits).
  uint64_t h = KeyHash(key);
  return *shards_[(h >> 56) & shard_mask_];
}

std::string RewritePlanCache::MakeKey(const std::string& engine,
                                      const std::string& options_digest,
                                      const std::string& query_text,
                                      const std::string& views_text) {
  // Section markers make the concatenation injective: no (engine, digest,
  // query, views) quadruple collides with another by boundary shifting,
  // because the component texts never contain the '\x1f' separator.
  std::string key;
  key.reserve(engine.size() + options_digest.size() + query_text.size() +
              views_text.size() + 8);
  key += engine;
  key += '\x1f';
  key += options_digest;
  key += '\x1f';
  key += query_text;
  key += '\x1f';
  key += views_text;
  return key;
}

std::optional<RewritePlanCache::Plan> RewritePlanCache::Lookup(
    const std::string& key) {
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.plans.find(key);
  if (it == shard.plans.end()) {
    shard.misses.fetch_add(1, std::memory_order_relaxed);
    return std::nullopt;
  }
  shard.hits.fetch_add(1, std::memory_order_relaxed);
  return it->second;
}

void RewritePlanCache::Insert(const std::string& key, Plan plan) {
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  if (shard.plans.count(key) != 0) return;  // first writer wins
  if (shard.plans.size() >= per_shard_budget_) {
    shard.capacity_rejects.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  shard.plans.emplace(key, std::move(plan));
  shard.inserts.fetch_add(1, std::memory_order_relaxed);
}

PlanCacheStats RewritePlanCache::stats() const {
  PlanCacheStats s;
  for (const std::unique_ptr<Shard>& shard : shards_) {
    s.hits += shard->hits.load(std::memory_order_relaxed);
    s.misses += shard->misses.load(std::memory_order_relaxed);
    s.inserts += shard->inserts.load(std::memory_order_relaxed);
    s.capacity_rejects +=
        shard->capacity_rejects.load(std::memory_order_relaxed);
  }
  return s;
}

void RewritePlanCache::ResetStats() {
  for (const std::unique_ptr<Shard>& shard : shards_) {
    shard->hits.store(0, std::memory_order_relaxed);
    shard->misses.store(0, std::memory_order_relaxed);
    shard->inserts.store(0, std::memory_order_relaxed);
    shard->capacity_rejects.store(0, std::memory_order_relaxed);
  }
}

size_t RewritePlanCache::size() const {
  size_t total = 0;
  for (const std::unique_ptr<Shard>& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    total += shard->plans.size();
  }
  return total;
}

void RewritePlanCache::Clear() {
  for (const std::unique_ptr<Shard>& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    shard->plans.clear();
  }
}

}  // namespace aqv
