#include "util/interner.h"

namespace aqv {

int32_t Interner::Intern(std::string_view name) {
  auto it = ids_.find(std::string(name));
  if (it != ids_.end()) return it->second;
  int32_t id = static_cast<int32_t>(names_.size());
  names_.emplace_back(name);
  ids_.emplace(names_.back(), id);
  return id;
}

int32_t Interner::Lookup(std::string_view name) const {
  auto it = ids_.find(std::string(name));
  return it == ids_.end() ? -1 : it->second;
}

}  // namespace aqv
