/// \file
/// Umbrella header of the `util` module: the error-handling spine of the
/// library. Status carries a StatusCode plus message; Result<T> is
/// success-with-value or Status, in the no-exceptions style of database
/// engines (RocksDB, Arrow). Invariants: no aqv API throws across module
/// boundaries — every fallible operation returns Status or Result<T>, and
/// resource-budget overruns surface as kResourceExhausted so callers can
/// distinguish "too big" from "wrong". Companions: interner.h (string ↔ id
/// maps for predicate/constant names), rng.h (seeded xoshiro256** for
/// deterministic workloads).

#ifndef AQV_UTIL_STATUS_H_
#define AQV_UTIL_STATUS_H_

#include <optional>
#include <string>
#include <utility>

namespace aqv {

/// Error categories used across the library. Modeled after the Status idiom
/// common in database engines (RocksDB, Arrow): no exceptions cross API
/// boundaries; fallible operations return Status or Result<T>.
enum class StatusCode : int {
  kOk = 0,
  /// Input text failed to parse.
  kParseError = 1,
  /// A query/view/database violates a structural requirement (arity mismatch,
  /// unsafe head variable, unknown predicate, ...).
  kInvalidArgument = 2,
  /// A configured resource cap was exceeded (search node budget, comparison
  /// linearization cap, ...). The operation is well-defined but too large.
  kResourceExhausted = 3,
  /// Internal invariant violation; indicates a bug in the library.
  kInternal = 4,
  /// The requested item does not exist (catalog lookups etc.).
  kNotFound = 5,
  /// The input is well-formed but outside what the implementation supports
  /// (e.g. more body atoms than the covered-set bitmask width). Distinct
  /// from kInvalidArgument: the request is meaningful, just not handled.
  kUnimplemented = 6,
};

namespace internal_status {

/// Aborts the process with a diagnostic on stderr. Always on — deliberately
/// not compiled out under NDEBUG, so a bad Result access is a crash in every
/// build type instead of undefined behaviour in Release.
[[noreturn]] void DieBadAccess(const char* what, const char* detail);

}  // namespace internal_status

/// \brief Lightweight success-or-error carrier.
///
/// An engineered subset of the Arrow/RocksDB Status class: a code plus a
/// human-readable message. Ok statuses carry no allocation.
///
/// The class-level [[nodiscard]] makes every by-value Status return site a
/// compiler-checked obligation: callers must handle the status or discard it
/// explicitly via AQV_DISCARD_STATUS with a justification comment.
class [[nodiscard]] Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  [[nodiscard]] static Status OK() { return Status(); }
  [[nodiscard]] static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  [[nodiscard]] static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  [[nodiscard]] static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  [[nodiscard]] static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  [[nodiscard]] static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  [[nodiscard]] static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Renders "OK" or "<CodeName>: <message>".
  std::string ToString() const;

 private:
  Status(StatusCode code, std::string msg)
      : code_(code), message_(std::move(msg)) {}

  StatusCode code_;
  std::string message_;
};

/// \brief Value-or-Status carrier, the fallible-function return type.
///
/// Usage:
///   Result<Query> r = ParseQuery(text, &catalog);
///   if (!r.ok()) return r.status();
///   Query q = std::move(r).value();
template <typename T>
class [[nodiscard]] Result {
 public:
  /// Implicit from a value (success).
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  /// Implicit from an error Status. Must not be OK.
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    if (status_.ok()) {
      internal_status::DieBadAccess(
          "Result constructed from OK status without a value", "");
    }
  }

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  /// Accessors hard-fail (abort with the carried error on stderr) when called
  /// on an error Result — in every build type, including NDEBUG Release. The
  /// pre-hardening assert() compiled out under NDEBUG and left Release builds
  /// dereferencing an empty optional: undefined behaviour that UBSan cannot
  /// reliably flag once the optimizer folds it. See tests/test_util.cc death
  /// tests.
  const T& value() const& {
    CheckOk();
    return *value_;
  }
  T& value() & {
    CheckOk();
    return *value_;
  }
  T&& value() && {
    CheckOk();
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  void CheckOk() const {
    if (!ok()) {
      internal_status::DieBadAccess("Result accessed while holding an error",
                                    status_.ToString().c_str());
    }
  }

  std::optional<T> value_;
  Status status_;
};

/// Explicitly discards a [[nodiscard]] Status or Result. Use only where the
/// failure is deliberately irrelevant (best-effort cleanup on an error path
/// that already has a primary status to report); every use must carry an
/// adjacent comment saying why ignoring the error is sound.
#define AQV_DISCARD_STATUS(expr) static_cast<void>(expr)

/// Propagates a non-OK Status from an expression (statement form).
#define AQV_RETURN_NOT_OK(expr)             \
  do {                                      \
    ::aqv::Status _st = (expr);             \
    if (!_st.ok()) return _st;              \
  } while (0)

/// Assigns the value of a Result expression to `lhs`, propagating errors.
#define AQV_ASSIGN_OR_RETURN_IMPL(tmp, lhs, expr) \
  auto tmp = (expr);                              \
  if (!tmp.ok()) return tmp.status();             \
  lhs = std::move(tmp).value();

#define AQV_ASSIGN_OR_RETURN(lhs, expr) \
  AQV_ASSIGN_OR_RETURN_IMPL(AQV_CONCAT_(_aqv_res_, __LINE__), lhs, expr)

#define AQV_CONCAT_(a, b) AQV_CONCAT_IMPL_(a, b)
#define AQV_CONCAT_IMPL_(a, b) a##b

}  // namespace aqv

#endif  // AQV_UTIL_STATUS_H_
