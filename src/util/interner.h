#ifndef AQV_UTIL_INTERNER_H_
#define AQV_UTIL_INTERNER_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace aqv {

/// \brief Bidirectional string <-> dense-id table.
///
/// Ids are assigned in insertion order starting at 0, so they can index flat
/// vectors. Not thread-safe; each Catalog owns its interners.
class Interner {
 public:
  /// Returns the id for `name`, interning it if new.
  int32_t Intern(std::string_view name);

  /// Returns the id for `name`, or -1 if it has never been interned.
  int32_t Lookup(std::string_view name) const;

  /// Returns the string for `id`. Precondition: 0 <= id < size().
  const std::string& NameOf(int32_t id) const { return names_[id]; }

  int32_t size() const { return static_cast<int32_t>(names_.size()); }

 private:
  std::unordered_map<std::string, int32_t> ids_;
  std::vector<std::string> names_;
};

}  // namespace aqv

#endif  // AQV_UTIL_INTERNER_H_
