/// \file
/// The FNV-1a 64-bit mixer shared by every structural hash in the library
/// (query structural hashes, colour refinement, candidate fingerprints) —
/// one definition of the constants and mix step, so hardening tweaks land
/// everywhere at once.

#ifndef AQV_UTIL_HASH_H_
#define AQV_UTIL_HASH_H_

#include <cstdint>

namespace aqv {

/// Incremental FNV-1a over 64-bit words.
class Fnv1a {
 public:
  Fnv1a() = default;
  /// Starts from a custom seed instead of the offset basis (colour
  /// refinement chains the previous colour through).
  explicit Fnv1a(uint64_t seed) : state_(seed) {}

  void Mix(uint64_t v) { state_ = (state_ ^ v) * kPrime; }
  uint64_t hash() const { return state_; }

 private:
  static constexpr uint64_t kOffsetBasis = 0xcbf29ce484222325ULL;
  static constexpr uint64_t kPrime = 0x100000001b3ULL;

  uint64_t state_ = kOffsetBasis;
};

}  // namespace aqv

#endif  // AQV_UTIL_HASH_H_
