#include "util/rng.h"

#include <cmath>

namespace aqv {

namespace {

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : state_) s = SplitMix64(&sm);
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

uint64_t Rng::NextBounded(uint64_t bound) {
  // Lemire's multiply-shift bounded generation with rejection.
  uint64_t x = Next();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  uint64_t l = static_cast<uint64_t>(m);
  if (l < bound) {
    uint64_t t = -bound % bound;
    while (l < t) {
      x = Next();
      m = static_cast<__uint128_t>(x) * bound;
      l = static_cast<uint64_t>(m);
    }
  }
  return static_cast<uint64_t>(m >> 64);
}

int64_t Rng::NextInRange(int64_t lo, int64_t hi) {
  return lo + static_cast<int64_t>(
                  NextBounded(static_cast<uint64_t>(hi - lo) + 1));
}

double Rng::NextDouble() {
  return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
}

bool Rng::NextBool(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return NextDouble() < p;
}

uint64_t Rng::NextZipf(uint64_t n, double s) {
  if (n <= 1) return 0;
  if (s <= 0.0) return NextBounded(n);
  // Inverse-CDF over the (truncated) harmonic weights. O(1) per draw via the
  // standard approximation; exact enough for skewed workload generation.
  double u = NextDouble();
  if (s == 1.0) {
    double hn = std::log(static_cast<double>(n)) + 0.5772156649;
    double target = u * hn;
    double k = std::exp(target) - 0.5772156649;
    uint64_t v = static_cast<uint64_t>(k);
    return v >= n ? n - 1 : v;
  }
  double a = 1.0 - s;
  double hn = (std::pow(static_cast<double>(n), a) - 1.0) / a;
  double k = std::pow(u * hn * a + 1.0, 1.0 / a) - 1.0;
  uint64_t v = static_cast<uint64_t>(k);
  return v >= n ? n - 1 : v;
}

}  // namespace aqv
