#include "util/status.h"

namespace aqv {

namespace {

const char* CodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kParseError:
      return "ParseError";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kUnimplemented:
      return "Unimplemented";
  }
  return "Unknown";
}

}  // namespace

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = CodeName(code_);
  out += ": ";
  out += message_;
  return out;
}

}  // namespace aqv
