#include "util/status.h"

#include <cstdio>
#include <cstdlib>

namespace aqv {

namespace internal_status {

void DieBadAccess(const char* what, const char* detail) {
  if (detail != nullptr && detail[0] != '\0') {
    std::fprintf(stderr, "aqv fatal: %s (%s)\n", what, detail);
  } else {
    std::fprintf(stderr, "aqv fatal: %s\n", what);
  }
  std::fflush(stderr);
  std::abort();
}

}  // namespace internal_status

namespace {

const char* CodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kParseError:
      return "ParseError";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kUnimplemented:
      return "Unimplemented";
  }
  return "Unknown";
}

}  // namespace

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = CodeName(code_);
  out += ": ";
  out += message_;
  return out;
}

}  // namespace aqv
