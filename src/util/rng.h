#ifndef AQV_UTIL_RNG_H_
#define AQV_UTIL_RNG_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace aqv {

/// \brief Deterministic xoshiro256**-based RNG for workload generation.
///
/// All generators and property tests seed explicitly so every experiment is
/// reproducible from its parameter line alone. Not for cryptographic use.
class Rng {
 public:
  explicit Rng(uint64_t seed);

  /// Uniform 64-bit value.
  uint64_t Next();

  /// Uniform integer in [0, bound). Precondition: bound > 0.
  uint64_t NextBounded(uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive. Precondition: lo <= hi.
  int64_t NextInRange(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Returns true with probability p (clamped to [0,1]).
  bool NextBool(double p);

  /// Fisher-Yates shuffle of `items`.
  template <typename T>
  void Shuffle(std::vector<T>* items) {
    for (size_t i = items->size(); i > 1; --i) {
      size_t j = static_cast<size_t>(NextBounded(i));
      std::swap((*items)[i - 1], (*items)[j]);
    }
  }

  /// Zipf-distributed value in [0, n) with skew `s` (s=0 is uniform).
  /// Uses rejection-inversion; adequate for workload generation.
  uint64_t NextZipf(uint64_t n, double s);

 private:
  uint64_t state_[4];
};

}  // namespace aqv

#endif  // AQV_UTIL_RNG_H_
