#ifndef AQV_EVAL_CERTAIN_H_
#define AQV_EVAL_CERTAIN_H_

#include <cstdint>

#include "cq/query.h"
#include "eval/database.h"
#include "eval/evaluator.h"
#include "rewriting/inverse_rules.h"
#include "util/status.h"
#include "views/view.h"

namespace aqv {

/// \brief Evaluates a (maximally-contained) union rewriting over view
/// extents. Under sound-view (open-world) semantics, the result is the set
/// of certain answers when the union is maximally contained — the standard
/// LAV answering pipeline fed by Bucket/MiniCon output.
///
/// `q` is the original query the union rewrites: it types the result
/// (head predicate and arity), so an *empty* union — no contained
/// rewriting, hence no derivable certain answers — evaluates to a
/// correctly-typed empty relation instead of an error. Non-empty unions
/// must match q's head arity (kInvalidArgument otherwise).
[[nodiscard]] Result<Relation> EvaluateRewritingUnion(const Query& q,
                                        const UnionQuery& rewritings,
                                        const Database& view_extents,
                                        const EvalOptions& options = {},
                                        EvalStats* stats = nullptr);

/// \brief Certain answers via the inverse-rules route: reconstruct base
/// facts with Skolem placeholders, evaluate `q` on them, drop every answer
/// carrying a Skolem value.
[[nodiscard]] Result<Relation> CertainAnswersViaInverseRules(const Query& q,
                                               const InverseRuleSet& rules,
                                               const Database& view_extents,
                                               const EvalOptions& options = {},
                                               EvalStats* stats = nullptr);

/// Union-query variant (Duschka-Genesereth generalizes disjunct-wise: the
/// certain answers of a UCQ over sound views are its answers over the
/// Skolem-reconstructed base facts, minus Skolem-carrying rows).
[[nodiscard]] Result<Relation> CertainAnswersViaInverseRules(const UnionQuery& q,
                                               const InverseRuleSet& rules,
                                               const Database& view_extents,
                                               const EvalOptions& options = {},
                                               EvalStats* stats = nullptr);

/// Options for the brute-force possible-world enumerator.
struct WorldEnumOptions {
  /// Fresh constants added to the universe beyond the extents' active
  /// domain (unknown values may be outside it).
  int extra_constants = 1;
  /// Cap on candidate tuples in the world lattice (2^tuples worlds).
  int max_world_tuples = 22;
  EvalOptions eval;
};

/// \brief Reference implementation of certain answers by exhaustive
/// enumeration: intersect q(D) over every database D, built from base-
/// predicate tuples over a finite universe, that is *consistent* with the
/// extents (every view's result over D contains its extent — sound views).
///
/// The universe is the extents' active domain plus `extra_constants` fresh
/// values; this finite-universe semantics coincides with true open-world
/// certain answers whenever enough fresh values are provided for the views'
/// existential variables (the tiny cross-check instances in the tests).
/// Exponential; guarded by max_world_tuples.
[[nodiscard]] Result<Relation> BruteForceCertainAnswers(const Query& q, const ViewSet& views,
                                          const Database& view_extents,
                                          const WorldEnumOptions& options = {});

}  // namespace aqv

#endif  // AQV_EVAL_CERTAIN_H_
