#ifndef AQV_EVAL_MATERIALIZE_H_
#define AQV_EVAL_MATERIALIZE_H_

#include "eval/database.h"
#include "eval/evaluator.h"
#include "util/status.h"
#include "views/view.h"

namespace aqv {

/// \brief Materializes every view over the base database: the returned
/// database holds one relation per view predicate (the view extents) and
/// nothing else — the only data a LAV mediator or view-answering planner
/// gets to see.
///
/// Union sources (several rules sharing one head predicate, see
/// ViewSet::AddRule) materialize as the deduplicated union of every rule's
/// output. `stats`, when non-null, accumulates the evaluation counters of
/// all view definitions.
[[nodiscard]] Result<Database> MaterializeViews(const ViewSet& views, const Database& base,
                                  const EvalOptions& options = {},
                                  EvalStats* stats = nullptr);

}  // namespace aqv

#endif  // AQV_EVAL_MATERIALIZE_H_
