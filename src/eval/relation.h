#ifndef AQV_EVAL_RELATION_H_
#define AQV_EVAL_RELATION_H_

#include <cstddef>
#include <string>
#include <vector>

#include "cq/catalog.h"
#include "eval/value.h"

namespace aqv {

/// \brief A row-major in-memory relation instance.
///
/// Plain storage: `arity` columns of Values, rows appended then optionally
/// SortDedup()ed (set semantics). Indexing for joins is built by the
/// evaluator per query, not stored here.
class Relation {
 public:
  Relation() = default;
  Relation(PredId pred, int arity) : pred_(pred), arity_(arity) {}

  PredId pred() const { return pred_; }
  int arity() const { return arity_; }
  size_t size() const {
    return arity_ == 0 ? (nullary_present_ ? 1 : 0) : data_.size() / arity_;
  }
  bool empty() const { return size() == 0; }

  /// Appends a row. Precondition: row.size() == arity().
  void Add(const std::vector<Value>& row);

  /// Appends a row from a raw pointer of arity() values.
  void AddRow(const Value* row);

  /// Pointer to row i (undefined for arity-0 relations).
  const Value* row(size_t i) const { return data_.data() + i * arity_; }

  Value at(size_t i, int col) const { return data_[i * arity_ + col]; }

  /// Sorts rows lexicographically and removes duplicates.
  void SortDedup();

  /// Membership test (linear scan; use after SortDedup only in tests).
  bool Contains(const std::vector<Value>& row) const;

  /// All rows, materialized (test convenience).
  std::vector<std::vector<Value>> Rows() const;

  /// True if both relations hold the same set of rows (sorts copies).
  static bool SameSet(const Relation& a, const Relation& b);

  std::string ToString(const Catalog& catalog,
                       const SkolemTable* skolems = nullptr) const;

 private:
  PredId pred_ = -1;
  int arity_ = 0;
  bool nullary_present_ = false;  // arity-0 relations hold 0 or 1 rows
  std::vector<Value> data_;
};

}  // namespace aqv

#endif  // AQV_EVAL_RELATION_H_
