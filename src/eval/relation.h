#ifndef AQV_EVAL_RELATION_H_
#define AQV_EVAL_RELATION_H_

#include <cstddef>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "cq/catalog.h"
#include "eval/index.h"
#include "eval/storage.h"
#include "eval/value.h"

namespace aqv {

/// \brief An in-memory relation instance over a pluggable ColumnStore.
///
/// Physical layout is columnar (storage.h); the historical row-major API
/// (`at`, `RowCopy`, `Rows`) is preserved as an adapter over it, while hot
/// paths read whole columns via `ColumnData`. On top of storage the
/// relation owns two lazily built, cached derived structures:
///
///   - hash indexes per join-key column set (`IndexOn`) — built once,
///     shared via shared_ptr across the join pipeline, MaterializeViews,
///     datalog fixpoint rounds, and repeated `answer` commands;
///   - measured statistics (`Measured`) — cardinality, per-column
///     distinct counts, and numeric min/max — feeding the planner's cost
///     model through ExtentStats::FromDatabase.
///
/// Both caches are invalidated by any mutation (Add/AddRow/AppendRowFrom/
/// SortDedup). Thread-safety contract: concurrent *reads* (including the
/// lazy cache builds, which serialize on an internal mutex) are safe;
/// mutation must not overlap any other access — the same contract the raw
/// tuple data always had ("evaluation never mutates the database").
class Relation {
 public:
  Relation() = default;
  Relation(PredId pred, int arity);

  /// Adopts an existing store (arity >= 1) — how the storage engine
  /// installs persisted extents behind an mmap or columnar backend.
  /// `sorted` asserts the rows are lexicographically sorted+deduplicated
  /// (recorded in the segment header at save time).
  Relation(PredId pred, int arity, std::unique_ptr<ColumnStore> store,
           bool sorted);

  Relation(const Relation& other);
  Relation& operator=(const Relation& other);
  Relation(Relation&& other) noexcept;
  Relation& operator=(Relation&& other) noexcept;

  PredId pred() const { return pred_; }
  int arity() const { return arity_; }
  size_t size() const {
    if (arity_ == 0) return nullary_present_ ? 1 : 0;
    return store_ == nullptr ? 0 : store_->rows();
  }
  bool empty() const { return size() == 0; }

  /// Appends a row. Precondition: row.size() == arity().
  void Add(const std::vector<Value>& row);

  /// Appends a row from a raw pointer of arity() values.
  void AddRow(const Value* row);

  /// Appends row `i` of `src` (same arity) column-wise.
  void AppendRowFrom(const Relation& src, size_t i);

  /// Hints the expected final row count (bulk loads).
  void Reserve(size_t n);

  Value at(size_t i, int col) const { return store_->Column(col)[i]; }

  /// Contiguous data of column `c` (arity() > 0). Valid until the next
  /// mutation.
  const Value* ColumnData(int c) const { return store_->Column(c); }

  /// Row-major adapter: row `i` materialized (undefined for arity 0).
  std::vector<Value> RowCopy(size_t i) const;

  /// Sorts rows lexicographically and removes duplicates. Marks the
  /// relation sorted and invalidates cached indexes/statistics.
  void SortDedup();

  /// True when the rows are known lexicographically sorted + deduplicated
  /// (i.e. SortDedup ran after the last mutation; trivially true while
  /// the relation holds at most one row).
  bool sorted() const { return sorted_; }

  /// Membership test: binary search on sorted relations, linear fallback
  /// otherwise.
  bool Contains(const std::vector<Value>& row) const;

  /// All rows, materialized (test convenience).
  std::vector<std::vector<Value>> Rows() const;

  /// True if both relations hold the same set of rows (sorts copies).
  static bool SameSet(const Relation& a, const Relation& b);

  std::string ToString(const Catalog& catalog,
                       const SkolemTable* skolems = nullptr) const;

  /// \brief The cached hash index on `columns` (strictly ascending
  /// positions, non-empty), building it on first request. `*built` (when
  /// non-null) reports whether this call built the index (true) or hit
  /// the cache (false). Safe to call concurrently.
  std::shared_ptr<const HashIndex> IndexOn(const std::vector<int>& columns,
                                           bool* built = nullptr) const;

  /// Number of distinct column sets currently indexed (diagnostics).
  size_t CachedIndexCount() const;

  /// \brief Measured statistics, computed on first demand after the last
  /// mutation and cached. Safe to call concurrently.
  std::shared_ptr<const RelationStats> Measured() const;

  /// The storage backend name ("columnar"; "none" before first touch).
  const char* StorageBackend() const {
    return store_ == nullptr ? "none" : store_->Backend();
  }

 private:
  /// Lexicographic compare of row `i` against `row`: -1/0/+1.
  int CompareRow(size_t i, const std::vector<Value>& row) const;

  /// Drops cached indexes and statistics (call on every mutation; not
  /// locked — mutation must not overlap other access, see class comment).
  void InvalidateDerived();

  PredId pred_ = -1;
  int arity_ = 0;
  bool nullary_present_ = false;  // arity-0 relations hold 0 or 1 rows
  bool sorted_ = true;            // vacuously sorted while <= 1 row
  std::unique_ptr<ColumnStore> store_;

  // Lazily built caches. The mutex serializes concurrent readers doing a
  // lazy build; immutable snapshots are handed out as shared_ptr so a
  // build in one evaluation outlives cache invalidation in another
  // relation copy.
  mutable std::mutex cache_mu_;
  mutable std::map<std::vector<int>, std::shared_ptr<const HashIndex>>
      indexes_;
  mutable std::shared_ptr<const RelationStats> stats_;
};

}  // namespace aqv

#endif  // AQV_EVAL_RELATION_H_
