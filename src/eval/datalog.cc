#include "eval/datalog.h"

#include <set>

namespace aqv {

Result<Database> EvaluateDatalogProgram(const DatalogProgram& program,
                                        const Database& edb,
                                        const EvalOptions& options,
                                        int max_rounds) {
  Database db = edb;
  // Known-tuple sets per head predicate for O(log n) dedup on insert.
  std::map<PredId, std::set<std::vector<Value>>> known;
  for (const Query& rule : program.rules) {
    PredId head = rule.head().pred;
    const Relation* existing = db.Find(head);
    if (existing != nullptr) {
      for (auto& row : existing->Rows()) known[head].insert(row);
    } else {
      known[head];  // ensure entry
    }
  }

  for (int round = 0; round < max_rounds; ++round) {
    bool changed = false;
    for (const Query& rule : program.rules) {
      AQV_ASSIGN_OR_RETURN(Relation derived, EvaluateQuery(rule, db, options));
      PredId head = rule.head().pred;
      auto& seen = known[head];
      for (auto& row : derived.Rows()) {
        if (seen.insert(row).second) {
          db.Add(head, row);
          changed = true;
        }
      }
    }
    if (!changed) return db;
  }
  return Status::ResourceExhausted("datalog fixpoint exceeded max_rounds");
}

Result<Database> ApplyInverseRules(const InverseRuleSet& rules,
                                   const Database& view_extents,
                                   SkolemTable* skolems,
                                   const EvalOptions& options) {
  (void)options;
  Database out(view_extents.catalog());
  const Catalog& cat = *view_extents.catalog();
  std::map<PredId, std::set<std::vector<Value>>> seen;

  for (const InverseRule& rule : rules.rules) {
    const Relation* extent = view_extents.Find(rule.view_atom.pred);
    if (extent == nullptr || extent->empty()) {
      out.GetOrCreate(rule.head_pred);  // derived relation exists, empty
      continue;
    }
    int arity = rule.view_atom.arity();
    std::vector<const Value*> cols(static_cast<size_t>(arity));
    for (int c = 0; c < arity; ++c) cols[c] = extent->ColumnData(c);
    std::vector<Value> binding;  // per view-definition variable
    std::vector<Value> tuple_buf(static_cast<size_t>(arity));
    for (size_t r = 0; r < extent->size(); ++r) {
      for (int c = 0; c < arity; ++c) tuple_buf[c] = cols[c][r];
      const Value* tuple = arity == 0 ? nullptr : tuple_buf.data();
      // Match the view head pattern against the tuple.
      binding.assign(rule.var_names.size(), 0);
      std::vector<bool> is_bound(rule.var_names.size(), false);
      bool ok = true;
      for (int i = 0; i < arity && ok; ++i) {
        Term t = rule.view_atom.args[i];
        if (t.is_const()) {
          ok = tuple[i] == ValueOfConstant(cat, t.constant());
        } else if (is_bound[t.var()]) {
          ok = binding[t.var()] == tuple[i];
        } else {
          binding[t.var()] = tuple[i];
          is_bound[t.var()] = true;
        }
      }
      if (!ok) continue;
      // Emit the head tuple.
      std::vector<Value> params;
      params.reserve(rule.skolem_params.size());
      for (VarId v : rule.skolem_params) params.push_back(binding[v]);
      std::vector<Value> head_row;
      head_row.reserve(rule.head_args.size());
      for (const InverseArg& a : rule.head_args) {
        if (a.is_skolem()) {
          head_row.push_back(skolems->Intern(a.skolem_fn, params));
        } else if (a.term.is_const()) {
          head_row.push_back(ValueOfConstant(cat, a.term.constant()));
        } else {
          head_row.push_back(binding[a.term.var()]);
        }
      }
      if (seen[rule.head_pred].insert(head_row).second) {
        out.Add(rule.head_pred, head_row);
      }
    }
  }
  return out;
}

}  // namespace aqv
