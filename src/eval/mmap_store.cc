#include "eval/mmap_store.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cassert>
#include <cerrno>
#include <cstring>
#include <utility>
#include <vector>

namespace aqv {

Result<std::shared_ptr<const MemMap>> MemMap::Open(const std::string& path) {
  // Read-only mapping of an immutable committed segment: not a durability
  // fault point, and eval cannot depend on storage/fs.h without inverting
  // the storage->eval edge of the module DAG.
  int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);  // aqv-lint: disable=storage-fs
  if (fd < 0) {
    std::string err = std::strerror(errno);
    if (errno == ENOENT) {
      return Status::NotFound("no such file: '" + path + "'");
    }
    return Status::Internal("open '" + path + "' failed: " + err);
  }
  struct stat st{};
  if (::fstat(fd, &st) != 0) {
    std::string err = std::strerror(errno);
    ::close(fd);
    return Status::Internal("fstat '" + path + "' failed: " + err);
  }
  size_t size = static_cast<size_t>(st.st_size);
  const uint8_t* data = nullptr;
  if (size > 0) {
    void* mapped = ::mmap(nullptr, size, PROT_READ, MAP_SHARED, fd, 0);
    if (mapped == MAP_FAILED) {
      std::string err = std::strerror(errno);
      ::close(fd);
      return Status::Internal("mmap '" + path + "' failed: " + err);
    }
    data = static_cast<const uint8_t*>(mapped);
  }
  // The mapping keeps the file contents alive on its own; holding the fd
  // open would only leak descriptors across long sessions.
  ::close(fd);
  return std::shared_ptr<const MemMap>(new MemMap(path, data, size));
}

MemMap::~MemMap() {
  if (data_ != nullptr) {
    ::munmap(const_cast<uint8_t*>(data_), size_);
  }
}

namespace {

class MmapStore final : public ColumnStore {
 public:
  MmapStore(std::shared_ptr<const MemMap> map, size_t offset, int arity,
            size_t rows)
      : map_(std::move(map)),
        base_(reinterpret_cast<const Value*>(map_->data() + offset)),
        base_rows_(rows),
        arity_(arity) {
    assert(arity_ >= 1);
    assert(offset % alignof(Value) == 0);
    assert(offset + static_cast<size_t>(arity_) * rows * sizeof(Value) <=
           map_->size());
  }

  int arity() const override { return arity_; }

  size_t rows() const override {
    return upgraded_ ? cols_[0].size() : base_rows_;
  }

  const Value* Column(int c) const override {
    if (upgraded_) return cols_[static_cast<size_t>(c)].data();
    return base_ + static_cast<size_t>(c) * base_rows_;
  }

  void Reserve(size_t n) override {
    Upgrade();
    for (auto& col : cols_) col.reserve(n);
  }

  void Append(const Value* row) override {
    Upgrade();
    for (size_t c = 0; c < cols_.size(); ++c) cols_[c].push_back(row[c]);
  }

  void Rewrite(const std::vector<uint32_t>& keep) override {
    // Materializes exactly the kept rows: the common SortDedup-after-open
    // case never copies dropped tuples out of the file.
    if (!upgraded_) {
      std::vector<std::vector<Value>> out(static_cast<size_t>(arity_));
      for (int c = 0; c < arity_; ++c) {
        const Value* col = Column(c);
        auto& dst = out[static_cast<size_t>(c)];
        dst.reserve(keep.size());
        for (uint32_t r : keep) dst.push_back(col[r]);
      }
      cols_ = std::move(out);
      upgraded_ = true;
      map_.reset();
      return;
    }
    for (auto& col : cols_) {
      std::vector<Value> out;
      out.reserve(keep.size());
      for (uint32_t r : keep) out.push_back(col[r]);
      col = std::move(out);
    }
  }

  void Clear() override {
    if (!upgraded_) {
      cols_.assign(static_cast<size_t>(arity_), {});
      upgraded_ = true;
      map_.reset();
      return;
    }
    for (auto& col : cols_) col.clear();
  }

  std::unique_ptr<ColumnStore> Clone() const override {
    if (!upgraded_) {
      // Pre-mutation clones share the mapping — O(1) in file bytes.
      return std::unique_ptr<ColumnStore>(
          new MmapStore(map_, base_, base_rows_, arity_));
    }
    auto copy = MakeColumnarStore(arity_);
    copy->Reserve(cols_[0].size());
    std::vector<Value> row(static_cast<size_t>(arity_));
    for (size_t r = 0; r < cols_[0].size(); ++r) {
      for (int c = 0; c < arity_; ++c) {
        row[static_cast<size_t>(c)] = cols_[static_cast<size_t>(c)][r];
      }
      copy->Append(row.data());
    }
    return copy;
  }

  const char* Backend() const override { return "mmap"; }

 private:
  MmapStore(std::shared_ptr<const MemMap> map, const Value* base, size_t rows,
            int arity)
      : map_(std::move(map)), base_(base), base_rows_(rows), arity_(arity) {}

  /// Copies every column into private heap vectors and releases the
  /// mapping reference; called before the first mutation.
  void Upgrade() {
    if (upgraded_) return;
    cols_.resize(static_cast<size_t>(arity_));
    for (int c = 0; c < arity_; ++c) {
      const Value* col = Column(c);
      cols_[static_cast<size_t>(c)].assign(col, col + base_rows_);
    }
    upgraded_ = true;
    map_.reset();
  }

  std::shared_ptr<const MemMap> map_;
  const Value* base_;
  size_t base_rows_;
  int arity_;
  bool upgraded_ = false;
  std::vector<std::vector<Value>> cols_;
};

}  // namespace

std::unique_ptr<ColumnStore> MakeMmapStore(std::shared_ptr<const MemMap> map,
                                           size_t offset, int arity,
                                           size_t rows) {
  return std::make_unique<MmapStore>(std::move(map), offset, arity, rows);
}

}  // namespace aqv
