/// \file
/// Persistent per-relation hash indexes and measured statistics. A
/// HashIndex maps a key-column tuple to the (ascending) row ids holding
/// it; Relation builds one per distinct join-key column set on first
/// demand, caches it, and invalidates on mutation — so the join pipeline,
/// MaterializeViews, datalog fixpoint iterations, and repeated `answer`
/// commands all probe the same build instead of rebuilding per query.
/// RelationStats carries the measured per-predicate numbers (cardinality,
/// per-column distinct counts, numeric min/max) that replace the
/// planner's uniform-domain fan-out guess.

#ifndef AQV_EVAL_INDEX_H_
#define AQV_EVAL_INDEX_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "eval/value.h"

namespace aqv {

/// FNV-1a over a value tuple (the key hasher shared by index build and
/// probe).
struct RowKeyHash {
  size_t operator()(const std::vector<Value>& key) const {
    size_t h = 0xcbf29ce484222325ULL;
    for (Value v : key) {
      h = (h ^ static_cast<size_t>(v)) * 0x100000001b3ULL;
    }
    return h;
  }
};

/// \brief A hash index of one relation on a fixed set of key columns:
/// key tuple -> ascending row ids. Immutable once built (shared across
/// concurrent evaluations via shared_ptr).
struct HashIndex {
  /// Key column positions, strictly ascending.
  std::vector<int> columns;
  std::unordered_map<std::vector<Value>, std::vector<uint32_t>, RowKeyHash>
      postings;
  /// Rows scanned by the build (the relation's size at build time).
  uint64_t rows_indexed = 0;

  /// Row ids holding `key` (aligned with `columns`), or nullptr.
  const std::vector<uint32_t>* Find(const std::vector<Value>& key) const {
    auto it = postings.find(key);
    return it == postings.end() ? nullptr : &it->second;
  }
};

/// \brief Measured statistics of one relation, computed at SortDedup time
/// (or first demand) and surfaced to the planner through
/// ExtentStats::FromDatabase.
struct RelationStats {
  struct Column {
    /// Distinct values in the column.
    uint64_t distinct = 0;
    /// Min/max over the column's plain-numeric values (meaningless when
    /// has_numeric_range is false — symbolic/Skolem-only columns).
    Value min = 0;
    Value max = 0;
    bool has_numeric_range = false;
  };
  uint64_t cardinality = 0;
  std::vector<Column> columns;
};

}  // namespace aqv

#endif  // AQV_EVAL_INDEX_H_
