#include "eval/evaluator.h"

#include <algorithm>
#include <unordered_map>

#include "eval/index.h"
#include "eval/value.h"

namespace aqv {

namespace {

using ThrowawayIndex =
    std::unordered_map<std::vector<Value>, std::vector<size_t>, RowKeyHash>;

bool CmpHolds(CmpOp op, Value a, Value b) {
  switch (op) {
    case CmpOp::kEq:
      return a == b;
    case CmpOp::kNe:
      return a != b;
    case CmpOp::kLt:
      return IsPlainNumeric(a) && IsPlainNumeric(b) && a < b;
    case CmpOp::kLe:
      return IsPlainNumeric(a) && IsPlainNumeric(b) && a <= b;
  }
  return false;
}

/// Greedy atom order: maximize already-bound variables, tie-break on
/// relation size.
std::vector<int> PlanAtomOrder(const Query& q, const Database& db) {
  int n = static_cast<int>(q.body().size());
  std::vector<int> order;
  std::vector<bool> used(n, false);
  std::vector<bool> bound(q.num_vars(), false);
  for (int step = 0; step < n; ++step) {
    int best = -1;
    int best_bound = -1;
    size_t best_size = SIZE_MAX;
    for (int i = 0; i < n; ++i) {
      if (used[i]) continue;
      const Atom& a = q.body()[i];
      int bound_args = 0;
      for (Term t : a.args) {
        if (t.is_const() || bound[t.var()]) ++bound_args;
      }
      const Relation* rel = db.Find(a.pred);
      size_t rel_size = rel == nullptr ? 0 : rel->size();
      if (bound_args > best_bound ||
          (bound_args == best_bound && rel_size < best_size)) {
        best = i;
        best_bound = bound_args;
        best_size = rel_size;
      }
    }
    order.push_back(best);
    used[best] = true;
    for (Term t : q.body()[best].args) {
      if (t.is_var()) bound[t.var()] = true;
    }
  }
  return order;
}

}  // namespace

Result<Relation> EvaluateQuery(const Query& q, const Database& db,
                               const EvalOptions& options, EvalStats* stats) {
  AQV_RETURN_NOT_OK(q.Validate());
  const Catalog& cat = *q.catalog();
  EvalStats local_stats;
  if (stats == nullptr) stats = &local_stats;

  std::vector<int> order = PlanAtomOrder(q, db);
  int nv = q.num_vars();

  // Bindings: flat rows of nv values; unbound slots are don't-care (the
  // bound mask advances statically with the plan).
  std::vector<Value> bindings(static_cast<size_t>(nv), 0);
  size_t num_bindings = 1;
  if (nv == 0) bindings.clear();

  std::vector<bool> bound(nv, false);
  std::vector<bool> cmp_applied(q.comparisons().size(), false);

  auto apply_ready_comparisons = [&](std::vector<Value>* rows,
                                     size_t* count) {
    for (size_t ci = 0; ci < q.comparisons().size(); ++ci) {
      if (cmp_applied[ci]) continue;
      const Comparison& c = q.comparisons()[ci];
      auto is_ready = [&](Term t) { return t.is_const() || bound[t.var()]; };
      if (!is_ready(c.lhs) || !is_ready(c.rhs)) continue;
      cmp_applied[ci] = true;
      size_t out = 0;
      for (size_t r = 0; r < *count; ++r) {
        const Value* row = rows->data() + r * nv;
        Value a = c.lhs.is_const() ? ValueOfConstant(cat, c.lhs.constant())
                                   : row[c.lhs.var()];
        Value b = c.rhs.is_const() ? ValueOfConstant(cat, c.rhs.constant())
                                   : row[c.rhs.var()];
        if (CmpHolds(c.op, a, b)) {
          if (out != r) {
            std::copy(row, row + nv, rows->data() + out * nv);
          }
          ++out;
        }
      }
      *count = out;
    }
  };

  for (int atom_index : order) {
    const Atom& a = q.body()[atom_index];
    const Relation* rel = db.Find(a.pred);

    // Position classification under the current bound set.
    std::vector<int> key_positions;        // bound-variable arg positions
    std::vector<VarId> key_vars;           // their variables
    std::vector<std::pair<int, Value>> const_positions;
    std::vector<std::pair<int, VarId>> new_positions;  // first occurrence
    std::vector<std::pair<int, int>> dup_positions;    // (pos, earlier pos)
    std::vector<int> first_pos_of_var(nv, -1);
    for (int i = 0; i < a.arity(); ++i) {
      Term t = a.args[i];
      if (t.is_const()) {
        const_positions.push_back({i, ValueOfConstant(cat, t.constant())});
      } else if (bound[t.var()]) {
        key_positions.push_back(i);
        key_vars.push_back(t.var());
      } else if (first_pos_of_var[t.var()] >= 0) {
        dup_positions.push_back({i, first_pos_of_var[t.var()]});
      } else {
        first_pos_of_var[t.var()] = i;
        new_positions.push_back({i, t.var()});
      }
    }

    // Column pointers of the relation, fetched once per atom.
    size_t rel_rows = rel == nullptr ? 0 : rel->size();
    std::vector<const Value*> cols;
    if (rel != nullptr && rel->arity() > 0) {
      cols.resize(static_cast<size_t>(rel->arity()));
      for (int c = 0; c < rel->arity(); ++c) cols[c] = rel->ColumnData(c);
    }

    auto passes_const_dup = [&](size_t r) {
      for (auto [pos, value] : const_positions) {
        if (cols[pos][r] != value) return false;
      }
      for (auto [pos, earlier] : dup_positions) {
        if (cols[pos][r] != cols[earlier][r]) return false;
      }
      return true;
    };

    std::vector<Value> next;
    size_t next_count = 0;
    // Emits the join of binding row `brow` with relation row `r`; false
    // on intermediate_row_cap overrun.
    auto emit = [&](const Value* brow, size_t r) {
      next.insert(next.end(), brow, brow + nv);
      Value* out = next.data() + next_count * nv;
      for (auto [pos, var] : new_positions) out[var] = cols[pos][r];
      ++next_count;
      return next_count + stats->intermediate_rows <=
             options.intermediate_row_cap;
    };
    auto cap_error = [] {
      return Status::ResourceExhausted(
          "join pipeline exceeded intermediate_row_cap");
    };

    bool use_cache = options.use_cached_indexes && rel != nullptr &&
                     (!key_positions.empty() || !const_positions.empty());
    if (use_cache) {
      // Cached-index path: the persistent per-relation index is keyed by
      // the bound-variable positions *plus* the constant positions (so
      // point lookups like p(X, 7) probe instead of scanning); only the
      // within-atom duplicate filter remains per matched row. Emission
      // order is identical to the cold path: postings hold ascending row
      // ids, and the filters select the same rows either way.
      std::vector<int> index_cols;
      index_cols.reserve(key_positions.size() + const_positions.size());
      // probe_from_var[k] >= 0: key slot k reads that binding variable;
      // otherwise the slot holds a fixed constant preloaded below.
      std::vector<VarId> probe_from_var;
      std::vector<Value> probe;
      {
        size_t ki = 0;
        size_t ci = 0;
        while (ki < key_positions.size() || ci < const_positions.size()) {
          bool take_key =
              ci == const_positions.size() ||
              (ki < key_positions.size() &&
               key_positions[ki] < const_positions[ci].first);
          if (take_key) {
            index_cols.push_back(key_positions[ki]);
            probe_from_var.push_back(key_vars[ki]);
            probe.push_back(0);
            ++ki;
          } else {
            index_cols.push_back(const_positions[ci].first);
            probe_from_var.push_back(-1);
            probe.push_back(const_positions[ci].second);
            ++ci;
          }
        }
      }
      bool built = false;
      std::shared_ptr<const HashIndex> index = rel->IndexOn(index_cols,
                                                            &built);
      if (built) {
        ++stats->index_builds;
      } else {
        ++stats->index_hits;
      }
      for (size_t b = 0; b < num_bindings; ++b) {
        const Value* brow = bindings.data() + b * nv;
        for (size_t k = 0; k < probe.size(); ++k) {
          if (probe_from_var[k] >= 0) probe[k] = brow[probe_from_var[k]];
        }
        ++stats->probes;
        const std::vector<uint32_t>* postings = index->Find(probe);
        if (postings == nullptr) continue;
        for (uint32_t r : *postings) {
          bool dup_ok = true;
          for (auto [pos, earlier] : dup_positions) {
            if (cols[pos][r] != cols[earlier][r]) {
              dup_ok = false;
              break;
            }
          }
          if (!dup_ok) continue;
          if (!emit(brow, r)) return cap_error();
        }
      }
    } else if (options.use_cached_indexes || key_positions.empty()) {
      // Scan path: nothing to probe with (no bound variables or
      // constants), or the relation is absent. Prefilter once, then
      // cross with every binding.
      std::vector<uint32_t> candidates;
      for (size_t r = 0; r < rel_rows; ++r) {
        if (passes_const_dup(r)) candidates.push_back(static_cast<uint32_t>(r));
      }
      for (size_t b = 0; b < num_bindings; ++b) {
        const Value* brow = bindings.data() + b * nv;
        ++stats->probes;
        for (uint32_t r : candidates) {
          if (!emit(brow, r)) return cap_error();
        }
      }
    } else {
      // Cold path (use_cached_indexes off): the pre-cache behavior, kept
      // as the measured row-at-a-time baseline — a throwaway index built
      // from scratch inside every evaluation, constants and duplicates
      // filtered during construction.
      ThrowawayIndex index;
      if (rel != nullptr) {
        ++stats->index_builds;
        std::vector<Value> key(key_positions.size());
        for (size_t r = 0; r < rel_rows; ++r) {
          if (!passes_const_dup(r)) continue;
          for (size_t k = 0; k < key_positions.size(); ++k) {
            key[k] = cols[key_positions[k]][r];
          }
          index[key].push_back(r);
        }
      }
      std::vector<Value> probe(key_positions.size());
      for (size_t b = 0; b < num_bindings; ++b) {
        const Value* brow = bindings.data() + b * nv;
        for (size_t k = 0; k < key_vars.size(); ++k) {
          probe[k] = brow[key_vars[k]];
        }
        ++stats->probes;
        auto it = index.find(probe);
        if (it == index.end()) continue;
        for (size_t r : it->second) {
          if (!emit(brow, r)) return cap_error();
        }
      }
    }

    stats->intermediate_rows += next_count;
    bindings = std::move(next);
    num_bindings = next_count;
    for (auto [pos, var] : new_positions) bound[var] = true;

    apply_ready_comparisons(&bindings, &num_bindings);
    if (num_bindings == 0) break;
  }

  // Nullary-body queries keep their single empty binding; comparisons
  // between constants may still apply.
  if (q.body().empty()) {
    apply_ready_comparisons(&bindings, &num_bindings);
  }

  // Project the head.
  Relation out(q.head().pred, q.head().arity());
  std::vector<Value> head_row(q.head().arity());
  for (size_t b = 0; b < num_bindings; ++b) {
    const Value* row = bindings.data() + b * nv;
    for (int i = 0; i < q.head().arity(); ++i) {
      Term t = q.head().args[i];
      head_row[i] =
          t.is_const() ? ValueOfConstant(cat, t.constant()) : row[t.var()];
    }
    out.Add(head_row);
  }
  out.SortDedup();
  return out;
}

Result<Relation> EvaluateUnion(const UnionQuery& u, const Database& db,
                               const EvalOptions& options, EvalStats* stats) {
  if (u.empty()) return Status::InvalidArgument("empty union");
  Relation out(u.disjuncts[0].head().pred, u.disjuncts[0].head().arity());
  // Disjuncts share the database's cached relation indexes: the first
  // disjunct to touch a (relation, key-columns) pair builds, the rest hit
  // (EvalStats::index_hits counts the reuse).
  for (const Query& d : u.disjuncts) {
    AQV_ASSIGN_OR_RETURN(Relation r, EvaluateQuery(d, db, options, stats));
    if (r.arity() != out.arity()) {
      return Status::InvalidArgument("union disjunct arity mismatch");
    }
    for (size_t i = 0; i < r.size(); ++i) out.AppendRowFrom(r, i);
  }
  out.SortDedup();
  return out;
}

}  // namespace aqv
