#ifndef AQV_EVAL_VALUE_H_
#define AQV_EVAL_VALUE_H_

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "cq/catalog.h"
#include "cq/term.h"

namespace aqv {

/// \brief Runtime value of the evaluation engine: a tagged int64.
///
///   - plain numeric data values occupy the middle of the range;
///   - symbolic constants map to kSymbolicBase + ConstId;
///   - Skolem terms (inverse-rules engine) map to kSkolemBase - index,
///     i.e. the extreme negative range.
///
/// Comparisons (<, <=) are defined on plain numerics only; the evaluator
/// treats them as false otherwise. Equality is raw value equality.
using Value = int64_t;

inline constexpr Value kSymbolicBase = Value{1} << 60;
inline constexpr Value kSkolemBase = -(Value{1} << 60);

inline Value SymbolicValue(ConstId id) { return kSymbolicBase + id; }
inline bool IsSymbolic(Value v) { return v >= kSymbolicBase; }
inline bool IsSkolem(Value v) { return v <= kSkolemBase; }
inline bool IsPlainNumeric(Value v) { return !IsSymbolic(v) && !IsSkolem(v); }

/// The runtime value of a constant: its numeric value if numeric, else its
/// tagged symbolic id.
Value ValueOfConstant(const Catalog& catalog, ConstId id);

/// \brief Interning table for ground Skolem terms f_i(v1..vk) produced by
/// the inverse-rules engine. Each distinct application gets one Value in the
/// Skolem range, so downstream joins treat unknown-but-equal values
/// correctly.
class SkolemTable {
 public:
  struct Entry {
    int fn = -1;
    std::vector<Value> args;
  };

  /// Returns the Value for f_fn(args), interning on first sight.
  Value Intern(int fn, std::vector<Value> args);

  /// Decodes a Skolem value. Precondition: IsSkolem(v).
  const Entry& entry(Value v) const {
    return entries_[static_cast<size_t>(kSkolemBase - v)];
  }

  size_t size() const { return entries_.size(); }

 private:
  std::map<std::pair<int, std::vector<Value>>, Value> index_;
  std::vector<Entry> entries_;
};

/// Renders a value: numerics as digits, symbolics by constant name, Skolems
/// as "f<i>(args...)" when `skolems` is provided (else "sk<idx>").
std::string ValueToString(const Catalog& catalog, Value v,
                          const SkolemTable* skolems = nullptr);

}  // namespace aqv

#endif  // AQV_EVAL_VALUE_H_
