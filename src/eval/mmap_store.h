/// \file
/// The read-only mmap ColumnStore backend: a persisted columnar segment
/// file (storage/segment.h layout — column-major Values after a fixed
/// header) mapped into the address space and served to the evaluator
/// through the same `Column()` contract as the in-memory backend, so
/// extents far larger than RAM join, index, and answer unchanged. Pages
/// fault in lazily on first touch and the kernel reclaims them under
/// pressure, which is what keeps resident memory bounded by the *touched*
/// row set rather than the file size (bench_f12_storage measures this).
///
/// Mutation upgrades the store: the first Append/Rewrite/Clear
/// materializes every column into private heap vectors and drops this
/// store's reference to the mapping (copy-on-write at store granularity —
/// mutating one Relation copy never disturbs another). Clone() before any
/// mutation shares the mapping, so the Database copies made by
/// materialization and the datalog fixpoint stay O(1) in file bytes.

#ifndef AQV_EVAL_MMAP_STORE_H_
#define AQV_EVAL_MMAP_STORE_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>

#include "eval/storage.h"
#include "util/status.h"

namespace aqv {

/// \brief A read-only memory-mapped file (ursadb's MemMap shape): the
/// whole file mapped PROT_READ, the descriptor closed immediately after
/// mapping so an open mapping holds pages but no fd. Shared by every
/// MmapStore cut from the file; the mapping unmaps when the last
/// reference drops.
class MemMap {
 public:
  /// Maps `path` read-only. Fails with kNotFound when the file does not
  /// exist and kInternal on any other open/map error; empty files map
  /// with data() == nullptr.
  [[nodiscard]] static Result<std::shared_ptr<const MemMap>> Open(const std::string& path);

  ~MemMap();
  MemMap(const MemMap&) = delete;
  MemMap& operator=(const MemMap&) = delete;

  const uint8_t* data() const { return data_; }
  size_t size() const { return size_; }
  const std::string& path() const { return path_; }

 private:
  MemMap(std::string path, const uint8_t* data, size_t size)
      : path_(std::move(path)), data_(data), size_(size) {}

  std::string path_;
  const uint8_t* data_;
  size_t size_;
};

/// \brief A ColumnStore view over `rows` x `arity` column-major Values
/// starting `offset` bytes into `map`. Preconditions (the storage layer
/// validates them against the segment header before calling): arity >= 1,
/// offset is 8-byte aligned, and offset + arity*rows*sizeof(Value) <=
/// map->size().
std::unique_ptr<ColumnStore> MakeMmapStore(std::shared_ptr<const MemMap> map,
                                           size_t offset, int arity,
                                           size_t rows);

}  // namespace aqv

#endif  // AQV_EVAL_MMAP_STORE_H_
