#include "eval/value.h"

namespace aqv {

Value ValueOfConstant(const Catalog& catalog, ConstId id) {
  const ConstInfo& info = catalog.constant(id);
  if (info.numeric.has_value()) return *info.numeric;
  return SymbolicValue(id);
}

Value SkolemTable::Intern(int fn, std::vector<Value> args) {
  auto key = std::make_pair(fn, args);
  auto it = index_.find(key);
  if (it != index_.end()) return it->second;
  Value v = kSkolemBase - static_cast<Value>(entries_.size());
  entries_.push_back(Entry{fn, std::move(args)});
  index_.emplace(std::move(key), v);
  return v;
}

std::string ValueToString(const Catalog& catalog, Value v,
                          const SkolemTable* skolems) {
  if (IsSymbolic(v)) {
    ConstId id = static_cast<ConstId>(v - kSymbolicBase);
    if (id >= 0 && id < catalog.num_constants()) {
      return catalog.constant(id).name;
    }
    return "?sym" + std::to_string(id);
  }
  if (IsSkolem(v)) {
    size_t idx = static_cast<size_t>(kSkolemBase - v);
    if (skolems != nullptr && idx < skolems->size()) {
      const SkolemTable::Entry& e = skolems->entry(v);
      std::string out = "f" + std::to_string(e.fn) + "(";
      for (size_t i = 0; i < e.args.size(); ++i) {
        if (i > 0) out += ",";
        out += ValueToString(catalog, e.args[i], skolems);
      }
      return out + ")";
    }
    return "sk" + std::to_string(idx);
  }
  return std::to_string(v);
}

}  // namespace aqv
