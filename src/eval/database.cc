#include "eval/database.h"

namespace aqv {

Relation* Database::GetOrCreate(PredId pred) {
  auto it = rels_.find(pred);
  if (it == rels_.end()) {
    int arity = catalog_ != nullptr ? catalog_->pred(pred).arity : 0;
    it = rels_.emplace(pred, Relation(pred, arity)).first;
  }
  return &it->second;
}

const Relation* Database::Find(PredId pred) const {
  auto it = rels_.find(pred);
  return it == rels_.end() ? nullptr : &it->second;
}

void Database::Add(PredId pred, const std::vector<Value>& row) {
  GetOrCreate(pred)->Add(row);
}

Relation* Database::Install(Relation rel) {
  PredId pred = rel.pred();
  auto it = rels_.find(pred);
  if (it == rels_.end()) {
    it = rels_.emplace(pred, std::move(rel)).first;
  } else {
    it->second = std::move(rel);
  }
  return &it->second;
}

std::vector<PredId> Database::Predicates() const {
  std::vector<PredId> out;
  out.reserve(rels_.size());
  for (const auto& [pred, rel] : rels_) out.push_back(pred);
  return out;
}

uint64_t Database::TotalTuples() const {
  uint64_t total = 0;
  for (const auto& [pred, rel] : rels_) total += rel.size();
  return total;
}

void Database::DedupAll() {
  for (auto& [pred, rel] : rels_) rel.SortDedup();
}

std::shared_ptr<const RelationStats> Database::Stats(PredId pred) const {
  const Relation* rel = Find(pred);
  return rel == nullptr ? nullptr : rel->Measured();
}

}  // namespace aqv
