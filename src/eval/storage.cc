#include "eval/storage.h"

#include <cassert>

namespace aqv {

namespace {

class ColumnarStore final : public ColumnStore {
 public:
  explicit ColumnarStore(int arity) : cols_(static_cast<size_t>(arity)) {
    assert(arity >= 1);
  }

  int arity() const override { return static_cast<int>(cols_.size()); }
  size_t rows() const override { return cols_[0].size(); }

  const Value* Column(int c) const override {
    return cols_[static_cast<size_t>(c)].data();
  }

  void Reserve(size_t n) override {
    for (auto& col : cols_) col.reserve(n);
  }

  void Append(const Value* row) override {
    for (size_t c = 0; c < cols_.size(); ++c) cols_[c].push_back(row[c]);
  }

  void Rewrite(const std::vector<uint32_t>& keep) override {
    for (auto& col : cols_) {
      std::vector<Value> out;
      out.reserve(keep.size());
      for (uint32_t r : keep) out.push_back(col[r]);
      col = std::move(out);
    }
  }

  void Clear() override {
    for (auto& col : cols_) col.clear();
  }

  std::unique_ptr<ColumnStore> Clone() const override {
    return std::make_unique<ColumnarStore>(*this);
  }

  const char* Backend() const override { return "columnar"; }

 private:
  std::vector<std::vector<Value>> cols_;
};

}  // namespace

std::unique_ptr<ColumnStore> MakeColumnarStore(int arity) {
  return std::make_unique<ColumnarStore>(arity);
}

}  // namespace aqv
