/// \file
/// The relation storage interface: Relation delegates physical tuple
/// layout to a ColumnStore so backends are interchangeable. Two backends
/// ship: the in-memory columnar store here — one contiguous
/// `std::vector<Value>` per column, which keeps join-key extraction and
/// per-column statistics scans cache-friendly at million-row extents —
/// and the read-only mmap store (eval/mmap_store.h) serving persisted
/// segment files so extents far larger than RAM evaluate through the same
/// interface. Row-major callers go through Relation's adapter API (`at`,
/// `RowCopy`, `Rows`); the hot paths (evaluator, index build, stats) read
/// whole columns via `Column()`.

#ifndef AQV_EVAL_STORAGE_H_
#define AQV_EVAL_STORAGE_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "eval/value.h"

namespace aqv {

/// \brief Abstract physical storage of an arity-N relation (N >= 1;
/// nullary relations are a presence bit held by Relation itself).
///
/// Contract: rows are addressed 0..rows()-1 in insertion order; Column(c)
/// returns the column's contiguous data, valid until the next mutating
/// call. Implementations need not be thread-safe for writes; concurrent
/// reads of an unmutated store must be safe.
class ColumnStore {
 public:
  virtual ~ColumnStore() = default;

  virtual int arity() const = 0;
  virtual size_t rows() const = 0;

  /// Contiguous data of column `c` (rows() values). Precondition:
  /// 0 <= c < arity().
  virtual const Value* Column(int c) const = 0;

  /// Hints the expected final row count.
  virtual void Reserve(size_t n) = 0;

  /// Appends one row of arity() values.
  virtual void Append(const Value* row) = 0;

  /// Replaces the contents with the rows listed in `keep`, in that order
  /// (the sort/dedup rewrite primitive). Row ids in `keep` refer to the
  /// pre-call contents.
  virtual void Rewrite(const std::vector<uint32_t>& keep) = 0;

  virtual void Clear() = 0;

  /// Deep copy with the same backend.
  virtual std::unique_ptr<ColumnStore> Clone() const = 0;

  /// Stable backend name for diagnostics ("columnar", later "mmap", ...).
  virtual const char* Backend() const = 0;
};

/// The in-memory columnar backend: one std::vector<Value> per column.
std::unique_ptr<ColumnStore> MakeColumnarStore(int arity);

}  // namespace aqv

#endif  // AQV_EVAL_STORAGE_H_
