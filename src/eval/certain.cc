#include "eval/certain.h"

#include <set>
#include <string>

#include "eval/datalog.h"

namespace aqv {

Result<Relation> EvaluateRewritingUnion(const Query& q,
                                        const UnionQuery& rewritings,
                                        const Database& view_extents,
                                        const EvalOptions& options,
                                        EvalStats* stats) {
  if (rewritings.empty()) {
    // No contained rewriting: no certain answer is derivable, which is an
    // empty result of the query's own type, not an error.
    return Relation(q.head().pred, q.head().arity());
  }
  for (const Query& d : rewritings.disjuncts) {
    if (d.head().arity() != q.head().arity()) {
      return Status::InvalidArgument(
          "rewriting disjunct arity " + std::to_string(d.head().arity()) +
          " does not match the query's head arity " +
          std::to_string(q.head().arity()));
    }
  }
  return EvaluateUnion(rewritings, view_extents, options, stats);
}

namespace {

/// Skolem-filtering projection shared by both inverse-rules routes.
Relation DropSkolemRows(const Relation& raw) {
  Relation out(raw.pred(), raw.arity());
  if (raw.arity() == 0) {
    // A nullary answer carries no values, hence no Skolems: it is certain
    // iff derivable at all.
    if (raw.size() == 1) out.Add({});
    return out;
  }
  for (size_t i = 0; i < raw.size(); ++i) {
    bool has_skolem = false;
    for (int c = 0; c < raw.arity(); ++c) {
      if (IsSkolem(raw.at(i, c))) {
        has_skolem = true;
        break;
      }
    }
    if (!has_skolem) out.AppendRowFrom(raw, i);
  }
  out.SortDedup();
  return out;
}

}  // namespace

Result<Relation> CertainAnswersViaInverseRules(const Query& q,
                                               const InverseRuleSet& rules,
                                               const Database& view_extents,
                                               const EvalOptions& options,
                                               EvalStats* stats) {
  UnionQuery u;
  u.disjuncts.push_back(q);
  return CertainAnswersViaInverseRules(u, rules, view_extents, options, stats);
}

Result<Relation> CertainAnswersViaInverseRules(const UnionQuery& q,
                                               const InverseRuleSet& rules,
                                               const Database& view_extents,
                                               const EvalOptions& options,
                                               EvalStats* stats) {
  if (q.empty()) {
    return Status::InvalidArgument("empty union query");
  }
  SkolemTable skolems;
  AQV_ASSIGN_OR_RETURN(
      Database derived,
      ApplyInverseRules(rules, view_extents, &skolems, options));
  AQV_ASSIGN_OR_RETURN(Relation raw,
                       EvaluateUnion(q, derived, options, stats));
  return DropSkolemRows(raw);
}

namespace {

/// Collects the active domain of the extents plus constants used by the
/// views and query.
std::vector<Value> Universe(const Query& q, const ViewSet& views,
                            const Database& extents, int extra) {
  std::set<Value> dom;
  for (PredId p : extents.Predicates()) {
    const Relation* rel = extents.Find(p);
    for (size_t i = 0; i < rel->size(); ++i) {
      for (int c = 0; c < rel->arity(); ++c) dom.insert(rel->at(i, c));
    }
  }
  const Catalog& cat = *q.catalog();
  auto add_query_consts = [&](const Query& query) {
    for (const Atom& a : query.body()) {
      for (Term t : a.args) {
        if (t.is_const()) dom.insert(ValueOfConstant(cat, t.constant()));
      }
    }
  };
  add_query_consts(q);
  for (const View& v : views.views()) add_query_consts(v.definition);
  // Fresh values clearly outside the active domain.
  Value fresh = 1'000'000'007;
  for (int i = 0; i < extra; ++i) {
    while (dom.count(fresh)) ++fresh;
    dom.insert(fresh);
    ++fresh;
  }
  return std::vector<Value>(dom.begin(), dom.end());
}

/// Base predicates mentioned by the views (the world's schema).
std::vector<PredId> BasePredicates(const ViewSet& views) {
  std::set<PredId> preds;
  for (const View& v : views.views()) {
    for (const Atom& a : v.definition.body()) preds.insert(a.pred);
  }
  return std::vector<PredId>(preds.begin(), preds.end());
}

}  // namespace

Result<Relation> BruteForceCertainAnswers(const Query& q, const ViewSet& views,
                                          const Database& view_extents,
                                          const WorldEnumOptions& options) {
  const Catalog& cat = *q.catalog();
  std::vector<Value> universe =
      Universe(q, views, view_extents, options.extra_constants);
  std::vector<PredId> base_preds = BasePredicates(views);

  // The lattice of candidate tuples: every base predicate crossed with
  // universe^arity.
  struct CandidateTuple {
    PredId pred;
    std::vector<Value> row;
  };
  std::vector<CandidateTuple> tuples;
  for (PredId p : base_preds) {
    int arity = cat.pred(p).arity;
    std::vector<int> idx(arity, 0);
    for (;;) {
      CandidateTuple t;
      t.pred = p;
      for (int i = 0; i < arity; ++i) t.row.push_back(universe[idx[i]]);
      tuples.push_back(std::move(t));
      int pos = arity - 1;
      while (pos >= 0 && ++idx[pos] == static_cast<int>(universe.size())) {
        idx[pos--] = 0;
      }
      if (pos < 0) break;
    }
  }
  if (static_cast<int>(tuples.size()) > options.max_world_tuples) {
    return Status::ResourceExhausted(
        "world lattice has " + std::to_string(tuples.size()) +
        " candidate tuples; max_world_tuples=" +
        std::to_string(options.max_world_tuples));
  }

  bool first = true;
  std::set<std::vector<Value>> certain;
  bool certain_nullary = false;
  uint64_t num_worlds = uint64_t{1} << tuples.size();
  for (uint64_t world = 0; world < num_worlds; ++world) {
    Database db(q.catalog());
    for (PredId p : base_preds) db.GetOrCreate(p);
    for (size_t i = 0; i < tuples.size(); ++i) {
      if ((world >> i) & 1) db.Add(tuples[i].pred, tuples[i].row);
    }
    // Consistency: every view's result over this world contains its extent.
    bool consistent = true;
    for (const View& v : views.views()) {
      AQV_ASSIGN_OR_RETURN(Relation result,
                           EvaluateQuery(v.definition, db, options.eval));
      const Relation* extent = view_extents.Find(v.pred);
      if (extent == nullptr) continue;
      for (size_t i = 0; i < extent->size() && consistent; ++i) {
        if (!result.Contains(extent->RowCopy(i))) consistent = false;
      }
      if (extent->arity() == 0 && extent->size() == 1 && result.empty()) {
        consistent = false;
      }
      if (!consistent) break;
    }
    if (!consistent) continue;

    AQV_ASSIGN_OR_RETURN(Relation answers,
                         EvaluateQuery(q, db, options.eval));
    if (q.head().arity() == 0) {
      bool holds = answers.size() == 1;
      certain_nullary = first ? holds : (certain_nullary && holds);
      first = false;
      continue;
    }
    std::set<std::vector<Value>> rows;
    for (auto& r : answers.Rows()) rows.insert(std::move(r));
    if (first) {
      certain = std::move(rows);
      first = false;
    } else {
      std::set<std::vector<Value>> inter;
      for (const auto& r : certain) {
        if (rows.count(r)) inter.insert(r);
      }
      certain = std::move(inter);
    }
    if (!certain_nullary && certain.empty() && !first &&
        q.head().arity() != 0) {
      break;  // intersection can only shrink
    }
  }

  Relation out(q.head().pred, q.head().arity());
  if (q.head().arity() == 0) {
    if (!first && certain_nullary) out.Add({});
    return out;
  }
  for (const auto& r : certain) out.Add(r);
  out.SortDedup();
  return out;
}

}  // namespace aqv
